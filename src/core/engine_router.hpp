// Workload-adaptive engine router (ROADMAP: "workload-adaptive front
// end"). Real update streams are phase-skewed — long insert-only
// stretches, deletion bursts, query floods — and the paper's HDT structure
// pays its full O(lg n)-level machinery even during phases where a
// union-find would do. This front end keeps the batch API of
// batch_dynamic_connectivity and routes each batch to the cheapest engine
// for the stream phase observed so far:
//
//   * Insert-only epochs run on the work-efficient incremental engine
//     (Simsiri et al., Euro-Par 2016): O(k α(n)) expected work per batch
//     of k insertions, no level structure at all.
//   * The first deletion batch that touches a present edge triggers a
//     one-shot PROMOTION: the accumulated edge set is bulk-loaded into a
//     fresh batch_dynamic_connectivity with a single batch_insert —
//     Algorithm 2 computes a spanning forest of the whole set and
//     registers the non-tree edges directly, O(m lg(1+n/m)) expected
//     work, NOT a replay of the insert history. Deletion batches that
//     touch no present edge (absent edges, self-loops, hostile ids) are
//     dropped without promoting.
//   * After promotion every update goes to the HDT structure; its
//     existing non-tree fast path already short-circuits deletion batches
//     that never touch the spanning forest.
//   * Query batches are answered through a per-epoch rep-pair memo: each
//     resolved vertex caches its component representative stamped with
//     the current epoch, and every committed update batch bumps the epoch
//     (wholesale invalidation). Query floods hit the memo; an update
//     immediately un-caches everything.
//
// Same exclusive-phase contract as the underlying engines: queries may
// not run concurrently with updates (the memo mutates under const).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "baselines/incremental_connectivity.hpp"
#include "core/batch_connectivity.hpp"
#include "util/types.hpp"

namespace bdc {

struct router_options {
  router_options() { dynamic_opts.substrate = bdc::substrate::blocked; }
  /// Configuration of the batch_dynamic_connectivity built at promotion.
  /// Defaults to the blocked substrate (fastest at every scale measured
  /// so far; see README).
  options dynamic_opts;
  /// Per-epoch rep-pair memo for query batches (disable to A/B).
  bool cache_queries = true;
};

/// Cumulative router instrumentation (stream_runner report, bench_router).
struct router_statistics {
  uint64_t insert_batches = 0;
  uint64_t delete_batches = 0;
  uint64_t query_batches = 0;
  uint64_t phase_switches = 0;     // batch-kind transitions observed
  uint64_t batches_on_unionfind = 0;
  uint64_t batches_on_dynamic = 0;
  uint64_t dropped_delete_batches = 0;  // pre-promotion, touched nothing
  uint64_t promotions = 0;              // 0 or 1
  uint64_t promotion_edges = 0;         // edges bulk-loaded at promotion
  uint64_t promotion_micros = 0;        // one-shot bulk-load wall time
  uint64_t cache_lookups = 0;           // endpoint memo probes
  uint64_t cache_hits = 0;              // probes answered by the memo
  uint64_t cache_invalidations = 0;     // epoch bumps (update batches)
};

class engine_router {
 public:
  explicit engine_router(vertex_id n, router_options opts = {});

  [[nodiscard]] vertex_id num_vertices() const { return n_; }
  /// Edge count of whichever engine is active (set semantics throughout).
  [[nodiscard]] size_t num_edges() const;
  /// True once the first effective deletion promoted to the HDT engine.
  [[nodiscard]] bool promoted() const { return dynamic_ != nullptr; }

  /// Same input semantics as batch_dynamic_connectivity::batch_insert:
  /// self-loops, duplicates, present edges, and out-of-range ids are
  /// ignored.
  void batch_insert(std::span<const edge> es);
  /// Same input semantics as batch_dynamic_connectivity::batch_delete;
  /// triggers the one-shot promotion on the first batch that deletes a
  /// present edge.
  void batch_delete(std::span<const edge> es);

  /// Out-of-range endpoints answer false.
  [[nodiscard]] std::vector<bool> batch_connected(
      std::span<const std::pair<vertex_id, vertex_id>> qs) const;
  [[nodiscard]] bool connected(vertex_id u, vertex_id v) const;
  /// Min-vertex component labels (both engines share the contract).
  [[nodiscard]] std::vector<vertex_id> components() const;

  [[nodiscard]] const router_statistics& stats() const { return stats_; }
  /// The promoted HDT engine, or nullptr pre-promotion (diagnostics).
  [[nodiscard]] const batch_dynamic_connectivity* dynamic_engine() const {
    return dynamic_.get();
  }

 private:
  enum class op_kind : uint8_t { none, insert, erase, query };

  void note_phase(op_kind k) const;
  void invalidate_cache() const;
  /// Bulk-loads the accumulated edge set into a fresh HDT structure.
  void promote();

  vertex_id n_;
  router_options opts_;
  incremental_connectivity inc_;
  std::unique_ptr<batch_dynamic_connectivity> dynamic_;
  mutable router_statistics stats_;
  mutable op_kind last_op_ = op_kind::none;

  // Per-epoch rep memo: cache_rep_[v] is v's component representative,
  // valid only while cache_stamp_[v] == cache_epoch_. Representatives are
  // engine-native (union-find root pre-promotion, top-forest rep handle
  // after) — equality within one epoch is exactly connectivity, and the
  // epoch bump on every update batch retires stale handles before any
  // substrate mutation could reuse them.
  mutable std::vector<uint64_t> cache_rep_;
  mutable std::vector<uint64_t> cache_stamp_;
  mutable uint64_t cache_epoch_ = 1;
};

}  // namespace bdc
