// Algorithms 1-5 of the paper. Engineering notes:
//
// * All doubling searches run phase-synchronously across components: every
//   still-searching piece performs its 2^w-edge probe, then a barrier,
//   then all pushes/merges commit together. This realizes the paper's
//   parallel phases with the library's phase-concurrency contracts.
// * Pieces are identified by (seed vertex, F_level representative).
//   Representatives stay valid through an entire level search because F_i
//   is only restructured by promotions, which the simple engine commits
//   between rounds (after all rep reads) and the interleaved engine defers
//   to the end of the level (the paper's key structural idea).
#include "core/batch_connectivity.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "obs/telemetry.hpp"
#include "parallel/primitives.hpp"
#include "parallel/scheduler.hpp"
#include "sequence/parallel_sort.hpp"
#include "sequence/semisort.hpp"
#include "spanning/union_find.hpp"
#include "util/timer.hpp"

namespace bdc {

namespace {

/// Canonicalizes, dedupes, and drops self-loops and edges with an
/// endpoint outside [0, n). The range check is the public API's only
/// defense: an out-of-range id that slips through (e.g. from a truncated
/// or hand-edited stream file) would flow into batch_find_rep and index
/// past the substrates' sparse vertex directories (sized for ids < n).
std::vector<edge> sanitize(std::span<const edge> edges, vertex_id n) {
  std::vector<edge> clean(edges.size());
  parallel_for(0, edges.size(),
               [&](size_t i) { clean[i] = edges[i].canonical(); });
  clean = filter(clean, [n](const edge& e) {
    // Canonical form has u <= v, so v < n bounds both endpoints.
    return !e.is_self_loop() && e.v < n;
  });
  sort_unique(clean);
  return clean;
}

/// Deduplicates a canonical edge list (order not preserved).
void dedupe(std::vector<edge>& es) { sort_unique(es); }

}  // namespace

batch_dynamic_connectivity::batch_dynamic_connectivity(vertex_id n,
                                                       options opts)
    : opts_(opts),
      ls_(n, opts.seed, opts.substrate, opts.policy, opts.dispatch),
      top_forest_(&ls_.forest(ls_.top())) {
  if (opts_.concurrent_reads) {
    service_ = std::make_unique<service_state>();
    // Route the top forest's node frees through the epoch limbo: readers
    // probing connected_relaxed walk top-forest memory, so nothing they
    // can reach may be recycled until their epoch has passed. Lower
    // forests keep immediate frees — the read service never touches them.
    top_forest_->bind_read_epochs(&service_->epochs);
    // Views are valid from construction on (version 0); no previous
    // snapshot exists to share chunks with, so build from the full walk.
    publish_snapshot(/*force_full=*/true);
  }
}

const char* to_string(publish_mode m) {
  return m == publish_mode::full ? "full" : "incremental";
}

std::string config_label(const options& opts) {
  std::string label = to_string(opts.substrate);
  if (opts.policy.mixed() && opts.policy.low != opts.substrate) {
    label += "+";
    label += to_string(opts.policy.low);
    label += "<" + std::to_string(opts.policy.threshold);
  }
  if (opts.dispatch == dispatch::virtual_bridge) label += "!virtual";
  if (opts.concurrent_reads) {
    label += "+serve";
    if (opts.publish == publish_mode::full) label += "!fullpub";
  }
  return label;
}

// ---------------------------------------------------------------------
// Epoch-snapshot read service
// ---------------------------------------------------------------------

batch_dynamic_connectivity::update_scope::update_scope(
    batch_dynamic_connectivity& owner)
    : owner_(owner) {
  if (owner_.service_ == nullptr) return;
  service_state& s = *owner_.service_;
  s.epochs.begin_write();
  owner_.touched_.clear();  // this batch's top-forest mutation endpoints
  // Seqlock entry: phase -> odd. acq_rel orders it before every mutation
  // store of the batch, so a reader that observed any of them must also
  // observe the odd phase on revalidation and discard its live probe.
  s.phase.fetch_add(1, std::memory_order_acq_rel);
}

batch_dynamic_connectivity::update_scope::~update_scope() {
  if (owner_.service_ != nullptr) {
    service_state& s = *owner_.service_;
    // Publish the post-batch snapshot BEFORE re-opening the live fast
    // path: readers arriving in this window fall back to the (already
    // fresh) snapshot.
    owner_.publish_snapshot(/*force_full=*/false);
    s.phase.fetch_add(1, std::memory_order_release);  // -> even
    {
      BDC_PHASE_SPAN(sp, "epoch.drain");
      // Epoch turnover: everything retired during this batch is stamped
      // with the pre-advance epoch, so after the advance a NEW reader can
      // never reach it, and the drains below free whatever no OLD reader
      // pins. Draining after the advance is also what makes the
      // overflow-pin path sound (see epoch_manager::pin).
      s.epochs.advance();
      s.epochs.end_write();  // drain_limbo asserts mutation quiescence
      s.epochs.drain();
      owner_.top_forest_->drain_limbo();
    }
#if BDC_TELEMETRY_ENABLED
    // Retention gauges: sampled once per batch, after the drains, so they
    // report what actually survives the batch (limbo that readers pin and
    // blocks the pool keeps).
    static obs::gauge& limbo_g =
        obs::metric_registry::global().get_gauge("epoch.limbo");
    static obs::gauge& blocks_g =
        obs::metric_registry::global().get_gauge("pool.retained_blocks");
    limbo_g.set(static_cast<int64_t>(s.epochs.limbo_size()));
    blocks_g.set(static_cast<int64_t>(owner_.pool_stats().blocks));
#endif
  }
#if BDC_TELEMETRY_ENABLED
  // Hierarchy footprint gauges: sampled once per batch regardless of the
  // read service, so reports and --metrics JSONL can show memory scaling
  // with per-level activity (sparse vertex directories) instead of with
  // n * materialized levels.
  static obs::gauge& mat_g =
      obs::metric_registry::global().get_gauge("levels.materialized");
  static obs::gauge& act_g =
      obs::metric_registry::global().get_gauge("levels.active_vertices");
  static obs::gauge& bytes_g =
      obs::metric_registry::global().get_gauge("levels.bytes");
  const level_structure::hierarchy_stats hs = owner_.ls_.footprint();
  mat_g.set(static_cast<int64_t>(hs.materialized));
  act_g.set(static_cast<int64_t>(hs.active_vertices));
  bytes_g.set(static_cast<int64_t>(hs.bytes));
#endif
}

void batch_dynamic_connectivity::publish_snapshot(bool force_full) {
  BDC_PHASE_SPAN(span_publish, "publish.snapshot");
  timer t;
  // Batch k runs with phase 2k-1 (odd); construction publishes at phase 0.
  const uint64_t version =
      (service_->phase.load(std::memory_order_relaxed) + 1) / 2;
  // `published` is only exchanged on this (writer) thread, so a relaxed
  // load sees the latest snapshot; readers never mutate it.
  const snapshot* prev =
      service_->published.load(std::memory_order_relaxed);
  snapshot* snap = nullptr;
  if (!force_full && prev != nullptr &&
      opts_.publish == publish_mode::incremental) {
    snap = build_incremental_snapshot(version, *prev);
  }
  if (snap == nullptr) {
    snap = build_full_snapshot(version);
    stats_.publishes_full++;
  }
  touched_.clear();
  stats_.snapshots_published++;
  stats_.publish_micros += static_cast<uint64_t>(t.elapsed_us());
  const snapshot* old =
      service_->published.exchange(snap, std::memory_order_acq_rel);
  if (old != nullptr) {
    // A pinned reader may still hold `old`; free it through the limbo.
    // Chunks cloned out by later versions are freed transitively here —
    // the retiring snapshot holds their last shared_ptr reference.
    service_->epochs.retire(
        const_cast<snapshot*>(old),
        [](void* p) { delete static_cast<snapshot*>(p); });
  }
}

batch_dynamic_connectivity::snapshot*
batch_dynamic_connectivity::build_full_snapshot(uint64_t version) const {
  auto* snap = new snapshot;
  snap->version = version;
  const size_t n = num_vertices();
  snap->n = static_cast<vertex_id>(n);
  const size_t nchunks =
      (n + snapshot::kChunkSize - 1) >> snapshot::kChunkLog;
  snap->labels.resize(nchunks);
  snap->sizes.resize(nchunks);
  std::vector<vertex_id> flat = components();
  std::vector<uint32_t> counts(n, 0);
  for (vertex_id l : flat) counts[l]++;
  parallel_for(0, nchunks, [&](size_t c) {
    // make_shared value-initializes, so a partially covered tail chunk
    // holds zeroes past n.
    auto lc = std::make_shared<snapshot::label_chunk>();
    auto sc = std::make_shared<snapshot::size_chunk>();
    const size_t base = c << snapshot::kChunkLog;
    const size_t cnt = std::min(snapshot::kChunkSize, n - base);
    std::copy_n(flat.begin() + static_cast<ptrdiff_t>(base), cnt,
                lc->begin());
    std::copy_n(counts.begin() + static_cast<ptrdiff_t>(base), cnt,
                sc->begin());
    snap->labels[c] = std::move(lc);
    snap->sizes[c] = std::move(sc);
  });
  return snap;
}

batch_dynamic_connectivity::snapshot*
batch_dynamic_connectivity::build_incremental_snapshot(
    uint64_t version, const snapshot& prev) {
  const size_t n = num_vertices();
  // Touched seeds -> distinct post-batch components (one seed per
  // representative). Every component whose membership changed this batch
  // contains an endpoint of a top-forest link/cut: cut edges seed both
  // halves of a split, and promoted replacements seed every reconnected
  // fragment (a replacement's endpoints were connected at its level
  // before the batch, so the fragments it rejoins were created by this
  // batch's cuts and are already seeded). Components not seeded kept
  // their membership, hence their label and size.
  sort_unique(touched_);
  auto reps = top_forest_->batch_find_rep(touched_);
  std::vector<std::pair<rep, vertex_id>> pieces(touched_.size());
  for (size_t i = 0; i < touched_.size(); ++i)
    pieces[i] = {reps[i], touched_[i]};
  sort_unique(pieces);
  size_t np = 0;  // dedupe by representative, keeping one seed per piece
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0 && pieces[i].first == pieces[i - 1].first) continue;
    pieces[np++] = pieces[i];
  }
  pieces.resize(np);

  // Touched-size estimate: when the batch moved more than a quarter of
  // the graph (shatter-everything deletes), the parallel full walk beats
  // chasing tours one by one — fall back.
  uint64_t est = 0;
  top_forest_->visit([&](auto& f) {
    for (const auto& [r, seed] : pieces)
      est += f.component_counts(seed).vertices;
  });
  if (est > n / 4) return nullptr;

  auto* snap = new snapshot;
  snap->version = version;
  snap->n = prev.n;
  snap->labels = prev.labels;  // chunk pointers shared; cloned on write
  snap->sizes = prev.sizes;

  // Clone-on-first-write per publish: a chunk with use_count() > 1 is
  // still shared with prev (or an older limbo snapshot) and must be
  // copied; one we already cloned this publish is solely ours. use_count
  // is reliable here because chunk shared_ptrs are only copied/dropped on
  // this writer thread (readers hold the snapshot*, never the chunks).
  auto label_slot = [&](vertex_id v) -> vertex_id& {
    auto& sp = snap->labels[v >> snapshot::kChunkLog];
    if (sp.use_count() > 1)
      sp = std::make_shared<snapshot::label_chunk>(*sp);
    return (*sp)[v & (snapshot::kChunkSize - 1)];
  };
  auto size_slot = [&](vertex_id l) -> uint32_t& {
    auto& sp = snap->sizes[l >> snapshot::kChunkLog];
    if (sp.use_count() > 1)
      sp = std::make_shared<snapshot::size_chunk>(*sp);
    return (*sp)[l & (snapshot::kChunkSize - 1)];
  };

  std::vector<vertex_id> verts;
  top_forest_->visit([&](auto& f) {
    for (const auto& [r, seed] : pieces) {
      verts.clear();
      f.for_each_tour_vertex(r, [&](vertex_id v) { verts.push_back(v); });
      vertex_id mn = verts[0];
      for (vertex_id v : verts) mn = std::min(mn, v);
      for (vertex_id v : verts) label_slot(v) = mn;
      size_slot(mn) = static_cast<uint32_t>(verts.size());
      stats_.publish_relabeled += verts.size();
    }
  });
  return snap;
}

std::vector<vertex_id>
batch_dynamic_connectivity::snapshot_view::components() const {
  // Sequential on purpose: this runs on reader threads, outside the
  // parallel scheduler's worker pool.
  std::vector<vertex_id> out(snap_->n);
  for (size_t c = 0; c < snap_->labels.size(); ++c) {
    const size_t base = c << snapshot::kChunkLog;
    const size_t cnt = std::min(snapshot::kChunkSize, out.size() - base);
    std::copy_n(snap_->labels[c]->begin(), cnt,
                out.begin() + static_cast<ptrdiff_t>(base));
  }
  return out;
}

batch_dynamic_connectivity::snapshot_view
batch_dynamic_connectivity::snapshot_query() const {
  assert(service_ != nullptr &&
         "snapshot_query requires options::concurrent_reads");
  // Pin FIRST, then load: the pin synchronizes with the latest advance
  // (seq_cst), so the loaded snapshot cannot already have left the limbo.
  epoch_manager::reader_guard guard = service_->epochs.pin();
  const snapshot* snap =
      service_->published.load(std::memory_order_acquire);
  return snapshot_view(this, std::move(guard), snap);
}

uint64_t batch_dynamic_connectivity::committed_version() const {
  assert(service_ != nullptr);
  return service_->published.load(std::memory_order_acquire)->version;
}

bool batch_dynamic_connectivity::snapshot_view::connected(
    vertex_id u, vertex_id v, uint64_t* state) const {
  if (u >= snap_->n || v >= snap_->n) {
    if (state != nullptr) *state = snap_->version;
    return false;
  }
  const service_state& s = *owner_->service_;
  // Live fast path: when no batch is in flight and the top forest
  // supports relaxed reads (blocked substrate), probe it directly and
  // seqlock-validate. A probe overlapped by a batch is discarded — the
  // release stores inside the batch pair with the probe's acquire loads,
  // forcing the revalidation to observe the odd (or later) phase.
  uint64_t v1 = s.phase.load(std::memory_order_acquire);
  if ((v1 & 1) == 0 && owner_->top_forest_->supports_relaxed_reads()) {
    std::optional<bool> live = owner_->top_forest_->connected_relaxed(u, v);
    if (live.has_value() &&
        s.phase.load(std::memory_order_acquire) == v1) {
      if (state != nullptr) *state = v1 >> 1;
      return *live;
    }
  }
  if (state != nullptr) *state = snap_->version;
  return snap_->label_of(u) == snap_->label_of(v);
}

// ---------------------------------------------------------------------
// Queries (Algorithm 1)
// ---------------------------------------------------------------------

bool batch_dynamic_connectivity::connected(vertex_id u, vertex_id v) const {
  if (u >= num_vertices() || v >= num_vertices()) return false;
  return ls_.forest_if(ls_.top())->connected(u, v);
}

std::vector<bool> batch_dynamic_connectivity::batch_connected(
    std::span<const std::pair<vertex_id, vertex_id>> queries) const {
  BDC_PHASE_SPAN(span_batch, "batch.connected");
  const vertex_id n = num_vertices();
  // n == 0 has no in-range probe to remap hostile queries onto (every id
  // is out of range), so answer directly.
  if (n == 0) return std::vector<bool>(queries.size(), false);
  std::atomic<bool> any_hostile{false};
  parallel_for(0, queries.size(), [&](size_t i) {
    if (queries[i].first >= n || queries[i].second >= n)
      any_hostile.store(true, std::memory_order_relaxed);
  });
  const ett_forest* top = ls_.forest_if(ls_.top());
  if (!any_hostile.load(std::memory_order_relaxed))
    return top->batch_connected(queries);
  // Slow path: remap out-of-range queries onto a harmless probe, then
  // overwrite their answers with the defined result (false).
  std::vector<std::pair<vertex_id, vertex_id>> safe(queries.begin(),
                                                    queries.end());
  parallel_for(0, safe.size(), [&](size_t i) {
    if (safe[i].first >= n || safe[i].second >= n) safe[i] = {0, 0};
  });
  auto out = top->batch_connected(safe);
  for (size_t i = 0; i < queries.size(); ++i)
    if (queries[i].first >= n || queries[i].second >= n) out[i] = false;
  return out;
}

size_t batch_dynamic_connectivity::component_size(vertex_id v) const {
  if (v >= num_vertices()) return 0;
  return ls_.forest_if(ls_.top())->component_size(v);
}

std::vector<vertex_id> batch_dynamic_connectivity::components() const {
  size_t n = num_vertices();
  const ett_forest* top = ls_.forest_if(ls_.top());
  std::vector<std::pair<uint64_t, vertex_id>> rep_vertex(n);
  // One dispatch for the whole scan; find_rep is a direct (and for the
  // blocked substrate O(1)) call inside the loop.
  top->visit([&](auto& f) {
    parallel_for(0, n, [&](size_t v) {
      rep_vertex[v] = {reinterpret_cast<uint64_t>(
                           f.find_rep(static_cast<vertex_id>(v))),
                       static_cast<vertex_id>(v)};
    });
  });
  auto groups = group_by_key(std::move(rep_vertex));
  std::vector<vertex_id> labels(n);
  parallel_for(0, groups.num_groups(), [&](size_t g) {
    uint32_t st = groups.group_starts[g], en = groups.group_starts[g + 1];
    vertex_id mn = kNoVertex;
    for (uint32_t i = st; i < en; ++i)
      mn = std::min(mn, groups.records[i].second);
    for (uint32_t i = st; i < en; ++i)
      labels[groups.records[i].second] = mn;
  });
  return labels;
}

// ---------------------------------------------------------------------
// Insertion (Algorithm 2)
// ---------------------------------------------------------------------

void batch_dynamic_connectivity::batch_insert(std::span<const edge> edges) {
  // Declared before update_scope: destruction runs in reverse, so the
  // span also covers the scope destructor's publish + epoch drain.
  BDC_PHASE_SPAN(span_batch, "batch.insert");
  // Covers the whole batch including early returns, so every call commits
  // exactly one serving state (version parity stays in lockstep with the
  // caller's batch count).
  update_scope scope(*this);
  std::vector<edge> clean;
  {
    BDC_PHASE_SPAN(sp, "insert.sanitize");
    clean = sanitize(edges, num_vertices());
    clean = filter(clean, [&](const edge& e) { return !has_edge(e); });
  }
  size_t k = clean.size();
  stats_.batches_inserted++;
  stats_.edges_inserted += k;
  if (k == 0) return;

  int top = ls_.top();
  ett_forest& f = ls_.forest(top);

  // Contract current components and find which edges grow the forest.
  std::vector<vertex_id> endpoints(2 * k);
  parallel_for(0, k, [&](size_t i) {
    endpoints[2 * i] = clean[i].u;
    endpoints[2 * i + 1] = clean[i].v;
  });
  auto reps = f.batch_find_rep(endpoints);
  std::vector<rep> uniq(reps.begin(), reps.end());
  sort_unique(uniq);
  auto label_of = [&](rep r) {
    return static_cast<vertex_id>(
        std::lower_bound(uniq.begin(), uniq.end(), r) - uniq.begin());
  };
  std::vector<edge> contracted(k);
  parallel_for(0, k, [&](size_t i) {
    contracted[i] = {label_of(reps[2 * i]), label_of(reps[2 * i + 1])};
  });
  auto sf = spanning_forest(uniq.size(), contracted);

  std::vector<uint8_t> is_tree(k, 0);
  parallel_for(0, sf.tree_edge_indices.size(),
               [&](size_t i) { is_tree[sf.tree_edge_indices[i]] = 1; });

  // Register everything at the top level, then link the new tree edges.
  ls_.add_edges(top, clean, is_tree);
  std::vector<edge> tree_edges(sf.tree_edge_indices.size());
  parallel_for(0, tree_edges.size(), [&](size_t i) {
    tree_edges[i] = clean[sf.tree_edge_indices[i]];
  });
  // Inserted tree edges are the only top-forest mutations of this batch:
  // their endpoints seed the incremental snapshot publish.
  for (const edge& e : tree_edges) note_touched(e);
  ls_.link_tree(top, tree_edges);
}

// ---------------------------------------------------------------------
// Deletion (Algorithm 3)
// ---------------------------------------------------------------------

void batch_dynamic_connectivity::batch_delete(std::span<const edge> edges) {
  BDC_PHASE_SPAN(span_batch, "batch.delete");  // see batch_insert
  update_scope scope(*this);
  std::vector<edge> clean;
  {
    BDC_PHASE_SPAN(sp, "delete.sanitize");
    clean = sanitize(edges, num_vertices());
    clean = filter(clean, [&](const edge& e) { return has_edge(e); });
  }
  size_t k = clean.size();
  stats_.batches_deleted++;
  stats_.edges_deleted += k;
  if (k == 0) return;

  // Capture tree edges and their levels before deregistration.
  std::vector<std::pair<int, edge>> tree_edges;  // (level, edge)
  {
    BDC_PHASE_SPAN(sp, "delete.deregister");
    std::vector<std::pair<int, edge>> all(k);
    parallel_for(0, k, [&](size_t i) {
      const edge_record* rec = ls_.record_of(clean[i]);
      all[i] = {rec->is_tree ? rec->level : -1, clean[i]};
    });
    tree_edges = filter(all, [](const std::pair<int, edge>& p) {
      return p.first >= 0;
    });
  }
  stats_.tree_edges_deleted += tree_edges.size();
  // Every deleted tree edge is cut from the top forest below; both
  // endpoints seed the incremental snapshot publish (one per split half).
  for (const auto& [lvl, e] : tree_edges) note_touched(e);

  {
    BDC_PHASE_SPAN(sp, "delete.deregister");
    // Deregister all deleted edges (adjacency, counters, dictionary).
    ls_.remove_edges(clean);
  }

  if (tree_edges.empty()) return;  // connectivity unchanged

  // Cut each deleted tree edge from every forest containing it:
  // F_level(e) .. F_top.
  int top = ls_.top();
  int minl = top;
  for (auto& [lvl, e] : tree_edges) minl = std::min(minl, lvl);
  {
    BDC_PHASE_SPAN(sp, "delete.cut");
    for (int i = minl; i <= top; ++i) {
      auto subset = filter(tree_edges, [&](const std::pair<int, edge>& p) {
        return p.first <= i;
      });
      std::vector<edge> es(subset.size());
      parallel_for(0, es.size(),
                   [&](size_t j) { es[j] = subset[j].second; });
      ls_.forest(i).batch_cut(es);
    }
  }

  // Seeds: endpoints of deleted tree edges, introduced at the level where
  // the edge was deleted.
  std::vector<std::vector<vertex_id>> seeds_by_level(
      static_cast<size_t>(top) + 1);
  for (auto& [lvl, e] : tree_edges) {
    seeds_by_level[static_cast<size_t>(lvl)].push_back(e.u);
    seeds_by_level[static_cast<size_t>(lvl)].push_back(e.v);
  }

  // Ascend, searching each level for replacement edges (Algorithms 4/5).
  std::vector<vertex_id> carried;
  std::vector<edge> buffered;  // S: new tree edges awaiting higher levels
  for (int i = minl; i <= top; ++i) {
    auto& sl = seeds_by_level[static_cast<size_t>(i)];
    carried.insert(carried.end(), sl.begin(), sl.end());
    sort_unique(carried);
    stats_.levels_searched++;
    BDC_PHASE_SPAN(sp, "delete.level_search");  // one span per level
    switch (opts_.search) {
      case level_search_kind::interleaved:
        level_search_interleaved(i, carried, buffered);
        break;
      case level_search_kind::simple:
        level_search_simple(i, carried, buffered, /*scan_all=*/false);
        break;
      case level_search_kind::scan_all:
        level_search_simple(i, carried, buffered, /*scan_all=*/true);
        break;
    }
  }
  // `buffered` now holds every replacement promoted at any level; all of
  // them were (or end the batch) linked into the top forest, so their
  // endpoints seed the reconnected components for the snapshot publish.
  for (const edge& e : buffered) note_touched(e);
}

// ---------------------------------------------------------------------
// Shared level-search machinery
// ---------------------------------------------------------------------

std::vector<batch_dynamic_connectivity::piece>
batch_dynamic_connectivity::resolve_pieces(
    int level, std::span<const vertex_id> seeds) const {
  const ett_forest* f = ls_.forest_if(level);
  assert(f != nullptr);
  auto reps = f->batch_find_rep(seeds);
  // Dedupe by representative, keeping one seed per piece.
  std::vector<std::pair<rep, vertex_id>> pairs(seeds.size());
  parallel_for(0, seeds.size(),
               [&](size_t i) { pairs[i] = {reps[i], seeds[i]}; });
  parallel_sort(pairs);
  std::vector<piece> out;
  out.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (i > 0 && pairs[i].first == pairs[i - 1].first) continue;
    out.push_back({pairs[i].second, pairs[i].first, 0, 0, 0});
  }
  f->visit([&](auto& fc) {
    parallel_for(0, out.size(), [&](size_t i) {
      ett_counts c = fc.component_counts(out[i].seed);
      out[i].size = c.vertices;
      out[i].nontree_slots = c.nontree_edges;
      out[i].tree_slots = c.tree_edges;
    });
  });
  return out;
}

void batch_dynamic_connectivity::push_tree_edges(
    int level, const std::vector<piece>& active) {
  if (level == 0 || active.empty()) return;
  ett_forest& f = ls_.forest(level);
  // Gather every level-`level` tree edge of every active piece.
  std::vector<std::vector<edge>> per_piece(active.size());
  parallel_for(
      0, active.size(),
      [&](size_t i) {
        if (active[i].tree_slots == 0) return;
        auto slots = f.fetch_tree(active[i].seed, active[i].tree_slots);
        ls_.expand_fetch(level, /*nontree=*/false, slots, per_piece[i]);
      },
      1);
  std::vector<edge> all = flatten(per_piece);
  dedupe(all);  // each edge appears once per endpoint
  stats_.edges_pushed += all.size();
  ls_.move_down(level, all);
}

std::vector<edge> batch_dynamic_connectivity::fetch_nontree_edges(
    int level, const piece& p, uint64_t want) const {
  auto slots = ls_.forest_if(level)->fetch_nontree(p.seed, want);
  std::vector<edge> raw;
  ls_.expand_fetch(level, /*nontree=*/true, slots, raw);
  // Dedupe preserving tour order (an edge internal to the piece shows up
  // under both endpoints).
  std::vector<edge> out;
  out.reserve(raw.size());
  std::unordered_set<uint64_t> seen;
  seen.reserve(raw.size() * 2);
  for (const edge& e : raw) {
    if (seen.insert(edge_key(e)).second) out.push_back(e);
  }
  return out;
}

// ---------------------------------------------------------------------
// Algorithm 4 (simple) and the scan-all ablation
// ---------------------------------------------------------------------

void batch_dynamic_connectivity::level_search_simple(
    int level, std::span<const vertex_id> seeds, std::vector<edge>& buffered,
    bool scan_all) {
  ett_forest& f = ls_.forest(level);
  f.batch_link(buffered);  // line 2: commit lower-level discoveries

  uint64_t active_cap = ls_.capacity(level) / 2;
  auto pieces = resolve_pieces(level, seeds);
  std::vector<piece> active;
  for (auto& p : pieces)
    if (p.size <= active_cap) active.push_back(p);

  while (!active.empty()) {
    stats_.search_rounds++;
    // Line 5, re-applied each round: an active piece must have no level-i
    // tree edges before any of its non-tree edges are pushed, or pushed
    // edges would land below their connecting path (Invariant 2). After a
    // merge round this re-push moves the freshly promoted replacement
    // edges of still-active merged pieces down as well.
    push_tree_edges(level, active);
    size_t m = active.size();
    // Per-piece doubling, phase-synchronous across pieces.
    struct outcome {
      bool done = false;
      bool found = false;
      edge replacement{};
      uint64_t fetched = 0;
      std::vector<edge> to_push;
    };
    std::vector<outcome> res(m);
    uint32_t w = 0;
    BDC_PHASE_SPAN(span_search, "search.replacement");
    while (true) {
      std::atomic<bool> any_searching{false};
      stats_.doubling_phases++;
      parallel_for(0, m, [&](size_t i) {
        if (res[i].done) return;
        const piece& p = active[i];
        uint64_t cmax = p.nontree_slots;
        uint64_t csz = scan_all ? cmax
                                : std::min<uint64_t>(uint64_t{1} << w, cmax);
        auto ec = fetch_nontree_edges(level, p, csz);
        res[i].fetched += ec.size();
        // First replacement: endpoints in different pieces of F_level.
        // One dispatch for the whole probe scan (the per-element
        // connectivity checks are direct calls inside the visit arm).
        std::atomic<size_t> first{ec.size()};
        f.visit([&](auto& fc) {
          parallel_for(0, ec.size(), [&](size_t j) {
            if (!fc.connected(ec[j].u, ec[j].v)) {
              size_t cur = first.load(std::memory_order_relaxed);
              while (j < cur && !first.compare_exchange_weak(
                                    cur, j, std::memory_order_relaxed)) {
              }
            }
          });
        });
        size_t fi = first.load(std::memory_order_relaxed);
        if (fi < ec.size()) {
          res[i].found = true;
          res[i].replacement = ec[fi];
          res[i].to_push.assign(ec.begin(),
                                ec.begin() + static_cast<ptrdiff_t>(fi));
          res[i].done = true;
        } else if (csz >= cmax) {
          res[i].to_push = std::move(ec);  // exhausted: push everything
          res[i].done = true;
        } else {
          any_searching.store(true, std::memory_order_relaxed);
        }
      }, 1);
      if (!any_searching.load(std::memory_order_relaxed)) break;
      ++w;
    }
    for (auto& o : res) stats_.edges_fetched += o.fetched;

    // Commit pushes (non-tree edges internal to their piece).
    {
      std::vector<std::vector<edge>> chunks(m);
      for (size_t i = 0; i < m; ++i) chunks[i] = std::move(res[i].to_push);
      std::vector<edge> pushes = flatten(chunks);
      dedupe(pushes);
      if (level > 0 && !pushes.empty()) {
        stats_.edges_pushed += pushes.size();
        ls_.move_down(level, pushes);
      }
    }

    // Commit replacements: spanning forest over the contracted graph.
    std::vector<edge> found;
    std::vector<vertex_id> next_seeds;
    for (size_t i = 0; i < m; ++i) {
      if (res[i].found) {
        found.push_back(res[i].replacement);
        next_seeds.push_back(active[i].seed);
      }
      // Exhausted pieces leave the active set (paper line 17-19); their
      // seeds stay in the carried set for the next level.
    }
    dedupe(found);
    if (!found.empty()) {
      std::vector<vertex_id> endpoints(2 * found.size());
      parallel_for(0, found.size(), [&](size_t i) {
        endpoints[2 * i] = found[i].u;
        endpoints[2 * i + 1] = found[i].v;
      });
      auto reps = f.batch_find_rep(endpoints);
      std::vector<rep> uniq(reps.begin(), reps.end());
      sort_unique(uniq);
      std::vector<edge> contracted(found.size());
      parallel_for(0, found.size(), [&](size_t i) {
        auto lbl = [&](rep r) {
          return static_cast<vertex_id>(
              std::lower_bound(uniq.begin(), uniq.end(), r) - uniq.begin());
        };
        contracted[i] = {lbl(reps[2 * i]), lbl(reps[2 * i + 1])};
      });
      auto sf = spanning_forest(uniq.size(), contracted);
      std::vector<edge> chosen(sf.tree_edge_indices.size());
      parallel_for(0, chosen.size(), [&](size_t i) {
        chosen[i] = found[sf.tree_edge_indices[i]];
      });
      stats_.replacements_promoted += chosen.size();
      ls_.promote_to_tree(level, chosen);
      ls_.link_tree(level, chosen);  // restructures F_level
      buffered.insert(buffered.end(), chosen.begin(), chosen.end());
    }

    // Re-resolve surviving pieces (reps changed after linking).
    active.clear();
    if (!next_seeds.empty()) {
      for (auto& p : resolve_pieces(level, next_seeds))
        if (p.size <= active_cap) active.push_back(p);
    }
  }
}

// ---------------------------------------------------------------------
// Algorithm 5 (interleaved)
// ---------------------------------------------------------------------

void batch_dynamic_connectivity::level_search_interleaved(
    int level, std::span<const vertex_id> seeds,
    std::vector<edge>& buffered) {
  ett_forest& f = ls_.forest(level);
  f.batch_link(buffered);  // line 2

  uint64_t active_cap = ls_.capacity(level) / 2;
  auto pieces = resolve_pieces(level, seeds);
  size_t np = pieces.size();

  // M: union-find over piece indices tracking supercomponent sizes
  // (line 7). Includes inactive pieces: replacement edges may merge into
  // them.
  std::unordered_map<rep, uint32_t> piece_index;
  piece_index.reserve(2 * np);
  for (size_t i = 0; i < np; ++i)
    piece_index.emplace(pieces[i].handle, static_cast<uint32_t>(i));
  union_find m(np);
  std::vector<uint64_t> super_size(np);
  std::vector<uint8_t> active(np);
  std::vector<piece> active_list;
  for (size_t i = 0; i < np; ++i) {
    super_size[i] = pieces[i].size;
    active[i] = pieces[i].size <= active_cap ? 1 : 0;
    if (active[i]) active_list.push_back(pieces[i]);
  }
  push_tree_edges(level, active_list);  // line 5

  // Accumulated per-level state. Detached cross-piece edges remember one
  // endpoint's piece so the finalizer can bucket them by their FINAL
  // supercomponent: only supercomponents that end the level small enough
  // may land below (their bridge edges must descend with them —
  // Invariant 2; see the finalizer).
  std::vector<std::pair<edge, uint32_t>> chosen_total;    // T, with piece
  std::vector<std::pair<edge, uint32_t>> detached_cross;  // piece-crossing
  std::vector<edge> detached_within;                      // piece-internal
  std::unordered_set<uint64_t> detached_keys;

  uint32_t r = 0;
  bool any_active = !active_list.empty();
  while (any_active) {
    BDC_PHASE_SPAN(span_search, "search.replacement");
    stats_.search_rounds++;
    stats_.doubling_phases++;
    uint64_t sz = r < 62 ? (uint64_t{1} << r) : ~uint64_t{0} >> 1;

    // Probe phase: each active piece fetches its next <= 2^r edges.
    struct probe {
      std::vector<edge> ec;
      bool exhausted = false;
    };
    std::vector<uint32_t> act_idx;
    for (uint32_t i = 0; i < static_cast<uint32_t>(np); ++i)
      if (active[i]) act_idx.push_back(i);
    std::vector<probe> probes(act_idx.size());
    parallel_for(
        0, act_idx.size(),
        [&](size_t j) {
          const piece& p = pieces[act_idx[j]];
          uint64_t cmax = f.component_counts(p.seed).nontree_edges;
          uint64_t csz = std::min(sz, cmax);
          probes[j].ec = fetch_nontree_edges(level, p, csz);
          probes[j].exhausted = (csz >= cmax);
        },
        1);
    for (auto& pr : probes) stats_.edges_fetched += pr.ec.size();

    // Identify replacement edges (endpoints in different F_level pieces;
    // F_level is static for the whole level, so reps never go stale).
    // One dispatch for the whole phase: the per-edge connectivity checks
    // inside the filter are direct calls in the visit arm.
    std::vector<std::vector<edge>> repl_chunks(probes.size());
    f.visit([&](auto& fc) {
      parallel_for(
          0, probes.size(),
          [&](size_t j) {
            repl_chunks[j] = filter(probes[j].ec, [&](const edge& e) {
              return !fc.connected(e.u, e.v);
            });
          },
          1);
    });
    std::vector<edge> repl = flatten(repl_chunks);
    dedupe(repl);
    std::unordered_set<uint64_t> repl_keys;
    repl_keys.reserve(2 * repl.size());
    for (const edge& e : repl) repl_keys.insert(edge_key(e));

    // Merge supercomponents with a spanning forest over M-contracted
    // replacements (lines 16-21); sequential Kruskal over <= k edges.
    std::vector<uint32_t> repl_piece_u(repl.size());
    if (!repl.empty()) {
      std::vector<vertex_id> endpoints(2 * repl.size());
      parallel_for(0, repl.size(), [&](size_t i) {
        endpoints[2 * i] = repl[i].u;
        endpoints[2 * i + 1] = repl[i].v;
      });
      auto reps = f.batch_find_rep(endpoints);
      for (size_t i = 0; i < repl.size(); ++i) {
        auto it_u = piece_index.find(reps[2 * i]);
        auto it_v = piece_index.find(reps[2 * i + 1]);
        assert(it_u != piece_index.end() && it_v != piece_index.end());
        repl_piece_u[i] = it_u->second;
        uint32_t ru = m.find(it_u->second), rv = m.find(it_v->second);
        if (ru == rv) continue;
        uint64_t sz_merged = super_size[ru] + super_size[rv];
        m.unite(ru, rv);
        super_size[m.find(ru)] = sz_merged;
        chosen_total.push_back({repl[i], it_u->second});
        stats_.replacements_promoted++;
      }
    }
    std::unordered_map<uint64_t, uint32_t> repl_piece_of;
    repl_piece_of.reserve(2 * repl.size());
    for (size_t i = 0; i < repl.size(); ++i)
      repl_piece_of.emplace(edge_key(repl[i]), repl_piece_u[i]);

    // Deactivation / deferred-push decisions (lines 22-31).
    std::vector<std::vector<edge>> detach_chunks(probes.size());
    any_active = false;
    for (size_t j = 0; j < probes.size(); ++j) {
      uint32_t pi = act_idx[j];
      uint64_t msize = super_size[m.find(pi)];
      if (msize <= active_cap && !probes[j].exhausted) {
        detach_chunks[j] = std::move(probes[j].ec);
        any_active = true;
      } else {
        active[pi] = 0;
      }
    }
    std::vector<edge> detach = flatten(detach_chunks);
    dedupe(detach);
    detach = filter(detach, [&](const edge& e) {
      return !detached_keys.count(edge_key(e));
    });
    if (!detach.empty()) {
      ls_.detach_edges(level, detach);
      for (const edge& e : detach) {
        detached_keys.insert(edge_key(e));
        auto it = repl_piece_of.find(edge_key(e));
        if (it != repl_piece_of.end()) {
          detached_cross.push_back({e, it->second});
        } else {
          detached_within.push_back(e);
        }
      }
    }
    ++r;
  }

  // ------------------------------------------------------------------
  // Finalize (lines 33-35). A supercomponent S is "small" if its final
  // size still fits one level down. Small S: all its detached cross
  // edges AND all its chosen bridge edges descend to level-1 together,
  // keeping Invariant 2 (a cross edge below needs its bridge below).
  // Large S: its detached cross edges re-attach at this level, and its
  // chosen edges stay here as tree edges.
  // Detached within-piece edges always descend (their piece's level-i
  // tree edges were pushed by line 5).
  // ------------------------------------------------------------------
  auto final_small = [&](uint32_t piece_idx) {
    return super_size[m.find(piece_idx)] <= active_cap;
  };

  std::vector<edge> chosen_edges(chosen_total.size());
  for (size_t i = 0; i < chosen_total.size(); ++i)
    chosen_edges[i] = chosen_total[i].first;

  // Flip chosen records to tree status (adjacency kind flip only for the
  // still-attached ones; detached edges have no adjacency entries).
  std::vector<edge> attached_chosen, detached_chosen_small,
      detached_chosen_large;
  std::vector<edge> attached_chosen_small;  // subset of attached_chosen
  for (auto& [e, pi] : chosen_total) {
    if (detached_keys.count(edge_key(e))) {
      (final_small(pi) ? detached_chosen_small : detached_chosen_large)
          .push_back(e);
    } else {
      attached_chosen.push_back(e);
      if (final_small(pi)) attached_chosen_small.push_back(e);
    }
  }
  ls_.promote_to_tree(level, attached_chosen);
  {
    std::vector<edge> detached_chosen = detached_chosen_small;
    detached_chosen.insert(detached_chosen.end(),
                           detached_chosen_large.begin(),
                           detached_chosen_large.end());
    parallel_for(0, detached_chosen.size(), [&](size_t i) {
      edge_record* rec = ls_.dict().find(edge_key(detached_chosen[i]));
      assert(rec != nullptr && rec->is_tree == 0);
      rec->is_tree = 1;
    });
  }
  ls_.link_tree(level, chosen_edges);  // line 34: F_level gets every T edge
  buffered.insert(buffered.end(), chosen_edges.begin(), chosen_edges.end());

  // Bucket detached cross edges by final supercomponent size.
  std::vector<edge> cross_small, cross_large;
  for (auto& [e, pi] : detached_cross) {
    // Skip chosen edges (already categorized above).
    (final_small(pi) ? cross_small : cross_large).push_back(e);
  }
  {
    std::unordered_set<uint64_t> chosen_keys;
    for (const edge& e : chosen_edges) chosen_keys.insert(edge_key(e));
    auto not_chosen = [&](const edge& e) {
      return !chosen_keys.count(edge_key(e));
    };
    cross_small = filter(cross_small, not_chosen);
    cross_large = filter(cross_large, not_chosen);
  }

  // Large supercomponents: re-attach their cross edges at this level
  // (endpoints are connected here now that T is linked).
  std::vector<edge> reattach = cross_large;
  reattach.insert(reattach.end(), detached_chosen_large.begin(),
                  detached_chosen_large.end());
  ls_.insert_detached(level, reattach);

  // Everything else descends.
  std::vector<edge> descend = detached_within;
  descend.insert(descend.end(), cross_small.begin(), cross_small.end());
  descend.insert(descend.end(), detached_chosen_small.begin(),
                 detached_chosen_small.end());
  if (!descend.empty()) {
    assert(level > 0);
    stats_.edges_pushed += descend.size();
    ls_.insert_detached(level - 1, descend);
    ls_.link_tree(level - 1, detached_chosen_small);
  }
  if (!attached_chosen_small.empty()) {
    // Chosen bridges of small supercomponents that were never detached:
    // move them down so future pushes inside S stay above their bridges.
    stats_.edges_pushed += attached_chosen_small.size();
    ls_.move_down(level, attached_chosen_small);
  }
}

// ---------------------------------------------------------------------
// Invariant validation
// ---------------------------------------------------------------------

invariant_report batch_dynamic_connectivity::check_invariants() const {
  auto fail = [](std::string msg) {
    return invariant_report{false, std::move(msg)};
  };
  int top = ls_.top();
  auto edges = ls_.dict().entries();

  // Substrate health + per-level structural checks.
  for (int i = 0; i <= top; ++i) {
    const ett_forest* f = ls_.forest_if(i);
    if (f == nullptr) continue;
    if (auto err = f->check_consistency(); !err.empty())
      return fail("level " + std::to_string(i) + " ETT: " + err);
    if (const leveled_adjacency* a = ls_.adj_if(i)) {
      if (auto err = a->check_positions(ls_.dict(), i); !err.empty())
        return fail("level " + std::to_string(i) + " adjacency: " + err);
    }
    // Forest edge population: exactly the tree edges of level <= i.
    size_t expect = 0;
    for (auto& [key, rec] : edges)
      if (rec.is_tree && rec.level <= i) expect++;
    if (f->num_edges() != expect)
      return fail("level " + std::to_string(i) + ": forest has " +
                  std::to_string(f->num_edges()) + " edges, expected " +
                  std::to_string(expect));
    // The vertices level i can touch: endpoints of the tree edges F_i
    // holds (levels <= i) plus endpoints of level-i edges (which carry
    // the level's counters). With sparse activation this is EXACTLY the
    // set of vertices holding a directory slot in F_i; every other
    // vertex is a tourless singleton with zero counters, whose checks
    // the substrate's own check_consistency already covers. Sweeping
    // `touched` instead of [0, n) keeps the invariant walk O(edges) per
    // level — the same bound the structure itself now obeys.
    std::vector<vertex_id> touched;
    for (auto& [key, rec] : edges) {
      if ((rec.is_tree && rec.level <= i) || rec.level == i) {
        edge e = edge_from_key(key);
        touched.push_back(e.u);
        touched.push_back(e.v);
      }
    }
    sort_unique(touched);
    if (f->active_vertices() != touched.size())
      return fail("level " + std::to_string(i) + ": " +
                  std::to_string(f->active_vertices()) +
                  " active directory slots, but " +
                  std::to_string(touched.size()) +
                  " vertices carry level-" + std::to_string(i) + " edges");
    // Invariant 1 + augmented size cross-check.
    std::unordered_map<rep, size_t> comp_count;
    for (vertex_id v : touched) comp_count[f->find_rep(v)]++;
    for (vertex_id v : touched) {
      auto cc = f->component_counts(v);
      rep handle = f->find_rep(v);
      if (cc.vertices != comp_count[handle])
        return fail("level " + std::to_string(i) +
                    ": augmented size mismatch at vertex " +
                    std::to_string(v));
      if (cc.vertices > ls_.capacity(i))
        return fail("level " + std::to_string(i) + ": component of size " +
                    std::to_string(cc.vertices) + " exceeds capacity " +
                    std::to_string(ls_.capacity(i)) + " (Invariant 1)");
    }
    // Per-vertex counters match adjacency degrees.
    const leveled_adjacency* a = ls_.adj_if(i);
    for (vertex_id v : touched) {
      auto vc = f->vertex_counts(v);
      uint32_t td = a ? a->tree_degree(v) : 0;
      uint32_t nd = a ? a->nontree_degree(v) : 0;
      if (vc.tree_edges != td || vc.nontree_edges != nd)
        return fail("level " + std::to_string(i) +
                    ": counter/degree mismatch at vertex " +
                    std::to_string(v));
    }
  }

  // Per-edge placement: tree edges in F_level..F_top; non-tree endpoints
  // connected at their level (Invariant 2's cycle property).
  for (auto& [key, rec] : edges) {
    edge e = edge_from_key(key);
    if (rec.level < 0 || rec.level > top) return fail("bad edge level");
    for (int i = 0; i <= top; ++i) {
      const ett_forest* f = ls_.forest_if(i);
      bool should = rec.is_tree && rec.level <= i;
      bool present = f != nullptr && f->has_edge(e);
      if (should != present)
        return fail("edge placement violated at level " + std::to_string(i));
    }
    if (!rec.is_tree) {
      const ett_forest* f = ls_.forest_if(rec.level);
      if (f == nullptr || !f->connected(e.u, e.v))
        return fail("non-tree edge's endpoints not connected at its level "
                    "(Invariant 2)");
    }
  }

  // Global connectivity agrees with a from-scratch union-find.
  {
    union_find uf(num_vertices());
    for (auto& [key, rec] : edges) {
      edge e = edge_from_key(key);
      uf.unite(e.u, e.v);
    }
    auto labels = components();
    for (size_t v = 0; v < num_vertices(); ++v) {
      vertex_id lbl = labels[v];
      if (!uf.connected(static_cast<uint32_t>(v), lbl))
        return fail("component labels disagree with union-find");
      if (labels[lbl] != lbl) return fail("non-canonical component label");
      if (uf.find(static_cast<uint32_t>(v)) !=
          uf.find(static_cast<uint32_t>(labels[v])))
        return fail("component labels disagree with union-find");
    }
    // Partition granularity: vertices with equal uf roots share labels.
    std::unordered_map<uint32_t, vertex_id> root_label;
    for (size_t v = 0; v < num_vertices(); ++v) {
      uint32_t root = uf.find(static_cast<uint32_t>(v));
      auto [it, inserted] = root_label.emplace(root, labels[v]);
      if (!inserted && it->second != labels[v])
        return fail("connected vertices carry different labels");
    }
  }
  return {};
}

}  // namespace bdc
