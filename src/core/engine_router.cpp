#include "core/engine_router.hpp"

#include "obs/telemetry.hpp"
#include "parallel/scheduler.hpp"
#include "util/timer.hpp"

namespace bdc {

engine_router::engine_router(vertex_id n, router_options opts)
    : n_(n),
      opts_(opts),
      inc_(n),
      cache_rep_(n, 0),
      cache_stamp_(n, 0) {}

size_t engine_router::num_edges() const {
  return dynamic_ ? dynamic_->num_edges() : inc_.num_edges();
}

void engine_router::note_phase(op_kind k) const {
  if (last_op_ != op_kind::none && last_op_ != k) stats_.phase_switches++;
  last_op_ = k;
}

void engine_router::invalidate_cache() const {
  ++cache_epoch_;
  stats_.cache_invalidations++;
  // Memo epoch bump: one instant per update batch on the trace timeline,
  // so cache-hit droughts line up visibly with the batches causing them.
  obs::trace_instant("router.memo_invalidate");
}

void engine_router::promote() {
  BDC_PHASE_SPAN(span_promote, "router.promote");
  obs::trace_instant("router.promote");  // marks the one-shot hand-off
  timer t;
  std::vector<edge> accumulated = inc_.edge_list();
  dynamic_ =
      std::make_unique<batch_dynamic_connectivity>(n_, opts_.dynamic_opts);
  // One wholesale batch_insert IS the promotion: Algorithm 2 computes a
  // spanning forest of the accumulated set and registers every non-tree
  // edge directly at the top level — the batch history is never replayed.
  dynamic_->batch_insert(accumulated);
  stats_.promotions++;
  stats_.promotion_edges += accumulated.size();
  stats_.promotion_micros += static_cast<uint64_t>(t.elapsed_us());
}

void engine_router::batch_insert(std::span<const edge> es) {
  note_phase(op_kind::insert);
  stats_.insert_batches++;
  if (dynamic_) {
    dynamic_->batch_insert(es);
    stats_.batches_on_dynamic++;
  } else {
    inc_.batch_insert(es);
    stats_.batches_on_unionfind++;
  }
  invalidate_cache();
}

void engine_router::batch_delete(std::span<const edge> es) {
  note_phase(op_kind::erase);
  stats_.delete_batches++;
  if (!dynamic_) {
    bool touches = false;
    for (const edge& e : es) {
      if (inc_.has_edge(e)) {
        touches = true;
        break;
      }
    }
    if (!touches) {
      // Deleting only absent edges needs no HDT machinery — stay on the
      // union-find engine (a deletion of a never-inserted edge must not
      // force promotion).
      stats_.dropped_delete_batches++;
      stats_.batches_on_unionfind++;
      invalidate_cache();
      return;
    }
    promote();
  }
  dynamic_->batch_delete(es);
  stats_.batches_on_dynamic++;
  invalidate_cache();
}

std::vector<bool> engine_router::batch_connected(
    std::span<const std::pair<vertex_id, vertex_id>> qs) const {
  note_phase(op_kind::query);
  stats_.query_batches++;
  if (!opts_.cache_queries) {
    return dynamic_ ? dynamic_->batch_connected(qs)
                    : inc_.batch_connected(qs);
  }
  // Gather the endpoints this epoch has not resolved yet. Stamping at
  // gather time both dedupes within the batch and records the claim; the
  // memo write lands before any answer below reads it.
  std::vector<vertex_id> misses;
  auto probe = [&](vertex_id v) {
    if (v >= n_) return;
    stats_.cache_lookups++;
    if (cache_stamp_[v] == cache_epoch_) {
      stats_.cache_hits++;
      return;
    }
    cache_stamp_[v] = cache_epoch_;
    misses.push_back(v);
  };
  for (const auto& [u, v] : qs) {
    probe(u);
    probe(v);
  }
  if (!misses.empty()) {
    if (dynamic_) {
      const level_structure& ls = dynamic_->levels();
      auto reps = ls.forest_if(ls.top())->batch_find_rep(misses);
      for (size_t i = 0; i < misses.size(); ++i) {
        cache_rep_[misses[i]] =
            static_cast<uint64_t>(reinterpret_cast<uintptr_t>(reps[i]));
      }
    } else {
      parallel_for(0, misses.size(), [&](size_t i) {
        cache_rep_[misses[i]] = inc_.representative(misses[i]);
      });
    }
  }
  std::vector<bool> out(qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    auto [u, v] = qs[i];
    out[i] = u < n_ && v < n_ && cache_rep_[u] == cache_rep_[v];
  }
  return out;
}

bool engine_router::connected(vertex_id u, vertex_id v) const {
  std::pair<vertex_id, vertex_id> q{u, v};
  return batch_connected({&q, 1})[0];
}

std::vector<vertex_id> engine_router::components() const {
  return dynamic_ ? dynamic_->components() : inc_.components();
}

}  // namespace bdc
