// The HDT level hierarchy (paper §2.2, §3 "Data Structures"): lg n levels,
// each holding a spanning forest F_i (a batch-parallel ETT) and per-level
// adjacency lists A_i, plus the global edge dictionary ED.
//
// Level i (0-based; the paper's level ℓ is i+1) may hold components of G_i
// of size at most cap(i) = 2^(i+1); new edges enter at the top level
// L-1 = ceil(lg n) - 1, and unsuccessful replacement candidates are pushed
// toward level 0. F_i contains every tree edge of level <= i.
//
// Levels are materialized lazily: a forest/adjacency object exists only
// once an edge or buffered insertion reaches that level, so workloads that
// never push deep pay nothing for the untouched levels.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "adjacency/leveled_adjacency.hpp"
#include "ett/ett_forest.hpp"
#include "ett/ett_substrate.hpp"
#include "util/bits.hpp"
#include "util/types.hpp"

namespace bdc {

/// Per-level substrate mixing (ROADMAP "per-level substrate mixing"): low
/// levels hold components of at most 2^(i+1) vertices, so a cache-packed
/// sequential representation there can beat the pointer structures the
/// huge top-level components need. Levels strictly below `threshold` use
/// `low`; the rest use the structure's primary substrate. threshold <= 0
/// disables mixing. A policy whose `low` equals the primary substrate is
/// normalized to no-mixing at construction, so `mixed()` (and every A/B
/// label derived from it) never claims a configuration that is actually
/// uniform.
struct level_policy {
  int threshold = 0;
  bdc::substrate low = bdc::substrate::blocked;

  [[nodiscard]] bool mixed() const { return threshold > 0; }
  friend bool operator==(const level_policy&, const level_policy&) = default;
};

class level_structure {
 public:
  level_structure(vertex_id n, uint64_t seed,
                  bdc::substrate sub = substrate::skiplist,
                  level_policy policy = {},
                  bdc::dispatch disp = dispatch::static_variant);

  [[nodiscard]] vertex_id num_vertices() const { return n_; }
  [[nodiscard]] int num_levels() const {
    return static_cast<int>(levels_.size());
  }
  [[nodiscard]] int top() const { return num_levels() - 1; }
  /// Largest allowed component size of G_i at level i (Invariant 1).
  [[nodiscard]] uint64_t capacity(int level) const {
    return uint64_t{1} << (level + 1);
  }

  /// The primary Euler-tour representation (levels >= policy threshold).
  [[nodiscard]] bdc::substrate ett_substrate_kind() const {
    return substrate_;
  }
  /// The representation backing F_level under the active policy.
  [[nodiscard]] bdc::substrate substrate_at(int level) const {
    return level < policy_.threshold ? policy_.low : substrate_;
  }
  [[nodiscard]] const level_policy& policy() const { return policy_; }
  /// How every materialized forest routes substrate calls (static variant
  /// fast path vs the virtual bridge; see ett_forest).
  [[nodiscard]] bdc::dispatch dispatch_kind() const { return dispatch_; }

  /// Aggregated node-pool counters across every materialized forest.
  [[nodiscard]] node_pool::stats_snapshot pool_stats() const;
  /// Hierarchy footprint (safe anytime: atomic counters + pool stats):
  /// materialized forest count, active directory slots summed across
  /// them, and the bytes those forests retain (sparse vertex directories
  /// plus pooled tour nodes). This is what the levels.* gauges report —
  /// with sparse activation it scales with the touched vertices per
  /// level, not with n * materialized levels.
  struct hierarchy_stats {
    uint64_t materialized = 0;
    uint64_t active_vertices = 0;
    uint64_t bytes = 0;
  };
  [[nodiscard]] hierarchy_stats footprint() const;
  /// Trims every materialized forest's pool (see node_pool::trim),
  /// keeping up to `keep_bytes` of spare blocks per forest; returns the
  /// total bytes released. Quiescence required.
  size_t trim_pools(size_t keep_bytes = 0);

  /// F_i; materializes it if needed. The returned ett_forest pins the
  /// concrete substrate type, so hot paths can hoist dispatch with
  /// forest(i).visit(...).
  ett_forest& forest(int level);
  /// F_i if materialized, else nullptr (read paths).
  [[nodiscard]] const ett_forest* forest_if(int level) const {
    const auto& slot = levels_[static_cast<size_t>(level)].forest;
    return slot ? &*slot : nullptr;
  }
  [[nodiscard]] ett_forest* forest_if(int level) {
    auto& slot = levels_[static_cast<size_t>(level)].forest;
    return slot ? &*slot : nullptr;
  }

  leveled_adjacency& adj(int level);
  [[nodiscard]] const leveled_adjacency* adj_if(int level) const {
    return levels_[static_cast<size_t>(level)].adjacency.get();
  }

  edge_dict& dict() { return dict_; }
  [[nodiscard]] const edge_dict& dict() const { return dict_; }

  [[nodiscard]] const edge_record* record_of(edge e) const {
    return dict_.find(edge_key(e.canonical()));
  }
  [[nodiscard]] size_t num_edges() const { return dict_.size(); }

  // ------------------------------------------------------------------
  // Compound batch operations (each runs its own internal phases).
  // Every edge span must be canonical, deduplicated, non-self-loop.
  // ------------------------------------------------------------------

  /// Registers brand-new edges at `level`: dictionary records, adjacency
  /// entries, and ETT counters. Does NOT touch any forest (call link_tree
  /// for the tree subset).
  void add_edges(int level, std::span<const edge> es,
                 std::span<const uint8_t> is_tree);

  /// Links `es` (already-registered level-`level` tree edges, or buffered
  /// lower-level tree edges) into F_level.
  void link_tree(int level, std::span<const edge> es) {
    if (!es.empty()) forest(level).batch_link(es);
  }

  /// Fully deregisters edges: adjacency entries, counters, and dictionary
  /// records. Levels are read from the records (may be mixed). Does not
  /// touch forests.
  void remove_edges(std::span<const edge> es);

  /// Detaches level-`level` edges from their adjacency lists and counters
  /// but keeps their dictionary records (Algorithm 5's deferred pushes:
  /// the edges sit in limbo until insert_detached places them again).
  void detach_edges(int level, std::span<const edge> es);

  /// Re-attaches previously detached edges at `level` with their current
  /// is_tree status, updating records' level. Forest linking is separate.
  void insert_detached(int level, std::span<const edge> es);

  /// Moves attached level-`from` edges to level from-1: records,
  /// adjacency, counters. Tree edges are additionally linked into
  /// F_{from-1}. (Equivalent to detach + insert_detached + link.)
  void move_down(int from, std::span<const edge> es);

  /// Flips attached level-`level` non-tree edges to tree status (record,
  /// adjacency kind, counters). Forest linking is separate.
  void promote_to_tree(int level, std::span<const edge> es);

  /// Expands ETT fetch slots (vertex, take) into concrete edges from the
  /// per-vertex lists, preserving tour order; duplicates (an edge seen from
  /// both endpoints) are kept — callers dedupe as needed.
  void expand_fetch(int level, bool nontree,
                    std::span<const std::pair<vertex_id, uint32_t>> slots,
                    std::vector<edge>& out) const;

 private:
  struct level_state {
    std::optional<ett_forest> forest;
    std::unique_ptr<leveled_adjacency> adjacency;
  };

  /// Groups one incidence per edge endpoint and applies the adjacency op
  /// plus the matching ETT counter deltas at `level`.
  enum class adj_op { insert, erase, change_kind };
  void apply_adjacency(int level, std::span<const edge> es,
                       std::span<const uint8_t> is_tree, adj_op op);

  vertex_id n_;
  uint64_t seed_;
  bdc::substrate substrate_;
  level_policy policy_;
  bdc::dispatch dispatch_;
  std::vector<level_state> levels_;
  edge_dict dict_;
};

}  // namespace bdc
