// Parallel batch-dynamic graph connectivity (Acar, Anderson, Blelloch,
// Dhulipala — SPAA 2019): the library's primary data structure.
//
// Maintains an n-vertex undirected graph under batches of edge insertions,
// edge deletions, and connectivity queries:
//   * batch_insert  — Algorithm 2: O(k lg(1+n/k)) expected work, O(lg n)
//     depth w.h.p. per batch of k edges.
//   * batch_delete  — Algorithms 3-5: O(lg n lg(1+n/Δ)) expected amortized
//     work per edge (Δ = average deletion batch size) with the interleaved
//     search (Theorem 9); O(lg^3 n) depth w.h.p. (Theorem 7).
//   * batch_connected — Algorithm 1: O(k lg(1+n/k)) expected work, O(lg n)
//     depth w.h.p. (Theorem 3).
//
// The structure keeps lg n nested spanning forests F_0 ⊆ … ⊆ F_top over
// batch-parallel Euler tour trees, subject to the HDT invariants:
//   Invariant 1: components of G_i have at most 2^(i+1) vertices.
//   Invariant 2: F_top is a minimum spanning forest w.r.t. edge levels.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/level_structure.hpp"
#include "util/types.hpp"

namespace bdc {

/// Which replacement-search engine batch_delete uses.
enum class level_search_kind {
  /// Algorithm 5: single doubling sequence interleaved with spanning-forest
  /// rounds; deferred pushes. O(lg n) oracle phases per level. Default.
  interleaved,
  /// Algorithm 4: per-round restarted doubling. O(lg^2 n) phases per level.
  simple,
  /// Ablation: fetch ALL incident non-tree edges at once (the "natural
  /// idea" of §3.3 that breaks the charging argument).
  scan_all,
};

struct options {
  level_search_kind search = level_search_kind::interleaved;
  /// The primary Euler-tour substrate (every level, unless `policy`
  /// overrides the low levels).
  bdc::substrate substrate = bdc::substrate::skiplist;
  /// Per-level substrate mixing: levels below policy.threshold use
  /// policy.low instead of `substrate` (e.g. the cache-packed blocked
  /// representation where components are guaranteed tiny). The default
  /// (threshold 0) is uniform; a policy whose low substrate equals
  /// `substrate` is normalized to uniform at construction.
  level_policy policy;
  /// How forests route substrate calls: the devirtualized std::variant
  /// fast path (default) or the ett_substrate virtual bridge (escape
  /// hatch / A-B baseline). See src/ett/ett_forest.hpp.
  bdc::dispatch dispatch = bdc::dispatch::static_variant;
  uint64_t seed = 0xbdc5eed;
};

/// Canonical human-readable label of an options configuration for A/B
/// reports (stream_runner, benchmarks): "<substrate>", plus
/// "+<low><<threshold>" when a (normalized) mixed policy is active, plus
/// "!virtual" when the virtual-bridge dispatch escape hatch is forced.
/// Applies the same policy normalization as construction, so a nominally
/// mixed configuration that is actually uniform is labelled uniform.
[[nodiscard]] std::string config_label(const options& opts);

/// Cumulative instrumentation (benchmarks E4/E9 and the paper's
/// depth/work accounting). All counters are totals since construction.
struct statistics {
  uint64_t batches_inserted = 0;
  uint64_t batches_deleted = 0;
  uint64_t edges_inserted = 0;
  uint64_t edges_deleted = 0;
  uint64_t tree_edges_deleted = 0;
  uint64_t levels_searched = 0;   // ParallelLevelSearch invocations
  uint64_t search_rounds = 0;     // spanning-forest rounds across levels
  uint64_t doubling_phases = 0;   // oracle calls (edge-fetch phases)
  uint64_t edges_fetched = 0;     // non-tree edges examined
  uint64_t edges_pushed = 0;      // level decreases (tree + non-tree)
  uint64_t replacements_promoted = 0;  // non-tree edges become tree edges
};

struct invariant_report {
  bool ok = true;
  std::string message;
};

class batch_dynamic_connectivity {
 public:
  explicit batch_dynamic_connectivity(vertex_id n, options opts = {});

  [[nodiscard]] vertex_id num_vertices() const { return ls_.num_vertices(); }
  [[nodiscard]] size_t num_edges() const { return ls_.num_edges(); }
  [[nodiscard]] int num_levels() const { return ls_.num_levels(); }

  /// Inserts a batch of edges. Self-loops, duplicates within the batch,
  /// edges already present, and edges with an endpoint outside [0, n) are
  /// ignored. (Algorithm 2.)
  void batch_insert(std::span<const edge> edges);
  void insert(edge e) { batch_insert({&e, 1}); }

  /// Deletes a batch of edges; entries not currently present (including
  /// any with an endpoint outside [0, n)) are ignored. (Algorithm 3 + the
  /// configured level search.)
  void batch_delete(std::span<const edge> edges);
  void erase(edge e) { batch_delete({&e, 1}); }

  /// Answers k connectivity queries. A query with an endpoint outside
  /// [0, n) answers false. (Algorithm 1.)
  [[nodiscard]] std::vector<bool> batch_connected(
      std::span<const std::pair<vertex_id, vertex_id>> queries) const;
  [[nodiscard]] bool connected(vertex_id u, vertex_id v) const;

  [[nodiscard]] bool has_edge(edge e) const {
    return ls_.record_of(e) != nullptr;
  }

  /// Size (vertex count) of v's connected component; 0 for an id outside
  /// [0, n).
  [[nodiscard]] size_t component_size(vertex_id v) const;

  /// Component labels: labels[v] == labels[u] iff connected; the label is
  /// the smallest vertex id in the component.
  [[nodiscard]] std::vector<vertex_id> components() const;

  [[nodiscard]] const statistics& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Deep validation of every paper invariant plus substrate consistency
  /// (tests; cost O(m lg n + n lg n)).
  [[nodiscard]] invariant_report check_invariants() const;

  /// Access to the underlying hierarchy (benchmarks / diagnostics).
  [[nodiscard]] const level_structure& levels() const { return ls_; }

  /// Aggregated node-pool counters across every materialized forest.
  [[nodiscard]] node_pool::stats_snapshot pool_stats() const {
    return ls_.pool_stats();
  }
  /// Releases retained pool memory of emptied forests (quiescence
  /// required), keeping up to `keep_bytes` of spares per forest;
  /// returns the total bytes released.
  size_t trim_pools(size_t keep_bytes = 0) {
    return ls_.trim_pools(keep_bytes);
  }

 private:
  using rep = ett_substrate::rep;

  /// A still-disconnected component ("piece") during a level search.
  struct piece {
    vertex_id seed;         // any vertex inside the piece
    rep handle;             // F_level representative (stable per level)
    uint64_t size;          // vertex count
    uint64_t nontree_slots; // incident same-level non-tree slots (2x edges)
    uint64_t tree_slots;    // incident same-level tree slots
  };

  std::vector<piece> resolve_pieces(int level,
                                    std::span<const vertex_id> seeds) const;
  void push_tree_edges(int level, const std::vector<piece>& active);
  /// Fetches up to `want` non-tree slots of `p`, expands and dedupes to
  /// edges in tour order.
  std::vector<edge> fetch_nontree_edges(int level, const piece& p,
                                        uint64_t want) const;

  void level_search_simple(int level, std::span<const vertex_id> seeds,
                           std::vector<edge>& buffered, bool scan_all);
  void level_search_interleaved(int level, std::span<const vertex_id> seeds,
                                std::vector<edge>& buffered);

  options opts_;
  level_structure ls_;
  mutable statistics stats_;
};

}  // namespace bdc
