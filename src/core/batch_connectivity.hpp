// Parallel batch-dynamic graph connectivity (Acar, Anderson, Blelloch,
// Dhulipala — SPAA 2019): the library's primary data structure.
//
// Maintains an n-vertex undirected graph under batches of edge insertions,
// edge deletions, and connectivity queries:
//   * batch_insert  — Algorithm 2: O(k lg(1+n/k)) expected work, O(lg n)
//     depth w.h.p. per batch of k edges.
//   * batch_delete  — Algorithms 3-5: O(lg n lg(1+n/Δ)) expected amortized
//     work per edge (Δ = average deletion batch size) with the interleaved
//     search (Theorem 9); O(lg^3 n) depth w.h.p. (Theorem 7).
//   * batch_connected — Algorithm 1: O(k lg(1+n/k)) expected work, O(lg n)
//     depth w.h.p. (Theorem 3).
//
// The structure keeps lg n nested spanning forests F_0 ⊆ … ⊆ F_top over
// batch-parallel Euler tour trees, subject to the HDT invariants:
//   Invariant 1: components of G_i have at most 2^(i+1) vertices.
//   Invariant 2: F_top is a minimum spanning forest w.r.t. edge levels.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/level_structure.hpp"
#include "util/epoch.hpp"
#include "util/types.hpp"

namespace bdc {

/// Which replacement-search engine batch_delete uses.
enum class level_search_kind {
  /// Algorithm 5: single doubling sequence interleaved with spanning-forest
  /// rounds; deferred pushes. O(lg n) oracle phases per level. Default.
  interleaved,
  /// Algorithm 4: per-round restarted doubling. O(lg^2 n) phases per level.
  simple,
  /// Ablation: fetch ALL incident non-tree edges at once (the "natural
  /// idea" of §3.3 that breaks the charging argument).
  scan_all,
};

/// How the read service rebuilds the published snapshot on batch commit
/// (only meaningful with options::concurrent_reads).
enum class publish_mode : uint8_t {
  /// Relabel only the components the batch touched: O(touched vertices)
  /// enumeration through the substrate tours plus a chunk-pointer copy,
  /// with an automatic fallback to the full walk when the touched-size
  /// estimate exceeds n/4 (shatter-everything batches). Default.
  incremental,
  /// Always rebuild from a full O(n) components() walk (escape hatch /
  /// A-B baseline; `stream_runner --publish=full`).
  full,
};

[[nodiscard]] const char* to_string(publish_mode m);

struct options {
  level_search_kind search = level_search_kind::interleaved;
  /// The primary Euler-tour substrate (every level, unless `policy`
  /// overrides the low levels).
  bdc::substrate substrate = bdc::substrate::skiplist;
  /// Per-level substrate mixing: levels below policy.threshold use
  /// policy.low instead of `substrate` (e.g. the cache-packed blocked
  /// representation where components are guaranteed tiny). The default
  /// (threshold 0) is uniform; a policy whose low substrate equals
  /// `substrate` is normalized to uniform at construction.
  level_policy policy;
  /// How forests route substrate calls: the devirtualized std::variant
  /// fast path (default) or the ett_substrate virtual bridge (escape
  /// hatch / A-B baseline). See src/ett/ett_forest.hpp.
  bdc::dispatch dispatch = bdc::dispatch::static_variant;
  /// Enables the epoch-snapshot read service: snapshot_query() becomes
  /// available and may run from any thread CONCURRENTLY with
  /// batch_insert/batch_delete. Each update batch publishes an immutable
  /// connectivity snapshot (cost governed by `publish`), plus epoch
  /// bookkeeping on the top forest's node frees. The phased API
  /// (connected / batch_connected / ...) keeps its exclusive-phase
  /// contract either way.
  bool concurrent_reads = false;
  /// Snapshot publish strategy; see publish_mode.
  publish_mode publish = publish_mode::incremental;
  uint64_t seed = 0xbdc5eed;
};

/// Canonical human-readable label of an options configuration for A/B
/// reports (stream_runner, benchmarks): "<substrate>", plus
/// "+<low><<threshold>" when a (normalized) mixed policy is active, plus
/// "!virtual" when the virtual-bridge dispatch escape hatch is forced,
/// plus "+serve" when the epoch-snapshot read service is enabled (with
/// "!fullpub" appended when the incremental publisher is disabled).
/// Applies the same policy normalization as construction, so a nominally
/// mixed configuration that is actually uniform is labelled uniform.
[[nodiscard]] std::string config_label(const options& opts);

/// Cumulative instrumentation (benchmarks E4/E9 and the paper's
/// depth/work accounting). All counters are totals since construction.
struct statistics {
  uint64_t batches_inserted = 0;
  uint64_t batches_deleted = 0;
  uint64_t edges_inserted = 0;
  uint64_t edges_deleted = 0;
  uint64_t tree_edges_deleted = 0;
  uint64_t levels_searched = 0;   // ParallelLevelSearch invocations
  uint64_t search_rounds = 0;     // spanning-forest rounds across levels
  uint64_t doubling_phases = 0;   // oracle calls (edge-fetch phases)
  uint64_t edges_fetched = 0;     // non-tree edges examined
  uint64_t edges_pushed = 0;      // level decreases (tree + non-tree)
  uint64_t replacements_promoted = 0;  // non-tree edges become tree edges
  // Read-service publish accounting (options::concurrent_reads only).
  uint64_t snapshots_published = 0;  // committed snapshots (incl. version 0)
  uint64_t publishes_full = 0;       // full-walk rebuilds (mode or fallback)
  uint64_t publish_relabeled = 0;    // vertices rewritten incrementally
  uint64_t publish_micros = 0;       // cumulative publish_snapshot() time
};

struct invariant_report {
  bool ok = true;
  std::string message;
};

class batch_dynamic_connectivity {
 public:
  explicit batch_dynamic_connectivity(vertex_id n, options opts = {});

  [[nodiscard]] vertex_id num_vertices() const { return ls_.num_vertices(); }
  [[nodiscard]] size_t num_edges() const { return ls_.num_edges(); }
  [[nodiscard]] int num_levels() const { return ls_.num_levels(); }

  /// Inserts a batch of edges. Self-loops, duplicates within the batch,
  /// edges already present, and edges with an endpoint outside [0, n) are
  /// ignored. (Algorithm 2.)
  void batch_insert(std::span<const edge> edges);
  void insert(edge e) { batch_insert({&e, 1}); }

  /// Deletes a batch of edges; entries not currently present (including
  /// any with an endpoint outside [0, n)) are ignored. (Algorithm 3 + the
  /// configured level search.)
  void batch_delete(std::span<const edge> edges);
  void erase(edge e) { batch_delete({&e, 1}); }

  /// Answers k connectivity queries. A query with an endpoint outside
  /// [0, n) answers false. (Algorithm 1.)
  [[nodiscard]] std::vector<bool> batch_connected(
      std::span<const std::pair<vertex_id, vertex_id>> queries) const;
  [[nodiscard]] bool connected(vertex_id u, vertex_id v) const;

  [[nodiscard]] bool has_edge(edge e) const {
    return ls_.record_of(e) != nullptr;
  }

  /// Size (vertex count) of v's connected component; 0 for an id outside
  /// [0, n).
  [[nodiscard]] size_t component_size(vertex_id v) const;

  /// Component labels: labels[v] == labels[u] iff connected; the label is
  /// the smallest vertex id in the component.
  [[nodiscard]] std::vector<vertex_id> components() const;

  [[nodiscard]] const statistics& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Deep validation of every paper invariant plus substrate consistency
  /// (tests; cost O(m lg n + n) — the per-level sweeps walk only the
  /// vertices the level's edges touch, the O(n) is the one global
  /// union-find cross-check).
  [[nodiscard]] invariant_report check_invariants() const;

  /// Access to the underlying hierarchy (benchmarks / diagnostics).
  [[nodiscard]] const level_structure& levels() const { return ls_; }

  /// Aggregated node-pool counters across every materialized forest.
  /// Safe to call while readers are pinned (the counters are atomics);
  /// values are exact between batches, approximate mid-batch.
  [[nodiscard]] node_pool::stats_snapshot pool_stats() const {
    return ls_.pool_stats();
  }
  /// Releases retained pool memory of emptied forests (MUTATION
  /// quiescence required — asserted against the read service's writer
  /// flag; pinned readers are fine), keeping up to `keep_bytes` of
  /// spares per forest; returns the total bytes released.
  size_t trim_pools(size_t keep_bytes = 0) {
    return ls_.trim_pools(keep_bytes);
  }

  // ------------------------------------------------------------------
  // Epoch-snapshot read service (options::concurrent_reads).
  //
  // snapshot_query() pins an epoch and returns a view that may be used
  // from any thread WHILE update batches run. Two consistency levels:
  //   * connected(u, v[, &state]) — freshest committed answer. Fast
  //     path: if no batch is mid-flight (seqlock version even) and the
  //     top forest supports relaxed reads (blocked substrate), a live
  //     two-load probe answers in O(1) without touching the O(n)
  //     label array; the version is revalidated after the probe and a
  //     batch-overlapped answer is discarded in favor of the snapshot.
  //     `state` receives the committed batch count the answer reflects.
  //   * connected_pinned / components / component_size — frozen at the
  //     snapshot the view pinned; stable across later batches.
  // Every answer corresponds to SOME committed batch boundary — never a
  // torn mid-batch state (a bdc batch makes several substrate calls;
  // intermediate forests match neither boundary, hence the bdc-level
  // seqlock rather than substrate-level versioning).
  //
  // Views pin an epoch, which defers node reclamation: keep them
  // short-lived, and never let one outlive the structure.
  // ------------------------------------------------------------------

  class snapshot_view;

  /// True when constructed with options::concurrent_reads.
  [[nodiscard]] bool serving() const { return service_ != nullptr; }
  /// Pins the current epoch and snapshot. Requires serving().
  [[nodiscard]] snapshot_view snapshot_query() const;
  /// Number of committed update batches (the `state` a fresh view sees).
  [[nodiscard]] uint64_t committed_version() const;
  /// The service's epoch manager (tests / diagnostics); null if !serving().
  [[nodiscard]] epoch_manager* read_epochs() const {
    return service_ ? &service_->epochs : nullptr;
  }

 private:
  using rep = ett_substrate::rep;

  /// Immutable per-batch connectivity snapshot. labels[v] is the smallest
  /// vertex id of v's component; sizes[l] the component size stored at
  /// its label l (entries at dead labels go stale but are unreachable —
  /// size_of is only consulted at live labels, and a label is only ever
  /// reintroduced by relabelling a touched component, which rewrites its
  /// size).
  ///
  /// Storage is a chunked copy-on-write table: both arrays are split into
  /// fixed kChunkSize-entry chunks held by shared_ptr. Publishing a new
  /// version copies the chunk-pointer vectors (O(n / kChunkSize)) and
  /// clones only the chunks the batch touched, so untouched chunks are
  /// shared between versions by pointer and a pinned snapshot_view stays
  /// frozen for free. A superseded snapshot retires through the epoch
  /// limbo; chunks it solely owns (cloned-out by later versions) are
  /// freed transitively with it.
  struct snapshot {
    static constexpr size_t kChunkLog = 12;
    static constexpr size_t kChunkSize = size_t{1} << kChunkLog;
    using label_chunk = std::array<vertex_id, kChunkSize>;
    using size_chunk = std::array<uint32_t, kChunkSize>;

    uint64_t version = 0;
    vertex_id n = 0;
    std::vector<std::shared_ptr<label_chunk>> labels;
    std::vector<std::shared_ptr<size_chunk>> sizes;

    [[nodiscard]] vertex_id label_of(vertex_id v) const {
      return (*labels[v >> kChunkLog])[v & (kChunkSize - 1)];
    }
    [[nodiscard]] uint32_t size_of(vertex_id label) const {
      return (*sizes[label >> kChunkLog])[label & (kChunkSize - 1)];
    }
  };

  struct service_state {
    epoch_manager epochs;
    /// Seqlock over whole update batches: odd while one is in flight.
    std::atomic<uint64_t> phase{0};
    std::atomic<const snapshot*> published{nullptr};
    ~service_state() { delete published.load(std::memory_order_acquire); }
  };

  /// RAII batch bracket: phase -> odd on entry; on exit publishes the
  /// post-batch snapshot, phase -> even, advances the epoch, and drains
  /// what no reader can observe anymore.
  class update_scope {
   public:
    explicit update_scope(batch_dynamic_connectivity& owner);
    ~update_scope();

   private:
    batch_dynamic_connectivity& owner_;
  };

  /// Publishes the post-batch snapshot. The incremental path relabels
  /// only the components seeded by touched_ (endpoints of this batch's
  /// top-forest mutations); `force_full` (construction) and the
  /// publish_mode::full escape hatch rebuild from a full walk, as does
  /// the automatic fallback when the touched-size estimate exceeds n/4.
  void publish_snapshot(bool force_full);
  /// Full O(n) rebuild (components() walk + per-label counting).
  [[nodiscard]] snapshot* build_full_snapshot(uint64_t version) const;
  /// O(touched) rebuild sharing untouched chunks with `prev`; returns
  /// nullptr to request the full-walk fallback.
  [[nodiscard]] snapshot* build_incremental_snapshot(uint64_t version,
                                                     const snapshot& prev);
  /// Records endpoints of a top-forest mutation for the incremental
  /// publish. No-op unless serving.
  void note_touched(edge e) {
    if (service_ == nullptr) return;
    touched_.push_back(e.u);
    touched_.push_back(e.v);
  }

  options opts_;
  level_structure ls_;
  mutable statistics stats_;
  std::unique_ptr<service_state> service_;
  /// Vertices whose component membership may have changed this batch:
  /// endpoints of every top-forest link/cut (inserted tree edges, deleted
  /// tree edges, promoted replacements). Every post-batch component whose
  /// membership changed contains at least one of them. Consumed and
  /// cleared by publish_snapshot.
  std::vector<vertex_id> touched_;
  ett_forest* top_forest_ = nullptr;  // cached &ls_.forest(top); stable

  /// A still-disconnected component ("piece") during a level search.
  struct piece {
    vertex_id seed;         // any vertex inside the piece
    rep handle;             // F_level representative (stable per level)
    uint64_t size;          // vertex count
    uint64_t nontree_slots; // incident same-level non-tree slots (2x edges)
    uint64_t tree_slots;    // incident same-level tree slots
  };

  std::vector<piece> resolve_pieces(int level,
                                    std::span<const vertex_id> seeds) const;
  void push_tree_edges(int level, const std::vector<piece>& active);
  /// Fetches up to `want` non-tree slots of `p`, expands and dedupes to
  /// edges in tour order.
  std::vector<edge> fetch_nontree_edges(int level, const piece& p,
                                        uint64_t want) const;

  void level_search_simple(int level, std::span<const vertex_id> seeds,
                           std::vector<edge>& buffered, bool scan_all);
  void level_search_interleaved(int level, std::span<const vertex_id> seeds,
                                std::vector<edge>& buffered);
};

/// Epoch-pinned read view; see the service section above. Move-only (it
/// holds an epoch guard); destroy promptly to let reclamation proceed.
class batch_dynamic_connectivity::snapshot_view {
 public:
  snapshot_view(snapshot_view&&) noexcept = default;
  snapshot_view& operator=(snapshot_view&&) noexcept = default;
  snapshot_view(const snapshot_view&) = delete;
  snapshot_view& operator=(const snapshot_view&) = delete;

  /// Freshest committed connectivity answer (live probe when possible,
  /// pinned snapshot otherwise). `state`, if non-null, receives the
  /// committed batch count the answer reflects. Out-of-range ids answer
  /// false.
  [[nodiscard]] bool connected(vertex_id u, vertex_id v,
                               uint64_t* state = nullptr) const;
  /// Connectivity at exactly the pinned snapshot (frozen semantics).
  [[nodiscard]] bool connected_pinned(vertex_id u, vertex_id v) const {
    if (u >= snap_->n || v >= snap_->n) return false;
    return snap_->label_of(u) == snap_->label_of(v);
  }
  /// Component size at the pinned snapshot; 0 for out-of-range ids.
  [[nodiscard]] size_t component_size(vertex_id v) const {
    if (v >= snap_->n) return 0;
    return snap_->size_of(snap_->label_of(v));
  }
  /// Component labels at the pinned snapshot, materialized on demand into
  /// a flat vector. Deliberately O(n) time AND space per call: the
  /// snapshot itself is a chunked copy-on-write table shared between
  /// versions, so a flat view has to be assembled. Call once and reuse;
  /// prefer the point probes (connected_pinned / component_size) when a
  /// full labelling is not actually needed.
  [[nodiscard]] std::vector<vertex_id> components() const;
  /// The committed batch count of the pinned snapshot.
  [[nodiscard]] uint64_t version() const { return snap_->version; }

 private:
  friend class batch_dynamic_connectivity;
  snapshot_view(const batch_dynamic_connectivity* owner,
                epoch_manager::reader_guard guard, const snapshot* snap)
      : owner_(owner), guard_(std::move(guard)), snap_(snap) {}

  const batch_dynamic_connectivity* owner_;
  epoch_manager::reader_guard guard_;
  const snapshot* snap_;
};

}  // namespace bdc
