#include "core/level_structure.hpp"

#include <cassert>

#include "parallel/primitives.hpp"
#include "parallel/scheduler.hpp"
#include "sequence/semisort.hpp"

namespace bdc {

level_structure::level_structure(vertex_id n, uint64_t seed,
                                 bdc::substrate sub, level_policy policy,
                                 bdc::dispatch disp)
    : n_(n), seed_(seed), substrate_(sub), policy_(policy), dispatch_(disp),
      dict_(256) {
  // A "mixed" policy whose low substrate equals the primary one is
  // uniform in everything but name; normalize it away so policy().mixed()
  // and the configuration labels built from it cannot lie in A/B reports.
  if (policy_.low == substrate_) policy_ = {};
  int levels = std::max(1, static_cast<int>(log2_ceil(std::max<uint64_t>(
                               2, static_cast<uint64_t>(n)))));
  levels_.resize(static_cast<size_t>(levels));
  // The top forest always exists: queries and insertions use it.
  (void)forest(top());
}

ett_forest& level_structure::forest(int level) {
  auto& slot = levels_[static_cast<size_t>(level)].forest;
  if (!slot) {
    slot.emplace(substrate_at(level), n_,
                 hash_combine(seed_, 0x10000u + static_cast<uint64_t>(level)),
                 dispatch_);
  }
  return *slot;
}

node_pool::stats_snapshot level_structure::pool_stats() const {
  node_pool::stats_snapshot total;
  for (const level_state& ls : levels_)
    if (ls.forest) total += ls.forest->pool_stats();
  return total;
}

level_structure::hierarchy_stats level_structure::footprint() const {
  hierarchy_stats hs;
  for (const level_state& ls : levels_) {
    if (!ls.forest) continue;
    ++hs.materialized;
    hs.active_vertices += ls.forest->active_vertices();
    hs.bytes += ls.forest->directory_bytes() +
                ls.forest->pool_stats().retained_bytes();
  }
  return hs;
}

size_t level_structure::trim_pools(size_t keep_bytes) {
  size_t released = 0;
  for (level_state& ls : levels_)
    if (ls.forest) released += ls.forest->trim_pool(keep_bytes);
  return released;
}

leveled_adjacency& level_structure::adj(int level) {
  auto& slot = levels_[static_cast<size_t>(level)].adjacency;
  if (!slot) slot = std::make_unique<leveled_adjacency>();
  return *slot;
}

void level_structure::apply_adjacency(int level, std::span<const edge> es,
                                      std::span<const uint8_t> is_tree,
                                      adj_op op) {
  size_t k = es.size();
  if (k == 0) return;
  // Two incidences per edge, grouped by endpoint.
  std::vector<std::pair<vertex_id, leveled_adjacency::incidence>> inc(2 * k);
  parallel_for(0, k, [&](size_t i) {
    uint8_t t = is_tree[i];
    inc[2 * i] = {es[i].u, {es[i], t}};
    inc[2 * i + 1] = {es[i].v, {es[i], t}};
  });
  auto groups = group_by_key(std::move(inc));

  leveled_adjacency& a = adj(level);
  switch (op) {
    case adj_op::insert:
      a.insert_grouped(groups, dict_);
      break;
    case adj_op::erase:
      a.erase_grouped(groups, dict_);
      break;
    case adj_op::change_kind:
      a.change_kind_grouped(groups, dict_);
      break;
  }

  // Counter deltas on F_level: one entry per touched vertex.
  std::vector<ett_substrate::count_delta> deltas(groups.num_groups());
  parallel_for(0, groups.num_groups(), [&](size_t g) {
    int32_t tree = 0, nontree = 0;
    for (uint32_t i = groups.group_starts[g]; i < groups.group_starts[g + 1];
         ++i) {
      if (groups.records[i].second.is_tree)
        ++tree;
      else
        ++nontree;
    }
    switch (op) {
      case adj_op::insert:
        break;  // (+tree, +nontree)
      case adj_op::erase:
        tree = -tree;
        nontree = -nontree;
        break;
      case adj_op::change_kind:
        // incidences carry the NEW kind; each flip moves one unit over.
        nontree = -tree;
        break;
    }
    deltas[g] = {groups.group_key(g), tree, nontree};
  });
  forest(level).batch_add_counts(deltas);
}

void level_structure::add_edges(int level, std::span<const edge> es,
                                std::span<const uint8_t> is_tree) {
  size_t k = es.size();
  if (k == 0) return;
  dict_.reserve_for(k);
  parallel_for(0, k, [&](size_t i) {
    assert(es[i].u < es[i].v && "add_edges expects canonical edges");
    edge_record rec;
    rec.level = static_cast<int16_t>(level);
    rec.is_tree = is_tree[i];
    dict_.insert(edge_key(es[i]), rec);
  });
  apply_adjacency(level, es, is_tree, adj_op::insert);
}

void level_structure::remove_edges(std::span<const edge> es) {
  size_t k = es.size();
  if (k == 0) return;
  // Bucket by current level, then erase per level.
  std::vector<std::pair<int, edge>> by_level(k);
  std::vector<uint8_t> tree_flag(k);
  parallel_for(0, k, [&](size_t i) {
    const edge_record* rec = record_of(es[i]);
    assert(rec != nullptr);
    by_level[i] = {rec->level, es[i]};
  });
  auto groups = group_by_key(std::move(by_level));
  for (size_t g = 0; g < groups.num_groups(); ++g) {
    int level = groups.group_key(g);
    uint32_t st = groups.group_starts[g], en = groups.group_starts[g + 1];
    std::vector<edge> lvl_edges(en - st);
    std::vector<uint8_t> lvl_tree(en - st);
    parallel_for(0, lvl_edges.size(), [&](size_t i) {
      lvl_edges[i] = groups.records[st + i].second;
      lvl_tree[i] = record_of(lvl_edges[i])->is_tree;
    });
    apply_adjacency(level, lvl_edges, lvl_tree, adj_op::erase);
  }
  std::vector<uint64_t> keys(k);
  parallel_for(0, k, [&](size_t i) { keys[i] = edge_key(es[i]); });
  dict_.erase_batch(keys);
}

void level_structure::detach_edges(int level, std::span<const edge> es) {
  size_t k = es.size();
  if (k == 0) return;
  std::vector<uint8_t> tree_flag(k);
  parallel_for(0, k, [&](size_t i) {
    const edge_record* rec = record_of(es[i]);
    assert(rec != nullptr && rec->level == level);
    tree_flag[i] = rec->is_tree;
  });
  apply_adjacency(level, es, tree_flag, adj_op::erase);
}

void level_structure::insert_detached(int level, std::span<const edge> es) {
  size_t k = es.size();
  if (k == 0) return;
  std::vector<uint8_t> tree_flag(k);
  parallel_for(0, k, [&](size_t i) {
    edge_record* rec = dict_.find(edge_key(es[i]));
    assert(rec != nullptr);
    rec->level = static_cast<int16_t>(level);
    tree_flag[i] = rec->is_tree;
  });
  apply_adjacency(level, es, tree_flag, adj_op::insert);
}

void level_structure::move_down(int from, std::span<const edge> es) {
  if (es.empty()) return;
  assert(from > 0 && "cannot push below level 0");
  detach_edges(from, es);
  insert_detached(from - 1, es);
  // Tree edges additionally enter F_{from-1}.
  auto tree_subset = filter(
      std::vector<edge>(es.begin(), es.end()),
      [&](const edge& e) { return record_of(e)->is_tree != 0; });
  link_tree(from - 1, tree_subset);
}

void level_structure::promote_to_tree(int level, std::span<const edge> es) {
  size_t k = es.size();
  if (k == 0) return;
  std::vector<uint8_t> new_kind(k, 1);
  parallel_for(0, k, [&](size_t i) {
    edge_record* rec = dict_.find(edge_key(es[i]));
    assert(rec != nullptr && rec->is_tree == 0 && rec->level == level);
    rec->is_tree = 1;
  });
  apply_adjacency(level, es, new_kind, adj_op::change_kind);
}

void level_structure::expand_fetch(
    int level, bool nontree,
    std::span<const std::pair<vertex_id, uint32_t>> slots,
    std::vector<edge>& out) const {
  const leveled_adjacency* a = adj_if(level);
  if (a == nullptr) return;
  // Offsets for a parallel gather preserving slot order.
  std::vector<size_t> offsets(slots.size());
  parallel_for(0, slots.size(),
               [&](size_t i) { offsets[i] = slots[i].second; });
  size_t total = exclusive_scan(offsets);
  size_t base = out.size();
  out.resize(base + total);
  parallel_for(0, slots.size(), [&](size_t i) {
    std::vector<edge> tmp;
    tmp.reserve(slots[i].second);
    if (nontree) {
      a->fetch_nontree(slots[i].first, slots[i].second, tmp);
    } else {
      a->fetch_tree(slots[i].first, slots[i].second, tmp);
    }
    assert(tmp.size() == slots[i].second);
    std::copy(tmp.begin(), tmp.end(), out.begin() + base + offsets[i]);
  });
}

}  // namespace bdc
