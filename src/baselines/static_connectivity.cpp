#include "baselines/static_connectivity.hpp"

#include "parallel/primitives.hpp"
#include "parallel/scheduler.hpp"
#include "spanning/union_find.hpp"

namespace bdc {

static_recompute_connectivity::static_recompute_connectivity(vertex_id n)
    : n_(n), edges_(64) {}

void static_recompute_connectivity::batch_insert(std::span<const edge> es) {
  edges_.reserve_for(es.size());
  parallel_for(0, es.size(), [&](size_t i) {
    edge c = es[i].canonical();
    if (!c.is_self_loop()) edges_.insert(edge_key(c), 1);
  });
  stale_ = true;
}

void static_recompute_connectivity::batch_delete(std::span<const edge> es) {
  std::vector<uint64_t> keys(es.size());
  parallel_for(0, es.size(),
               [&](size_t i) { keys[i] = edge_key(es[i].canonical()); });
  edges_.erase_batch(keys);
  stale_ = true;
}

void static_recompute_connectivity::refresh() const {
  if (!stale_) return;
  auto entries = edges_.entries();
  std::vector<edge> all(entries.size());
  parallel_for(0, entries.size(),
               [&](size_t i) { all[i] = edge_from_key(entries[i].first); });
  labels_ = connected_components(n_, all);
  stale_ = false;
  ++recomputes_;
}

bool static_recompute_connectivity::connected(vertex_id u,
                                              vertex_id v) const {
  refresh();
  return labels_[u] == labels_[v];
}

std::vector<bool> static_recompute_connectivity::batch_connected(
    std::span<const std::pair<vertex_id, vertex_id>> qs) const {
  refresh();
  // Byte array first: std::vector<bool> bit-packing is not safe for
  // concurrent writes to neighboring indices.
  std::vector<uint8_t> bits(qs.size());
  parallel_for(0, qs.size(), [&](size_t i) {
    bits[i] = labels_[qs[i].first] == labels_[qs[i].second] ? 1 : 0;
  });
  return std::vector<bool>(bits.begin(), bits.end());
}

std::vector<vertex_id> static_recompute_connectivity::components() const {
  refresh();
  return std::vector<vertex_id>(labels_.begin(), labels_.end());
}

}  // namespace bdc
