#include "baselines/static_connectivity.hpp"

#include <cassert>

#include "parallel/primitives.hpp"
#include "parallel/scheduler.hpp"
#include "spanning/union_find.hpp"

namespace bdc {

static_recompute_connectivity::static_recompute_connectivity(vertex_id n)
    : n_(n), edges_(64) {}

void static_recompute_connectivity::batch_insert(std::span<const edge> es) {
  edges_.reserve_for(es.size());
  parallel_for(0, es.size(), [&](size_t i) {
    edge c = es[i].canonical();
    // Canonical form has u <= v, so one bound check covers both endpoints.
    // insert_if_absent, not insert: raw batches carry duplicate keys, and
    // the overwrite path of insert() would race on the value slot.
    if (!c.is_self_loop() && c.v < n_) edges_.insert_if_absent(edge_key(c), 1);
  });
  stale_.store(true, std::memory_order_release);
}

void static_recompute_connectivity::batch_delete(std::span<const edge> es) {
  std::vector<uint64_t> keys(es.size());
  parallel_for(0, es.size(),
               [&](size_t i) { keys[i] = edge_key(es[i].canonical()); });
  // Out-of-range keys can never have been inserted, so erase_batch drops
  // them as plain absent entries — no per-vertex array is indexed here.
  edges_.erase_batch(keys);
  stale_.store(true, std::memory_order_release);
}

const std::vector<uint32_t>& static_recompute_connectivity::refresh() const {
  // Fast path: acquire pairs with the release below, so a thread that
  // observes fresh also observes the rebuilt labels.
  if (!stale_.load(std::memory_order_acquire)) return labels_;
  std::lock_guard<std::mutex> lock(refresh_mutex_);
  if (stale_.load(std::memory_order_relaxed)) {
    auto entries = edges_.entries();
    std::vector<edge> all(entries.size());
    parallel_for(0, entries.size(),
                 [&](size_t i) { all[i] = edge_from_key(entries[i].first); });
    labels_ = connected_components(n_, all);
    recomputes_.fetch_add(1, std::memory_order_relaxed);
    stale_.store(false, std::memory_order_release);
  }
  return labels_;
}

bool static_recompute_connectivity::connected(vertex_id u,
                                              vertex_id v) const {
  if (u >= n_ || v >= n_) return false;
  const auto& labels = refresh();
  return labels[u] == labels[v];
}

std::vector<bool> static_recompute_connectivity::batch_connected(
    std::span<const std::pair<vertex_id, vertex_id>> qs) const {
  // Refresh once, up front — the parallel loop below must only ever read
  // a quiescent label vector (never trigger or race a rebuild).
  const auto& labels = refresh();
  // Byte array first: std::vector<bool> bit-packing is not safe for
  // concurrent writes to neighboring indices.
  std::vector<uint8_t> bits(qs.size());
  parallel_for(0, qs.size(), [&](size_t i) {
    // Quiescence: an update racing this query batch would violate the
    // phase contract and could hand workers a resized labels_.
    assert(!stale_.load(std::memory_order_relaxed));
    auto [u, v] = qs[i];
    bits[i] = u < n_ && v < n_ && labels[u] == labels[v] ? 1 : 0;
  });
  return std::vector<bool>(bits.begin(), bits.end());
}

std::vector<vertex_id> static_recompute_connectivity::components() const {
  const auto& labels = refresh();
  return std::vector<vertex_id>(labels.begin(), labels.end());
}

}  // namespace bdc
