// Baseline: work-efficient parallel incremental (insertion-only) batch
// connectivity via concurrent union-find, after Simsiri, Tangwongsan,
// Tirthapura, Wu (Euro-Par 2016) [57]. Supports batch insertions and batch
// queries only — the restricted setting the paper's introduction contrasts
// against. Used by experiment E11, and as the insert-only engine behind
// engine_router (src/core/engine_router.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hashtable/phase_concurrent_map.hpp"
#include "spanning/union_find.hpp"
#include "util/types.hpp"

namespace bdc {

class incremental_connectivity {
 public:
  explicit incremental_connectivity(vertex_id n) : uf_(n), edges_(64) {}

  [[nodiscard]] size_t num_vertices() const { return uf_.size(); }
  /// Distinct edges actually present. Self-loops, duplicates within a
  /// batch, re-insertions, and out-of-range endpoints do not count —
  /// mirrors the dynamic structure's set-semantics accounting (ISSUE 8
  /// bugfix: the seed added es.size() wholesale).
  [[nodiscard]] size_t num_edges() const { return edges_.size(); }

  /// O(k α(n)) expected work for a batch of k insertions. Self-loops and
  /// edges with an endpoint outside [0, n) are dropped.
  void batch_insert(std::span<const edge> es);

  [[nodiscard]] bool connected(vertex_id u, vertex_id v) const {
    if (u >= num_vertices() || v >= num_vertices()) return false;
    // find() path-halves, so the handle is morally const.
    return const_cast<concurrent_union_find&>(uf_).find(u) ==
           const_cast<concurrent_union_find&>(uf_).find(v);
  }
  [[nodiscard]] std::vector<bool> batch_connected(
      std::span<const std::pair<vertex_id, vertex_id>> qs) const;

  /// Component labels: labels[v] == labels[u] iff connected; the label is
  /// the smallest vertex id in the component (the dynamic structure's
  /// labelling contract).
  [[nodiscard]] std::vector<vertex_id> components() const;

  /// Current union-find representative of v (not the min-vertex label;
  /// stable only until the next batch_insert). Precondition: v < n.
  [[nodiscard]] vertex_id representative(vertex_id v) const {
    return const_cast<concurrent_union_find&>(uf_).find(v);
  }

  [[nodiscard]] bool has_edge(edge e) const {
    edge c = e.canonical();
    if (c.is_self_loop() || c.v >= num_vertices()) return false;
    return edges_.contains(edge_key(c));
  }
  /// Snapshot of the present edge set, canonical form, unspecified order.
  /// Used by engine_router's one-shot promotion bulk load.
  [[nodiscard]] std::vector<edge> edge_list() const;

 private:
  concurrent_union_find uf_;
  phase_concurrent_map<uint8_t> edges_;  // key = canonical edge key
};

}  // namespace bdc
