// Baseline: work-efficient parallel incremental (insertion-only) batch
// connectivity via concurrent union-find, after Simsiri, Tangwongsan,
// Tirthapura, Wu (Euro-Par 2016) [57]. Supports batch insertions and batch
// queries only — the restricted setting the paper's introduction contrasts
// against. Used by experiment E11.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "spanning/union_find.hpp"
#include "util/types.hpp"

namespace bdc {

class incremental_connectivity {
 public:
  explicit incremental_connectivity(vertex_id n) : uf_(n) {}

  [[nodiscard]] size_t num_vertices() const { return uf_.size(); }
  [[nodiscard]] size_t num_edges() const { return num_edges_; }

  /// O(k α(n)) expected work for a batch of k insertions.
  void batch_insert(std::span<const edge> es);

  [[nodiscard]] bool connected(vertex_id u, vertex_id v) const {
    // find() path-halves, so the handle is morally const.
    return const_cast<concurrent_union_find&>(uf_).find(u) ==
           const_cast<concurrent_union_find&>(uf_).find(v);
  }
  [[nodiscard]] std::vector<bool> batch_connected(
      std::span<const std::pair<vertex_id, vertex_id>> qs) const;

 private:
  concurrent_union_find uf_;
  size_t num_edges_ = 0;
};

}  // namespace bdc
