// Baseline: recompute connectivity from scratch on every batch (paper §1:
// "these algorithms may recompute the connected components of the entire
// graph even for very small batches", costing O(m + n) work per batch).
//
// Maintains only the edge set; every query epoch rebuilds component labels
// with the parallel static connectivity of src/spanning. This is the
// comparator for experiment E7 (dynamic-vs-static crossover).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "hashtable/phase_concurrent_map.hpp"
#include "util/types.hpp"

namespace bdc {

class static_recompute_connectivity {
 public:
  explicit static_recompute_connectivity(vertex_id n);

  [[nodiscard]] vertex_id num_vertices() const { return n_; }
  [[nodiscard]] size_t num_edges() const { return edges_.size(); }

  /// Self-loops and edges with an endpoint outside [0, n) are dropped.
  void batch_insert(std::span<const edge> es);
  /// Entries not currently present (including out-of-range ids) are
  /// ignored.
  void batch_delete(std::span<const edge> es);

  // Queries share the structure's phase contract with the dynamic
  // structure: they may run concurrently with each other (the first
  // arrival performs the rebuild under a mutex, the rest wait), but not
  // with batch_insert/batch_delete.
  [[nodiscard]] bool connected(vertex_id u, vertex_id v) const;
  [[nodiscard]] std::vector<bool> batch_connected(
      std::span<const std::pair<vertex_id, vertex_id>> qs) const;
  [[nodiscard]] std::vector<vertex_id> components() const;

  /// Number of full recomputes performed (each O(m + n) work).
  [[nodiscard]] uint64_t recomputes() const {
    return recomputes_.load(std::memory_order_relaxed);
  }

 private:
  /// Rebuilds labels if stale and returns them. Double-checked so
  /// concurrent query threads agree on one rebuild instead of racing the
  /// label vector (ISSUE 8 bugfix: the seed mutated labels_/stale_ from
  /// every const query path with no synchronization).
  const std::vector<uint32_t>& refresh() const;

  vertex_id n_;
  phase_concurrent_map<uint8_t> edges_;  // key = canonical edge key
  mutable std::mutex refresh_mutex_;
  mutable std::vector<uint32_t> labels_;
  mutable std::atomic<bool> stale_{true};
  mutable std::atomic<uint64_t> recomputes_{0};
};

}  // namespace bdc
