#include "baselines/incremental_connectivity.hpp"

#include "parallel/scheduler.hpp"

namespace bdc {

void incremental_connectivity::batch_insert(std::span<const edge> es) {
  parallel_for(0, es.size(), [&](size_t i) {
    if (!es[i].is_self_loop()) uf_.unite(es[i].u, es[i].v);
  });
  num_edges_ += es.size();
}

std::vector<bool> incremental_connectivity::batch_connected(
    std::span<const std::pair<vertex_id, vertex_id>> qs) const {
  // Byte array first: std::vector<bool> bit-packing is not safe for
  // concurrent writes to neighboring indices.
  std::vector<uint8_t> bits(qs.size());
  auto& uf = const_cast<concurrent_union_find&>(uf_);
  parallel_for(0, qs.size(), [&](size_t i) {
    bits[i] = uf.find(qs[i].first) == uf.find(qs[i].second) ? 1 : 0;
  });
  return std::vector<bool>(bits.begin(), bits.end());
}

}  // namespace bdc
