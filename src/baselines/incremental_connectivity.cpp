#include "baselines/incremental_connectivity.hpp"

#include "parallel/scheduler.hpp"

namespace bdc {

void incremental_connectivity::batch_insert(std::span<const edge> es) {
  const vertex_id n = static_cast<vertex_id>(uf_.size());
  edges_.reserve_for(es.size());
  parallel_for(0, es.size(), [&](size_t i) {
    edge c = es[i].canonical();
    // Canonical form has u <= v, so one bound check covers both endpoints.
    if (c.is_self_loop() || c.v >= n) return;
    // Raw batches carry duplicate keys (repeats, both orientations), so
    // this must be insert_if_absent: exactly one caller per key claims it
    // and writes the value; plain insert()'s overwrite path would race.
    // Duplicates never recount, so num_edges() is edges_.size().
    edges_.insert_if_absent(edge_key(c), 1);
    uf_.unite(c.u, c.v);
  });
}

std::vector<bool> incremental_connectivity::batch_connected(
    std::span<const std::pair<vertex_id, vertex_id>> qs) const {
  const vertex_id n = static_cast<vertex_id>(uf_.size());
  // Byte array first: std::vector<bool> bit-packing is not safe for
  // concurrent writes to neighboring indices.
  std::vector<uint8_t> bits(qs.size());
  auto& uf = const_cast<concurrent_union_find&>(uf_);
  parallel_for(0, qs.size(), [&](size_t i) {
    auto [u, v] = qs[i];
    bits[i] = u < n && v < n && uf.find(u) == uf.find(v) ? 1 : 0;
  });
  return std::vector<bool>(bits.begin(), bits.end());
}

std::vector<vertex_id> incremental_connectivity::components() const {
  const size_t n = uf_.size();
  auto& uf = const_cast<concurrent_union_find&>(uf_);
  std::vector<vertex_id> rep_of(n);
  parallel_for(0, n, [&](size_t v) {
    rep_of[v] = uf.find(static_cast<vertex_id>(v));
  });
  // Two passes turn union-find representatives into min-vertex labels:
  // ids ascend, so the first visitor of each representative is the min.
  std::vector<vertex_id> min_at(n, kNoVertex);
  std::vector<vertex_id> labels(n);
  for (size_t v = 0; v < n; ++v) {
    if (min_at[rep_of[v]] == kNoVertex)
      min_at[rep_of[v]] = static_cast<vertex_id>(v);
  }
  parallel_for(0, n, [&](size_t v) { labels[v] = min_at[rep_of[v]]; });
  return labels;
}

std::vector<edge> incremental_connectivity::edge_list() const {
  auto entries = edges_.entries();
  std::vector<edge> out(entries.size());
  parallel_for(0, entries.size(),
               [&](size_t i) { out[i] = edge_from_key(entries[i].first); });
  return out;
}

}  // namespace bdc
