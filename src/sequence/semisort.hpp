// Parallel semisort / group-by (Gu, Shun, Sun, Blelloch, SPAA 2015 — paper
// §2 "Parallel Primitives"): reorder (key, value) records so equal keys are
// contiguous, in O(n) expected work and O(lg n) depth, by hashing keys into
// buckets with a parallel counting sort and grouping within each
// (expected-constant-size) bucket.
//
// The grouped output is flattened: `records` holds the reordered pairs and
// `group_starts` delimits maximal runs of equal keys, avoiding per-group
// allocations on the hot path of batch updates.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "parallel/primitives.hpp"
#include "parallel/scheduler.hpp"
#include "util/bits.hpp"
#include "util/random.hpp"

namespace bdc {

template <typename K, typename V>
struct grouped_records {
  std::vector<std::pair<K, V>> records;   // equal keys contiguous
  std::vector<uint32_t> group_starts;     // indices of group beginnings
                                          // (plus records.size() sentinel)
  [[nodiscard]] size_t num_groups() const {
    return group_starts.empty() ? 0 : group_starts.size() - 1;
  }
  [[nodiscard]] const K& group_key(size_t g) const {
    return records[group_starts[g]].first;
  }
  [[nodiscard]] size_t group_size(size_t g) const {
    return group_starts[g + 1] - group_starts[g];
  }
};

namespace internal {

/// Parallel counting sort of `in` by bucket(in[i]) into `out`.
/// Buckets must be < num_buckets. Stable within a block but not globally
/// (irrelevant for semisort).
template <typename T, typename BucketFn>
void counting_sort_by_bucket(const std::vector<T>& in, std::vector<T>& out,
                             size_t num_buckets, const BucketFn& bucket,
                             std::vector<size_t>& bucket_offsets_out) {
  size_t n = in.size();
  size_t blocks = num_blocks(n);
  size_t block_size = (n + blocks - 1) / blocks;
  // counts[b * num_buckets + k] = occurrences of bucket k in block b
  std::vector<size_t> counts(blocks * num_buckets, 0);
  parallel_for(
      0, blocks,
      [&](size_t b) {
        size_t lo = b * block_size, hi = std::min(n, lo + block_size);
        size_t* local = counts.data() + b * num_buckets;
        for (size_t i = lo; i < hi; ++i) ++local[bucket(in[i])];
      },
      1);
  // Offsets: bucket-major prefix sums so output is bucket-contiguous.
  std::vector<size_t> offsets(blocks * num_buckets);
  size_t total = 0;
  bucket_offsets_out.assign(num_buckets + 1, 0);
  for (size_t k = 0; k < num_buckets; ++k) {
    bucket_offsets_out[k] = total;
    for (size_t b = 0; b < blocks; ++b) {
      offsets[b * num_buckets + k] = total;
      total += counts[b * num_buckets + k];
    }
  }
  bucket_offsets_out[num_buckets] = total;
  out.resize(n);
  parallel_for(
      0, blocks,
      [&](size_t b) {
        size_t lo = b * block_size, hi = std::min(n, lo + block_size);
        size_t* local = offsets.data() + b * num_buckets;
        for (size_t i = lo; i < hi; ++i) out[local[bucket(in[i])]++] = in[i];
      },
      1);
}

}  // namespace internal

/// Semisorts `pairs` by key and computes group boundaries.
/// KeyHash must be a 64-bit hash; defaults to hash64 of the key cast to
/// uint64_t (fine for integral keys).
template <typename K, typename V, typename KeyHash>
grouped_records<K, V> group_by_key(std::vector<std::pair<K, V>> pairs,
                                   const KeyHash& key_hash) {
  using P = std::pair<K, V>;
  grouped_records<K, V> result;
  size_t n = pairs.size();
  if (n == 0) {
    result.group_starts = {0};
    result.group_starts.clear();
    return result;
  }
  if (n <= 2048) {
    // Small batches: sequential sort by hash, then group.
    std::sort(pairs.begin(), pairs.end(), [&](const P& a, const P& b) {
      uint64_t ha = key_hash(a.first), hb = key_hash(b.first);
      return ha != hb ? ha < hb : a.first < b.first;
    });
    result.records = std::move(pairs);
  } else {
    size_t num_buckets =
        std::min<size_t>(next_pow2(n / 256 + 1), size_t{1} << 16);
    uint64_t mask = num_buckets - 1;
    std::vector<size_t> bucket_offsets;
    internal::counting_sort_by_bucket(
        pairs, result.records, num_buckets,
        [&](const P& p) { return key_hash(p.first) & mask; }, bucket_offsets);
    // Sort each (expected small) bucket to make equal keys contiguous.
    parallel_for(
        0, num_buckets,
        [&](size_t k) {
          auto lo = result.records.begin() +
                    static_cast<ptrdiff_t>(bucket_offsets[k]);
          auto hi = result.records.begin() +
                    static_cast<ptrdiff_t>(bucket_offsets[k + 1]);
          std::sort(lo, hi, [&](const P& a, const P& b) {
            uint64_t ha = key_hash(a.first), hb = key_hash(b.first);
            return ha != hb ? ha < hb : a.first < b.first;
          });
        },
        1);
  }
  // Group boundaries: positions where the key changes.
  const auto& rec = result.records;
  auto starts = pack_index(
      n, [&](size_t i) { return i == 0 || rec[i].first != rec[i - 1].first; });
  result.group_starts.resize(starts.size() + 1);
  parallel_for(0, starts.size(), [&](size_t i) {
    result.group_starts[i] = static_cast<uint32_t>(starts[i]);
  });
  result.group_starts.back() = static_cast<uint32_t>(n);
  return result;
}

template <typename K, typename V>
grouped_records<K, V> group_by_key(std::vector<std::pair<K, V>> pairs) {
  return group_by_key(std::move(pairs), [](const K& k) {
    return hash64(static_cast<uint64_t>(k));
  });
}

}  // namespace bdc
