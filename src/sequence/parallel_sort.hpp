// Parallel comparison sort: mergesort with divide-and-conquer parallel merge
// (O(n lg n) work, O(lg^2 n) depth). Used for deduplication and for
// deterministic ordering of small edge sets; the semisort in semisort.hpp is
// the linear-work workhorse for grouping.
#pragma once

#include <algorithm>
#include <iterator>
#include <vector>

#include "parallel/scheduler.hpp"

namespace bdc {

namespace internal {

inline constexpr size_t kSortBase = 4096;
inline constexpr size_t kMergeBase = 4096;

/// Merges [a_lo,a_hi) and [b_lo,b_hi) of `src` into `dst` starting at out.
template <typename It, typename OutIt, typename Cmp>
void parallel_merge(It a_lo, It a_hi, It b_lo, It b_hi, OutIt out,
                    const Cmp& cmp) {
  size_t na = static_cast<size_t>(a_hi - a_lo);
  size_t nb = static_cast<size_t>(b_hi - b_lo);
  if (na + nb <= kMergeBase) {
    std::merge(a_lo, a_hi, b_lo, b_hi, out, cmp);
    return;
  }
  if (na < nb) {  // split on the larger side
    parallel_merge(b_lo, b_hi, a_lo, a_hi, out, cmp);
    return;
  }
  It a_mid = a_lo + static_cast<ptrdiff_t>(na / 2);
  It b_mid = std::lower_bound(b_lo, b_hi, *a_mid, cmp);
  OutIt out_mid = out + (a_mid - a_lo) + (b_mid - b_lo);
  parallel_invoke(
      [&] { parallel_merge(a_lo, a_mid, b_lo, b_mid, out, cmp); },
      [&] { parallel_merge(a_mid, a_hi, b_mid, b_hi, out_mid, cmp); });
}

/// Sorts [lo, hi) of `a`; result lands in `a` if `to_a`, else in `buf`.
template <typename T, typename Cmp>
void mergesort_rec(T* a, T* buf, size_t lo, size_t hi, bool to_a,
                   const Cmp& cmp) {
  if (hi - lo <= kSortBase) {
    std::sort(a + lo, a + hi, cmp);
    if (!to_a) std::copy(a + lo, a + hi, buf + lo);
    return;
  }
  size_t mid = lo + (hi - lo) / 2;
  parallel_invoke([&] { mergesort_rec(a, buf, lo, mid, !to_a, cmp); },
                  [&] { mergesort_rec(a, buf, mid, hi, !to_a, cmp); });
  T* src = to_a ? buf : a;
  T* dst = to_a ? a : buf;
  parallel_merge(src + lo, src + mid, src + mid, src + hi, dst + lo, cmp);
}

}  // namespace internal

/// Stable-order-irrelevant parallel sort.
template <typename T, typename Cmp = std::less<T>>
void parallel_sort(std::vector<T>& v, Cmp cmp = {}) {
  if (v.size() <= internal::kSortBase) {
    std::sort(v.begin(), v.end(), cmp);
    return;
  }
  std::vector<T> buf(v.size());
  internal::mergesort_rec(v.data(), buf.data(), 0, v.size(), true, cmp);
}

/// Sorts and removes duplicates.
template <typename T, typename Cmp = std::less<T>>
void sort_unique(std::vector<T>& v, Cmp cmp = {}) {
  parallel_sort(v, cmp);
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace bdc
