// Scheduler runtime: worker registration, deque routing, and the helping
// join loop. Thread management lives in worker_pool.cpp.
#include "parallel/scheduler.hpp"

#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "util/random.hpp"

namespace bdc::internal {

namespace {
thread_local int tl_worker_index = -1;
}  // namespace

struct scheduler_runtime::impl {
  std::vector<work_stealing_deque> deques;
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  std::atomic<bool> external_slot_taken{false};
  // Sleep machinery: workers park here when stealing keeps failing.
  std::mutex sleep_mutex;
  std::condition_variable sleep_cv;
  std::atomic<int> num_sleeping{0};

  explicit impl(unsigned n) : deques(n) {}
};

struct worker_main_access {
  static void run(scheduler_runtime* rt, unsigned index) {
    rt->worker_loop(index);
  }
};

scheduler_runtime::scheduler_runtime(unsigned nw)
    : num_workers_(nw == 0 ? 1 : nw), impl_(new impl(num_workers_)) {
  // Slot 0 is reserved for the external (calling) thread; slots 1..P-1 are
  // pool threads.
  for (unsigned i = 1; i < num_workers_; ++i) {
    impl_->threads.emplace_back(
        [this, i] { worker_main_access::run(this, i); });
  }
}

scheduler_runtime::~scheduler_runtime() {
  impl_->stop.store(true, std::memory_order_release);
  impl_->sleep_cv.notify_all();
  for (auto& t : impl_->threads) t.join();
  delete impl_;
}

int scheduler_runtime::worker_index() { return tl_worker_index; }

bool scheduler_runtime::try_register_external() {
  bool expected = false;
  if (impl_->external_slot_taken.compare_exchange_strong(expected, true)) {
    tl_worker_index = 0;
    return true;
  }
  return false;
}

void scheduler_runtime::unregister_external() {
  assert(tl_worker_index == 0);
  tl_worker_index = -1;
  impl_->external_slot_taken.store(false, std::memory_order_release);
}

void scheduler_runtime::push(job* j) {
  assert(tl_worker_index >= 0);
  impl_->deques[static_cast<size_t>(tl_worker_index)].push(j);
}

job* scheduler_runtime::pop() {
  assert(tl_worker_index >= 0);
  return impl_->deques[static_cast<size_t>(tl_worker_index)].pop();
}

void scheduler_runtime::notify_work() {
  if (impl_->num_sleeping.load(std::memory_order_relaxed) > 0) {
    impl_->sleep_cv.notify_one();
  }
}

job* scheduler_runtime::try_steal(uint64_t& rng_state) {
  rng_state = hash64(rng_state);
  unsigned victim = static_cast<unsigned>(rng_state % num_workers_);
  int self = tl_worker_index;
  if (static_cast<int>(victim) == self) {
    victim = (victim + 1) % num_workers_;
    if (static_cast<int>(victim) == self) return nullptr;  // P == 1
  }
  return impl_->deques[victim].steal();
}

void scheduler_runtime::wait_for(job* j) {
  uint64_t rng = hash64(static_cast<uint64_t>(tl_worker_index) + 0x9e37u);
  int failures = 0;
  while (!j->done.load(std::memory_order_acquire)) {
    job* other = pop();
    if (other == nullptr) other = try_steal(rng);
    if (other != nullptr) {
      other->run();
      failures = 0;
    } else if (++failures > 64) {
      std::this_thread::yield();
      failures = 0;
    }
  }
}

void scheduler_runtime::worker_loop(unsigned index) {
  tl_worker_index = static_cast<int>(index);
  uint64_t rng = hash64(index * 0x9e3779b9u + 1);
  int failures = 0;
  while (!impl_->stop.load(std::memory_order_acquire)) {
    job* j = try_steal(rng);
    if (j != nullptr) {
      j->run();
      failures = 0;
      continue;
    }
    if (++failures < 256) {
      // brief spin: cheap reaction to freshly pushed work
      continue;
    }
    if (failures < 512) {
      std::this_thread::yield();
      continue;
    }
    // Park with a timeout; notify_work() wakes us early.
    std::unique_lock<std::mutex> lock(impl_->sleep_mutex);
    impl_->num_sleeping.fetch_add(1, std::memory_order_relaxed);
    impl_->sleep_cv.wait_for(lock, std::chrono::milliseconds(1));
    impl_->num_sleeping.fetch_sub(1, std::memory_order_relaxed);
    failures = 0;
  }
  tl_worker_index = -1;
}

}  // namespace bdc::internal

namespace bdc {

unsigned num_workers() { return internal::scheduler_instance().num_workers(); }

unsigned worker_id() {
  int idx = internal::scheduler_runtime::worker_index();
  return idx < 0 ? 0u : static_cast<unsigned>(idx);
}

}  // namespace bdc
