// A Chase-Lev work-stealing deque (Chase & Lev, SPAA 2005), with the
// C11-memory-model corrections of Lê et al. (PPoPP 2013).
//
// The owner pushes and pops at the bottom (LIFO); thieves steal from the top
// (FIFO). Only `job*` values are stored; job lifetime is managed by the
// fork-join frames in scheduler.hpp (jobs live on the forking thread's stack
// until joined, so a pointer in the deque is always valid).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

#if defined(__SANITIZE_THREAD__)
#define BDC_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BDC_TSAN_ENABLED 1
#endif
#endif
#ifndef BDC_TSAN_ENABLED
#define BDC_TSAN_ENABLED 0
#endif

namespace bdc::internal {

// ThreadSanitizer does not model std::atomic_thread_fence, so the
// fence-based orderings below (correct per Lê et al.) surface as false
// races on the job objects the deque hands between threads. Under TSan we
// promote the fence-dependent relaxed operations to seq_cst so the
// happens-before edges become visible to the tool; elsewhere the published
// orderings stand.
inline constexpr std::memory_order kDequeRelaxed =
    BDC_TSAN_ENABLED ? std::memory_order_seq_cst : std::memory_order_relaxed;

class job;

/// Fixed-capacity Chase-Lev deque. Capacity bounds the number of
/// not-yet-joined forks outstanding on one worker, which is bounded by the
/// fork-join nesting depth (logarithmic for all library algorithms), so a
/// generous fixed capacity is safe; overflow is a programming error.
class work_stealing_deque {
 public:
  static constexpr int64_t kCapacity = 1 << 13;

  work_stealing_deque() : buffer_(new std::atomic<job*>[kCapacity]) {
    for (int64_t i = 0; i < kCapacity; ++i)
      buffer_[i].store(nullptr, std::memory_order_relaxed);
  }

  work_stealing_deque(const work_stealing_deque&) = delete;
  work_stealing_deque& operator=(const work_stealing_deque&) = delete;

  /// Owner only.
  void push(job* j) {
    int64_t b = bottom_.load(kDequeRelaxed);
    [[maybe_unused]] int64_t t = top_.load(std::memory_order_acquire);
    assert(b - t < kCapacity && "work_stealing_deque overflow");
    buffer_[b & kMask].store(j, kDequeRelaxed);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, kDequeRelaxed);
  }

  /// Owner only. Returns nullptr if the deque is empty or the last element
  /// was lost to a concurrent thief.
  job* pop() {
    int64_t b = bottom_.load(kDequeRelaxed) - 1;
    bottom_.store(b, kDequeRelaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t t = top_.load(kDequeRelaxed);
    job* result = nullptr;
    if (t <= b) {
      result = buffer_[b & kMask].load(kDequeRelaxed);
      if (t == b) {
        // Single element left: race against thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          kDequeRelaxed)) {
          result = nullptr;  // lost the race
        }
        bottom_.store(b + 1, kDequeRelaxed);
      }
    } else {
      bottom_.store(b + 1, kDequeRelaxed);
    }
    return result;
  }

  /// Any thread. Returns nullptr if empty or the steal raced.
  job* steal() {
    int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t b = bottom_.load(std::memory_order_acquire);
    if (t < b) {
      job* result = buffer_[t & kMask].load(kDequeRelaxed);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        kDequeRelaxed)) {
        return nullptr;
      }
      return result;
    }
    return nullptr;
  }

  /// Approximate emptiness (for idle heuristics only).
  [[nodiscard]] bool empty_approx() const {
    return bottom_.load(std::memory_order_relaxed) <=
           top_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr int64_t kMask = kCapacity - 1;
  alignas(64) std::atomic<int64_t> top_{0};
  alignas(64) std::atomic<int64_t> bottom_{0};
  std::unique_ptr<std::atomic<job*>[]> buffer_;
};

}  // namespace bdc::internal
