// A Chase-Lev work-stealing deque (Chase & Lev, SPAA 2005), with the
// C11-memory-model corrections of Lê et al. (PPoPP 2013).
//
// The owner pushes and pops at the bottom (LIFO); thieves steal from the top
// (FIFO). Only `job*` values are stored; job lifetime is managed by the
// fork-join frames in scheduler.hpp (jobs live on the forking thread's stack
// until joined, so a pointer in the deque is always valid).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

namespace bdc::internal {

class job;

/// Fixed-capacity Chase-Lev deque. Capacity bounds the number of
/// not-yet-joined forks outstanding on one worker, which is bounded by the
/// fork-join nesting depth (logarithmic for all library algorithms), so a
/// generous fixed capacity is safe; overflow is a programming error.
class work_stealing_deque {
 public:
  static constexpr int64_t kCapacity = 1 << 13;

  work_stealing_deque() : buffer_(new std::atomic<job*>[kCapacity]) {
    for (int64_t i = 0; i < kCapacity; ++i)
      buffer_[i].store(nullptr, std::memory_order_relaxed);
  }

  work_stealing_deque(const work_stealing_deque&) = delete;
  work_stealing_deque& operator=(const work_stealing_deque&) = delete;

  /// Owner only.
  void push(job* j) {
    int64_t b = bottom_.load(std::memory_order_relaxed);
    [[maybe_unused]] int64_t t = top_.load(std::memory_order_acquire);
    assert(b - t < kCapacity && "work_stealing_deque overflow");
    buffer_[b & kMask].store(j, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only. Returns nullptr if the deque is empty or the last element
  /// was lost to a concurrent thief.
  job* pop() {
    int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_relaxed);
    job* result = nullptr;
    if (t <= b) {
      result = buffer_[b & kMask].load(std::memory_order_relaxed);
      if (t == b) {
        // Single element left: race against thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          result = nullptr;  // lost the race
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return result;
  }

  /// Any thread. Returns nullptr if empty or the steal raced.
  job* steal() {
    int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t b = bottom_.load(std::memory_order_acquire);
    if (t < b) {
      job* result = buffer_[t & kMask].load(std::memory_order_relaxed);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return nullptr;
      }
      return result;
    }
    return nullptr;
  }

  /// Approximate emptiness (for idle heuristics only).
  [[nodiscard]] bool empty_approx() const {
    return bottom_.load(std::memory_order_relaxed) <=
           top_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr int64_t kMask = kCapacity - 1;
  alignas(64) std::atomic<int64_t> top_{0};
  alignas(64) std::atomic<int64_t> bottom_{0};
  std::unique_ptr<std::atomic<job*>[]> buffer_;
};

}  // namespace bdc::internal
