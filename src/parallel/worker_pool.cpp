// Lifetime management for the process-wide scheduler runtime, including the
// ability to rebuild the pool with a different worker count (used by the
// thread-scaling benchmarks). Rebuilding is only legal while no parallel
// work is in flight.
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "parallel/scheduler.hpp"

namespace bdc {
namespace internal {
namespace {

std::unique_ptr<scheduler_runtime> g_runtime;
std::mutex g_runtime_mutex;

unsigned default_worker_count() {
  if (const char* env = std::getenv("BDC_NUM_WORKERS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

}  // namespace

scheduler_runtime& scheduler_instance() {
  // Fast path: already constructed. The pointer is only ever replaced from
  // set_num_workers(), which the caller guarantees is quiescent.
  if (g_runtime) return *g_runtime;
  std::lock_guard<std::mutex> lock(g_runtime_mutex);
  if (!g_runtime) {
    g_runtime = std::make_unique<scheduler_runtime>(default_worker_count());
  }
  return *g_runtime;
}

}  // namespace internal

void set_num_workers(unsigned p) {
  std::lock_guard<std::mutex> lock(internal::g_runtime_mutex);
  if (internal::g_runtime && internal::g_runtime->num_workers() == p) return;
  internal::g_runtime.reset();  // joins all pool threads
  internal::g_runtime =
      std::make_unique<internal::scheduler_runtime>(p == 0 ? 1 : p);
}

}  // namespace bdc
