// Fork-join work-stealing scheduler: the library's realization of the
// MT-RAM / work-depth model from the paper (Appendix 7).
//
// The model is nested fork-join: `parallel_invoke(a, b)` forks b, runs a, and
// joins; `parallel_for` is built on top by recursive halving. A greedy
// work-stealing scheduler executes a W-work, D-depth computation in
// T_P <= W/P + O(D) expected time, which is how the paper's work/depth bounds
// translate to running time on P cores.
//
// Contract: task bodies must not throw (the scheduler does not propagate
// exceptions across steals), and a mutating batch operation on a shared
// structure must be issued from a single logical root task.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#include "parallel/work_stealing_deque.hpp"

namespace bdc {

namespace internal {

/// Type-erased task. Lives on the forking frame's stack until joined.
class job {
 public:
  virtual void run() = 0;

  /// Set by the executing thread after run() completes.
  std::atomic<bool> done{false};

 protected:
  ~job() = default;
};

template <typename F>
class closure_job final : public job {
 public:
  explicit closure_job(F& f) : f_(f) {}
  void run() override {
    f_();
    done.store(true, std::memory_order_release);
  }

 private:
  F& f_;
};

/// Worker-pool runtime. One instance per process (see scheduler_instance()).
class scheduler_runtime {
 public:
  explicit scheduler_runtime(unsigned num_workers);
  ~scheduler_runtime();

  scheduler_runtime(const scheduler_runtime&) = delete;
  scheduler_runtime& operator=(const scheduler_runtime&) = delete;

  [[nodiscard]] unsigned num_workers() const { return num_workers_; }

  /// Push a job onto the calling worker's deque. Caller must be registered.
  void push(job* j);
  /// Pop from the calling worker's deque.
  job* pop();
  /// Attempt one steal from a random victim.
  job* try_steal(uint64_t& rng_state);
  /// Execute other tasks until `j->done` becomes true.
  void wait_for(job* j);
  /// Wake sleeping workers (called after pushes).
  void notify_work();

  /// Registers the calling external thread into deque slot 0, if free.
  /// Returns true on success; on failure the caller must run sequentially.
  bool try_register_external();
  void unregister_external();

  /// Thread-local worker index (-1 if unregistered).
  static int worker_index();

 private:
  friend struct worker_main_access;
  void worker_loop(unsigned index);

  unsigned num_workers_;
  struct impl;
  impl* impl_;
};

scheduler_runtime& scheduler_instance();

}  // namespace internal

/// Number of parallel workers (threads) the runtime uses. Controlled by the
/// environment variable BDC_NUM_WORKERS; defaults to hardware concurrency.
unsigned num_workers();

/// Rebuilds the worker pool with `p` workers. Must only be called while no
/// parallel work is in flight (e.g., between benchmark phases).
void set_num_workers(unsigned p);

/// Index of the calling worker in [0, num_workers()), or 0 for an external
/// thread that is temporarily driving the pool.
unsigned worker_id();

/// Runs `a` and `b`, potentially in parallel, and waits for both.
template <typename FA, typename FB>
void parallel_invoke(FA&& a, FB&& b) {
  using internal::scheduler_instance;
  auto& sched = scheduler_instance();
  if (sched.num_workers() <= 1) {
    a();
    b();
    return;
  }
  int idx = internal::scheduler_runtime::worker_index();
  bool registered_here = false;
  if (idx < 0) {
    if (!sched.try_register_external()) {
      a();  // another external thread owns the pool: degrade gracefully
      b();
      return;
    }
    registered_here = true;
  }
  {
    internal::closure_job<FB> jb(b);
    sched.push(&jb);
    sched.notify_work();
    a();
    internal::job* popped = sched.pop();
    if (popped == &jb) {
      jb.run();
    } else {
      // jb was stolen (and `popped`, if any, is an older sibling fork that
      // is also safe to run here).
      if (popped != nullptr) popped->run();
      sched.wait_for(&jb);
    }
  }
  if (registered_here) sched.unregister_external();
}

namespace internal {

template <typename F>
void parallel_for_rec(size_t lo, size_t hi, size_t grain, const F& f) {
  if (hi - lo <= grain) {
    for (size_t i = lo; i < hi; ++i) f(i);
  } else {
    size_t mid = lo + (hi - lo) / 2;
    parallel_invoke([&] { parallel_for_rec(lo, mid, grain, f); },
                    [&] { parallel_for_rec(mid, hi, grain, f); });
  }
}

}  // namespace internal

/// Data-parallel loop over [lo, hi). `grain` is the largest chunk executed
/// sequentially; 0 picks a size-based default. The default assumes a cheap
/// body and runs small ranges sequentially (fork/steal latency would
/// dominate); pass an explicit grain (typically 1) when each iteration is
/// heavy.
template <typename F>
void parallel_for(size_t lo, size_t hi, const F& f, size_t grain = 0) {
  if (hi <= lo) return;
  size_t n = hi - lo;
  if (grain == 0) {
    size_t p = num_workers();
    if (p <= 1 || n <= 24) {
      grain = n;  // sequential: too little work to amortize a steal
    } else {
      grain = std::max<size_t>(1, n / (8 * p));
      if (grain > 2048) grain = 2048;
    }
  }
  if (n <= grain) {
    for (size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  internal::parallel_for_rec(lo, hi, grain, f);
}

}  // namespace bdc
