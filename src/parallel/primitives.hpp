// Work-efficient data-parallel sequence primitives (paper §2, "Parallel
// Primitives"): tabulate, map, reduce, scan, pack/filter, flatten and
// histogram. All are O(n) work and O(lg n) depth (up to the scheduler's
// granularity constant), matching the bounds the paper assumes.
#pragma once

#include <cassert>
#include <cstddef>
#include <numeric>
#include <type_traits>
#include <utility>
#include <vector>

#include "parallel/scheduler.hpp"

namespace bdc {

/// Builds a vector of length n with element i equal to f(i).
template <typename F>
auto tabulate(size_t n, const F& f) {
  using T = std::decay_t<decltype(f(size_t{0}))>;
  std::vector<T> out(n);
  parallel_for(0, n, [&](size_t i) { out[i] = f(i); });
  return out;
}

/// Elementwise map over a sequence.
template <typename Seq, typename F>
auto map(const Seq& in, const F& f) {
  using T = std::decay_t<decltype(f(in[0]))>;
  std::vector<T> out(in.size());
  parallel_for(0, in.size(), [&](size_t i) { out[i] = f(in[i]); });
  return out;
}

namespace internal {
/// Number of blocks used by blocked two-pass algorithms (reduce/scan/pack).
inline size_t num_blocks(size_t n) {
  size_t p = num_workers();
  size_t target = 4 * p;
  size_t blocks = std::min<size_t>(target, (n + 1023) / 1024 + 1);
  return std::max<size_t>(blocks, 1);
}
}  // namespace internal

/// Reduction with an associative combine function over [0, n) of f(i).
template <typename T, typename F, typename Combine>
T reduce_index(size_t n, const F& f, T identity, const Combine& combine) {
  if (n == 0) return identity;
  size_t blocks = internal::num_blocks(n);
  size_t block_size = (n + blocks - 1) / blocks;
  std::vector<T> partial(blocks, identity);
  parallel_for(
      0, blocks,
      [&](size_t b) {
        size_t lo = b * block_size, hi = std::min(n, lo + block_size);
        T acc = identity;
        for (size_t i = lo; i < hi; ++i) acc = combine(acc, f(i));
        partial[b] = acc;
      },
      1);
  T acc = identity;
  for (size_t b = 0; b < blocks; ++b) acc = combine(acc, partial[b]);
  return acc;
}

/// Sum of f(i) over [0, n).
template <typename F>
auto reduce_sum(size_t n, const F& f) {
  using T = std::decay_t<decltype(f(size_t{0}))>;
  return reduce_index<T>(n, f, T{}, [](T a, T b) { return a + b; });
}

template <typename Seq>
auto sum(const Seq& in) {
  using T = std::decay_t<decltype(in[0])>;
  return reduce_sum(in.size(), [&](size_t i) -> T { return in[i]; });
}

/// Exclusive prefix sums in place; returns the grand total.
template <typename T>
T exclusive_scan(std::vector<T>& a) {
  size_t n = a.size();
  if (n == 0) return T{};
  size_t blocks = internal::num_blocks(n);
  size_t block_size = (n + blocks - 1) / blocks;
  std::vector<T> block_sum(blocks);
  parallel_for(
      0, blocks,
      [&](size_t b) {
        size_t lo = b * block_size, hi = std::min(n, lo + block_size);
        T acc{};
        for (size_t i = lo; i < hi; ++i) acc += a[i];
        block_sum[b] = acc;
      },
      1);
  T total{};
  for (size_t b = 0; b < blocks; ++b) {
    T next = total + block_sum[b];
    block_sum[b] = total;
    total = next;
  }
  parallel_for(
      0, blocks,
      [&](size_t b) {
        size_t lo = b * block_size, hi = std::min(n, lo + block_size);
        T acc = block_sum[b];
        for (size_t i = lo; i < hi; ++i) {
          T next = acc + a[i];
          a[i] = acc;
          acc = next;
        }
      },
      1);
  return total;
}

/// Order-preserving balanced divide-and-conquer reduction over [lo, hi):
/// ranges of at most `grain` elements are folded by leaf(lo, hi), and
/// adjacent results are combined left-to-right by the associative (but not
/// necessarily commutative) `combine` in a balanced fork-join tree. Unlike
/// reduce_index, `combine` may be expensive — each level's combines run in
/// parallel across subtrees — which is what the treap substrate's bulk tour
/// rebuilds need: combine = O(lg n) treap join, depth O(lg k · lg n).
template <typename T, typename Leaf, typename Combine>
T fork_join_reduce(size_t lo, size_t hi, size_t grain, const Leaf& leaf,
                   const Combine& combine) {
  assert(grain > 0 && lo < hi);
  if (hi - lo <= grain) return leaf(lo, hi);
  size_t mid = lo + (hi - lo) / 2;
  T a, b;
  parallel_invoke(
      [&] { a = fork_join_reduce<T>(lo, mid, grain, leaf, combine); },
      [&] { b = fork_join_reduce<T>(mid, hi, grain, leaf, combine); });
  return combine(a, b);
}

/// Pack: keep in[i] where flag(i) is true, preserving order.
template <typename Seq, typename Flag>
auto pack(const Seq& in, const Flag& flag) {
  using T = std::decay_t<decltype(in[0])>;
  size_t n = in.size();
  std::vector<size_t> offsets(n);
  parallel_for(0, n, [&](size_t i) { offsets[i] = flag(i) ? 1u : 0u; });
  size_t total = exclusive_scan(offsets);
  std::vector<T> out(total);
  parallel_for(0, n, [&](size_t i) {
    if (flag(i)) out[offsets[i]] = in[i];
  });
  return out;
}

/// Filter: keep elements satisfying the predicate (applied to the value).
template <typename Seq, typename Pred>
auto filter(const Seq& in, const Pred& pred) {
  return pack(in, [&](size_t i) { return pred(in[i]); });
}

/// Indices i in [0, n) where flag(i) holds.
template <typename Flag>
std::vector<size_t> pack_index(size_t n, const Flag& flag) {
  std::vector<size_t> offsets(n);
  parallel_for(0, n, [&](size_t i) { offsets[i] = flag(i) ? 1u : 0u; });
  size_t total = exclusive_scan(offsets);
  std::vector<size_t> out(total);
  parallel_for(0, n, [&](size_t i) {
    if (flag(i)) out[offsets[i]] = i;
  });
  return out;
}

/// Flatten: concatenates `parts` into a single sequence.
template <typename T>
std::vector<T> flatten(const std::vector<std::vector<T>>& parts) {
  std::vector<size_t> offsets(parts.size());
  parallel_for(0, parts.size(),
               [&](size_t i) { offsets[i] = parts[i].size(); });
  size_t total = exclusive_scan(offsets);
  std::vector<T> out(total);
  parallel_for(
      0, parts.size(),
      [&](size_t i) {
        std::copy(parts[i].begin(), parts[i].end(), out.begin() + offsets[i]);
      },
      1);
  return out;
}

/// Counts occurrences of keys in [0, buckets).
template <typename Seq>
std::vector<size_t> histogram(const Seq& keys, size_t buckets) {
  // Per-block local counting to avoid contention, then a tree combine.
  size_t n = keys.size();
  size_t blocks = internal::num_blocks(n);
  size_t block_size = (n + blocks - 1) / blocks;
  std::vector<std::vector<size_t>> local(blocks);
  parallel_for(
      0, blocks,
      [&](size_t b) {
        auto& counts = local[b];
        counts.assign(buckets, 0);
        size_t lo = b * block_size, hi = std::min(n, lo + block_size);
        for (size_t i = lo; i < hi; ++i) {
          assert(static_cast<size_t>(keys[i]) < buckets);
          ++counts[static_cast<size_t>(keys[i])];
        }
      },
      1);
  std::vector<size_t> out(buckets, 0);
  parallel_for(0, buckets, [&](size_t k) {
    size_t acc = 0;
    for (size_t b = 0; b < blocks; ++b) acc += local[b][k];
    out[k] = acc;
  });
  return out;
}

}  // namespace bdc
