// Synthetic graph generators — the evaluation substrate. The paper has no
// dataset section (it is a theory paper), so benchmarks draw on standard
// families: Erdős–Rényi G(n, m), uniform random forests/trees, paths,
// grids, stars, and an RMAT-style power-law generator matching the skewed
// degree distributions of the real-world streams the introduction cites.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace bdc {

/// m distinct uniform random edges over [0, n) (no self loops).
std::vector<edge> gen_erdos_renyi(vertex_id n, size_t m, uint64_t seed);

/// A uniform random spanning tree shape (random attachment): n-1 edges.
std::vector<edge> gen_random_tree(vertex_id n, uint64_t seed);

/// A forest of `trees` random trees partitioning [0, n).
std::vector<edge> gen_random_forest(vertex_id n, size_t trees,
                                    uint64_t seed);

/// Path 0-1-2-...-(n-1).
std::vector<edge> gen_path(vertex_id n);

/// Star centered at 0.
std::vector<edge> gen_star(vertex_id n);

/// rows x cols grid, 4-neighborhood.
std::vector<edge> gen_grid(vertex_id rows, vertex_id cols);

/// RMAT-style recursive-matrix power-law graph with m distinct edges
/// (a=0.57, b=c=0.19, d=0.05, the standard Graph500 parameters).
std::vector<edge> gen_rmat(vertex_id n, size_t m, uint64_t seed);

}  // namespace bdc
