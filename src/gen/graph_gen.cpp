#include "gen/graph_gen.hpp"

#include <unordered_set>

#include "parallel/scheduler.hpp"
#include "sequence/parallel_sort.hpp"
#include "util/bits.hpp"
#include "util/random.hpp"

namespace bdc {

namespace {

/// Draws distinct canonical edges until `m` are collected.
template <typename Draw>
std::vector<edge> draw_distinct(size_t m, const Draw& draw) {
  std::vector<edge> out;
  out.reserve(m);
  std::unordered_set<uint64_t> seen;
  seen.reserve(2 * m);
  uint64_t i = 0;
  while (out.size() < m) {
    edge e = draw(i++).canonical();
    if (e.is_self_loop()) continue;
    if (seen.insert(edge_key(e)).second) out.push_back(e);
  }
  return out;
}

}  // namespace

std::vector<edge> gen_erdos_renyi(vertex_id n, size_t m, uint64_t seed) {
  assert(n >= 2);
  assert(m <= static_cast<size_t>(n) * (n - 1) / 2);
  random r(seed);
  return draw_distinct(m, [&](uint64_t i) {
    return edge{static_cast<vertex_id>(r.ith_rand(2 * i, n)),
                static_cast<vertex_id>(r.ith_rand(2 * i + 1, n))};
  });
}

std::vector<edge> gen_random_tree(vertex_id n, uint64_t seed) {
  // Random attachment: vertex i links to a uniform earlier vertex.
  random r(seed);
  std::vector<edge> out;
  out.reserve(n > 0 ? n - 1 : 0);
  for (vertex_id i = 1; i < n; ++i) {
    out.push_back(edge{static_cast<vertex_id>(r.ith_rand(i, i)), i});
  }
  return out;
}

std::vector<edge> gen_random_forest(vertex_id n, size_t trees,
                                    uint64_t seed) {
  // Partition [0, n) into `trees` contiguous chunks, each a random tree.
  assert(trees >= 1 && trees <= n);
  random r(seed);
  std::vector<edge> out;
  out.reserve(n - trees);
  size_t chunk = (n + trees - 1) / trees;
  for (size_t lo = 0; lo < n; lo += chunk) {
    size_t hi = std::min<size_t>(n, lo + chunk);
    for (size_t i = lo + 1; i < hi; ++i) {
      vertex_id parent = static_cast<vertex_id>(
          lo + r.ith_rand(i, i - lo));
      out.push_back(edge{parent, static_cast<vertex_id>(i)});
    }
  }
  return out;
}

std::vector<edge> gen_path(vertex_id n) {
  std::vector<edge> out;
  out.reserve(n > 0 ? n - 1 : 0);
  for (vertex_id i = 1; i < n; ++i) out.push_back(edge{i - 1, i});
  return out;
}

std::vector<edge> gen_star(vertex_id n) {
  std::vector<edge> out;
  out.reserve(n > 0 ? n - 1 : 0);
  for (vertex_id i = 1; i < n; ++i) out.push_back(edge{0, i});
  return out;
}

std::vector<edge> gen_grid(vertex_id rows, vertex_id cols) {
  std::vector<edge> out;
  out.reserve(2 * static_cast<size_t>(rows) * cols);
  auto id = [&](vertex_id r, vertex_id c) { return r * cols + c; };
  for (vertex_id r = 0; r < rows; ++r) {
    for (vertex_id c = 0; c < cols; ++c) {
      if (c + 1 < cols) out.push_back(edge{id(r, c), id(r, c + 1)});
      if (r + 1 < rows) out.push_back(edge{id(r, c), id(r + 1, c)});
    }
  }
  return out;
}

std::vector<edge> gen_rmat(vertex_id n, size_t m, uint64_t seed) {
  uint32_t bits = log2_ceil(std::max<uint64_t>(2, n));
  random r(seed);
  auto draw = [&](uint64_t i) {
    vertex_id u = 0, v = 0;
    random cell = r.fork(i);
    for (uint32_t b = 0; b < bits; ++b) {
      // Quadrant probabilities a=0.57, b=0.19, c=0.19, d=0.05.
      uint64_t x = cell.ith_rand(b, 100);
      uint32_t qu = 0, qv = 0;
      if (x < 57) {
        qu = 0, qv = 0;
      } else if (x < 76) {
        qu = 0, qv = 1;
      } else if (x < 95) {
        qu = 1, qv = 0;
      } else {
        qu = 1, qv = 1;
      }
      u = (u << 1) | qu;
      v = (v << 1) | qv;
    }
    // Fold into [0, n) to keep all ids valid for non-power-of-two n.
    return edge{static_cast<vertex_id>(u % n), static_cast<vertex_id>(v % n)};
  };
  return draw_distinct(m, draw);
}

}  // namespace bdc
