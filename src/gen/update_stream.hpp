// Batched update-stream generators: turn a static graph into a sequence of
// insertion/deletion/query batches with a controllable average deletion
// batch size Δ — the parameter Theorem 9's O(lg n lg(1 + n/Δ)) bound is
// stated in. Experiment E6 sweeps Δ with these streams.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace bdc {

struct update_batch {
  enum class kind { insert, erase, query };
  kind op = kind::insert;
  std::vector<edge> edges;                                // insert/erase
  std::vector<std::pair<vertex_id, vertex_id>> queries;   // query
};

using update_stream = std::vector<update_batch>;

/// Inserts all of `graph` in batches of `batch_size`, in random order.
update_stream make_insertion_stream(const std::vector<edge>& graph,
                                    size_t batch_size, uint64_t seed);

/// Inserts `graph`, then deletes every edge in random order in batches of
/// `delete_batch_size` (the Δ knob), optionally interleaving `queries_per_
/// batch` random connectivity queries after each deletion batch.
update_stream make_deletion_stream(const std::vector<edge>& graph,
                                   vertex_id n, size_t insert_batch_size,
                                   size_t delete_batch_size,
                                   size_t queries_per_batch, uint64_t seed);

/// A sliding-window stream: keeps roughly `window` edges alive; each round
/// inserts `batch` new edges of `graph` and deletes the `batch` oldest.
/// Models the time-evolving streams of the paper's motivation ([32, 33]).
update_stream make_sliding_window_stream(const std::vector<edge>& graph,
                                         size_t window, size_t batch,
                                         uint64_t seed);

/// A phase-skewed mixed trace (the engine_router's target workload):
///   1. insert ramp — all of `graph` except a held-out churn reserve, in
///      batches of `batch`, a small query batch every 2nd insert batch;
///   2. churn — 16 rounds alternating a deletion and an insertion batch
///      of batch/8 edges (deletes sample the alive set, inserts drain the
///      reserve), each round followed by a small query batch;
///   3. query flood — `flood_batches` consecutive batches of
///      `flood_queries` uniform queries, no updates in between;
///   4. deletion burst — up to 4 batches of `batch` random alive edges,
///      each followed by a small query batch, plus one final query batch.
/// Deterministic in `seed`.
update_stream make_phase_skewed_stream(const std::vector<edge>& graph,
                                       vertex_id n, size_t batch,
                                       size_t flood_batches,
                                       size_t flood_queries, uint64_t seed);

/// A hub-churn trace (the sparse-activation stress workload): rank the
/// base graph's vertices by degree, call the top 16 "hubs" (the skewed
/// head of an RMAT / power-law base), and after an insert ramp of the
/// whole graph run `rounds` rounds that delete every hub-incident edge
/// in bursts of `batch` and then re-insert them, with small query
/// batches interleaved. Each burst forces replacement searches around
/// the hubs, so edges sink levels and the touched vertex set per level
/// stays concentrated near the hubs — on a vertex space of n >> touched
/// ids this is the workload where O(active) per-level memory beats the
/// dense O(n)-per-level layout by the widest margin. Deterministic in
/// `seed`.
update_stream make_hub_churn_stream(const std::vector<edge>& graph,
                                    vertex_id n, size_t batch,
                                    size_t rounds, uint64_t seed);

/// Uniform random query batches.
std::vector<std::pair<vertex_id, vertex_id>> make_query_batch(
    vertex_id n, size_t k, uint64_t seed);

/// In-place Fisher–Yates with the library's deterministic RNG.
void shuffle_edges(std::vector<edge>& es, uint64_t seed);

}  // namespace bdc
