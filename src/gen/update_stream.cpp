#include "gen/update_stream.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/random.hpp"

namespace bdc {

void shuffle_edges(std::vector<edge>& es, uint64_t seed) {
  random r(seed);
  for (size_t i = es.size(); i > 1; --i) {
    std::swap(es[i - 1], es[r.ith_rand(i, i)]);
  }
}

update_stream make_insertion_stream(const std::vector<edge>& graph,
                                    size_t batch_size, uint64_t seed) {
  std::vector<edge> es = graph;
  shuffle_edges(es, seed);
  update_stream stream;
  for (size_t lo = 0; lo < es.size(); lo += batch_size) {
    size_t hi = std::min(es.size(), lo + batch_size);
    update_batch b;
    b.op = update_batch::kind::insert;
    b.edges.assign(es.begin() + static_cast<ptrdiff_t>(lo),
                   es.begin() + static_cast<ptrdiff_t>(hi));
    stream.push_back(std::move(b));
  }
  return stream;
}

update_stream make_deletion_stream(const std::vector<edge>& graph,
                                   vertex_id n, size_t insert_batch_size,
                                   size_t delete_batch_size,
                                   size_t queries_per_batch, uint64_t seed) {
  update_stream stream =
      make_insertion_stream(graph, insert_batch_size, seed);
  std::vector<edge> es = graph;
  shuffle_edges(es, hash64(seed + 1));
  random qr(hash64(seed + 2));
  uint64_t qi = 0;
  for (size_t lo = 0; lo < es.size(); lo += delete_batch_size) {
    size_t hi = std::min(es.size(), lo + delete_batch_size);
    update_batch b;
    b.op = update_batch::kind::erase;
    b.edges.assign(es.begin() + static_cast<ptrdiff_t>(lo),
                   es.begin() + static_cast<ptrdiff_t>(hi));
    stream.push_back(std::move(b));
    if (queries_per_batch > 0) {
      update_batch q;
      q.op = update_batch::kind::query;
      q.queries.reserve(queries_per_batch);
      for (size_t j = 0; j < queries_per_batch; ++j) {
        vertex_id a = static_cast<vertex_id>(qr.ith_rand(qi++, n));
        vertex_id b2 = static_cast<vertex_id>(qr.ith_rand(qi++, n));
        q.queries.push_back({a, b2});
      }
      stream.push_back(std::move(q));
    }
  }
  return stream;
}

update_stream make_sliding_window_stream(const std::vector<edge>& graph,
                                         size_t window, size_t batch,
                                         uint64_t seed) {
  std::vector<edge> es = graph;
  shuffle_edges(es, seed);
  update_stream stream;
  size_t head = 0;  // next edge to insert
  size_t tail = 0;  // next edge to delete
  while (head < es.size()) {
    size_t hi = std::min(es.size(), head + batch);
    update_batch ins;
    ins.op = update_batch::kind::insert;
    ins.edges.assign(es.begin() + static_cast<ptrdiff_t>(head),
                     es.begin() + static_cast<ptrdiff_t>(hi));
    stream.push_back(std::move(ins));
    head = hi;
    if (head - tail > window) {
      size_t del_hi = head - window;
      update_batch del;
      del.op = update_batch::kind::erase;
      del.edges.assign(es.begin() + static_cast<ptrdiff_t>(tail),
                       es.begin() + static_cast<ptrdiff_t>(del_hi));
      stream.push_back(std::move(del));
      tail = del_hi;
    }
  }
  return stream;
}

update_stream make_phase_skewed_stream(const std::vector<edge>& graph,
                                       vertex_id n, size_t batch,
                                       size_t flood_batches,
                                       size_t flood_queries, uint64_t seed) {
  std::vector<edge> es = graph;
  shuffle_edges(es, seed);
  batch = std::max<size_t>(1, batch);

  update_stream stream;
  uint64_t qseed = hash64(seed + 0x9e37);
  auto push_queries = [&](size_t k) {
    update_batch q;
    q.op = update_batch::kind::query;
    q.queries = make_query_batch(n, k, qseed++);
    stream.push_back(std::move(q));
  };
  auto push_edges = [&](update_batch::kind op, std::vector<edge> edges) {
    if (edges.empty()) return;
    update_batch b;
    b.op = op;
    b.edges = std::move(edges);
    stream.push_back(std::move(b));
  };

  // Phase 1: insert ramp over ~3/4 of the edges (the rest feed churn).
  size_t reserve_lo = es.size() - es.size() / 4;
  std::vector<edge> alive(es.begin(),
                          es.begin() + static_cast<ptrdiff_t>(reserve_lo));
  size_t ramp_batches = 0;
  for (size_t lo = 0; lo < reserve_lo; lo += batch) {
    size_t hi = std::min(reserve_lo, lo + batch);
    push_edges(update_batch::kind::insert,
               {es.begin() + static_cast<ptrdiff_t>(lo),
                es.begin() + static_cast<ptrdiff_t>(hi)});
    if (++ramp_batches % 2 == 0) push_queries(16);
  }

  // Phase 2: churn. Each round deletes batch/8 random alive edges and
  // inserts batch/8 fresh edges from the reserve.
  random cr(hash64(seed + 0xc0c0));
  uint64_t ci = 0;
  size_t reserve_next = reserve_lo;
  size_t churn = std::max<size_t>(1, batch / 8);
  for (int round = 0; round < 16; ++round) {
    std::vector<edge> dels;
    for (size_t j = 0; j < churn && !alive.empty(); ++j) {
      size_t pick = cr.ith_rand(ci++, alive.size());
      dels.push_back(alive[pick]);
      alive[pick] = alive.back();
      alive.pop_back();
    }
    push_edges(update_batch::kind::erase, std::move(dels));
    std::vector<edge> ins;
    for (size_t j = 0; j < churn && reserve_next < es.size(); ++j) {
      ins.push_back(es[reserve_next]);
      alive.push_back(es[reserve_next]);
      ++reserve_next;
    }
    push_edges(update_batch::kind::insert, std::move(ins));
    push_queries(16);
  }

  // Phase 3: query flood (no updates — a per-epoch result cache should
  // serve every batch after the first from the memo).
  for (size_t i = 0; i < flood_batches; ++i) push_queries(flood_queries);

  // Phase 4: deletion burst — a burst, not a teardown: up to 4 batches of
  // `batch` random alive edges, each followed by a small query batch (the
  // monitoring reads that accompany real churn).
  shuffle_edges(alive, hash64(seed + 0xdead));
  size_t burst = std::min(alive.size(), 4 * batch);
  for (size_t lo = 0; lo < burst; lo += batch) {
    size_t hi = std::min(burst, lo + batch);
    push_edges(update_batch::kind::erase,
               {alive.begin() + static_cast<ptrdiff_t>(lo),
                alive.begin() + static_cast<ptrdiff_t>(hi)});
    push_queries(16);
  }
  push_queries(64);
  return stream;
}

update_stream make_hub_churn_stream(const std::vector<edge>& graph,
                                    vertex_id n, size_t batch,
                                    size_t rounds, uint64_t seed) {
  batch = std::max<size_t>(1, batch);

  // Degree census -> hubs. Sorting by (degree desc, id asc) makes the
  // hub choice independent of the census container's iteration order.
  std::unordered_map<vertex_id, uint32_t> degree;
  for (const edge& e : graph) {
    degree[e.u]++;
    degree[e.v]++;
  }
  std::vector<std::pair<uint32_t, vertex_id>> by_degree;
  by_degree.reserve(degree.size());
  for (const auto& [v, d] : degree) by_degree.push_back({d, v});
  std::sort(by_degree.begin(), by_degree.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  std::unordered_set<vertex_id> hubs;
  for (size_t i = 0; i < by_degree.size() && hubs.size() < 16; ++i)
    hubs.insert(by_degree[i].second);

  std::vector<edge> hub_edges;
  for (const edge& e : graph)
    if (hubs.contains(e.u) || hubs.contains(e.v)) hub_edges.push_back(e);

  update_stream stream;
  uint64_t qseed = hash64(seed + 0x4b);
  auto push_queries = [&](size_t k) {
    update_batch q;
    q.op = update_batch::kind::query;
    q.queries = make_query_batch(n, k, qseed++);
    stream.push_back(std::move(q));
  };
  auto push_edges = [&](update_batch::kind op,
                        const std::vector<edge>& es, size_t lo, size_t hi) {
    if (lo >= hi) return;
    update_batch b;
    b.op = op;
    b.edges.assign(es.begin() + static_cast<ptrdiff_t>(lo),
                   es.begin() + static_cast<ptrdiff_t>(hi));
    stream.push_back(std::move(b));
  };

  // Insert ramp over the whole base graph.
  std::vector<edge> es = graph;
  shuffle_edges(es, seed);
  size_t ramp_batches = 0;
  for (size_t lo = 0; lo < es.size(); lo += batch) {
    push_edges(update_batch::kind::insert, es, lo,
               std::min(es.size(), lo + batch));
    if (++ramp_batches % 2 == 0) push_queries(16);
  }

  // Churn rounds: delete every hub-incident edge in bursts, then put
  // them back, querying between bursts (the monitoring reads that
  // accompany real churn).
  for (size_t round = 0; round < rounds; ++round) {
    shuffle_edges(hub_edges, hash64(seed + 0xc11 + round));
    for (size_t lo = 0; lo < hub_edges.size(); lo += batch) {
      push_edges(update_batch::kind::erase, hub_edges, lo,
                 std::min(hub_edges.size(), lo + batch));
      push_queries(16);
    }
    for (size_t lo = 0; lo < hub_edges.size(); lo += batch) {
      push_edges(update_batch::kind::insert, hub_edges, lo,
                 std::min(hub_edges.size(), lo + batch));
      push_queries(16);
    }
  }
  push_queries(64);
  return stream;
}

std::vector<std::pair<vertex_id, vertex_id>> make_query_batch(
    vertex_id n, size_t k, uint64_t seed) {
  random r(seed);
  std::vector<std::pair<vertex_id, vertex_id>> qs(k);
  for (size_t i = 0; i < k; ++i) {
    qs[i] = {static_cast<vertex_id>(r.ith_rand(2 * i, n)),
             static_cast<vertex_id>(r.ith_rand(2 * i + 1, n))};
  }
  return qs;
}

}  // namespace bdc
