#include "gen/update_stream.hpp"

#include <algorithm>

#include "util/random.hpp"

namespace bdc {

void shuffle_edges(std::vector<edge>& es, uint64_t seed) {
  random r(seed);
  for (size_t i = es.size(); i > 1; --i) {
    std::swap(es[i - 1], es[r.ith_rand(i, i)]);
  }
}

update_stream make_insertion_stream(const std::vector<edge>& graph,
                                    size_t batch_size, uint64_t seed) {
  std::vector<edge> es = graph;
  shuffle_edges(es, seed);
  update_stream stream;
  for (size_t lo = 0; lo < es.size(); lo += batch_size) {
    size_t hi = std::min(es.size(), lo + batch_size);
    update_batch b;
    b.op = update_batch::kind::insert;
    b.edges.assign(es.begin() + static_cast<ptrdiff_t>(lo),
                   es.begin() + static_cast<ptrdiff_t>(hi));
    stream.push_back(std::move(b));
  }
  return stream;
}

update_stream make_deletion_stream(const std::vector<edge>& graph,
                                   vertex_id n, size_t insert_batch_size,
                                   size_t delete_batch_size,
                                   size_t queries_per_batch, uint64_t seed) {
  update_stream stream =
      make_insertion_stream(graph, insert_batch_size, seed);
  std::vector<edge> es = graph;
  shuffle_edges(es, hash64(seed + 1));
  random qr(hash64(seed + 2));
  uint64_t qi = 0;
  for (size_t lo = 0; lo < es.size(); lo += delete_batch_size) {
    size_t hi = std::min(es.size(), lo + delete_batch_size);
    update_batch b;
    b.op = update_batch::kind::erase;
    b.edges.assign(es.begin() + static_cast<ptrdiff_t>(lo),
                   es.begin() + static_cast<ptrdiff_t>(hi));
    stream.push_back(std::move(b));
    if (queries_per_batch > 0) {
      update_batch q;
      q.op = update_batch::kind::query;
      q.queries.reserve(queries_per_batch);
      for (size_t j = 0; j < queries_per_batch; ++j) {
        vertex_id a = static_cast<vertex_id>(qr.ith_rand(qi++, n));
        vertex_id b2 = static_cast<vertex_id>(qr.ith_rand(qi++, n));
        q.queries.push_back({a, b2});
      }
      stream.push_back(std::move(q));
    }
  }
  return stream;
}

update_stream make_sliding_window_stream(const std::vector<edge>& graph,
                                         size_t window, size_t batch,
                                         uint64_t seed) {
  std::vector<edge> es = graph;
  shuffle_edges(es, seed);
  update_stream stream;
  size_t head = 0;  // next edge to insert
  size_t tail = 0;  // next edge to delete
  while (head < es.size()) {
    size_t hi = std::min(es.size(), head + batch);
    update_batch ins;
    ins.op = update_batch::kind::insert;
    ins.edges.assign(es.begin() + static_cast<ptrdiff_t>(head),
                     es.begin() + static_cast<ptrdiff_t>(hi));
    stream.push_back(std::move(ins));
    head = hi;
    if (head - tail > window) {
      size_t del_hi = head - window;
      update_batch del;
      del.op = update_batch::kind::erase;
      del.edges.assign(es.begin() + static_cast<ptrdiff_t>(tail),
                       es.begin() + static_cast<ptrdiff_t>(del_hi));
      stream.push_back(std::move(del));
      tail = del_hi;
    }
  }
  return stream;
}

std::vector<std::pair<vertex_id, vertex_id>> make_query_batch(
    vertex_id n, size_t k, uint64_t seed) {
  random r(seed);
  std::vector<std::pair<vertex_id, vertex_id>> qs(k);
  for (size_t i = 0; i < k; ++i) {
    qs[i] = {static_cast<vertex_id>(r.ith_rand(2 * i, n)),
             static_cast<vertex_id>(r.ith_rand(2 * i + 1, n))};
  }
  return qs;
}

}  // namespace bdc
