// Per-worker pooled node allocation for the ETT substrates (skip-list,
// treap, and blocked-tour nodes).
//
// Both substrates allocate and free huge numbers of small nodes: every
// batch_link creates arc nodes, every batch_cut releases them, and a
// long-running stream churns through millions. Routing each node through
// the global heap costs a malloc/free round trip per node and scatters the
// tour across the address space. This pool instead:
//
//   * carves nodes out of 64 KiB naturally-aligned blocks owned by the
//     pool, rounded up to 16-byte size classes. Alignment means any node
//     pointer maps to its block header (`ptr & ~(kBlockBytes-1)`), where
//     a per-block live count lets trim_partial() release fully-dead
//     blocks while neighbors still hold live nodes;
//   * keeps one freelist array and one bump cursor PER SCHEDULER WORKER,
//     so the hot allocate/deallocate paths touch no shared state. Under
//     the library's phase-concurrency contract, concurrent allocation on
//     one pool only ever comes from distinct scheduler workers (slot 0 is
//     the external driver, slots 1..P-1 the pool threads), so per-worker
//     state needs no synchronization;
//   * recycles freed nodes across batches via the freeing worker's
//     freelist — a cut-then-relink workload reuses hot memory;
//   * optionally defers frees through an epoch_manager (`bind_epochs` +
//     `reclaim`): while concurrent readers may still observe an unlinked
//     node, it parks on the freeing worker's limbo list stamped with the
//     retire epoch, and only `drain_limbo()` — once every pinned reader
//     has moved past that epoch — recycles it. This is what makes
//     recycled-memory placement-new and descriptor ABA safe under the
//     epoch-snapshot read contract;
//   * returns blocks to the OS on pool destruction, or earlier through
//     trim() (full reset once outstanding() == 0) and trim_partial()
//     (release only the blocks whose live count reached zero).
//
// Thread-safety ladder:
//   allocate / deallocate / reclaim — per-worker, phase-concurrent.
//   stats()                        — safe anytime (atomic counters), even
//                                    while readers are pinned; the block
//                                    counts are taken under blocks_mutex_.
//   trim / trim_partial / drain_limbo — require MUTATION quiescence (no
//                                    update batch in flight; asserted via
//                                    the bound epoch_manager's writer
//                                    flag). Pinned READERS are fine: they
//                                    can only reach limbo nodes, whose
//                                    blocks the live counts keep alive.
//
// A thread whose worker id exceeds the slot count frozen at construction
// (possible when set_num_workers grows the pool afterwards) falls back to a
// mutex-guarded overflow slot; correctness never depends on the fast path.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <unordered_set>
#include <vector>

#include "parallel/scheduler.hpp"
#include "util/epoch.hpp"

namespace bdc {

class node_pool {
 public:
  static constexpr size_t kGranularity = 16;       // size-class step (bytes)
  static constexpr size_t kMaxBytes = 1024;        // largest pooled node
  static constexpr size_t kBlockBytes = 64 * 1024; // carve unit (aligned)
  static constexpr size_t kHeaderBytes = 64;       // per-block header area
  static_assert((kBlockBytes & (kBlockBytes - 1)) == 0,
                "block size must be a power of two for header lookup");

  struct stats_snapshot {
    uint64_t fresh = 0;     // nodes served by carving new block space
    uint64_t recycled = 0;  // nodes served from a freelist
    uint64_t freed = 0;     // nodes returned to the pool
    uint64_t limbo = 0;     // nodes deferred, awaiting epoch drain
    uint64_t blocks = 0;    // blocks currently owned
    uint64_t spare_blocks = 0;    // owned blocks currently uncarved
    uint64_t trimmed_bytes = 0;   // total bytes released by trim()
    uint64_t dead_block_trims = 0;  // blocks released by trim_partial()
    /// Nodes currently live (allocations minus frees). Limbo nodes count
    /// as outstanding until drained.
    [[nodiscard]] uint64_t outstanding() const {
      return fresh + recycled - freed;
    }
    /// Bytes currently retained from the OS.
    [[nodiscard]] uint64_t retained_bytes() const {
      return blocks * kBlockBytes;
    }
    stats_snapshot& operator+=(const stats_snapshot& o) {
      fresh += o.fresh;
      recycled += o.recycled;
      freed += o.freed;
      limbo += o.limbo;
      blocks += o.blocks;
      spare_blocks += o.spare_blocks;
      trimmed_bytes += o.trimmed_bytes;
      dead_block_trims += o.dead_block_trims;
      return *this;
    }
  };

  node_pool() : slots_(num_workers() == 0 ? 1 : num_workers()),
                workers_(slots_) {}

  node_pool(const node_pool&) = delete;
  node_pool& operator=(const node_pool&) = delete;

  ~node_pool() {
    for (void* b : blocks_) release_block(b);
  }

  /// Routes future reclaim() calls through `em`'s epoch protocol instead
  /// of freeing immediately. Pass nullptr to restore immediate frees
  /// (only valid once the limbo is drained).
  void bind_epochs(epoch_manager* em) {
    assert(em != nullptr || limbo_nodes_.load(std::memory_order_relaxed) == 0);
    epochs_ = em;
  }
  [[nodiscard]] bool deferred() const { return epochs_ != nullptr; }
  [[nodiscard]] epoch_manager* epochs() const { return epochs_; }

  /// Allocates `bytes` (<= kMaxBytes) of 16-byte-aligned storage.
  void* allocate(size_t bytes) {
    size_t cls = size_class(bytes);
    unsigned w = worker_id();
    if (w < slots_) return allocate_from(workers_[w], cls);
    std::lock_guard<std::mutex> lock(overflow_mutex_);
    return allocate_from(overflow_, cls);
  }

  /// Returns storage obtained from allocate(bytes) to the pool. The caller
  /// guarantees no other thread can still reach it.
  void deallocate(void* p, size_t bytes) {
    size_t cls = size_class(bytes);
    unsigned w = worker_id();
    if (w < slots_) {
      push_free(workers_[w], cls, p);
      return;
    }
    std::lock_guard<std::mutex> lock(overflow_mutex_);
    push_free(overflow_, cls, p);
  }

  /// Epoch-aware free: with an epoch_manager bound, parks the node on the
  /// calling worker's limbo list stamped with the current epoch (pinned
  /// readers may still observe it); without one, frees immediately. The
  /// caller guarantees the node is unlinked from all writer-reachable
  /// structures before calling.
  void reclaim(void* p, size_t bytes) {
    if (epochs_ == nullptr) {
      deallocate(p, bytes);
      return;
    }
    limbo_entry e{p, static_cast<uint32_t>(bytes), epochs_->current()};
    unsigned w = worker_id();
    if (w < slots_) {
      workers_[w].limbo.push_back(e);
    } else {
      std::lock_guard<std::mutex> lock(overflow_mutex_);
      overflow_.limbo.push_back(e);
    }
    limbo_nodes_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Frees every limbo node no pinned reader can observe (retire epoch <
  /// min pinned epoch). Requires mutation quiescence: the caller must not
  /// run this concurrently with allocate/deallocate/reclaim on any
  /// thread. Pinned readers are fine. Returns the number of nodes freed.
  size_t drain_limbo() {
    if (epochs_ == nullptr) return 0;
    assert(!epochs_->writers_active() &&
           "drain_limbo requires mutation quiescence");
    uint64_t mn = epochs_->min_pinned();
    size_t drained = 0;
    auto drain_one = [&](worker_state& ws) {
      // Entries are appended in nondecreasing epoch order, so the
      // reclaimable ones form a prefix.
      size_t i = 0;
      while (i < ws.limbo.size() && ws.limbo[i].epoch < mn) {
        const limbo_entry& e = ws.limbo[i];
        push_free(ws, size_class(e.bytes), e.p);
        ++i;
      }
      if (i > 0) ws.limbo.erase(ws.limbo.begin(), ws.limbo.begin() + i);
      drained += i;
    };
    for (worker_state& ws : workers_) drain_one(ws);
    {
      std::lock_guard<std::mutex> lock(overflow_mutex_);
      drain_one(overflow_);
    }
    if (drained > 0)
      limbo_nodes_.fetch_sub(drained, std::memory_order_relaxed);
    return drained;
  }

  /// Aggregated counters. Consistency contract, field by field:
  ///
  ///   * POINT-IN-TIME, NOT ATOMIC. Each field is read independently
  ///     (per-worker relaxed atomics summed, plus one mutex-guarded read
  ///     of the block lists), so the snapshot as a whole is NOT a
  ///     consistent cut: a concurrent allocate can land between reading
  ///     `fresh` and `freed`, making derived values like outstanding()
  ///     transiently off by the in-flight amount. No field is ever torn
  ///     and no read races (TSan-clean) — the snapshot is approximate,
  ///     never corrupt.
  ///   * Monotone fields (fresh, recycled, freed, trimmed_bytes,
  ///     dead_block_trims) never decrease; a mid-batch snapshot is a
  ///     valid lower bound for each of them individually.
  ///   * EXACT when no allocation/free/trim is concurrently in flight —
  ///     e.g. between update batches, which is when stream_runner and the
  ///     telemetry collectors sample it. Pinned readers do not perturb it
  ///     (readers never allocate).
  ///
  /// Deliberately requires NO writer quiescence and must stay that way:
  /// it is the monitoring probe for live systems. Only the operations
  /// that MOVE memory (trim(), trim_partial(), drain_limbo() below)
  /// assert !writers_active(), because they would free nodes a
  /// concurrent mutator could still touch — observation never needs the
  /// stronger precondition.
  [[nodiscard]] stats_snapshot stats() const {
    stats_snapshot s;
    auto add = [&](const worker_state& ws) {
      s.fresh += ws.fresh.load(std::memory_order_relaxed);
      s.recycled += ws.recycled.load(std::memory_order_relaxed);
      s.freed += ws.freed.load(std::memory_order_relaxed);
    };
    for (const worker_state& ws : workers_) add(ws);
    add(overflow_);
    s.limbo = limbo_nodes_.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(blocks_mutex_);
      s.blocks = blocks_.size();
      s.spare_blocks = spare_.size();
    }
    s.trimmed_bytes = trimmed_bytes_.load(std::memory_order_relaxed);
    s.dead_block_trims = dead_block_trims_.load(std::memory_order_relaxed);
    return s;
  }

  /// High-watermark trimming. Requires mutation quiescence. When every
  /// node has been returned (outstanding() == 0, which implies an empty
  /// limbo) the carved blocks are all reclaimable: per-worker freelists
  /// and cursors are reset, up to `keep_bytes` of blocks are retained as
  /// spares for the next burst, and the rest go back to the OS. With
  /// nodes still live, blocks cannot all move and the call is a no-op —
  /// use trim_partial() for that case. Returns the bytes released.
  size_t trim(size_t keep_bytes = 0) {
    assert((epochs_ == nullptr || !epochs_->writers_active()) &&
           "trim requires mutation quiescence");
    if (stats().outstanding() != 0) return 0;
    auto reset = [](worker_state& ws) {
      ws.freelist.fill(nullptr);
      ws.cursor = nullptr;
      ws.remaining = 0;
    };
    for (worker_state& ws : workers_) reset(ws);
    reset(overflow_);
    size_t keep_blocks = (keep_bytes + kBlockBytes - 1) / kBlockBytes;
    size_t released = 0;
    {
      std::lock_guard<std::mutex> lock(blocks_mutex_);
      while (blocks_.size() > keep_blocks) {
        release_block(blocks_.back());
        blocks_.pop_back();
        released += kBlockBytes;
      }
      spare_ = blocks_;  // every kept block is uncarved again
      for (void* b : spare_) header_of_block(b)->live.store(
          0, std::memory_order_relaxed);
    }
    trimmed_bytes_.fetch_add(released, std::memory_order_relaxed);
    return released;
  }

  /// Partial trimming: releases carved blocks whose live count reached
  /// zero (every node carved from them has been freed AND recycled back
  /// onto a freelist — not merely parked in limbo), purging any freelist
  /// entries that point into them. Unlike trim(), this works while other
  /// blocks still hold live nodes. Requires mutation quiescence; pinned
  /// readers are safe because anything they can still reach sits in
  /// limbo, which keeps its block's live count positive. Returns the
  /// bytes released.
  size_t trim_partial() {
    assert((epochs_ == nullptr || !epochs_->writers_active()) &&
           "trim_partial requires mutation quiescence");
    std::lock_guard<std::mutex> lock(blocks_mutex_);
    std::unordered_set<void*> dead;
    {
      std::unordered_set<void*> keep(spare_.begin(), spare_.end());
      auto protect_cursor = [&](worker_state& ws) {
        if (ws.cursor != nullptr && ws.remaining > 0)
          keep.insert(base_of(ws.cursor));
        else
          ws.cursor = nullptr;  // exhausted cursor: drop the dangling edge
      };
      for (worker_state& ws : workers_) protect_cursor(ws);
      {
        std::lock_guard<std::mutex> olock(overflow_mutex_);
        protect_cursor(overflow_);
      }
      for (void* b : blocks_) {
        if (keep.count(b) != 0) continue;
        if (header_of_block(b)->live.load(std::memory_order_relaxed) == 0)
          dead.insert(b);
      }
    }
    if (dead.empty()) return 0;
    auto purge = [&](worker_state& ws) {
      for (void*& head : ws.freelist) {
        void** link = &head;
        while (*link != nullptr) {
          if (dead.count(base_of(*link)) != 0)
            *link = *static_cast<void**>(*link);  // unlink
          else
            link = static_cast<void**>(*link);
        }
      }
    };
    for (worker_state& ws : workers_) purge(ws);
    {
      std::lock_guard<std::mutex> olock(overflow_mutex_);
      purge(overflow_);
    }
    size_t released = 0;
    auto keep_it = blocks_.begin();
    for (void* b : blocks_) {
      if (dead.count(b) != 0) {
        release_block(b);
        released += kBlockBytes;
      } else {
        *keep_it++ = b;
      }
    }
    blocks_.erase(keep_it, blocks_.end());
    trimmed_bytes_.fetch_add(released, std::memory_order_relaxed);
    dead_block_trims_.fetch_add(dead.size(), std::memory_order_relaxed);
    return released;
  }

 private:
  static constexpr size_t kNumClasses = kMaxBytes / kGranularity;
  static constexpr size_t kUsableBytes = kBlockBytes - kHeaderBytes;

  /// Lives in the first kHeaderBytes of every block. The live count is
  /// atomic so distinct workers can carve from / free into the same block
  /// without synchronizing (relaxed suffices: trim_partial reads it only
  /// under quiescence).
  struct alignas(kHeaderBytes) block_header {
    std::atomic<uint32_t> live{0};
  };
  static_assert(sizeof(block_header) <= kHeaderBytes);

  struct limbo_entry {
    void* p;
    uint32_t bytes;
    uint64_t epoch;
  };

  struct alignas(64) worker_state {
    std::array<void*, kNumClasses> freelist{};
    char* cursor = nullptr;
    size_t remaining = 0;
    std::atomic<uint64_t> fresh{0};
    std::atomic<uint64_t> recycled{0};
    std::atomic<uint64_t> freed{0};
    std::vector<limbo_entry> limbo;
  };

  static size_t size_class(size_t bytes) {
    assert(bytes > 0 && bytes <= kMaxBytes);
    return (bytes + kGranularity - 1) / kGranularity - 1;
  }

  static void* base_of(void* p) {
    return reinterpret_cast<void*>(reinterpret_cast<uintptr_t>(p) &
                                   ~(uintptr_t{kBlockBytes} - 1));
  }
  static block_header* header_of(void* p) {
    return static_cast<block_header*>(base_of(p));
  }
  static block_header* header_of_block(void* b) {
    return static_cast<block_header*>(b);
  }

  static void* acquire_block() {
    void* b = ::operator new(kBlockBytes, std::align_val_t{kBlockBytes});
    new (b) block_header();
    return b;
  }
  static void release_block(void* b) {
    ::operator delete(b, std::align_val_t{kBlockBytes});
  }

  void* allocate_from(worker_state& ws, size_t cls) {
    if (void* p = ws.freelist[cls]) {
      ws.freelist[cls] = *static_cast<void**>(p);
      ws.recycled.fetch_add(1, std::memory_order_relaxed);
      header_of(p)->live.fetch_add(1, std::memory_order_relaxed);
      return p;
    }
    size_t bytes = (cls + 1) * kGranularity;
    if (ws.remaining < bytes) {
      char* b = nullptr;
      {
        std::lock_guard<std::mutex> lock(blocks_mutex_);
        if (!spare_.empty()) {  // reuse a block retained by trim()
          b = static_cast<char*>(spare_.back());
          spare_.pop_back();
        }
      }
      if (b == nullptr) {
        b = static_cast<char*>(acquire_block());
        std::lock_guard<std::mutex> lock(blocks_mutex_);
        blocks_.push_back(b);
      }
      ws.cursor = b + kHeaderBytes;
      ws.remaining = kUsableBytes;
    }
    void* p = ws.cursor;
    ws.cursor += bytes;
    ws.remaining -= bytes;
    ws.fresh.fetch_add(1, std::memory_order_relaxed);
    header_of(p)->live.fetch_add(1, std::memory_order_relaxed);
    return p;
  }

  static void push_free(worker_state& ws, size_t cls, void* p) {
    *static_cast<void**>(p) = ws.freelist[cls];
    ws.freelist[cls] = p;
    ws.freed.fetch_add(1, std::memory_order_relaxed);
    header_of(p)->live.fetch_sub(1, std::memory_order_relaxed);
  }

  size_t slots_;
  std::vector<worker_state> workers_;
  worker_state overflow_;
  std::mutex overflow_mutex_;
  mutable std::mutex blocks_mutex_;
  std::vector<void*> blocks_;  // every block owned (freed in the dtor)
  std::vector<void*> spare_;   // subset of blocks_ currently uncarved
  std::atomic<uint64_t> trimmed_bytes_{0};
  std::atomic<uint64_t> dead_block_trims_{0};
  std::atomic<uint64_t> limbo_nodes_{0};
  epoch_manager* epochs_ = nullptr;
};

}  // namespace bdc
