// Per-worker pooled node allocation for the ETT substrates (skip-list and
// treap nodes).
//
// Both substrates allocate and free huge numbers of small nodes: every
// batch_link creates arc nodes, every batch_cut releases them, and a
// long-running stream churns through millions. Routing each node through
// the global heap costs a malloc/free round trip per node and scatters the
// tour across the address space. This pool instead:
//
//   * carves nodes out of 64 KiB blocks owned by the pool, rounded up to
//     16-byte size classes;
//   * keeps one freelist array and one bump cursor PER SCHEDULER WORKER,
//     so the hot allocate/deallocate paths touch no shared state. Under
//     the library's phase-concurrency contract, concurrent allocation on
//     one pool only ever comes from distinct scheduler workers (slot 0 is
//     the external driver, slots 1..P-1 the pool threads), so per-worker
//     state needs no synchronization;
//   * recycles freed nodes across batches via the freeing worker's
//     freelist — a cut-then-relink workload reuses hot memory;
//   * returns blocks to the OS on pool destruction (making substrate
//     teardown O(#blocks) instead of one `delete` per node), or earlier
//     through high-watermark trimming: trim() releases retained blocks
//     once every node has been returned, which long-running streams hit
//     whenever a structure (e.g. a low-level blocked forest) empties out.
//
// A thread whose worker id exceeds the slot count frozen at construction
// (possible when set_num_workers grows the pool afterwards) falls back to a
// mutex-guarded overflow slot; correctness never depends on the fast path.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <vector>

#include "parallel/scheduler.hpp"

namespace bdc {

class node_pool {
 public:
  static constexpr size_t kGranularity = 16;       // size-class step (bytes)
  static constexpr size_t kMaxBytes = 1024;        // largest pooled node
  static constexpr size_t kBlockBytes = 64 * 1024; // carve unit

  struct stats_snapshot {
    uint64_t fresh = 0;     // nodes served by carving new block space
    uint64_t recycled = 0;  // nodes served from a freelist
    uint64_t freed = 0;     // nodes returned to the pool
    uint64_t blocks = 0;    // blocks currently owned
    uint64_t spare_blocks = 0;    // owned blocks currently uncarved
    uint64_t trimmed_bytes = 0;   // total bytes released by trim()
    /// Nodes currently live (allocations minus frees).
    [[nodiscard]] uint64_t outstanding() const {
      return fresh + recycled - freed;
    }
    /// Bytes currently retained from the OS.
    [[nodiscard]] uint64_t retained_bytes() const {
      return blocks * kBlockBytes;
    }
    stats_snapshot& operator+=(const stats_snapshot& o) {
      fresh += o.fresh;
      recycled += o.recycled;
      freed += o.freed;
      blocks += o.blocks;
      spare_blocks += o.spare_blocks;
      trimmed_bytes += o.trimmed_bytes;
      return *this;
    }
  };

  node_pool() : slots_(num_workers() == 0 ? 1 : num_workers()),
                workers_(slots_) {}

  node_pool(const node_pool&) = delete;
  node_pool& operator=(const node_pool&) = delete;

  ~node_pool() {
    for (void* b : blocks_) ::operator delete(b);
  }

  /// Allocates `bytes` (<= kMaxBytes) of 16-byte-aligned storage.
  void* allocate(size_t bytes) {
    size_t cls = size_class(bytes);
    unsigned w = worker_id();
    if (w < slots_) return allocate_from(workers_[w], cls);
    std::lock_guard<std::mutex> lock(overflow_mutex_);
    return allocate_from(overflow_, cls);
  }

  /// Returns storage obtained from allocate(bytes) to the pool. The caller
  /// guarantees no other thread can still reach it.
  void deallocate(void* p, size_t bytes) {
    size_t cls = size_class(bytes);
    unsigned w = worker_id();
    if (w < slots_) {
      push_free(workers_[w], cls, p);
      return;
    }
    std::lock_guard<std::mutex> lock(overflow_mutex_);
    push_free(overflow_, cls, p);
  }

  /// Aggregated counters. Only meaningful while the pool is quiescent.
  [[nodiscard]] stats_snapshot stats() const {
    stats_snapshot s;
    auto add = [&](const worker_state& ws) {
      s.fresh += ws.fresh;
      s.recycled += ws.recycled;
      s.freed += ws.freed;
    };
    for (const worker_state& ws : workers_) add(ws);
    add(overflow_);
    s.blocks = blocks_.size();
    s.spare_blocks = spare_.size();
    s.trimmed_bytes = trimmed_bytes_;
    return s;
  }

  /// High-watermark trimming. Only callable while the pool is quiescent.
  /// When every node has been returned (outstanding() == 0) the carved
  /// blocks are all reclaimable: per-worker freelists and cursors are
  /// reset, up to `keep_bytes` of blocks are retained as spares for the
  /// next burst, and the rest go back to the OS. With nodes still live,
  /// blocks cannot move (freelist nodes point into them) and the call is
  /// a no-op. Returns the number of bytes released.
  size_t trim(size_t keep_bytes = 0) {
    if (stats().outstanding() != 0) return 0;
    auto reset = [](worker_state& ws) {
      ws.freelist.fill(nullptr);
      ws.cursor = nullptr;
      ws.remaining = 0;
    };
    for (worker_state& ws : workers_) reset(ws);
    reset(overflow_);
    size_t keep_blocks = (keep_bytes + kBlockBytes - 1) / kBlockBytes;
    size_t released = 0;
    {
      std::lock_guard<std::mutex> lock(blocks_mutex_);
      while (blocks_.size() > keep_blocks) {
        ::operator delete(blocks_.back());
        blocks_.pop_back();
        released += kBlockBytes;
      }
      spare_ = blocks_;  // every kept block is uncarved again
    }
    trimmed_bytes_ += released;
    return released;
  }

 private:
  static constexpr size_t kNumClasses = kMaxBytes / kGranularity;

  struct alignas(64) worker_state {
    std::array<void*, kNumClasses> freelist{};
    char* cursor = nullptr;
    size_t remaining = 0;
    uint64_t fresh = 0;
    uint64_t recycled = 0;
    uint64_t freed = 0;
  };

  static size_t size_class(size_t bytes) {
    assert(bytes > 0 && bytes <= kMaxBytes);
    return (bytes + kGranularity - 1) / kGranularity - 1;
  }

  void* allocate_from(worker_state& ws, size_t cls) {
    if (void* p = ws.freelist[cls]) {
      ws.freelist[cls] = *static_cast<void**>(p);
      ++ws.recycled;
      return p;
    }
    size_t bytes = (cls + 1) * kGranularity;
    if (ws.remaining < bytes) {
      char* b = nullptr;
      {
        std::lock_guard<std::mutex> lock(blocks_mutex_);
        if (!spare_.empty()) {  // reuse a block retained by trim()
          b = static_cast<char*>(spare_.back());
          spare_.pop_back();
        }
      }
      if (b == nullptr) {
        b = static_cast<char*>(::operator new(kBlockBytes));
        std::lock_guard<std::mutex> lock(blocks_mutex_);
        blocks_.push_back(b);
      }
      ws.cursor = b;
      ws.remaining = kBlockBytes;
    }
    void* p = ws.cursor;
    ws.cursor += bytes;
    ws.remaining -= bytes;
    ++ws.fresh;
    return p;
  }

  static void push_free(worker_state& ws, size_t cls, void* p) {
    *static_cast<void**>(p) = ws.freelist[cls];
    ws.freelist[cls] = p;
    ++ws.freed;
  }

  size_t slots_;
  std::vector<worker_state> workers_;
  worker_state overflow_;
  std::mutex overflow_mutex_;
  std::mutex blocks_mutex_;
  std::vector<void*> blocks_;  // every block owned (freed in the dtor)
  std::vector<void*> spare_;   // subset of blocks_ currently uncarved
  uint64_t trimmed_bytes_ = 0;
};

}  // namespace bdc
