// Wall-clock timing helpers for benchmarks and examples.
#pragma once

#include <chrono>

namespace bdc {

/// Simple wall-clock stopwatch.
class timer {
  using clock = std::chrono::steady_clock;

 public:
  timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Elapsed seconds since construction / last reset.
  [[nodiscard]] double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_ms() const { return elapsed() * 1e3; }
  [[nodiscard]] double elapsed_us() const { return elapsed() * 1e6; }

 private:
  clock::time_point start_;
};

}  // namespace bdc
