// Small bit-manipulation helpers.
#pragma once

#include <bit>
#include <cstdint>

namespace bdc {

/// ceil(log2(x)) for x >= 1; log2_ceil(1) == 0.
constexpr uint32_t log2_ceil(uint64_t x) {
  return x <= 1 ? 0 : 64 - static_cast<uint32_t>(std::countl_zero(x - 1));
}

/// floor(log2(x)) for x >= 1.
constexpr uint32_t log2_floor(uint64_t x) {
  return 63 - static_cast<uint32_t>(std::countl_zero(x));
}

/// Smallest power of two >= x (x >= 1).
constexpr uint64_t next_pow2(uint64_t x) { return uint64_t{1} << log2_ceil(x); }

static_assert(log2_ceil(1) == 0 && log2_ceil(2) == 1 && log2_ceil(3) == 2);
static_assert(log2_floor(1) == 0 && log2_floor(8) == 3 && log2_floor(9) == 3);
static_assert(next_pow2(1) == 1 && next_pow2(5) == 8);

}  // namespace bdc
