// Small bit-manipulation helpers.
#pragma once

// This header (and the rest of bdc) requires C++20 for <bit>. Without the
// guard, a build misconfigured to C++17 dies in a wall of confusing
// constexpr errors inside every translation unit that touches these
// helpers; fail once, loudly, with the actual cause instead. MSVC keeps
// __cplusplus at 199711L unless /Zc:__cplusplus is passed, so check its
// _MSVC_LANG too.
#if (defined(_MSVC_LANG) && _MSVC_LANG < 202002L) || \
    (!defined(_MSVC_LANG) && (!defined(__cplusplus) || __cplusplus < 202002L))
#error "bdc requires C++20 (std::countl_zero in <bit>): compile with -std=c++20 or let CMake set it"
#else

#include <bit>
#include <cstdint>

namespace bdc {

/// ceil(log2(x)) for x >= 1; log2_ceil(1) == 0.
constexpr uint32_t log2_ceil(uint64_t x) {
  return x <= 1 ? 0 : 64 - static_cast<uint32_t>(std::countl_zero(x - 1));
}

/// floor(log2(x)) for x >= 1.
constexpr uint32_t log2_floor(uint64_t x) {
  return 63 - static_cast<uint32_t>(std::countl_zero(x));
}

/// Smallest power of two >= x (x >= 1).
constexpr uint64_t next_pow2(uint64_t x) { return uint64_t{1} << log2_ceil(x); }

static_assert(log2_ceil(1) == 0 && log2_ceil(2) == 1 && log2_ceil(3) == 2);
static_assert(log2_floor(1) == 0 && log2_floor(8) == 3 && log2_floor(9) == 3);
static_assert(next_pow2(1) == 1 && next_pow2(5) == 8);

}  // namespace bdc

#endif  // __cplusplus >= 202002L
