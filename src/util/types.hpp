// Core scalar types and the edge representation shared across the library.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <utility>

namespace bdc {

/// Vertex identifier. Graphs are over the vertex set [0, n).
using vertex_id = uint32_t;

/// Sentinel for "no vertex".
inline constexpr vertex_id kNoVertex = std::numeric_limits<vertex_id>::max();

/// An undirected edge. Stored in canonical orientation (u <= v) by
/// `edge::canonical`, but the type itself does not force an orientation:
/// algorithm-internal code frequently works with directed arcs.
struct edge {
  vertex_id u = kNoVertex;
  vertex_id v = kNoVertex;

  edge() = default;
  constexpr edge(vertex_id a, vertex_id b) : u(a), v(b) {}

  /// Canonical (undirected) form: smaller endpoint first.
  [[nodiscard]] constexpr edge canonical() const {
    return u <= v ? edge{u, v} : edge{v, u};
  }
  /// The same edge traversed in the other direction.
  [[nodiscard]] constexpr edge reversed() const { return edge{v, u}; }

  [[nodiscard]] constexpr bool is_self_loop() const { return u == v; }

  friend constexpr bool operator==(const edge&, const edge&) = default;
  friend constexpr auto operator<=>(const edge&, const edge&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const edge& e) {
  return os << '(' << e.u << ',' << e.v << ')';
}

/// Packs an edge into a 64-bit key (used by hash tables). Directed: the
/// orientation is preserved; canonicalize first for undirected keys.
constexpr uint64_t edge_key(const edge& e) {
  return (static_cast<uint64_t>(e.u) << 32) | static_cast<uint64_t>(e.v);
}
constexpr edge edge_from_key(uint64_t k) {
  return edge{static_cast<vertex_id>(k >> 32),
              static_cast<vertex_id>(k & 0xffffffffu)};
}

}  // namespace bdc

template <>
struct std::hash<bdc::edge> {
  size_t operator()(const bdc::edge& e) const noexcept {
    uint64_t x = bdc::edge_key(e);
    // splitmix64 finalizer
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};
