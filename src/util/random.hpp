// Deterministic, splittable pseudo-random generation.
//
// All randomized structures in the library draw bits through this header so
// that (a) results are reproducible given a seed and (b) parallel code can
// draw independent streams without synchronization by hashing (seed, index)
// pairs instead of mutating shared generator state.
#pragma once

#include <cstdint>

namespace bdc {

/// splitmix64 finalizer: a fast, well-distributed 64->64 bit mixer.
constexpr uint64_t hash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Combines two 64-bit values into one hash (order-sensitive).
constexpr uint64_t hash_combine(uint64_t a, uint64_t b) {
  return hash64(a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2)));
}

/// A counter-based RNG: `random r(seed); r.ith_rand(i)` yields the i-th
/// value of a reproducible stream. Cheap to copy and to "fork" into
/// independent substreams, which is exactly what data-parallel loops need.
class random {
 public:
  explicit constexpr random(uint64_t seed = 0x5bd1e995u) : seed_(seed) {}

  /// The i-th draw of this stream.
  [[nodiscard]] constexpr uint64_t ith_rand(uint64_t i) const {
    return hash64(seed_ ^ hash64(i));
  }
  /// An independent child stream.
  [[nodiscard]] constexpr random fork(uint64_t i) const {
    return random(hash_combine(seed_, i));
  }
  /// Uniform value in [0, bound). Bound must be nonzero.
  [[nodiscard]] constexpr uint64_t ith_rand(uint64_t i, uint64_t bound) const {
    // 128-bit multiply avoids modulo bias well enough for our purposes.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(ith_rand(i)) * bound) >> 64);
  }
  [[nodiscard]] constexpr uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
};

/// Stateful convenience wrapper when sequential draws are fine.
class random_stream {
 public:
  explicit constexpr random_stream(uint64_t seed = 0x5bd1e995u) : r_(seed) {}
  constexpr uint64_t next() { return r_.ith_rand(i_++); }
  constexpr uint64_t next(uint64_t bound) { return r_.ith_rand(i_++, bound); }
  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  random r_;
  uint64_t i_ = 0;
};

}  // namespace bdc
