// Epoch-based reclamation for concurrent query serving.
//
// The library's baseline contract is phase concurrency: one exclusive
// mutation phase at a time, queries in between. The epoch layer relaxes
// that for READ traffic: reader threads pin an epoch (a `reader_guard`),
// walk read-only published state, and unpin; writers advance the global
// epoch at batch boundaries and push unlinked memory onto limbo lists
// instead of freeing it. A limbo entry retired at epoch e may be freed
// once every pinned reader sits at an epoch strictly greater than e —
// at that point no reader can still hold a pointer obtained before the
// unlink was published.
//
// Pin protocol (the standard two-step store/validate):
//
//   e = global.load(seq_cst)
//   loop:
//     slot.store(e, seq_cst)        // announce
//     g = global.load(seq_cst)     // validate
//     if (g == e) break            // announcement is visible "in time"
//     e = g                        // writer advanced mid-pin; re-announce
//
// Why this is safe: suppose a writer frees an entry retired at epoch e.
// That requires min_pinned() > e, i.e. the writer's slot scan (all slot
// accesses are seq_cst) did not observe any slot holding an epoch <= e,
// and the global epoch had already advanced past e. If a reader's final
// slot.store(e') with e' <= e preceded the scan's load in the seq_cst
// total order, the scan would have seen it — contradiction. So the store
// followed the scan; but then the reader's validating global.load also
// follows the writer's advance in the total order, reads a value > e',
// and the reader re-announces with the newer epoch. Hence a successfully
// validated pin at epoch p is always visible to any scan that could free
// epoch-p garbage, and the pin additionally synchronizes with the last
// advance, so the reader observes every unlink published before it.
//
// Readers are wait-free on the slot path (one CAS-free claim scan, two
// seq_cst accesses); only the >kMaxReaders overflow path takes a mutex.
// Reader threads need not be scheduler workers — slots are claimed per
// guard, not per worker id, which is what lets `stream_runner
// --serve-queries=T` hammer queries from plain std::threads.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace bdc {

class epoch_manager {
 public:
  /// Lock-free reader slots. Guards beyond this many concurrently pinned
  /// fall back to a mutex-guarded overflow list (correct, not wait-free).
  static constexpr unsigned kMaxReaders = 64;
  /// min_pinned() result when no reader is pinned.
  static constexpr uint64_t kNonePinned = ~uint64_t{0};

  epoch_manager() = default;
  epoch_manager(const epoch_manager&) = delete;
  epoch_manager& operator=(const epoch_manager&) = delete;

  /// The owner guarantees no reader_guard outlives the manager; remaining
  /// limbo entries are reclaimed unconditionally.
  ~epoch_manager() {
    assert(min_pinned() == kNonePinned && "reader_guard outlived manager");
    for (const limbo_entry& e : limbo_) e.deleter(e.p);
  }

  /// RAII epoch pin. Move-only. Guards nest trivially: each pin claims
  /// its own slot, so an inner guard never weakens the outer one's
  /// protection (min_pinned() stays at the oldest live guard's epoch).
  class reader_guard {
   public:
    reader_guard() = default;
    reader_guard(reader_guard&& o) noexcept
        : em_(o.em_), slot_(o.slot_), epoch_(o.epoch_) {
      o.em_ = nullptr;
    }
    reader_guard& operator=(reader_guard&& o) noexcept {
      if (this != &o) {
        release();
        em_ = o.em_;
        slot_ = o.slot_;
        epoch_ = o.epoch_;
        o.em_ = nullptr;
      }
      return *this;
    }
    reader_guard(const reader_guard&) = delete;
    reader_guard& operator=(const reader_guard&) = delete;
    ~reader_guard() { release(); }

    [[nodiscard]] bool pinned() const { return em_ != nullptr; }
    [[nodiscard]] uint64_t epoch() const { return epoch_; }

    /// Unpins early (idempotent).
    void release() {
      if (em_ == nullptr) return;
      em_->unpin(slot_, epoch_);
      em_ = nullptr;
    }

   private:
    friend class epoch_manager;
    reader_guard(epoch_manager* em, unsigned slot, uint64_t epoch)
        : em_(em), slot_(slot), epoch_(epoch) {}

    epoch_manager* em_ = nullptr;
    unsigned slot_ = 0;
    uint64_t epoch_ = 0;
  };

  /// Pins the current epoch. Wait-free while fewer than kMaxReaders
  /// guards are live; callable from any thread.
  [[nodiscard]] reader_guard pin() {
    for (unsigned s = 0; s < kMaxReaders; ++s) {
      slot& sl = slots_[s];
      if (sl.used.load(std::memory_order_relaxed)) continue;
      if (sl.used.exchange(true, std::memory_order_acquire)) continue;
      uint64_t e = global_.load(std::memory_order_seq_cst);
      for (;;) {
        sl.epoch.store(e, std::memory_order_seq_cst);
        uint64_t g = global_.load(std::memory_order_seq_cst);
        if (g == e) break;
        e = g;
      }
      return reader_guard(this, s, e);
    }
    // Overflow: record the pin under the mutex. min_pinned() takes the
    // same mutex, so a scan either sees the entry (conservative) or ran
    // entirely before this critical section — in which case the global
    // load below is ordered after any advance that preceded that scan
    // and the recorded epoch is new enough.
    std::lock_guard<std::mutex> lock(overflow_mutex_);
    uint64_t e = global_.load(std::memory_order_seq_cst);
    overflow_pins_.push_back(e);
    return reader_guard(this, kOverflowSlot, e);
  }

  /// Current global epoch (starts at 1; 0 marks an idle slot).
  [[nodiscard]] uint64_t current() const {
    return global_.load(std::memory_order_seq_cst);
  }

  /// Writer-side: advances the global epoch. Returns the new epoch.
  uint64_t advance() {
    return global_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  /// Smallest epoch any live guard holds, or kNonePinned.
  [[nodiscard]] uint64_t min_pinned() const {
    uint64_t mn = kNonePinned;
    for (const slot& sl : slots_) {
      uint64_t e = sl.epoch.load(std::memory_order_seq_cst);
      if (e != 0 && e < mn) mn = e;
    }
    std::lock_guard<std::mutex> lock(overflow_mutex_);
    for (uint64_t e : overflow_pins_)
      if (e < mn) mn = e;
    return mn;
  }

  /// Defers `deleter(p)` until no pinned reader can still observe `p`.
  /// The entry is stamped with the current epoch; it becomes reclaimable
  /// once min_pinned() exceeds that stamp. Thread-safe (mutex-guarded);
  /// high-traffic retirement should go through node_pool's per-worker
  /// limbo lists instead.
  void retire(void* p, void (*deleter)(void*)) {
    std::lock_guard<std::mutex> lock(limbo_mutex_);
    limbo_.push_back({p, deleter, global_.load(std::memory_order_seq_cst)});
  }

  /// Reclaims every limbo entry no pinned reader can observe. Returns the
  /// number reclaimed. Safe to call from any thread at any time (a
  /// concurrent pin is either seen, or too new to reach the entries).
  size_t drain() {
    std::vector<limbo_entry> dead;
    {
      std::lock_guard<std::mutex> lock(limbo_mutex_);
      if (limbo_.empty()) return 0;
      uint64_t mn = min_pinned();
      auto keep = limbo_.begin();
      for (limbo_entry& e : limbo_) {
        if (e.epoch < mn)
          dead.push_back(e);
        else
          *keep++ = e;
      }
      limbo_.erase(keep, limbo_.end());
    }
    for (const limbo_entry& e : dead) e.deleter(e.p);
    return dead.size();
  }

  /// Entries currently deferred.
  [[nodiscard]] size_t limbo_size() const {
    std::lock_guard<std::mutex> lock(limbo_mutex_);
    return limbo_.size();
  }

  // Writer bookkeeping: lets quiescence-requiring maintenance (node_pool
  // trim paths) assert that no update batch is in flight.
  void begin_write() { writers_.fetch_add(1, std::memory_order_acq_rel); }
  void end_write() { writers_.fetch_sub(1, std::memory_order_acq_rel); }
  [[nodiscard]] bool writers_active() const {
    return writers_.load(std::memory_order_acquire) != 0;
  }

 private:
  static constexpr unsigned kOverflowSlot = kMaxReaders;

  struct alignas(64) slot {
    std::atomic<uint64_t> epoch{0};  // 0 = idle
    std::atomic<bool> used{false};
  };

  struct limbo_entry {
    void* p;
    void (*deleter)(void*);
    uint64_t epoch;
  };

  void unpin(unsigned s, uint64_t epoch) {
    if (s == kOverflowSlot) {
      std::lock_guard<std::mutex> lock(overflow_mutex_);
      for (auto it = overflow_pins_.begin(); it != overflow_pins_.end(); ++it) {
        if (*it == epoch) {
          *it = overflow_pins_.back();
          overflow_pins_.pop_back();
          return;
        }
      }
      assert(false && "overflow pin not found");
      return;
    }
    slots_[s].epoch.store(0, std::memory_order_seq_cst);
    slots_[s].used.store(false, std::memory_order_release);
  }

  std::atomic<uint64_t> global_{1};
  std::atomic<uint64_t> writers_{0};
  std::array<slot, kMaxReaders> slots_;
  mutable std::mutex overflow_mutex_;
  std::vector<uint64_t> overflow_pins_;
  mutable std::mutex limbo_mutex_;
  std::vector<limbo_entry> limbo_;
};

}  // namespace bdc
