// Batch-incremental minimum spanning forest — the paper's §6 extension
// direction ("MST seems solvable using the techniques presented in this
// paper, although our dynamic tree structure would need to be extended
// with additional primitives").
//
// The additional primitive is the path-maximum query, which Euler tour
// trees cannot provide; this module stands on the link-cut trees of
// src/lct/ instead. Insertion follows the classic exchange argument: a new
// edge (u, v, w) enters the forest iff u, v are disconnected, or w is
// smaller than the maximum-weight edge on the u..v forest path (which is
// then evicted). Batches are sorted by weight first, so each batch costs
// O(k lg k + k lg n) — the Kruskal-style presort means evicted edges never
// re-enter within the batch.
//
// Deletion of non-forest edges is O(1). Deletion of forest edges — the
// fully dynamic case — requires the HDT-MSF level machinery and is beyond
// the paper's scope; erase_forest_edge() provides a correct O(m) reference
// implementation (scan all non-forest edges for the lightest replacement)
// so downstream users have the full interface, with the cost documented.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "lct/link_cut_tree.hpp"
#include "util/types.hpp"

namespace bdc {

struct weighted_edge {
  edge e;
  uint64_t weight = 0;
  friend bool operator==(const weighted_edge&,
                         const weighted_edge&) = default;
};

class incremental_msf {
 public:
  explicit incremental_msf(vertex_id n);

  [[nodiscard]] vertex_id num_vertices() const { return n_; }
  [[nodiscard]] size_t num_edges() const {
    return forest_weight_of_.size() + nonforest_.size();
  }
  [[nodiscard]] size_t num_forest_edges() const {
    return forest_weight_of_.size();
  }
  /// Total weight of the current minimum spanning forest.
  [[nodiscard]] uint64_t msf_weight() const { return msf_weight_; }

  /// Inserts a batch (self-loops/duplicates/present edges ignored),
  /// maintaining MSF minimality via path-max exchanges.
  void batch_insert(std::span<const weighted_edge> batch);
  void insert(weighted_edge we) { batch_insert({&we, 1}); }

  /// Deletes a non-forest edge: O(1), MSF unchanged. Returns false if the
  /// edge is absent or currently in the forest.
  bool erase_nonforest(edge e);
  /// Deletes any edge; if it is a forest edge, finds the lightest
  /// replacement by scanning non-forest edges (O(m) reference
  /// implementation — see header comment). Returns false if absent.
  bool erase(edge e);

  [[nodiscard]] bool connected(vertex_id u, vertex_id v) {
    return lct_.connected(u, v);
  }
  [[nodiscard]] bool has_edge(edge e) const;
  [[nodiscard]] bool is_forest_edge(edge e) const {
    return forest_weight_of_.count(edge_key(e.canonical())) != 0;
  }

  /// Current forest edges with weights (unspecified order).
  [[nodiscard]] std::vector<weighted_edge> forest_edges() const;

 private:
  void insert_one(weighted_edge we);

  vertex_id n_;
  link_cut_tree lct_;
  std::unordered_map<uint64_t, uint64_t> forest_weight_of_;  // key -> w
  std::unordered_map<uint64_t, uint64_t> nonforest_;         // key -> w
  uint64_t msf_weight_ = 0;
};

}  // namespace bdc
