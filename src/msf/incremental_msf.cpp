#include "msf/incremental_msf.hpp"

#include <algorithm>
#include <cassert>

namespace bdc {

incremental_msf::incremental_msf(vertex_id n) : n_(n), lct_(n) {}

bool incremental_msf::has_edge(edge e) const {
  uint64_t k = edge_key(e.canonical());
  return forest_weight_of_.count(k) != 0 || nonforest_.count(k) != 0;
}

void incremental_msf::insert_one(weighted_edge we) {
  edge c = we.e.canonical();
  if (c.is_self_loop() || has_edge(c)) return;
  uint64_t key = edge_key(c);
  if (!lct_.connected(c.u, c.v)) {
    lct_.link(c.u, c.v, we.weight);
    forest_weight_of_[key] = we.weight;
    msf_weight_ += we.weight;
    return;
  }
  auto pm = lct_.path_max(c.u, c.v);
  assert(pm.connected);
  if (pm.weight <= we.weight) {
    nonforest_[key] = we.weight;  // new edge is not an improvement
    return;
  }
  // Exchange: evict the heaviest path edge, admit the new one.
  lct_.cut(pm.max_edge.u, pm.max_edge.v);
  uint64_t evicted_key = edge_key(pm.max_edge);
  forest_weight_of_.erase(evicted_key);
  nonforest_[evicted_key] = pm.weight;
  msf_weight_ -= pm.weight;
  lct_.link(c.u, c.v, we.weight);
  forest_weight_of_[key] = we.weight;
  msf_weight_ += we.weight;
}

void incremental_msf::batch_insert(std::span<const weighted_edge> batch) {
  // Kruskal-style presort: within the batch, lighter edges settle first,
  // so no batch edge is ever evicted by a later batch edge.
  std::vector<weighted_edge> sorted(batch.begin(), batch.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const weighted_edge& a, const weighted_edge& b) {
              return a.weight < b.weight;
            });
  for (const weighted_edge& we : sorted) insert_one(we);
}

bool incremental_msf::erase_nonforest(edge e) {
  return nonforest_.erase(edge_key(e.canonical())) != 0;
}

bool incremental_msf::erase(edge e) {
  edge c = e.canonical();
  uint64_t key = edge_key(c);
  if (nonforest_.erase(key) != 0) return true;
  auto it = forest_weight_of_.find(key);
  if (it == forest_weight_of_.end()) return false;
  uint64_t w = it->second;
  forest_weight_of_.erase(it);
  msf_weight_ -= w;
  lct_.cut(c.u, c.v);
  // Reference replacement scan: lightest non-forest edge reconnecting the
  // two sides. (Fully dynamic MSF would use HDT-MSF levels here.)
  uint64_t best_key = 0, best_w = 0;
  bool found = false;
  for (auto& [k, wk] : nonforest_) {
    edge cand = edge_from_key(k);
    if (lct_.connected(cand.u, cand.v)) continue;  // within one side
    if (!found || wk < best_w) {
      found = true;
      best_key = k;
      best_w = wk;
    }
  }
  if (found) {
    edge r = edge_from_key(best_key);
    nonforest_.erase(best_key);
    lct_.link(r.u, r.v, best_w);
    forest_weight_of_[best_key] = best_w;
    msf_weight_ += best_w;
  }
  return true;
}

std::vector<weighted_edge> incremental_msf::forest_edges() const {
  std::vector<weighted_edge> out;
  out.reserve(forest_weight_of_.size());
  for (auto& [k, w] : forest_weight_of_)
    out.push_back({edge_from_key(k), w});
  return out;
}

}  // namespace bdc
