// Sequential Euler tour trees over treaps — the substrate of the HDT
// baseline (paper §2.2; Henzinger-King [27], Miltersen et al. [41]).
//
// Entirely independent of the parallel skip-list ETT so the two can
// cross-validate each other in tests. Each tree's Euler tour is a treap
// sequence over arc nodes (u,v)/(v,u) plus one sentinel node (v,v) per
// vertex; link/cut are O(lg n) expected via split/join, and the treap is
// augmented with subtree counts of vertices and of per-level incident
// tree/non-tree edges (on the sentinel nodes) to support the HDT searches.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/random.hpp"
#include "util/types.hpp"

namespace bdc {

class treap_ett {
 public:
  struct counts {
    uint32_t vertices = 0;
    uint32_t tree_edges = 0;     // incident level-i tree edge slots
    uint32_t nontree_edges = 0;  // incident level-i non-tree edge slots
  };

  explicit treap_ett(vertex_id n, uint64_t seed = 0x7e47);
  ~treap_ett();

  treap_ett(const treap_ett&) = delete;
  treap_ett& operator=(const treap_ett&) = delete;

  /// Links u and v (must be in different trees).
  void link(vertex_id u, vertex_id v);
  /// Cuts the tree edge (u, v) (must be present).
  void cut(vertex_id u, vertex_id v);
  [[nodiscard]] bool connected(vertex_id u, vertex_id v) const;
  [[nodiscard]] bool has_edge(vertex_id u, vertex_id v) const;

  /// Number of vertices in v's tree.
  [[nodiscard]] uint32_t component_size(vertex_id v) const;
  /// Component-wide counter sums.
  [[nodiscard]] counts component_counts(vertex_id v) const;
  /// Adjusts v's per-vertex counters.
  void add_counts(vertex_id v, int32_t tree_delta, int32_t nontree_delta);
  [[nodiscard]] counts vertex_counts(vertex_id v) const;

  /// Some vertex in v's tree with a nonzero tree (resp. non-tree) counter,
  /// or kNoVertex. O(lg n) expected via augmented descent.
  [[nodiscard]] vertex_id find_tree_slot(vertex_id v) const;
  [[nodiscard]] vertex_id find_nontree_slot(vertex_id v) const;

  /// All vertices of v's tree, in tour order (tests; O(size)).
  [[nodiscard]] std::vector<vertex_id> component_vertices(vertex_id v) const;

  [[nodiscard]] size_t num_edges() const { return arcs_.size() / 2; }

  /// Structural validation (tests): parent/child coherence, heap order,
  /// aggregate sums, tour well-formedness. Empty string if healthy.
  [[nodiscard]] std::string check_consistency() const;

 private:
  struct node;

  node* make_node(uint64_t tag);
  static void update(node* x);
  [[nodiscard]] static node* root_of(node* x);
  /// Merges two treap sequences (all of a before all of b).
  static node* merge(node* a, node* b);
  /// Splits so that x begins the right part. Returns {left, right}.
  static std::pair<node*, node*> split_before(node* x);
  /// Splits so that x ends the left part. Returns {left, right}.
  static std::pair<node*, node*> split_after(node* x);
  /// In-order rank of x within its treap (for arc ordering in cut).
  [[nodiscard]] static size_t rank_of(node* x);
  /// Rotates v's tour so it starts at v's sentinel.
  node* reroot(vertex_id v);

  random rng_;
  uint64_t counter_ = 0;
  std::vector<node*> sentinel_;               // (v,v) node per vertex
  std::unordered_map<uint64_t, std::pair<node*, node*>> arcs_;  // per edge
};

}  // namespace bdc
