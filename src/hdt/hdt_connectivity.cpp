// HDT deletion (paper §2.2 "Deleting an Edge"): when a tree edge of level
// l is cut, search levels l..top. At level i, take the smaller of the two
// split components, push all of its level-i tree edges to level i-1 (legal
// by Invariant 1, required by Invariant 2), then examine its level-i
// non-tree edges one at a time: a replacement reconnects and ends the
// search; every non-replacement is pushed to level i-1, paying for its own
// examination (the charging argument behind the O(lg^2 n) bound).
#include "hdt/hdt_connectivity.hpp"

#include <cassert>

#include "util/bits.hpp"
#include "util/random.hpp"

namespace bdc {

hdt_connectivity::hdt_connectivity(vertex_id n, uint64_t seed)
    : n_(n), seed_(seed), records_(64) {
  int levels = std::max(1, static_cast<int>(log2_ceil(std::max<uint64_t>(
                               2, static_cast<uint64_t>(n)))));
  levels_.resize(static_cast<size_t>(levels));
  (void)forest(top());
}

treap_ett& hdt_connectivity::forest(int level) {
  auto& slot = levels_[static_cast<size_t>(level)].forest;
  if (!slot) {
    slot = std::make_unique<treap_ett>(
        n_, hash_combine(seed_, static_cast<uint64_t>(level)));
  }
  return *slot;
}

void hdt_connectivity::add_adj(int level, edge c, bool is_tree) {
  auto& la = levels_[static_cast<size_t>(level)].adjacency;
  if (la.lists.empty()) la.lists.resize(n_);
  record& rec = *records_.find(edge_key(c));
  auto append = [&](vertex_id w, int side) {
    auto& list = la.lists[w][is_tree ? 0 : 1];
    rec.pos[side] = static_cast<uint32_t>(list.size());
    list.push_back(c);
  };
  append(c.u, 0);
  append(c.v, 1);
  forest(level).add_counts(c.u, is_tree ? 1 : 0, is_tree ? 0 : 1);
  forest(level).add_counts(c.v, is_tree ? 1 : 0, is_tree ? 0 : 1);
}

void hdt_connectivity::remove_adj(int level, edge c) {
  auto& la = levels_[static_cast<size_t>(level)].adjacency;
  record& rec = *records_.find(edge_key(c));
  bool is_tree = rec.is_tree != 0;
  auto detach = [&](vertex_id w, int side) {
    auto& list = la.lists[w][is_tree ? 0 : 1];
    uint32_t slot = rec.pos[side];
    assert(slot < list.size() && list[slot] == c);
    edge moved = list.back();
    list[slot] = moved;
    list.pop_back();
    if (moved != c) {
      record& mrec = *records_.find(edge_key(moved));
      mrec.pos[moved.v == w ? 1 : 0] = slot;
    }
  };
  detach(c.u, 0);
  detach(c.v, 1);
  forest(level).add_counts(c.u, is_tree ? -1 : 0, is_tree ? 0 : -1);
  forest(level).add_counts(c.v, is_tree ? -1 : 0, is_tree ? 0 : -1);
}

edge hdt_connectivity::first_adj(int level, vertex_id w, bool is_tree) const {
  const auto& la = levels_[static_cast<size_t>(level)].adjacency;
  const auto& list = la.lists[w][is_tree ? 0 : 1];
  assert(!list.empty());
  return list.front();
}

void hdt_connectivity::insert(edge e) {
  edge c = e.canonical();
  // Canonical form has u <= v, so one bound check covers both endpoints;
  // without it a hostile id would index the per-vertex adjacency arrays
  // out of bounds (ISSUE 8: validate in the library, not in callers).
  if (c.is_self_loop() || c.v >= n_ || records_.contains(edge_key(c)))
    return;
  stats_.edges_inserted++;
  int t = top();
  bool is_tree = !forest(t).connected(c.u, c.v);
  records_.reserve_for(1);
  records_.insert(edge_key(c), {static_cast<int16_t>(t),
                                static_cast<uint8_t>(is_tree ? 1 : 0),
                                {0, 0}});
  if (is_tree) forest(t).link(c.u, c.v);
  add_adj(t, c, is_tree);
}

void hdt_connectivity::erase(edge e) {
  edge c = e.canonical();
  if (c.v >= n_) return;  // can never have been inserted
  const record* rec = records_.find(edge_key(c));
  if (rec == nullptr) return;
  stats_.edges_deleted++;
  int level = rec->level;
  bool was_tree = rec->is_tree != 0;
  remove_adj(level, c);
  records_.erase(edge_key(c));
  if (!was_tree) return;
  stats_.tree_edges_deleted++;
  for (int i = level; i <= top(); ++i) forest(i).cut(c.u, c.v);
  replace(level, c.u, c.v);
}

void hdt_connectivity::replace(int level, vertex_id u, vertex_id v) {
  for (int i = level; i <= top(); ++i) {
    stats_.levels_searched++;
    treap_ett& f = forest(i);
    // Search the smaller side (size <= capacity(i)/2 = capacity(i-1)).
    vertex_id x = f.component_size(u) <= f.component_size(v) ? u : v;
    // Push the smaller side's level-i tree edges down (Invariant 2 prep).
    if (i > 0) {
      while (true) {
        vertex_id w = f.find_tree_slot(x);
        if (w == kNoVertex) break;
        edge te = first_adj(i, w, /*is_tree=*/true);
        remove_adj(i, te);
        records_.find(edge_key(te))->level = static_cast<int16_t>(i - 1);
        add_adj(i - 1, te, /*is_tree=*/true);
        forest(i - 1).link(te.u, te.v);
        stats_.edges_pushed++;
      }
    }
    // Examine level-i non-tree edges one at a time.
    while (true) {
      vertex_id w = f.find_nontree_slot(x);
      if (w == kNoVertex) break;  // exhausted: ascend
      edge ne = first_adj(i, w, /*is_tree=*/false);
      if (!f.connected(ne.u, ne.v)) {
        // Replacement found: promote to a tree edge at level i and relink
        // every forest from i to the top.
        remove_adj(i, ne);
        records_.find(edge_key(ne))->is_tree = 1;
        add_adj(i, ne, /*is_tree=*/true);
        for (int j = i; j <= top(); ++j) forest(j).link(ne.u, ne.v);
        stats_.replacements_promoted++;
        return;
      }
      // Not a replacement: the examination is paid for by a level
      // decrease.
      assert(i > 0 && "level-0 non-tree edge cannot be internal to a "
                      "size-1 active side");
      remove_adj(i, ne);
      records_.find(edge_key(ne))->level = static_cast<int16_t>(i - 1);
      add_adj(i - 1, ne, /*is_tree=*/false);
      stats_.edges_pushed++;
    }
  }
}

bool hdt_connectivity::connected(vertex_id u, vertex_id v) const {
  if (u >= n_ || v >= n_) return false;
  return forest_if(top())->connected(u, v);
}

bool hdt_connectivity::has_edge(edge e) const {
  return records_.contains(edge_key(e.canonical()));
}

std::vector<bool> hdt_connectivity::batch_connected(
    std::span<const std::pair<vertex_id, vertex_id>> qs) const {
  // Out-of-range endpoints answer false (the dynamic structure's
  // contract). Remap them to the trivially-true (0, 0) probe so the
  // forest only ever sees valid ids, then mask the answers.
  bool any_hostile = false;
  for (const auto& [u, v] : qs) {
    if (u >= n_ || v >= n_) {
      any_hostile = true;
      break;
    }
  }
  if (!any_hostile) return forest_if(top())->batch_connected(qs);
  if (n_ == 0) return std::vector<bool>(qs.size(), false);
  std::vector<std::pair<vertex_id, vertex_id>> clean(qs.begin(), qs.end());
  for (auto& [u, v] : clean) {
    if (u >= n_ || v >= n_) u = v = 0;
  }
  std::vector<bool> out = forest_if(top())->batch_connected(clean);
  for (size_t i = 0; i < qs.size(); ++i) {
    if (qs[i].first >= n_ || qs[i].second >= n_) out[i] = false;
  }
  return out;
}

std::string hdt_connectivity::check_invariants() const {
  for (int i = 0; i <= top(); ++i) {
    const treap_ett* f = forest_if(i);
    if (f == nullptr) continue;
    if (auto err = f->check_consistency(); !err.empty())
      return "level " + std::to_string(i) + " treap: " + err;
    // Invariant 1.
    for (vertex_id v = 0; v < n_; ++v) {
      if (f->component_size(v) > capacity(i))
        return "Invariant 1 violated at level " + std::to_string(i);
    }
    // Counters match adjacency lists.
    const auto& la = levels_[static_cast<size_t>(i)].adjacency;
    for (vertex_id v = 0; v < n_; ++v) {
      uint32_t td = 0, nd = 0;
      if (v < la.lists.size()) {
        td = static_cast<uint32_t>(la.lists[v][0].size());
        nd = static_cast<uint32_t>(la.lists[v][1].size());
      }
      auto vc = f->vertex_counts(v);
      if (vc.tree_edges != td || vc.nontree_edges != nd)
        return "counter mismatch at level " + std::to_string(i);
    }
  }
  // Edge placement and Invariant 2's cycle property.
  for (auto& [key, rec] : records_.entries()) {
    edge c = edge_from_key(key);
    for (int i = 0; i <= top(); ++i) {
      const treap_ett* f = forest_if(i);
      bool should = rec.is_tree && rec.level <= i;
      bool present = f != nullptr && f->has_edge(c.u, c.v);
      if (should != present)
        return "edge placement violated at level " + std::to_string(i);
    }
    if (!rec.is_tree) {
      const treap_ett* f = forest_if(rec.level);
      if (f == nullptr || !f->connected(c.u, c.v))
        return "Invariant 2 violated (non-tree edge disconnected at its "
               "level)";
    }
  }
  return "";
}

}  // namespace bdc
