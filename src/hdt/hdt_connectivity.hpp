// The sequential Holm–de Lichtenberg–Thorup dynamic connectivity algorithm
// (paper §2.2; [31]) — the baseline the parallel algorithm is measured
// against. O(lg^2 n) amortized per edge update, O(lg n) per query.
//
// A thin client of the shared Euler-tour layer: each level's forest is the
// treap substrate from src/ett/ (which also plugs into the parallel
// structure via substrate::treap), edge records live in the library's
// phase-concurrent dictionary, and adjacency lists are flat per-vertex
// arrays — no private bookkeeping containers. Because the treap substrate
// is shared with (and cross-validated against) the skip-list forest, this
// baseline doubles as a correctness oracle for the parallel structure in
// tests.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ett/treap_ett.hpp"
#include "hashtable/phase_concurrent_map.hpp"
#include "util/types.hpp"

namespace bdc {

class hdt_connectivity {
 public:
  explicit hdt_connectivity(vertex_id n, uint64_t seed = 0x4d70);

  [[nodiscard]] vertex_id num_vertices() const { return n_; }
  [[nodiscard]] size_t num_edges() const { return records_.size(); }
  [[nodiscard]] int num_levels() const {
    return static_cast<int>(levels_.size());
  }

  /// Inserts one edge; self-loops, duplicates, and edges with an endpoint
  /// outside [0, n) are ignored.
  void insert(edge e);
  /// Deletes one edge; absent edges (including out-of-range ids) are
  /// ignored.
  void erase(edge e);
  /// Out-of-range endpoints answer false.
  [[nodiscard]] bool connected(vertex_id u, vertex_id v) const;
  [[nodiscard]] bool has_edge(edge e) const;

  /// Sequential batch wrappers (for benchmark comparability).
  void batch_insert(std::span<const edge> es) {
    for (const edge& e : es) insert(e);
  }
  void batch_delete(std::span<const edge> es) {
    for (const edge& e : es) erase(e);
  }
  [[nodiscard]] std::vector<bool> batch_connected(
      std::span<const std::pair<vertex_id, vertex_id>> qs) const;

  struct statistics {
    uint64_t edges_inserted = 0;
    uint64_t edges_deleted = 0;
    uint64_t tree_edges_deleted = 0;
    uint64_t replacements_promoted = 0;
    uint64_t edges_pushed = 0;
    uint64_t levels_searched = 0;
  };
  [[nodiscard]] const statistics& stats() const { return stats_; }

  /// Deep validation of the HDT invariants (tests).
  [[nodiscard]] std::string check_invariants() const;

 private:
  struct record {
    int16_t level = 0;
    uint8_t is_tree = 0;
    uint32_t pos[2] = {0, 0};  // slot in canonical u's / v's list at `level`
  };
  struct level_adj {
    // lists[v] = [tree list, nontree list] of canonical edges; sized to n
    // on first touch.
    std::vector<std::array<std::vector<edge>, 2>> lists;
  };
  struct level_state {
    std::unique_ptr<treap_ett> forest;
    level_adj adjacency;
  };

  treap_ett& forest(int level);
  [[nodiscard]] const treap_ett* forest_if(int level) const {
    return levels_[static_cast<size_t>(level)].forest.get();
  }
  [[nodiscard]] uint64_t capacity(int level) const {
    return uint64_t{1} << (level + 1);
  }
  [[nodiscard]] int top() const { return num_levels() - 1; }

  void add_adj(int level, edge c, bool is_tree);
  void remove_adj(int level, edge c);
  /// First edge of the given kind incident to w at `level`.
  [[nodiscard]] edge first_adj(int level, vertex_id w, bool is_tree) const;

  /// Searches levels `level`..top for a replacement after deleting tree
  /// edge (u, v); relinks if one exists.
  void replace(int level, vertex_id u, vertex_id v);

  vertex_id n_;
  uint64_t seed_;
  std::vector<level_state> levels_;
  phase_concurrent_map<record> records_;
  statistics stats_;
};

}  // namespace bdc
