#include "hdt/treap_ett.hpp"

#include <cassert>

namespace bdc {

struct treap_ett::node {
  node* parent = nullptr;
  node* left = nullptr;
  node* right = nullptr;
  uint64_t priority = 0;
  uint64_t tag = 0;  // vertex sentinel: vertex id; arc: arc key | kArcBit
  counts own;        // nonzero only on sentinels
  counts agg;        // subtree sum (own + children)
  uint32_t subtree_nodes = 1;
};

namespace {
constexpr uint64_t kArcBit = uint64_t{1} << 63;
uint64_t arc_key(vertex_id t, vertex_id h) {
  return kArcBit | (static_cast<uint64_t>(t) << 31) |
         static_cast<uint64_t>(h);
}
}  // namespace

treap_ett::treap_ett(vertex_id n, uint64_t seed)
    : rng_(seed), sentinel_(n) {
  for (vertex_id v = 0; v < n; ++v) {
    sentinel_[v] = make_node(static_cast<uint64_t>(v));
    sentinel_[v]->own.vertices = 1;
    update(sentinel_[v]);
  }
}

treap_ett::~treap_ett() {
  for (node* s : sentinel_) delete s;
  for (auto& [k, pr] : arcs_) {
    delete pr.first;
    delete pr.second;
  }
}

treap_ett::node* treap_ett::make_node(uint64_t tag) {
  node* x = new node;
  x->tag = tag;
  x->priority = rng_.ith_rand(counter_++);
  return x;
}

void treap_ett::update(node* x) {
  x->agg = x->own;
  x->subtree_nodes = 1;
  for (node* c : {x->left, x->right}) {
    if (c == nullptr) continue;
    x->agg.vertices += c->agg.vertices;
    x->agg.tree_edges += c->agg.tree_edges;
    x->agg.nontree_edges += c->agg.nontree_edges;
    x->subtree_nodes += c->subtree_nodes;
  }
}

treap_ett::node* treap_ett::root_of(node* x) {
  while (x->parent != nullptr) x = x->parent;
  return x;
}

treap_ett::node* treap_ett::merge(node* a, node* b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  if (a->priority > b->priority) {
    node* r = merge(a->right, b);
    a->right = r;
    if (r) r->parent = a;
    update(a);
    return a;
  }
  node* l = merge(a, b->left);
  b->left = l;
  if (l) l->parent = b;
  update(b);
  return b;
}

std::pair<treap_ett::node*, treap_ett::node*> treap_ett::split_before(
    node* x) {
  // Left part: everything before x. Right part: x and after.
  node* l = x->left;
  if (l) {
    l->parent = nullptr;
    x->left = nullptr;
    update(x);
  }
  node* r = x;
  node* cur = x;
  node* p = cur->parent;
  cur->parent = nullptr;
  while (p != nullptr) {
    node* gp = p->parent;
    p->parent = nullptr;
    if (p->right == cur) {
      // cur was p's right child: p and its left subtree precede cur.
      p->right = nullptr;
      update(p);
      l = merge(p, l);
    } else {
      // cur was p's left child: p and its right subtree follow cur.
      p->left = nullptr;
      update(p);
      r = merge(r, p);
    }
    cur = p;
    p = gp;
  }
  return {l, r};
}

std::pair<treap_ett::node*, treap_ett::node*> treap_ett::split_after(
    node* x) {
  node* r = x->right;
  if (r) {
    r->parent = nullptr;
    x->right = nullptr;
    update(x);
  }
  node* l = x;
  node* cur = x;
  node* p = cur->parent;
  cur->parent = nullptr;
  while (p != nullptr) {
    node* gp = p->parent;
    p->parent = nullptr;
    if (p->left == cur) {
      // cur was p's left child: p and its right subtree follow cur.
      p->left = nullptr;
      update(p);
      r = merge(r, p);
    } else {
      p->right = nullptr;
      update(p);
      l = merge(l, p);
    }
    cur = p;
    p = gp;
  }
  return {l, r};
}

size_t treap_ett::rank_of(node* x) {
  size_t rank = x->left ? x->left->subtree_nodes : 0;
  node* cur = x;
  node* p = x->parent;
  while (p != nullptr) {
    if (p->right == cur) {
      rank += 1 + (p->left ? p->left->subtree_nodes : 0);
    }
    cur = p;
    p = p->parent;
  }
  return rank;
}

treap_ett::node* treap_ett::reroot(vertex_id v) {
  node* s = sentinel_[v];
  auto [before, from] = split_before(s);
  return merge(from, before);
}

void treap_ett::link(vertex_id u, vertex_id v) {
  assert(!connected(u, v));
  node* tu = reroot(u);
  node* tv = reroot(v);
  node* uv = make_node(arc_key(u, v));
  node* vu = make_node(arc_key(v, u));
  update(uv);
  update(vu);
  arcs_.emplace(edge_key(edge{u, v}.canonical()), std::make_pair(uv, vu));
  merge(merge(tu, uv), merge(tv, vu));
}

void treap_ett::cut(vertex_id u, vertex_id v) {
  auto it = arcs_.find(edge_key(edge{u, v}.canonical()));
  assert(it != arcs_.end());
  node* a = it->second.first;
  node* b = it->second.second;
  arcs_.erase(it);
  if (rank_of(a) > rank_of(b)) std::swap(a, b);
  // Tour = L a M b R  ->  trees (L R) and (M).
  auto [la, xa] = split_before(a);        // la = L, xa = a M b R
  auto [xm, xb] = split_before(b);        // xm = a M, xb = b R
  (void)xa;
  auto [aa, m] = split_after(a);          // aa = a, m = M
  auto [bb, r] = split_after(b);          // bb = b, r = R
  (void)xm;
  (void)xb;
  assert(aa == a && bb == b);
  merge(la, r);
  (void)m;
  delete a;
  delete b;
}

bool treap_ett::connected(vertex_id u, vertex_id v) const {
  return root_of(sentinel_[u]) == root_of(sentinel_[v]);
}

bool treap_ett::has_edge(vertex_id u, vertex_id v) const {
  return arcs_.count(edge_key(edge{u, v}.canonical())) != 0;
}

uint32_t treap_ett::component_size(vertex_id v) const {
  return root_of(sentinel_[v])->agg.vertices;
}

treap_ett::counts treap_ett::component_counts(vertex_id v) const {
  return root_of(sentinel_[v])->agg;
}

treap_ett::counts treap_ett::vertex_counts(vertex_id v) const {
  return sentinel_[v]->own;
}

void treap_ett::add_counts(vertex_id v, int32_t tree_delta,
                           int32_t nontree_delta) {
  node* s = sentinel_[v];
  assert(static_cast<int64_t>(s->own.tree_edges) + tree_delta >= 0);
  assert(static_cast<int64_t>(s->own.nontree_edges) + nontree_delta >= 0);
  s->own.tree_edges =
      static_cast<uint32_t>(static_cast<int64_t>(s->own.tree_edges) +
                            tree_delta);
  s->own.nontree_edges =
      static_cast<uint32_t>(static_cast<int64_t>(s->own.nontree_edges) +
                            nontree_delta);
  for (node* x = s; x != nullptr; x = x->parent) update(x);
}

namespace {
template <typename Get>
treap_ett::node* descend(treap_ett::node* x, const Get& get);
}

vertex_id treap_ett::find_tree_slot(vertex_id v) const {
  node* root = root_of(sentinel_[v]);
  if (root->agg.tree_edges == 0) return kNoVertex;
  node* cur = root;
  while (true) {
    if (cur->left && cur->left->agg.tree_edges > 0) {
      cur = cur->left;
    } else if (cur->own.tree_edges > 0) {
      return static_cast<vertex_id>(cur->tag);
    } else {
      cur = cur->right;
    }
  }
}

vertex_id treap_ett::find_nontree_slot(vertex_id v) const {
  node* root = root_of(sentinel_[v]);
  if (root->agg.nontree_edges == 0) return kNoVertex;
  node* cur = root;
  while (true) {
    if (cur->left && cur->left->agg.nontree_edges > 0) {
      cur = cur->left;
    } else if (cur->own.nontree_edges > 0) {
      return static_cast<vertex_id>(cur->tag);
    } else {
      cur = cur->right;
    }
  }
}

std::vector<vertex_id> treap_ett::component_vertices(vertex_id v) const {
  std::vector<vertex_id> out;
  // Iterative in-order walk from the root.
  std::vector<std::pair<node*, bool>> stack{{root_of(sentinel_[v]), false}};
  while (!stack.empty()) {
    auto [x, expanded] = stack.back();
    stack.pop_back();
    if (x == nullptr) continue;
    if (expanded) {
      if ((x->tag & kArcBit) == 0) out.push_back(static_cast<vertex_id>(x->tag));
    } else {
      stack.push_back({x->right, false});
      stack.push_back({x, true});
      stack.push_back({x->left, false});
    }
  }
  return out;
}

std::string treap_ett::check_consistency() const {
  // Validate every treap reachable from a sentinel.
  std::unordered_map<node*, bool> seen_root;
  for (node* s : sentinel_) {
    node* root = root_of(s);
    if (seen_root.count(root)) continue;
    seen_root[root] = true;
    // Recursive structural check.
    std::vector<node*> stack{root};
    counts total{};
    uint32_t nodes = 0;
    while (!stack.empty()) {
      node* x = stack.back();
      stack.pop_back();
      ++nodes;
      counts agg = x->own;
      for (node* c : {x->left, x->right}) {
        if (c == nullptr) continue;
        if (c->parent != x) return "parent pointer mismatch";
        if (c->priority > x->priority) return "heap order violated";
        agg.vertices += c->agg.vertices;
        agg.tree_edges += c->agg.tree_edges;
        agg.nontree_edges += c->agg.nontree_edges;
        stack.push_back(c);
      }
      if (agg.vertices != x->agg.vertices ||
          agg.tree_edges != x->agg.tree_edges ||
          agg.nontree_edges != x->agg.nontree_edges)
        return "aggregate mismatch";
      total = x == root ? x->agg : total;
    }
    if (nodes != root->subtree_nodes) return "subtree count mismatch";
    // Tour shape: k vertices, 2(k-1) arcs.
    if (root->subtree_nodes != 3 * total.vertices - 2)
      return "tour length mismatch";
  }
  return "";
}

}  // namespace bdc
