// Link-cut trees (Sleator–Tarjan) with path-maximum queries — the "dynamic
// tree structure extended with additional primitives" the paper's §6 calls
// for to attack batch-dynamic MST: Euler tour trees cannot answer path
// queries, so the MSF extension (src/msf/) stands on this structure
// instead.
//
// Splay-based implementation with edges represented as nodes (the standard
// trick for edge-weighted path aggregates under rerooting): a tree edge
// (u, v, w) becomes a degree-2 node carrying weight w, so evert/link/cut
// never have to move weights between endpoints. All operations are
// amortized O(lg n).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace bdc {

class link_cut_tree {
 public:
  /// A path-maximum result.
  struct path_max_result {
    bool connected = false;  // false => no path, fields below invalid
    uint64_t weight = 0;     // maximum edge weight on the path
    edge max_edge{};         // an edge achieving it
  };

  /// Forest over vertices [0, n), initially edgeless.
  explicit link_cut_tree(vertex_id n);

  [[nodiscard]] size_t num_vertices() const { return n_; }
  [[nodiscard]] size_t num_edges() const { return edge_of_.size(); }

  /// Links u and v (must be in different trees) with an edge of weight w.
  void link(vertex_id u, vertex_id v, uint64_t w);
  /// Cuts the tree edge (u, v) (must be present).
  void cut(vertex_id u, vertex_id v);
  [[nodiscard]] bool has_edge(vertex_id u, vertex_id v) const;
  [[nodiscard]] bool connected(vertex_id u, vertex_id v);

  /// Maximum-weight edge on the u..v tree path (u != v).
  path_max_result path_max(vertex_id u, vertex_id v);

  /// Validation (tests): splay/path-parent structure coherence and
  /// aggregate correctness. Empty string when healthy.
  [[nodiscard]] std::string check_consistency();

 private:
  using node_ref = uint32_t;
  static constexpr node_ref kNull = UINT32_MAX;

  struct node {
    node_ref child[2] = {kNull, kNull};
    node_ref parent = kNull;  // splay parent or path-parent
    bool reversed = false;
    bool is_edge = false;
    uint64_t weight = 0;    // edge weight (0 on vertex nodes)
    node_ref max_in_subtree = kNull;  // node with max edge weight in splay
                                      // subtree (kNull if none)
    edge tag{};             // for edge nodes: the original endpoints
  };

  [[nodiscard]] bool is_splay_root(node_ref x) const;
  [[nodiscard]] int side_of(node_ref x) const;
  void push_down(node_ref x);
  void pull_up(node_ref x);
  void rotate(node_ref x);
  void splay(node_ref x);
  /// Makes the path root..x preferred and splays x to its top.
  void access(node_ref x);
  /// Makes x the root of its represented tree.
  void evert(node_ref x);
  node_ref find_root(node_ref x);

  vertex_id n_;
  std::vector<node> nodes_;
  std::vector<node_ref> free_list_;  // recycled edge-node slots
  std::unordered_map<uint64_t, node_ref> edge_of_;  // canonical key -> node
};

}  // namespace bdc
