#include "lct/link_cut_tree.hpp"

#include <cassert>
#include <string>

namespace bdc {

link_cut_tree::link_cut_tree(vertex_id n) : n_(n), nodes_(n) {
  for (vertex_id v = 0; v < n; ++v) {
    nodes_[v].is_edge = false;
    nodes_[v].max_in_subtree = kNull;
  }
}

bool link_cut_tree::is_splay_root(node_ref x) const {
  node_ref p = nodes_[x].parent;
  return p == kNull ||
         (nodes_[p].child[0] != x && nodes_[p].child[1] != x);
}

int link_cut_tree::side_of(node_ref x) const {
  return nodes_[nodes_[x].parent].child[1] == x ? 1 : 0;
}

void link_cut_tree::push_down(node_ref x) {
  if (!nodes_[x].reversed) return;
  nodes_[x].reversed = false;
  std::swap(nodes_[x].child[0], nodes_[x].child[1]);
  for (node_ref c : nodes_[x].child) {
    if (c != kNull) nodes_[c].reversed = !nodes_[c].reversed;
  }
}

void link_cut_tree::pull_up(node_ref x) {
  node_ref best = nodes_[x].is_edge ? x : kNull;
  uint64_t best_w = nodes_[x].is_edge ? nodes_[x].weight : 0;
  for (node_ref c : nodes_[x].child) {
    if (c == kNull) continue;
    node_ref cm = nodes_[c].max_in_subtree;
    if (cm != kNull && (best == kNull || nodes_[cm].weight > best_w)) {
      best = cm;
      best_w = nodes_[cm].weight;
    }
  }
  nodes_[x].max_in_subtree = best;
}

void link_cut_tree::rotate(node_ref x) {
  node_ref p = nodes_[x].parent;
  node_ref g = nodes_[p].parent;
  int s = side_of(x);
  bool p_root = is_splay_root(p);
  int ps = p_root ? 0 : side_of(p);

  node_ref b = nodes_[x].child[1 - s];
  nodes_[p].child[s] = b;
  if (b != kNull) nodes_[b].parent = p;
  nodes_[x].child[1 - s] = p;
  nodes_[p].parent = x;
  nodes_[x].parent = g;
  if (!p_root) nodes_[g].child[ps] = x;
  pull_up(p);
  pull_up(x);
}

void link_cut_tree::splay(node_ref x) {
  // Push reversal flags down the access path first.
  {
    std::vector<node_ref> path;
    node_ref cur = x;
    path.push_back(cur);
    while (!is_splay_root(cur)) {
      cur = nodes_[cur].parent;
      path.push_back(cur);
    }
    for (size_t i = path.size(); i-- > 0;) push_down(path[i]);
  }
  while (!is_splay_root(x)) {
    node_ref p = nodes_[x].parent;
    if (!is_splay_root(p)) {
      if (side_of(x) == side_of(p)) {
        rotate(p);  // zig-zig
      } else {
        rotate(x);  // zig-zag
      }
    }
    rotate(x);
  }
}

void link_cut_tree::access(node_ref x) {
  splay(x);
  // Detach the deeper part of the preferred path.
  if (nodes_[x].child[1] != kNull) {
    // Right child keeps x as its path-parent (pointer unchanged, but no
    // longer a splay child).
    nodes_[x].child[1] = kNull;
    pull_up(x);
  }
  while (nodes_[x].parent != kNull) {
    node_ref p = nodes_[x].parent;
    splay(p);
    nodes_[p].child[1] = x;  // x keeps parent pointer; becomes splay child
    pull_up(p);
    splay(x);
  }
}

void link_cut_tree::evert(node_ref x) {
  access(x);
  nodes_[x].reversed = !nodes_[x].reversed;
  push_down(x);
}

link_cut_tree::node_ref link_cut_tree::find_root(node_ref x) {
  access(x);
  node_ref cur = x;
  while (true) {
    push_down(cur);
    if (nodes_[cur].child[0] == kNull) break;
    cur = nodes_[cur].child[0];
  }
  splay(cur);
  return cur;
}

void link_cut_tree::link(vertex_id u, vertex_id v, uint64_t w) {
  assert(!connected(u, v));
  node_ref e;
  if (!free_list_.empty()) {
    e = free_list_.back();
    free_list_.pop_back();
    nodes_[e] = node{};
  } else {
    e = static_cast<node_ref>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[e].is_edge = true;
  nodes_[e].weight = w;
  nodes_[e].tag = edge{u, v}.canonical();
  nodes_[e].max_in_subtree = e;
  edge_of_.emplace(edge_key(nodes_[e].tag), e);
  // Attach via path-parent pointers: tree(u) hangs under e, e under v.
  evert(u);
  nodes_[u].parent = e;
  evert(e);
  nodes_[e].parent = v;
}

void link_cut_tree::cut(vertex_id u, vertex_id v) {
  auto it = edge_of_.find(edge_key(edge{u, v}.canonical()));
  assert(it != edge_of_.end());
  node_ref e = it->second;
  edge_of_.erase(it);
  // Put the u..v path in one splay tree with e inside, then detach e's
  // splay children: each becomes its own represented tree.
  evert(u);
  access(e);
  // After access(e), e is the splay root of the path u..e; its left
  // subtree is everything between u and e. v is reachable via e's former
  // path... splay e once more after accessing v to capture both sides.
  access(v);
  splay(e);
  for (int s = 0; s < 2; ++s) {
    node_ref c = nodes_[e].child[s];
    if (c != kNull) {
      nodes_[c].parent = kNull;
      nodes_[e].child[s] = kNull;
    }
  }
  pull_up(e);
  nodes_[e] = node{};
  free_list_.push_back(e);
}

bool link_cut_tree::has_edge(vertex_id u, vertex_id v) const {
  return edge_of_.count(edge_key(edge{u, v}.canonical())) != 0;
}

bool link_cut_tree::connected(vertex_id u, vertex_id v) {
  if (u == v) return true;
  return find_root(u) == find_root(v);
}

link_cut_tree::path_max_result link_cut_tree::path_max(vertex_id u,
                                                       vertex_id v) {
  if (u == v || !connected(u, v)) return {};
  evert(u);
  access(v);
  splay(v);
  node_ref m = nodes_[v].max_in_subtree;
  assert(m != kNull);  // a nonempty path contains at least one edge node
  return {true, nodes_[m].weight, nodes_[m].tag};
}

std::string link_cut_tree::check_consistency() {
  for (node_ref x = 0; x < nodes_.size(); ++x) {
    const node& nd = nodes_[x];
    for (node_ref c : nd.child) {
      if (c == kNull) continue;
      if (nodes_[c].parent != x) return "child/parent mismatch";
    }
  }
  // Aggregates: recompute max bottom-up per splay tree.
  for (node_ref x = 0; x < nodes_.size(); ++x) {
    node_ref best = nodes_[x].is_edge ? x : kNull;
    for (node_ref c : nodes_[x].child) {
      if (c == kNull) continue;
      node_ref cm = nodes_[c].max_in_subtree;
      if (cm != kNull &&
          (best == kNull || nodes_[cm].weight > nodes_[best].weight)) {
        best = cm;
      }
    }
    node_ref got = nodes_[x].max_in_subtree;
    if ((best == kNull) != (got == kNull)) return "aggregate null mismatch";
    if (best != kNull && nodes_[got].weight != nodes_[best].weight)
      return "aggregate weight mismatch";
  }
  // Every registered edge node is an edge and vice versa (outside the
  // free list).
  for (auto& [key, e] : edge_of_) {
    if (!nodes_[e].is_edge) return "edge map points at non-edge node";
    if (edge_key(nodes_[e].tag) != key) return "edge tag mismatch";
  }
  return "";
}

}  // namespace bdc
