// Euler tour forest implementation. The tour algebra:
//
// batch_link: for every vertex u receiving new arcs (u,x_1..x_g), the tour
//   around u is re-stitched as
//     u -> (u,x_1),  (x_i,u) -> (u,x_{i+1}),  (x_g,u) -> old_succ(u),
//   where old_succ(u) is u's level-0 successor before the batch. Each arc
//   node's successor is assigned exactly once (by its head vertex's group),
//   so all joins are pairwise node-disjoint and the batch reconstitutes one
//   Euler circle per merged tree.
//
// batch_cut: removing arc node d with twin t splices pred(d) to
//   resolve(succ(t)), where resolve() walks over arcs that are themselves
//   being removed: resolve(x) = x if x survives, else
//   resolve(succ(twin(x))). Resolution chains are disjoint across join
//   tails (they converge only at equal heads, which are unique), so total
//   resolution work is O(k).
#include "ett/euler_tour_tree.hpp"

#include <cassert>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "parallel/primitives.hpp"
#include "parallel/scheduler.hpp"
#include "sequence/semisort.hpp"

namespace bdc {

namespace {

constexpr uint64_t kArcBit = uint64_t{1} << 63;
constexpr uint8_t kRemovedFlag = 1;

uint64_t vertex_tag(vertex_id v) { return static_cast<uint64_t>(v); }
uint64_t arc_tag(vertex_id tail, vertex_id head) {
  // Requires vertex ids < 2^31 so both fit beside the arc bit.
  return kArcBit | (static_cast<uint64_t>(tail) << 31) |
         static_cast<uint64_t>(head);
}
bool is_arc_tag(uint64_t tag) { return (tag & kArcBit) != 0; }

uint64_t ptr_key(const void* p) {
  // Pointers are never null here and never equal the map's reserved keys.
  return reinterpret_cast<uint64_t>(p);
}

}  // namespace

euler_tour_forest::euler_tour_forest(vertex_id n, uint64_t seed)
    : n_(n), list_(seed), dir_(n, list_.pool()), edge_map_(64) {
  assert(n < (vertex_id{1} << 31));
  // Construction is O(n / kSpan) (the directory root table), not O(n):
  // tour nodes are created on first edge touch (ensure_vertex) and
  // reclaimed when a vertex's last level-i edge leaves.
}

euler_tour_forest::node* euler_tour_forest::ensure_vertex(vertex_id v) {
  if (node* vn = vertex_node(v)) return vn;
  node* vn = list_.create_node(vertex_tag(v), ett_counts{1, 0, 0});
  dir_.activate(v, [&](node*& slot) { slot = vn; });
  return vn;
}

void euler_tour_forest::maybe_release_vertex(vertex_id v) {
  node* vn = vertex_node(v);
  if (vn == nullptr) return;
  if (vn->next_at(0) != vn) return;  // still in a multi-node tour
  ett_counts c = list_.value(vn);
  if (c.tree_edges != 0 || c.nontree_edges != 0) return;
  dir_.deactivate(v);
  list_.free_node(vn);
}

void euler_tour_forest::batch_link(std::span<const edge> links) {
  size_t k = links.size();
  if (k == 0) return;

  // Create the 2k arc nodes.
  std::vector<edge_nodes> enodes(k);
  parallel_for(0, k, [&](size_t i) {
    edge c = links[i].canonical();
    assert(!c.is_self_loop());
    enodes[i].fwd = list_.create_node(arc_tag(c.u, c.v), ett_counts{});
    enodes[i].rev = list_.create_node(arc_tag(c.v, c.u), ett_counts{});
  });

  // Group directed arcs by tail vertex; value = (arc node, twin node).
  using arc_rec = std::pair<node*, node*>;
  std::vector<std::pair<vertex_id, arc_rec>> arcs(2 * k);
  parallel_for(0, k, [&](size_t i) {
    edge c = links[i].canonical();
    arcs[2 * i] = {c.u, {enodes[i].fwd, enodes[i].rev}};
    arcs[2 * i + 1] = {c.v, {enodes[i].rev, enodes[i].fwd}};
  });
  auto groups = group_by_key(std::move(arcs));
  size_t g = groups.num_groups();

  // Capture each involved vertex's old successor, then open its boundary.
  // Group keys are distinct vertices, so first-touch activation here is
  // race-free across workers.
  std::vector<node*> cut_points(g), old_succ(g);
  parallel_for(0, g, [&](size_t j) {
    node* vn = ensure_vertex(groups.group_key(j));
    cut_points[j] = vn;
    old_succ[j] = vn->next_at(0);
  });
  list_.batch_split_after(cut_points);

  // Stitch: group j with arcs a_1..a_s contributes s+1 joins.
  std::vector<std::pair<node*, node*>> joins(2 * k + g);
  parallel_for(0, g, [&](size_t j) {
    uint32_t st = groups.group_starts[j];
    uint32_t sz = static_cast<uint32_t>(groups.group_size(j));
    size_t base = st + j;
    node* vn = vertex_node(groups.group_key(j));
    joins[base] = {vn, groups.records[st].second.first};
    for (uint32_t i = 0; i < sz; ++i) {
      node* twin = groups.records[st + i].second.second;
      node* head = (i + 1 < sz) ? groups.records[st + i + 1].second.first
                                : old_succ[j];
      joins[base + 1 + i] = {twin, head};
    }
  });
  list_.batch_join(joins);

  // Repair augmented values around every splice point and new node.
  std::vector<node*> dirty(2 * k + 2 * g);
  parallel_for(0, k, [&](size_t i) {
    dirty[2 * i] = enodes[i].fwd;
    dirty[2 * i + 1] = enodes[i].rev;
  });
  parallel_for(0, g, [&](size_t j) {
    dirty[2 * k + 2 * j] = cut_points[j];
    dirty[2 * k + 2 * j + 1] = old_succ[j];
  });
  list_.batch_repair(std::move(dirty));

  // Record the new tree edges.
  edge_map_.reserve_for(k);
  parallel_for(0, k, [&](size_t i) {
    edge_map_.insert(edge_key(links[i].canonical()), enodes[i]);
  });
}

void euler_tour_forest::batch_cut(std::span<const edge> cuts) {
  size_t k = cuts.size();
  if (k == 0) return;

  // Look up the arc nodes and mark them removed.
  std::vector<edge_nodes> en(k);
  parallel_for(0, k, [&](size_t i) {
    const edge_nodes* p = edge_map_.find(edge_key(cuts[i].canonical()));
    assert(p != nullptr && "batch_cut: edge not in forest");
    en[i] = *p;
    en[i].fwd->flags.store(kRemovedFlag, std::memory_order_release);
    en[i].rev->flags.store(kRemovedFlag, std::memory_order_release);
  });

  // Capture, for every removed arc node, its original neighbors and twin.
  struct removed_info {
    node* pred = nullptr;
    node* succ = nullptr;
    node* twin = nullptr;
  };
  phase_concurrent_map<removed_info> info(2 * k);
  std::vector<node*> removed(2 * k);
  parallel_for(0, k, [&](size_t i) {
    node* f = en[i].fwd;
    node* r = en[i].rev;
    removed[2 * i] = f;
    removed[2 * i + 1] = r;
    info.insert(ptr_key(f), {f->prev_at(0), f->next_at(0), r});
    info.insert(ptr_key(r), {r->prev_at(0), r->next_at(0), f});
  });

  // Open both boundaries of every removed node. A boundary "after x" is
  // identified by x, so the set is {d, pred(d)} over removed d, deduped.
  std::vector<node*> cut_points(4 * k);
  parallel_for(0, 2 * k, [&](size_t i) {
    cut_points[2 * i] = removed[i];
    cut_points[2 * i + 1] = info.find(ptr_key(removed[i]))->pred;
  });
  sort_unique(cut_points);
  list_.batch_split_after(cut_points);

  // One join per removed node whose predecessor survives.
  auto resolve = [&](node* x) {
    while ((x->flags.load(std::memory_order_acquire) & kRemovedFlag) != 0) {
      node* twin = info.find(ptr_key(x))->twin;
      x = info.find(ptr_key(twin))->succ;
    }
    return x;
  };
  std::vector<std::pair<node*, node*>> joins(2 * k, {nullptr, nullptr});
  parallel_for(0, 2 * k, [&](size_t i) {
    const removed_info& ri = *info.find(ptr_key(removed[i]));
    if ((ri.pred->flags.load(std::memory_order_acquire) & kRemovedFlag) != 0)
      return;  // covered by the removed predecessor's own chain
    joins[i] = {ri.pred, resolve(info.find(ptr_key(ri.twin))->succ)};
  });
  joins = filter(joins, [](const std::pair<node*, node*>& j) {
    return j.first != nullptr;
  });
  list_.batch_join(joins);

  // Repair around every splice.
  std::vector<node*> dirty(2 * joins.size());
  parallel_for(0, joins.size(), [&](size_t i) {
    dirty[2 * i] = joins[i].first;
    dirty[2 * i + 1] = joins[i].second;
  });
  list_.batch_repair(std::move(dirty));

  // Drop the edges from the map and release the nodes.
  std::vector<uint64_t> keys(k);
  parallel_for(0, k, [&](size_t i) {
    keys[i] = edge_key(cuts[i].canonical());
  });
  edge_map_.erase_batch(keys);
  parallel_for(0, k, [&](size_t i) {
    list_.free_node(en[i].fwd);
    list_.free_node(en[i].rev);
  });

  // Vertices stranded as lone circles with no counters give their slots
  // back. Endpoints are deduped first: two cuts sharing an endpoint would
  // otherwise race on the same release.
  std::vector<vertex_id> touched(2 * k);
  parallel_for(0, k, [&](size_t i) {
    touched[2 * i] = cuts[i].u;
    touched[2 * i + 1] = cuts[i].v;
  });
  sort_unique(touched);
  parallel_for(0, touched.size(),
               [&](size_t i) { maybe_release_vertex(touched[i]); });
  dir_.sweep_pending();
}

void euler_tour_forest::batch_add_counts(
    std::span<const count_delta> deltas) {
  if (deltas.empty()) return;
  std::vector<node*> dirty(deltas.size());
  parallel_for(0, deltas.size(), [&](size_t i) {
    const count_delta& d = deltas[i];
    // At most one delta per vertex, so first-touch activation is
    // race-free across workers.
    node* vn = ensure_vertex(d.v);
    ett_counts c = list_.value(vn);
    assert(static_cast<int64_t>(c.tree_edges) + d.tree_delta >= 0);
    assert(static_cast<int64_t>(c.nontree_edges) + d.nontree_delta >= 0);
    c.tree_edges = static_cast<uint32_t>(
        static_cast<int64_t>(c.tree_edges) + d.tree_delta);
    c.nontree_edges = static_cast<uint32_t>(
        static_cast<int64_t>(c.nontree_edges) + d.nontree_delta);
    list_.set_value(vn, c);
    dirty[i] = vn;
  });
  list_.batch_repair(std::move(dirty));
  // Vertices whose last counter just left (and that sit in no tour)
  // give their slots back; deltas are per-vertex-unique, so no races.
  parallel_for(0, deltas.size(),
               [&](size_t i) { maybe_release_vertex(deltas[i].v); });
  dir_.sweep_pending();
}

bool euler_tour_forest::connected(vertex_id u, vertex_id v) const {
  node* un = vertex_node(u);
  node* vn = vertex_node(v);
  if (un == nullptr || vn == nullptr) return u == v;  // inactive: singleton
  return list_.representative(un) == list_.representative(vn);
}

std::vector<bool> euler_tour_forest::batch_connected(
    std::span<const std::pair<vertex_id, vertex_id>> queries) const {
  // Parallel writes land in a byte array: std::vector<bool> packs bits, so
  // concurrent writes to different indices would race on shared bytes.
  std::vector<uint8_t> bits(queries.size());
  parallel_for(0, queries.size(), [&](size_t i) {
    bits[i] = connected(queries[i].first, queries[i].second) ? 1 : 0;
  });
  return std::vector<bool>(bits.begin(), bits.end());
}

ett_substrate::rep euler_tour_forest::find_rep(vertex_id v) const {
  node* vn = vertex_node(v);
  // Tourless vertices (inactive, or active with non-tree counters only)
  // take the tagged singleton rep, so batch_add_counts-driven activation
  // and reclamation never move a representative.
  if (vn == nullptr || vn->next_at(0) == vn) return singleton_rep(v);
  return list_.representative(vn);
}

std::vector<ett_substrate::rep> euler_tour_forest::batch_find_rep(
    std::span<const vertex_id> vs) const {
  std::vector<rep> out(vs.size());
  parallel_for(0, vs.size(), [&](size_t i) { out[i] = find_rep(vs[i]); });
  return out;
}

ett_counts euler_tour_forest::component_counts(vertex_id v) const {
  node* vn = vertex_node(v);
  return vn == nullptr ? ett_counts{1, 0, 0} : list_.total(vn);
}

ett_counts euler_tour_forest::vertex_counts(vertex_id v) const {
  node* vn = vertex_node(v);
  return vn == nullptr ? ett_counts{1, 0, 0} : list_.value(vn);
}

std::vector<std::pair<vertex_id, uint32_t>> euler_tour_forest::fetch_counted(
    vertex_id v, uint64_t want, bool nontree) const {
  node* vn = vertex_node(v);
  if (vn == nullptr) return {};  // inactive singleton: no counters
  std::vector<std::pair<node*, uint64_t>> raw;
  if (nontree) {
    list_.collect_first(
        vn, want,
        [](const ett_counts& c) -> uint64_t { return c.nontree_edges; }, raw);
  } else {
    list_.collect_first(
        vn, want,
        [](const ett_counts& c) -> uint64_t { return c.tree_edges; }, raw);
  }
  std::vector<std::pair<vertex_id, uint32_t>> out(raw.size());
  parallel_for(0, raw.size(), [&](size_t i) {
    assert(!is_arc_tag(raw[i].first->tag));  // only vertex nodes carry counts
    out[i] = {static_cast<vertex_id>(raw[i].first->tag),
              static_cast<uint32_t>(raw[i].second)};
  });
  return out;
}

std::vector<std::pair<vertex_id, uint32_t>> euler_tour_forest::fetch_nontree(
    vertex_id v, uint64_t want) const {
  return fetch_counted(v, want, /*nontree=*/true);
}

std::vector<std::pair<vertex_id, uint32_t>> euler_tour_forest::fetch_tree(
    vertex_id v, uint64_t want) const {
  return fetch_counted(v, want, /*nontree=*/false);
}

std::vector<vertex_id> euler_tour_forest::component_vertices(
    vertex_id v) const {
  node* vn = vertex_node(v);
  if (vn == nullptr) return {v};
  std::vector<vertex_id> out;
  for (node* n : list_.circle_of(vn)) {
    if (!is_arc_tag(n->tag)) out.push_back(static_cast<vertex_id>(n->tag));
  }
  return out;
}

void euler_tour_forest::for_each_tour_vertex(rep r,
                                             void (*fn)(void*, vertex_id),
                                             void* ctx) const {
  // Tourless vertices carry the tagged singleton rep; decode it.
  if (is_singleton_rep(r)) {
    fn(ctx, singleton_rep_vertex(r));
    return;
  }
  // Otherwise the representative is a node of the tour's circle (every
  // node, tall or not, sits on the level-0 ring); walk that ring.
  const node* start = static_cast<const node*>(r);
  const node* cur = start;
  do {
    if (!is_arc_tag(cur->tag)) fn(ctx, static_cast<vertex_id>(cur->tag));
    cur = cur->next_at(0);
  } while (cur != nullptr && cur != start);
}

std::string euler_tour_forest::check_consistency() const {
  // Directory invariants first: chunk occupancy bookkeeping, then the
  // activation contract — a slot exists iff some level-i edge still
  // touches its vertex (a lone circle with zero edge counters is an
  // activation leak: maybe_release_vertex should have reclaimed it).
  if (std::string err = dir_.check_consistency(); !err.empty()) return err;
  std::vector<std::pair<vertex_id, node*>> active;
  active.reserve(dir_.active_count());
  dir_.for_each_active(
      [&](vertex_id v, node* const& vn) { active.emplace_back(v, vn); });
  for (auto [v, vn] : active) {
    if (vn->tag != vertex_tag(v)) return "vertex node tag mismatch";
    ett_counts c = list_.value(vn);
    if (c.vertices != 1) return "per-vertex counter lost its vertex";
    if (vn->next_at(0) == vn && c.tree_edges == 0 && c.nontree_edges == 0)
      return "activation leak: lone circle with zero edge counters";
  }

  // Sequential deep validation: every circle's links, levels, and sums.
  std::unordered_set<const node*> seen;
  for (auto [v, start] : active) {
    (void)v;
    if (seen.count(start)) continue;
    // Walk the level-0 circle.
    std::vector<node*> circle;
    node* cur = start;
    do {
      if (cur == nullptr) return "null link in level-0 circle";
      if (cur->flags.load() != 0) return "stale removed flag";
      circle.push_back(cur);
      node* nx = cur->next_at(0);
      if (nx == nullptr || nx->prev_at(0) != cur)
        return "level-0 next/prev mismatch";
      cur = nx;
      if (circle.size() > 3 * (2 * edge_map_.size() + active.size()))
        return "level-0 circle does not close";
    } while (cur != start);
    for (node* n : circle) seen.insert(n);

    // Check each level's ring is the height-filtered subsequence and that
    // every augmented value equals the recomputed block sum.
    int max_h = 0;
    for (node* n : circle) max_h = std::max(max_h, int{n->height});
    for (int lvl = 1; lvl < max_h; ++lvl) {
      std::vector<node*> ring;
      for (node* n : circle)
        if (n->height > lvl) ring.push_back(n);
      if (ring.empty()) break;
      for (size_t i = 0; i < ring.size(); ++i) {
        node* a = ring[i];
        node* b = ring[(i + 1) % ring.size()];
        if (a->next_at(lvl) != b || b->prev_at(lvl) != a)
          return "level ring mismatch at level " + std::to_string(lvl);
      }
    }
    // Augmentation: aug[lvl] of each height>lvl node equals the sum of
    // aug[lvl-1] over its block.
    for (int lvl = 1; lvl <= max_h - 1; ++lvl) {
      size_t n_circ = circle.size();
      for (size_t i = 0; i < n_circ; ++i) {
        node* o = circle[i];
        if (o->height <= lvl) continue;
        ett_counts acc{};
        size_t j = i;
        do {
          node* m = circle[j];
          if (m->height > lvl - 1) acc = acc + m->aug[lvl - 1];
          j = (j + 1) % n_circ;
        } while (j != i && circle[j]->height <= lvl);
        if (!(acc == o->aug[lvl]))
          return "augmentation mismatch at level " + std::to_string(lvl);
      }
    }
    // Tour validity: arcs appear in matched pairs and interleave legally.
    std::unordered_map<uint64_t, int> arc_count;
    for (node* n : circle)
      if (is_arc_tag(n->tag)) arc_count[n->tag]++;
    for (auto& [tag, cnt] : arc_count) {
      if (cnt != 1) return "duplicate arc node in tour";
      uint64_t tail = (tag >> 31) & 0x7fffffff, head = tag & 0x7fffffff;
      if (!arc_count.count(arc_tag(static_cast<vertex_id>(head),
                                   static_cast<vertex_id>(tail))))
        return "arc without twin in tour";
    }
  }
  // Every arc node registered in the edge map must have been visited.
  // Sequential walk: for_each fans out across workers, which would race
  // on the error string.
  for (auto& [key, enx] : edge_map_.entries()) {
    (void)key;
    if (!seen.count(enx.fwd) || !seen.count(enx.rev))
      return "edge-map node not reachable from any vertex";
  }
  return "";
}

}  // namespace bdc
