// Batch-parallel Euler tour trees (paper §2.1; Tseng et al. [62]) — the
// skip-list substrate (substrate::skiplist).
//
// Represents a forest over vertices [0, n) as a set of circular Euler-tour
// sequences stored in an augmented skip list. A tree's tour visits one node
// per vertex and one node per directed arc of each tree edge; linking and
// cutting reduce to batch splits and joins of the sequences.
//
// Cost (Theorem 2): a batch of k links, cuts, representative or connectivity
// queries costs O(k lg(1 + n/k)) expected work and O(lg n) depth w.h.p.
//
// The structure also carries the HDT augmentations: per-vertex counts of
// incident same-level tree and non-tree edges (set by the level structure
// via batch_add_counts), with component-wide sums and first-ℓ retrieval
// (Appendix 9's fetch primitives).
//
// Concurrent-read contract: like the treap, the skip list does not
// support relaxed reads (connected_relaxed returns nullopt) — find_rep
// is a multi-level tower walk that can mix stale and fresh next-pointers
// under a concurrent mutation and land on a representative matching
// neither batch boundary. The epoch-snapshot serving layer answers
// concurrent readers from the release-published per-batch connectivity
// snapshot instead (see ett_substrate's read-side contract).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "ett/ett_counts.hpp"
#include "ett/ett_sequence.hpp"
#include "ett/ett_substrate.hpp"
#include "ett/vertex_directory.hpp"
#include "hashtable/phase_concurrent_map.hpp"
#include "skiplist/augmented_skiplist.hpp"
#include "util/types.hpp"

namespace bdc {

class euler_tour_forest final : public ett_substrate {
 public:
  using skiplist = augmented_skiplist<ett_counts>;
  using node = skiplist::node;
  static_assert(ett_sequence<skiplist, ett_counts>,
                "the sequence backend must satisfy the ett_sequence concept");

  /// An empty forest (no edges) over n vertices.
  explicit euler_tour_forest(vertex_id n, uint64_t seed = 0xe77e77);
  ~euler_tour_forest() override = default;  // node storage is pool-owned

  euler_tour_forest(const euler_tour_forest&) = delete;
  euler_tour_forest& operator=(const euler_tour_forest&) = delete;

  [[nodiscard]] size_t num_vertices() const override { return n_; }
  [[nodiscard]] size_t num_edges() const override { return edge_map_.size(); }

  // ------------------------------------------------------------------
  // Updates (each call is one mutation phase)
  // ------------------------------------------------------------------

  void batch_link(std::span<const edge> links) override;
  void batch_cut(std::span<const edge> cuts) override;
  void batch_add_counts(std::span<const count_delta> deltas) override;

  // ------------------------------------------------------------------
  // Queries (read-only phases)
  // ------------------------------------------------------------------

  [[nodiscard]] bool has_edge(edge e) const override {
    return edge_map_.contains(edge_key(e.canonical()));
  }
  [[nodiscard]] bool connected(vertex_id u, vertex_id v) const override;
  [[nodiscard]] std::vector<bool> batch_connected(
      std::span<const std::pair<vertex_id, vertex_id>> queries)
      const override;

  [[nodiscard]] rep find_rep(vertex_id v) const override;
  [[nodiscard]] std::vector<rep> batch_find_rep(
      std::span<const vertex_id> vs) const override;

  [[nodiscard]] ett_counts component_counts(vertex_id v) const override;
  [[nodiscard]] ett_counts vertex_counts(vertex_id v) const override;

  [[nodiscard]] std::vector<std::pair<vertex_id, uint32_t>> fetch_nontree(
      vertex_id v, uint64_t want) const override;
  [[nodiscard]] std::vector<std::pair<vertex_id, uint32_t>> fetch_tree(
      vertex_id v, uint64_t want) const override;

  [[nodiscard]] std::vector<vertex_id> component_vertices(
      vertex_id v) const override;

  using ett_substrate::for_each_tour_vertex;
  void for_each_tour_vertex(rep r, void (*fn)(void* ctx, vertex_id v),
                            void* ctx) const override;

  /// Verifies internal consistency (tests): tour circularity, augmentation
  /// sums, edge-map agreement. Returns empty string if healthy.
  [[nodiscard]] std::string check_consistency() const override;

  [[nodiscard]] node_pool::stats_snapshot pool_stats() const override {
    return list_.pool().stats();
  }
  size_t trim_pool(size_t keep_bytes = 0) override {
    return list_.pool().trim(keep_bytes);
  }
  [[nodiscard]] uint64_t active_vertices() const override {
    return dir_.active_count();
  }
  [[nodiscard]] size_t directory_bytes() const override {
    return dir_.resident_bytes();
  }

 private:
  struct edge_nodes {
    node* fwd = nullptr;  // the arc (c.u, c.v) of the canonical edge c
    node* rev = nullptr;  // the arc (c.v, c.u)
  };

  /// The tour node of an active vertex, or nullptr (never touched by an
  /// edge at this level, or reclaimed since).
  [[nodiscard]] node* vertex_node(vertex_id v) const {
    node* const* p = dir_.find(v);
    return p == nullptr ? nullptr : *p;
  }
  /// Activates v (creating its singleton tour node) on first edge touch.
  /// Parallel-safe for distinct vertices (create_node is phase-safe).
  node* ensure_vertex(vertex_id v);
  /// Reclaims v's node + slot when its last level-i edge has left (lone
  /// level-0 circle, zero edge counters). Idempotent; mutation phases
  /// only, distinct vertices per worker.
  void maybe_release_vertex(vertex_id v);

  [[nodiscard]] std::vector<std::pair<vertex_id, uint32_t>> fetch_counted(
      vertex_id v, uint64_t want, bool nontree) const;

  vertex_id n_;
  skiplist list_;  // declared before dir_: chunks ride the list's pool
  // Sparse per-vertex state: an active vertex's slot holds its tour node;
  // tourless vertices rep as singleton_rep(v), so activation/reclamation
  // never moves a representative.
  vertex_directory<node*> dir_;
  phase_concurrent_map<edge_nodes> edge_map_;
};

}  // namespace bdc
