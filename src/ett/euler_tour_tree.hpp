// Batch-parallel Euler tour trees (paper §2.1; Tseng et al. [62]).
//
// Represents a forest over vertices [0, n) as a set of circular Euler-tour
// sequences stored in an augmented skip list. A tree's tour visits one node
// per vertex and one node per directed arc of each tree edge; linking and
// cutting reduce to batch splits and joins of the sequences.
//
// Cost (Theorem 2): a batch of k links, cuts, representative or connectivity
// queries costs O(k lg(1 + n/k)) expected work and O(lg n) depth w.h.p.
//
// The structure also carries the HDT augmentations: per-vertex counts of
// incident same-level tree and non-tree edges (set by the level structure
// via batch_add_counts), with component-wide sums and first-ℓ retrieval
// (Appendix 9's fetch primitives).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "ett/ett_counts.hpp"
#include "hashtable/phase_concurrent_map.hpp"
#include "skiplist/augmented_skiplist.hpp"
#include "util/types.hpp"

namespace bdc {

class euler_tour_forest {
 public:
  using skiplist = augmented_skiplist<ett_counts>;
  using node = skiplist::node;

  /// An empty forest (no edges) over n vertices.
  explicit euler_tour_forest(vertex_id n, uint64_t seed = 0xe77e77);
  ~euler_tour_forest();

  euler_tour_forest(const euler_tour_forest&) = delete;
  euler_tour_forest& operator=(const euler_tour_forest&) = delete;

  [[nodiscard]] size_t num_vertices() const { return vertex_nodes_.size(); }
  [[nodiscard]] size_t num_edges() const { return edge_map_.size(); }

  // ------------------------------------------------------------------
  // Updates (each call is one mutation phase)
  // ------------------------------------------------------------------

  /// Adds `links` to the forest. Preconditions: no self loops, edges
  /// distinct (as undirected pairs), not already present, and the batch
  /// keeps the graph acyclic (the caller runs a spanning-forest pass first;
  /// Algorithms 2, 4, 5 all guarantee this).
  void batch_link(std::span<const edge> links);
  void link(edge e) { batch_link({&e, 1}); }

  /// Removes `cuts`, which must all be present tree edges (distinct).
  void batch_cut(std::span<const edge> cuts);
  void cut(edge e) { batch_cut({&e, 1}); }

  /// Adds (tree_delta, nontree_delta) to the per-vertex incident-edge
  /// counters and repairs the augmentation. One entry per vertex at most.
  struct count_delta {
    vertex_id v;
    int32_t tree_delta;
    int32_t nontree_delta;
  };
  void batch_add_counts(std::span<const count_delta> deltas);

  // ------------------------------------------------------------------
  // Queries (read-only phases)
  // ------------------------------------------------------------------

  [[nodiscard]] bool has_edge(edge e) const {
    return edge_map_.contains(edge_key(e.canonical()));
  }
  [[nodiscard]] bool connected(vertex_id u, vertex_id v) const;
  [[nodiscard]] std::vector<bool> batch_connected(
      std::span<const std::pair<vertex_id, vertex_id>> queries) const;

  /// Representative handle: rep(u) == rep(v) iff u, v in the same tree.
  /// Invalidated by any subsequent link/cut (paper §2.1).
  [[nodiscard]] node* find_rep(vertex_id v) const;
  [[nodiscard]] std::vector<node*> batch_find_rep(
      std::span<const vertex_id> vs) const;

  /// Component-wide augmented sums for v's tree.
  [[nodiscard]] ett_counts component_counts(vertex_id v) const;
  [[nodiscard]] uint32_t component_size(vertex_id v) const {
    return component_counts(v).vertices;
  }

  /// The per-vertex stored counters (not component sums). For validation.
  [[nodiscard]] ett_counts vertex_counts(vertex_id v) const;

  /// Fetches, in tour order, vertices covering the first `want` incident
  /// non-tree (resp. tree) edge slots of v's component. Each result entry
  /// (x, c) means "take c edges from x's level-i non-tree (tree) adjacency
  /// list". Sum of takes == min(want, component total). (Appendix 9.)
  [[nodiscard]] std::vector<std::pair<vertex_id, uint32_t>> fetch_nontree(
      vertex_id v, uint64_t want) const;
  [[nodiscard]] std::vector<std::pair<vertex_id, uint32_t>> fetch_tree(
      vertex_id v, uint64_t want) const;

  /// All vertices of v's component, in tour order (diagnostics / tests;
  /// O(component) work).
  [[nodiscard]] std::vector<vertex_id> component_vertices(vertex_id v) const;

  /// Verifies internal consistency (tests): tour circularity, augmentation
  /// sums, edge-map agreement. Returns empty string if healthy.
  [[nodiscard]] std::string check_consistency() const;

 private:
  struct edge_nodes {
    node* fwd = nullptr;  // the arc (c.u, c.v) of the canonical edge c
    node* rev = nullptr;  // the arc (c.v, c.u)
  };

  [[nodiscard]] std::vector<std::pair<vertex_id, uint32_t>> fetch_counted(
      vertex_id v, uint64_t want, bool nontree) const;

  skiplist list_;
  std::vector<node*> vertex_nodes_;
  phase_concurrent_map<edge_nodes> edge_map_;
};

}  // namespace bdc
