// Cache-packed block-linked Euler tours — the blocked substrate
// (substrate::blocked; De Man, Łącki & Dhulipala 2024 report
// sequence-compressed / block-linked tour representations winning
// decisively at small component sizes, which is exactly the regime the
// HDT hierarchy's low levels live in).
//
// Each tree's Euler tour is a CIRCULAR doubly-linked list of fixed-size
// blocks; a block packs up to kBlockCap 8-byte tour entries (one sentinel
// per vertex, one entry per directed arc of each tree edge) contiguously,
// so walking a tour is a streaming scan instead of a pointer chase per
// element. Every block carries the aggregate HDT counters of the
// sentinels it holds, and a per-tour descriptor carries the
// component-wide sums — so `find_rep`, `connected`, `component_counts`
// and `batch_add_counts` are all O(1) per element (vs O(lg n) for the
// skip-list and treap substrates), and the first-ℓ fetch walk prunes
// whole blocks by their aggregates.
//
// Mutations are splice-based: `link` splits at most three blocks (after
// the host's sentinel, before the guest's sentinel) and splices the
// guest's block chain plus two packed arc entries into the host's cycle,
// relabelling only the smaller side's blocks; `cut` isolates the edge's
// two arcs at block boundaries and re-closes the two halves of the cycle
// into separate tours. B-tree-style local rebalancing (merge or borrow
// from the successor block) restores the occupancy invariant — every
// block of a multi-block tour holds at least kMinFill entries — so tours
// stay packed under arbitrary link/cut churn. The price of O(1) queries
// is that merging or splitting a tour relabels the smaller side's block
// owners, i.e. O(size/B) per mutation; on the small components the
// blocked substrate targets this linear term is cheaper in practice than
// the polylogarithmic pointer structures it replaces, and the per-level
// substrate policy (options::policy) keeps it away from the huge
// top-level components.
//
// Batch mutations follow the treap substrate's phase structure: a
// read-only phase resolves every touched tour, the batch is partitioned
// into groups touching disjoint tours, and groups proceed concurrently
// under the scheduler (arc-map writes stay phase-safe: placeholders are
// inserted up front, groups only update values of their own keys).
// Read-only batch queries fan out across workers unconditionally.
//
// Blocks and tour descriptors come from the shared per-worker pool
// (util/node_pool.hpp): cut blocks are recycled by later links, and an
// emptied forest can return every block to the OS via trim_pool().
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "ett/ett_substrate.hpp"
#include "ett/link_partition.hpp"
#include "ett/vertex_directory.hpp"
#include "hashtable/phase_concurrent_map.hpp"
#include "util/node_pool.hpp"
#include "util/types.hpp"

namespace bdc {

class blocked_ett final : public ett_substrate {
 public:
  /// Entries per block: sized so one block (header + payload) is 512
  /// bytes — eight cache lines the hardware prefetcher streams through.
  static constexpr uint32_t kBlockCap = 59;
  /// Occupancy floor for blocks of multi-block tours; single-block tours
  /// are exempt (a 2-vertex tree has only 4 entries).
  static constexpr uint32_t kMinFill = kBlockCap / 4;

  explicit blocked_ett(vertex_id n, uint64_t seed = 0xb10c);
  ~blocked_ett() override;

  blocked_ett(const blocked_ett&) = delete;
  blocked_ett& operator=(const blocked_ett&) = delete;

  [[nodiscard]] size_t num_vertices() const override { return n_; }
  [[nodiscard]] size_t num_edges() const override { return arcs_.size(); }

  void batch_link(std::span<const edge> links) override;
  void batch_cut(std::span<const edge> cuts) override;
  void batch_add_counts(std::span<const count_delta> deltas) override;

  [[nodiscard]] bool has_edge(edge e) const override {
    return arcs_.contains(edge_key(e.canonical()));
  }
  [[nodiscard]] bool connected(vertex_id u, vertex_id v) const override;
  [[nodiscard]] std::vector<bool> batch_connected(
      std::span<const std::pair<vertex_id, vertex_id>> queries)
      const override;

  [[nodiscard]] rep find_rep(vertex_id v) const override;
  [[nodiscard]] std::vector<rep> batch_find_rep(
      std::span<const vertex_id> vs) const override;

  [[nodiscard]] ett_counts component_counts(vertex_id v) const override;
  [[nodiscard]] ett_counts vertex_counts(vertex_id v) const override;

  [[nodiscard]] std::vector<std::pair<vertex_id, uint32_t>> fetch_nontree(
      vertex_id v, uint64_t want) const override;
  [[nodiscard]] std::vector<std::pair<vertex_id, uint32_t>> fetch_tree(
      vertex_id v, uint64_t want) const override;

  [[nodiscard]] std::vector<vertex_id> component_vertices(
      vertex_id v) const override;

  using ett_substrate::for_each_tour_vertex;
  void for_each_tour_vertex(rep r, void (*fn)(void* ctx, vertex_id v),
                            void* ctx) const override;

  /// Structural validation (tests): block chain coherence, occupancy
  /// bounds, aggregate sums, tour orientation (closed Euler walk), and
  /// registration of every sentinel and arc. Empty string if healthy.
  [[nodiscard]] std::string check_consistency() const override;

  [[nodiscard]] node_pool::stats_snapshot pool_stats() const override {
    return pool_.stats();
  }
  size_t trim_pool(size_t keep_bytes = 0) override {
    return pool_.trim(keep_bytes);
  }
  [[nodiscard]] uint64_t active_vertices() const override {
    return dir_.active_count();
  }
  [[nodiscard]] size_t directory_bytes() const override {
    return dir_.resident_bytes();
  }

  // Epoch-snapshot read contract (see ett_substrate): the reader-visible
  // pointer chain — directory chunk (vertex -> slot), slot vloc (vertex
  // -> block) and block::owner (block -> tour descriptor) — is all
  // atomics; every writer-side update is a release store and every
  // concurrent-read load is an acquire, so connected_relaxed is a
  // torn-free probe usable WHILE a mutation batch runs (the caller must
  // still seqlock-validate: an answer that overlapped a batch can mix
  // pre- and post-batch paths). With epochs bound, freed blocks, tour
  // descriptors AND directory chunks park in the pool's limbo instead of
  // being recycled, which is what makes the probe's dereference of a
  // just-unlinked block or just-swept chunk safe and rules out
  // descriptor-address ABA within a pinned epoch.
  [[nodiscard]] bool supports_relaxed_reads() const override { return true; }
  [[nodiscard]] std::optional<bool> connected_relaxed(
      vertex_id u, vertex_id v) const override;
  void bind_read_epochs(epoch_manager* em) override {
    pool_.bind_epochs(em);
  }
  size_t drain_limbo() override { return pool_.drain_limbo(); }

  /// Packing diagnostics for the occupancy tests.
  struct block_stats {
    size_t tours = 0;    // multi-vertex components
    size_t blocks = 0;   // blocks across all tours
    size_t entries = 0;  // tour entries across all tours
    uint32_t min_fill = 0;  // smallest block of any multi-block tour
    uint32_t max_fill = 0;
  };
  [[nodiscard]] block_stats debug_block_stats() const;

 private:
  struct tour;
  struct block;
  /// Per-ACTIVE-vertex state, held in the sparse directory: the vertex's
  /// HDT counters (vertices == 1) and the block holding its sentinel
  /// (null while the vertex has no incident tree edge at this level).
  /// vloc is atomic (release-published) for the concurrent-read probe;
  /// writer-side code reads it relaxed (phase-exclusive). Slot addresses
  /// are stable for the lifetime of their chunk (vertex_directory never
  /// moves slots).
  struct vslot {
    ett_counts own;
    std::atomic<block*> vloc{nullptr};
  };
  /// Fixed-capacity block list for per-splice seam bookkeeping (one
  /// splice creates a bounded number of seam blocks, so rebalance
  /// candidates and merge-freed blocks never exceed the inline
  /// capacity). Avoids a heap allocation per link/cut.
  struct seam_blocks;
  /// Blocks holding an edge's two directed arc entries (fwd = the arc
  /// (c.u, c.v) of the canonical edge c). Entries move between blocks
  /// only on split/merge/borrow, which re-registers them here.
  struct arc_loc {
    block* fwd = nullptr;
    block* rev = nullptr;
  };

  block* new_block(tour* owner);
  tour* new_tour();
  void free_block(block* b);
  void free_tour(tour* t);

  /// The directory slot of an active vertex (nullptr when inactive).
  [[nodiscard]] vslot* slot(vertex_id v) const { return dir_.find(v); }
  /// Activates v on first touch ({1,0,0} counters, no tour).
  vslot& ensure_slot(vertex_id v);
  /// Counters of a vertex known to be in a tour (slot must exist).
  [[nodiscard]] const ett_counts& own_of(vertex_id v) const;
  /// Reclaims v's slot when its last level-i edge has left (no tour, no
  /// counters). Call only from mutation phases, on v's own partition.
  void maybe_release_slot(vertex_id v, vslot& s);

  [[nodiscard]] tour* tour_of(vertex_id v) const;
  /// Materializes singleton v as a one-entry, one-block tour.
  tour* materialize(vertex_id v);
  /// Index of `tag` within b (must be present).
  [[nodiscard]] static uint32_t index_in_block(const block* b, uint64_t tag);
  /// Recomputes b's aggregate from its entries.
  void recompute_agg(block* b) const;
  /// Points every entry of b's location record (vloc_ / arcs_) at b.
  void reregister(block* b);
  /// Ensures a block boundary before index i of b (0 <= i <= count);
  /// returns the block that begins with b's old entry i (b itself when
  /// i == 0, b's successor when i == count).
  block* split_at(block* b, uint32_t i);
  /// Restores the occupancy floor for b by merging with or borrowing
  /// from its successor; blocks freed by merges are appended to `dead`.
  void rebalance(block* b, seam_blocks& dead);
  /// Rebalances every distinct candidate block that is still alive
  /// (merges may free a later candidate — `dead` tracks those).
  void rebalance_candidates(const seam_blocks& cands, seam_blocks& dead);
  /// Appends `m` tags at the end of b (room must exist).
  void append_entries(block* b, const uint64_t* tags, uint32_t m);
  /// Inserts one tag at the front of b (room must exist).
  void prepend_entry(block* b, uint64_t tag);
  /// Records which block holds each directed arc of edge e.
  void set_arc_blocks(edge e, block* fwd_holder, block* rev_holder);
  /// Collapses a 1-entry tour back to the implicit singleton form.
  void collapse_singleton(tour* t, seam_blocks& dead);

  void link_one(vertex_id u, vertex_id v);
  void cut_one(edge e);
  void add_counts_one(const count_delta& d);

  [[nodiscard]] std::vector<std::pair<vertex_id, uint32_t>> fetch_counted(
      vertex_id v, uint64_t want, bool nontree) const;

  /// Batches below this size (or a 1-worker pool) skip the grouping
  /// machinery and run the sequential splice loop.
  static constexpr size_t kParallelMutationCutoff = 16;

  /// Scratch buffers reused across bulk-mutation calls (mutation phases
  /// are exclusive, so reuse is race-free). The low levels of a mixed
  /// policy see the most frequent small batches, so the per-batch
  /// allocations matter here just as they did for the treap (PR 3's
  /// shattered-batch constant).
  struct mutation_scratch {
    std::vector<uintptr_t> rep_u, rep_v;
    link_partition_scratch<uintptr_t> part;
    std::vector<uint64_t> keys;
  };
  mutation_scratch scratch_;

  vertex_id n_;
  phase_concurrent_map<arc_loc> arcs_;  // per canonical tree edge
  node_pool pool_;  // declared before dir_: chunks are pool storage
  // Sparse per-vertex state: a vertex holds a slot only while an edge at
  // this level touches it; tourless vertices rep as singleton_rep(v), so
  // activation/deactivation never moves a representative.
  vertex_directory<vslot> dir_;
};

}  // namespace bdc
