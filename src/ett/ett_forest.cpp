#include "ett/ett_forest.hpp"

namespace bdc {

const char* to_string(dispatch d) {
  switch (d) {
    case dispatch::static_variant:
      return "static";
    case dispatch::virtual_bridge:
      return "virtual";
  }
  return "unknown";
}

std::optional<dispatch> dispatch_from_string(std::string_view name) {
  if (name == "static") return dispatch::static_variant;
  if (name == "virtual") return dispatch::virtual_bridge;
  return std::nullopt;
}

ett_forest::ett_forest(bdc::substrate s, vertex_id n, uint64_t seed,
                       bdc::dispatch d)
    : owner_(make_ett(s, n, seed)), view_(owner_.get()), kind_(s),
      dispatch_(d) {
  if (d == dispatch::virtual_bridge) return;  // stay on the base view
  // make_ett's mapping from enum to concrete type is the single source of
  // truth; the downcasts mirror it exactly (all three classes are final).
  switch (s) {
    case substrate::skiplist:
      view_ = static_cast<euler_tour_forest*>(owner_.get());
      break;
    case substrate::treap:
      view_ = static_cast<treap_ett*>(owner_.get());
      break;
    case substrate::blocked:
      view_ = static_cast<blocked_ett*>(owner_.get());
      break;
  }
}

}  // namespace bdc
