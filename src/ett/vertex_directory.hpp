// Sparse per-forest vertex directory: the activation-on-first-touch
// replacement for the dense per-vertex arrays the substrates used to
// allocate (own_/vloc_/sentinel_/vertex_nodes_, each O(n) PER MATERIALIZED
// LEVEL). The HDT invariant makes levels below the top progressively tiny,
// so a forest's per-vertex state is keyed by the vertices actually touched
// by a level-i edge instead of by the address space:
//
//   * a root table of ceil(n / kSpan) atomic chunk pointers (8 bytes per
//     kSpan vertices — the only n-proportional cost, 1-2 bits/vertex);
//   * pool-allocated chunks of kSpan slots each, installed by CAS on first
//     activation in their range. Chunks are NEVER moved or reallocated, so
//     &slot stays stable for as long as its chunk lives — load-bearing for
//     blocked_ett, whose relaxed-read probe loads through slot pointers
//     under concurrent readers;
//   * per-chunk occupancy (bitmap + live count) so a chunk whose last slot
//     deactivates can be reclaimed. Reclamation is deferred: parallel batch
//     phases only RECORD empty chunks (a racing activation in the same
//     chunk must never see its storage freed under it), and the substrate
//     sweeps the pending list from the single-threaded tail of each batch
//     op, routing the memory through node_pool::reclaim so epoch-pinned
//     readers of the blocked substrate keep a mapped (if stale) chunk.
//
// Concurrency contract (mirrors the substrates' phase contract):
//   * activate/deactivate run only inside mutation batches, and at most
//     one thread touches a given vertex (the batches partition work by
//     vertex / by tour). Distinct vertices sharing a chunk may be touched
//     from different workers concurrently — all cross-slot chunk state is
//     atomic.
//   * find() is safe concurrently with mutations (acquire loads down the
//     chain); a racing reader sees either the pre- or post-state of the
//     slot's PUBLICATION, never a partially initialized slot, because
//     activate() runs the caller's init before setting the bitmap bit.
//   * sweep_pending() and for_each_active() require the single-threaded
//     tail (no batch phase in flight).
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <new>
#include <string>
#include <type_traits>
#include <vector>

#include "util/node_pool.hpp"
#include "util/types.hpp"

namespace bdc {

template <typename Slot>
class vertex_directory {
 public:
  /// Slots per chunk, sized so a chunk fits the node pool's largest class
  /// (chunks ride the pool — and therefore the epoch limbo — like any
  /// other substrate node).
  static constexpr uint32_t kSpanLog = sizeof(Slot) <= 8 ? 6 : 5;
  static constexpr uint32_t kSpan = 1u << kSpanLog;
  static constexpr uint32_t kMask = kSpan - 1;

  struct chunk {
    std::atomic<uint64_t> bitmap{0};  // bit i: slot i active
    std::atomic<uint32_t> live{0};    // popcount(bitmap), maintained
    Slot slots[kSpan];
  };
  static_assert(kSpan <= 64, "bitmap is one 64-bit word");
  static_assert(sizeof(chunk) <= node_pool::kMaxBytes,
                "chunks must be pool-allocatable");

  vertex_directory(vertex_id n, node_pool& pool)
      : pool_(&pool),
        n_(n),
        roots_((static_cast<size_t>(n) + kSpan - 1) / kSpan) {}

  vertex_directory(const vertex_directory&) = delete;
  vertex_directory& operator=(const vertex_directory&) = delete;

  // No destructor work: chunks are pool storage (the pool releases its
  // blocks wholesale) and Slot is trivially destructible for every
  // substrate.
  static_assert(std::is_trivially_destructible_v<Slot>);

  [[nodiscard]] vertex_id capacity() const { return n_; }

  /// The slot of an active vertex, or nullptr. Safe under concurrent
  /// mutation phases (see the contract above).
  [[nodiscard]] Slot* find(vertex_id v) const {
    assert(v < n_);
    chunk* c = roots_[v >> kSpanLog].load(std::memory_order_acquire);
    if (c == nullptr) return nullptr;
    if ((c->bitmap.load(std::memory_order_acquire) &
         (uint64_t{1} << (v & kMask))) == 0)
      return nullptr;
    return &c->slots[v & kMask];
  }

  [[nodiscard]] bool active(vertex_id v) const { return find(v) != nullptr; }

  /// Activates `v` (installing its chunk if absent) and returns its slot.
  /// On a FRESH activation, `init(slot)` runs before the slot is
  /// published, so a concurrent find() never observes a half-built slot;
  /// an already-active vertex returns its slot untouched. Only the thread
  /// owning `v`'s batch partition may call this.
  template <typename Init>
  Slot& activate(vertex_id v, Init&& init) {
    assert(v < n_);
    chunk* c = ensure_chunk(v >> kSpanLog);
    const uint32_t idx = v & kMask;
    const uint64_t bit = uint64_t{1} << idx;
    if ((c->bitmap.load(std::memory_order_acquire) & bit) != 0)
      return c->slots[idx];
    init(c->slots[idx]);
    c->bitmap.fetch_or(bit, std::memory_order_release);
    c->live.fetch_add(1, std::memory_order_relaxed);
    active_.fetch_add(1, std::memory_order_relaxed);
    return c->slots[idx];
  }

  /// Deactivates `v`. The caller must already have reset any
  /// reader-visible slot state (a stale reader may still dereference the
  /// slot until the next epoch drain). If this empties the chunk, the
  /// chunk is queued for sweep_pending() — never freed inline, because a
  /// racing activation of a sibling slot may be touching it.
  void deactivate(vertex_id v) {
    assert(v < n_);
    const size_t ci = v >> kSpanLog;
    chunk* c = roots_[ci].load(std::memory_order_acquire);
    assert(c != nullptr && "deactivating a vertex with no chunk");
    const uint64_t bit = uint64_t{1} << (v & kMask);
    [[maybe_unused]] uint64_t prev =
        c->bitmap.fetch_and(~bit, std::memory_order_release);
    assert((prev & bit) != 0 && "deactivating an inactive vertex");
    active_.fetch_sub(1, std::memory_order_relaxed);
    if (c->live.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      pending_.push_back(static_cast<uint32_t>(ci));
    }
  }

  /// Frees the chunks that were emptied by earlier deactivations and are
  /// STILL empty (a re-activation in between keeps the chunk). Call from
  /// the single-threaded tail of a batch op. Memory goes through
  /// node_pool::reclaim, i.e. the epoch limbo when the pool is bound.
  void sweep_pending() {
    std::vector<uint32_t> pending;
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      pending.swap(pending_);
    }
    for (uint32_t ci : pending) {
      chunk* c = roots_[ci].load(std::memory_order_relaxed);
      if (c == nullptr) continue;  // duplicate entry, already swept
      if (c->live.load(std::memory_order_relaxed) != 0) continue;
      roots_[ci].store(nullptr, std::memory_order_release);
      chunks_.fetch_sub(1, std::memory_order_relaxed);
      pool_->reclaim(c, sizeof(chunk));
    }
  }

  /// Visits every active (vertex, slot), ascending by vertex. Requires
  /// quiescence (diagnostics / consistency checks).
  template <typename F>
  void for_each_active(F&& f) const {
    for (size_t ci = 0; ci < roots_.size(); ++ci) {
      chunk* c = roots_[ci].load(std::memory_order_acquire);
      if (c == nullptr) continue;
      uint64_t bm = c->bitmap.load(std::memory_order_acquire);
      while (bm != 0) {
        const uint32_t idx = static_cast<uint32_t>(std::countr_zero(bm));
        bm &= bm - 1;
        f(static_cast<vertex_id>(ci * kSpan + idx), c->slots[idx]);
      }
    }
  }

  [[nodiscard]] uint64_t active_count() const {
    return active_.load(std::memory_order_relaxed);
  }

  /// Bytes this directory currently retains: the fixed root table plus
  /// the installed chunks. O(1).
  [[nodiscard]] size_t resident_bytes() const {
    return roots_.capacity() * sizeof(roots_[0]) +
           static_cast<size_t>(chunks_.load(std::memory_order_relaxed)) *
               sizeof(chunk);
  }

  [[nodiscard]] uint64_t chunk_count() const {
    return chunks_.load(std::memory_order_relaxed);
  }

  /// Structural self-check (quiescent callers). Empty string if healthy.
  [[nodiscard]] std::string check_consistency() const {
    uint64_t total = 0;
    for (size_t ci = 0; ci < roots_.size(); ++ci) {
      chunk* c = roots_[ci].load(std::memory_order_acquire);
      if (c == nullptr) continue;
      const uint64_t bm = c->bitmap.load(std::memory_order_relaxed);
      const uint32_t live = c->live.load(std::memory_order_relaxed);
      if (static_cast<uint32_t>(std::popcount(bm)) != live)
        return "directory chunk bitmap/live mismatch";
      total += live;
    }
    if (total != active_count()) return "directory active-count mismatch";
    return "";
  }

 private:
  chunk* ensure_chunk(size_t ci) {
    chunk* c = roots_[ci].load(std::memory_order_acquire);
    if (c != nullptr) return c;
    void* mem = pool_->allocate(sizeof(chunk));
    chunk* fresh = new (mem) chunk();
    chunk* expected = nullptr;
    if (roots_[ci].compare_exchange_strong(expected, fresh,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      chunks_.fetch_add(1, std::memory_order_relaxed);
      return fresh;
    }
    // Lost the install race; the fresh chunk was never published, so an
    // immediate deallocate (not reclaim) is safe.
    pool_->deallocate(fresh, sizeof(chunk));
    return expected;
  }

  node_pool* pool_;
  vertex_id n_;
  std::vector<std::atomic<chunk*>> roots_;
  std::atomic<uint64_t> active_{0};
  std::atomic<uint64_t> chunks_{0};
  std::mutex pending_mutex_;
  std::vector<uint32_t> pending_;  // chunk indices that hit live == 0
};

}  // namespace bdc
