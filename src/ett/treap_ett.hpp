// Euler tour trees over sequence treaps — the treap substrate
// (substrate::treap; paper §2.2; Henzinger-King [27], Miltersen et al.
// [41]).
//
// Each tree's Euler tour is a treap sequence over arc nodes (u,v)/(v,u)
// plus one sentinel node (v,v) per vertex; link/cut are O(lg n) expected
// via split/join, and the treap is augmented with subtree counts of
// vertices and of per-level incident tree/non-tree edge slots (on the
// sentinel nodes) to support the HDT searches.
//
// As an `ett_substrate`, mutation batches (batch_link / batch_cut /
// batch_add_counts) run as sequential loops over the treap primitives —
// the batch preconditions (acyclic link batches, present distinct cuts)
// make any sequential order valid — while the read-only batch queries
// (batch_connected, batch_find_rep) fan out across scheduler workers,
// since concurrent root walks on an unchanging treap are safe. It shares
// no code with the skip-list forest, so the two substrates cross-validate
// each other in the parameterized test suites; the sequential HDT baseline
// (`hdt_connectivity`) additionally drives the per-edge primitives
// (link/cut/add_counts/find_*_slot) directly.
//
// Node storage comes from the shared per-worker pool (util/node_pool.hpp):
// cut arcs are recycled by later links, and teardown drops whole blocks
// instead of deleting node by node.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ett/ett_substrate.hpp"
#include "hashtable/phase_concurrent_map.hpp"
#include "util/node_pool.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace bdc {

class treap_ett final : public ett_substrate {
 public:
  using counts = ett_counts;

  explicit treap_ett(vertex_id n, uint64_t seed = 0x7e47);
  ~treap_ett() override = default;  // node storage is pool-owned

  treap_ett(const treap_ett&) = delete;
  treap_ett& operator=(const treap_ett&) = delete;

  [[nodiscard]] size_t num_vertices() const override {
    return sentinel_.size();
  }
  [[nodiscard]] size_t num_edges() const override { return arcs_.size(); }

  // ------------------------------------------------------------------
  // Sequential per-edge primitives (the HDT baseline drives these)
  // ------------------------------------------------------------------

  /// Links u and v (must be in different trees).
  void link(vertex_id u, vertex_id v);
  /// Cuts the tree edge (u, v) (must be present).
  void cut(vertex_id u, vertex_id v);
  using ett_substrate::cut;
  using ett_substrate::link;

  [[nodiscard]] bool has_edge(vertex_id u, vertex_id v) const {
    return arcs_.contains(edge_key(edge{u, v}.canonical()));
  }
  /// Adjusts v's per-vertex counters along the root path.
  void add_counts(vertex_id v, int32_t tree_delta, int32_t nontree_delta);

  /// Some vertex in v's tree with a nonzero tree (resp. non-tree) counter,
  /// or kNoVertex. O(lg n) expected via augmented descent.
  [[nodiscard]] vertex_id find_tree_slot(vertex_id v) const;
  [[nodiscard]] vertex_id find_nontree_slot(vertex_id v) const;

  // ------------------------------------------------------------------
  // ett_substrate surface
  // ------------------------------------------------------------------

  void batch_link(std::span<const edge> links) override;
  void batch_cut(std::span<const edge> cuts) override;
  void batch_add_counts(std::span<const count_delta> deltas) override;

  [[nodiscard]] bool has_edge(edge e) const override {
    return has_edge(e.u, e.v);
  }
  [[nodiscard]] bool connected(vertex_id u, vertex_id v) const override;
  [[nodiscard]] std::vector<bool> batch_connected(
      std::span<const std::pair<vertex_id, vertex_id>> queries)
      const override;

  [[nodiscard]] rep find_rep(vertex_id v) const override;
  [[nodiscard]] std::vector<rep> batch_find_rep(
      std::span<const vertex_id> vs) const override;

  [[nodiscard]] ett_counts component_counts(vertex_id v) const override;
  [[nodiscard]] ett_counts vertex_counts(vertex_id v) const override;

  [[nodiscard]] std::vector<std::pair<vertex_id, uint32_t>> fetch_nontree(
      vertex_id v, uint64_t want) const override;
  [[nodiscard]] std::vector<std::pair<vertex_id, uint32_t>> fetch_tree(
      vertex_id v, uint64_t want) const override;

  [[nodiscard]] std::vector<vertex_id> component_vertices(
      vertex_id v) const override;

  /// Structural validation (tests): parent/child coherence, heap order,
  /// aggregate sums, tour well-formedness. Empty string if healthy.
  [[nodiscard]] std::string check_consistency() const override;

 private:
  struct node;
  struct arc_nodes {
    node* fwd = nullptr;
    node* rev = nullptr;
  };

  node* make_node(uint64_t tag);
  void free_node(node* x);
  static void update(node* x);
  [[nodiscard]] static node* root_of(node* x);
  /// Merges two treap sequences (all of a before all of b).
  static node* merge(node* a, node* b);
  /// Splits so that x begins the right part. Returns {left, right}.
  static std::pair<node*, node*> split_before(node* x);
  /// Splits so that x ends the left part. Returns {left, right}.
  static std::pair<node*, node*> split_after(node* x);
  /// In-order rank of x within its treap (for arc ordering in cut).
  [[nodiscard]] static size_t rank_of(node* x);
  /// Rotates v's tour so it starts at v's sentinel.
  node* reroot(vertex_id v);

  [[nodiscard]] std::vector<std::pair<vertex_id, uint32_t>> fetch_counted(
      vertex_id v, uint64_t want, bool nontree) const;

  random rng_;
  uint64_t counter_ = 0;
  std::vector<node*> sentinel_;          // (v,v) node per vertex
  phase_concurrent_map<arc_nodes> arcs_; // per canonical edge
  node_pool pool_;
};

}  // namespace bdc
