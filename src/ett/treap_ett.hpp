// Euler tour trees over sequence treaps — the treap substrate
// (substrate::treap; paper §2.2; Henzinger-King [27], Miltersen et al.
// [41]).
//
// Each tree's Euler tour is a treap sequence over arc nodes (u,v)/(v,u)
// plus one sentinel node (v,v) per vertex; link/cut are O(lg n) expected
// via split/join, and the treap is augmented with subtree counts of
// vertices and of per-level incident tree/non-tree edge slots (on the
// sentinel nodes) to support the HDT searches.
//
// As an `ett_substrate`, mutation batches (batch_link / batch_cut /
// batch_add_counts) are parallel join-based bulk operations in the style
// of Blelloch–Ferizovic–Sun joins as used for batch-dynamic trees by Acar
// et al. (2020): a read-only phase finds each touched tour's root, a
// union-find over roots partitions the batch into groups touching disjoint
// tours, and groups proceed concurrently under the scheduler. Within a
// group the affected tours are split once per batch boundary and rebuilt
// with a balanced divide-and-conquer join reduction (fork_join_reduce)
// instead of node-at-a-time merging, so a single giant component also gets
// intra-tour parallelism. New arc priorities are drawn from a counter
// range reserved before the parallel phase, keeping the structure
// deterministic for a given (seed, batch history). Small batches (or a
// 1-worker pool) fall back to the sequential split/merge loop. Read-only
// batch queries (batch_connected, batch_find_rep) fan out across workers,
// since concurrent root walks on an unchanging treap are safe.
//
// The treap forest shares no code with the skip-list forest, so the two
// substrates cross-validate each other in the parameterized test and fuzz
// suites; the sequential HDT baseline (`hdt_connectivity`) additionally
// drives the per-edge primitives (link/cut/add_counts/find_*_slot)
// directly.
//
// Node storage comes from the shared per-worker pool (util/node_pool.hpp):
// cut arcs are recycled by later links, and teardown drops whole blocks
// instead of deleting node by node.
//
// Concurrent-read contract: the treap does NOT support relaxed reads
// (connected_relaxed returns nullopt). A find_rep here is a multi-hop
// parent walk, and under a concurrent cut+link batch two walks can
// resolve through a mix of stale and fresh parent pointers to the same
// root, yielding an answer that matches neither the pre- nor the
// post-batch forest. Under the epoch-snapshot serving layer
// (batch_dynamic_connectivity, options::concurrent_reads), treap-backed
// readers are therefore served from the immutable connectivity snapshot
// the service release-publishes at every batch boundary — the batch
// result IS published with one release store (of the snapshot pointer),
// which is the strongest pre-or-post guarantee a pointer-walk structure
// can offer without per-node versioning.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "ett/ett_substrate.hpp"
#include "ett/link_partition.hpp"
#include "ett/vertex_directory.hpp"
#include "hashtable/phase_concurrent_map.hpp"
#include "util/node_pool.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace bdc {

class treap_ett final : public ett_substrate {
 public:
  using counts = ett_counts;

  explicit treap_ett(vertex_id n, uint64_t seed = 0x7e47);
  ~treap_ett() override = default;  // node storage is pool-owned

  treap_ett(const treap_ett&) = delete;
  treap_ett& operator=(const treap_ett&) = delete;

  [[nodiscard]] size_t num_vertices() const override { return n_; }
  [[nodiscard]] size_t num_edges() const override { return arcs_.size(); }

  // ------------------------------------------------------------------
  // Sequential per-edge primitives (the HDT baseline drives these)
  // ------------------------------------------------------------------

  /// Links u and v (must be in different trees).
  void link(vertex_id u, vertex_id v);
  /// Cuts the tree edge (u, v) (must be present).
  void cut(vertex_id u, vertex_id v);
  using ett_substrate::cut;
  using ett_substrate::link;

  [[nodiscard]] bool has_edge(vertex_id u, vertex_id v) const {
    return arcs_.contains(edge_key(edge{u, v}.canonical()));
  }
  /// Adjusts v's per-vertex counters along the root path.
  void add_counts(vertex_id v, int32_t tree_delta, int32_t nontree_delta);

  /// Some vertex in v's tree with a nonzero tree (resp. non-tree) counter,
  /// or kNoVertex. O(lg n) expected via augmented descent.
  [[nodiscard]] vertex_id find_tree_slot(vertex_id v) const;
  [[nodiscard]] vertex_id find_nontree_slot(vertex_id v) const;

  // ------------------------------------------------------------------
  // ett_substrate surface
  // ------------------------------------------------------------------

  void batch_link(std::span<const edge> links) override;
  void batch_cut(std::span<const edge> cuts) override;
  void batch_add_counts(std::span<const count_delta> deltas) override;

  [[nodiscard]] bool has_edge(edge e) const override {
    return has_edge(e.u, e.v);
  }
  [[nodiscard]] bool connected(vertex_id u, vertex_id v) const override;
  [[nodiscard]] std::vector<bool> batch_connected(
      std::span<const std::pair<vertex_id, vertex_id>> queries)
      const override;

  [[nodiscard]] rep find_rep(vertex_id v) const override;
  [[nodiscard]] std::vector<rep> batch_find_rep(
      std::span<const vertex_id> vs) const override;

  [[nodiscard]] ett_counts component_counts(vertex_id v) const override;
  [[nodiscard]] ett_counts vertex_counts(vertex_id v) const override;

  [[nodiscard]] std::vector<std::pair<vertex_id, uint32_t>> fetch_nontree(
      vertex_id v, uint64_t want) const override;
  [[nodiscard]] std::vector<std::pair<vertex_id, uint32_t>> fetch_tree(
      vertex_id v, uint64_t want) const override;

  [[nodiscard]] std::vector<vertex_id> component_vertices(
      vertex_id v) const override;

  using ett_substrate::for_each_tour_vertex;
  void for_each_tour_vertex(rep r, void (*fn)(void* ctx, vertex_id v),
                            void* ctx) const override;

  /// Structural validation (tests): parent/child coherence, heap order,
  /// aggregate sums, tour well-formedness. Empty string if healthy.
  [[nodiscard]] std::string check_consistency() const override;

  [[nodiscard]] node_pool::stats_snapshot pool_stats() const override {
    return pool_.stats();
  }
  size_t trim_pool(size_t keep_bytes = 0) override {
    return pool_.trim(keep_bytes);
  }
  [[nodiscard]] uint64_t active_vertices() const override {
    return dir_.active_count();
  }
  [[nodiscard]] size_t directory_bytes() const override {
    return dir_.resident_bytes();
  }

 private:
  struct node;
  struct arc_nodes {
    node* fwd = nullptr;
    node* rev = nullptr;
  };

  node* make_node(uint64_t tag);
  /// Pool-allocates a node with an explicit priority (parallel batch paths
  /// draw priorities from a counter range reserved up front, so workers
  /// never touch the shared counter).
  node* make_node_with_priority(uint64_t tag, uint64_t priority);
  void free_node(node* x);

  /// The sentinel node of an active vertex, or nullptr (never touched by
  /// an edge at this level, or reclaimed since).
  [[nodiscard]] node* sentinel(vertex_id v) const {
    node* const* p = dir_.find(v);
    return p == nullptr ? nullptr : *p;
  }
  /// Activates v (building its lone sentinel) on first edge touch.
  /// Sequential-path variant: draws its priority from the shared counter.
  node* ensure_sentinel(vertex_id v);
  /// Parallel-phase variant: the caller reserves a counter range up front
  /// and passes the drawn priority (distinct vertices only, per the batch
  /// partition contract).
  node* ensure_sentinel_with_priority(vertex_id v, uint64_t priority);
  /// Reclaims v's sentinel + slot when its last level-i edge has left
  /// (lone treap root, zero edge counters). Idempotent; call only from
  /// mutation phases, on v's own partition.
  void maybe_release_sentinel(vertex_id v);
  static void update(node* x);
  [[nodiscard]] static node* root_of(node* x);
  /// Merges two treap sequences (all of a before all of b).
  static node* merge(node* a, node* b);
  /// Joins an ordered list of treap segments (nullptr entries allowed) into
  /// one sequence via a balanced divide-and-conquer join reduction.
  static node* join_all(std::span<node* const> segs);
  /// Splits so that x begins the right part. Returns {left, right}.
  static std::pair<node*, node*> split_before(node* x);
  /// Splits so that x ends the left part. Returns {left, right}.
  static std::pair<node*, node*> split_after(node* x);
  /// In-order rank of x within its treap (for arc ordering in cut).
  [[nodiscard]] static size_t rank_of(node* x);
  /// Rotates v's tour so it starts at v's sentinel.
  node* reroot(vertex_id v);

  [[nodiscard]] std::vector<std::pair<vertex_id, uint32_t>> fetch_counted(
      vertex_id v, uint64_t want, bool nontree) const;

  /// Parallel bulk-mutation internals (see treap_ett.cpp for the phase
  /// structure). Each rebuilds the tours touched by one independent group.
  struct link_group_ctx;
  struct cut_mark;
  void link_group(const link_group_ctx& ctx);
  void cut_tree(std::span<cut_mark> marks);
  /// Batches below this size (or a 1-worker pool) take the sequential
  /// split/merge loop; grouping overhead would dominate.
  static constexpr size_t kParallelMutationCutoff = 16;

  /// Scratch buffers reused across bulk-mutation calls. Mutation phases
  /// are exclusive, so reuse is race-free; a deletion stream that
  /// shatters into thousands of small batches would otherwise pay six
  /// vector allocations per batch (the PR-3 "shattered batch" constant).
  struct mutation_scratch {
    std::vector<node*> root_u, root_v;
    link_partition_scratch<node*> part;
    std::vector<arc_nodes> arcs;
    std::vector<uint64_t> keys;
    std::vector<vertex_id> endpoints;
  };
  mutation_scratch scratch_;

  random rng_;
  uint64_t counter_ = 0;
  vertex_id n_;
  phase_concurrent_map<arc_nodes> arcs_; // per canonical edge
  node_pool pool_;  // declared before dir_: chunks are pool storage
  // Sparse per-vertex state: an active vertex's slot holds its (v,v)
  // sentinel node; tourless vertices rep as singleton_rep(v), so
  // activation/deactivation never moves a representative.
  vertex_directory<node*> dir_;
};

}  // namespace bdc
