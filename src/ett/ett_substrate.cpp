#include "ett/ett_substrate.hpp"

#include "ett/blocked_ett.hpp"
#include "ett/euler_tour_tree.hpp"
#include "ett/treap_ett.hpp"

namespace bdc {

const char* to_string(substrate s) {
  switch (s) {
    case substrate::skiplist:
      return "skiplist";
    case substrate::treap:
      return "treap";
    case substrate::blocked:
      return "blocked";
  }
  return "unknown";
}

std::optional<substrate> substrate_from_string(std::string_view name) {
  if (name == "skiplist") return substrate::skiplist;
  if (name == "treap") return substrate::treap;
  if (name == "blocked") return substrate::blocked;
  return std::nullopt;
}

std::unique_ptr<ett_substrate> make_ett(substrate s, vertex_id n,
                                        uint64_t seed) {
  switch (s) {
    case substrate::treap:
      return std::make_unique<treap_ett>(n, seed);
    case substrate::blocked:
      return std::make_unique<blocked_ett>(n, seed);
    case substrate::skiplist:
      break;
  }
  return std::make_unique<euler_tour_forest>(n, seed);
}

}  // namespace bdc
