#include "ett/blocked_ett.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <type_traits>
#include <unordered_set>

#include "ett/link_partition.hpp"
#include "ett/tour_entry.hpp"
#include "parallel/primitives.hpp"
#include "parallel/scheduler.hpp"
#include "sequence/semisort.hpp"

namespace bdc {

/// One packed segment of a tour: up to kBlockCap contiguous entries plus
/// the aggregate counters of the sentinels it holds. Blocks of one tour
/// form a circular doubly-linked list. `owner` is the one field the
/// concurrent-read probe dereferences, so it is atomic: writers relabel
/// it with release stores, readers load it acquire, and the exclusive
/// mutation phase itself reads it relaxed.
struct blocked_ett::block {
  block* prev = nullptr;
  block* next = nullptr;
  std::atomic<tour*> owner{nullptr};
  uint32_t count = 0;
  ett_counts agg;  // sum of slot->own over sentinel entries in this block
  uint64_t tags[kBlockCap];
};

/// Per-splice seam bookkeeping: rebalance candidates and merge-freed
/// blocks. One splice touches at most ~6 seam blocks, and rebalancing a
/// candidate absorbs sub-floor seam blocks plus at most one
/// floor-satisfying neighbor, so 16 slots bound both lists; the assert
/// backstops the bound under the fuzz suites.
struct blocked_ett::seam_blocks {
  block* items[16];
  uint32_t n = 0;
  void push(block* b) {
    assert(n < 16 && "seam block bound exceeded");
    items[n++] = b;
  }
  [[nodiscard]] bool contains(const block* b, uint32_t limit) const {
    for (uint32_t i = 0; i < limit; ++i)
      if (items[i] == b) return true;
    return false;
  }
  [[nodiscard]] bool contains(const block* b) const {
    return contains(b, n);
  }
};

/// Per-component descriptor; its address is the component representative.
struct blocked_ett::tour {
  block* head = nullptr;  // some block of the cycle (iteration start)
  ett_counts agg;         // component-wide sums
  uint64_t nentries = 0;  // 3k - 2 for a k-vertex tree
  uint32_t nblocks = 0;
};

blocked_ett::blocked_ett(vertex_id n, uint64_t /*seed*/)
    : n_(n), arcs_(64), dir_(n, pool_) {}

blocked_ett::~blocked_ett() = default;  // block storage is pool-owned

blocked_ett::block* blocked_ett::new_block(tour* owner) {
  static_assert(sizeof(block) <= node_pool::kMaxBytes);
  // The placement-new (and this plain-ish store) are safe even on
  // recycled memory: with epochs bound, memory only leaves the limbo —
  // and so becomes allocatable again — once no pinned reader can reach
  // its previous incarnation. The block becomes reader-visible only via
  // a later release store into a slot's vloc, which publishes this init.
  block* b = new (pool_.allocate(sizeof(block))) block;
  b->owner.store(owner, std::memory_order_relaxed);
  return b;
}

blocked_ett::tour* blocked_ett::new_tour() {
  static_assert(sizeof(tour) <= node_pool::kMaxBytes);
  return new (pool_.allocate(sizeof(tour))) tour;
}

void blocked_ett::free_block(block* b) {
  static_assert(std::is_trivially_destructible_v<block>);
  pool_.reclaim(static_cast<void*>(b), sizeof(block));
}

void blocked_ett::free_tour(tour* t) {
  static_assert(std::is_trivially_destructible_v<tour>);
  // Tours go through the limbo too: a reader compares descriptor
  // ADDRESSES, so recycling one while a reader is pinned would invite
  // rep-equality ABA across a cut+link pair.
  pool_.reclaim(static_cast<void*>(t), sizeof(tour));
}

blocked_ett::vslot& blocked_ett::ensure_slot(vertex_id v) {
  // The init runs before the slot is published, so a concurrent relaxed
  // reader either misses the vertex entirely (singleton rep) or sees a
  // fully initialized slot.
  return dir_.activate(v, [](vslot& s) {
    s.own = ett_counts{1, 0, 0};
    s.vloc.store(nullptr, std::memory_order_relaxed);
  });
}

const ett_counts& blocked_ett::own_of(vertex_id v) const {
  vslot* s = slot(v);
  assert(s != nullptr && "tour sentinel without a directory slot");
  return s->own;
}

void blocked_ett::maybe_release_slot(vertex_id v, vslot& s) {
  if (s.own.tree_edges == 0 && s.own.nontree_edges == 0 &&
      s.vloc.load(std::memory_order_relaxed) == nullptr)
    dir_.deactivate(v);
}

blocked_ett::tour* blocked_ett::tour_of(vertex_id v) const {
  vslot* s = slot(v);
  block* b = s == nullptr ? nullptr : s->vloc.load(std::memory_order_relaxed);
  return b == nullptr ? nullptr : b->owner.load(std::memory_order_relaxed);
}

blocked_ett::tour* blocked_ett::materialize(vertex_id v) {
  vslot& s = ensure_slot(v);
  assert(s.vloc.load(std::memory_order_relaxed) == nullptr);
  tour* t = new_tour();
  block* b = new_block(t);
  b->prev = b->next = b;
  b->tags[0] = static_cast<uint64_t>(v);
  b->count = 1;
  b->agg = s.own;
  t->head = b;
  t->agg = s.own;
  t->nentries = 1;
  t->nblocks = 1;
  s.vloc.store(b, std::memory_order_release);
  return t;
}

uint32_t blocked_ett::index_in_block(const block* b, uint64_t tag) {
  for (uint32_t i = 0; i < b->count; ++i)
    if (b->tags[i] == tag) return i;
  assert(false && "entry not in its registered block");
  return 0;
}

void blocked_ett::recompute_agg(block* b) const {
  ett_counts agg{};
  for (uint32_t i = 0; i < b->count; ++i)
    if (!is_arc_tag(b->tags[i]))
      agg = agg + own_of(static_cast<vertex_id>(b->tags[i]));
  b->agg = agg;
}

void blocked_ett::reregister(block* b) {
  for (uint32_t i = 0; i < b->count; ++i) {
    uint64_t tag = b->tags[i];
    if (!is_arc_tag(tag)) {
      vslot* s = slot(static_cast<vertex_id>(tag));
      assert(s != nullptr && "tour sentinel without a directory slot");
      s->vloc.store(b, std::memory_order_release);
      continue;
    }
    edge e{arc_tag_tail(tag), arc_tag_head(tag)};
    edge c = e.canonical();
    arc_loc* loc = arcs_.find(edge_key(c));
    assert(loc != nullptr && "arc entry for an unregistered edge");
    (e.u == c.u ? loc->fwd : loc->rev) = b;
  }
}

blocked_ett::block* blocked_ett::split_at(block* b, uint32_t i) {
  assert(i <= b->count);
  if (i == 0) return b;
  if (i == b->count) return b->next;
  tour* t = b->owner.load(std::memory_order_relaxed);
  block* nb = new_block(t);
  nb->count = b->count - i;
  std::memcpy(nb->tags, b->tags + i, nb->count * sizeof(uint64_t));
  b->count = i;
  nb->next = b->next;
  nb->prev = b;
  b->next->prev = nb;
  b->next = nb;
  ++t->nblocks;
  recompute_agg(b);
  recompute_agg(nb);
  reregister(nb);
  return nb;
}

void blocked_ett::append_entries(block* b, const uint64_t* tags, uint32_t m) {
  assert(b->count + m <= kBlockCap);
  std::memcpy(b->tags + b->count, tags, m * sizeof(uint64_t));
  b->count += m;
  for (uint32_t i = 0; i < m; ++i)
    if (!is_arc_tag(tags[i]))
      b->agg = b->agg + own_of(static_cast<vertex_id>(tags[i]));
}

void blocked_ett::prepend_entry(block* b, uint64_t tag) {
  assert(b->count < kBlockCap);
  std::memmove(b->tags + 1, b->tags, b->count * sizeof(uint64_t));
  b->tags[0] = tag;
  ++b->count;
  if (!is_arc_tag(tag)) b->agg = b->agg + own_of(static_cast<vertex_id>(tag));
}

void blocked_ett::rebalance(block* b, seam_blocks& dead) {
  tour* t = b->owner.load(std::memory_order_relaxed);
  while (t->nblocks > 1 && b->count < kMinFill) {
    block* nb = b->next;
    assert(nb != b);
    if (b->count + nb->count <= kBlockCap) {
      // Merge nb into b wholesale.
      std::memcpy(b->tags + b->count, nb->tags,
                  nb->count * sizeof(uint64_t));
      b->count += nb->count;
      b->agg = b->agg + nb->agg;
      b->next = nb->next;
      nb->next->prev = b;
      --t->nblocks;
      if (t->head == nb) t->head = b;
      // Entries that lived in nb now live in b.
      reregister(b);
      dead.push(nb);
      free_block(nb);
    } else {
      // Borrow from the front of nb so both end up at least half full.
      uint32_t total = b->count + nb->count;
      uint32_t take = total / 2 - b->count;
      assert(take > 0 && take < nb->count);
      std::memcpy(b->tags + b->count, nb->tags, take * sizeof(uint64_t));
      std::memmove(nb->tags, nb->tags + take,
                   (nb->count - take) * sizeof(uint64_t));
      b->count += take;
      nb->count -= take;
      recompute_agg(b);
      recompute_agg(nb);
      reregister(b);
      return;
    }
  }
}

void blocked_ett::rebalance_candidates(const seam_blocks& cands,
                                       seam_blocks& dead) {
  for (uint32_t i = 0; i < cands.n; ++i) {
    block* c = cands.items[i];
    if (cands.contains(c, i)) continue;  // duplicate candidate
    if (dead.contains(c)) continue;  // freed by an earlier merge
    rebalance(c, dead);
  }
}

void blocked_ett::set_arc_blocks(edge e, block* fwd_holder,
                                 block* rev_holder) {
  // fwd/rev are oriented by the canonical edge; e is (tail, head) of the
  // arc placed in fwd_holder.
  edge c = e.canonical();
  arc_loc* loc = arcs_.find(edge_key(c));
  assert(loc != nullptr && "arc placeholder missing");
  if (e.u == c.u) {
    loc->fwd = fwd_holder;
    loc->rev = rev_holder;
  } else {
    loc->fwd = rev_holder;
    loc->rev = fwd_holder;
  }
}

void blocked_ett::collapse_singleton(tour* t, seam_blocks& dead) {
  assert(t->nentries == 1 && t->nblocks == 1);
  block* b = t->head;
  assert(b->count == 1 && !is_arc_tag(b->tags[0]));
  const vertex_id v = static_cast<vertex_id>(b->tags[0]);
  vslot* s = slot(v);
  assert(s != nullptr);
  if (s == nullptr) return;  // unreachable: v's tour entry implies a slot
  s->vloc.store(nullptr, std::memory_order_release);
  dead.push(b);
  free_block(b);
  free_tour(t);
  // Last level-i edge gone and no counters left: reclaim the slot (the
  // vertex reps as singleton_rep(v) from here on either way).
  maybe_release_slot(v, *s);
}

// ---------------------------------------------------------------------
// Link: splice the guest's cycle (rotated to start at its sentinel) plus
// the two arc entries into the host's cycle right after the host's
// sentinel. The larger side hosts, so owner relabelling touches only the
// smaller side's blocks.
// ---------------------------------------------------------------------

void blocked_ett::link_one(vertex_id u, vertex_id v) {
  tour* tu = tour_of(u);
  tour* tv = tour_of(v);
  uint64_t su = tu == nullptr ? 1 : tu->agg.vertices;
  uint64_t sv = tv == nullptr ? 1 : tv->agg.vertices;
  vertex_id h = u, g = v;
  tour* th = tu;
  tour* tg = tv;
  if (sv > su) {
    std::swap(h, g);
    std::swap(th, tg);
  }
  if (th == nullptr) th = materialize(h);
  const uint64_t hg = arc_tag(h, g);
  const uint64_t gh = arc_tag(g, h);

  block* bh = slot(h)->vloc.load(std::memory_order_relaxed);
  block* right = split_at(bh, index_in_block(bh, h) + 1);

  seam_blocks dead;
  seam_blocks cands;
  cands.push(bh);
  cands.push(right);

  if (tg == nullptr) {
    // Guest is a singleton: activate it (links must activate even when no
    // level-i adjacency counters exist — F_i carries tree edges of lower
    // levels too) and splice the inline triple [h->g, s_g, g->h].
    vslot& sg = ensure_slot(g);
    const uint64_t triple[3] = {hg, static_cast<uint64_t>(g), gh};
    block* holder;
    if (bh->count + 3 <= kBlockCap) {
      holder = bh;
      append_entries(bh, triple, 3);
    } else {
      holder = new_block(th);
      append_entries(holder, triple, 3);
      holder->prev = bh;
      holder->next = right;
      bh->next = holder;
      right->prev = holder;
      ++th->nblocks;
      cands.push(holder);
    }
    sg.vloc.store(holder, std::memory_order_release);
    set_arc_blocks(edge{h, g}, holder, holder);
    th->agg = th->agg + sg.own;
    th->nentries += 3;
  } else {
    // Rotate the guest cycle so it starts at g's sentinel.
    block* bg = slot(g)->vloc.load(std::memory_order_relaxed);
    block* gstart = split_at(bg, index_in_block(bg, g));
    block* gend = gstart->prev;
    // Relabel the guest's blocks while the cycle is still closed.
    for (block* cur = gstart;;) {
      cur->owner.store(th, std::memory_order_release);
      cur = cur->next;
      if (cur == gstart) break;
    }
    // Place the two arc entries adjacent to the splice seams.
    block* a1 = nullptr;  // holds h->g unless packed into bh / gstart
    block* hg_holder;
    if (bh->count < kBlockCap) {
      append_entries(bh, &hg, 1);
      hg_holder = bh;
    } else if (gstart->count < kBlockCap) {
      prepend_entry(gstart, hg);
      hg_holder = gstart;
    } else {
      a1 = new_block(th);
      append_entries(a1, &hg, 1);
      hg_holder = a1;
      cands.push(a1);
    }
    block* a2 = nullptr;  // holds g->h unless packed into gend
    block* gh_holder;
    if (gend->count < kBlockCap) {
      append_entries(gend, &gh, 1);
      gh_holder = gend;
    } else {
      a2 = new_block(th);
      append_entries(a2, &gh, 1);
      gh_holder = a2;
      cands.push(a2);
    }
    // Splice: bh -> (a1?) -> gstart .. gend -> (a2?) -> right.
    block* first = a1 != nullptr ? a1 : gstart;
    block* last = a2 != nullptr ? a2 : gend;
    if (a1 != nullptr) {
      a1->next = gstart;
      gstart->prev = a1;
    }
    if (a2 != nullptr) {
      gend->next = a2;
      a2->prev = gend;
    }
    bh->next = first;
    first->prev = bh;
    last->next = right;
    right->prev = last;
    set_arc_blocks(edge{h, g}, hg_holder, gh_holder);
    th->agg = th->agg + tg->agg;
    th->nentries += tg->nentries + 2;
    th->nblocks += tg->nblocks + (a1 != nullptr) + (a2 != nullptr);
    free_tour(tg);
    cands.push(gstart);
    cands.push(gend);
  }

  rebalance_candidates(cands, dead);
}

// ---------------------------------------------------------------------
// Cut: isolate the edge's two arc entries at block boundaries, unlink
// them, and re-close the two complementary arcs of the cycle into
// separate tours. The segment strictly between (u->v) and (v->u) is
// exactly the tour of v's subtree.
// ---------------------------------------------------------------------

void blocked_ett::cut_one(edge e) {
  const uint64_t key = edge_key(e.canonical());
  arc_loc* loc = arcs_.find(key);
  assert(loc != nullptr && "cut: edge not in forest");
  const uint64_t fwd_tag = arc_tag(e.canonical().u, e.canonical().v);
  const uint64_t rev_tag = arc_tag(e.canonical().v, e.canonical().u);

  // Isolate each arc in a single-entry block. Splits re-register moved
  // entries, so re-read the location before isolating the second arc.
  block* bf = loc->fwd;
  uint32_t fi = index_in_block(bf, fwd_tag);
  split_at(bf, fi + 1);
  block* af = split_at(bf, fi);
  assert(af->count == 1 && af->tags[0] == fwd_tag);

  block* br = loc->rev;
  uint32_t ri = index_in_block(br, rev_tag);
  split_at(br, ri + 1);
  block* ar = split_at(br, ri);
  assert(ar->count == 1 && ar->tags[0] == rev_tag);

  tour* t = af->owner.load(std::memory_order_relaxed);
  assert(ar->owner.load(std::memory_order_relaxed) == t);
  // The subtree side (between fwd and rev) and the remainder are both
  // non-empty: each contains at least one sentinel.
  block* s2h = af->next;
  block* s2t = ar->prev;
  block* s1h = ar->next;
  block* s1t = af->prev;
  assert(s2h != ar && s1h != af);

  // Close the two cycles.
  s2t->next = s2h;
  s2h->prev = s2t;
  s1t->next = s1h;
  s1h->prev = s1t;

  // The subtree side becomes a new tour.
  tour* t2 = new_tour();
  t2->head = s2h;
  for (block* cur = s2h;;) {
    cur->owner.store(t2, std::memory_order_release);
    t2->agg = t2->agg + cur->agg;
    t2->nentries += cur->count;
    ++t2->nblocks;
    cur = cur->next;
    if (cur == s2h) break;
  }
  t->head = s1h;
  t->agg = t->agg - t2->agg;
  t->nentries -= t2->nentries + 2;
  t->nblocks -= t2->nblocks + 2;

  seam_blocks dead;
  free_block(af);
  free_block(ar);
  dead.push(af);
  dead.push(ar);

  // Collapse one-vertex remainders to implicit singletons; rebalance the
  // seam blocks of the survivors.
  seam_blocks cands;
  if (t2->nentries == 1) {
    collapse_singleton(t2, dead);
  } else {
    cands.push(s2h);
    cands.push(s2t);
  }
  if (t->nentries == 1) {
    collapse_singleton(t, dead);
  } else {
    cands.push(s1h);
    cands.push(s1t);
  }
  rebalance_candidates(cands, dead);
}

void blocked_ett::add_counts_one(const count_delta& d) {
  // First positive delta on an untouched vertex activates it; a delta
  // that zeroes the counters of a tourless vertex reclaims the slot.
  vslot& s = ensure_slot(d.v);
  ett_counts& own = s.own;
  assert(static_cast<int64_t>(own.tree_edges) + d.tree_delta >= 0);
  assert(static_cast<int64_t>(own.nontree_edges) + d.nontree_delta >= 0);
  own.tree_edges = static_cast<uint32_t>(
      static_cast<int64_t>(own.tree_edges) + d.tree_delta);
  own.nontree_edges = static_cast<uint32_t>(
      static_cast<int64_t>(own.nontree_edges) + d.nontree_delta);
  if (block* b = s.vloc.load(std::memory_order_relaxed); b != nullptr) {
    auto apply = [&](ett_counts& c) {
      c.tree_edges = static_cast<uint32_t>(
          static_cast<int64_t>(c.tree_edges) + d.tree_delta);
      c.nontree_edges = static_cast<uint32_t>(
          static_cast<int64_t>(c.nontree_edges) + d.nontree_delta);
    };
    apply(b->agg);
    apply(b->owner.load(std::memory_order_relaxed)->agg);
  } else {
    maybe_release_slot(d.v, s);
  }
}

// ---------------------------------------------------------------------
// Batch surface. Mutations follow the treap substrate's phase structure:
// read-only resolution of the touched tours, a partition of the batch
// into groups over disjoint tours, then concurrent per-group sequential
// splices. Arc-map phase safety: placeholders for new edges are inserted
// in a dedicated phase up front, group processing only reads slots and
// updates values of its own keys, and cut erasures happen in one batch
// after every group has finished.
// ---------------------------------------------------------------------

void blocked_ett::batch_link(std::span<const edge> links) {
  size_t k = links.size();
  if (k == 0) return;
  arcs_.reserve_for(k);
  if (k < kParallelMutationCutoff || num_workers() <= 1) {
    for (const edge& e : links) {
      arcs_.insert(edge_key(e.canonical()), arc_loc{});
      link_one(e.u, e.v);
    }
    return;
  }

  // Phase 1 (read-only, parallel): resolve each endpoint's component rep.
  auto& rep_u = scratch_.rep_u;
  auto& rep_v = scratch_.rep_v;
  rep_u.resize(k);
  rep_v.resize(k);
  parallel_for(0, k, [&](size_t i) {
    rep_u[i] = reinterpret_cast<uintptr_t>(find_rep(links[i].u));
    rep_v[i] = reinterpret_cast<uintptr_t>(find_rep(links[i].v));
  });

  // Phase 2 (parallel): arc-map placeholders for the new edges (inserts
  // of distinct keys are phase-safe).
  parallel_for(0, k, [&](size_t i) {
    arcs_.insert(edge_key(links[i].canonical()), arc_loc{});
  });

  // Phase 3: partition the batch into groups whose merged components
  // are disjoint (ett/link_partition.hpp — shared with the treap
  // substrate). All-distinct fast path: each link is a singleton group.
  auto part = partition_links<uintptr_t>(rep_u, rep_v, scratch_.part);
  if (part.all_distinct) {
    parallel_for(
        0, k, [&](size_t i) { link_one(links[i].u, links[i].v); }, 1);
    return;
  }
  auto& groups = part.groups;

  // Phase 4 (parallel over groups): sequential splices within a group.
  parallel_for(
      0, groups.num_groups(),
      [&](size_t gi) {
        for (uint32_t j = groups.group_starts[gi];
             j < groups.group_starts[gi + 1]; ++j) {
          const edge& e = links[groups.records[j].second];
          link_one(e.u, e.v);
        }
      },
      1);
}

void blocked_ett::batch_cut(std::span<const edge> cuts) {
  size_t c = cuts.size();
  if (c == 0) return;
  auto& keys = scratch_.keys;
  keys.resize(c);
  if (c < kParallelMutationCutoff || num_workers() <= 1) {
    for (size_t i = 0; i < c; ++i) {
      keys[i] = edge_key(cuts[i].canonical());
      cut_one(cuts[i]);
    }
    arcs_.erase_batch(keys);
    dir_.sweep_pending();
    return;
  }

  // Phase 1 (read-only, parallel): resolve each cut's tour.
  std::vector<std::pair<uint64_t, uint32_t>> keyed(c);
  parallel_for(0, c, [&](size_t i) {
    keys[i] = edge_key(cuts[i].canonical());
    const arc_loc* loc = arcs_.find(keys[i]);
    assert(loc != nullptr && "batch_cut: edge not in forest");
    keyed[i] = {static_cast<uint64_t>(reinterpret_cast<uintptr_t>(
                    loc->fwd->owner.load(std::memory_order_relaxed))),
                static_cast<uint32_t>(i)};
  });

  // Phase 2: group by tour; disjoint tours mutate concurrently.
  auto groups = group_by_key(std::move(keyed));
  parallel_for(
      0, groups.num_groups(),
      [&](size_t gi) {
        for (uint32_t j = groups.group_starts[gi];
             j < groups.group_starts[gi + 1]; ++j)
          cut_one(cuts[groups.records[j].second]);
      },
      1);

  // Phase 3: drop the arc records in one erase phase, then free the
  // directory chunks the groups emptied (deferred: a group running in
  // parallel with the deactivation may have been activating a sibling
  // slot of the same chunk).
  arcs_.erase_batch(keys);
  dir_.sweep_pending();
}

void blocked_ett::batch_add_counts(std::span<const count_delta> deltas) {
  size_t k = deltas.size();
  if (k < kParallelMutationCutoff || num_workers() <= 1) {
    for (const count_delta& d : deltas) add_counts_one(d);
    dir_.sweep_pending();
    return;
  }
  // Deltas on one tour contend on the block/tour aggregates; group by
  // component rep (singletons get unique reps) and fan out over groups.
  std::vector<std::pair<uint64_t, uint32_t>> keyed(k);
  parallel_for(0, k, [&](size_t i) {
    keyed[i] = {
        static_cast<uint64_t>(reinterpret_cast<uintptr_t>(find_rep(
            deltas[i].v))),
        static_cast<uint32_t>(i)};
  });
  auto groups = group_by_key(std::move(keyed));
  parallel_for(
      0, groups.num_groups(),
      [&](size_t gi) {
        for (uint32_t j = groups.group_starts[gi];
             j < groups.group_starts[gi + 1]; ++j)
          add_counts_one(deltas[groups.records[j].second]);
      },
      1);
  dir_.sweep_pending();
}

// ---------------------------------------------------------------------
// Queries.
// ---------------------------------------------------------------------

ett_substrate::rep blocked_ett::find_rep(vertex_id v) const {
  vslot* s = slot(v);
  block* b = s == nullptr ? nullptr : s->vloc.load(std::memory_order_relaxed);
  return b == nullptr
             ? singleton_rep(v)
             : static_cast<rep>(b->owner.load(std::memory_order_relaxed));
}

bool blocked_ett::connected(vertex_id u, vertex_id v) const {
  return find_rep(u) == find_rep(v);
}

std::optional<bool> blocked_ett::connected_relaxed(vertex_id u,
                                                   vertex_id v) const {
  // Acquire pairs with the writers' release stores: if any load observes
  // a mid-batch store, the caller's seqlock revalidation is guaranteed
  // to observe the odd version and discard the answer; if all observe
  // quiescent values, the acquire ordering makes the dereferenced
  // chunk's and block's fields (set before the publishing store) fully
  // visible. Chunks/blocks/tours reached through stale values are kept
  // mapped by the epoch limbo for as long as the caller's guard is
  // pinned; a vertex whose slot is absent or tourless reps as the tagged
  // singleton value, which no directory transition ever changes.
  auto probe = [this](vertex_id x) -> rep {
    const vslot* s = dir_.find(x);
    const block* b =
        s == nullptr ? nullptr : s->vloc.load(std::memory_order_acquire);
    return b == nullptr
               ? singleton_rep(x)
               : static_cast<rep>(b->owner.load(std::memory_order_acquire));
  };
  return probe(u) == probe(v);
}

std::vector<bool> blocked_ett::batch_connected(
    std::span<const std::pair<vertex_id, vertex_id>> queries) const {
  std::vector<uint8_t> bits(queries.size());
  parallel_for(0, queries.size(), [&](size_t i) {
    bits[i] = connected(queries[i].first, queries[i].second) ? 1 : 0;
  });
  return std::vector<bool>(bits.begin(), bits.end());
}

std::vector<ett_substrate::rep> blocked_ett::batch_find_rep(
    std::span<const vertex_id> vs) const {
  std::vector<rep> out(vs.size());
  parallel_for(0, vs.size(), [&](size_t i) { out[i] = find_rep(vs[i]); });
  return out;
}

ett_counts blocked_ett::component_counts(vertex_id v) const {
  vslot* s = slot(v);
  if (s == nullptr) return ett_counts{1, 0, 0};  // never touched: singleton
  block* b = s->vloc.load(std::memory_order_relaxed);
  return b == nullptr ? s->own
                      : b->owner.load(std::memory_order_relaxed)->agg;
}

ett_counts blocked_ett::vertex_counts(vertex_id v) const {
  vslot* s = slot(v);
  return s == nullptr ? ett_counts{1, 0, 0} : s->own;
}

std::vector<std::pair<vertex_id, uint32_t>> blocked_ett::fetch_counted(
    vertex_id v, uint64_t want, bool nontree) const {
  std::vector<std::pair<vertex_id, uint32_t>> out;
  if (want == 0) return out;
  vslot* s = slot(v);
  block* b0 = s == nullptr ? nullptr : s->vloc.load(std::memory_order_relaxed);
  if (b0 == nullptr) {  // singleton component (inactive: zero counters)
    uint64_t own = s == nullptr ? 0 : slot_count(s->own, nontree);
    if (own > 0)
      out.emplace_back(v, static_cast<uint32_t>(std::min(own, want)));
    return out;
  }
  // Stream the cycle in tour order, skipping blocks whose aggregate holds
  // no slots of the requested kind.
  uint64_t left = want;
  block* start = b0->owner.load(std::memory_order_relaxed)->head;
  for (block* cur = start; left > 0;) {
    if (slot_count(cur->agg, nontree) > 0) {
      for (uint32_t i = 0; i < cur->count && left > 0; ++i) {
        uint64_t tag = cur->tags[i];
        if (is_arc_tag(tag)) continue;
        uint64_t own = slot_count(own_of(static_cast<vertex_id>(tag)),
                                  nontree);
        if (own == 0) continue;
        uint64_t take = std::min(own, left);
        out.emplace_back(static_cast<vertex_id>(tag),
                         static_cast<uint32_t>(take));
        left -= take;
      }
    }
    cur = cur->next;
    if (cur == start) break;
  }
  return out;
}

std::vector<std::pair<vertex_id, uint32_t>> blocked_ett::fetch_nontree(
    vertex_id v, uint64_t want) const {
  return fetch_counted(v, want, /*nontree=*/true);
}

std::vector<std::pair<vertex_id, uint32_t>> blocked_ett::fetch_tree(
    vertex_id v, uint64_t want) const {
  return fetch_counted(v, want, /*nontree=*/false);
}

std::vector<vertex_id> blocked_ett::component_vertices(vertex_id v) const {
  vslot* s = slot(v);
  block* b0 = s == nullptr ? nullptr : s->vloc.load(std::memory_order_relaxed);
  if (b0 == nullptr) return {v};
  tour* t = b0->owner.load(std::memory_order_relaxed);
  std::vector<vertex_id> out;
  out.reserve(t->agg.vertices);
  block* start = t->head;
  for (block* cur = start;;) {
    for (uint32_t i = 0; i < cur->count; ++i)
      if (!is_arc_tag(cur->tags[i]))
        out.push_back(static_cast<vertex_id>(cur->tags[i]));
    cur = cur->next;
    if (cur == start) break;
  }
  return out;
}

void blocked_ett::for_each_tour_vertex(rep r, void (*fn)(void*, vertex_id),
                                       void* ctx) const {
  // A tourless vertex reps as the tagged singleton value; decode it.
  // Every other representative is a tour descriptor: stream its packed
  // block chain.
  if (is_singleton_rep(r)) {
    fn(ctx, singleton_rep_vertex(r));
    return;
  }
  const tour* t = static_cast<const tour*>(r);
  const block* start = t->head;
  for (const block* cur = start;;) {
    for (uint32_t i = 0; i < cur->count; ++i)
      if (!is_arc_tag(cur->tags[i]))
        fn(ctx, static_cast<vertex_id>(cur->tags[i]));
    cur = cur->next;
    if (cur == start) break;
  }
}

// ---------------------------------------------------------------------
// Validation.
// ---------------------------------------------------------------------

std::string blocked_ett::check_consistency() const {
  // Directory invariants first: chunk occupancy bookkeeping, then the
  // activation contract — a slot exists iff some level-i edge still
  // touches its vertex (a tourless slot with zero edge counters is an
  // activation leak: maybe_release_slot should have reclaimed it).
  if (std::string err = dir_.check_consistency(); !err.empty()) return err;
  std::vector<std::pair<vertex_id, const vslot*>> active;
  active.reserve(dir_.active_count());
  dir_.for_each_active(
      [&](vertex_id v, const vslot& s) { active.emplace_back(v, &s); });

  std::unordered_set<const tour*> seen;
  size_t reachable_arcs = 0;
  for (auto [v, s] : active) {
    if (s->own.vertices != 1) return "per-vertex counter lost its vertex";
    block* b0 = s->vloc.load(std::memory_order_relaxed);
    if (b0 == nullptr) {
      if (s->own.tree_edges == 0 && s->own.nontree_edges == 0)
        return "activation leak: tourless slot with zero edge counters";
      continue;  // singleton with non-tree edges only
    }
    const tour* t = b0->owner.load(std::memory_order_relaxed);
    if (t == nullptr) return "block without owner";
    if (!seen.insert(t).second) continue;

    // Walk the cycle once: chain coherence, occupancy, aggregates.
    ett_counts total{};
    uint64_t entries = 0;
    uint32_t blocks = 0;
    std::vector<uint64_t> tags;
    const block* start = t->head;
    if (start == nullptr) return "tour without head block";
    for (const block* cur = start;;) {
      if (cur->owner.load(std::memory_order_relaxed) != t)
        return "block owner mismatch";
      if (cur->next->prev != cur || cur->prev->next != cur)
        return "block chain broken";
      if (cur->count == 0 || cur->count > kBlockCap)
        return "block count out of range";
      ett_counts agg{};
      for (uint32_t i = 0; i < cur->count; ++i) {
        uint64_t tag = cur->tags[i];
        if (!is_arc_tag(tag)) {
          const vslot* st = slot(static_cast<vertex_id>(tag));
          if (st == nullptr) return "tour sentinel for an inactive vertex";
          agg = agg + st->own;
        }
        tags.push_back(tag);
      }
      if (!(agg == cur->agg)) return "block aggregate mismatch";
      total = total + agg;
      entries += cur->count;
      ++blocks;
      cur = cur->next;
      if (cur == start) break;
    }
    if (blocks != t->nblocks) return "tour block count mismatch";
    if (entries != t->nentries) return "tour entry count mismatch";
    if (!(total == t->agg)) return "tour aggregate mismatch";
    if (entries != 3 * static_cast<uint64_t>(total.vertices) - 2)
      return "tour length mismatch";
    if (blocks > 1) {
      for (const block* cur = start;;) {
        if (cur->count < kMinFill) return "block occupancy below floor";
        cur = cur->next;
        if (cur == start) break;
      }
    }

    // Tour orientation: the packed sequence must be a closed Euler walk,
    // every sentinel registered in vloc_, every arc registered (with this
    // block) in the arc map.
    for (size_t i = 0; i < tags.size(); ++i) {
      uint64_t tag = tags[i];
      uint64_t next = tags[(i + 1) % tags.size()];
      if (tag_head(tag) != tag_tail(next)) {
        return "tour orientation broken at position " + std::to_string(i) +
               ": " + std::to_string(tag_tail(tag)) + "->" +
               std::to_string(tag_head(tag)) + " then " +
               std::to_string(tag_tail(next)) + "->" +
               std::to_string(tag_head(next));
      }
      if (!is_arc_tag(tag)) {
        vertex_id x = static_cast<vertex_id>(tag);
        if (x >= n_) return "sentinel for an unknown vertex";
        // Registration is checked block-by-block below via the slots.
        continue;
      }
      ++reachable_arcs;
      edge e{arc_tag_tail(tag), arc_tag_head(tag)};
      const arc_loc* loc = arcs_.find(edge_key(e.canonical()));
      if (loc == nullptr) return "arc entry for an unregistered edge";
    }
    // Slot registration: each sentinel's registered block contains it.
    for (const block* cur = start;;) {
      for (uint32_t i = 0; i < cur->count; ++i) {
        uint64_t tag = cur->tags[i];
        if (is_arc_tag(tag)) continue;
        const vslot* st = slot(static_cast<vertex_id>(tag));
        if (st == nullptr || st->vloc.load(std::memory_order_relaxed) != cur)
          return "sentinel registered in the wrong block";
      }
      cur = cur->next;
      if (cur == start) break;
    }
  }

  // Every registered arc pair must be reachable and point at blocks that
  // really contain the arcs.
  std::string err;
  for (auto& [key, loc] : arcs_.entries()) {
    edge c = edge_from_key(key);
    uint64_t fwd = arc_tag(c.u, c.v);
    uint64_t rev = arc_tag(c.v, c.u);
    if (loc.fwd == nullptr || loc.rev == nullptr)
      return "arc record with no block";
    if (!seen.count(loc.fwd->owner.load(std::memory_order_relaxed)) ||
        !seen.count(loc.rev->owner.load(std::memory_order_relaxed)))
      return "arc-map block not reachable from any sentinel";
    bool found_f = false, found_r = false;
    for (uint32_t i = 0; i < loc.fwd->count; ++i)
      if (loc.fwd->tags[i] == fwd) found_f = true;
    for (uint32_t i = 0; i < loc.rev->count; ++i)
      if (loc.rev->tags[i] == rev) found_r = true;
    if (!found_f || !found_r) return "arc registered in the wrong block";
  }
  if (reachable_arcs != 2 * arcs_.size())
    return "arc entry count disagrees with the arc map";
  return "";
}

blocked_ett::block_stats blocked_ett::debug_block_stats() const {
  block_stats s;
  s.min_fill = kBlockCap;
  std::unordered_set<const tour*> seen;
  std::vector<const tour*> tours;
  dir_.for_each_active([&](vertex_id, const vslot& vs) {
    block* b0 = vs.vloc.load(std::memory_order_relaxed);
    if (b0 == nullptr) return;
    const tour* t = b0->owner.load(std::memory_order_relaxed);
    if (seen.insert(t).second) tours.push_back(t);
  });
  for (const tour* t : tours) {
    ++s.tours;
    const block* start = t->head;
    for (const block* cur = start;;) {
      ++s.blocks;
      s.entries += cur->count;
      if (t->nblocks > 1) {
        s.min_fill = std::min(s.min_fill, cur->count);
        s.max_fill = std::max(s.max_fill, cur->count);
      }
      cur = cur->next;
      if (cur == start) break;
    }
  }
  if (s.blocks == 0) s.min_fill = 0;
  return s;
}

}  // namespace bdc
