// The augmented value carried by every Euler-tour-tree node (paper §2.2
// "Implementation and Cost" and Appendix 9): per-component counts of
// vertices, of incident tree edges whose level equals the forest's level,
// and of incident non-tree edges at that level. Edge counts are maintained
// on vertex nodes (mirroring the adjacency lists), so each edge is counted
// once per endpoint, i.e. twice per component.
#pragma once

#include <cstdint>

namespace bdc {

struct ett_counts {
  uint32_t vertices = 0;
  uint32_t tree_edges = 0;     // level-i tree edges incident, by endpoint
  uint32_t nontree_edges = 0;  // level-i non-tree edges incident, by endpoint

  friend ett_counts operator+(const ett_counts& a, const ett_counts& b) {
    return {a.vertices + b.vertices, a.tree_edges + b.tree_edges,
            a.nontree_edges + b.nontree_edges};
  }
  /// Componentwise difference; the caller guarantees a >= b (used when a
  /// tour split carves a sub-tour's aggregate out of its parent's).
  friend ett_counts operator-(const ett_counts& a, const ett_counts& b) {
    return {a.vertices - b.vertices, a.tree_edges - b.tree_edges,
            a.nontree_edges - b.nontree_edges};
  }
  friend bool operator==(const ett_counts&, const ett_counts&) = default;
};

/// The tree or non-tree slot total of a counter set (the HDT fetch and
/// search primitives are parameterized on which kind they walk).
[[nodiscard]] constexpr uint64_t slot_count(const ett_counts& c,
                                            bool nontree) {
  return nontree ? c.nontree_edges : c.tree_edges;
}

}  // namespace bdc
