// The packed 64-bit tour-entry encoding shared by the treap and blocked
// substrates: a sentinel entry is the bare vertex id; a directed arc
// (t, h) sets the top bit and packs the tail above the head. The layout
// caps vertex ids at 2^31 - 1: the static_assert fires if vertex_id
// widens past 32 bits, and arc_tag asserts the 31-bit range per id at
// runtime (a vertex id with bit 31 set would silently alias another
// arc's tag otherwise — ids in [2^31, 2^32) fit vertex_id but not the
// tag fields).
#pragma once

#include <cassert>
#include <cstdint>

#include "util/types.hpp"

namespace bdc {

inline constexpr uint64_t kArcTagBit = uint64_t{1} << 63;
/// Largest vertex id the packed arc tags can carry.
inline constexpr vertex_id kMaxTourVertex = (vertex_id{1} << 31) - 1;
static_assert(sizeof(vertex_id) <= 4,
              "tour-entry tags pack two vertex ids into 62 bits");

[[nodiscard]] constexpr uint64_t arc_tag(vertex_id t, vertex_id h) {
  assert(t <= kMaxTourVertex && h <= kMaxTourVertex);
  return kArcTagBit | (static_cast<uint64_t>(t) << 31) |
         static_cast<uint64_t>(h);
}
[[nodiscard]] constexpr bool is_arc_tag(uint64_t tag) {
  return (tag & kArcTagBit) != 0;
}
[[nodiscard]] constexpr vertex_id arc_tag_tail(uint64_t tag) {
  return static_cast<vertex_id>((tag >> 31) & 0xffffffffull);
}
[[nodiscard]] constexpr vertex_id arc_tag_head(uint64_t tag) {
  return static_cast<vertex_id>(tag & 0x7fffffffull);
}
/// Vertex at which the tour enters (tail) / leaves (head) an entry;
/// sentinels enter and leave at their own vertex.
[[nodiscard]] constexpr vertex_id tag_tail(uint64_t tag) {
  return is_arc_tag(tag) ? arc_tag_tail(tag) : static_cast<vertex_id>(tag);
}
[[nodiscard]] constexpr vertex_id tag_head(uint64_t tag) {
  return is_arc_tag(tag) ? arc_tag_head(tag) : static_cast<vertex_id>(tag);
}

}  // namespace bdc
