// Compile-time contract for the ordered-sequence backend of
// `euler_tour_forest` (the skip-list side of the substrate layer).
//
// The forest's tour algebra (batch_link re-stitching, batch_cut resolution
// chains) is written against a circular sequence structure supporting batch
// splits, level-synchronous batch joins, bottom-up augmentation repair,
// whole-circle sums, canonical representatives, and the first-ℓ collection
// primitive. `ett_sequence` names that contract as a C++20 concept so an
// alternative sequence (e.g. a batch-parallel skip list variant with biased
// heights, or an instrumented shim) can be dropped under the forest and
// verified at compile time; `augmented_skiplist` is the production model.
#pragma once

#include <concepts>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace bdc {

template <typename S, typename Aug>
concept ett_sequence = requires(
    S s, const S cs, typename S::node* n, const Aug& a, uint64_t want,
    std::span<typename S::node* const> cuts,
    std::span<const std::pair<typename S::node*, typename S::node*>> joins,
    std::vector<typename S::node*> dirty,
    std::vector<std::pair<typename S::node*, uint64_t>> out) {
  // Node lifecycle: singleton circles in, recycled storage out.
  { s.create_node(uint64_t{}, a) } -> std::same_as<typename S::node*>;
  s.free_node(n);
  // Batch mutation: sever boundaries, relink circles, repair sums.
  s.batch_split_after(cuts);
  s.batch_join(joins);
  s.batch_repair(std::move(dirty));
  // Augmentation access.
  s.set_value(n, a);
  { cs.value(n) } -> std::convertible_to<const Aug&>;
  { cs.total(n) } -> std::same_as<Aug>;
  // Canonical per-circle representative and tour enumeration.
  { cs.representative(n) } -> std::same_as<typename S::node*>;
  { cs.circle_of(n) } -> std::same_as<std::vector<typename S::node*>>;
  // First-ℓ fetch (Appendix 9): collect bottom nodes covering a prefix of
  // an extracted augmented quantity.
  {
    cs.collect_first(n, want, [](const Aug&) { return uint64_t{0}; }, out)
  } -> std::same_as<uint64_t>;
};

}  // namespace bdc
