// Devirtualized substrate dispatch (ROADMAP "static dispatch variant").
//
// `ett_substrate` is a virtual bridge, which costs an indirect call per
// forest operation — measurable exactly on the hot query paths the paper
// makes cheap (the blocked substrate answers `connected`/`find_rep` with
// O(1) pointer reads, so an indirect call is a large relative overhead).
// `ett_forest` is the value type the level structure actually holds: it
// owns the substrate through the base-class pointer but additionally pins
// a `std::variant` view of the CONCRETE type at materialization time.
// Every forwarder dispatches with `std::visit`, and because all three
// substrates are `final`, the calls inside each visit arm are direct
// (devirtualized, inlinable) member calls.
//
// Callers with per-element loops should hoist the dispatch once around
// the whole loop instead of paying it per element:
//
//   forest.visit([&](auto& f) {            // one dispatch...
//     parallel_for(0, k, [&](size_t i) {
//       out[i] = f.connected(qs[i].first, qs[i].second);  // ...N direct calls
//     });
//   });
//
// The virtual bridge stays available two ways: `bridge()` exposes the
// `ett_substrate&` for cold paths and generic tooling, and constructing
// with `dispatch::virtual_bridge` pins the variant to the base-class
// alternative — every forwarder then degenerates to the old virtual call,
// which is what the A/B benchmarks (`BM_Dispatch*` in bench_substrates)
// and the dispatch-parameterized test suites run against.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "ett/blocked_ett.hpp"
#include "ett/ett_counts.hpp"
#include "ett/ett_substrate.hpp"
#include "ett/euler_tour_tree.hpp"
#include "ett/treap_ett.hpp"
#include "obs/telemetry.hpp"
#include "util/node_pool.hpp"
#include "util/types.hpp"

namespace bdc {

/// How an `ett_forest` routes its calls: through the concrete-type
/// variant (default; devirtualized) or through the `ett_substrate`
/// virtual bridge (escape hatch; also the A/B baseline).
enum class dispatch : uint8_t {
  static_variant,
  virtual_bridge,
};

[[nodiscard]] const char* to_string(dispatch d);
[[nodiscard]] std::optional<dispatch> dispatch_from_string(
    std::string_view name);

class ett_forest {
 public:
  using rep = ett_substrate::rep;
  using count_delta = ett_substrate::count_delta;

  /// Materializes an empty n-vertex forest over substrate `s`, pinning
  /// the dispatch mode for the forest's lifetime.
  ett_forest(bdc::substrate s, vertex_id n, uint64_t seed,
             bdc::dispatch d = dispatch::static_variant);

  ett_forest(ett_forest&&) noexcept = default;
  ett_forest& operator=(ett_forest&&) noexcept = default;
  ett_forest(const ett_forest&) = delete;
  ett_forest& operator=(const ett_forest&) = delete;

  [[nodiscard]] bdc::substrate substrate_kind() const { return kind_; }
  [[nodiscard]] bdc::dispatch dispatch_kind() const { return dispatch_; }

  /// The type-erased view, for cold paths and generic tooling.
  [[nodiscard]] ett_substrate& bridge() { return *owner_; }
  [[nodiscard]] const ett_substrate& bridge() const { return *owner_; }

  /// One dispatch, then `fn` runs on the concrete substrate reference
  /// (or on `ett_substrate&` under dispatch::virtual_bridge). Use this
  /// to hoist the dispatch out of per-element loops.
  template <typename F>
  decltype(auto) visit(F&& fn) {
    return std::visit([&](auto* f) -> decltype(auto) { return fn(*f); },
                      view_);
  }
  template <typename F>
  decltype(auto) visit(F&& fn) const {
    return std::visit(
        [&](auto* f) -> decltype(auto) { return fn(std::as_const(*f)); },
        view_);
  }

  // ------------------------------------------------------------------
  // Forwarders: the full ett_substrate surface, one visit per call.
  // ------------------------------------------------------------------

  [[nodiscard]] size_t num_vertices() const {
    return visit([](auto& f) { return f.num_vertices(); });
  }
  [[nodiscard]] size_t num_edges() const {
    return visit([](auto& f) { return f.num_edges(); });
  }

  // The three mutating batch ops carry phase spans: instrumenting the
  // forwarder covers all three substrates at once, and the empty-batch
  // guard keeps the no-op calls that pepper the level loop out of the
  // histograms (a span on a 0-edge batch is pure noise).
  void batch_link(std::span<const edge> links) {
    if (links.empty()) return;
    BDC_PHASE_SPAN(sp, "ett.batch_link");
    visit([&](auto& f) { f.batch_link(links); });
  }
  void batch_cut(std::span<const edge> cuts) {
    if (cuts.empty()) return;
    BDC_PHASE_SPAN(sp, "ett.batch_cut");
    visit([&](auto& f) { f.batch_cut(cuts); });
  }
  void batch_add_counts(std::span<const count_delta> deltas) {
    if (deltas.empty()) return;
    BDC_PHASE_SPAN(sp, "ett.batch_add_counts");
    visit([&](auto& f) { f.batch_add_counts(deltas); });
  }
  void link(edge e) { batch_link({&e, 1}); }
  void cut(edge e) { batch_cut({&e, 1}); }

  [[nodiscard]] bool has_edge(edge e) const {
    return visit([&](auto& f) { return f.has_edge(e); });
  }
  [[nodiscard]] bool connected(vertex_id u, vertex_id v) const {
    return visit([&](auto& f) { return f.connected(u, v); });
  }
  [[nodiscard]] std::vector<bool> batch_connected(
      std::span<const std::pair<vertex_id, vertex_id>> queries) const {
    return visit([&](auto& f) { return f.batch_connected(queries); });
  }

  [[nodiscard]] rep find_rep(vertex_id v) const {
    return visit([&](auto& f) { return f.find_rep(v); });
  }
  [[nodiscard]] std::vector<rep> batch_find_rep(
      std::span<const vertex_id> vs) const {
    return visit([&](auto& f) { return f.batch_find_rep(vs); });
  }

  [[nodiscard]] ett_counts component_counts(vertex_id v) const {
    return visit([&](auto& f) { return f.component_counts(v); });
  }
  [[nodiscard]] uint32_t component_size(vertex_id v) const {
    return component_counts(v).vertices;
  }
  [[nodiscard]] ett_counts vertex_counts(vertex_id v) const {
    return visit([&](auto& f) { return f.vertex_counts(v); });
  }

  [[nodiscard]] std::vector<std::pair<vertex_id, uint32_t>> fetch_nontree(
      vertex_id v, uint64_t want) const {
    return visit([&](auto& f) { return f.fetch_nontree(v, want); });
  }
  [[nodiscard]] std::vector<std::pair<vertex_id, uint32_t>> fetch_tree(
      vertex_id v, uint64_t want) const {
    return visit([&](auto& f) { return f.fetch_tree(v, want); });
  }

  [[nodiscard]] std::vector<vertex_id> component_vertices(
      vertex_id v) const {
    return visit([&](auto& f) { return f.component_vertices(v); });
  }

  /// Enumerates the component with representative `r` in tour order; see
  /// ett_substrate::for_each_tour_vertex. Hoist the dispatch yourself
  /// (visit + the substrate's overload) when enumerating many components.
  template <typename F>
  void for_each_tour_vertex(rep r, F&& f) const {
    visit([&](auto& fc) { fc.for_each_tour_vertex(r, f); });
  }

  [[nodiscard]] std::string check_consistency() const {
    return visit([](auto& f) { return f.check_consistency(); });
  }

  [[nodiscard]] node_pool::stats_snapshot pool_stats() const {
    return owner_->pool_stats();
  }
  size_t trim_pool(size_t keep_bytes = 0) {
    return owner_->trim_pool(keep_bytes);
  }
  /// Vertices currently holding a sparse-directory slot in this forest.
  [[nodiscard]] uint64_t active_vertices() const {
    return owner_->active_vertices();
  }
  /// Bytes retained by this forest's per-vertex directory.
  [[nodiscard]] size_t directory_bytes() const {
    return owner_->directory_bytes();
  }

  // Read-side snapshot contract (see ett_substrate). connected_relaxed
  // goes through the pinned dispatch view like every other hot-path
  // query, so the concurrent probe is devirtualized under
  // dispatch::static_variant and still works — as a plain virtual call —
  // under dispatch::virtual_bridge.
  [[nodiscard]] bool supports_relaxed_reads() const {
    return owner_->supports_relaxed_reads();
  }
  [[nodiscard]] std::optional<bool> connected_relaxed(vertex_id u,
                                                      vertex_id v) const {
    return visit([&](auto& f) { return f.connected_relaxed(u, v); });
  }
  void bind_read_epochs(epoch_manager* em) { owner_->bind_read_epochs(em); }
  size_t drain_limbo() { return owner_->drain_limbo(); }

 private:
  // Ownership always flows through the base pointer; the variant is a
  // non-owning concrete-type view of the same object (or the base view
  // under dispatch::virtual_bridge).
  using view = std::variant<euler_tour_forest*, treap_ett*, blocked_ett*,
                            ett_substrate*>;

  std::unique_ptr<ett_substrate> owner_;
  view view_;
  bdc::substrate kind_;
  bdc::dispatch dispatch_;
};

}  // namespace bdc
