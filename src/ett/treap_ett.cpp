#include "ett/treap_ett.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "ett/link_partition.hpp"
#include "ett/tour_entry.hpp"
#include "parallel/primitives.hpp"
#include "parallel/scheduler.hpp"
#include "sequence/parallel_sort.hpp"
#include "sequence/semisort.hpp"
#include "spanning/union_find.hpp"

namespace bdc {

struct treap_ett::node {
  node* parent = nullptr;
  node* left = nullptr;
  node* right = nullptr;
  uint64_t priority = 0;
  uint64_t tag = 0;  // tour entry (ett/tour_entry.hpp): sentinel or arc
  ett_counts own;    // nonzero only on sentinels
  ett_counts agg;    // subtree sum (own + children)
  uint32_t subtree_nodes = 1;
};

namespace {
// Entry encoding: ett/tour_entry.hpp, shared with the blocked substrate.
uint64_t arc_key(vertex_id t, vertex_id h) { return arc_tag(t, h); }
}  // namespace

treap_ett::treap_ett(vertex_id n, uint64_t seed)
    : rng_(seed), n_(n), arcs_(64), dir_(n, pool_) {}
// Construction is O(n / kSpan) (the directory root table), not O(n):
// sentinels are built on first edge touch (ensure_sentinel) and reclaimed
// when a vertex's last level-i edge leaves (maybe_release_sentinel).

treap_ett::node* treap_ett::make_node(uint64_t tag) {
  return make_node_with_priority(tag, rng_.ith_rand(counter_++));
}

treap_ett::node* treap_ett::make_node_with_priority(uint64_t tag,
                                                    uint64_t priority) {
  static_assert(sizeof(node) <= node_pool::kMaxBytes);
  node* x = new (pool_.allocate(sizeof(node))) node;
  x->tag = tag;
  x->priority = priority;
  return x;
}

void treap_ett::free_node(node* x) {
  static_assert(std::is_trivially_destructible_v<node>);
  pool_.deallocate(static_cast<void*>(x), sizeof(node));
}

treap_ett::node* treap_ett::ensure_sentinel_with_priority(vertex_id v,
                                                          uint64_t priority) {
  if (node* s = sentinel(v)) return s;
  node* s = make_node_with_priority(static_cast<uint64_t>(v), priority);
  s->own.vertices = 1;
  update(s);
  dir_.activate(v, [&](node*& slot) { slot = s; });
  return s;
}

treap_ett::node* treap_ett::ensure_sentinel(vertex_id v) {
  if (node* s = sentinel(v)) return s;
  return ensure_sentinel_with_priority(v, rng_.ith_rand(counter_++));
}

void treap_ett::maybe_release_sentinel(vertex_id v) {
  node* s = sentinel(v);
  if (s == nullptr) return;
  if (s->parent != nullptr || s->subtree_nodes != 1) return;  // in a tour
  if (s->own.tree_edges != 0 || s->own.nontree_edges != 0) return;
  dir_.deactivate(v);
  free_node(s);
}

void treap_ett::update(node* x) {
  x->agg = x->own;
  x->subtree_nodes = 1;
  for (node* c : {x->left, x->right}) {
    if (c == nullptr) continue;
    x->agg = x->agg + c->agg;
    x->subtree_nodes += c->subtree_nodes;
  }
}

treap_ett::node* treap_ett::root_of(node* x) {
  while (x->parent != nullptr) x = x->parent;
  return x;
}

treap_ett::node* treap_ett::merge(node* a, node* b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  if (a->priority > b->priority) {
    node* r = merge(a->right, b);
    a->right = r;
    if (r) r->parent = a;
    update(a);
    return a;
  }
  node* l = merge(a, b->left);
  b->left = l;
  if (l) l->parent = b;
  update(b);
  return b;
}

treap_ett::node* treap_ett::join_all(std::span<node* const> segs) {
  if (segs.empty()) return nullptr;
  // Balanced divide-and-conquer join reduction: join is associative on
  // sequences, so any parenthesization yields the same tour; the balanced
  // tree gives O(lg k) join rounds that proceed in parallel.
  return fork_join_reduce<node*>(
      0, segs.size(), /*grain=*/8,
      [&](size_t lo, size_t hi) {
        node* acc = nullptr;
        for (size_t i = lo; i < hi; ++i) acc = merge(acc, segs[i]);
        return acc;
      },
      [](node* a, node* b) { return merge(a, b); });
}

std::pair<treap_ett::node*, treap_ett::node*> treap_ett::split_before(
    node* x) {
  // Left part: everything before x. Right part: x and after.
  node* l = x->left;
  if (l) {
    l->parent = nullptr;
    x->left = nullptr;
    update(x);
  }
  node* r = x;
  node* cur = x;
  node* p = cur->parent;
  cur->parent = nullptr;
  while (p != nullptr) {
    node* gp = p->parent;
    p->parent = nullptr;
    if (p->right == cur) {
      // cur was p's right child: p and its left subtree precede cur.
      p->right = nullptr;
      update(p);
      l = merge(p, l);
    } else {
      // cur was p's left child: p and its right subtree follow cur.
      p->left = nullptr;
      update(p);
      r = merge(r, p);
    }
    cur = p;
    p = gp;
  }
  return {l, r};
}

std::pair<treap_ett::node*, treap_ett::node*> treap_ett::split_after(
    node* x) {
  node* r = x->right;
  if (r) {
    r->parent = nullptr;
    x->right = nullptr;
    update(x);
  }
  node* l = x;
  node* cur = x;
  node* p = cur->parent;
  cur->parent = nullptr;
  while (p != nullptr) {
    node* gp = p->parent;
    p->parent = nullptr;
    if (p->left == cur) {
      // cur was p's left child: p and its right subtree follow cur.
      p->left = nullptr;
      update(p);
      r = merge(r, p);
    } else {
      // cur was p's right child: p and its left subtree precede cur (and
      // everything accumulated in l so far). Accumulating as merge(l, p)
      // here was a latent seed bug: every historical caller passed a node
      // already made leftmost by split_before, so this branch first ran —
      // and first got fuzzed — when the join-based bulk link landed.
      p->right = nullptr;
      update(p);
      l = merge(p, l);
    }
    cur = p;
    p = gp;
  }
  return {l, r};
}

size_t treap_ett::rank_of(node* x) {
  size_t rank = x->left ? x->left->subtree_nodes : 0;
  node* cur = x;
  node* p = x->parent;
  while (p != nullptr) {
    if (p->right == cur) {
      rank += 1 + (p->left ? p->left->subtree_nodes : 0);
    }
    cur = p;
    p = p->parent;
  }
  return rank;
}

treap_ett::node* treap_ett::reroot(vertex_id v) {
  node* s = sentinel(v);
  assert(s != nullptr && "rerooting an inactive vertex");
  auto [before, from] = split_before(s);
  return merge(from, before);
}

void treap_ett::link(vertex_id u, vertex_id v) {
  assert(!connected(u, v));
  ensure_sentinel(u);
  ensure_sentinel(v);
  node* tu = reroot(u);
  node* tv = reroot(v);
  node* uv = make_node(arc_key(u, v));
  node* vu = make_node(arc_key(v, u));
  update(uv);
  update(vu);
  arcs_.reserve_for(1);
  arcs_.insert(edge_key(edge{u, v}.canonical()), {uv, vu});
  merge(merge(tu, uv), merge(tv, vu));
}

void treap_ett::cut(vertex_id u, vertex_id v) {
  uint64_t key = edge_key(edge{u, v}.canonical());
  const arc_nodes* an = arcs_.find(key);
  assert(an != nullptr && "cut: edge not in forest");
  node* a = an->fwd;
  node* b = an->rev;
  arcs_.erase(key);
  if (rank_of(a) > rank_of(b)) std::swap(a, b);
  // Tour = L a M b R  ->  trees (L R) and (M).
  auto [la, xa] = split_before(a);        // la = L, xa = a M b R
  auto [xm, xb] = split_before(b);        // xm = a M, xb = b R
  (void)xa;
  auto [aa, m] = split_after(a);          // aa = a, m = M
  auto [bb, r] = split_after(b);          // bb = b, r = R
  (void)xm;
  (void)xb;
  assert(aa == a && bb == b);
  merge(la, r);
  (void)m;
  free_node(a);
  free_node(b);
  maybe_release_sentinel(u);
  maybe_release_sentinel(v);
}

// ---------------------------------------------------------------------
// Batch surface. Mutations are join-based bulk operations: a read-only
// phase resolves every touched tour, the batch is partitioned into groups
// touching disjoint tours, and groups rebuild their tours concurrently with
// divide-and-conquer join reductions. Small batches (or a 1-worker pool)
// fall back to the sequential split/merge loop, which the batch
// preconditions (acyclic link batches, present distinct cuts) make valid
// in any order. Read-only batches fan out across workers unconditionally.
// ---------------------------------------------------------------------

// One independent link group: the batch indices of the links forming one
// merged component, plus the batch-wide lookaside arrays resolved in the
// read-only phases (tour root per endpoint, pre-made arc nodes per link).
struct treap_ett::link_group_ctx {
  std::span<const edge> links;                             // whole batch
  std::span<const std::pair<uint32_t, uint32_t>> members;  // (group, index)
  node* const* root_u;                                     // per batch index
  node* const* root_v;
  const arc_nodes* arcs;                                   // per batch index
};

void treap_ett::link_group(const link_group_ctx& ctx) {
  // The group's links form a tree over its tours (the batch keeps the
  // graph acyclic). The merged tour is emitted as an ordered list of treap
  // segments by a DFS over that link tree: each old tour is rotated to
  // start at its entry vertex and split once after each attachment
  // sentinel, and a link (b, c) contributes "arc bc, tour of c's tree
  // rotated at c, arc cb" right after b's sentinel. One balanced join
  // reduction then rebuilds the merged treap.
  //
  // Groups are numerous and mostly tiny (a large random batch over a big
  // forest shatters into thousands of 1–3 link groups), so this path is
  // deliberately allocation-light: a single-link group takes a
  // straight-line fast path, and the general path uses flat sorted arrays
  // with binary-searched slices instead of hash containers.
  size_t m = ctx.members.size();
  if (m == 1) {
    uint32_t i = ctx.members.front().second;
    const edge& e = ctx.links[i];
    node* tu = reroot(e.u);
    node* tv = reroot(e.v);
    merge(merge(tu, ctx.arcs[i].fwd), merge(tv, ctx.arcs[i].rev));
    return;
  }

  // Flat adjacency: (vertex, link index) sorted by vertex; a vertex's
  // incident group links are one contiguous slice.
  std::vector<std::pair<vertex_id, uint32_t>> adj;
  adj.reserve(2 * m);
  for (const auto& [group, i] : ctx.members) {
    (void)group;
    adj.push_back({ctx.links[i].u, i});
    adj.push_back({ctx.links[i].v, i});
  }
  std::sort(adj.begin(), adj.end());
  // Attachment vertices per tour: one entry per distinct vertex, sorted by
  // tour root so each tree's attachments are one contiguous slice.
  std::vector<std::pair<uintptr_t, vertex_id>> attach;
  attach.reserve(adj.size());
  for (size_t j = 0; j < adj.size(); ++j) {
    if (j > 0 && adj[j].first == adj[j - 1].first) continue;
    uint32_t i = adj[j].second;
    node* root = ctx.links[i].u == adj[j].first ? ctx.root_u[i]
                                                : ctx.root_v[i];
    attach.push_back({reinterpret_cast<uintptr_t>(root), adj[j].first});
  }
  std::sort(attach.begin(), attach.end());
  auto adj_slice = [&](vertex_id v) {
    auto lo = std::lower_bound(adj.begin(), adj.end(),
                               std::pair<vertex_id, uint32_t>{v, 0});
    auto hi = lo;
    while (hi != adj.end() && hi->first == v) ++hi;
    return std::span<const std::pair<vertex_id, uint32_t>>{lo, hi};
  };

  // Emission actions: a filled `seg` emits one ready treap segment; a null
  // `seg` expands the not-yet-split tour rooted at `tree`, entered at
  // vertex `entry` via link `via` (the DFS-parent link, skipped when the
  // tree's own adjacency is walked). The explicit stack keeps the DFS
  // depth off the worker stack (a path-shaped link batch nests O(batch)
  // deep).
  constexpr uint32_t kNoVia = ~uint32_t{0};
  struct action {
    node* seg;
    node* tree;
    vertex_id entry;
    uint32_t via;
  };
  std::vector<action> stack;
  std::vector<node*> out;
  out.reserve(4 * m + 2);

  const edge& first = ctx.links[ctx.members.front().second];
  stack.push_back(
      {nullptr, ctx.root_u[ctx.members.front().second], first.u, kNoVia});
  std::vector<action> items;  // forward-order emission of one tour
  std::vector<std::pair<size_t, vertex_id>> ranked;
  while (!stack.empty()) {
    action act = stack.back();
    stack.pop_back();
    if (act.seg != nullptr) {
      out.push_back(act.seg);
      continue;
    }
    node* tree = act.tree;
    vertex_id entry = act.entry;
    uint32_t via = act.via;
    // This tree's attachments, with tour positions taken before splitting;
    // sorted by rotated rank so the entry comes first.
    auto alo = std::lower_bound(
        attach.begin(), attach.end(),
        std::pair<uintptr_t, vertex_id>{reinterpret_cast<uintptr_t>(tree), 0});
    size_t size = tree->subtree_nodes;
    size_t entry_rank = rank_of(sentinel(entry));
    ranked.clear();
    for (auto it = alo;
         it != attach.end() && it->first == reinterpret_cast<uintptr_t>(tree);
         ++it) {
      size_t r = rank_of(sentinel(it->second));
      ranked.emplace_back((r + size - entry_rank) % size, it->second);
    }
    std::sort(ranked.begin(), ranked.end());
    assert(!ranked.empty() && ranked.front().second == entry);

    items.clear();
    auto [before, from] = split_before(sentinel(entry));
    node* cur = from;  // rotated tour = from ++ before
    auto peel = [&](vertex_id b) {
      // Peels the leading segment of `cur` ending at b's sentinel, then
      // queues the subtrees hanging off b.
      auto [seg, rest] = split_after(sentinel(b));
      cur = rest;
      if (seg != nullptr) items.push_back({seg, nullptr, 0, 0});
      for (const auto& [vx, i] : adj_slice(b)) {
        if (i == via) continue;  // the DFS-parent link: emitted upstream
        const edge& e = ctx.links[i];
        bool fwd = e.u == b;
        items.push_back(
            {fwd ? ctx.arcs[i].fwd : ctx.arcs[i].rev, nullptr, 0, 0});
        items.push_back({nullptr, fwd ? ctx.root_v[i] : ctx.root_u[i],
                         fwd ? e.v : e.u, i});
        items.push_back(
            {fwd ? ctx.arcs[i].rev : ctx.arcs[i].fwd, nullptr, 0, 0});
      }
    };
    size_t j = 0;
    size_t before_size = before == nullptr ? 0 : before->subtree_nodes;
    size_t from_size = size - before_size;  // ranks >= entry_rank
    for (; j < ranked.size() && ranked[j].first < from_size; ++j)
      peel(ranked[j].second);
    if (cur != nullptr) items.push_back({cur, nullptr, 0, 0});  // `from` tail
    cur = before;
    for (; j < ranked.size(); ++j) peel(ranked[j].second);
    if (cur != nullptr) items.push_back({cur, nullptr, 0, 0});  // last tail
    stack.insert(stack.end(), items.rbegin(), items.rend());
  }
  join_all(out);
}

void treap_ett::batch_link(std::span<const edge> links) {
  size_t k = links.size();
  arcs_.reserve_for(k);
  if (k < kParallelMutationCutoff || num_workers() <= 1) {
    for (const edge& e : links) link(e.u, e.v);
    return;
  }

  // Phase 0 (parallel): activate every endpoint that has no sentinel yet
  // — the phases below walk and split from sentinel nodes, so they must
  // exist before any tour is touched. Distinct vertices only (sort +
  // dedup), so activations never race; priorities come from a counter
  // range reserved up front, keeping the structure deterministic.
  auto& endpoints = scratch_.endpoints;
  endpoints.resize(2 * k);
  parallel_for(0, k, [&](size_t i) {
    endpoints[2 * i] = links[i].u;
    endpoints[2 * i + 1] = links[i].v;
  });
  sort_unique(endpoints);
  uint64_t sentinel_base = counter_;
  counter_ += endpoints.size();
  parallel_for(0, endpoints.size(), [&](size_t i) {
    ensure_sentinel_with_priority(endpoints[i],
                                  rng_.ith_rand(sentinel_base + i));
  });

  // Phase 1 (read-only, parallel): resolve each endpoint's tour root.
  auto& root_u = scratch_.root_u;
  auto& root_v = scratch_.root_v;
  root_u.resize(k);
  root_v.resize(k);
  parallel_for(0, k, [&](size_t i) {
    root_u[i] = root_of(sentinel(links[i].u));
    root_v[i] = root_of(sentinel(links[i].v));
  });

  // Phase 2 (parallel): make both arc nodes per link — priorities come from
  // a counter range reserved up front, so the result is deterministic and
  // workers never touch shared RNG state — and register them in the arc map
  // (concurrent inserts of distinct keys are phase-safe).
  uint64_t base = counter_;
  counter_ += 2 * k;
  auto& arcs = scratch_.arcs;
  arcs.resize(k);
  parallel_for(0, k, [&](size_t i) {
    const edge& e = links[i];
    node* fwd =
        make_node_with_priority(arc_key(e.u, e.v), rng_.ith_rand(base + 2 * i));
    node* rev = make_node_with_priority(arc_key(e.v, e.u),
                                        rng_.ith_rand(base + 2 * i + 1));
    update(fwd);
    update(rev);
    arcs[i] = {fwd, rev};
    arcs_.insert(edge_key(e.canonical()), arcs[i]);
  });

  // Phase 3: partition the batch into groups whose merged components
  // are disjoint (ett/link_partition.hpp — shared with the blocked
  // substrate). The all-distinct fast path splices each link's two
  // tours directly, skipping the union-find and semisort (the dominant
  // case for the shattered batches flagged in the PR-3 measurements).
  auto part = partition_links<node*>(root_u, root_v, scratch_.part);
  if (part.all_distinct) {
    parallel_for(
        0, k,
        [&](size_t i) {
          const edge& e = links[i];
          node* tu = reroot(e.u);
          node* tv = reroot(e.v);
          merge(merge(tu, arcs[i].fwd), merge(tv, arcs[i].rev));
        },
        1);
    return;
  }
  auto& groups = part.groups;

  // Phase 4 (parallel over groups): rebuild each merged tour.
  parallel_for(
      0, groups.num_groups(),
      [&](size_t g) {
        std::span<const std::pair<uint32_t, uint32_t>> members(
            groups.records.data() + groups.group_starts[g],
            groups.group_size(g));
        link_group({links, members, root_u.data(), root_v.data(),
                    arcs.data()});
      },
      1);
}

// One cut arc occurrence: its tour position (taken before any split), the
// arc node itself, and which batch cut it belongs to (for pair matching).
struct treap_ett::cut_mark {
  size_t rank;
  node* arc;
  uint32_t cut;
};

void treap_ett::cut_tree(std::span<cut_mark> marks) {
  // Peel the tour left to right at every mark: segments S0 M1 S1 ... Mm Sm
  // (segments may be empty). The two arcs of one cut edge delimit the
  // subtree's interval and intervals of distinct cuts nest, so a stack of
  // open cuts assigns each segment to its resulting tour; each tour is then
  // rebuilt with one join reduction. Like link groups, cut trees are
  // numerous and mostly tiny, so the single-cut case is a straight-line
  // fast path and the general case avoids per-tour containers.
  std::sort(
      marks.begin(), marks.end(),
      [](const cut_mark& a, const cut_mark& b) { return a.rank < b.rank; });
  size_t m = marks.size();
  // Cut endpoints, recovered from the arc tags before the nodes are freed:
  // each may end up a lone sentinel and give its slot back (the release is
  // idempotent, so the duplicate mentions across a cut's two arcs are
  // harmless). This group owns every tour those vertices can land in, so
  // the releases below stay within the group's partition.
  std::vector<vertex_id> touched(m);
  for (size_t j = 0; j < m; ++j) touched[j] = arc_tag_tail(marks[j].arc->tag);
  if (m == 2) {
    // One cut: tour = S0 a S1 b S2  ->  trees (S0 S2) and (S1).
    assert(marks[0].cut == marks[1].cut);
    auto [s0, r0] = split_before(marks[0].arc);
    (void)r0;
    auto [a0, r1] = split_after(marks[0].arc);
    (void)a0;
    (void)r1;
    auto [s1, r2] = split_before(marks[1].arc);
    (void)r2;
    auto [b0, s2] = split_after(marks[1].arc);
    (void)b0;
    (void)s1;  // the inner tour already stands alone
    merge(s0, s2);
    free_node(marks[0].arc);
    free_node(marks[1].arc);
    for (vertex_id v : touched) maybe_release_sentinel(v);
    return;
  }

  std::vector<node*> segs(m + 1);
  node* tail = nullptr;
  for (size_t j = 0; j < m; ++j) {
    auto [seg, rest] = split_before(marks[j].arc);
    (void)rest;
    segs[j] = seg;
    auto [arc, after] = split_after(marks[j].arc);
    assert(arc == marks[j].arc);
    (void)arc;
    tail = after;
  }
  segs[m] = tail;

  // Nesting means a cut's closing arc can only appear while its opening
  // arc is the innermost open one, so matching needs no map — just compare
  // against the top of the open stack.
  size_t num_tours = m / 2 + 1;
  std::vector<uint32_t> tour_of(m + 1);
  std::vector<std::pair<uint32_t, uint32_t>> open_stack;  // (cut, tour)
  open_stack.reserve(m / 2);
  tour_of[0] = 0;
  uint32_t next_tour = 1;
  for (size_t j = 0; j < m; ++j) {
    if (!open_stack.empty() && open_stack.back().first == marks[j].cut) {
      open_stack.pop_back();
    } else {
      open_stack.push_back({marks[j].cut, next_tour++});
    }
    tour_of[j + 1] = open_stack.empty() ? 0 : open_stack.back().second;
  }
  assert(open_stack.empty() && "unmatched cut arc");
  assert(next_tour == num_tours);
  for (const cut_mark& mk : marks) free_node(mk.arc);

  // Bucket the segments by tour (order-preserving), then join each tour.
  std::vector<uint32_t> offsets(num_tours + 1, 0);
  for (size_t j = 0; j <= m; ++j)
    if (segs[j] != nullptr) ++offsets[tour_of[j] + 1];
  for (size_t t = 0; t < num_tours; ++t) offsets[t + 1] += offsets[t];
  std::vector<node*> flat(offsets[num_tours]);
  {
    std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (size_t j = 0; j <= m; ++j)
      if (segs[j] != nullptr) flat[cursor[tour_of[j]]++] = segs[j];
  }
  parallel_for(
      0, num_tours,
      [&](size_t t) {
        join_all(std::span<node* const>{flat.data() + offsets[t],
                                        flat.data() + offsets[t + 1]});
      },
      1);
  for (vertex_id v : touched) maybe_release_sentinel(v);
}

void treap_ett::batch_cut(std::span<const edge> cuts) {
  size_t c = cuts.size();
  if (c < kParallelMutationCutoff || num_workers() <= 1) {
    for (const edge& e : cuts) cut(e.u, e.v);
    dir_.sweep_pending();
    return;
  }

  // Phase 1 (read-only, parallel): resolve every cut edge's arc pair, its
  // tour root, and both arcs' tour positions while the forest is
  // unchanged, writing straight into the (root, mark) records the
  // semisort groups. (`keyed` is consumed by the semisort and cannot be
  // scratch-reused; `keys` can.)
  std::vector<std::pair<uint64_t, cut_mark>> keyed(2 * c);
  auto& keys = scratch_.keys;
  keys.resize(c);
  parallel_for(0, c, [&](size_t i) {
    uint64_t key = edge_key(cuts[i].canonical());
    keys[i] = key;
    const arc_nodes* an = arcs_.find(key);
    assert(an != nullptr && "batch_cut: edge not in forest");
    uint64_t root_key =
        static_cast<uint64_t>(reinterpret_cast<uintptr_t>(root_of(an->fwd)));
    uint32_t ci = static_cast<uint32_t>(i);
    keyed[2 * i] = {root_key, {rank_of(an->fwd), an->fwd, ci}};
    keyed[2 * i + 1] = {root_key, {rank_of(an->rev), an->rev, ci}};
  });

  // Phase 2 (parallel): drop the arc records (distinct-key erases).
  arcs_.erase_batch(keys);

  // Phase 3: group marks by tour, then rebuild disjoint tours concurrently.
  auto groups = group_by_key(std::move(keyed));
  parallel_for(
      0, groups.num_groups(),
      [&](size_t g) {
        size_t sz = groups.group_size(g);
        if (sz == 2) {  // single cut in this tour: no heap traffic
          cut_mark two[2] = {groups.records[groups.group_starts[g]].second,
                             groups.records[groups.group_starts[g] + 1].second};
          cut_tree(two);
          return;
        }
        std::vector<cut_mark> tree_marks(sz);
        for (size_t j = 0; j < sz; ++j)
          tree_marks[j] = groups.records[groups.group_starts[g] + j].second;
        cut_tree(tree_marks);
      },
      1);
  dir_.sweep_pending();
}

void treap_ett::batch_add_counts(std::span<const count_delta> deltas) {
  size_t k = deltas.size();
  if (k < kParallelMutationCutoff || num_workers() <= 1) {
    for (const count_delta& d : deltas)
      add_counts(d.v, d.tree_delta, d.nontree_delta);
    dir_.sweep_pending();
    return;
  }
  // Phase 0 (parallel): activate vertices that gain their first level-i
  // counter here (at most one delta per vertex, so no activation races;
  // priorities from a reserved counter range, as in batch_link).
  uint64_t sentinel_base = counter_;
  counter_ += k;
  parallel_for(0, k, [&](size_t i) {
    ensure_sentinel_with_priority(deltas[i].v,
                                  rng_.ith_rand(sentinel_base + i));
  });
  // Root-path updates of vertices in one tour overlap near the root, so
  // grouping by tour gives the safe parallelism: disjoint tours update
  // concurrently, entries within a tour stay sequential.
  std::vector<std::pair<uint64_t, uint32_t>> keyed(k);
  parallel_for(0, k, [&](size_t i) {
    keyed[i] = {static_cast<uint64_t>(
                    reinterpret_cast<uintptr_t>(root_of(sentinel(deltas[i].v)))),
                static_cast<uint32_t>(i)};
  });
  auto groups = group_by_key(std::move(keyed));
  parallel_for(
      0, groups.num_groups(),
      [&](size_t g) {
        for (size_t j = groups.group_starts[g]; j < groups.group_starts[g + 1];
             ++j) {
          const count_delta& d = deltas[groups.records[j].second];
          add_counts(d.v, d.tree_delta, d.nontree_delta);
        }
      },
      1);
  dir_.sweep_pending();
}

bool treap_ett::connected(vertex_id u, vertex_id v) const {
  node* su = sentinel(u);
  node* sv = sentinel(v);
  if (su == nullptr || sv == nullptr) return u == v;  // inactive: singleton
  return root_of(su) == root_of(sv);
}

std::vector<bool> treap_ett::batch_connected(
    std::span<const std::pair<vertex_id, vertex_id>> queries) const {
  // Byte staging as in the skip-list forest: std::vector<bool> packs bits.
  std::vector<uint8_t> bits(queries.size());
  parallel_for(0, queries.size(), [&](size_t i) {
    bits[i] = connected(queries[i].first, queries[i].second) ? 1 : 0;
  });
  return std::vector<bool>(bits.begin(), bits.end());
}

ett_substrate::rep treap_ett::find_rep(vertex_id v) const {
  node* s = sentinel(v);
  // Tourless vertices (inactive, or active with non-tree counters only)
  // take the tagged singleton rep, so batch_add_counts-driven activation
  // and reclamation never move a representative.
  if (s == nullptr || (s->parent == nullptr && s->subtree_nodes == 1))
    return singleton_rep(v);
  return root_of(s);
}

std::vector<ett_substrate::rep> treap_ett::batch_find_rep(
    std::span<const vertex_id> vs) const {
  std::vector<rep> out(vs.size());
  parallel_for(0, vs.size(), [&](size_t i) { out[i] = find_rep(vs[i]); });
  return out;
}

ett_counts treap_ett::component_counts(vertex_id v) const {
  node* s = sentinel(v);
  return s == nullptr ? ett_counts{1, 0, 0} : root_of(s)->agg;
}

ett_counts treap_ett::vertex_counts(vertex_id v) const {
  node* s = sentinel(v);
  return s == nullptr ? ett_counts{1, 0, 0} : s->own;
}

void treap_ett::add_counts(vertex_id v, int32_t tree_delta,
                           int32_t nontree_delta) {
  node* s = ensure_sentinel(v);
  assert(static_cast<int64_t>(s->own.tree_edges) + tree_delta >= 0);
  assert(static_cast<int64_t>(s->own.nontree_edges) + nontree_delta >= 0);
  s->own.tree_edges =
      static_cast<uint32_t>(static_cast<int64_t>(s->own.tree_edges) +
                            tree_delta);
  s->own.nontree_edges =
      static_cast<uint32_t>(static_cast<int64_t>(s->own.nontree_edges) +
                            nontree_delta);
  for (node* x = s; x != nullptr; x = x->parent) update(x);
  maybe_release_sentinel(v);  // last counter gone and no tour: free the slot
}

vertex_id treap_ett::find_tree_slot(vertex_id v) const {
  node* s = sentinel(v);
  if (s == nullptr) return kNoVertex;
  node* root = root_of(s);
  if (root->agg.tree_edges == 0) return kNoVertex;
  node* cur = root;
  while (true) {
    if (cur->left && cur->left->agg.tree_edges > 0) {
      cur = cur->left;
    } else if (cur->own.tree_edges > 0) {
      return static_cast<vertex_id>(cur->tag);
    } else {
      cur = cur->right;
    }
  }
}

vertex_id treap_ett::find_nontree_slot(vertex_id v) const {
  node* s = sentinel(v);
  if (s == nullptr) return kNoVertex;
  node* root = root_of(s);
  if (root->agg.nontree_edges == 0) return kNoVertex;
  node* cur = root;
  while (true) {
    if (cur->left && cur->left->agg.nontree_edges > 0) {
      cur = cur->left;
    } else if (cur->own.nontree_edges > 0) {
      return static_cast<vertex_id>(cur->tag);
    } else {
      cur = cur->right;
    }
  }
}

std::vector<std::pair<vertex_id, uint32_t>> treap_ett::fetch_counted(
    vertex_id v, uint64_t want, bool nontree) const {
  std::vector<std::pair<vertex_id, uint32_t>> out;
  if (want == 0) return out;
  node* s = sentinel(v);
  if (s == nullptr) return out;  // inactive singleton: no counters
  // In-order (= tour-order) descent pruned by the subtree aggregates, so
  // the walk touches O(result * lg n) nodes, matching the skip-list
  // substrate's collect_first contract.
  std::vector<std::pair<node*, bool>> stack{{root_of(s), false}};
  uint64_t left = want;
  while (!stack.empty() && left > 0) {
    auto [x, expanded] = stack.back();
    stack.pop_back();
    if (x == nullptr) continue;
    if (!expanded) {
      if (slot_count(x->agg, nontree) == 0) continue;  // prune
      stack.push_back({x->right, false});
      stack.push_back({x, true});
      stack.push_back({x->left, false});
    } else if (uint64_t own = slot_count(x->own, nontree); own > 0) {
      assert(!is_arc_tag(x->tag));  // only sentinels carry counts
      uint64_t take = std::min(own, left);
      out.emplace_back(static_cast<vertex_id>(x->tag),
                       static_cast<uint32_t>(take));
      left -= take;
    }
  }
  return out;
}

std::vector<std::pair<vertex_id, uint32_t>> treap_ett::fetch_nontree(
    vertex_id v, uint64_t want) const {
  return fetch_counted(v, want, /*nontree=*/true);
}

std::vector<std::pair<vertex_id, uint32_t>> treap_ett::fetch_tree(
    vertex_id v, uint64_t want) const {
  return fetch_counted(v, want, /*nontree=*/false);
}

std::vector<vertex_id> treap_ett::component_vertices(vertex_id v) const {
  node* s = sentinel(v);
  if (s == nullptr) return {v};
  std::vector<vertex_id> out;
  // Iterative in-order walk from the root.
  std::vector<std::pair<node*, bool>> stack{{root_of(s), false}};
  while (!stack.empty()) {
    auto [x, expanded] = stack.back();
    stack.pop_back();
    if (x == nullptr) continue;
    if (expanded) {
      if (!is_arc_tag(x->tag))
        out.push_back(static_cast<vertex_id>(x->tag));
    } else {
      stack.push_back({x->right, false});
      stack.push_back({x, true});
      stack.push_back({x->left, false});
    }
  }
  return out;
}

void treap_ett::for_each_tour_vertex(rep r, void (*fn)(void*, vertex_id),
                                     void* ctx) const {
  // Tourless vertices carry the tagged singleton rep; decode it.
  if (is_singleton_rep(r)) {
    fn(ctx, singleton_rep_vertex(r));
    return;
  }
  // Otherwise the representative IS the treap root; in-order walk emits
  // the tour.
  std::vector<std::pair<const node*, bool>> stack{
      {static_cast<const node*>(r), false}};
  while (!stack.empty()) {
    auto [x, expanded] = stack.back();
    stack.pop_back();
    if (x == nullptr) continue;
    if (expanded) {
      if (!is_arc_tag(x->tag)) fn(ctx, static_cast<vertex_id>(x->tag));
    } else {
      stack.push_back({x->right, false});
      stack.push_back({x, true});
      stack.push_back({x->left, false});
    }
  }
}

std::string treap_ett::check_consistency() const {
  // Directory invariants first: chunk occupancy bookkeeping, then the
  // activation contract — a slot exists iff some level-i edge still
  // touches its vertex (a lone sentinel with zero edge counters is an
  // activation leak: maybe_release_sentinel should have reclaimed it).
  if (std::string err = dir_.check_consistency(); !err.empty()) return err;
  std::vector<std::pair<vertex_id, node*>> active;
  active.reserve(dir_.active_count());
  dir_.for_each_active(
      [&](vertex_id v, node* const& s) { active.emplace_back(v, s); });
  for (auto [v, s] : active) {
    if (s->tag != static_cast<uint64_t>(v)) return "sentinel tag mismatch";
    if (s->own.vertices != 1) return "per-vertex counter lost its vertex";
    if (s->parent == nullptr && s->subtree_nodes == 1 &&
        s->own.tree_edges == 0 && s->own.nontree_edges == 0)
      return "activation leak: lone sentinel with zero edge counters";
  }

  // Vertex at which the tour enters (head) / leaves (tail) a node.
  auto tail_of = [](const node* x) { return tag_tail(x->tag); };
  auto head_of = [](const node* x) { return tag_head(x->tag); };
  // Validate every treap reachable from a sentinel.
  std::unordered_map<node*, bool> seen_root;
  for (auto [v, s] : active) {
    (void)v;
    node* root = root_of(s);
    if (seen_root.count(root)) continue;
    seen_root[root] = true;
    // Structural check (heap order, parent pointers, aggregates).
    std::vector<node*> stack{root};
    ett_counts total{};
    uint32_t nodes = 0;
    while (!stack.empty()) {
      node* x = stack.back();
      stack.pop_back();
      ++nodes;
      ett_counts agg = x->own;
      for (node* c : {x->left, x->right}) {
        if (c == nullptr) continue;
        if (c->parent != x) return "parent pointer mismatch";
        if (c->priority > x->priority) return "heap order violated";
        agg = agg + c->agg;
        stack.push_back(c);
      }
      if (!(agg == x->agg)) return "aggregate mismatch";
      total = x == root ? x->agg : total;
    }
    if (nodes != root->subtree_nodes) return "subtree count mismatch";
    // Tour shape: k vertices, 2(k-1) arcs.
    if (root->subtree_nodes != 3 * total.vertices - 2)
      return "tour length mismatch";
    // Tour orientation: the in-order sequence must be a closed Euler walk —
    // consecutive nodes (cyclically) agree on the vertex between them, each
    // sentinel is the registered node for its vertex, each arc node is one
    // of the two registered arcs of a present tree edge, and counters live
    // only on sentinels. Bulk link/cut rebuilds splice tours from dozens of
    // segments, so a misplaced segment shows up here even when the treap
    // shape itself is healthy.
    std::vector<const node*> tour;
    tour.reserve(root->subtree_nodes);
    std::vector<std::pair<const node*, bool>> walk{{root, false}};
    while (!walk.empty()) {
      auto [x, expanded] = walk.back();
      walk.pop_back();
      if (x == nullptr) continue;
      if (expanded) {
        tour.push_back(x);
      } else {
        walk.push_back({x->right, false});
        walk.push_back({x, true});
        walk.push_back({x->left, false});
      }
    }
    auto describe = [&](const node* x) {
      return !is_arc_tag(x->tag)
                 ? "s" + std::to_string(tail_of(x))
                 : std::to_string(tail_of(x)) + "->" +
                       std::to_string(head_of(x));
    };
    for (size_t i = 0; i < tour.size(); ++i) {
      const node* x = tour[i];
      const node* next = tour[(i + 1) % tour.size()];
      if (head_of(x) != tail_of(next)) {
        std::string msg = "tour orientation broken at position " +
                          std::to_string(i) + ": " + describe(x) + " then " +
                          describe(next);
        if (tour.size() <= 120) {
          msg += " [tour:";
          for (const node* t : tour) msg += " " + describe(t);
          msg += "]";
        }
        return msg;
      }
      if (!is_arc_tag(x->tag)) {
        if (x->tag >= n_ ||
            sentinel(static_cast<vertex_id>(x->tag)) != x)
          return "sentinel identity mismatch";
      } else {
        if (x->own.vertices != 0 || x->own.tree_edges != 0 ||
            x->own.nontree_edges != 0)
          return "counters on an arc node";
        edge e{tail_of(x), head_of(x)};
        const arc_nodes* an = arcs_.find(edge_key(e.canonical()));
        if (an == nullptr) return "arc node for an unregistered edge";
        if (an->fwd != x && an->rev != x) return "arc node identity mismatch";
      }
    }
  }
  // Every arc pair registered in the map must hang under some sentinel's
  // root (i.e. was visited above). Sequential walk: for_each fans out
  // across workers, which would race on the error string.
  for (auto& [key, an] : arcs_.entries()) {
    (void)key;
    if (!seen_root.count(root_of(an.fwd)) ||
        !seen_root.count(root_of(an.rev)))
      return "arc-map node not reachable from any sentinel";
  }
  return "";
}

}  // namespace bdc
