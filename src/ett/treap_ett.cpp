#include "ett/treap_ett.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "parallel/primitives.hpp"
#include "parallel/scheduler.hpp"

namespace bdc {

struct treap_ett::node {
  node* parent = nullptr;
  node* left = nullptr;
  node* right = nullptr;
  uint64_t priority = 0;
  uint64_t tag = 0;  // vertex sentinel: vertex id; arc: arc key | kArcBit
  ett_counts own;    // nonzero only on sentinels
  ett_counts agg;    // subtree sum (own + children)
  uint32_t subtree_nodes = 1;
};

namespace {
constexpr uint64_t kArcBit = uint64_t{1} << 63;
uint64_t arc_key(vertex_id t, vertex_id h) {
  return kArcBit | (static_cast<uint64_t>(t) << 31) |
         static_cast<uint64_t>(h);
}
uint64_t slot_count(const ett_counts& c, bool nontree) {
  return nontree ? c.nontree_edges : c.tree_edges;
}
}  // namespace

treap_ett::treap_ett(vertex_id n, uint64_t seed)
    : rng_(seed), sentinel_(n), arcs_(64) {
  for (vertex_id v = 0; v < n; ++v) {
    sentinel_[v] = make_node(static_cast<uint64_t>(v));
    sentinel_[v]->own.vertices = 1;
    update(sentinel_[v]);
  }
}

treap_ett::node* treap_ett::make_node(uint64_t tag) {
  static_assert(sizeof(node) <= node_pool::kMaxBytes);
  node* x = new (pool_.allocate(sizeof(node))) node;
  x->tag = tag;
  x->priority = rng_.ith_rand(counter_++);
  return x;
}

void treap_ett::free_node(node* x) {
  static_assert(std::is_trivially_destructible_v<node>);
  pool_.deallocate(static_cast<void*>(x), sizeof(node));
}

void treap_ett::update(node* x) {
  x->agg = x->own;
  x->subtree_nodes = 1;
  for (node* c : {x->left, x->right}) {
    if (c == nullptr) continue;
    x->agg = x->agg + c->agg;
    x->subtree_nodes += c->subtree_nodes;
  }
}

treap_ett::node* treap_ett::root_of(node* x) {
  while (x->parent != nullptr) x = x->parent;
  return x;
}

treap_ett::node* treap_ett::merge(node* a, node* b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  if (a->priority > b->priority) {
    node* r = merge(a->right, b);
    a->right = r;
    if (r) r->parent = a;
    update(a);
    return a;
  }
  node* l = merge(a, b->left);
  b->left = l;
  if (l) l->parent = b;
  update(b);
  return b;
}

std::pair<treap_ett::node*, treap_ett::node*> treap_ett::split_before(
    node* x) {
  // Left part: everything before x. Right part: x and after.
  node* l = x->left;
  if (l) {
    l->parent = nullptr;
    x->left = nullptr;
    update(x);
  }
  node* r = x;
  node* cur = x;
  node* p = cur->parent;
  cur->parent = nullptr;
  while (p != nullptr) {
    node* gp = p->parent;
    p->parent = nullptr;
    if (p->right == cur) {
      // cur was p's right child: p and its left subtree precede cur.
      p->right = nullptr;
      update(p);
      l = merge(p, l);
    } else {
      // cur was p's left child: p and its right subtree follow cur.
      p->left = nullptr;
      update(p);
      r = merge(r, p);
    }
    cur = p;
    p = gp;
  }
  return {l, r};
}

std::pair<treap_ett::node*, treap_ett::node*> treap_ett::split_after(
    node* x) {
  node* r = x->right;
  if (r) {
    r->parent = nullptr;
    x->right = nullptr;
    update(x);
  }
  node* l = x;
  node* cur = x;
  node* p = cur->parent;
  cur->parent = nullptr;
  while (p != nullptr) {
    node* gp = p->parent;
    p->parent = nullptr;
    if (p->left == cur) {
      // cur was p's left child: p and its right subtree follow cur.
      p->left = nullptr;
      update(p);
      r = merge(r, p);
    } else {
      p->right = nullptr;
      update(p);
      l = merge(l, p);
    }
    cur = p;
    p = gp;
  }
  return {l, r};
}

size_t treap_ett::rank_of(node* x) {
  size_t rank = x->left ? x->left->subtree_nodes : 0;
  node* cur = x;
  node* p = x->parent;
  while (p != nullptr) {
    if (p->right == cur) {
      rank += 1 + (p->left ? p->left->subtree_nodes : 0);
    }
    cur = p;
    p = p->parent;
  }
  return rank;
}

treap_ett::node* treap_ett::reroot(vertex_id v) {
  node* s = sentinel_[v];
  auto [before, from] = split_before(s);
  return merge(from, before);
}

void treap_ett::link(vertex_id u, vertex_id v) {
  assert(!connected(u, v));
  node* tu = reroot(u);
  node* tv = reroot(v);
  node* uv = make_node(arc_key(u, v));
  node* vu = make_node(arc_key(v, u));
  update(uv);
  update(vu);
  arcs_.reserve_for(1);
  arcs_.insert(edge_key(edge{u, v}.canonical()), {uv, vu});
  merge(merge(tu, uv), merge(tv, vu));
}

void treap_ett::cut(vertex_id u, vertex_id v) {
  uint64_t key = edge_key(edge{u, v}.canonical());
  const arc_nodes* an = arcs_.find(key);
  assert(an != nullptr && "cut: edge not in forest");
  node* a = an->fwd;
  node* b = an->rev;
  arcs_.erase(key);
  if (rank_of(a) > rank_of(b)) std::swap(a, b);
  // Tour = L a M b R  ->  trees (L R) and (M).
  auto [la, xa] = split_before(a);        // la = L, xa = a M b R
  auto [xm, xb] = split_before(b);        // xm = a M, xb = b R
  (void)xa;
  auto [aa, m] = split_after(a);          // aa = a, m = M
  auto [bb, r] = split_after(b);          // bb = b, r = R
  (void)xm;
  (void)xb;
  assert(aa == a && bb == b);
  merge(la, r);
  (void)m;
  free_node(a);
  free_node(b);
}

// ---------------------------------------------------------------------
// Batch surface. Mutations run sequentially (the batch preconditions make
// any order valid); read-only batches fan out across workers.
// ---------------------------------------------------------------------

void treap_ett::batch_link(std::span<const edge> links) {
  arcs_.reserve_for(links.size());
  for (const edge& e : links) link(e.u, e.v);
}

void treap_ett::batch_cut(std::span<const edge> cuts) {
  for (const edge& e : cuts) cut(e.u, e.v);
}

void treap_ett::batch_add_counts(std::span<const count_delta> deltas) {
  for (const count_delta& d : deltas)
    add_counts(d.v, d.tree_delta, d.nontree_delta);
}

bool treap_ett::connected(vertex_id u, vertex_id v) const {
  return root_of(sentinel_[u]) == root_of(sentinel_[v]);
}

std::vector<bool> treap_ett::batch_connected(
    std::span<const std::pair<vertex_id, vertex_id>> queries) const {
  // Byte staging as in the skip-list forest: std::vector<bool> packs bits.
  std::vector<uint8_t> bits(queries.size());
  parallel_for(0, queries.size(), [&](size_t i) {
    bits[i] = connected(queries[i].first, queries[i].second) ? 1 : 0;
  });
  return std::vector<bool>(bits.begin(), bits.end());
}

ett_substrate::rep treap_ett::find_rep(vertex_id v) const {
  return root_of(sentinel_[v]);
}

std::vector<ett_substrate::rep> treap_ett::batch_find_rep(
    std::span<const vertex_id> vs) const {
  std::vector<rep> out(vs.size());
  parallel_for(0, vs.size(), [&](size_t i) { out[i] = find_rep(vs[i]); });
  return out;
}

ett_counts treap_ett::component_counts(vertex_id v) const {
  return root_of(sentinel_[v])->agg;
}

ett_counts treap_ett::vertex_counts(vertex_id v) const {
  return sentinel_[v]->own;
}

void treap_ett::add_counts(vertex_id v, int32_t tree_delta,
                           int32_t nontree_delta) {
  node* s = sentinel_[v];
  assert(static_cast<int64_t>(s->own.tree_edges) + tree_delta >= 0);
  assert(static_cast<int64_t>(s->own.nontree_edges) + nontree_delta >= 0);
  s->own.tree_edges =
      static_cast<uint32_t>(static_cast<int64_t>(s->own.tree_edges) +
                            tree_delta);
  s->own.nontree_edges =
      static_cast<uint32_t>(static_cast<int64_t>(s->own.nontree_edges) +
                            nontree_delta);
  for (node* x = s; x != nullptr; x = x->parent) update(x);
}

vertex_id treap_ett::find_tree_slot(vertex_id v) const {
  node* root = root_of(sentinel_[v]);
  if (root->agg.tree_edges == 0) return kNoVertex;
  node* cur = root;
  while (true) {
    if (cur->left && cur->left->agg.tree_edges > 0) {
      cur = cur->left;
    } else if (cur->own.tree_edges > 0) {
      return static_cast<vertex_id>(cur->tag);
    } else {
      cur = cur->right;
    }
  }
}

vertex_id treap_ett::find_nontree_slot(vertex_id v) const {
  node* root = root_of(sentinel_[v]);
  if (root->agg.nontree_edges == 0) return kNoVertex;
  node* cur = root;
  while (true) {
    if (cur->left && cur->left->agg.nontree_edges > 0) {
      cur = cur->left;
    } else if (cur->own.nontree_edges > 0) {
      return static_cast<vertex_id>(cur->tag);
    } else {
      cur = cur->right;
    }
  }
}

std::vector<std::pair<vertex_id, uint32_t>> treap_ett::fetch_counted(
    vertex_id v, uint64_t want, bool nontree) const {
  std::vector<std::pair<vertex_id, uint32_t>> out;
  if (want == 0) return out;
  // In-order (= tour-order) descent pruned by the subtree aggregates, so
  // the walk touches O(result * lg n) nodes, matching the skip-list
  // substrate's collect_first contract.
  std::vector<std::pair<node*, bool>> stack{{root_of(sentinel_[v]), false}};
  uint64_t left = want;
  while (!stack.empty() && left > 0) {
    auto [x, expanded] = stack.back();
    stack.pop_back();
    if (x == nullptr) continue;
    if (!expanded) {
      if (slot_count(x->agg, nontree) == 0) continue;  // prune
      stack.push_back({x->right, false});
      stack.push_back({x, true});
      stack.push_back({x->left, false});
    } else if (uint64_t own = slot_count(x->own, nontree); own > 0) {
      assert((x->tag & kArcBit) == 0);  // only sentinels carry counts
      uint64_t take = std::min(own, left);
      out.emplace_back(static_cast<vertex_id>(x->tag),
                       static_cast<uint32_t>(take));
      left -= take;
    }
  }
  return out;
}

std::vector<std::pair<vertex_id, uint32_t>> treap_ett::fetch_nontree(
    vertex_id v, uint64_t want) const {
  return fetch_counted(v, want, /*nontree=*/true);
}

std::vector<std::pair<vertex_id, uint32_t>> treap_ett::fetch_tree(
    vertex_id v, uint64_t want) const {
  return fetch_counted(v, want, /*nontree=*/false);
}

std::vector<vertex_id> treap_ett::component_vertices(vertex_id v) const {
  std::vector<vertex_id> out;
  // Iterative in-order walk from the root.
  std::vector<std::pair<node*, bool>> stack{{root_of(sentinel_[v]), false}};
  while (!stack.empty()) {
    auto [x, expanded] = stack.back();
    stack.pop_back();
    if (x == nullptr) continue;
    if (expanded) {
      if ((x->tag & kArcBit) == 0) out.push_back(static_cast<vertex_id>(x->tag));
    } else {
      stack.push_back({x->right, false});
      stack.push_back({x, true});
      stack.push_back({x->left, false});
    }
  }
  return out;
}

std::string treap_ett::check_consistency() const {
  // Validate every treap reachable from a sentinel.
  std::unordered_map<node*, bool> seen_root;
  for (node* s : sentinel_) {
    node* root = root_of(s);
    if (seen_root.count(root)) continue;
    seen_root[root] = true;
    // Recursive structural check.
    std::vector<node*> stack{root};
    ett_counts total{};
    uint32_t nodes = 0;
    while (!stack.empty()) {
      node* x = stack.back();
      stack.pop_back();
      ++nodes;
      ett_counts agg = x->own;
      for (node* c : {x->left, x->right}) {
        if (c == nullptr) continue;
        if (c->parent != x) return "parent pointer mismatch";
        if (c->priority > x->priority) return "heap order violated";
        agg = agg + c->agg;
        stack.push_back(c);
      }
      if (!(agg == x->agg)) return "aggregate mismatch";
      total = x == root ? x->agg : total;
    }
    if (nodes != root->subtree_nodes) return "subtree count mismatch";
    // Tour shape: k vertices, 2(k-1) arcs.
    if (root->subtree_nodes != 3 * total.vertices - 2)
      return "tour length mismatch";
  }
  // Every arc pair registered in the map must hang under some sentinel's
  // root (i.e. was visited above). Sequential walk: for_each fans out
  // across workers, which would race on the error string.
  for (auto& [key, an] : arcs_.entries()) {
    (void)key;
    if (!seen_root.count(root_of(an.fwd)) ||
        !seen_root.count(root_of(an.rev)))
      return "arc-map node not reachable from any sentinel";
  }
  return "";
}

}  // namespace bdc
