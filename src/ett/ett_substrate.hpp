// The substrate boundary of the Euler-tour layer.
//
// The paper's HDT hierarchy (§2.2, §3) is agnostic to how each level's
// Euler tours are represented; only a small forest-level contract matters:
// batch link/cut of tree edges, per-vertex counter maintenance with
// component-wide sums, representative and connectivity queries, and the
// first-ℓ fetch primitives of Appendix 9. `ett_substrate` captures exactly
// that contract as a thin virtual bridge so the level structure and
// `batch_dynamic_connectivity` can select the tour representation at
// runtime (options::substrate), and so substrates can be benchmarked
// head-to-head on identical workloads (bench_substrates).
//
// Three substrates are provided:
//   * substrate::skiplist — `euler_tour_forest`, batch-parallel tours over
//     the phase-concurrent augmented skip list (Tseng et al. [62]); the
//     paper's own representation and the default.
//   * substrate::treap   — `treap_ett`, tours over sequence treaps
//     (Henzinger–King style); mutation batches are parallel join-based
//     bulk operations partitioned by tour, read-only batches fan out
//     across workers.
//   * substrate::blocked — `blocked_ett`, tours as circular lists of
//     cache-packed fixed-size blocks with per-block aggregates and O(1)
//     representative/count queries; the small-component specialist (De
//     Man et al. 2024), and the low-level half of the per-level substrate
//     policy (options::policy).
//
// Phase contract (both substrates): a batch mutation call is one exclusive
// phase; read-only queries (connected / find_rep / counts / fetch) may run
// concurrently with each other but never with a mutation. A mutation batch
// may itself fan work out across the scheduler's workers, so it must be
// issued from a single logical root task, and the batch preconditions
// below (distinct edges, acyclic link batches, present distinct cuts) are
// load-bearing for that internal parallelism — a substrate may partition
// the batch by the tours it touches and mutate those tours concurrently.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "ett/ett_counts.hpp"
#include "util/node_pool.hpp"
#include "util/types.hpp"

namespace bdc {

/// Which Euler-tour representation backs a forest. Selected per structure
/// at construction (options::substrate).
enum class substrate : uint8_t {
  skiplist,  // batch-parallel augmented skip list (paper default)
  treap,     // sequence treaps (HDT-style)
  blocked,   // cache-packed block-linked tours (small-component specialist)
};

[[nodiscard]] const char* to_string(substrate s);
[[nodiscard]] std::optional<substrate> substrate_from_string(
    std::string_view name);

class ett_substrate {
 public:
  /// Opaque component representative: rep(u) == rep(v) iff u and v are in
  /// the same tree. Invalidated by any subsequent batch_link/batch_cut.
  using rep = const void*;

  // ------------------------------------------------------------------
  // Tagged singleton representatives. A vertex with no incident tree arc
  // at this level (its tour is a lone sentinel) reps as the odd value
  // (v << 1) | 1 — never a valid node address — in EVERY substrate. This
  // makes the rep independent of whether the vertex currently holds a
  // directory slot: activation/deactivation (which batch_add_counts may
  // perform) never changes any rep, preserving the contract above that
  // only batch_link/batch_cut invalidate representatives.
  // ------------------------------------------------------------------

  [[nodiscard]] static rep singleton_rep(vertex_id v) {
    return reinterpret_cast<rep>((static_cast<uintptr_t>(v) << 1) | 1u);
  }
  [[nodiscard]] static bool is_singleton_rep(rep r) {
    return (reinterpret_cast<uintptr_t>(r) & 1u) != 0;
  }
  [[nodiscard]] static vertex_id singleton_rep_vertex(rep r) {
    return static_cast<vertex_id>(reinterpret_cast<uintptr_t>(r) >> 1);
  }

  /// Adds (tree_delta, nontree_delta) to a vertex's incident-edge counters.
  struct count_delta {
    vertex_id v;
    int32_t tree_delta;
    int32_t nontree_delta;
  };

  virtual ~ett_substrate() = default;

  [[nodiscard]] virtual size_t num_vertices() const = 0;
  [[nodiscard]] virtual size_t num_edges() const = 0;

  // ------------------------------------------------------------------
  // Updates (each call is one exclusive mutation phase)
  // ------------------------------------------------------------------

  /// Adds `links` to the forest. Preconditions: no self loops, edges
  /// distinct (as undirected pairs), not already present, and the batch
  /// keeps the graph acyclic (the caller runs a spanning-forest pass
  /// first; Algorithms 2, 4, 5 all guarantee this).
  virtual void batch_link(std::span<const edge> links) = 0;
  void link(edge e) { batch_link({&e, 1}); }

  /// Removes `cuts`, which must all be present tree edges (distinct).
  virtual void batch_cut(std::span<const edge> cuts) = 0;
  void cut(edge e) { batch_cut({&e, 1}); }

  /// Applies counter deltas (one entry per vertex at most) and repairs the
  /// component-wide augmentation.
  virtual void batch_add_counts(std::span<const count_delta> deltas) = 0;

  // ------------------------------------------------------------------
  // Queries (read-only phases)
  // ------------------------------------------------------------------

  [[nodiscard]] virtual bool has_edge(edge e) const = 0;
  [[nodiscard]] virtual bool connected(vertex_id u, vertex_id v) const = 0;
  [[nodiscard]] virtual std::vector<bool> batch_connected(
      std::span<const std::pair<vertex_id, vertex_id>> queries) const = 0;

  [[nodiscard]] virtual rep find_rep(vertex_id v) const = 0;
  [[nodiscard]] virtual std::vector<rep> batch_find_rep(
      std::span<const vertex_id> vs) const = 0;

  /// Component-wide augmented sums for v's tree.
  [[nodiscard]] virtual ett_counts component_counts(vertex_id v) const = 0;
  [[nodiscard]] uint32_t component_size(vertex_id v) const {
    return component_counts(v).vertices;
  }
  /// The per-vertex stored counters (not component sums). For validation.
  [[nodiscard]] virtual ett_counts vertex_counts(vertex_id v) const = 0;

  /// Fetches, in tour order, vertices covering the first `want` incident
  /// non-tree (resp. tree) edge slots of v's component. Each result entry
  /// (x, c) means "take c edges from x's level-i non-tree (tree) adjacency
  /// list". Sum of takes == min(want, component total). (Appendix 9.)
  [[nodiscard]] virtual std::vector<std::pair<vertex_id, uint32_t>>
  fetch_nontree(vertex_id v, uint64_t want) const = 0;
  [[nodiscard]] virtual std::vector<std::pair<vertex_id, uint32_t>>
  fetch_tree(vertex_id v, uint64_t want) const = 0;

  /// All vertices of v's component, in tour order (diagnostics / tests).
  [[nodiscard]] virtual std::vector<vertex_id> component_vertices(
      vertex_id v) const = 0;

  /// Invokes `fn(ctx, v)` once per vertex of the component whose
  /// representative is `r` (obtained from find_rep / batch_find_rep in the
  /// same read phase), in tour order. O(component size) with
  /// substrate-specific constants: the blocked substrate streams its
  /// packed 512-byte block chain (one block scan per kBlockCap entries),
  /// the treap and skip list walk their tours node by node. This is the
  /// enumeration primitive behind incremental snapshot publishing — a
  /// touched component can be relabelled without a global O(n) scan.
  virtual void for_each_tour_vertex(rep r, void (*fn)(void* ctx, vertex_id v),
                                    void* ctx) const = 0;

  /// Lambda-friendly adapter for the raw for_each_tour_vertex above.
  template <typename F>
  void for_each_tour_vertex(rep r, F&& f) const {
    using fn_t = std::remove_reference_t<F>;
    for_each_tour_vertex(
        r, [](void* ctx, vertex_id v) { (*static_cast<fn_t*>(ctx))(v); },
        static_cast<void*>(std::addressof(f)));
  }

  /// Deep structural validation (tests). Empty string if healthy.
  [[nodiscard]] virtual std::string check_consistency() const = 0;

  // ------------------------------------------------------------------
  // Memory accounting (ROADMAP "pool sizing / trimming"). Both calls
  // require the substrate to be quiescent (no phase in flight).
  // ------------------------------------------------------------------

  /// Counters of the substrate's node pool (zeroes for substrates that
  /// do not pool).
  [[nodiscard]] virtual node_pool::stats_snapshot pool_stats() const {
    return {};
  }
  /// Vertices currently holding a slot in this forest's sparse vertex
  /// directory (activated by an edge touch at this level and not yet
  /// reclaimed). Safe anytime (atomic counter).
  [[nodiscard]] virtual uint64_t active_vertices() const = 0;
  /// Bytes retained by the per-vertex directory (root table + chunks);
  /// excludes tour nodes, which pool_stats() accounts for. Safe anytime.
  [[nodiscard]] virtual size_t directory_bytes() const = 0;
  /// Releases retained pool memory where safe (see node_pool::trim),
  /// keeping up to `keep_bytes` of blocks as spares for the next burst;
  /// returns the number of bytes returned to the OS.
  virtual size_t trim_pool(size_t keep_bytes = 0) {
    (void)keep_bytes;
    return 0;
  }

  // ------------------------------------------------------------------
  // Read-side snapshot contract (epoch-based concurrent serving).
  //
  // With an epoch_manager bound via bind_read_epochs, the substrate must
  // (a) route every free of reader-reachable memory through the epoch
  // limbo (node_pool::reclaim), and (b) publish reader-visible pointer
  // updates with release stores so a pinned reader never follows a torn
  // path. A substrate that additionally supports_relaxed_reads answers
  // connected_relaxed with plain acquire loads WHILE a mutation batch
  // runs; such an answer is only meaningful after the caller revalidates
  // a version/seqlock it brackets around the read (the batch_dynamic_
  // connectivity service layer does exactly that and discards answers
  // that overlapped a batch). Substrates without relaxed-read support
  // return nullopt and concurrent readers are served from the service's
  // published immutable snapshot instead — a raw concurrent find_rep
  // walk on a pointer structure can resolve u via a stale path and v via
  // a fresh one to the same representative, producing an answer matching
  // NEITHER the pre- nor the post-batch state.
  // ------------------------------------------------------------------

  /// True if connected_relaxed returns answers (only blocked_ett: its
  /// read path is two acquire loads, no multi-hop walk).
  [[nodiscard]] virtual bool supports_relaxed_reads() const { return false; }

  /// Concurrent-read connectivity probe; see the contract above. Returns
  /// nullopt when the substrate cannot answer without a quiescent phase.
  [[nodiscard]] virtual std::optional<bool> connected_relaxed(
      vertex_id u, vertex_id v) const {
    (void)u;
    (void)v;
    return std::nullopt;
  }

  /// Routes future frees of reader-reachable nodes through `em`'s limbo
  /// (nullptr restores immediate frees once drained). Default: no-op for
  /// substrates that are never read concurrently.
  virtual void bind_read_epochs(epoch_manager* em) { (void)em; }

  /// Frees limbo nodes no pinned reader can observe (mutation-quiescent
  /// callers only). Returns the number reclaimed.
  virtual size_t drain_limbo() { return 0; }
};

/// Constructs an empty n-vertex forest over the chosen substrate.
[[nodiscard]] std::unique_ptr<ett_substrate> make_ett(substrate s,
                                                      vertex_id n,
                                                      uint64_t seed);

}  // namespace bdc
