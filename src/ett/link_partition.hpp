// Shared batch-link partitioning for the tour substrates. A link batch
// must be split into groups whose merged components are disjoint before
// groups can mutate concurrently: dense ids are assigned to the touched
// tour representatives (sort + unique + binary search — cheaper than a
// hash map at batch sizes), a union-find over the ids joins links that
// share a tour, and a semisort groups the batch by leader. When every
// representative is distinct the partition is trivial — each link is its
// own singleton group — and the union-find and semisort are skipped
// entirely (the dominant shape of shattered deletion batches, the PR-3
// constant). Parameterized on the representative type so the treap
// (node*) and blocked (uintptr_t) substrates share one copy.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "parallel/scheduler.hpp"
#include "sequence/parallel_sort.hpp"
#include "sequence/semisort.hpp"
#include "spanning/union_find.hpp"

namespace bdc {

/// Reusable buffers for partition_links (mutation phases are exclusive,
/// so a substrate can keep one instance across batches).
template <typename Rep>
struct link_partition_scratch {
  std::vector<Rep> roots;
  std::vector<uint32_t> tid_u, tid_v;
};

template <typename Rep>
struct link_groups {
  /// Every endpoint lives in its own tour: each link is a singleton
  /// group; `groups` is left empty.
  bool all_distinct = false;
  /// Otherwise: (leader, batch index) records grouped by leader.
  grouped_records<uint32_t, uint32_t> groups;
};

template <typename Rep>
link_groups<Rep> partition_links(std::span<const Rep> rep_u,
                                 std::span<const Rep> rep_v,
                                 link_partition_scratch<Rep>& scratch) {
  size_t k = rep_u.size();
  auto& roots = scratch.roots;
  roots.resize(2 * k);
  parallel_for(0, k, [&](size_t i) {
    roots[i] = rep_u[i];
    roots[k + i] = rep_v[i];
  });
  parallel_sort(roots);
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  link_groups<Rep> out;
  if (roots.size() == 2 * k) {
    out.all_distinct = true;
    return out;
  }
  auto& tid_u = scratch.tid_u;
  auto& tid_v = scratch.tid_v;
  tid_u.resize(k);
  tid_v.resize(k);
  parallel_for(0, k, [&](size_t i) {
    tid_u[i] = static_cast<uint32_t>(
        std::lower_bound(roots.begin(), roots.end(), rep_u[i]) -
        roots.begin());
    tid_v[i] = static_cast<uint32_t>(
        std::lower_bound(roots.begin(), roots.end(), rep_v[i]) -
        roots.begin());
  });
  union_find uf(roots.size());
  for (size_t i = 0; i < k; ++i) uf.unite(tid_u[i], tid_v[i]);
  std::vector<std::pair<uint32_t, uint32_t>> keyed(k);
  for (size_t i = 0; i < k; ++i)
    keyed[i] = {uf.find(tid_u[i]), static_cast<uint32_t>(i)};
  out.groups = group_by_key(std::move(keyed));
  return out;
}

}  // namespace bdc
