// Phase-concurrent augmented circular skip list — the sequence structure
// underlying batch-parallel Euler tour trees (Tseng, Dhulipala, Blelloch,
// ALENEX 2019 [62]; paper §2.1 and Appendix 9).
//
// A *sequence* is a circular doubly-linked skip list: the level-0 ring links
// every element in order; the level-ℓ ring links the elements of height > ℓ.
// Each node x of height h carries augmented values aug[0..h-1]:
//   aug[0]     = the node's own value,
//   aug[ℓ] (ℓ>0) = sum of aug[ℓ-1] over x's level-ℓ block — the run of
//                  level-(ℓ-1) ring nodes from x up to (excluding) the next
//                  node of height > ℓ.
// The sum over any ring's top level is the total over the sequence.
//
// Mutation is by *batch splits* followed by *batch joins*:
//   batch_split_after(S): severs the level-0 link after each node in S and
//     every higher-level link crossing a severed boundary. Splits may run
//     fully in parallel; racing severs of one link are idempotent.
//   batch_join(pairs): relinks tail->head pairs level-synchronously (all
//     level-ℓ links are placed before any level-(ℓ+1) link, because the
//     level-(ℓ+1) search walks level-ℓ rings). The pairs must reconstitute
//     complete circles: every severed boundary is either re-joined or
//     belongs to a node being discarded.
//   batch_repair(dirty): recomputes augmented values bottom-up from the
//     level-0 nodes whose value or neighborhood changed.
//
// Phase contract: within one phase all concurrent calls are splits, or all
// joins at one level (the batch entry points enforce this internally), or
// all read-only queries. Distinct phases are separated by fork-join
// barriers. Queries must not run during mutation.
//
// Per-batch costs match Theorem 2: k operations on an n-node sequence take
// O(k lg(1 + n/k)) expected work and O(lg n) depth w.h.p.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

#include "parallel/primitives.hpp"
#include "parallel/scheduler.hpp"
#include "sequence/parallel_sort.hpp"
#include "util/node_pool.hpp"
#include "util/random.hpp"

namespace bdc {

template <typename Aug>
class augmented_skiplist {
 public:
  static constexpr int kMaxHeight = 26;

  struct node {
    uint64_t tag;       // client payload (ETT stores its element descriptor)
    uint8_t height;     // number of levels this node participates in (>= 1)
    std::atomic<uint8_t> flags{0};  // client-managed mark bits
    std::atomic<node*>* next;       // arrays of length `height`
    std::atomic<node*>* prev;
    Aug* aug;

    [[nodiscard]] node* next_at(int lvl) const {
      return next[lvl].load(std::memory_order_acquire);
    }
    [[nodiscard]] node* prev_at(int lvl) const {
      return prev[lvl].load(std::memory_order_acquire);
    }
  };

  explicit augmented_skiplist(uint64_t seed = 0xbdc0ffee)
      : rng_(seed) {}

  augmented_skiplist(const augmented_skiplist&) = delete;
  augmented_skiplist& operator=(const augmented_skiplist&) = delete;

  /// Creates a singleton circular sequence holding `value`. The caller owns
  /// the node and must eventually release it with free_node. Safe to call
  /// concurrently (heights come from a counter-based RNG stream).
  node* create_node(uint64_t tag, const Aug& value) {
    uint64_t draw =
        rng_.ith_rand(counter_.fetch_add(1, std::memory_order_relaxed));
    int h = 1;
    while (h < kMaxHeight && (draw & 1)) {
      ++h;
      draw >>= 1;
    }
    node* n = allocate(h);
    n->tag = tag;
    n->height = static_cast<uint8_t>(h);
    n->flags.store(0, std::memory_order_relaxed);
    for (int l = 0; l < h; ++l) {
      n->next[l].store(n, std::memory_order_relaxed);
      n->prev[l].store(n, std::memory_order_relaxed);
      n->aug[l] = value;
    }
    return n;
  }

  /// Returns a node previously unlinked by a cut (or never linked) to the
  /// pool for recycling. Caller guarantees no other thread can still reach
  /// it. Nodes never individually released are reclaimed wholesale when the
  /// list (and its pool) is destroyed.
  void free_node(node* n) { destroy(n); }

  // --------------------------------------------------------------------
  // Batch mutation
  // --------------------------------------------------------------------

  /// Severs the boundary after each node in `cuts` (between x and its
  /// level-0 successor), including all higher-level links crossing it.
  void batch_split_after(std::span<node* const> cuts) {
    parallel_for(0, cuts.size(), [&](size_t i) { split_after(cuts[i]); });
  }

  /// Splits a single boundary (also usable inside a split phase).
  void split_after(node* x) {
    // Level 0: direct sever.
    node* t = x->next[0].exchange(nullptr, std::memory_order_acq_rel);
    if (t != nullptr) t->prev[0].store(nullptr, std::memory_order_release);
    // Higher levels: find the last node of height > lvl at or before x and
    // sever its forward link, which crosses our boundary.
    node* lp = x;
    for (int lvl = 1; lvl < kMaxHeight; ++lvl) {
      lp = find_tall_left(lp, lvl - 1, lvl + 1);
      if (lp == nullptr) break;  // boundary already open on the left
      node* target = lp->next[lvl].exchange(nullptr, std::memory_order_acq_rel);
      if (target != nullptr)
        target->prev[lvl].store(nullptr, std::memory_order_release);
    }
  }

  /// Joins tail->head pairs. See the class comment for the contract.
  void batch_join(std::span<const std::pair<node*, node*>> joins) {
    size_t k = joins.size();
    if (k == 0) return;
    // Level 0 links.
    parallel_for(0, k, [&](size_t i) {
      auto [t, h] = joins[i];
      t->next[0].store(h, std::memory_order_release);
      h->prev[0].store(t, std::memory_order_release);
    });
    // Higher levels, one synchronous round per level. `frontier` tracks,
    // per join, the deepest already-linked tall nodes on each side; a join
    // drops out once its circle has no taller nodes.
    std::vector<std::pair<node*, node*>> frontier(joins.begin(), joins.end());
    std::vector<uint8_t> active(k, 1);
    for (int lvl = 1; lvl < kMaxHeight; ++lvl) {
      std::atomic<bool> any_active{false};
      parallel_for(0, k, [&](size_t i) {
        if (!active[i]) return;
        auto& [lt, rt] = frontier[i];
        node* lp = find_tall_left(lt, lvl - 1, lvl + 1);
        if (lp == nullptr) {
          active[i] = 0;  // whole circle is shorter than lvl+1
          return;
        }
        node* rp = find_tall_right(rt, lvl - 1, lvl + 1);
        assert(rp != nullptr);  // same circle, same tall-node set
        lp->next[lvl].store(rp, std::memory_order_release);
        rp->prev[lvl].store(lp, std::memory_order_release);
        lt = lp;
        rt = rp;
        any_active.store(true, std::memory_order_relaxed);
      });
      if (!any_active.load(std::memory_order_relaxed)) break;
    }
  }

  /// Sequential single join (tail->head), usable when no batch is active.
  void join(node* t, node* h) {
    std::pair<node*, node*> one{t, h};
    batch_join(std::span<const std::pair<node*, node*>>(&one, 1));
  }

  // --------------------------------------------------------------------
  // Augmentation
  // --------------------------------------------------------------------

  /// Overwrites the bottom value of `x`. Caller must include x in the
  /// next batch_repair.
  void set_value(node* x, const Aug& v) { x->aug[0] = v; }
  [[nodiscard]] const Aug& value(node* x) const { return x->aug[0]; }

  /// Recomputes augmented values for all blocks containing a dirty node,
  /// bottom-up and level-synchronously. `dirty` are level-0 nodes whose
  /// value changed or that border a splice point. All links must already
  /// be final (call after the join phase).
  void batch_repair(std::vector<node*> dirty) {
    sort_unique(dirty);
    for (int lvl = 1; lvl < kMaxHeight && !dirty.empty(); ++lvl) {
      // Owner of a dirty node's block at `lvl`: the nearest node of height
      // > lvl at or to its left on the level-(lvl-1) ring.
      std::vector<node*> owners(dirty.size());
      parallel_for(0, dirty.size(), [&](size_t i) {
        owners[i] = find_tall_left(dirty[i], lvl - 1, lvl + 1);
      });
      owners = filter(owners, [](node* p) { return p != nullptr; });
      sort_unique(owners);
      parallel_for(0, owners.size(), [&](size_t i) {
        node* o = owners[i];
        Aug acc = o->aug[lvl - 1];
        for (node* m = o->next_at(lvl - 1); m != o && m->height <= lvl;
             m = m->next_at(lvl - 1)) {
          acc = acc + m->aug[lvl - 1];
        }
        o->aug[lvl] = acc;
      });
      dirty = std::move(owners);
    }
  }

  // --------------------------------------------------------------------
  // Queries (read-only phases)
  // --------------------------------------------------------------------

  /// Canonical representative of x's circle: the highest node, ties broken
  /// by smallest address. O(lg n) expected. Invalidated by any mutation of
  /// the circle.
  [[nodiscard]] node* representative(node* x) const {
    node* cur = ascend_to_top(x);
    // Walk the top ring (expected O(1) nodes) for the canonical minimum.
    node* best = cur;
    int lvl = cur->height - 1;
    for (node* r = cur->next_at(lvl); r != cur; r = r->next_at(lvl)) {
      if (r < best) best = r;
    }
    return best;
  }

  /// Sum of values over x's entire circle. O(lg n) expected.
  [[nodiscard]] Aug total(node* x) const {
    node* top = ascend_to_top(x);
    int lvl = top->height - 1;
    Aug acc = top->aug[lvl];
    for (node* r = top->next_at(lvl); r != top; r = r->next_at(lvl)) {
      acc = acc + r->aug[lvl];
    }
    return acc;
  }

  /// Collects bottom nodes covering the first `want` units of
  /// `extract(aug)`, in tour order starting from the circle's top node.
  /// Appends (node, take) pairs with take >= 1; sum of takes ==
  /// min(want, total). Cost O(result * lg(1 + n/result)) expected.
  template <typename Extract>
  uint64_t collect_first(node* x, uint64_t want, const Extract& extract,
                         std::vector<std::pair<node*, uint64_t>>& out) const {
    if (want == 0) return 0;
    node* top = ascend_to_top(x);
    int lvl = top->height - 1;
    uint64_t got = 0;
    node* r = top;
    do {
      got += collect_from_block(r, lvl, want - got, extract, out);
      r = r->next_at(lvl);
    } while (got < want && r != top);
    return got;
  }

  /// Enumerates every bottom node of x's circle (diagnostics/tests).
  [[nodiscard]] std::vector<node*> circle_of(node* x) const {
    std::vector<node*> out;
    node* cur = x;
    do {
      out.push_back(cur);
      cur = cur->next_at(0);
    } while (cur != nullptr && cur != x);
    return out;
  }

 private:
  /// First node of height >= min_height at or left of `start` on the
  /// level-`walk_lvl` ring; nullptr if the ring is open (severed) on the
  /// left or the walk wraps without finding one.
  static node* find_tall_left(node* start, int walk_lvl, int min_height) {
    node* cur = start;
    while (cur->height < min_height) {
      node* p = cur->prev_at(walk_lvl);
      if (p == nullptr || p == start) return nullptr;
      cur = p;
    }
    return cur;
  }

  static node* find_tall_right(node* start, int walk_lvl, int min_height) {
    node* cur = start;
    while (cur->height < min_height) {
      node* nx = cur->next_at(walk_lvl);
      if (nx == nullptr || nx == start) return nullptr;
      cur = nx;
    }
    return cur;
  }

  /// Highest-level node reachable from x: repeatedly walk x's top ring
  /// until a taller node appears or the ring closes.
  [[nodiscard]] node* ascend_to_top(node* x) const {
    node* cur = x;
    while (true) {
      int lvl = cur->height - 1;
      node* r = cur;
      node* taller = nullptr;
      do {
        if (r->height > cur->height) {
          taller = r;
          break;
        }
        r = r->next_at(lvl);
      } while (r != cur);
      if (taller == nullptr) return cur;
      cur = taller;
    }
  }

  /// Recursive descent for collect_first: takes up to `want` units from the
  /// block owned by `x` at level `lvl` (x itself plus its short members).
  template <typename Extract>
  uint64_t collect_from_block(node* x, int lvl, uint64_t want,
                              const Extract& extract,
                              std::vector<std::pair<node*, uint64_t>>& out)
      const {
    if (want == 0) return 0;
    uint64_t avail = extract(x->aug[lvl]);
    if (avail == 0) return 0;
    if (lvl == 0) {
      uint64_t take = std::min(want, avail);
      out.emplace_back(x, take);
      return take;
    }
    uint64_t got = collect_from_block(x, lvl - 1, want, extract, out);
    for (node* m = x->next_at(lvl - 1); got < want && m->height <= lvl;
         m = m->next_at(lvl - 1)) {
      got += collect_from_block(m, lvl - 1, want - got, extract, out);
      if (m == x) break;  // degenerate single-node ring safety
    }
    return got;
  }

 public:
  /// The node allocator (memory accounting / trimming). Public so the
  /// owning forest can surface pool statistics; callers must respect the
  /// pool's quiescence requirements.
  [[nodiscard]] node_pool& pool() { return pool_; }
  [[nodiscard]] const node_pool& pool() const { return pool_; }

 private:
  /// Storage footprint of a height-h node (header + link arrays + sums).
  static constexpr size_t node_bytes(int h) {
    return sizeof(node) + static_cast<size_t>(h) *
                              (2 * sizeof(std::atomic<node*>) + sizeof(Aug));
  }

  node* allocate(int h) {
    static_assert(std::is_trivially_destructible_v<Aug>,
                  "Aug must be trivially destructible");
    static_assert(alignof(Aug) <= alignof(std::max_align_t));
    static_assert(node_bytes(kMaxHeight) <= node_pool::kMaxBytes,
                  "Aug too large for pooled allocation");
    size_t bytes = node_bytes(h);
    char* mem = static_cast<char*>(pool_.allocate(bytes));
    node* n = new (mem) node;
    n->next = reinterpret_cast<std::atomic<node*>*>(mem + sizeof(node));
    n->prev = n->next + h;
    n->aug = reinterpret_cast<Aug*>(mem + sizeof(node) +
                                    2 * static_cast<size_t>(h) *
                                        sizeof(std::atomic<node*>));
    for (int l = 0; l < h; ++l) {
      new (&n->next[l]) std::atomic<node*>(nullptr);
      new (&n->prev[l]) std::atomic<node*>(nullptr);
      new (&n->aug[l]) Aug();
    }
    return n;
  }

  void destroy(node* n) {
    static_assert(std::is_trivially_destructible_v<node>);
    pool_.deallocate(static_cast<void*>(n), node_bytes(n->height));
  }

  random rng_;
  std::atomic<uint64_t> counter_{0};
  node_pool pool_;
};

}  // namespace bdc
