// Explicit instantiations of the skip-list checker for the augmentation
// types used across the library and its tests.
#include "skiplist/skiplist_debug.hpp"

#include <functional>

#include "ett/ett_counts.hpp"

namespace bdc {

template std::string check_skiplist_circle<ett_counts,
                                           std::equal_to<ett_counts>>(
    augmented_skiplist<ett_counts>::node*, const std::equal_to<ett_counts>&);

template std::string check_skiplist_circle<long, std::equal_to<long>>(
    augmented_skiplist<long>::node*, const std::equal_to<long>&);

}  // namespace bdc
