// Structural validation for augmented circular skip lists (tests).
#pragma once

#include <string>
#include <vector>

#include "skiplist/augmented_skiplist.hpp"

namespace bdc {

/// Validates the circle containing `start`: link symmetry at every level,
/// the height-filtered subsequence property, and augmented block sums
/// (compared with `eq`). Returns empty string when healthy.
template <typename Aug, typename Eq>
std::string check_skiplist_circle(typename augmented_skiplist<Aug>::node* start,
                                  const Eq& eq) {
  using node = typename augmented_skiplist<Aug>::node;
  std::vector<node*> circle;
  node* cur = start;
  do {
    if (cur == nullptr) return "null link at level 0";
    circle.push_back(cur);
    node* nx = cur->next_at(0);
    if (nx == nullptr || nx->prev_at(0) != cur)
      return "level-0 next/prev mismatch";
    cur = nx;
    if (circle.size() > (1u << 26)) return "circle does not close";
  } while (cur != start);

  int max_h = 0;
  for (node* n : circle) max_h = std::max(max_h, int{n->height});
  for (int lvl = 1; lvl < max_h; ++lvl) {
    std::vector<node*> ring;
    for (node* n : circle)
      if (n->height > lvl) ring.push_back(n);
    if (ring.empty()) break;
    for (size_t i = 0; i < ring.size(); ++i) {
      node* a = ring[i];
      node* b = ring[(i + 1) % ring.size()];
      if (a->next_at(lvl) != b || b->prev_at(lvl) != a)
        return "ring mismatch at level " + std::to_string(lvl);
    }
  }
  size_t n_circ = circle.size();
  for (int lvl = 1; lvl < max_h; ++lvl) {
    for (size_t i = 0; i < n_circ; ++i) {
      node* o = circle[i];
      if (o->height <= lvl) continue;
      Aug acc = o->aug[lvl - 1];
      size_t j = (i + 1) % n_circ;
      while (j != i && circle[j]->height <= lvl) {
        if (circle[j]->height > lvl - 1) acc = acc + circle[j]->aug[lvl - 1];
        j = (j + 1) % n_circ;
      }
      if (!eq(acc, o->aug[lvl]))
        return "augmentation mismatch at level " + std::to_string(lvl);
    }
  }
  return "";
}

}  // namespace bdc
