// Bridges from the per-instance statistics structs to the telemetry
// snapshot. Each structure keeps its single-writer plain-integer stats
// struct (the cheapest possible hot path, and tests read them
// per-instance); these collectors are the ONE place those fields get
// named for export, so the text/JSONL reports and any future consumer
// agree on the catalog. Adding a field to a stats struct without
// extending its collector is the bug these functions exist to make
// obvious — keep them adjacent in review.
#pragma once

#include "core/batch_connectivity.hpp"
#include "core/engine_router.hpp"
#include "hdt/hdt_connectivity.hpp"
#include "obs/telemetry.hpp"
#include "util/node_pool.hpp"

namespace bdc::obs {

/// Core dynamic-connectivity counters (bdc::statistics), including the
/// publish block when any snapshot was published.
void collect(metrics_snapshot& snap, const statistics& st);

/// Engine-router counters, plus the derived cache hit-rate gauge
/// ("router.cache_hit_pct", percent, -1 when no lookups happened).
void collect(metrics_snapshot& snap, const router_statistics& st);

/// Node-pool counters and retention gauges. The input is the value
/// snapshot from node_pool::stats() / pool_stats() — point-in-time
/// semantics documented on node_pool::stats().
void collect(metrics_snapshot& snap, const node_pool::stats_snapshot& st);

/// HDT reference-structure counters.
void collect(metrics_snapshot& snap, const hdt_connectivity::statistics& st);

}  // namespace bdc::obs
