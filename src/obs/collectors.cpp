#include "obs/collectors.hpp"

namespace bdc::obs {

void collect(metrics_snapshot& snap, const statistics& st) {
  snap.add_counter("core.batches_inserted", st.batches_inserted);
  snap.add_counter("core.batches_deleted", st.batches_deleted);
  snap.add_counter("core.edges_inserted", st.edges_inserted);
  snap.add_counter("core.edges_deleted", st.edges_deleted);
  snap.add_counter("core.tree_edges_deleted", st.tree_edges_deleted);
  snap.add_counter("core.levels_searched", st.levels_searched);
  snap.add_counter("core.search_rounds", st.search_rounds);
  snap.add_counter("core.doubling_phases", st.doubling_phases);
  snap.add_counter("core.edges_fetched", st.edges_fetched);
  snap.add_counter("core.edges_pushed", st.edges_pushed);
  snap.add_counter("core.replacements_promoted", st.replacements_promoted);
  if (st.snapshots_published > 0) {
    snap.add_counter("publish.snapshots", st.snapshots_published);
    snap.add_counter("publish.full_walks", st.publishes_full);
    snap.add_counter("publish.relabeled", st.publish_relabeled);
    snap.add_counter("publish.micros", st.publish_micros);
  }
}

void collect(metrics_snapshot& snap, const router_statistics& st) {
  snap.add_counter("router.insert_batches", st.insert_batches);
  snap.add_counter("router.delete_batches", st.delete_batches);
  snap.add_counter("router.query_batches", st.query_batches);
  snap.add_counter("router.phase_switches", st.phase_switches);
  snap.add_counter("router.batches_on_unionfind", st.batches_on_unionfind);
  snap.add_counter("router.batches_on_dynamic", st.batches_on_dynamic);
  snap.add_counter("router.dropped_delete_batches",
                   st.dropped_delete_batches);
  snap.add_counter("router.promotions", st.promotions);
  snap.add_counter("router.promotion_edges", st.promotion_edges);
  snap.add_counter("router.promotion_micros", st.promotion_micros);
  snap.add_counter("router.cache_lookups", st.cache_lookups);
  snap.add_counter("router.cache_hits", st.cache_hits);
  snap.add_counter("router.cache_invalidations", st.cache_invalidations);
  snap.add_gauge("router.cache_hit_pct",
                 st.cache_lookups > 0
                     ? static_cast<int64_t>(100 * st.cache_hits /
                                            st.cache_lookups)
                     : -1);
}

void collect(metrics_snapshot& snap, const node_pool::stats_snapshot& st) {
  snap.add_counter("pool.fresh", st.fresh);
  snap.add_counter("pool.recycled", st.recycled);
  snap.add_counter("pool.freed", st.freed);
  snap.add_counter("pool.trimmed_bytes", st.trimmed_bytes);
  snap.add_counter("pool.dead_block_trims", st.dead_block_trims);
  snap.add_gauge("pool.limbo", static_cast<int64_t>(st.limbo));
  snap.add_gauge("pool.blocks", static_cast<int64_t>(st.blocks));
  snap.add_gauge("pool.spare_blocks", static_cast<int64_t>(st.spare_blocks));
  snap.add_gauge("pool.outstanding", static_cast<int64_t>(st.outstanding()));
  snap.add_gauge("pool.retained_bytes",
                 static_cast<int64_t>(st.retained_bytes()));
}

void collect(metrics_snapshot& snap, const hdt_connectivity::statistics& st) {
  snap.add_counter("hdt.edges_inserted", st.edges_inserted);
  snap.add_counter("hdt.edges_deleted", st.edges_deleted);
  snap.add_counter("hdt.tree_edges_deleted", st.tree_edges_deleted);
  snap.add_counter("hdt.replacements_promoted", st.replacements_promoted);
  snap.add_counter("hdt.edges_pushed", st.edges_pushed);
  snap.add_counter("hdt.levels_searched", st.levels_searched);
}

}  // namespace bdc::obs
