// Unified telemetry: the library's one observability substrate.
//
// Three layers, lowest first:
//
//   * `metric_registry` — named counters, gauges, and log2-bucket
//     histograms. Hot-path writes are ONE cache-local relaxed-atomic
//     increment: every metric's storage is sharded into cache-line-sized
//     slots indexed by the scheduler worker id, so concurrent workers in
//     a parallel phase never contend (external threads hash onto a slot;
//     collisions stay correct, just shared). Reads aggregate the shards —
//     values are point-in-time sums, exact between batches, approximate
//     while writers are mid-flight, and always data-race-free (TSan-clean
//     by construction: every cross-thread access is an atomic).
//   * `phase_span` — a scoped wall-clock timer. On destruction it records
//     the duration into a registry histogram (`span.<name>.us`) and, when
//     tracing is enabled, appends a complete event to `trace_recorder`
//     for chrome://tracing timelines. Declared through BDC_PHASE_SPAN so
//     a `BDC_TELEMETRY=OFF` build compiles every span to an empty object
//     (see obs::noop below) — no clock reads, no registry, no trace.
//   * exporters (obs/exporters.hpp) — human text, JSON-lines, and Chrome
//     trace-event renderings of a `metrics_snapshot`.
//
// Relationship to the per-structure statistics structs
// (`bdc::statistics`, `router_statistics`, `node_pool::stats_snapshot`,
// `hdt_connectivity::statistics`): those remain the per-INSTANCE hot
// counters — they are single-writer plain integers, which is strictly
// cheaper than any shared registry, and tests rely on per-instance
// values. What this subsystem unifies is everything downstream of the
// increment: `obs::collect(...)` (obs/collectors.hpp) folds each struct
// into a `metrics_snapshot`, and the exporters are the ONLY formatting
// path — the bespoke printf report blocks that used to live in
// stream_runner are gone. Registry-native storage is for metrics that
// are genuinely cross-thread (span histograms, trace counters) or
// process-global.
//
// Compile gate: pass -DBDC_TELEMETRY=OFF to CMake (which defines
// BDC_TELEMETRY_ENABLED=0) to compile spans and the BDC_* instrumentation
// macros to no-ops. The registry/exporter TYPES stay available either way
// so tools and tests always build; only the instrumentation sites vanish.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "parallel/scheduler.hpp"

#ifndef BDC_TELEMETRY_ENABLED
#define BDC_TELEMETRY_ENABLED 1
#endif

namespace bdc::obs {

inline constexpr bool kTelemetryEnabled = BDC_TELEMETRY_ENABLED != 0;

/// Shard count for every sharded metric. Power of two; worker ids above
/// it wrap (fetch_add keeps wrapped slots correct, merely shared).
inline constexpr size_t kMetricShards = 16;

[[nodiscard]] inline size_t metric_shard_index() {
  return worker_id() & (kMetricShards - 1);
}

/// Monotonic counter. add() is one relaxed fetch_add on the calling
/// worker's shard; value() sums the shards (point-in-time, see header).
class counter {
 public:
  void add(uint64_t n = 1) {
    shards_[metric_shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t value() const {
    uint64_t total = 0;
    for (const shard& s : shards_)
      total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  /// Zeroes every shard. Requires writer quiescence for an exact result.
  void reset() {
    for (shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) shard {
    std::atomic<uint64_t> v{0};
  };
  std::array<shard, kMetricShards> shards_;
};

/// Last-writer-wins signed level (limbo depth, retained bytes, ...).
/// Unsharded: gauges are set at observation points, not in hot loops.
class gauge {
 public:
  void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { set(0); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log2-bucket histogram. Bucket b counts recorded values v with
/// std::bit_width(v) == b: bucket 0 holds exactly v == 0, and bucket
/// b >= 1 holds the range [2^(b-1), 2^b - 1]. Sum and count ride along
/// for mean computation. Same sharding contract as counter.
class histogram {
 public:
  static constexpr size_t kBuckets = 64;  // bit_width of a uint64_t maxes at 64

  void record(uint64_t v) {
    shard& s = shards_[metric_shard_index()];
    s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] static size_t bucket_of(uint64_t v) {
    return static_cast<size_t>(std::bit_width(v));
  }
  /// Inclusive upper bound of bucket b (0 for bucket 0).
  [[nodiscard]] static uint64_t bucket_upper(size_t b) {
    if (b == 0) return 0;
    if (b >= 64) return ~uint64_t{0};
    return (uint64_t{1} << b) - 1;
  }

  [[nodiscard]] uint64_t count() const { return sum_of(&shard::count); }
  [[nodiscard]] uint64_t sum() const { return sum_of(&shard::sum); }
  /// Aggregated per-bucket counts, trailing zero buckets trimmed.
  [[nodiscard]] std::vector<uint64_t> buckets() const {
    std::vector<uint64_t> out(kBuckets + 1, 0);
    for (const shard& s : shards_)
      for (size_t b = 0; b < out.size(); ++b)
        out[b] += s.buckets[b].load(std::memory_order_relaxed);
    while (!out.empty() && out.back() == 0) out.pop_back();
    return out;
  }
  void reset() {
    for (shard& s : shards_) {
      for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
      s.count.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) shard {
    std::array<std::atomic<uint64_t>, kBuckets + 1> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
  };
  template <typename M>
  [[nodiscard]] uint64_t sum_of(M m) const {
    uint64_t total = 0;
    for (const shard& s : shards_)
      total += (s.*m).load(std::memory_order_relaxed);
    return total;
  }
  std::array<shard, kMetricShards> shards_;
};

enum class metric_kind : uint8_t { counter, gauge, histogram };

[[nodiscard]] const char* to_string(metric_kind k);

/// One exported metric. For counters/gauges only `value` is meaningful;
/// histograms carry count/sum/buckets (value holds the count for sorting
/// convenience).
struct metric_row {
  std::string name;
  metric_kind kind = metric_kind::counter;
  int64_t value = 0;
  uint64_t count = 0;
  uint64_t sum = 0;
  std::vector<uint64_t> buckets;

  [[nodiscard]] double mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
};

/// A value-typed bag of metric rows: what the exporters consume. Rows
/// come from `metric_registry::snapshot()` plus any number of
/// `obs::collect(...)` calls folding per-structure stats structs in.
struct metrics_snapshot {
  std::vector<metric_row> rows;

  void add_counter(std::string name, uint64_t v) {
    rows.push_back({std::move(name), metric_kind::counter,
                    static_cast<int64_t>(v), 0, 0, {}});
  }
  void add_gauge(std::string name, int64_t v) {
    rows.push_back({std::move(name), metric_kind::gauge, v, 0, 0, {}});
  }
  /// Stable-sorts rows by name (exporters emit in this order).
  void sort();
  /// First row with this exact name, or nullptr.
  [[nodiscard]] const metric_row* find(std::string_view name) const;
};

/// Named-metric owner. Registration (get_*) takes a mutex and returns a
/// reference that stays valid for the registry's lifetime — call sites
/// cache it (BDC_PHASE_SPAN does so in a function-local static). The
/// returned objects' hot methods are lock-free.
class metric_registry {
 public:
  metric_registry() = default;
  metric_registry(const metric_registry&) = delete;
  metric_registry& operator=(const metric_registry&) = delete;

  [[nodiscard]] counter& get_counter(std::string_view name);
  [[nodiscard]] gauge& get_gauge(std::string_view name);
  [[nodiscard]] histogram& get_histogram(std::string_view name);
  /// The histogram a span named `name` records into: "span.<name>.us".
  [[nodiscard]] histogram& span_histogram(std::string_view name);

  /// Aggregates every registered metric into rows. Point-in-time: shards
  /// are summed with relaxed loads, so concurrent writers yield an
  /// approximate (never torn) snapshot.
  [[nodiscard]] metrics_snapshot snapshot() const;

  /// Zeroes every registered metric (names stay registered). Requires
  /// writer quiescence for the zeroes to be exact.
  void reset();

  /// The process-wide registry the instrumentation macros write to.
  [[nodiscard]] static metric_registry& global();

 private:
  mutable std::mutex mu_;
  // node-based maps: references handed out must survive future inserts.
  std::map<std::string, std::unique_ptr<counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<histogram>, std::less<>> histograms_;
};

// ---------------------------------------------------------------------
// Trace recording (chrome://tracing timelines)
// ---------------------------------------------------------------------

/// One trace event. `name` must be a string with static storage duration
/// (the instrumentation macros pass literals).
struct trace_event {
  const char* name = nullptr;
  uint64_t ts_ns = 0;   // start, relative to enable()
  uint64_t dur_ns = 0;  // 0 for instant events
  uint32_t tid = 0;     // small per-thread id (see trace_thread_id)
  char ph = 'X';        // 'X' complete, 'i' instant
};

/// Small dense id for the calling thread (assigned on first use);
/// distinguishes reader threads that all report worker_id() == 0.
[[nodiscard]] uint32_t trace_thread_id();

/// Bounded in-memory event sink. Off by default; enable() arms it and
/// stamps the trace epoch. record() is safe from any thread (one relaxed
/// fetch_add claims a slot in the caller's shard; overflow increments a
/// drop counter instead of reallocating). drain() and disable() require
/// quiescence: every recording thread must have synchronized with the
/// caller (joined, or passed a batch barrier) first.
class trace_recorder {
 public:
  static constexpr size_t kDefaultCapacity = size_t{1} << 18;  // per shard

  void enable(size_t capacity_per_shard = kDefaultCapacity);
  void disable();
  [[nodiscard]] bool active() const {
    return active_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::chrono::steady_clock::time_point epoch() const {
    return epoch_;
  }

  void record(const trace_event& ev);
  /// Convenience: instant event stamped now (no-op unless active).
  void instant(const char* name);

  /// Moves every recorded event out (sorted by ts) and clears the
  /// buffers; the recorder stays active. Quiescence required.
  [[nodiscard]] std::vector<trace_event> drain();
  [[nodiscard]] uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] static trace_recorder& global();

 private:
  struct shard {
    std::atomic<size_t> n{0};
    std::vector<trace_event> buf;
  };
  std::atomic<bool> active_{false};
  std::chrono::steady_clock::time_point epoch_{};
  std::array<shard, kMetricShards> shards_;
  std::atomic<uint64_t> dropped_{0};
};

// ---------------------------------------------------------------------
// Phase spans
// ---------------------------------------------------------------------

/// Scoped wall-clock timer; see the header comment. Construct through
/// BDC_PHASE_SPAN (which caches the histogram lookup per call site).
class phase_span {
 public:
  phase_span(const char* name, histogram& hist)
      : name_(name), hist_(&hist),
        start_(std::chrono::steady_clock::now()) {}
  phase_span(const phase_span&) = delete;
  phase_span& operator=(const phase_span&) = delete;
  ~phase_span() {
    const auto end = std::chrono::steady_clock::now();
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
            .count());
    hist_->record(ns / 1000);  // histogram is in microseconds
    trace_recorder& tr = trace_recorder::global();
    if (tr.active()) {
      trace_event ev;
      ev.name = name_;
      ev.ts_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(start_ -
                                                               tr.epoch())
              .count());
      ev.dur_ns = ns;
      ev.tid = trace_thread_id();
      ev.ph = 'X';
      tr.record(ev);
    }
  }

 private:
  const char* name_;
  histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// No-op twins, always compiled: the BDC_TELEMETRY=OFF aliases AND the
/// "compiled out" baseline that bench_telemetry measures against in a
/// normal build. Kept byte-free and trivially destructible — the
/// telemetry_test suite static_asserts these properties so the OFF build
/// cannot silently grow a cost.
namespace noop {
struct counter {
  void add(uint64_t = 1) {}
  [[nodiscard]] uint64_t value() const { return 0; }
};
struct gauge {
  void set(int64_t) {}
  void add(int64_t) {}
  [[nodiscard]] int64_t value() const { return 0; }
};
struct histogram {
  void record(uint64_t) {}
  [[nodiscard]] uint64_t count() const { return 0; }
};
struct phase_span {
  phase_span() {}  // user-provided: silences -Wunused-variable at sites
};
}  // namespace noop

/// Instant trace event (no-op when tracing is off or telemetry compiled
/// out): promotion decisions, fallback triggers, and similar one-shot
/// pipeline events.
inline void trace_instant([[maybe_unused]] const char* name) {
#if BDC_TELEMETRY_ENABLED
  trace_recorder::global().instant(name);
#endif
}

}  // namespace bdc::obs

/// Declares a scoped phase span `var` named `name` (a string literal).
/// ON: times the enclosing scope into the global registry histogram
/// "span.<name>.us" and the trace. OFF: an empty object, nothing else.
#if BDC_TELEMETRY_ENABLED
#define BDC_PHASE_SPAN(var, name)                                         \
  static ::bdc::obs::histogram& var##_bdc_span_hist =                     \
      ::bdc::obs::metric_registry::global().span_histogram(name);         \
  ::bdc::obs::phase_span var((name), var##_bdc_span_hist)
#else
#define BDC_PHASE_SPAN(var, name) ::bdc::obs::noop::phase_span var
#endif
