#include "obs/telemetry.hpp"

#include <algorithm>

namespace bdc::obs {

const char* to_string(metric_kind k) {
  switch (k) {
    case metric_kind::counter: return "counter";
    case metric_kind::gauge: return "gauge";
    case metric_kind::histogram: return "histogram";
  }
  return "counter";
}

void metrics_snapshot::sort() {
  std::stable_sort(rows.begin(), rows.end(),
                   [](const metric_row& a, const metric_row& b) {
                     return a.name < b.name;
                   });
}

const metric_row* metrics_snapshot::find(std::string_view name) const {
  for (const metric_row& r : rows)
    if (r.name == name) return &r;
  return nullptr;
}

counter& metric_registry::get_counter(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<counter>())
             .first;
  return *it->second;
}

gauge& metric_registry::get_gauge(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<gauge>()).first;
  return *it->second;
}

histogram& metric_registry::get_histogram(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<histogram>())
             .first;
  return *it->second;
}

histogram& metric_registry::span_histogram(std::string_view name) {
  std::string full = "span.";
  full.append(name);
  full += ".us";
  return get_histogram(full);
}

metrics_snapshot metric_registry::snapshot() const {
  metrics_snapshot out;
  std::lock_guard lk(mu_);
  for (const auto& [name, c] : counters_)
    out.add_counter(name, c->value());
  for (const auto& [name, g] : gauges_)
    out.add_gauge(name, g->value());
  for (const auto& [name, h] : histograms_) {
    metric_row row;
    row.name = name;
    row.kind = metric_kind::histogram;
    row.count = h->count();
    row.sum = h->sum();
    row.value = static_cast<int64_t>(row.count);
    row.buckets = h->buckets();
    out.rows.push_back(std::move(row));
  }
  out.sort();
  return out;
}

void metric_registry::reset() {
  std::lock_guard lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

metric_registry& metric_registry::global() {
  // Leaked on purpose: instrumentation sites cache references in
  // function-local statics, so destruction order at exit must never
  // invalidate them.
  static metric_registry* r = new metric_registry();
  return *r;
}

uint32_t trace_thread_id() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void trace_recorder::enable(size_t capacity_per_shard) {
  for (shard& s : shards_) {
    s.buf.resize(capacity_per_shard);
    s.n.store(0, std::memory_order_relaxed);
  }
  dropped_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
  active_.store(true, std::memory_order_release);
}

void trace_recorder::disable() {
  active_.store(false, std::memory_order_release);
}

void trace_recorder::record(const trace_event& ev) {
  if (!active()) return;
  shard& s = shards_[metric_shard_index()];
  const size_t i = s.n.fetch_add(1, std::memory_order_relaxed);
  if (i < s.buf.size())
    s.buf[i] = ev;
  else
    dropped_.fetch_add(1, std::memory_order_relaxed);
}

void trace_recorder::instant(const char* name) {
  if (!active()) return;
  trace_event ev;
  ev.name = name;
  ev.ts_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  ev.dur_ns = 0;
  ev.tid = trace_thread_id();
  ev.ph = 'i';
  record(ev);
}

std::vector<trace_event> trace_recorder::drain() {
  std::vector<trace_event> out;
  for (shard& s : shards_) {
    const size_t n = std::min(s.n.load(std::memory_order_relaxed),
                              s.buf.size());
    out.insert(out.end(), s.buf.begin(),
               s.buf.begin() + static_cast<ptrdiff_t>(n));
    s.n.store(0, std::memory_order_relaxed);
  }
  std::sort(out.begin(), out.end(),
            [](const trace_event& a, const trace_event& b) {
              return a.ts_ns < b.ts_ns;
            });
  return out;
}

trace_recorder& trace_recorder::global() {
  static trace_recorder* r = new trace_recorder();  // leaked, same as above
  return *r;
}

}  // namespace bdc::obs
