// Renderings of a metrics_snapshot / trace buffer. Three formats:
//
//   * export_text   — the human report stream_runner prints after a
//                     replay (grouped by dotted metric prefix). This is
//                     THE formatting path; structures no longer carry
//                     bespoke printf blocks.
//   * export_jsonl  — one JSON object per metric per line, for CI
//                     artifacts and bench_diff.py --counters. Schema:
//                       {"label":L,"metric":N,"kind":K,"value":V}
//                     histograms add "count","sum","buckets" (log2
//                     buckets, index = bit_width of the value).
//   * export_chrome_trace — Chrome trace-event JSON ("traceEvents"
//                     array) for chrome://tracing / Perfetto.
//
// parse_jsonl() reads export_jsonl output back (round-trip tested); it
// understands exactly this schema, not general JSON.
#pragma once

#include <cstdio>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/telemetry.hpp"

namespace bdc::obs {

/// Human-readable report: rows grouped by first dotted name segment,
/// two-space indented to match stream_runner's historical layout.
void export_text(std::FILE* out, const metrics_snapshot& snap);

/// JSON-lines. `label` tags every line (run configuration, e.g.
/// "dynamic/blocked"); empty is allowed.
void export_jsonl(std::ostream& out, const metrics_snapshot& snap,
                  std::string_view label);

/// One parsed export_jsonl line.
struct jsonl_record {
  std::string label;
  metric_row row;
};

/// Parses export_jsonl output (and nothing more general). Lines that do
/// not match the schema are skipped.
[[nodiscard]] std::vector<jsonl_record> parse_jsonl(std::istream& in);

/// Chrome trace-event JSON. `dropped` (from trace_recorder::dropped())
/// is recorded as metadata so truncated traces are self-describing.
void export_chrome_trace(std::ostream& out,
                         const std::vector<trace_event>& events,
                         uint64_t dropped);

/// JSON string escaping for the small set of characters our metric
/// names/labels can contain (exposed for tests).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace bdc::obs
