#include "obs/exporters.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdint>
#include <cstdlib>

namespace bdc::obs {
namespace {

[[nodiscard]] std::string_view group_of(std::string_view name) {
  const size_t dot = name.find('.');
  return dot == std::string_view::npos ? name : name.substr(0, dot);
}

}  // namespace

void export_text(std::FILE* out, const metrics_snapshot& snap) {
  metrics_snapshot sorted = snap;
  sorted.sort();
  std::string_view group;
  size_t in_group = 0;
  for (const metric_row& r : sorted.rows) {
    const std::string_view g = group_of(r.name);
    if (g != group) {
      if (!group.empty()) std::fputc('\n', out);
      std::fprintf(out, "  %.*s:", static_cast<int>(g.size()), g.data());
      group = g;
      in_group = 0;
    }
    const std::string_view rest =
        r.name.size() > g.size() ? std::string_view(r.name).substr(g.size() + 1)
                                 : std::string_view("value");
    // Four metrics per line keeps the report compact without a pager.
    if (in_group > 0 && in_group % 4 == 0)
      std::fprintf(out, "\n%*s", static_cast<int>(g.size()) + 3, "");
    ++in_group;
    switch (r.kind) {
      case metric_kind::counter:
        std::fprintf(out, " %.*s %" PRIu64 " |",
                     static_cast<int>(rest.size()), rest.data(),
                     static_cast<uint64_t>(r.value));
        break;
      case metric_kind::gauge:
        std::fprintf(out, " %.*s %" PRId64 " |",
                     static_cast<int>(rest.size()), rest.data(), r.value);
        break;
      case metric_kind::histogram:
        std::fprintf(out, " %.*s n=%" PRIu64 " mean=%.1f sum=%" PRIu64 " |",
                     static_cast<int>(rest.size()), rest.data(), r.count,
                     r.mean(), r.sum);
        break;
    }
  }
  if (!sorted.rows.empty()) std::fputc('\n', out);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void export_jsonl(std::ostream& out, const metrics_snapshot& snap,
                  std::string_view label) {
  const std::string esc_label = json_escape(label);
  for (const metric_row& r : snap.rows) {
    out << "{\"label\":\"" << esc_label << "\",\"metric\":\""
        << json_escape(r.name) << "\",\"kind\":\"" << to_string(r.kind)
        << "\"";
    if (r.kind == metric_kind::histogram) {
      out << ",\"count\":" << r.count << ",\"sum\":" << r.sum
          << ",\"buckets\":[";
      for (size_t b = 0; b < r.buckets.size(); ++b) {
        if (b > 0) out << ',';
        out << r.buckets[b];
      }
      out << ']';
    } else {
      out << ",\"value\":" << r.value;
    }
    out << "}\n";
  }
}

namespace {

// Minimal scanner for the fixed export_jsonl schema. Returns false when
// the expected token is absent.
struct line_scanner {
  std::string_view s;
  size_t i = 0;

  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
  }
  bool lit(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool string(std::string& out) {
    skip_ws();
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    out.clear();
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) {
        ++i;
        switch (s[i]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (i + 4 >= s.size()) return false;
            const unsigned v = static_cast<unsigned>(
                std::strtoul(std::string(s.substr(i + 1, 4)).c_str(),
                             nullptr, 16));
            out += static_cast<char>(v);
            i += 4;
            break;
          }
          default: out += s[i]; break;
        }
      } else {
        out += s[i];
      }
      ++i;
    }
    if (i >= s.size()) return false;
    ++i;  // closing quote
    return true;
  }
  bool integer(int64_t& out) {
    skip_ws();
    const size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
      ++i;
    if (i == start) return false;
    out = std::strtoll(std::string(s.substr(start, i - start)).c_str(),
                       nullptr, 10);
    return true;
  }
};

}  // namespace

std::vector<jsonl_record> parse_jsonl(std::istream& in) {
  std::vector<jsonl_record> out;
  std::string line;
  while (std::getline(in, line)) {
    line_scanner sc{line};
    if (!sc.lit('{')) continue;
    jsonl_record rec;
    bool ok = true, have_metric = false;
    bool first = true;
    while (ok) {
      if (!first && !sc.lit(',')) break;
      first = false;
      std::string key;
      if (!sc.string(key) || !sc.lit(':')) {
        ok = false;
        break;
      }
      if (key == "label") {
        ok = sc.string(rec.label);
      } else if (key == "metric") {
        ok = sc.string(rec.row.name);
        have_metric = ok;
      } else if (key == "kind") {
        std::string kind;
        ok = sc.string(kind);
        if (kind == "gauge")
          rec.row.kind = metric_kind::gauge;
        else if (kind == "histogram")
          rec.row.kind = metric_kind::histogram;
        else
          rec.row.kind = metric_kind::counter;
      } else if (key == "value") {
        ok = sc.integer(rec.row.value);
      } else if (key == "count") {
        int64_t v = 0;
        ok = sc.integer(v);
        rec.row.count = static_cast<uint64_t>(v);
        rec.row.value = v;
      } else if (key == "sum") {
        int64_t v = 0;
        ok = sc.integer(v);
        rec.row.sum = static_cast<uint64_t>(v);
      } else if (key == "buckets") {
        ok = sc.lit('[');
        if (ok && !sc.lit(']')) {
          do {
            int64_t v = 0;
            if (!sc.integer(v)) {
              ok = false;
              break;
            }
            rec.row.buckets.push_back(static_cast<uint64_t>(v));
          } while (sc.lit(','));
          if (ok) ok = sc.lit(']');
        }
      } else {
        ok = false;  // unknown key: not our schema
      }
    }
    if (ok && have_metric && sc.lit('}')) out.push_back(std::move(rec));
  }
  return out;
}

void export_chrome_trace(std::ostream& out,
                         const std::vector<trace_event>& events,
                         uint64_t dropped) {
  out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
      << dropped << "},\"traceEvents\":[";
  bool first = true;
  for (const trace_event& ev : events) {
    if (ev.name == nullptr) continue;
    if (!first) out << ',';
    first = false;
    // Chrome's ts/dur are microseconds (fractions allowed).
    out << "\n{\"name\":\"" << json_escape(ev.name)
        << "\",\"ph\":\"" << ev.ph << "\",\"pid\":1,\"tid\":" << ev.tid
        << ",\"ts\":" << static_cast<double>(ev.ts_ns) / 1e3;
    if (ev.ph == 'X')
      out << ",\"dur\":" << static_cast<double>(ev.dur_ns) / 1e3;
    if (ev.ph == 'i') out << ",\"s\":\"t\"";
    out << ",\"cat\":\"bdc\"}";
  }
  out << "\n]}\n";
}

}  // namespace bdc::obs
