// Phase-concurrent open-addressing hash map (the paper's "parallel
// dictionary", after Gil–Matias–Vishkin [23]; engineering follows the
// phase-concurrent tables of Shun & Blelloch [55]).
//
// Contract (phase concurrency): within one parallel phase, all concurrent
// operations are of one kind — inserts of *distinct* keys, erases of distinct
// keys, in-place value updates of distinct keys, or read-only finds. Distinct
// phases are separated by fork-join barriers, which every batch algorithm in
// this library already has. Under that contract each slot has a single
// writer, so values need no atomicity; only the key claim uses CAS.
//
// insert_if_absent() relaxes the insert phase to allow duplicate keys: a
// caller that finds the key already claimed returns without touching the
// value slot, so the claiming winner remains the slot's single writer.
//
// A batch of k operations costs O(k) expected work and O(lg k) depth w.h.p.
// (the paper's dictionary achieves O(lg* k) depth; nothing downstream needs
// sub-logarithmic depth — see DESIGN.md §4).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "parallel/primitives.hpp"
#include "parallel/scheduler.hpp"
#include "util/bits.hpp"
#include "util/random.hpp"

namespace bdc {

template <typename V>
class phase_concurrent_map {
 public:
  using key_type = uint64_t;
  static constexpr key_type kEmpty = ~key_type{0};
  static constexpr key_type kTombstone = ~key_type{0} - 1;

  explicit phase_concurrent_map(size_t expected_size = 16) {
    size_t cap = next_pow2(std::max<size_t>(16, expected_size * 2));
    rebuild(cap);
  }

  phase_concurrent_map(const phase_concurrent_map&) = delete;
  phase_concurrent_map& operator=(const phase_concurrent_map&) = delete;
  phase_concurrent_map(phase_concurrent_map&& o) noexcept
      : keys_(std::move(o.keys_)),
        values_(std::move(o.values_)),
        size_(o.size_.load(std::memory_order_relaxed)),
        tombstones_since_rebuild_(
            o.tombstones_since_rebuild_.load(std::memory_order_relaxed)),
        tombstones_(o.tombstones_) {}
  phase_concurrent_map& operator=(phase_concurrent_map&& o) noexcept {
    keys_ = std::move(o.keys_);
    values_ = std::move(o.values_);
    size_.store(o.size_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    tombstones_since_rebuild_.store(
        o.tombstones_since_rebuild_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    tombstones_ = o.tombstones_;
    return *this;
  }

  [[nodiscard]] size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] size_t capacity() const { return keys_.size(); }

  /// Ensures a subsequent phase of `extra` distinct-key inserts cannot
  /// overflow (the table keeps at least half its slots truly empty, which
  /// also bounds probe lengths). Must be called outside any concurrent
  /// phase.
  void reserve_for(size_t extra) {
    size_t tombs = tombstones_since_rebuild_.load(std::memory_order_relaxed);
    size_t needed = size() + tombs + extra;
    if (2 * needed >= capacity()) {
      rebuild(next_pow2(std::max<size_t>(16, 4 * (size() + extra))));
    }
  }

  /// Inserts (k, v); returns true if the key was new, overwriting the value
  /// otherwise. Safe concurrently with other inserts of distinct keys.
  /// Keys kEmpty/kTombstone are reserved.
  bool insert(key_type k, const V& v) { return insert_impl<true>(k, v); }

  /// Inserts (k, v) only if the key is absent; returns true iff this call
  /// claimed the key. Unlike insert(), concurrent calls with the SAME key
  /// are safe: within an insert phase slots move monotonically from
  /// empty/tombstone to a key, so duplicate callers either lose the CAS on
  /// the claimed slot or see the key on rescan — and then return without
  /// touching the value, leaving the winner as the slot's single writer.
  /// Use this for batches that may carry duplicate keys (edge streams do).
  bool insert_if_absent(key_type k, const V& v) {
    return insert_impl<false>(k, v);
  }

  /// Pointer to the value for k, or nullptr. Safe concurrently with other
  /// finds and with value updates of other keys.
  [[nodiscard]] V* find(key_type k) {
    size_t mask = keys_.size() - 1;
    size_t i = hash64(k) & mask;
    while (true) {
      key_type cur = keys_[i].load(std::memory_order_acquire);
      if (cur == k) return &values_[i];
      if (cur == kEmpty) return nullptr;
      i = (i + 1) & mask;
    }
  }
  [[nodiscard]] const V* find(key_type k) const {
    return const_cast<phase_concurrent_map*>(this)->find(k);
  }
  [[nodiscard]] bool contains(key_type k) const { return find(k) != nullptr; }

  /// Erases k; returns true if present. Safe concurrently with erases of
  /// distinct keys.
  bool erase(key_type k) {
    size_t mask = keys_.size() - 1;
    size_t i = hash64(k) & mask;
    while (true) {
      key_type cur = keys_[i].load(std::memory_order_acquire);
      if (cur == k) {
        keys_[i].store(kTombstone, std::memory_order_release);
        size_.fetch_sub(1, std::memory_order_relaxed);
        tombstones_since_rebuild_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      if (cur == kEmpty) return false;
      i = (i + 1) & mask;
    }
  }

  /// Batch operations (these take care of reservation / compaction).
  void insert_batch(std::span<const std::pair<key_type, V>> kvs) {
    reserve_for(kvs.size());
    parallel_for(0, kvs.size(),
                 [&](size_t i) { insert(kvs[i].first, kvs[i].second); });
  }
  void erase_batch(std::span<const key_type> ks) {
    parallel_for(0, ks.size(), [&](size_t i) { erase(ks[i]); });
    maybe_compact();
  }
  std::vector<V*> find_batch(std::span<const key_type> ks) {
    std::vector<V*> out(ks.size());
    parallel_for(0, ks.size(), [&](size_t i) { out[i] = find(ks[i]); });
    return out;
  }

  /// Applies f(key, value&) to every element, in parallel. Must not insert
  /// or erase.
  template <typename F>
  void for_each(const F& f) {
    parallel_for(0, keys_.size(), [&](size_t i) {
      key_type k = keys_[i].load(std::memory_order_acquire);
      if (k != kEmpty && k != kTombstone) f(k, values_[i]);
    });
  }
  template <typename F>
  void for_each(const F& f) const {
    parallel_for(0, keys_.size(), [&](size_t i) {
      key_type k = keys_[i].load(std::memory_order_acquire);
      if (k != kEmpty && k != kTombstone) f(k, values_[i]);
    });
  }

  /// All (key, value) pairs, in unspecified order.
  [[nodiscard]] std::vector<std::pair<key_type, V>> entries() const {
    std::vector<uint8_t> live(keys_.size());
    parallel_for(0, keys_.size(), [&](size_t i) {
      key_type k = keys_[i].load(std::memory_order_relaxed);
      live[i] = (k != kEmpty && k != kTombstone) ? 1 : 0;
    });
    auto idx = pack_index(keys_.size(), [&](size_t i) { return live[i] != 0; });
    std::vector<std::pair<key_type, V>> out(idx.size());
    parallel_for(0, idx.size(), [&](size_t i) {
      out[i] = {keys_[idx[i]].load(std::memory_order_relaxed),
                values_[idx[i]]};
    });
    return out;
  }

 private:
  template <bool Overwrite>
  bool insert_impl(key_type k, const V& v) {
    assert(k != kEmpty && k != kTombstone);
    size_t mask = keys_.size() - 1;
    while (true) {
      // Pass 1: walk the probe chain to the key or the first empty slot,
      // remembering the first tombstone. Claiming a tombstone before
      // confirming the key is absent further down the chain would create
      // a duplicate entry.
      size_t i = hash64(k) & mask;
      size_t target = SIZE_MAX;  // first tombstone seen
      while (true) {
        key_type cur = keys_[i].load(std::memory_order_acquire);
        if (cur == k) {
          // Overwrite only under the distinct-keys contract (single writer
          // per key); if_absent callers may be racing the claim's winner.
          if constexpr (Overwrite) values_[i] = v;
          return false;
        }
        if (cur == kEmpty) {
          if (target == SIZE_MAX) target = i;
          break;
        }
        if (cur == kTombstone && target == SIZE_MAX) target = i;
        i = (i + 1) & mask;
      }
      // Pass 2: claim the slot, then write the value. Readers only access
      // values in later phases (after a fork-join barrier orders the value
      // write); writing the value before the CAS would let a racing insert
      // of a different key clobber it.
      key_type expected = keys_[target].load(std::memory_order_acquire);
      if (expected != kEmpty && expected != kTombstone) continue;  // raced
      if (keys_[target].compare_exchange_strong(expected, k,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
        values_[target] = v;
        size_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // Lost the claim to a racing insert; rescan from scratch (a same-key
      // racer, legal for if_absent, will find the key and bail out above).
    }
  }

  void maybe_compact() {
    size_t tombs = tombstones_since_rebuild_.load(std::memory_order_relaxed);
    if (2 * (size() + tombs) >= capacity() && tombs > size() / 2) {
      rebuild(next_pow2(std::max<size_t>(16, 4 * (size() + 1))));
    }
  }

  void rebuild(size_t new_cap) {
    auto old = entries_for_rebuild();
    keys_ = std::vector<std::atomic<key_type>>(new_cap);
    parallel_for(0, new_cap, [&](size_t i) {
      keys_[i].store(kEmpty, std::memory_order_relaxed);
    });
    values_.assign(new_cap, V{});
    size_.store(0, std::memory_order_relaxed);
    tombstones_ = 0;
    tombstones_since_rebuild_.store(0, std::memory_order_relaxed);
    parallel_for(0, old.size(),
                 [&](size_t i) { insert(old[i].first, old[i].second); });
  }

  [[nodiscard]] std::vector<std::pair<key_type, V>> entries_for_rebuild()
      const {
    if (keys_.empty()) return {};
    return entries();
  }

  std::vector<std::atomic<key_type>> keys_;
  std::vector<V> values_;
  std::atomic<size_t> size_{0};
  std::atomic<size_t> tombstones_since_rebuild_{0};
  size_t tombstones_ = 0;
};

}  // namespace bdc
