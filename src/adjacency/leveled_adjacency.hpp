// Per-level adjacency storage (paper Appendix 8) and the global edge
// dictionary record (paper §3 "Data Structures").
//
// Each level i keeps, for every vertex with edges at that level, two
// resizable arrays: incident tree edges of level i and incident non-tree
// edges of level i (stored separately so they can be fetched separately).
// Every edge appears in the arrays of both endpoints; the global edge
// dictionary records its level, tree/non-tree status, and its slot in each
// endpoint's array, giving O(1) amortized insert/delete/fetch per edge
// (Lemma 9) via swap-with-last deletion.
//
// Batch operations take inputs grouped by endpoint (via semisort): each
// group is mutated sequentially by one task while groups proceed in
// parallel, so each array and each record position field has a single
// writer per phase. (The paper's compaction scheme gives O(lg n) worst-case
// depth per batch; our per-vertex-sequential variant is O(max group size),
// which is O(1) expected for the hashed batches the core algorithm builds —
// see DESIGN.md §8.)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hashtable/phase_concurrent_map.hpp"
#include "sequence/semisort.hpp"
#include "util/types.hpp"

namespace bdc {

/// Global per-edge bookkeeping. Lives in one phase_concurrent_map keyed by
/// the canonical edge key; exactly one record per present edge.
struct edge_record {
  int16_t level = -1;    // current level of the edge
  uint8_t is_tree = 0;   // 1 if the edge is in the spanning forests
  // Slot of this edge in the adjacency array of canonical endpoint u
  // (pos[0]) and v (pos[1]) at its current level.
  uint32_t pos[2] = {0, 0};
};

using edge_dict = phase_concurrent_map<edge_record>;

/// One level's adjacency lists.
class leveled_adjacency {
 public:
  leveled_adjacency() : slots_(16) {}
  ~leveled_adjacency();

  leveled_adjacency(const leveled_adjacency&) = delete;
  leveled_adjacency& operator=(const leveled_adjacency&) = delete;

  /// An incidence to process: `e` is the edge; the group key names the
  /// endpoint whose list is touched.
  struct incidence {
    edge e;
    uint8_t is_tree;
  };
  using grouped = grouped_records<vertex_id, incidence>;

  /// Inserts every incidence into its endpoint's list and fills in the
  /// edge records' position fields. Each edge must be supplied under both
  /// endpoints (possibly in different calls only if symmetric). Records in
  /// `dict` must already exist with `level` and `is_tree` set.
  void insert_grouped(const grouped& by_endpoint, edge_dict& dict);

  /// Removes every incidence from its endpoint's list (swap-with-last),
  /// patching the displaced edge's record.
  void erase_grouped(const grouped& by_endpoint, edge_dict& dict);

  /// Moves an edge between the tree and non-tree lists of both endpoints.
  /// Grouped like insert; records' is_tree must already be updated.
  void change_kind_grouped(const grouped& by_endpoint, edge_dict& dict);

  /// Number of tree / non-tree edges incident to u at this level.
  [[nodiscard]] uint32_t tree_degree(vertex_id u) const;
  [[nodiscard]] uint32_t nontree_degree(vertex_id u) const;

  /// Appends the first `want` tree (non-tree) edges incident to u.
  void fetch_tree(vertex_id u, uint32_t want, std::vector<edge>& out) const;
  void fetch_nontree(vertex_id u, uint32_t want,
                     std::vector<edge>& out) const;

  /// Total incidences stored (each edge counted twice). For tests.
  [[nodiscard]] size_t total_incidences() const;

  /// Verifies the position back-pointers of every stored edge. Returns an
  /// empty string if consistent (tests only; O(size)).
  [[nodiscard]] std::string check_positions(const edge_dict& dict,
                                            int level) const;

 private:
  struct vertex_slot {
    std::vector<edge> tree;     // edges (stored canonically) at this level
    std::vector<edge> nontree;
  };

  [[nodiscard]] vertex_slot* slot_for(vertex_id u) const;
  vertex_slot* ensure_slot(vertex_id u);

  /// Position field index of endpoint `u` in edge `c` (c canonical).
  static int side_of(const edge& c, vertex_id u) { return c.v == u ? 1 : 0; }

  // vertex -> heap slot. Entries are created on demand during insert
  // phases (one insert per group => distinct keys) and never removed;
  // empty slots are cheap husks reclaimed at destruction.
  mutable phase_concurrent_map<vertex_slot*> slots_;
};

}  // namespace bdc
