#include "adjacency/leveled_adjacency.hpp"

#include <cassert>
#include <string>

#include "parallel/scheduler.hpp"

namespace bdc {

leveled_adjacency::~leveled_adjacency() {
  slots_.for_each([](uint64_t, vertex_slot*& s) { delete s; });
}

leveled_adjacency::vertex_slot* leveled_adjacency::slot_for(
    vertex_id u) const {
  vertex_slot* const* p = slots_.find(static_cast<uint64_t>(u));
  return p == nullptr ? nullptr : *p;
}

leveled_adjacency::vertex_slot* leveled_adjacency::ensure_slot(vertex_id u) {
  if (vertex_slot* s = slot_for(u)) return s;
  auto* s = new vertex_slot();
  slots_.insert(static_cast<uint64_t>(u), s);
  return s;
}

void leveled_adjacency::insert_grouped(const grouped& by_endpoint,
                                       edge_dict& dict) {
  // One insert per group may create a slot; reserve before the phase.
  slots_.reserve_for(by_endpoint.num_groups());
  parallel_for(
      0, by_endpoint.num_groups(),
      [&](size_t g) {
        vertex_id u = by_endpoint.group_key(g);
        vertex_slot* s = ensure_slot(u);
        uint32_t st = by_endpoint.group_starts[g];
        uint32_t en = by_endpoint.group_starts[g + 1];
        for (uint32_t i = st; i < en; ++i) {
          const incidence& inc = by_endpoint.records[i].second;
          edge c = inc.e.canonical();
          auto& list = inc.is_tree ? s->tree : s->nontree;
          edge_record* rec = dict.find(edge_key(c));
          assert(rec != nullptr);
          rec->pos[side_of(c, u)] = static_cast<uint32_t>(list.size());
          list.push_back(c);
        }
      },
      1);
}

void leveled_adjacency::erase_grouped(const grouped& by_endpoint,
                                      edge_dict& dict) {
  parallel_for(
      0, by_endpoint.num_groups(),
      [&](size_t g) {
        vertex_id u = by_endpoint.group_key(g);
        vertex_slot* s = slot_for(u);
        assert(s != nullptr);
        uint32_t st = by_endpoint.group_starts[g];
        uint32_t en = by_endpoint.group_starts[g + 1];
        for (uint32_t i = st; i < en; ++i) {
          const incidence& inc = by_endpoint.records[i].second;
          edge c = inc.e.canonical();
          edge_record* rec = dict.find(edge_key(c));
          assert(rec != nullptr);
          auto& list = inc.is_tree ? s->tree : s->nontree;
          int side = side_of(c, u);
          uint32_t slot = rec->pos[side];
          assert(slot < list.size() && list[slot] == c);
          edge moved = list.back();
          list[slot] = moved;
          list.pop_back();
          if (moved != c) {
            edge_record* mrec = dict.find(edge_key(moved));
            assert(mrec != nullptr);
            mrec->pos[side_of(moved, u)] = slot;
          }
        }
      },
      1);
}

void leveled_adjacency::change_kind_grouped(const grouped& by_endpoint,
                                            edge_dict& dict) {
  parallel_for(
      0, by_endpoint.num_groups(),
      [&](size_t g) {
        vertex_id u = by_endpoint.group_key(g);
        vertex_slot* s = slot_for(u);
        assert(s != nullptr);
        uint32_t st = by_endpoint.group_starts[g];
        uint32_t en = by_endpoint.group_starts[g + 1];
        for (uint32_t i = st; i < en; ++i) {
          const incidence& inc = by_endpoint.records[i].second;
          edge c = inc.e.canonical();
          edge_record* rec = dict.find(edge_key(c));
          assert(rec != nullptr);
          // inc.is_tree is the NEW kind; the edge currently sits in the
          // other list.
          auto& from = inc.is_tree ? s->nontree : s->tree;
          auto& to = inc.is_tree ? s->tree : s->nontree;
          int side = side_of(c, u);
          uint32_t slot = rec->pos[side];
          assert(slot < from.size() && from[slot] == c);
          edge moved = from.back();
          from[slot] = moved;
          from.pop_back();
          if (moved != c) {
            edge_record* mrec = dict.find(edge_key(moved));
            mrec->pos[side_of(moved, u)] = slot;
          }
          rec->pos[side] = static_cast<uint32_t>(to.size());
          to.push_back(c);
        }
      },
      1);
}

uint32_t leveled_adjacency::tree_degree(vertex_id u) const {
  vertex_slot* s = slot_for(u);
  return s == nullptr ? 0 : static_cast<uint32_t>(s->tree.size());
}

uint32_t leveled_adjacency::nontree_degree(vertex_id u) const {
  vertex_slot* s = slot_for(u);
  return s == nullptr ? 0 : static_cast<uint32_t>(s->nontree.size());
}

void leveled_adjacency::fetch_tree(vertex_id u, uint32_t want,
                                   std::vector<edge>& out) const {
  vertex_slot* s = slot_for(u);
  if (s == nullptr) return;
  uint32_t take = std::min<uint32_t>(want, s->tree.size());
  out.insert(out.end(), s->tree.begin(), s->tree.begin() + take);
}

void leveled_adjacency::fetch_nontree(vertex_id u, uint32_t want,
                                      std::vector<edge>& out) const {
  vertex_slot* s = slot_for(u);
  if (s == nullptr) return;
  uint32_t take = std::min<uint32_t>(want, s->nontree.size());
  out.insert(out.end(), s->nontree.begin(), s->nontree.begin() + take);
}

size_t leveled_adjacency::total_incidences() const {
  size_t total = 0;
  slots_.for_each([&](uint64_t, vertex_slot* const& s) {
    // for_each is parallel; accumulate atomically via per-slot additions.
    __atomic_fetch_add(&total, s->tree.size() + s->nontree.size(),
                       __ATOMIC_RELAXED);
  });
  return total;
}

std::string leveled_adjacency::check_positions(const edge_dict& dict,
                                               int level) const {
  std::string err;
  slots_.for_each([&](uint64_t key, vertex_slot* const& s) {
    vertex_id u = static_cast<vertex_id>(key);
    for (int kind = 0; kind < 2; ++kind) {
      const auto& list = kind == 0 ? s->tree : s->nontree;
      for (size_t i = 0; i < list.size(); ++i) {
        edge c = list[i];
        const edge_record* rec = dict.find(edge_key(c));
        if (rec == nullptr) {
          err = "edge in adjacency but not in dictionary";
          return;
        }
        if (rec->level != level) err = "edge level disagrees with its list";
        if ((rec->is_tree != 0) != (kind == 0))
          err = "edge kind disagrees with its list";
        if (rec->pos[c.v == u ? 1 : 0] != i)
          err = "position back-pointer mismatch";
      }
    }
  });
  return err;
}

}  // namespace bdc
