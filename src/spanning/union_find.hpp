// Static connectivity substrate: sequential union-find (used by test oracles
// and the HDT baseline) and a CAS-based concurrent union-find used for the
// parallel SpanningForest primitive the core algorithm calls on replacement
// edges (the stand-in for Gazit's PRAM algorithm [22] — see DESIGN.md §4).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace bdc {

/// Classic sequential union-find with path halving and union by rank.
class union_find {
 public:
  explicit union_find(size_t n) : parent_(n), rank_(n, 0) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
  }

  uint32_t find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Returns true if u and v were in different components (now joined).
  bool unite(uint32_t u, uint32_t v) {
    uint32_t ru = find(u), rv = find(v);
    if (ru == rv) return false;
    if (rank_[ru] < rank_[rv]) std::swap(ru, rv);
    parent_[rv] = ru;
    if (rank_[ru] == rank_[rv]) ++rank_[ru];
    return true;
  }

  bool connected(uint32_t u, uint32_t v) { return find(u) == find(v); }
  [[nodiscard]] size_t size() const { return parent_.size(); }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint8_t> rank_;
};

/// Wait-free-reads concurrent union-find (Jayanti–Tarjan style linking by
/// index with benign-race path halving). Phase contract: unites may run
/// concurrently with each other; reads of final labels happen after a join.
class concurrent_union_find {
 public:
  explicit concurrent_union_find(size_t n);

  uint32_t find(uint32_t x);
  /// Returns true iff the calling unite merged two distinct components
  /// (exactly one caller wins per merged pair).
  bool unite(uint32_t u, uint32_t v);

  [[nodiscard]] size_t size() const { return parent_.size(); }

 private:
  std::vector<std::atomic<uint32_t>> parent_;
};

struct spanning_forest_result {
  /// Indices into the input edge span forming a spanning forest of it.
  std::vector<uint32_t> tree_edge_indices;
  /// labels[v] = canonical representative of v's component (over [0, n)).
  std::vector<uint32_t> labels;
};

/// Computes a spanning forest of (V=[0,n), edges) in parallel:
/// O(k α(n)) ≈ O(k) expected work. Self-loops are never chosen.
spanning_forest_result spanning_forest(size_t n, std::span<const edge> edges);

/// Connected-component labels only (same cost).
std::vector<uint32_t> connected_components(size_t n,
                                           std::span<const edge> edges);

}  // namespace bdc
