#include "spanning/union_find.hpp"

#include "parallel/primitives.hpp"
#include "parallel/scheduler.hpp"

namespace bdc {

concurrent_union_find::concurrent_union_find(size_t n) : parent_(n) {
  parallel_for(0, n, [&](size_t i) {
    parent_[i].store(static_cast<uint32_t>(i), std::memory_order_relaxed);
  });
}

uint32_t concurrent_union_find::find(uint32_t x) {
  uint32_t p = parent_[x].load(std::memory_order_relaxed);
  while (p != x) {
    uint32_t gp = parent_[p].load(std::memory_order_relaxed);
    if (gp != p) {
      // Path halving; the race is benign (any stale write still points
      // into the same rooted tree).
      parent_[x].compare_exchange_weak(p, gp, std::memory_order_relaxed,
                                       std::memory_order_relaxed);
    }
    x = p;
    p = gp;
  }
  return x;
}

bool concurrent_union_find::unite(uint32_t u, uint32_t v) {
  while (true) {
    uint32_t ru = find(u), rv = find(v);
    if (ru == rv) return false;
    // Deterministic linking rule (larger root under smaller) keeps the
    // structure a forest; CAS arbitrates concurrent linkers.
    if (ru < rv) std::swap(ru, rv);
    uint32_t expected = ru;
    if (parent_[ru].compare_exchange_strong(expected, rv,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      return true;
    }
    // Lost the race: some other unite re-rooted ru; retry from the top.
    u = ru;
    v = rv;
  }
}

spanning_forest_result spanning_forest(size_t n,
                                       std::span<const edge> edges) {
  concurrent_union_find uf(n);
  std::vector<uint8_t> chosen(edges.size(), 0);
  parallel_for(0, edges.size(), [&](size_t i) {
    const edge& e = edges[i];
    if (!e.is_self_loop() && uf.unite(e.u, e.v)) chosen[i] = 1;
  });
  spanning_forest_result result;
  auto idx = pack_index(edges.size(), [&](size_t i) { return chosen[i] != 0; });
  result.tree_edge_indices.assign(idx.begin(), idx.end());
  result.labels.resize(n);
  parallel_for(0, n, [&](size_t v) {
    result.labels[v] = uf.find(static_cast<uint32_t>(v));
  });
  return result;
}

std::vector<uint32_t> connected_components(size_t n,
                                           std::span<const edge> edges) {
  concurrent_union_find uf(n);
  parallel_for(0, edges.size(), [&](size_t i) {
    if (!edges[i].is_self_loop()) uf.unite(edges[i].u, edges[i].v);
  });
  std::vector<uint32_t> labels(n);
  parallel_for(0, n, [&](size_t v) {
    labels[v] = uf.find(static_cast<uint32_t>(v));
  });
  return labels;
}

}  // namespace bdc
