#!/usr/bin/env python3
"""Diff Google Benchmark JSON artifacts and flag regressions.

Two modes:

* Pairwise (the original): compare the current run against one previous
  artifact.

      tools/bench_diff.py OLD.json NEW.json [--threshold PCT] [--no-fail]

* Rolling history: compare the current run against the per-benchmark
  MEDIAN of the last N artifacts in a history directory, so one noisy CI
  run can neither mask nor fake a trend. CI appends every Release run's
  ``BENCH_substrates.json`` to the ``bench-history`` artifact series and
  diffs against the rolling median instead of only the immediately
  preceding run.

      tools/bench_diff.py NEW.json --history DIR [--median-of N]
                          [--threshold PCT] [--no-fail]

Either mode also accepts ``--counters``: the artifacts are then the
JSON-lines metric snapshots written by ``stream_runner --metrics=FILE``
(one ``{"label":...,"metric":...}`` object per line) instead of Google
Benchmark JSON. Counter diffs are ALWAYS advisory (exit 0): pipeline
counters like publishes_full or cache hits are workload truth, not
timing noise, so a change beyond the threshold in EITHER direction is
flagged ``CHANGED`` for a human to read — a dropped cache-hit count and
a doubled full-walk count both deserve eyes, but neither should gate a
merge on its own. Keyed by ``label/metric``; histograms compare their
``count``. Gauges flow through unchanged, which makes the memory
footprint gauges (``levels.materialized`` / ``levels.active_vertices``
/ ``levels.bytes``, plus the ``pool.*`` retention set) diffable across
CI runs the same way — a silent return to O(n)-per-level allocation
shows up here as a ``levels.bytes`` jump on the committed trace.

History files are consumed in sorted-name order (CI names them by run
number, so sorted order is chronological); only the last ``--median-of``
(default 5) contribute to the median. Exit status is 0 when clean, 1 on
regression (with ``--no-fail`` the report still prints but the exit
status stays 0 — useful on noisy shared runners where the trajectory
matters more than any single datapoint).
"""

import argparse
import json
import os
import statistics
import sys


def load_benchmarks(path):
    """Maps benchmark name -> real_time (ns) for one artifact."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev of repeated runs) would double
        # count; keep plain iteration rows only.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        real = bench.get("real_time")
        if name is None or real is None:
            continue
        out[name] = float(real)
    return out


def load_counters(path):
    """Maps "label/metric" -> value for one stream_runner JSONL snapshot.

    Counters and gauges contribute their value; histograms contribute
    their count (how often the phase ran — its duration is timing, which
    the benchmark series already tracks).
    """
    out = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            metric = rec.get("metric")
            if not isinstance(metric, str):
                continue
            key = f"{rec.get('label', '')}/{metric}"
            value = (rec.get("count") if rec.get("kind") == "histogram"
                     else rec.get("value"))
            if isinstance(value, (int, float)):
                out[key] = float(value)
    return out


def diff_counters(old, new, threshold):
    """Direction-agnostic: returns (common, changed) where changed is
    [(key, old, new, pct)] for moves beyond the threshold either way.
    A counter moving off or onto zero is always a change worth seeing.
    """
    common = sorted(set(old) & set(new))
    changed = []
    for key in common:
        if old[key] == 0 and new[key] == 0:
            continue
        if old[key] == 0 or new[key] == 0:
            changed.append((key, old[key], new[key], float("inf")))
            continue
        pct = 100.0 * (new[key] - old[key]) / old[key]
        if abs(pct) > threshold:
            changed.append((key, old[key], new[key], pct))
    return common, changed


def load_history_median(history_dir, median_of, loader=load_benchmarks):
    """Per-benchmark median over the last `median_of` history artifacts.

    Returns (baseline dict, number of artifacts used). A benchmark only
    enters the baseline if at least one retained artifact carries it.
    """
    paths = sorted(
        os.path.join(history_dir, name)
        for name in os.listdir(history_dir)
        if name.endswith(".json") or name.endswith(".jsonl")
    )
    paths = paths[-median_of:]
    series = {}
    used = 0
    for path in paths:
        try:
            run = loader(path)
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_diff: skipping unreadable artifact {path}: {err}")
            continue
        used += 1
        for name, real in run.items():
            series.setdefault(name, []).append(real)
    return {name: statistics.median(vals) for name, vals in series.items()}, used


def diff(old, new, threshold):
    """Returns (common, only_old, only_new, regressions, improvements)."""
    common = sorted(set(old) & set(new))
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    regressions = []
    improvements = []
    for name in common:
        if old[name] <= 0:
            continue
        delta_pct = 100.0 * (new[name] - old[name]) / old[name]
        if delta_pct > threshold:
            regressions.append((name, old[name], new[name], delta_pct))
        elif delta_pct < -threshold:
            improvements.append((name, old[name], new[name], delta_pct))
    return common, only_old, only_new, regressions, improvements


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifacts", nargs="+",
                        help="OLD.json NEW.json, or just NEW.json with "
                             "--history")
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="regression threshold in percent (default: 10)",
    )
    parser.add_argument(
        "--history",
        metavar="DIR",
        help="diff NEW.json against the rolling median of the *.json "
             "artifacts in DIR instead of a single OLD.json",
    )
    parser.add_argument(
        "--median-of",
        type=int,
        default=5,
        help="number of most-recent history artifacts in the median "
             "(default: 5)",
    )
    parser.add_argument(
        "--no-fail",
        action="store_true",
        help="report regressions but exit 0 (for noisy runners)",
    )
    parser.add_argument(
        "--counters",
        action="store_true",
        help="artifacts are stream_runner --metrics JSONL snapshots; "
             "flag counter changes in either direction, always exit 0",
    )
    args = parser.parse_args()

    loader = load_counters if args.counters else load_benchmarks

    if args.history is not None:
        if len(args.artifacts) != 1:
            parser.error("--history takes exactly one NEW.json")
        if args.median_of < 1:
            parser.error("--median-of must be >= 1")
        old, used = load_history_median(args.history, args.median_of,
                                        loader)
        if used == 0:
            print("bench_diff: empty history; nothing to diff against")
            return 0
        baseline_desc = f"median of last {used} run(s)"
        new = loader(args.artifacts[0])
    else:
        if len(args.artifacts) != 2:
            parser.error("expected OLD.json NEW.json (or NEW.json --history DIR)")
        old = loader(args.artifacts[0])
        new = loader(args.artifacts[1])
        baseline_desc = "previous run"

    if args.counters:
        common, changed = diff_counters(old, new, args.threshold)
        print(f"bench_diff: {len(common)} comparable counters vs "
              f"{baseline_desc}, threshold {args.threshold:.1f}% "
              f"(advisory: always exit 0)")
        for key, o, n, pct in changed:
            arrow = "inf" if pct == float("inf") else f"{pct:+.1f}%"
            print(f"  CHANGED {key}: {o:.0f} -> {n:.0f} ({arrow})")
        if not changed:
            print("  no counter changes beyond threshold")
        return 0

    common, only_old, only_new, regressions, improvements = diff(
        old, new, args.threshold)

    print(f"bench_diff: {len(common)} comparable benchmarks vs "
          f"{baseline_desc} ({len(only_new)} new, {len(only_old)} removed), "
          f"threshold {args.threshold:.1f}%")
    for name, o, n, pct in improvements:
        print(f"  IMPROVED  {name}: {o:.0f} -> {n:.0f} ns ({pct:+.1f}%)")
    for name, o, n, pct in regressions:
        print(f"  REGRESSED {name}: {o:.0f} -> {n:.0f} ns ({pct:+.1f}%)")
    if only_new:
        print("  new benchmarks: " + ", ".join(only_new))
    if only_old:
        # Advisory, not fatal: a benchmark present in the baseline but
        # absent from the current run usually means a renamed case or a
        # dropped registration — silent disappearance would otherwise
        # read as "no regression" forever (the rolling median keeps the
        # stale name alive for --median-of runs).
        for name in only_old:
            print(f"  WARNING disappeared benchmark: {name} "
                  f"(in {baseline_desc}, missing from current run)")
    if not regressions:
        print("  no regressions beyond threshold")
        return 0
    return 0 if args.no_fail else 1


if __name__ == "__main__":
    sys.exit(main())
