#!/usr/bin/env python3
"""Diff two Google Benchmark JSON artifacts and flag regressions.

CI uploads ``BENCH_substrates.json`` per commit; this script compares the
current run against the previous commit's artifact and reports every
benchmark whose real time regressed by more than the threshold (default
10%). Exit status is 0 when clean, 1 on regression (with ``--no-fail`` the
report still prints but the exit status stays 0 — useful on noisy shared
runners where the trajectory matters more than any single datapoint).

Usage:
    tools/bench_diff.py OLD.json NEW.json [--threshold PCT] [--no-fail]
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """Maps benchmark name -> real_time (ns) for one artifact."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev of repeated runs) would double
        # count; keep plain iteration rows only.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        real = bench.get("real_time")
        if name is None or real is None:
            continue
        out[name] = float(real)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old", help="previous BENCH_*.json artifact")
    parser.add_argument("new", help="current BENCH_*.json artifact")
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="regression threshold in percent (default: 10)",
    )
    parser.add_argument(
        "--no-fail",
        action="store_true",
        help="report regressions but exit 0 (for noisy runners)",
    )
    args = parser.parse_args()

    old = load_benchmarks(args.old)
    new = load_benchmarks(args.new)

    common = sorted(set(old) & set(new))
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))

    regressions = []
    improvements = []
    for name in common:
        if old[name] <= 0:
            continue
        delta_pct = 100.0 * (new[name] - old[name]) / old[name]
        if delta_pct > args.threshold:
            regressions.append((name, old[name], new[name], delta_pct))
        elif delta_pct < -args.threshold:
            improvements.append((name, old[name], new[name], delta_pct))

    print(f"bench_diff: {len(common)} comparable benchmarks "
          f"({len(only_new)} new, {len(only_old)} removed), "
          f"threshold {args.threshold:.1f}%")
    for name, o, n, pct in improvements:
        print(f"  IMPROVED  {name}: {o:.0f} -> {n:.0f} ns ({pct:+.1f}%)")
    for name, o, n, pct in regressions:
        print(f"  REGRESSED {name}: {o:.0f} -> {n:.0f} ns ({pct:+.1f}%)")
    if only_new:
        print("  new benchmarks: " + ", ".join(only_new))
    if only_old:
        print("  removed benchmarks: " + ", ".join(only_old))
    if not regressions:
        print("  no regressions beyond threshold")
        return 0
    return 0 if args.no_fail else 1


if __name__ == "__main__":
    sys.exit(main())
