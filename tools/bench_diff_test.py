#!/usr/bin/env python3
"""Self-test for bench_diff.py: pairwise mode, rolling-median history
mode (one outlier run must not fake or mask a regression), and the
empty-history edge case. Run by CTest as smoke.bench_diff."""

import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_diff.py")


def write_run(path, times):
    doc = {"benchmarks": [{"name": name, "real_time": t, "run_type":
                           "iteration"} for name, t in times.items()]}
    with open(path, "w") as f:
        json.dump(doc, f)


def write_counters(path, values, label="dynamic/skiplist"):
    """One stream_runner-style JSONL snapshot; values of None become a
    histogram row with that key's count carried in a `count` field."""
    with open(path, "w") as f:
        for metric, value in values.items():
            if isinstance(value, tuple):  # (kind="histogram", count)
                f.write(json.dumps({"label": label, "metric": metric,
                                    "kind": "histogram", "count": value[1],
                                    "sum": 10 * value[1],
                                    "buckets": [0, value[1]]}) + "\n")
            else:
                f.write(json.dumps({"label": label, "metric": metric,
                                    "kind": "counter",
                                    "value": value}) + "\n")


def run(*argv):
    proc = subprocess.run([sys.executable, SCRIPT, *argv],
                          capture_output=True, text=True)
    return proc.returncode, proc.stdout


def main():
    failures = []

    def check(name, cond, detail=""):
        if not cond:
            failures.append(f"{name}: {detail}")
            print(f"FAIL {name} {detail}")
        else:
            print(f"ok   {name}")

    with tempfile.TemporaryDirectory() as tmp:
        old = os.path.join(tmp, "old.json")
        new = os.path.join(tmp, "new.json")
        write_run(old, {"BM_A": 100.0, "BM_B": 100.0})
        write_run(new, {"BM_A": 100.0, "BM_B": 150.0})

        rc, out = run(old, new, "--threshold", "10")
        check("pairwise.regression", rc == 1 and "REGRESSED BM_B" in out,
              out)
        rc, out = run(old, new, "--threshold", "10", "--no-fail")
        check("pairwise.no_fail", rc == 0 and "REGRESSED BM_B" in out, out)
        rc, out = run(old, old, "--threshold", "10")
        check("pairwise.clean", rc == 0 and "no regressions" in out, out)

        # History: three steady runs plus one wild outlier. The rolling
        # median must sit at the steady value, so the outlier neither
        # fakes a regression for a steady NEW run nor masks a real one.
        hist = os.path.join(tmp, "history")
        os.mkdir(hist)
        write_run(os.path.join(hist, "run-001.json"), {"BM_A": 100.0})
        write_run(os.path.join(hist, "run-002.json"), {"BM_A": 102.0})
        write_run(os.path.join(hist, "run-003.json"), {"BM_A": 1000.0})
        write_run(os.path.join(hist, "run-004.json"), {"BM_A": 98.0})

        steady = os.path.join(tmp, "steady.json")
        write_run(steady, {"BM_A": 101.0})
        rc, out = run(steady, "--history", hist, "--median-of", "4")
        check("history.outlier_does_not_fake", rc == 0 and
              "no regressions" in out, out)

        slow = os.path.join(tmp, "slow.json")
        write_run(slow, {"BM_A": 200.0})
        rc, out = run(slow, "--history", hist, "--median-of", "4")
        check("history.outlier_does_not_mask",
              rc == 1 and "REGRESSED BM_A" in out, out)

        # --median-of windows from the most recent (sorted) artifacts:
        # with a window of 1 the baseline is run-004 (98 ns).
        rc, out = run(steady, "--history", hist, "--median-of", "1")
        check("history.window", rc == 0 and "last 1 run" in out, out)

        empty = os.path.join(tmp, "empty")
        os.mkdir(empty)
        rc, out = run(steady, "--history", empty)
        check("history.empty", rc == 0 and "empty history" in out, out)

        # Disappeared benchmarks warn (advisory — exit stays 0 when the
        # surviving benchmarks are clean), in both modes.
        shrunk = os.path.join(tmp, "shrunk.json")
        write_run(shrunk, {"BM_A": 100.0})
        rc, out = run(old, shrunk, "--threshold", "10")
        check("pairwise.disappeared_warns",
              rc == 0 and "WARNING disappeared benchmark: BM_B" in out, out)
        rc, out = run(steady, "--history", hist, "--median-of", "4")
        check("history.no_spurious_disappeared_warning",
              "WARNING disappeared" not in out, out)
        write_run(os.path.join(hist, "run-005.json"),
                  {"BM_A": 100.0, "BM_GONE": 50.0})
        rc, out = run(steady, "--history", hist, "--median-of", "4")
        check("history.disappeared_warns",
              rc == 0 and "WARNING disappeared benchmark: BM_GONE" in out,
              out)

        # --counters mode: advisory (exit 0 even on change), flags moves
        # in EITHER direction, keys by label/metric, histograms by count.
        cold = os.path.join(tmp, "cold.jsonl")
        cnew = os.path.join(tmp, "cnew.jsonl")
        write_counters(cold, {"publish.full_walks": 10,
                              "router.cache_hits": 1000,
                              "span.batch.delete.us": ("histogram", 20)})
        write_counters(cnew, {"publish.full_walks": 30,
                              "router.cache_hits": 500,
                              "span.batch.delete.us": ("histogram", 20)})
        rc, out = run(cold, cnew, "--counters", "--threshold", "10")
        check("counters.advisory_exit0", rc == 0, out)
        check("counters.flags_increase",
              "CHANGED dynamic/skiplist/publish.full_walks" in out, out)
        check("counters.flags_decrease",
              "CHANGED dynamic/skiplist/router.cache_hits" in out, out)
        check("counters.stable_histogram_not_flagged",
              "span.batch.delete.us" not in out, out)

        rc, out = run(cold, cold, "--counters", "--threshold", "10")
        check("counters.clean",
              rc == 0 and "no counter changes" in out, out)

        # Zero-crossing counters are always flagged: 0 -> anything (and
        # back) is a behavior change no percentage can express.
        czero = os.path.join(tmp, "czero.jsonl")
        write_counters(czero, {"publish.full_walks": 0,
                               "router.cache_hits": 1000,
                               "span.batch.delete.us": ("histogram", 20)})
        rc, out = run(czero, cnew, "--counters", "--threshold", "10")
        check("counters.zero_crossing_flagged",
              rc == 0 and "CHANGED dynamic/skiplist/publish.full_walks"
              in out, out)

        # History mode composes with --counters (.jsonl files in DIR).
        chist = os.path.join(tmp, "counter-history")
        os.mkdir(chist)
        for i, hits in enumerate([1000, 1010, 990]):
            write_counters(os.path.join(chist, f"metrics-{i:03d}.jsonl"),
                           {"router.cache_hits": hits})
        rc, out = run(cnew, "--counters", "--history", chist,
                      "--median-of", "3")
        check("counters.history_median",
              rc == 0 and "CHANGED dynamic/skiplist/router.cache_hits"
              in out, out)

    if failures:
        print(f"{len(failures)} check(s) failed")
        return 1
    print("all bench_diff checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
