#!/usr/bin/env python3
"""Validates a stream_runner --metrics/--trace pair against the telemetry
acceptance contract (run by CTest as smoke.check_telemetry):

* the JSONL snapshot parses and carries both per-structure counters and
  span histograms;
* the top-level batch spans (batch.insert / batch.delete /
  batch.connected) sum to within --tolerance percent of the replay wall
  time the runner recorded (replay.total_us) — i.e. the phase breakdown
  actually accounts for where the time went;
* the Chrome trace is valid JSON with well-formed complete events whose
  total duration is consistent with the same wall time.

Usage: check_telemetry.py METRICS.jsonl TRACE.json [--tolerance PCT]
"""

import argparse
import json
import sys

TOP_SPANS = ("span.batch.insert.us", "span.batch.delete.us",
             "span.batch.connected.us")


def load_rows(path):
    rows = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics")
    parser.add_argument("trace")
    parser.add_argument("--tolerance", type=float, default=10.0,
                        help="max |span sum - wall time| as a percent of "
                             "wall time (default: 10)")
    args = parser.parse_args()
    failures = []

    rows = load_rows(args.metrics)
    if not rows:
        failures.append("metrics file is empty")
    by_metric = {}
    for r in rows:
        by_metric.setdefault(r["metric"], r)
    if not any(m.startswith("core.") for m in by_metric):
        failures.append("no core.* counters in the snapshot")

    span_sum = 0.0
    spans_seen = 0
    for name in TOP_SPANS:
        row = by_metric.get(name)
        if row is None:
            continue
        spans_seen += 1
        span_sum += float(row.get("sum", 0))
    if spans_seen == 0:
        failures.append("no top-level batch spans in the snapshot "
                        f"(expected any of {TOP_SPANS})")

    wall_row = by_metric.get("replay.total_us")
    if wall_row is None:
        failures.append("no replay.total_us gauge in the snapshot")
    elif spans_seen:
        wall = float(wall_row["value"])
        if wall <= 0:
            failures.append(f"non-positive replay wall time: {wall}")
        else:
            off_pct = 100.0 * abs(span_sum - wall) / wall
            print(f"check_telemetry: batch spans sum to {span_sum:.0f} us "
                  f"vs {wall:.0f} us wall ({off_pct:.1f}% off, "
                  f"tolerance {args.tolerance:.1f}%)")
            if off_pct > args.tolerance:
                failures.append(
                    f"span sum off by {off_pct:.1f}% > "
                    f"{args.tolerance:.1f}% tolerance")

    with open(args.trace) as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        failures.append("trace has no traceEvents")
    else:
        complete = [e for e in events if e.get("ph") == "X"]
        if not complete:
            failures.append("trace has no complete ('X') events")
        for e in events:
            if not isinstance(e.get("name"), str) or "ts" not in e:
                failures.append(f"malformed trace event: {e}")
                break
        dropped = trace.get("otherData", {}).get("dropped_events")
        print(f"check_telemetry: {len(events)} trace events "
              f"({len(complete)} spans), dropped={dropped}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print("check_telemetry: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
