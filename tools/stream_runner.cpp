// stream_runner — operational CLI for the library: generate batched
// update-stream files and replay them against any of the implemented
// structures, reporting throughput and correctness spot-checks. Useful for
// profiling real workloads without writing C++.
//
// Usage:
//   stream_runner gen [--stream=deletion|mixed|window]
//                     <erdos|rmat|grid> <n> <m> <batch> <seed> <out>
//   stream_runner run [--engine=auto|dynamic|dynamic-simple|dynamic-scanall|
//                      hdt|static|incremental]
//                     [--substrate=skiplist|treap|blocked]
//                     [--policy=<substrate>:<threshold>]
//                     [--dispatch=static|virtual] [--workers=N]
//                     [--check] <stream-file>
//   stream_runner            (no args: self-demo on a generated stream)
//
// --engine picks the structure (default dynamic). `auto` is the
// workload-adaptive engine_router: union-find during insert-only epochs,
// one-shot bulk-load promotion to the HDT structure at the first
// effective deletion, per-epoch rep memo for query floods; its routing
// statistics (phase switches, promotion cost, cache hit rate) join the
// report. --substrate selects the Euler-tour backend of the dynamic
// structures (and of auto's promoted engine);
// --policy=<substrate>:<threshold> additionally hands every level below
// <threshold> to <substrate> (per-level substrate mixing, e.g.
// --policy=blocked:8 for blocked tours on the bottom eight levels); a
// policy naming the primary substrate is uniform and is reported as such.
// --dispatch=virtual forces the ett_substrate virtual bridge instead of
// the devirtualized variant fast path (an A/B lever; see
// src/ett/ett_forest.hpp). --workers rebuilds the scheduler pool before
// the replay (equivalent to BDC_NUM_WORKERS, but scoped to this run).
// --serve-queries=T enables the epoch-snapshot read service and spawns T
// plain std::threads that hammer snapshot_query() connectivity reads
// CONCURRENTLY with the update batches; every recorded answer is
// differential-checked against the exact oracle of the committed state it
// claims to reflect (see serve_replay below), and any mismatch fails the
// run.
// --check replays a union-find oracle in lockstep and differential-checks
// every phased query answer (for the insert-only incremental engine the
// oracle skips deletion batches — it validates the engine against its own
// restricted model). Any mismatch fails the run.
// After a replay the structure's cumulative counters, the node-pool
// report, and the phase-span timing histograms are rendered through the
// telemetry text exporter (src/obs/) — one formatting path for every
// engine. --metrics=FILE additionally writes the same snapshot as
// JSON-lines (one object per metric, labeled with the run
// configuration; see obs/exporters.hpp for the schema), and
// --trace=FILE writes a Chrome trace-event timeline of the per-batch
// phase spans, viewable in chrome://tracing or ui.perfetto.dev.
//
// Vertex ids in a stream file need not be < the header's n: every
// structure validates its inputs at the public API (out-of-range updates
// are dropped, out-of-range queries answer false).
//
// Stream file format (text): first line "n <N>", then one line per batch:
//   I <u1> <v1> <u2> <v2> ...     insertion batch
//   D <u1> <v1> ...               deletion batch
//   Q <u1> <v1> ...               connectivity-query batch
#include <atomic>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "baselines/incremental_connectivity.hpp"
#include "baselines/static_connectivity.hpp"
#include "core/batch_connectivity.hpp"
#include "core/engine_router.hpp"
#include "gen/graph_gen.hpp"
#include "gen/update_stream.hpp"
#include "hdt/hdt_connectivity.hpp"
#include "obs/collectors.hpp"
#include "obs/exporters.hpp"
#include "parallel/scheduler.hpp"
#include "spanning/union_find.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

using namespace bdc;

namespace {

enum class engine_kind {
  auto_router,
  dynamic,
  dynamic_simple,
  dynamic_scanall,
  hdt,
  static_recompute,
  incremental,
};

std::optional<engine_kind> engine_from_string(const std::string& s) {
  if (s == "auto") return engine_kind::auto_router;
  if (s == "dynamic") return engine_kind::dynamic;
  if (s == "dynamic-simple") return engine_kind::dynamic_simple;
  if (s == "dynamic-scanall") return engine_kind::dynamic_scanall;
  if (s == "hdt") return engine_kind::hdt;
  if (s == "static") return engine_kind::static_recompute;
  if (s == "incremental") return engine_kind::incremental;
  return std::nullopt;
}

void write_stream(const std::string& path, vertex_id n,
                  const update_stream& stream) {
  std::ofstream out(path);
  out << "n " << n << "\n";
  for (const auto& b : stream) {
    switch (b.op) {
      case update_batch::kind::insert:
        out << "I";
        for (const edge& e : b.edges) out << ' ' << e.u << ' ' << e.v;
        break;
      case update_batch::kind::erase:
        out << "D";
        for (const edge& e : b.edges) out << ' ' << e.u << ' ' << e.v;
        break;
      case update_batch::kind::query:
        out << "Q";
        for (auto& [u, v] : b.queries) out << ' ' << u << ' ' << v;
        break;
    }
    out << "\n";
  }
}

bool read_stream(const std::string& path, vertex_id& n,
                 update_stream& stream) {
  std::ifstream in(path);
  if (!in) return false;
  std::string tag;
  if (!(in >> tag) || tag != "n" || !(in >> n)) return false;
  std::string line;
  std::getline(in, line);  // eat rest of header line
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char op;
    ls >> op;
    update_batch b;
    vertex_id u, v;
    switch (op) {
      case 'I':
      case 'D':
        b.op = op == 'I' ? update_batch::kind::insert
                         : update_batch::kind::erase;
        while (ls >> u >> v) b.edges.push_back({u, v});
        break;
      case 'Q':
        b.op = update_batch::kind::query;
        while (ls >> u >> v) b.queries.push_back({u, v});
        break;
      default:
        return false;
    }
    stream.push_back(std::move(b));
  }
  return true;
}

/// Min-vertex component labels of the canonical edge set (the oracle).
std::vector<vertex_id> oracle_labels(
    vertex_id n, const std::unordered_set<uint64_t>& edges) {
  union_find uf(n);
  for (uint64_t key : edges) {
    edge e = edge_from_key(key);
    uf.unite(e.u, e.v);
  }
  std::vector<vertex_id> mins(n, kNoVertex);
  std::vector<vertex_id> labels(n);
  for (vertex_id v = 0; v < n; ++v) {
    uint32_t r = uf.find(v);
    if (mins[r] == kNoVertex) mins[r] = v;  // ascending v: first is min
  }
  for (vertex_id v = 0; v < n; ++v) labels[v] = mins[uf.find(v)];
  return labels;
}

// Lockstep union-find differential (--check): mirrors the library's edge
// semantics (canonicalize; drop self-loops and out-of-range; set
// semantics) and verifies every phased query answer against min-vertex
// oracle labels, rebuilt lazily once per dirty query batch. Runs outside
// the replay timers, so --check does not skew the throughput report.
struct oracle_checker {
  vertex_id n = 0;
  /// false for the insert-only incremental engine: its model never sees
  /// deletions, so neither does its oracle.
  bool track_deletes = true;
  std::unordered_set<uint64_t> edges;
  std::vector<vertex_id> labels;
  bool dirty = true;
  size_t checked = 0;
  size_t mismatches = 0;

  void on_update(std::span<const edge> es, bool insert) {
    if (!insert && !track_deletes) return;
    for (const edge& raw : es) {
      edge c = raw.canonical();
      if (c.is_self_loop() || c.v >= n) continue;
      if (insert)
        edges.insert(edge_key(c));
      else
        edges.erase(edge_key(c));
    }
    dirty = true;
  }

  void on_query(std::span<const std::pair<vertex_id, vertex_id>> qs,
                const std::vector<bool>& ans) {
    if (dirty) {
      labels = oracle_labels(n, edges);
      dirty = false;
    }
    for (size_t i = 0; i < qs.size(); ++i) {
      auto [u, v] = qs[i];
      bool expect = u < n && v < n && labels[u] == labels[v];
      checked++;
      if (expect != static_cast<bool>(ans[i]) && mismatches++ < 5) {
        std::fprintf(stderr,
                     "check MISMATCH: (%u,%u): got %d, oracle %d\n", u, v,
                     static_cast<int>(ans[i]), static_cast<int>(expect));
      }
    }
  }
};

struct replay_report {
  double insert_sec = 0, delete_sec = 0, query_sec = 0;
  size_t inserted = 0, deleted = 0, queried = 0, connected_answers = 0;
};

template <typename Structure>
replay_report replay(Structure& s, const update_stream& stream,
                     oracle_checker* check = nullptr) {
  replay_report r;
  timer t;
  for (const auto& b : stream) {
    switch (b.op) {
      case update_batch::kind::insert:
        t.reset();
        s.batch_insert(b.edges);
        r.insert_sec += t.elapsed();
        r.inserted += b.edges.size();
        if (check) check->on_update(b.edges, /*insert=*/true);
        break;
      case update_batch::kind::erase:
        t.reset();
        s.batch_delete(b.edges);
        r.delete_sec += t.elapsed();
        r.deleted += b.edges.size();
        if (check) check->on_update(b.edges, /*insert=*/false);
        break;
      case update_batch::kind::query: {
        t.reset();
        auto ans = s.batch_connected(b.queries);
        r.query_sec += t.elapsed();
        r.queried += b.queries.size();
        for (bool a : ans) r.connected_answers += a;
        if (check) check->on_query(b.queries, ans);
        break;
      }
    }
  }
  return r;
}

// ---------------------------------------------------------------------
// Concurrent query serving (--serve-queries=T)
//
// Reader threads hammer snapshot_query() WHILE the driver replays update
// batches, and every recorded answer is differential-checked afterwards:
// the view reports which committed batch count ("state") its answer
// reflects, the driver rebuilds the exact connectivity oracle (union-find
// over the canonical edge set) after every update batch, and an answer is
// correct iff it matches the oracle of its reported state. A torn read —
// any answer matching neither the pre- nor post-batch boundary of some
// batch — cannot pass this check.
// ---------------------------------------------------------------------

struct served_record {
  vertex_id u, v;
  uint64_t state;  // committed batch count the answer claims to reflect
  bool pinned;     // answered by the frozen view (connected_pinned)
  bool ans;
};

struct serve_result {
  replay_report rep;
  uint64_t served = 0;     // total concurrent queries answered
  size_t checked = 0;      // recorded answers differential-checked
  size_t mismatches = 0;
};

serve_result serve_replay(batch_dynamic_connectivity& s, vertex_id n,
                          const update_stream& stream, unsigned readers) {
  serve_result out;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0};
  // Bound the per-thread evidence buffers; the count keeps running.
  constexpr size_t kMaxRecords = size_t{1} << 16;
  std::vector<std::vector<served_record>> recs(readers);
  std::vector<std::thread> pool;
  pool.reserve(readers);
  for (unsigned t = 0; t < readers; ++t) {
    pool.emplace_back([&, t] {
      random_stream rng(hash_combine(0x5e57e, t));
      auto& buf = recs[t];
      buf.reserve(kMaxRecords);
      uint64_t count = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto view = s.snapshot_query();
        served_record r{};
        r.u = static_cast<vertex_id>(rng.next(n));
        r.v = static_cast<vertex_id>(rng.next(n));
        if ((count & 7) == 0) {
          // Every 8th query exercises the frozen-view accessors.
          r.pinned = true;
          r.state = view.version();
          r.ans = view.connected_pinned(r.u, r.v);
        } else {
          r.ans = view.connected(r.u, r.v, &r.state);
        }
        if (buf.size() < kMaxRecords) buf.push_back(r);
        ++count;
      }
      served.fetch_add(count, std::memory_order_relaxed);
    });
  }

  // Driver: replay the stream, mirroring the library's edge semantics
  // (canonicalize; drop self-loops and out-of-range; set semantics) and
  // appending the post-batch oracle after EVERY update batch — the
  // structure commits one serving state per batch_insert/batch_delete
  // call, no-op batches included.
  std::unordered_set<uint64_t> edges;
  std::vector<std::vector<vertex_id>> states;
  states.push_back(oracle_labels(n, edges));  // state 0: empty graph
  auto commit = [&](std::span<const edge> es, bool insert) {
    for (const edge& raw : es) {
      edge c = raw.canonical();
      if (c.is_self_loop() || c.v >= n) continue;
      if (insert)
        edges.insert(edge_key(c));
      else
        edges.erase(edge_key(c));
    }
    states.push_back(oracle_labels(n, edges));
  };
  timer t;
  for (const auto& b : stream) {
    switch (b.op) {
      case update_batch::kind::insert:
        t.reset();
        s.batch_insert(b.edges);
        out.rep.insert_sec += t.elapsed();
        out.rep.inserted += b.edges.size();
        commit(b.edges, /*insert=*/true);
        break;
      case update_batch::kind::erase:
        t.reset();
        s.batch_delete(b.edges);
        out.rep.delete_sec += t.elapsed();
        out.rep.deleted += b.edges.size();
        commit(b.edges, /*insert=*/false);
        break;
      case update_batch::kind::query: {
        t.reset();
        auto ans = s.batch_connected(b.queries);
        out.rep.query_sec += t.elapsed();
        out.rep.queried += b.queries.size();
        for (bool a : ans) out.rep.connected_answers += a;
        break;
      }
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  out.served = served.load(std::memory_order_relaxed);

  if (s.committed_version() != states.size() - 1) {
    std::fprintf(stderr,
                 "serve: committed_version %" PRIu64
                 " != driver batch count %zu\n",
                 s.committed_version(), states.size() - 1);
    out.mismatches++;
  }
  for (const auto& buf : recs) {
    for (const served_record& r : buf) {
      out.checked++;
      if (r.state >= states.size()) {
        if (out.mismatches++ < 5)
          std::fprintf(stderr,
                       "serve MISMATCH: state %" PRIu64
                       " out of range (%zu committed)\n",
                       r.state, states.size() - 1);
        continue;
      }
      const auto& labels = states[r.state];
      bool expect = labels[r.u] == labels[r.v];
      if (expect != r.ans) {
        if (out.mismatches++ < 5)
          std::fprintf(stderr,
                       "serve MISMATCH: (%u,%u) at state %" PRIu64
                       " (%s): got %d, oracle %d\n",
                       r.u, r.v, r.state, r.pinned ? "pinned" : "fresh",
                       r.ans, expect);
      }
    }
  }
  return out;
}

/// Adapters give every structure the same batch surface.
struct incremental_adapter {
  incremental_connectivity inner;
  explicit incremental_adapter(vertex_id n) : inner(n) {}
  void batch_insert(std::span<const edge> es) { inner.batch_insert(es); }
  void batch_delete(std::span<const edge>) {
    std::fprintf(stderr,
                 "warning: incremental structure ignores deletions\n");
  }
  std::vector<bool> batch_connected(
      std::span<const std::pair<vertex_id, vertex_id>> qs) {
    return inner.batch_connected(qs);
  }
};

void print_report(const char* name, const replay_report& r) {
  auto rate = [](size_t items, double sec) {
    return sec > 0 ? static_cast<double>(items) / sec / 1e3 : 0.0;
  };
  std::printf("%-16s ins %8zu in %7.3fs (%8.1f K/s) | del %8zu in %7.3fs "
              "(%8.1f K/s) | qry %8zu in %7.3fs (%8.1f K/s) | conn %zu\n",
              name, r.inserted, r.insert_sec, rate(r.inserted, r.insert_sec),
              r.deleted, r.delete_sec, rate(r.deleted, r.delete_sec),
              r.queried, r.query_sec, rate(r.queried, r.query_sec),
              r.connected_answers);
}

// --metrics / --trace destinations (empty = disabled), set in main.
std::string g_metrics_path;
std::string g_trace_path;

// --assert-gauge-max=NAME:MAX budget assertions, checked against every
// reported snapshot (CI smoke tests pin e.g. levels.bytes this way).
std::vector<std::pair<std::string, int64_t>> g_gauge_max;
int g_gauge_asserts_failed = 0;

/// Replay wall times join the snapshot so the span breakdown can be
/// checked against them (tools/check_telemetry.py asserts the batch
/// spans sum to within 10% of these).
void collect_replay(obs::metrics_snapshot& snap, const replay_report& r) {
  auto us = [](double sec) { return static_cast<int64_t>(sec * 1e6); };
  snap.add_gauge("replay.insert_us", us(r.insert_sec));
  snap.add_gauge("replay.delete_us", us(r.delete_sec));
  snap.add_gauge("replay.query_us", us(r.query_sec));
  snap.add_gauge("replay.total_us",
                 us(r.insert_sec + r.delete_sec + r.query_sec));
}

/// The single reporting sink: merges the global registry (span
/// histograms, retention gauges) into the per-structure rows, prints the
/// text report, and appends the run to --metrics as JSON-lines.
void report_metrics(const std::string& label, obs::metrics_snapshot snap) {
  obs::metrics_snapshot reg = obs::metric_registry::global().snapshot();
  snap.rows.insert(snap.rows.end(),
                   std::make_move_iterator(reg.rows.begin()),
                   std::make_move_iterator(reg.rows.end()));
  snap.sort();
  obs::export_text(stdout, snap);
  for (const auto& [gauge_name, limit] : g_gauge_max) {
    const obs::metric_row* row = snap.find(gauge_name);
    if (row == nullptr) {
      std::fprintf(stderr,
                   "--assert-gauge-max: gauge '%s' not reported by %s\n",
                   gauge_name.c_str(), label.c_str());
      ++g_gauge_asserts_failed;
    } else if (row->value > limit) {
      std::fprintf(stderr,
                   "--assert-gauge-max: %s = %" PRId64
                   " exceeds budget %" PRId64 " in %s\n",
                   gauge_name.c_str(), row->value, limit, label.c_str());
      ++g_gauge_asserts_failed;
    }
  }
  if (!g_metrics_path.empty()) {
    std::ofstream out(g_metrics_path, std::ios::app);
    if (!out) {
      std::fprintf(stderr, "cannot write metrics file '%s'\n",
                   g_metrics_path.c_str());
    } else {
      obs::export_jsonl(out, snap, label);
    }
  }
}

/// The historical pool report ended with a high-watermark trim; keep the
/// side effect and report what it released through the snapshot instead
/// of a bespoke printf.
void collect_pool_and_trim(obs::metrics_snapshot& snap,
                           batch_dynamic_connectivity& s) {
  obs::collect(snap, s.pool_stats());
  snap.add_gauge("pool.trim_released_bytes",
                 static_cast<int64_t>(s.trim_pools()));
}

/// Prints the --check verdict; returns 1 on any mismatch.
int finish_check(const oracle_checker* chk) {
  if (chk == nullptr) return 0;
  std::printf("  check: %zu answers differential-checked, %zu mismatches%s\n",
              chk->checked, chk->mismatches,
              chk->mismatches == 0 ? " (OK)" : "");
  if (chk->mismatches != 0) {
    std::fprintf(stderr, "oracle differential check FAILED\n");
    return 1;
  }
  return 0;
}

int run_structure(engine_kind eng, vertex_id n, const update_stream& stream,
                  substrate sub, level_policy policy, dispatch disp,
                  unsigned serve_threads, publish_mode pub, bool check) {
  oracle_checker chk;
  chk.n = n;
  chk.track_deletes = eng != engine_kind::incremental;
  oracle_checker* cp = check ? &chk : nullptr;

  if (eng == engine_kind::dynamic || eng == engine_kind::dynamic_simple ||
      eng == engine_kind::dynamic_scanall) {
    const char* which = eng == engine_kind::dynamic ? "dynamic"
                        : eng == engine_kind::dynamic_simple
                            ? "dynamic-simple"
                            : "dynamic-scanall";
    options o;
    o.search = eng == engine_kind::dynamic ? level_search_kind::interleaved
               : eng == engine_kind::dynamic_simple
                   ? level_search_kind::simple
                   : level_search_kind::scan_all;
    o.substrate = sub;
    o.policy = policy;
    o.dispatch = disp;
    o.concurrent_reads = serve_threads > 0;
    o.publish = pub;
    batch_dynamic_connectivity s(n, o);
    // config_label applies the library's policy normalization, so a
    // --policy naming the primary substrate reads as uniform here.
    std::string label = std::string(which) + "/" + config_label(o);
    // Per-run registry baseline: self-demo replays several
    // configurations in one process, and each report should cover only
    // its own replay (construction-time publishes excluded too).
    obs::metric_registry::global().reset();
    obs::metrics_snapshot snap;
    if (serve_threads > 0) {
      auto sr = serve_replay(s, n, stream, serve_threads);
      print_report(label.c_str(), sr.rep);
      std::printf("  serve: %u reader threads answered %" PRIu64
                  " queries during the replay; %zu differential-checked, "
                  "%zu mismatches%s\n",
                  serve_threads, sr.served, sr.checked, sr.mismatches,
                  sr.mismatches == 0 ? " (OK)" : "");
      if (sr.mismatches != 0) {
        std::fprintf(stderr, "concurrent differential check FAILED\n");
        return 1;
      }
      collect_replay(snap, sr.rep);
    } else {
      replay_report rep = replay(s, stream, cp);
      print_report(label.c_str(), rep);
      collect_replay(snap, rep);
    }
    obs::collect(snap, s.stats());
    collect_pool_and_trim(snap, s);
    report_metrics(label, std::move(snap));
    return finish_check(cp);
  }

  if (serve_threads > 0) {
    std::fprintf(stderr,
                 "warning: --serve-queries applies only to the dynamic "
                 "structures; ignoring\n");
  }
  if (eng == engine_kind::auto_router) {
    router_options ro;
    ro.dynamic_opts.substrate = sub;
    ro.dynamic_opts.policy = policy;
    ro.dynamic_opts.dispatch = disp;
    engine_router s(n, ro);
    std::string label = "auto/" + config_label(ro.dynamic_opts);
    obs::metric_registry::global().reset();
    obs::metrics_snapshot snap;
    replay_report rep = replay(s, stream, cp);
    print_report(label.c_str(), rep);
    collect_replay(snap, rep);
    obs::collect(snap, s.stats());
    if (const batch_dynamic_connectivity* d = s.dynamic_engine()) {
      obs::collect(snap, d->stats());
      obs::collect(snap, d->pool_stats());
    }
    report_metrics(label, std::move(snap));
    return finish_check(cp);
  }
  if (eng == engine_kind::hdt) {
    hdt_connectivity s(n);
    obs::metric_registry::global().reset();
    obs::metrics_snapshot snap;
    replay_report rep = replay(s, stream, cp);
    print_report("hdt", rep);
    collect_replay(snap, rep);
    obs::collect(snap, s.stats());
    report_metrics("hdt", std::move(snap));
    return finish_check(cp);
  }
  if (eng == engine_kind::static_recompute) {
    static_recompute_connectivity s(n);
    obs::metric_registry::global().reset();
    obs::metrics_snapshot snap;
    replay_report rep = replay(s, stream, cp);
    print_report("static", rep);
    collect_replay(snap, rep);
    snap.add_counter("static.full_recomputes", s.recomputes());
    report_metrics("static", std::move(snap));
    return finish_check(cp);
  }
  incremental_adapter s(n);
  obs::metric_registry::global().reset();
  obs::metrics_snapshot snap;
  replay_report rep = replay(s, stream, cp);
  print_report("incremental", rep);
  collect_replay(snap, rep);
  report_metrics("incremental", std::move(snap));
  return finish_check(cp);
}

int self_demo(unsigned serve_threads, publish_mode pub) {
  std::printf("stream_runner self-demo: n=4096, m=16384, deletion stream "
              "with batch 512 + queries%s\n",
              serve_threads > 0 ? " (+ concurrent query serving)" : "");
  const vertex_id n = 4096;
  auto graph = gen_erdos_renyi(n, 4 * n, 1);
  auto stream = make_deletion_stream(graph, n, 1024, 512, 256, 2);
  // The dynamic structure runs once per substrate plus once under the
  // mixed per-level policy (a built-in uniform-vs-mixed A/B pass). With
  // --serve-queries, every dynamic pass additionally serves (and
  // differential-checks) concurrent reads — the skip-list/treap passes
  // exercise the snapshot path, the blocked pass the live seqlock probe.
  for (substrate sub :
       {substrate::skiplist, substrate::treap, substrate::blocked}) {
    if (int rc = run_structure(engine_kind::dynamic, n, stream, sub, {},
                               dispatch::static_variant, serve_threads, pub,
                               /*check=*/false);
        rc != 0)
      return rc;
  }
  if (int rc = run_structure(engine_kind::dynamic, n, stream,
                             substrate::skiplist,
                             level_policy{8, substrate::blocked},
                             dispatch::static_variant, serve_threads, pub,
                             /*check=*/false);
      rc != 0)
    return rc;
  for (engine_kind eng :
       {engine_kind::dynamic_simple, engine_kind::hdt,
        engine_kind::static_recompute, engine_kind::auto_router}) {
    if (int rc = run_structure(eng, n, stream, substrate::skiplist, {},
                               dispatch::static_variant, 0, pub,
                               /*check=*/false);
        rc != 0)
      return rc;
  }
  return 0;
}

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage:\n"
               "  %s gen [--stream=deletion|mixed|window|hub] "
               "<erdos|rmat|grid> <n> <m> <batch> <seed> <out>\n"
               "  %s run [--engine=auto|dynamic|dynamic-simple|"
               "dynamic-scanall|hdt|static|incremental] "
               "[--substrate=skiplist|treap|blocked] "
               "[--policy=<substrate>:<threshold>] "
               "[--dispatch=static|virtual] [--workers=N] "
               "[--serve-queries=T] [--publish=incremental|full] "
               "[--metrics=FILE] [--trace=FILE] "
               "[--assert-gauge-max=NAME:MAX] "
               "[--check] <stream-file>\n"
               "  %s                (self-demo; flags apply)\n",
               prog, prog, prog);
  return 2;
}

/// Post-replay trace flush. Called once, after every structure and
/// reader thread has been joined, so the recorder's quiescence
/// requirement holds.
int finish_run(int rc) {
  if (g_gauge_asserts_failed != 0 && rc == 0) rc = 1;
  obs::trace_recorder& tr = obs::trace_recorder::global();
  if (g_trace_path.empty() || !tr.active()) return rc;
  tr.disable();
  std::ofstream out(g_trace_path);
  if (!out) {
    std::fprintf(stderr, "cannot write trace file '%s'\n",
                 g_trace_path.c_str());
    return rc != 0 ? rc : 2;
  }
  const uint64_t dropped = tr.dropped();
  obs::export_chrome_trace(out, tr.drain(), dropped);
  std::fprintf(stderr,
               "wrote chrome trace to %s (load via chrome://tracing or "
               "ui.perfetto.dev)\n",
               g_trace_path.c_str());
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return self_demo(0, publish_mode::incremental);

  // Flags may appear anywhere; everything else is positional.
  engine_kind eng = engine_kind::dynamic;
  substrate sub = substrate::skiplist;
  level_policy policy;
  dispatch disp = dispatch::static_variant;
  unsigned serve_threads = 0;
  publish_mode pub = publish_mode::incremental;
  bool check = false;
  std::string stream_kind = "deletion";
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--engine=", 0) == 0) {
      auto parsed = engine_from_string(a.substr(9));
      if (!parsed) {
        std::fprintf(stderr, "unknown engine '%s'\n", a.c_str() + 9);
        return 2;
      }
      eng = *parsed;
    } else if (a.rfind("--substrate=", 0) == 0) {
      auto parsed = substrate_from_string(a.substr(12));
      if (!parsed) {
        std::fprintf(stderr, "unknown substrate '%s'\n", a.c_str() + 12);
        return 2;
      }
      sub = *parsed;
    } else if (a.rfind("--policy=", 0) == 0) {
      std::string spec = a.substr(9);
      size_t colon = spec.find(':');
      auto parsed = substrate_from_string(spec.substr(0, colon));
      int threshold = 0;
      if (colon != std::string::npos) {
        char* end = nullptr;
        errno = 0;
        long t = std::strtol(spec.c_str() + colon + 1, &end, 10);
        if (errno == 0 && end != spec.c_str() + colon + 1 && *end == '\0' &&
            t > 0 && t <= 64)
          threshold = static_cast<int>(t);
      }
      if (!parsed || threshold == 0) {
        std::fprintf(stderr,
                     "bad --policy value '%s' (want <substrate>:<level "
                     "threshold>, e.g. blocked:8)\n",
                     spec.c_str());
        return 2;
      }
      policy = level_policy{threshold, *parsed};
    } else if (a.rfind("--dispatch=", 0) == 0) {
      auto parsed = dispatch_from_string(a.substr(11));
      if (!parsed) {
        std::fprintf(stderr,
                     "bad --dispatch value '%s' (want static|virtual)\n",
                     a.c_str() + 11);
        return 2;
      }
      disp = *parsed;
    } else if (a.rfind("--workers=", 0) == 0) {
      const char* value = a.c_str() + 10;
      char* end = nullptr;
      errno = 0;
      unsigned long w = std::strtoul(value, &end, 10);
      if (errno != 0 || end == value || *end != '\0' || w == 0 ||
          w > 4096) {
        std::fprintf(stderr, "bad --workers value '%s' (want 1..4096)\n",
                     value);
        return 2;
      }
      set_num_workers(static_cast<unsigned>(w));
    } else if (a.rfind("--serve-queries=", 0) == 0) {
      const char* value = a.c_str() + 16;
      char* end = nullptr;
      errno = 0;
      unsigned long t = std::strtoul(value, &end, 10);
      if (errno != 0 || end == value || *end != '\0' || t > 256) {
        std::fprintf(stderr,
                     "bad --serve-queries value '%s' (want 0..256)\n",
                     value);
        return 2;
      }
      serve_threads = static_cast<unsigned>(t);
    } else if (a.rfind("--publish=", 0) == 0) {
      std::string value = a.substr(10);
      if (value == "incremental") {
        pub = publish_mode::incremental;
      } else if (value == "full") {
        pub = publish_mode::full;
      } else {
        std::fprintf(stderr,
                     "bad --publish value '%s' (want incremental|full)\n",
                     value.c_str());
        return 2;
      }
    } else if (a.rfind("--stream=", 0) == 0) {
      stream_kind = a.substr(9);
      if (stream_kind != "deletion" && stream_kind != "mixed" &&
          stream_kind != "window" && stream_kind != "hub") {
        std::fprintf(stderr,
                     "bad --stream value '%s' "
                     "(want deletion|mixed|window|hub)\n",
                     stream_kind.c_str());
        return 2;
      }
    } else if (a.rfind("--assert-gauge-max=", 0) == 0) {
      std::string spec = a.substr(19);
      size_t colon = spec.rfind(':');
      int64_t limit = 0;
      bool ok = colon != std::string::npos && colon > 0;
      if (ok) {
        char* end = nullptr;
        errno = 0;
        limit = std::strtoll(spec.c_str() + colon + 1, &end, 10);
        ok = errno == 0 && end != spec.c_str() + colon + 1 && *end == '\0';
      }
      if (!ok) {
        std::fprintf(stderr,
                     "bad --assert-gauge-max value '%s' "
                     "(want <gauge-name>:<max>, e.g. levels.bytes:1000000)\n",
                     spec.c_str());
        return 2;
      }
      g_gauge_max.push_back({spec.substr(0, colon), limit});
    } else if (a.rfind("--metrics=", 0) == 0) {
      g_metrics_path = a.substr(10);
      if (g_metrics_path.empty()) {
        std::fprintf(stderr, "bad --metrics value (want a file path)\n");
        return 2;
      }
    } else if (a.rfind("--trace=", 0) == 0) {
      g_trace_path = a.substr(8);
      if (g_trace_path.empty()) {
        std::fprintf(stderr, "bad --trace value (want a file path)\n");
        return 2;
      }
    } else if (a == "--check") {
      check = true;
    } else if (a.rfind("--", 0) == 0) {
      return usage(argv[0]);
    } else {
      args.push_back(std::move(a));
    }
  }
  // Arm the export sinks before any replay. --metrics appends one block
  // of JSON-lines per replayed configuration, so start from an empty
  // file; the trace covers the whole process and is flushed on exit.
  if (!g_metrics_path.empty()) {
    std::ofstream truncated(g_metrics_path, std::ios::trunc);
    if (!truncated) {
      std::fprintf(stderr, "cannot write metrics file '%s'\n",
                   g_metrics_path.c_str());
      return 2;
    }
  }
  if (!g_trace_path.empty()) obs::trace_recorder::global().enable();

  if (args.empty()) return finish_run(self_demo(serve_threads, pub));

  const std::string& cmd = args[0];
  if (cmd == "gen" && args.size() == 7) {
    std::string kind = args[1];
    vertex_id n = static_cast<vertex_id>(std::stoul(args[2]));
    size_t m = std::stoul(args[3]);
    size_t batch = std::stoul(args[4]);
    uint64_t seed = std::stoull(args[5]);
    std::vector<edge> graph;
    if (kind == "erdos") {
      graph = gen_erdos_renyi(n, m, seed);
    } else if (kind == "rmat") {
      graph = gen_rmat(n, m, seed);
    } else if (kind == "grid") {
      vertex_id side = 1;
      while (static_cast<size_t>(side) * side < n) ++side;
      graph = gen_grid(side, side);
      n = side * side;
    } else {
      std::fprintf(stderr, "unknown kind '%s'\n", kind.c_str());
      return 2;
    }
    update_stream stream;
    if (stream_kind == "mixed") {
      stream = make_phase_skewed_stream(graph, n, batch,
                                        /*flood_batches=*/8,
                                        /*flood_queries=*/4 * batch,
                                        seed + 1);
    } else if (stream_kind == "window") {
      stream = make_sliding_window_stream(graph, std::max<size_t>(1, m / 2),
                                          batch, seed + 1);
    } else if (stream_kind == "hub") {
      stream = make_hub_churn_stream(graph, n, batch, /*rounds=*/3,
                                     seed + 1);
    } else {
      stream =
          make_deletion_stream(graph, n, batch, batch, batch / 4, seed + 1);
    }
    write_stream(args[6], n, stream);
    std::printf("wrote %zu batches over %u vertices to %s\n", stream.size(),
                n, args[6].c_str());
    return 0;
  }
  if (cmd == "run" && args.size() == 2) {
    vertex_id n = 0;
    update_stream stream;
    if (!read_stream(args[1], n, stream)) {
      std::fprintf(stderr, "cannot read stream file '%s'\n", args[1].c_str());
      return 2;
    }
    return finish_run(run_structure(eng, n, stream, sub, policy, disp,
                                    serve_threads, pub, check));
  }
  return usage(argv[0]);
}
