// BM_ConcurrentServe — update-batch throughput under concurrent query
// serving (ISSUE 6). A persistent batch_dynamic_connectivity with the
// epoch-snapshot read service enabled churns insert/delete batches while
// R reader threads (started once, OUTSIDE the timing loop) hammer
// snapshot_query()->connected(). The sweep crosses R in {0, 2, 4} with
// the skiplist substrate (readers served from the per-batch snapshot)
// and the blocked substrate (readers take the seqlock-validated live
// probe between batches). R=0 isolates the serving overhead itself: the
// O(n) snapshot publish every batch plus epoch bookkeeping.
//
// Counters: "served" is the total number of concurrent queries answered
// across the whole run; "served/s" the rate against benchmark time.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/batch_connectivity.hpp"
#include "gen/graph_gen.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

using namespace bdc;

namespace {
constexpr vertex_id kN = 4096;
constexpr size_t kM = 2 * static_cast<size_t>(kN);
constexpr size_t kBatch = 512;
}  // namespace

static void BM_ConcurrentServe(benchmark::State& state) {
  const auto readers = static_cast<unsigned>(state.range(0));
  const substrate sub =
      state.range(1) == 0 ? substrate::skiplist : substrate::blocked;
  auto graph = gen_erdos_renyi(kN, kM, 7);
  std::vector<std::vector<edge>> batches;
  for (size_t i = 0; i < graph.size(); i += kBatch) {
    batches.emplace_back(
        graph.begin() + static_cast<ptrdiff_t>(i),
        graph.begin() +
            static_cast<ptrdiff_t>(std::min(i + kBatch, graph.size())));
  }

  options o;
  o.substrate = sub;
  o.concurrent_reads = true;
  batch_dynamic_connectivity s(kN, o);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0};
  std::vector<std::thread> pool;
  pool.reserve(readers);
  for (unsigned t = 0; t < readers; ++t) {
    pool.emplace_back([&s, &stop, &served, t] {
      random_stream rng(hash_combine(0xbe7c, t));
      uint64_t local = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto view = s.snapshot_query();
        uint64_t st = 0;
        benchmark::DoNotOptimize(
            view.connected(static_cast<vertex_id>(rng.next(kN)),
                           static_cast<vertex_id>(rng.next(kN)), &st));
        ++local;
      }
      served.fetch_add(local, std::memory_order_relaxed);
    });
  }

  // Each iteration builds the graph up and tears it back down, so the
  // structure re-enters the same (empty) state and iterations compose.
  for (auto _ : state) {
    timer t;
    for (const auto& b : batches) s.batch_insert(b);
    for (const auto& b : batches) s.batch_delete(b);
    state.SetIterationTime(t.elapsed());
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();

  state.SetItemsProcessed(static_cast<int64_t>(2 * graph.size()) *
                          state.iterations());
  state.counters["served"] = static_cast<double>(served.load());
  state.counters["served/s"] = benchmark::Counter(
      static_cast<double>(served.load()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ConcurrentServe)
    ->ArgsProduct({{0, 2, 4}, {0, 1}})
    ->ArgNames({"readers", "blocked"})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

// BM_SnapshotPublish — per-batch snapshot publish cost as a function of n,
// batch size, and publish mode (ISSUE 7). The base graph is a sea of
// disjoint 16-vertex path clusters; each iteration deletes and re-inserts
// one batch of intra-cluster edges, touching only the first batch/15-ish
// clusters. The incremental publisher relabels O(batch) vertices per
// commit while the --publish=full escape hatch re-walks all n, so the gap
// between fullpub:0 and fullpub:1 at fixed (logn, batch) IS the headline
// win — read the "publish_us/batch" counter, not just wall time (the
// batch itself costs the same on both sides).
static void BM_SnapshotPublish(benchmark::State& state) {
  const vertex_id n = vertex_id{1} << state.range(0);
  const size_t batch = static_cast<size_t>(state.range(1));
  const bool full = state.range(2) != 0;
  constexpr vertex_id kCluster = 16;

  options o;
  o.substrate = substrate::blocked;
  o.concurrent_reads = true;
  o.publish = full ? publish_mode::full : publish_mode::incremental;
  batch_dynamic_connectivity s(n, o);
  {
    std::vector<edge> es;
    es.reserve(1u << 16);
    for (vertex_id v = 0; v + 1 < n; ++v) {
      if ((v + 1) % kCluster != 0) es.push_back({v, v + 1});
      if (es.size() == (1u << 16)) {
        s.batch_insert(es);
        es.clear();
      }
    }
    if (!es.empty()) s.batch_insert(es);
  }
  // The churn batch: the first `batch` intra-cluster edges.
  std::vector<edge> churn;
  for (vertex_id v = 0; churn.size() < batch && v + 1 < n; ++v)
    if ((v + 1) % kCluster != 0) churn.push_back({v, v + 1});
  const uint64_t warmup_publishes = s.stats().snapshots_published;
  const uint64_t warmup_micros = s.stats().publish_micros;

  for (auto _ : state) {
    s.batch_delete(churn);
    s.batch_insert(churn);
  }

  const auto& st = s.stats();
  const uint64_t publishes = st.snapshots_published - warmup_publishes;
  state.counters["publish_us/batch"] =
      publishes == 0 ? 0.0
                     : static_cast<double>(st.publish_micros -
                                           warmup_micros) /
                           static_cast<double>(publishes);
  state.counters["relabeled"] = static_cast<double>(st.publish_relabeled);
  state.counters["full_walks"] = static_cast<double>(st.publishes_full);
  state.SetItemsProcessed(static_cast<int64_t>(2 * churn.size()) *
                          state.iterations());
}
BENCHMARK(BM_SnapshotPublish)
    ->ArgsProduct({{16, 20}, {64, 256}, {0, 1}})
    ->ArgNames({"logn", "batch", "fullpub"})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
