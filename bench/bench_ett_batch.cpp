// E1 — Theorem 2: batch-parallel ETT operations cost O(k lg(1 + n/k))
// expected work per batch of k. Per-edge time should FALL as k grows at
// fixed n (the lg(1+n/k) factor shrinks), for links+cuts, connectivity
// queries, and representative queries.
#include <benchmark/benchmark.h>

#include "ett/euler_tour_tree.hpp"
#include "gen/graph_gen.hpp"
#include "gen/update_stream.hpp"
#include "util/random.hpp"

using namespace bdc;

namespace {
constexpr vertex_id kN = 1 << 15;
}

static void BM_EttLinkCut(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  euler_tour_forest f(kN, 1);
  // A fixed forest batch: k edges of a random forest (always linkable).
  auto forest_edges = gen_random_forest(kN, kN / 2 >= k ? kN - k : 1, 2);
  forest_edges.resize(std::min(forest_edges.size(), k));
  std::span<const edge> batch(forest_edges.data(), forest_edges.size());
  for (auto _ : state) {
    f.batch_link(batch);
    f.batch_cut(batch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(2 * batch.size()) *
                          state.iterations());
}
BENCHMARK(BM_EttLinkCut)->Arg(1)->Arg(16)->Arg(256)->Arg(4096)->Arg(16384);

static void BM_EttBatchConnected(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  euler_tour_forest f(kN, 3);
  f.batch_link(gen_random_forest(kN, 16, 4));
  auto qs = make_query_batch(kN, k, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.batch_connected(qs));
  }
  state.SetItemsProcessed(static_cast<int64_t>(k) * state.iterations());
}
BENCHMARK(BM_EttBatchConnected)
    ->Arg(1)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(65536);

static void BM_EttBatchFindRep(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  euler_tour_forest f(kN, 6);
  f.batch_link(gen_random_forest(kN, 16, 7));
  bdc::random r(8);
  std::vector<vertex_id> vs(k);
  for (size_t i = 0; i < k; ++i)
    vs[i] = static_cast<vertex_id>(r.ith_rand(i, kN));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.batch_find_rep(vs));
  }
  state.SetItemsProcessed(static_cast<int64_t>(k) * state.iterations());
}
BENCHMARK(BM_EttBatchFindRep)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

static void BM_EttComponentCounts(benchmark::State& state) {
  euler_tour_forest f(kN, 9);
  f.batch_link(gen_random_tree(kN, 10));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.component_counts(123));
  }
}
BENCHMARK(BM_EttComponentCounts);

BENCHMARK_MAIN();
