// E6 — Theorem 9 (the headline bound): amortized O(lg n lg(1 + n/Δ)) work
// per edge where Δ is the average deletion batch size. Sweeping Δ from 1
// to m/2 at fixed n and m, the parallel structure's us/edge should FALL as
// lg(1 + n/Δ) shrinks, while sequential HDT stays flat (its bound does not
// depend on Δ). This is the asymptotic separation the paper claims for
// large batches.
#include "bench_common.hpp"
#include "core/batch_connectivity.hpp"
#include "gen/graph_gen.hpp"
#include "gen/update_stream.hpp"
#include "hdt/hdt_connectivity.hpp"
#include <cmath>

#include "util/bits.hpp"

using namespace bdc;

int main() {
  bench::print_header(
      "E6 bench_batch_size_sweep",
      "per-edge deletion cost falls as lg(1 + n/delta) for the parallel "
      "structure; HDT is delta-independent");
  bench::print_row({"structure", "n", "m", "delta", "lg(1+n/delta)",
                    "delete_sec", "us_per_deleted_edge"});
  const vertex_id n = 1 << 12;
  const size_t m = 4 * static_cast<size_t>(n);
  auto graph = gen_erdos_renyi(n, m, 3);

  std::vector<size_t> deltas = {1, 8, 64, 512, 4096, m / 2};
  for (size_t delta : deltas) {
    auto stream = make_deletion_stream(graph, n, 4096, delta, 0, 4);
    {
      batch_dynamic_connectivity dc(n);
      double del = 0;
      timer t;
      for (const auto& b : stream) {
        if (b.op == update_batch::kind::insert) {
          dc.batch_insert(b.edges);
        } else if (b.op == update_batch::kind::erase) {
          t.reset();
          dc.batch_delete(b.edges);
          del += t.elapsed();
        }
      }
      double lg_term =
          std::log2(1.0 + static_cast<double>(n) / static_cast<double>(delta));
      bench::print_row({"parallel", std::to_string(n), std::to_string(m),
                        std::to_string(delta), bench::fmt(lg_term, "%.2f"),
                        bench::fmt(del),
                        bench::fmt(del / static_cast<double>(m) * 1e6,
                                   "%.2f")});
    }
  }
  // HDT reference: one run (delta-independent by construction; we verify
  // with the extreme deltas).
  for (size_t delta : {size_t{1}, m / 2}) {
    auto stream = make_deletion_stream(graph, n, 4096, delta, 0, 4);
    hdt_connectivity hdt(n);
    double del = 0;
    timer t;
    for (const auto& b : stream) {
      if (b.op == update_batch::kind::insert) {
        hdt.batch_insert(b.edges);
      } else if (b.op == update_batch::kind::erase) {
        t.reset();
        hdt.batch_delete(b.edges);
        del += t.elapsed();
      }
    }
    bench::print_row({"hdt", std::to_string(n), std::to_string(m),
                      std::to_string(delta), "-", bench::fmt(del),
                      bench::fmt(del / static_cast<double>(m) * 1e6,
                                 "%.2f")});
  }
  return 0;
}
