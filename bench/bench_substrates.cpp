// E10 — substrate cost model, in two halves:
//
//  1. The parallel primitives the analysis treats as O(k) work (semisort
//     [24], parallel dictionary [23], spanning forest [22], scan/pack
//     [34]) should show flat-ish per-element costs as input size grows.
//
//  2. Head-to-head Euler-tour substrate A/B (skiplist vs treap vs
//     blocked) on the identical batch_link / batch_cut / batch_connected
//     workloads, plus pooled vs heap node allocation. Every substrate
//     benchmark takes the substrate as its first argument (0 = skiplist,
//     1 = treap, 2 = blocked), so a single JSON run yields the full
//     comparison matrix. BM_SubstrateSmallComponents isolates the
//     small-component regime the blocked substrate targets, and
//     BM_LevelPolicyStream runs the full dynamic structure under uniform
//     and mixed per-level substrate configurations.
#include <benchmark/benchmark.h>

#include <span>
#include <string>
#include <vector>

#include "core/batch_connectivity.hpp"
#include "ett/ett_forest.hpp"
#include "ett/ett_substrate.hpp"
#include "gen/graph_gen.hpp"
#include "gen/update_stream.hpp"
#include "hashtable/phase_concurrent_map.hpp"
#include "parallel/primitives.hpp"
#include "sequence/semisort.hpp"
#include "spanning/union_find.hpp"
#include "util/node_pool.hpp"
#include "util/random.hpp"

using namespace bdc;

static void BM_Semisort(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  bdc::random r(41);
  std::vector<std::pair<uint32_t, uint64_t>> pairs(n);
  for (size_t i = 0; i < n; ++i)
    pairs[i] = {static_cast<uint32_t>(r.ith_rand(i, n / 4 + 1)),
                r.ith_rand(i)};
  for (auto _ : state) {
    auto copy = pairs;
    benchmark::DoNotOptimize(group_by_key(std::move(copy)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_Semisort)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

static void BM_DictionaryInsertBatch(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::pair<uint64_t, uint64_t>> kvs(n);
  for (size_t i = 0; i < n; ++i) kvs[i] = {hash64(i) | 1, i};
  for (auto _ : state) {
    phase_concurrent_map<uint64_t> m(n);
    m.insert_batch(kvs);
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_DictionaryInsertBatch)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

static void BM_SpanningForest(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto es = gen_erdos_renyi(static_cast<vertex_id>(n), 4 * n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spanning_forest(n, es));
  }
  state.SetItemsProcessed(static_cast<int64_t>(4 * n) * state.iterations());
}
BENCHMARK(BM_SpanningForest)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

static void BM_ScanPack(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  bdc::random r(43);
  std::vector<long> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<long>(r.ith_rand(i, 100));
  for (auto _ : state) {
    auto evens = filter(v, [](long x) { return x % 2 == 0; });
    benchmark::DoNotOptimize(evens);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ScanPack)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

// ---------------------------------------------------------------------
// Euler-tour substrate A/B. Arg(0): substrate (0 = skiplist, 1 = treap,
// 2 = blocked); Arg(1): batch size k.
// ---------------------------------------------------------------------

namespace {
constexpr vertex_id kEttN = 1 << 14;

substrate substrate_of(const benchmark::State& state) {
  switch (state.range(0)) {
    case 1:
      return substrate::treap;
    case 2:
      return substrate::blocked;
    default:
      return substrate::skiplist;
  }
}

void set_substrate_label(benchmark::State& state) {
  state.SetLabel(to_string(substrate_of(state)));
}
}  // namespace

static void BM_SubstrateLinkCut(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(1));
  auto f = make_ett(substrate_of(state), kEttN, 11);
  auto forest_edges =
      gen_random_forest(kEttN, kEttN / 2 >= k ? kEttN - k : 1, 12);
  forest_edges.resize(std::min(forest_edges.size(), k));
  std::span<const edge> batch(forest_edges.data(), forest_edges.size());
  for (auto _ : state) {
    f->batch_link(batch);
    f->batch_cut(batch);
  }
  set_substrate_label(state);
  state.SetItemsProcessed(static_cast<int64_t>(2 * batch.size()) *
                          state.iterations());
}
BENCHMARK(BM_SubstrateLinkCut)
    ->ArgsProduct({{0, 1, 2}, {16, 256, 4096}})
    ->ArgNames({"substrate", "k"});

static void BM_SubstrateBatchConnected(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(1));
  auto f = make_ett(substrate_of(state), kEttN, 13);
  f->batch_link(gen_random_forest(kEttN, 16, 14));
  auto qs = make_query_batch(kEttN, k, 15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f->batch_connected(qs));
  }
  set_substrate_label(state);
  state.SetItemsProcessed(static_cast<int64_t>(k) * state.iterations());
}
BENCHMARK(BM_SubstrateBatchConnected)
    ->ArgsProduct({{0, 1, 2}, {256, 4096, 65536}})
    ->ArgNames({"substrate", "k"});

static void BM_SubstrateCountsAndFetch(benchmark::State& state) {
  auto f = make_ett(substrate_of(state), kEttN, 16);
  f->batch_link(gen_random_tree(kEttN, 17));
  std::vector<ett_substrate::count_delta> up(256), down(256);
  for (uint32_t i = 0; i < 256; ++i) {
    up[i] = {i * 5, 0, 2};
    down[i] = {i * 5, 0, -2};
  }
  for (auto _ : state) {
    f->batch_add_counts(up);
    benchmark::DoNotOptimize(f->fetch_nontree(7, 128));
    f->batch_add_counts(down);
  }
  set_substrate_label(state);
  state.SetItemsProcessed(512 * state.iterations());
}
BENCHMARK(BM_SubstrateCountsAndFetch)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgName("substrate");

// ---------------------------------------------------------------------
// Dispatch A/B (ROADMAP "static dispatch variant"): the identical hot
// workload routed through ett_forest under both dispatch modes. Arg(0):
// dispatch (0 = static variant, 1 = virtual bridge); Arg(1): substrate.
// BM_DispatchFindRep and BM_DispatchConnected are the per-element
// regime — the dispatch is hoisted once per loop (visit), so the static
// rows pay N direct calls where the virtual rows pay N indirect calls.
// BM_DispatchBatchConnected and BM_DispatchLinkCut are the
// one-dispatch-per-batch regime, where the delta should be a wash.
// ---------------------------------------------------------------------

namespace {
dispatch dispatch_of(const benchmark::State& state) {
  return state.range(0) == 1 ? dispatch::virtual_bridge
                             : dispatch::static_variant;
}

substrate substrate_of_arg1(const benchmark::State& state) {
  switch (state.range(1)) {
    case 1:
      return substrate::treap;
    case 2:
      return substrate::blocked;
    default:
      return substrate::skiplist;
  }
}

void set_dispatch_label(benchmark::State& state) {
  state.SetLabel(std::string(to_string(dispatch_of(state))) + "/" +
                 to_string(substrate_of_arg1(state)));
}
}  // namespace

static void BM_DispatchFindRep(benchmark::State& state) {
  ett_forest f(substrate_of_arg1(state), kEttN, 31, dispatch_of(state));
  f.batch_link(gen_random_forest(kEttN, 64, 32));
  // Shuffled probe order: real fetch/expand loops walk scattered ids.
  std::vector<vertex_id> vs(kEttN);
  bdc::random r(33);
  for (size_t i = 0; i < vs.size(); ++i)
    vs[i] = static_cast<vertex_id>(r.ith_rand(i, kEttN));
  for (auto _ : state) {
    f.visit([&](auto& fc) {
      for (vertex_id v : vs) benchmark::DoNotOptimize(fc.find_rep(v));
    });
  }
  set_dispatch_label(state);
  state.SetItemsProcessed(static_cast<int64_t>(vs.size()) *
                          state.iterations());
}
BENCHMARK(BM_DispatchFindRep)
    ->ArgsProduct({{0, 1}, {0, 1, 2}})
    ->ArgNames({"dispatch", "substrate"});

static void BM_DispatchConnected(benchmark::State& state) {
  ett_forest f(substrate_of_arg1(state), kEttN, 35, dispatch_of(state));
  f.batch_link(gen_random_forest(kEttN, 64, 36));
  auto qs = make_query_batch(kEttN, 4096, 37);
  for (auto _ : state) {
    f.visit([&](auto& fc) {
      for (auto& [u, v] : qs) benchmark::DoNotOptimize(fc.connected(u, v));
    });
  }
  set_dispatch_label(state);
  state.SetItemsProcessed(static_cast<int64_t>(qs.size()) *
                          state.iterations());
}
BENCHMARK(BM_DispatchConnected)
    ->ArgsProduct({{0, 1}, {0, 1, 2}})
    ->ArgNames({"dispatch", "substrate"});

static void BM_DispatchBatchConnected(benchmark::State& state) {
  ett_forest f(substrate_of_arg1(state), kEttN, 13, dispatch_of(state));
  f.batch_link(gen_random_forest(kEttN, 16, 14));
  auto qs = make_query_batch(kEttN, 4096, 15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.batch_connected(qs));
  }
  set_dispatch_label(state);
  state.SetItemsProcessed(static_cast<int64_t>(qs.size()) *
                          state.iterations());
}
BENCHMARK(BM_DispatchBatchConnected)
    ->ArgsProduct({{0, 1}, {0, 1, 2}})
    ->ArgNames({"dispatch", "substrate"});

static void BM_DispatchLinkCut(benchmark::State& state) {
  const size_t k = 256;
  ett_forest f(substrate_of_arg1(state), kEttN, 11, dispatch_of(state));
  auto forest_edges = gen_random_forest(kEttN, kEttN - k, 12);
  forest_edges.resize(std::min(forest_edges.size(), k));
  std::span<const edge> batch(forest_edges.data(), forest_edges.size());
  for (auto _ : state) {
    f.batch_link(batch);
    f.batch_cut(batch);
  }
  set_dispatch_label(state);
  state.SetItemsProcessed(static_cast<int64_t>(2 * batch.size()) *
                          state.iterations());
}
BENCHMARK(BM_DispatchLinkCut)
    ->ArgsProduct({{0, 1}, {0, 1, 2}})
    ->ArgNames({"dispatch", "substrate"});

// ---------------------------------------------------------------------
// The small-component regime (De Man et al. 2024): a forest of many
// components of size S under intra-component link/cut churn plus
// connectivity queries. This is where the HDT hierarchy's low levels
// live (level i caps components at 2^(i+1)), i.e. the regime the
// per-level policy hands to the blocked substrate. Arg(0): substrate;
// Arg(1): component size S.
// ---------------------------------------------------------------------

static void BM_SubstrateSmallComponents(benchmark::State& state) {
  size_t comp = static_cast<size_t>(state.range(1));
  auto f = make_ett(substrate_of(state), kEttN, 19);
  // Paths of `comp` vertices; cut/relink each component's middle edge.
  std::vector<edge> middles;
  for (vertex_id base = 0; base + comp <= kEttN;
       base += static_cast<vertex_id>(comp)) {
    std::vector<edge> path;
    for (vertex_id i = 0; i + 1 < comp; ++i)
      path.push_back({base + i, base + i + 1});
    f->batch_link(path);
    middles.push_back(path[path.size() / 2]);
  }
  // Cross-component queries (always disconnected: worst-case walks).
  std::vector<std::pair<vertex_id, vertex_id>> qs(middles.size());
  bdc::random qr(23);
  for (size_t i = 0; i < qs.size(); ++i)
    qs[i] = {static_cast<vertex_id>(qr.ith_rand(2 * i, kEttN)),
             static_cast<vertex_id>(qr.ith_rand(2 * i + 1, kEttN))};
  for (auto _ : state) {
    f->batch_cut(middles);
    f->batch_link(middles);
    benchmark::DoNotOptimize(f->batch_connected(qs));
  }
  set_substrate_label(state);
  state.SetItemsProcessed(static_cast<int64_t>(3 * middles.size()) *
                          state.iterations());
}
BENCHMARK(BM_SubstrateSmallComponents)
    ->ArgsProduct({{0, 1, 2}, {4, 16, 64, 256}})
    ->ArgNames({"substrate", "comp"});

// ---------------------------------------------------------------------
// Uniform vs mixed per-level policy on the full dynamic structure: one
// deletion stream (insert + batched deletes + queries) replayed under
// uniform skiplist (0), uniform blocked (1), and the mixed policy (2:
// blocked below level 8, skip list above). Arg: config.
// ---------------------------------------------------------------------

static void BM_LevelPolicyStream(benchmark::State& state) {
  const vertex_id n = 1 << 12;
  auto graph = gen_erdos_renyi(n, 4 * n, 29);
  auto stream = make_deletion_stream(graph, n, 512, 256, 128, 30);
  options o;
  const char* label = "skiplist";
  switch (state.range(0)) {
    case 1:
      o.substrate = substrate::blocked;
      label = "blocked";
      break;
    case 2:
      o.substrate = substrate::skiplist;
      o.policy = level_policy{8, substrate::blocked};
      label = "mixed_blocked_lt8";
      break;
    default:
      break;
  }
  size_t ops = 0;
  for (auto _ : state) {
    batch_dynamic_connectivity dc(n, o);
    ops = 0;
    for (const auto& b : stream) {
      switch (b.op) {
        case update_batch::kind::insert:
          dc.batch_insert(b.edges);
          ops += b.edges.size();
          break;
        case update_batch::kind::erase:
          dc.batch_delete(b.edges);
          ops += b.edges.size();
          break;
        case update_batch::kind::query:
          benchmark::DoNotOptimize(dc.batch_connected(b.queries));
          ops += b.queries.size();
          break;
      }
    }
  }
  state.SetLabel(label);
  state.SetItemsProcessed(static_cast<int64_t>(ops) * state.iterations());
}
BENCHMARK(BM_LevelPolicyStream)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgName("config");

// ---------------------------------------------------------------------
// Treap mutation scaling: the join-based bulk link/cut phases at several
// worker-pool sizes. workers=1 takes the substrate's sequential
// split/merge fallback, so the 1-worker row IS the pre-join baseline and
// the ≥2-worker rows measure the parallel speedup on identical batches.
// ---------------------------------------------------------------------

static void BM_TreapMutationWorkers(benchmark::State& state) {
  unsigned workers = static_cast<unsigned>(state.range(0));
  size_t k = static_cast<size_t>(state.range(1));
  unsigned before = num_workers();
  set_num_workers(workers);
  {
    // Scope the forest so its worker-sliced node pool dies before the
    // pool size is restored.
    auto f = make_ett(substrate::treap, kEttN, 21);
    auto forest_edges =
        gen_random_forest(kEttN, kEttN / 2 >= k ? kEttN - k : 1, 22);
    forest_edges.resize(std::min(forest_edges.size(), k));
    std::span<const edge> batch(forest_edges.data(), forest_edges.size());
    for (auto _ : state) {
      f->batch_link(batch);
      f->batch_cut(batch);
    }
    state.SetItemsProcessed(static_cast<int64_t>(2 * batch.size()) *
                            state.iterations());
  }
  set_num_workers(before);
}
BENCHMARK(BM_TreapMutationWorkers)
    ->ArgsProduct({{1, 2, 4, 8}, {256, 4096}})
    ->ArgNames({"workers", "k"})
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// ---------------------------------------------------------------------
// Pooled vs per-node heap allocation (the acceptance gate for
// util/node_pool.hpp: the pool must not lose to operator new on the
// alloc/free churn a batch insert/delete performs).
// ---------------------------------------------------------------------

static void BM_NodePoolAllocFree(benchmark::State& state) {
  constexpr size_t kNodeBytes = 96;  // typical low-height skip-list node
  node_pool pool;
  std::vector<void*> ps(4096);
  for (auto _ : state) {
    for (auto& p : ps) p = pool.allocate(kNodeBytes);
    for (void* p : ps) pool.deallocate(p, kNodeBytes);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(ps.size()) *
                          state.iterations());
}
BENCHMARK(BM_NodePoolAllocFree);

static void BM_HeapAllocFree(benchmark::State& state) {
  constexpr size_t kNodeBytes = 96;
  std::vector<void*> ps(4096);
  for (auto _ : state) {
    for (auto& p : ps) p = ::operator new(kNodeBytes);
    for (void* p : ps) ::operator delete(p);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(ps.size()) *
                          state.iterations());
}
BENCHMARK(BM_HeapAllocFree);

BENCHMARK_MAIN();
