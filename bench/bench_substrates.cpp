// E10 — substrate cost model: the parallel primitives the analysis treats
// as O(k) work (semisort [24], parallel dictionary [23], spanning forest
// [22], scan/pack [34]) should show flat-ish per-element costs as input
// size grows.
#include <benchmark/benchmark.h>

#include "gen/graph_gen.hpp"
#include "hashtable/phase_concurrent_map.hpp"
#include "parallel/primitives.hpp"
#include "sequence/semisort.hpp"
#include "spanning/union_find.hpp"
#include "util/random.hpp"

using namespace bdc;

static void BM_Semisort(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  bdc::random r(41);
  std::vector<std::pair<uint32_t, uint64_t>> pairs(n);
  for (size_t i = 0; i < n; ++i)
    pairs[i] = {static_cast<uint32_t>(r.ith_rand(i, n / 4 + 1)),
                r.ith_rand(i)};
  for (auto _ : state) {
    auto copy = pairs;
    benchmark::DoNotOptimize(group_by_key(std::move(copy)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_Semisort)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

static void BM_DictionaryInsertBatch(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::pair<uint64_t, uint64_t>> kvs(n);
  for (size_t i = 0; i < n; ++i) kvs[i] = {hash64(i) | 1, i};
  for (auto _ : state) {
    phase_concurrent_map<uint64_t> m(n);
    m.insert_batch(kvs);
    benchmark::DoNotOptimize(m.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_DictionaryInsertBatch)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

static void BM_SpanningForest(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto es = gen_erdos_renyi(static_cast<vertex_id>(n), 4 * n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spanning_forest(n, es));
  }
  state.SetItemsProcessed(static_cast<int64_t>(4 * n) * state.iterations());
}
BENCHMARK(BM_SpanningForest)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

static void BM_ScanPack(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  bdc::random r(43);
  std::vector<long> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<long>(r.ith_rand(i, 100));
  for (auto _ : state) {
    auto evens = filter(v, [](long x) { return x % 2 == 0; });
    benchmark::DoNotOptimize(evens);
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ScanPack)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

BENCHMARK_MAIN();
