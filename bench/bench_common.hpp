// Shared helpers for the series-style experiment binaries (E4-E9, E11):
// a tiny CSV printer and median-of-repetitions timing. Each binary prints
// its experiment id, the paper claim it probes, and a CSV table whose
// shape EXPERIMENTS.md interprets.
#pragma once

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "util/timer.hpp"

namespace bdc::bench {

inline void print_header(const char* experiment, const char* claim) {
  std::printf("# %s\n", experiment);
  std::printf("# claim: %s\n", claim);
}

inline void print_row(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i)
    std::printf("%s%s", i ? "," : "", cells[i].c_str());
  std::printf("\n");
}

/// Median wall-clock seconds of `reps` runs of f (each run gets a fresh
/// setup from `make_state`, untimed).
template <typename Setup, typename Run>
double median_time(int reps, const Setup& make_state, const Run& f) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    auto state = make_state(r);
    timer t;
    f(*state);
    times.push_back(t.elapsed());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

inline std::string fmt(double v, const char* spec = "%.3f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

}  // namespace bdc::bench
