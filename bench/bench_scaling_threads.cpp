// E8 — parallel self-relative speedup. The work-depth bounds promise
// T_P ~ W/P + O(D). Two facets are measured:
//  (a) batch queries — pure work, no synchronization: speedup tracks the
//      machine's effective core count;
//  (b) update streams — many short synchronous phases: the O(D) +
//      scheduling term is material, so speedup needs large batches and
//      real core counts (this container typically offers ~2 shared vCPUs;
//      see EXPERIMENTS.md).
#include <thread>

#include "bench_common.hpp"
#include "core/batch_connectivity.hpp"
#include "gen/graph_gen.hpp"
#include "gen/update_stream.hpp"
#include "parallel/scheduler.hpp"

using namespace bdc;

int main() {
  bench::print_header(
      "E8 bench_scaling_threads",
      "T_P ~ W/P + O(D): query batches scale with workers; update batches "
      "need the W/P term to dominate the sync term");
  bench::print_row({"facet", "workers", "n", "work_items", "total_sec",
                    "speedup_vs_1"});
  const vertex_id n = 1 << 16;

  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 2;
  std::vector<unsigned> workers = {1};
  for (unsigned w = 2; w <= hw; w *= 2) workers.push_back(w);
  if (workers.back() != hw) workers.push_back(hw);

  // Facet (a): a large query batch over a prebuilt graph.
  {
    batch_dynamic_connectivity dc(n);
    dc.batch_insert(gen_erdos_renyi(n, 2 * n, 7));
    auto qs = make_query_batch(n, 1 << 20, 8);
    double base = 0;
    for (unsigned w : workers) {
      set_num_workers(w);
      (void)dc.batch_connected(qs);  // warm
      timer t;
      (void)dc.batch_connected(qs);
      double sec = t.elapsed();
      if (w == 1) base = sec;
      bench::print_row({"queries", std::to_string(w), std::to_string(n),
                        std::to_string(qs.size()), bench::fmt(sec),
                        bench::fmt(base / sec, "%.2f")});
    }
  }

  // Facet (b): insert+delete stream with large batches.
  {
    const vertex_id nu = 1 << 14;
    const size_t m = 4 * static_cast<size_t>(nu);
    const size_t batch = 8192;
    auto graph = gen_erdos_renyi(nu, m, 9);
    auto stream = make_deletion_stream(graph, nu, batch, batch, 0, 10);
    double base = 0;
    for (unsigned w : workers) {
      set_num_workers(w);
      batch_dynamic_connectivity dc(nu);
      timer t;
      for (const auto& b : stream) {
        if (b.op == update_batch::kind::insert) dc.batch_insert(b.edges);
        if (b.op == update_batch::kind::erase) dc.batch_delete(b.edges);
      }
      double sec = t.elapsed();
      if (w == 1) base = sec;
      bench::print_row({"updates", std::to_string(w), std::to_string(nu),
                        std::to_string(2 * m), bench::fmt(sec),
                        bench::fmt(base / sec, "%.2f")});
    }
  }
  set_num_workers(hw);
  return 0;
}
