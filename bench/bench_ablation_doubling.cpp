// E9 — ablation of the doubling search (§3.3): the "natural idea" of
// scanning ALL non-tree edges of each component per round does work that
// cannot be charged to level decreases. The edges_fetched counter exposes
// it directly: scan_all fetches far more than either doubling engine while
// answering identically.
#include "bench_common.hpp"
#include "core/batch_connectivity.hpp"
#include "gen/graph_gen.hpp"
#include "gen/update_stream.hpp"

using namespace bdc;

int main() {
  bench::print_header(
      "E9 bench_ablation_doubling",
      "doubling bounds fetched edges by O(pushed); scan_all fetches "
      "entire components repeatedly");
  bench::print_row({"engine", "n", "m", "batch", "delete_sec",
                    "edges_fetched", "edges_pushed", "fetch_per_push"});
  // Dense graph: components carry many internal non-tree edges, the
  // regime where scan-everything hurts most.
  const vertex_id n = 1 << 11;
  const size_t m = 8 * static_cast<size_t>(n);
  auto graph = gen_erdos_renyi(n, m, 9);
  const size_t batch = 256;
  auto stream = make_deletion_stream(graph, n, 4096, batch, 0, 10);

  for (auto [kind, name] :
       {std::pair{level_search_kind::interleaved, "interleaved"},
        std::pair{level_search_kind::simple, "simple"},
        std::pair{level_search_kind::scan_all, "scan_all"}}) {
    options o;
    o.search = kind;
    batch_dynamic_connectivity dc(n, o);
    double del = 0;
    timer t;
    for (const auto& b : stream) {
      if (b.op == update_batch::kind::insert) {
        dc.batch_insert(b.edges);
        dc.reset_stats();
      } else if (b.op == update_batch::kind::erase) {
        t.reset();
        dc.batch_delete(b.edges);
        del += t.elapsed();
      }
    }
    const auto& s = dc.stats();
    double ratio = s.edges_pushed
                       ? static_cast<double>(s.edges_fetched) /
                             static_cast<double>(s.edges_pushed)
                       : 0.0;
    bench::print_row({name, std::to_string(n), std::to_string(m),
                      std::to_string(batch), bench::fmt(del),
                      std::to_string(s.edges_fetched),
                      std::to_string(s.edges_pushed),
                      bench::fmt(ratio, "%.2f")});
  }
  return 0;
}
