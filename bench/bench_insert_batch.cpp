// E3 — Theorem 4: a batch of k insertions costs O(k lg(1 + n/k)) expected
// work and O(lg n) depth. Per-edge insertion time should fall with k at
// fixed n. Uses manual timing: each iteration inserts a fresh copy of the
// graph in batches of k into a freshly built structure (construction
// untimed).
#include <benchmark/benchmark.h>

#include <memory>

#include "core/batch_connectivity.hpp"
#include "gen/graph_gen.hpp"
#include "gen/update_stream.hpp"
#include "util/timer.hpp"

using namespace bdc;

namespace {
constexpr vertex_id kN = 1 << 14;
constexpr size_t kM = 2 * static_cast<size_t>(kN);
}  // namespace

static void BM_BatchInsert(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  auto graph = gen_erdos_renyi(kN, kM, 31);
  auto stream = make_insertion_stream(graph, k, 32);
  for (auto _ : state) {
    auto dc = std::make_unique<batch_dynamic_connectivity>(kN);
    timer t;
    for (const auto& b : stream) dc->batch_insert(b.edges);
    state.SetIterationTime(t.elapsed());
  }
  state.SetItemsProcessed(static_cast<int64_t>(kM) * state.iterations());
}
BENCHMARK(BM_BatchInsert)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(32768)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

static void BM_InsertConnectedComponentsMix(benchmark::State& state) {
  // Mixed insert + query epochs (a common ingest pattern).
  auto graph = gen_rmat(kN, kM, 33);
  auto stream = make_insertion_stream(graph, 2048, 34);
  auto qs = make_query_batch(kN, 1024, 35);
  for (auto _ : state) {
    auto dc = std::make_unique<batch_dynamic_connectivity>(kN);
    timer t;
    for (const auto& b : stream) {
      dc->batch_insert(b.edges);
      benchmark::DoNotOptimize(dc->batch_connected(qs));
    }
    state.SetIterationTime(t.elapsed());
  }
}
BENCHMARK(BM_InsertConnectedComponentsMix)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
