// E4 — Theorems 5 & 7: deletion depth of Algorithm 4 (simple, O(lg^4 n))
// vs Algorithm 5 (interleaved, O(lg^3 n)). The depth proxy is the count of
// oracle phases (edge-fetch rounds) per level search, which is exactly the
// quantity the two theorems bound differently; wall time is reported too.
#include <memory>

#include "bench_common.hpp"
#include "core/batch_connectivity.hpp"
#include "gen/graph_gen.hpp"
#include "gen/update_stream.hpp"

using namespace bdc;

namespace {

struct run_result {
  double seconds;
  statistics stats;
};

run_result run_engine(level_search_kind kind, vertex_id n,
                      const std::vector<edge>& graph,
                      const update_stream& stream) {
  options o;
  o.search = kind;
  batch_dynamic_connectivity dc(n, o);
  (void)graph;
  timer t;
  double delete_time = 0;
  for (const auto& b : stream) {
    if (b.op == update_batch::kind::insert) {
      dc.batch_insert(b.edges);
      dc.reset_stats();
      t.reset();
    } else if (b.op == update_batch::kind::erase) {
      t.reset();
      dc.batch_delete(b.edges);
      delete_time += t.elapsed();
    }
  }
  return {delete_time, dc.stats()};
}

}  // namespace

int main() {
  bench::print_header(
      "E4 bench_delete_algos",
      "Alg5 (interleaved) needs O(lg n) oracle phases per level vs "
      "O(lg^2 n) for Alg4 (simple); depth O(lg^3) vs O(lg^4)");
  bench::print_row({"engine", "n", "batch", "delete_sec", "levels",
                    "rounds", "phases", "phases_per_level",
                    "edges_fetched", "edges_pushed"});
  const vertex_id n = 1 << 13;
  const size_t m = 4 * static_cast<size_t>(n);
  auto graph = gen_erdos_renyi(n, m, 1);
  for (size_t batch : {64u, 512u, 4096u}) {
    auto stream = make_deletion_stream(graph, n, 4096, batch, 0, 2);
    for (auto [kind, name] :
         {std::pair{level_search_kind::simple, "simple"},
          std::pair{level_search_kind::interleaved, "interleaved"}}) {
      auto r = run_engine(kind, n, graph, stream);
      double ppl = r.stats.levels_searched
                       ? static_cast<double>(r.stats.doubling_phases) /
                             static_cast<double>(r.stats.levels_searched)
                       : 0.0;
      bench::print_row({name, std::to_string(n), std::to_string(batch),
                        bench::fmt(r.seconds),
                        std::to_string(r.stats.levels_searched),
                        std::to_string(r.stats.search_rounds),
                        std::to_string(r.stats.doubling_phases),
                        bench::fmt(ppl, "%.2f"),
                        std::to_string(r.stats.edges_fetched),
                        std::to_string(r.stats.edges_pushed)});
    }
  }
  return 0;
}
