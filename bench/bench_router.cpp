// BM_RouterMixedTrace — the workload-adaptive engine router (ISSUE 8)
// against every fixed engine on the committed mixed phase-skewed trace
// shape: insert ramp → churn → query flood → deletion burst. The trace is
// regenerated in-process with the same generator parameters and seed as
// tools/testdata/mixed_phase_stream.txt (gen --stream=mixed erdos 32768
// 163840 512 7), so the numbers line up with `stream_runner run
// --engine=... --check` on the committed file.
//
// Each iteration replays the whole trace through a fresh structure;
// items/s is total operations (updates + queries) per second — the
// headline "auto ≥ every fixed engine" criterion reads straight off the
// items_per_second column. Correctness rides along: every query batch is
// differential-checked against precomputed union-find oracle answers and
// surfaces as the "wrong" counter — 0 for auto/dynamic/hdt/static. The
// insert-only incremental engine is included as a lower-bound reference;
// it ignores the deletion batches, so its (higher) throughput comes with
// a non-zero "wrong" count and is NOT comparable.
//
// Router-only counters: promotion cost (one-shot bulk load, us), cache
// hit rate over the query-flood endpoints, and phase switches.
#include <benchmark/benchmark.h>

#include <unordered_set>
#include <vector>

#include "baselines/incremental_connectivity.hpp"
#include "baselines/static_connectivity.hpp"
#include "core/batch_connectivity.hpp"
#include "core/engine_router.hpp"
#include "gen/graph_gen.hpp"
#include "gen/update_stream.hpp"
#include "hdt/hdt_connectivity.hpp"
#include "spanning/union_find.hpp"
#include "util/timer.hpp"

using namespace bdc;

namespace {

constexpr vertex_id kN = 32768;
constexpr size_t kM = 5 * static_cast<size_t>(kN);
constexpr size_t kBatch = 512;
constexpr uint64_t kSeed = 7;

enum engine_id {
  kAuto = 0,
  kDynamic,
  kHdt,
  kStatic,
  kIncremental,
  kEngineCount
};

const char* engine_label(int id) {
  switch (id) {
    case kAuto: return "auto";
    case kDynamic: return "dynamic";
    case kHdt: return "hdt";
    case kStatic: return "static";
    default: return "incremental";
  }
}

const update_stream& mixed_trace() {
  static const update_stream stream = [] {
    auto graph = gen_erdos_renyi(kN, kM, kSeed);
    return make_phase_skewed_stream(graph, kN, kBatch, /*flood_batches=*/8,
                                    /*flood_queries=*/4 * kBatch,
                                    kSeed + 1);
  }();
  return stream;
}

/// Expected answers per query batch (union-find oracle in lockstep,
/// computed once and shared by every engine's run).
const std::vector<std::vector<bool>>& oracle_answers() {
  static const std::vector<std::vector<bool>> answers = [] {
    std::vector<std::vector<bool>> out;
    std::unordered_set<uint64_t> edges;
    union_find uf(kN);
    bool dirty = true;
    auto rebuild = [&] {
      uf = union_find(kN);
      for (uint64_t key : edges) {
        edge e = edge_from_key(key);
        uf.unite(e.u, e.v);
      }
      dirty = false;
    };
    for (const auto& b : mixed_trace()) {
      switch (b.op) {
        case update_batch::kind::insert:
        case update_batch::kind::erase:
          for (const edge& raw : b.edges) {
            edge c = raw.canonical();
            if (c.is_self_loop() || c.v >= kN) continue;
            if (b.op == update_batch::kind::insert)
              edges.insert(edge_key(c));
            else
              edges.erase(edge_key(c));
          }
          dirty = true;
          break;
        case update_batch::kind::query: {
          if (dirty) rebuild();
          std::vector<bool> ans(b.queries.size());
          for (size_t i = 0; i < b.queries.size(); ++i) {
            auto [u, v] = b.queries[i];
            ans[i] = u < kN && v < kN && uf.find(u) == uf.find(v);
          }
          out.push_back(std::move(ans));
          break;
        }
      }
    }
    return out;
  }();
  return answers;
}

struct trace_result {
  size_t ops = 0;    // updates + queries replayed
  size_t wrong = 0;  // query answers disagreeing with the oracle
};

template <typename Structure>
trace_result replay_trace(Structure& s) {
  trace_result r;
  const auto& expected = oracle_answers();
  size_t qb = 0;
  for (const auto& b : mixed_trace()) {
    switch (b.op) {
      case update_batch::kind::insert:
        s.batch_insert(b.edges);
        r.ops += b.edges.size();
        break;
      case update_batch::kind::erase:
        s.batch_delete(b.edges);
        r.ops += b.edges.size();
        break;
      case update_batch::kind::query: {
        auto ans = s.batch_connected(b.queries);
        r.ops += b.queries.size();
        const auto& exp = expected[qb++];
        for (size_t i = 0; i < ans.size(); ++i) r.wrong += ans[i] != exp[i];
        break;
      }
    }
  }
  return r;
}

struct incremental_shim {
  incremental_connectivity inner;
  explicit incremental_shim(vertex_id n) : inner(n) {}
  void batch_insert(std::span<const edge> es) { inner.batch_insert(es); }
  void batch_delete(std::span<const edge>) {}  // insert-only model
  std::vector<bool> batch_connected(
      std::span<const std::pair<vertex_id, vertex_id>> qs) {
    return inner.batch_connected(qs);
  }
};

}  // namespace

static void BM_RouterMixedTrace(benchmark::State& state) {
  const int id = static_cast<int>(state.range(0));
  (void)oracle_answers();  // precompute outside the timing loop
  state.SetLabel(engine_label(id));

  trace_result last{};
  router_statistics router_stats{};
  options dyn;
  dyn.substrate = substrate::blocked;
  for (auto _ : state) {
    timer t;
    switch (id) {
      case kAuto: {
        router_options ro;
        ro.dynamic_opts = dyn;
        engine_router s(kN, ro);
        last = replay_trace(s);
        state.SetIterationTime(t.elapsed());
        router_stats = s.stats();
        break;
      }
      case kDynamic: {
        batch_dynamic_connectivity s(kN, dyn);
        last = replay_trace(s);
        state.SetIterationTime(t.elapsed());
        break;
      }
      case kHdt: {
        hdt_connectivity s(kN);
        last = replay_trace(s);
        state.SetIterationTime(t.elapsed());
        break;
      }
      case kStatic: {
        static_recompute_connectivity s(kN);
        last = replay_trace(s);
        state.SetIterationTime(t.elapsed());
        break;
      }
      default: {
        incremental_shim s(kN);
        last = replay_trace(s);
        state.SetIterationTime(t.elapsed());
        break;
      }
    }
  }

  state.SetItemsProcessed(static_cast<int64_t>(last.ops) *
                          state.iterations());
  state.counters["wrong"] = static_cast<double>(last.wrong);
  if (id == kAuto) {
    state.counters["promotion_us"] =
        static_cast<double>(router_stats.promotion_micros);
    state.counters["cache_hit_pct"] =
        router_stats.cache_lookups == 0
            ? 0.0
            : 100.0 * static_cast<double>(router_stats.cache_hits) /
                  static_cast<double>(router_stats.cache_lookups);
    state.counters["phase_switches"] =
        static_cast<double>(router_stats.phase_switches);
  }
}
BENCHMARK(BM_RouterMixedTrace)
    ->DenseRange(0, kEngineCount - 1)
    ->ArgNames({"engine"})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
