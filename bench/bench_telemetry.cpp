// Telemetry overhead: pins the "low-overhead" claim of src/obs/ with
// numbers, in three tiers:
//
//  1. Primitive cost — counter add / histogram record / span
//     construct+destroy against the noop:: twins that a BDC_TELEMETRY=OFF
//     build compiles every instrumentation site down to. The noop
//     benchmarks measure the compiled-out baseline WITHOUT needing a
//     second binary.
//  2. Contention — the same counter hammered from every worker
//     concurrently (the sharding's whole reason to exist).
//  3. End-to-end — a full batch insert+delete replay, identical stream,
//     with the per-batch spans live (they always are in this build);
//     BM_ReplayMixed/ON vs the OFF build's bench-history series is the
//     cross-build comparison, and the primitive tiers bound it from
//     below. The acceptance bar: span overhead <= 5% of replay time.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/batch_connectivity.hpp"
#include "gen/graph_gen.hpp"
#include "gen/update_stream.hpp"
#include "obs/telemetry.hpp"
#include "parallel/scheduler.hpp"

using namespace bdc;

static void BM_CounterAdd(benchmark::State& state) {
  obs::counter c;
  for (auto _ : state) c.add(1);
  benchmark::DoNotOptimize(c.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

static void BM_CounterAddNoop(benchmark::State& state) {
  obs::noop::counter c;
  for (auto _ : state) {
    c.add(1);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAddNoop);

static void BM_HistogramRecord(benchmark::State& state) {
  obs::histogram h;
  uint64_t v = 0;
  for (auto _ : state) h.record(v++ & 0xffff);
  benchmark::DoNotOptimize(h.count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

static void BM_HistogramRecordNoop(benchmark::State& state) {
  obs::noop::histogram h;
  uint64_t v = 0;
  for (auto _ : state) {
    h.record(v++ & 0xffff);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecordNoop);

static void BM_PhaseSpan(benchmark::State& state) {
  // The real macro path: cached histogram reference + RAII span (two
  // steady_clock reads + one histogram record per scope).
  for (auto _ : state) {
    BDC_PHASE_SPAN(sp, "bench.telemetry_span");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PhaseSpan);

static void BM_PhaseSpanNoop(benchmark::State& state) {
  // What every span site costs in a BDC_TELEMETRY=OFF build.
  for (auto _ : state) {
    obs::noop::phase_span sp;
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PhaseSpanNoop);

static void BM_CounterAddContended(benchmark::State& state) {
  // All workers increment ONE counter in a tight parallel loop: the
  // per-worker shards keep this near the uncontended cost instead of a
  // cache-line ping-pong.
  obs::counter c;
  const size_t per_round = 1 << 14;
  for (auto _ : state) {
    parallel_for(0, per_round, [&](size_t) { c.add(1); }, 1);
  }
  benchmark::DoNotOptimize(c.value());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(per_round));
}
BENCHMARK(BM_CounterAddContended);

// End-to-end replay with the instrumentation live. Compare this series
// against a BDC_TELEMETRY=OFF build of the same benchmark (CI builds
// both; the warnings job compiles the OFF configuration) — the delta is
// the whole-pipeline telemetry cost the 5% acceptance bar refers to.
static void BM_ReplayMixed(benchmark::State& state) {
  const vertex_id n = 1 << 12;
  auto graph = gen_erdos_renyi(n, 4 * n, 11);
  auto stream = make_deletion_stream(graph, n, 512, 256, 128, 3);
  size_t edges_per_replay = 0;
  for (const auto& b : stream) edges_per_replay += b.edges.size();
  for (auto _ : state) {
    batch_dynamic_connectivity s(n, {});
    for (const auto& b : stream) {
      switch (b.op) {
        case update_batch::kind::insert:
          s.batch_insert(b.edges);
          break;
        case update_batch::kind::erase:
          s.batch_delete(b.edges);
          break;
        case update_batch::kind::query: {
          auto ans = s.batch_connected(b.queries);
          benchmark::DoNotOptimize(ans);
          break;
        }
      }
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(edges_per_replay));
}
BENCHMARK(BM_ReplayMixed)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
