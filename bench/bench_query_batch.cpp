// E2 — Theorem 3: a batch of k connectivity queries costs
// O(k lg(1 + n/k)) expected work and O(lg n) depth. Per-query time should
// fall as k grows at fixed n.
#include <benchmark/benchmark.h>

#include "core/batch_connectivity.hpp"
#include "gen/graph_gen.hpp"
#include "gen/update_stream.hpp"

using namespace bdc;

namespace {

constexpr vertex_id kN = 1 << 15;

batch_dynamic_connectivity& shared_graph() {
  static batch_dynamic_connectivity* dc = [] {
    auto* p = new batch_dynamic_connectivity(kN);
    p->batch_insert(gen_erdos_renyi(kN, 2 * kN, 21));
    return p;
  }();
  return *dc;
}

}  // namespace

static void BM_BatchConnected(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  auto& dc = shared_graph();
  auto qs = make_query_batch(kN, k, 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dc.batch_connected(qs));
  }
  state.SetItemsProcessed(static_cast<int64_t>(k) * state.iterations());
}
BENCHMARK(BM_BatchConnected)
    ->Arg(1)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(65536);

static void BM_SingleConnected(benchmark::State& state) {
  auto& dc = shared_graph();
  bdc::random r(23);
  uint64_t i = 0;
  for (auto _ : state) {
    vertex_id u = static_cast<vertex_id>(r.ith_rand(i++, kN));
    vertex_id v = static_cast<vertex_id>(r.ith_rand(i++, kN));
    benchmark::DoNotOptimize(dc.connected(u, v));
  }
}
BENCHMARK(BM_SingleConnected);

static void BM_Components(benchmark::State& state) {
  auto& dc = shared_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dc.components());
  }
  state.SetItemsProcessed(static_cast<int64_t>(kN) * state.iterations());
}
BENCHMARK(BM_Components);

BENCHMARK_MAIN();
