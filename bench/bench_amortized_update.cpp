// E5 — Theorems 6 & 8: O(lg^2 n) expected amortized work per edge update.
// Measures per-edge amortized time of a full insert-everything /
// delete-everything lifecycle as n grows; the series should grow
// polylogarithmically (roughly quadrupling lg-squared shape), not linearly.
// The sequential HDT baseline is run on the same stream for reference.
#include "bench_common.hpp"
#include "core/batch_connectivity.hpp"
#include "gen/graph_gen.hpp"
#include "gen/update_stream.hpp"
#include "hdt/hdt_connectivity.hpp"

using namespace bdc;

int main() {
  bench::print_header(
      "E5 bench_amortized_update",
      "amortized cost per edge update is O(lg^2 n): the us/edge column "
      "should grow ~ (lg n)^2, i.e. slowly, with n");
  bench::print_row({"structure", "n", "m", "batch", "total_sec",
                    "us_per_edge"});
  for (int logn : {10, 12, 14}) {
    const vertex_id n = vertex_id{1} << logn;
    const size_t m = 4 * static_cast<size_t>(n);
    const size_t batch = 1024;
    auto graph = gen_erdos_renyi(n, m, 10 + logn);
    auto stream = make_deletion_stream(graph, n, batch, batch, 0, 20 + logn);

    {
      batch_dynamic_connectivity dc(n);
      timer t;
      for (const auto& b : stream) {
        if (b.op == update_batch::kind::insert) dc.batch_insert(b.edges);
        if (b.op == update_batch::kind::erase) dc.batch_delete(b.edges);
      }
      double sec = t.elapsed();
      bench::print_row({"parallel", std::to_string(n), std::to_string(m),
                        std::to_string(batch), bench::fmt(sec),
                        bench::fmt(sec / (2.0 * m) * 1e6, "%.2f")});
    }
    {
      hdt_connectivity hdt(n);
      timer t;
      for (const auto& b : stream) {
        if (b.op == update_batch::kind::insert) hdt.batch_insert(b.edges);
        if (b.op == update_batch::kind::erase) hdt.batch_delete(b.edges);
      }
      double sec = t.elapsed();
      bench::print_row({"hdt", std::to_string(n), std::to_string(m),
                        std::to_string(batch), bench::fmt(sec),
                        bench::fmt(sec / (2.0 * m) * 1e6, "%.2f")});
    }
  }
  return 0;
}
