// E7 — §1 motivation: per-epoch cost of a batch-dynamic structure is
// O(k polylog n), independent of the total edge count m, while recompute-
// from-scratch pays O(m + n) per queried epoch. The decisive shape is the
// m-sweep at fixed batch size: static cost per epoch grows linearly with
// m, dynamic cost stays flat, so for any fixed batch size a large enough
// graph puts the dynamic structure ahead (the paper's asymptotic claim).
// A batch-size sweep at fixed m locates the crossover on this machine.
#include "bench_common.hpp"
#include "baselines/static_connectivity.hpp"
#include "core/batch_connectivity.hpp"
#include "gen/graph_gen.hpp"
#include "gen/update_stream.hpp"

using namespace bdc;

namespace {

/// Builds the graph, then measures `epochs` delete-batch+query epochs.
template <typename S>
double measure_epochs(S& s, const std::vector<edge>& graph, vertex_id n,
                      size_t batch, size_t epochs) {
  s.batch_insert(graph);
  auto qs = make_query_batch(n, 64, 99);
  (void)s.batch_connected(qs);  // settle initial state
  timer t;
  size_t done = 0;
  for (size_t lo = 0; lo + batch <= graph.size() && done < epochs;
       lo += batch, ++done) {
    s.batch_delete(
        std::span<const edge>(graph.data() + lo, batch));
    (void)s.batch_connected(qs);  // forces the static baseline to refresh
  }
  return t.elapsed() / static_cast<double>(done) * 1e3;  // ms/epoch
}

}  // namespace

int main() {
  bench::print_header(
      "E7 bench_vs_static",
      "static recompute pays O(m+n) per queried epoch (grows with m); "
      "dynamic pays O(k polylog n) (flat in m)");
  bench::print_row({"structure", "n", "m", "batch", "ms_per_epoch"});

  // m-sweep at fixed batch: the shape that decides the asymptotics.
  const vertex_id n = 1 << 14;
  const size_t batch = 256, epochs = 16;
  for (size_t m : {size_t{1} << 14, size_t{1} << 16, size_t{1} << 18}) {
    auto graph = gen_erdos_renyi(n, m, 5 + m);
    {
      batch_dynamic_connectivity dc(n);
      double ms = measure_epochs(dc, graph, n, batch, epochs);
      bench::print_row({"dynamic", std::to_string(n), std::to_string(m),
                        std::to_string(batch), bench::fmt(ms, "%.3f")});
    }
    {
      static_recompute_connectivity sc(n);
      double ms = measure_epochs(sc, graph, n, batch, epochs);
      bench::print_row({"static", std::to_string(n), std::to_string(m),
                        std::to_string(batch), bench::fmt(ms, "%.3f")});
    }
  }

  // Batch sweep at fixed m: locates this machine's crossover.
  const size_t m_fixed = size_t{1} << 16;
  auto graph = gen_erdos_renyi(n, m_fixed, 6);
  for (size_t b : {16u, 256u, 4096u}) {
    {
      batch_dynamic_connectivity dc(n);
      double ms = measure_epochs(dc, graph, n, b, epochs);
      bench::print_row({"dynamic", std::to_string(n),
                        std::to_string(m_fixed), std::to_string(b),
                        bench::fmt(ms, "%.3f")});
    }
    {
      static_recompute_connectivity sc(n);
      double ms = measure_epochs(sc, graph, n, b, epochs);
      bench::print_row({"static", std::to_string(n),
                        std::to_string(m_fixed), std::to_string(b),
                        bench::fmt(ms, "%.3f")});
    }
  }
  return 0;
}
