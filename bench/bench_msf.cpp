// E12 — §6 extension: batch-incremental minimum spanning forest via
// path-maximum exchanges on link-cut trees. Two shapes to verify:
// (a) per-edge insertion cost is O(lg n)-ish — flat-ish as m grows;
// (b) maintaining the MSF incrementally beats recomputing Kruskal from
//     scratch per batch once batches are small relative to m.
#include <algorithm>
#include <numeric>

#include "bench_common.hpp"
#include "gen/graph_gen.hpp"
#include "gen/update_stream.hpp"
#include "msf/incremental_msf.hpp"
#include "spanning/union_find.hpp"
#include "util/random.hpp"

using namespace bdc;

namespace {

std::vector<weighted_edge> weighted(const std::vector<edge>& es,
                                    uint64_t seed) {
  bdc::random r(seed);
  std::vector<weighted_edge> out(es.size());
  for (size_t i = 0; i < es.size(); ++i)
    out[i] = {es[i], 1 + r.ith_rand(i, 1'000'000)};
  return out;
}

uint64_t kruskal(vertex_id n, std::vector<weighted_edge> es) {
  std::sort(es.begin(), es.end(),
            [](const weighted_edge& a, const weighted_edge& b) {
              return a.weight < b.weight;
            });
  union_find uf(n);
  uint64_t total = 0;
  for (auto& we : es)
    if (uf.unite(we.e.u, we.e.v)) total += we.weight;
  return total;
}

}  // namespace

int main() {
  bench::print_header(
      "E12 bench_msf",
      "incremental MSF (LCT path-max exchange) sustains O(lg n) per edge "
      "and beats per-batch Kruskal recompute for small batches");
  bench::print_row({"approach", "n", "m", "batch", "total_sec",
                    "us_per_edge", "msf_weight"});
  const vertex_id n = 1 << 13;
  const size_t m = 6 * static_cast<size_t>(n);
  auto graph = weighted(gen_erdos_renyi(n, m, 13), 14);

  for (size_t batch : {64u, 1024u, 16384u}) {
    // Incremental structure.
    {
      incremental_msf msf(n);
      timer t;
      for (size_t lo = 0; lo < graph.size(); lo += batch) {
        size_t hi = std::min(graph.size(), lo + batch);
        msf.batch_insert(std::span<const weighted_edge>(graph.data() + lo,
                                                        hi - lo));
      }
      double sec = t.elapsed();
      bench::print_row({"incremental_msf", std::to_string(n),
                        std::to_string(m), std::to_string(batch),
                        bench::fmt(sec),
                        bench::fmt(sec / static_cast<double>(m) * 1e6,
                                   "%.2f"),
                        std::to_string(msf.msf_weight())});
    }
    // Kruskal-from-scratch after every batch (the static comparator).
    {
      std::vector<weighted_edge> live;
      timer t;
      uint64_t w = 0;
      for (size_t lo = 0; lo < graph.size(); lo += batch) {
        size_t hi = std::min(graph.size(), lo + batch);
        live.insert(live.end(), graph.begin() + static_cast<ptrdiff_t>(lo),
                    graph.begin() + static_cast<ptrdiff_t>(hi));
        w = kruskal(n, live);
      }
      double sec = t.elapsed();
      bench::print_row({"kruskal_recompute", std::to_string(n),
                        std::to_string(m), std::to_string(batch),
                        bench::fmt(sec),
                        bench::fmt(sec / static_cast<double>(m) * 1e6,
                                   "%.2f"),
                        std::to_string(w)});
    }
  }
  return 0;
}
