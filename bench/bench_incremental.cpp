// E11 — insertion-only comparison against the restricted-setting baseline
// (incremental union-find after Simsiri et al. [57], paper §1): on
// insert-only streams the specialized structure is far cheaper; the fully
// dynamic structure pays its polylog overhead for deletion capability it
// is not using here.
#include "bench_common.hpp"
#include "baselines/incremental_connectivity.hpp"
#include "baselines/static_connectivity.hpp"
#include "core/batch_connectivity.hpp"
#include "gen/graph_gen.hpp"
#include "gen/update_stream.hpp"

using namespace bdc;

int main() {
  bench::print_header(
      "E11 bench_incremental",
      "on insert-only streams the incremental union-find baseline wins; "
      "the fully dynamic structure pays polylog overhead");
  bench::print_row(
      {"structure", "n", "m", "batch", "total_sec", "us_per_edge"});
  const vertex_id n = 1 << 15;
  const size_t m = 6 * static_cast<size_t>(n);
  auto graph = gen_erdos_renyi(n, m, 11);

  for (size_t batch : {256u, 4096u}) {
    auto stream = make_insertion_stream(graph, batch, 12);
    {
      incremental_connectivity inc(n);
      timer t;
      for (const auto& b : stream) inc.batch_insert(b.edges);
      double sec = t.elapsed();
      bench::print_row({"incremental_uf", std::to_string(n),
                        std::to_string(m), std::to_string(batch),
                        bench::fmt(sec),
                        bench::fmt(sec / static_cast<double>(m) * 1e6,
                                   "%.3f")});
    }
    {
      batch_dynamic_connectivity dc(n);
      timer t;
      for (const auto& b : stream) dc.batch_insert(b.edges);
      double sec = t.elapsed();
      bench::print_row({"batch_dynamic", std::to_string(n),
                        std::to_string(m), std::to_string(batch),
                        bench::fmt(sec),
                        bench::fmt(sec / static_cast<double>(m) * 1e6,
                                   "%.3f")});
    }
  }
  return 0;
}
