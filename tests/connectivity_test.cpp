// Core batch-dynamic connectivity tests: unit behaviours, edge cases, and
// structured-graph scenarios, with full invariant validation after every
// mutation. The whole suite is value-parameterized over the shared
// substrate-config table (tests/test_substrates.hpp): every uniform
// Euler-tour backend plus the mixed per-level policy, each under both the
// devirtualized variant fast path and the virtual-bridge dispatch mode.
// Randomized cross-engine property tests live in
// connectivity_property_test.cpp.
#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "core/batch_connectivity.hpp"
#include "gen/graph_gen.hpp"
#include "test_substrates.hpp"

namespace bdc {
namespace {

using ::bdc::testing::kSubConfigs;
using ::bdc::testing::sub_config;

void expect_healthy(const batch_dynamic_connectivity& dc,
                    const char* where) {
  auto rep = dc.check_invariants();
  ASSERT_TRUE(rep.ok) << where << ": " << rep.message;
}

class Connectivity : public ::testing::TestWithParam<sub_config> {
 protected:
  [[nodiscard]] options opts(
      level_search_kind k = level_search_kind::interleaved) const {
    options o;
    o.search = k;
    return GetParam().apply(o);
  }
};

std::string config_name(const ::testing::TestParamInfo<sub_config>& info) {
  return info.param.name;
}

TEST_P(Connectivity, EmptyGraph) {
  batch_dynamic_connectivity dc(5, opts());
  EXPECT_EQ(dc.num_vertices(), 5u);
  EXPECT_EQ(dc.num_edges(), 0u);
  EXPECT_FALSE(dc.connected(0, 4));
  EXPECT_TRUE(dc.connected(2, 2));
  EXPECT_EQ(dc.component_size(3), 1u);
  auto labels = dc.components();
  for (vertex_id v = 0; v < 5; ++v) EXPECT_EQ(labels[v], v);
  expect_healthy(dc, "empty");
}

TEST_P(Connectivity, TinyGraphs) {
  batch_dynamic_connectivity one(1, opts());
  EXPECT_TRUE(one.connected(0, 0));
  expect_healthy(one, "n=1");

  batch_dynamic_connectivity two(2, opts());
  two.insert({0, 1});
  EXPECT_TRUE(two.connected(0, 1));
  two.erase({0, 1});
  EXPECT_FALSE(two.connected(0, 1));
  expect_healthy(two, "n=2");
}

TEST_P(Connectivity, InsertSanitization) {
  batch_dynamic_connectivity dc(10, opts());
  std::vector<edge> batch = {{1, 2}, {2, 1}, {1, 2}, {3, 3}, {4, 5}};
  dc.batch_insert(batch);
  EXPECT_EQ(dc.num_edges(), 2u);  // (1,2) once, (4,5); self-loop dropped
  EXPECT_TRUE(dc.has_edge({2, 1}));
  EXPECT_FALSE(dc.has_edge({3, 3}));
  dc.batch_insert(batch);  // all already present / invalid
  EXPECT_EQ(dc.num_edges(), 2u);
  expect_healthy(dc, "sanitize");
}

TEST_P(Connectivity, DeleteSanitization) {
  batch_dynamic_connectivity dc(10, opts());
  dc.insert({1, 2});
  std::vector<edge> del = {{2, 1}, {1, 2}, {7, 8}, {9, 9}};
  dc.batch_delete(del);
  EXPECT_EQ(dc.num_edges(), 0u);
  EXPECT_FALSE(dc.connected(1, 2));
  expect_healthy(dc, "delete-sanitize");
}

TEST_P(Connectivity, TriangleReplacement) {
  batch_dynamic_connectivity dc(3, opts());
  dc.batch_insert(std::vector<edge>{{0, 1}, {1, 2}, {0, 2}});
  dc.erase({0, 1});
  EXPECT_TRUE(dc.connected(0, 1));
  EXPECT_EQ(dc.num_edges(), 2u);
  expect_healthy(dc, "triangle");
  dc.erase({0, 2});
  EXPECT_FALSE(dc.connected(0, 1));
  EXPECT_TRUE(dc.connected(1, 2));
  expect_healthy(dc, "triangle-2");
}

TEST_P(Connectivity, BatchShattersComponent) {
  // A star: deleting all spokes in one batch creates n pieces.
  const vertex_id n = 64;
  batch_dynamic_connectivity dc(n, opts());
  dc.batch_insert(gen_star(n));
  EXPECT_EQ(dc.component_size(0), n);
  std::vector<edge> all;
  for (vertex_id i = 1; i < n; ++i) all.push_back({0, i});
  dc.batch_delete(all);
  for (vertex_id i = 1; i < n; ++i) EXPECT_FALSE(dc.connected(0, i));
  EXPECT_EQ(dc.num_edges(), 0u);
  expect_healthy(dc, "shatter");
}

TEST_P(Connectivity, GridRowDeletion) {
  const vertex_id rows = 8, cols = 8;
  batch_dynamic_connectivity dc(rows * cols, opts());
  dc.batch_insert(gen_grid(rows, cols));
  expect_healthy(dc, "grid-build");
  // Sever the grid between rows 3 and 4 in one batch.
  std::vector<edge> cut;
  for (vertex_id c = 0; c < cols; ++c)
    cut.push_back({3 * cols + c, 4 * cols + c});
  dc.batch_delete(cut);
  EXPECT_FALSE(dc.connected(0, rows * cols - 1));
  EXPECT_TRUE(dc.connected(0, 3 * cols + 7));
  EXPECT_TRUE(dc.connected(4 * cols, rows * cols - 1));
  EXPECT_EQ(dc.component_size(0), 4u * cols);
  expect_healthy(dc, "grid-cut");
}

TEST_P(Connectivity, MixedTreeAndNonTreeDeletion) {
  batch_dynamic_connectivity dc(6, opts());
  dc.batch_insert(
      std::vector<edge>{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {3, 4}, {4, 5}});
  // Delete a mix: non-tree (0,3)-or-tree plus a bridge (4,5).
  dc.batch_delete(std::vector<edge>{{0, 3}, {4, 5}});
  EXPECT_TRUE(dc.connected(0, 3));
  EXPECT_FALSE(dc.connected(0, 5));
  expect_healthy(dc, "mixed");
}

TEST_P(Connectivity, ReinsertAfterDelete) {
  batch_dynamic_connectivity dc(8, opts());
  for (int round = 0; round < 30; ++round) {
    dc.batch_insert(gen_path(8));
    ASSERT_TRUE(dc.connected(0, 7));
    dc.batch_delete(gen_path(8));
    ASSERT_FALSE(dc.connected(0, 7));
  }
  expect_healthy(dc, "reinsert");
}

TEST_P(Connectivity, ComponentsLabeling) {
  batch_dynamic_connectivity dc(9, opts());
  dc.batch_insert(std::vector<edge>{{0, 1}, {1, 2}, {4, 5}, {7, 8}});
  auto labels = dc.components();
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[1], 0u);
  EXPECT_EQ(labels[2], 0u);
  EXPECT_EQ(labels[3], 3u);
  EXPECT_EQ(labels[4], 4u);
  EXPECT_EQ(labels[5], 4u);
  EXPECT_EQ(labels[6], 6u);
  EXPECT_EQ(labels[7], 7u);
  EXPECT_EQ(labels[8], 7u);
}

TEST_P(Connectivity, BatchQueries) {
  batch_dynamic_connectivity dc(6, opts());
  dc.batch_insert(std::vector<edge>{{0, 1}, {2, 3}});
  std::vector<std::pair<vertex_id, vertex_id>> qs = {
      {0, 1}, {1, 0}, {0, 2}, {2, 3}, {4, 5}, {5, 5}};
  auto ans = dc.batch_connected(qs);
  EXPECT_EQ(ans, (std::vector<bool>{true, true, false, true, false, true}));
}

TEST_P(Connectivity, StatsProgress) {
  batch_dynamic_connectivity dc(32, opts());
  auto es = gen_erdos_renyi(32, 120, 77);
  dc.batch_insert(es);
  EXPECT_EQ(dc.stats().edges_inserted, 120u);
  dc.batch_delete(es);
  EXPECT_EQ(dc.stats().edges_deleted, 120u);
  EXPECT_GT(dc.stats().tree_edges_deleted, 0u);
  EXPECT_GT(dc.stats().levels_searched, 0u);
  dc.reset_stats();
  EXPECT_EQ(dc.stats().edges_deleted, 0u);
}

TEST_P(Connectivity, HostileVertexIdsDoNotCrash) {
  // Regression (ISSUE 5): ids outside [0, n) — e.g. from a hand-edited
  // or truncated stream file — used to flow straight into batch_find_rep
  // and the substrates' per-vertex arrays. Every public entry point must
  // now give the documented answer instead of indexing out of bounds.
  const vertex_id n = 10;
  batch_dynamic_connectivity dc(n, opts());
  dc.batch_insert(std::vector<edge>{{0, 1}, {1, 2}, {3, 4}});

  // Updates: out-of-range edges are dropped, valid ones still land.
  std::vector<edge> hostile_ins = {{5, n},          {n, 5},
                                   {70000, 70001},  {kNoVertex, 0},
                                   {kNoVertex, kNoVertex}, {5, 6}};
  dc.batch_insert(hostile_ins);
  EXPECT_EQ(dc.num_edges(), 4u);
  EXPECT_TRUE(dc.has_edge({5, 6}));
  EXPECT_FALSE(dc.has_edge({5, n}));
  expect_healthy(dc, "hostile-insert");

  std::vector<edge> hostile_del = {{n, 5}, {70000, 70001}, {0, kNoVertex},
                                   {1, 2}};
  dc.batch_delete(hostile_del);
  EXPECT_EQ(dc.num_edges(), 3u);
  EXPECT_FALSE(dc.has_edge({1, 2}));
  expect_healthy(dc, "hostile-delete");

  // Queries: any out-of-range endpoint answers false / size 0.
  EXPECT_FALSE(dc.connected(0, n));
  EXPECT_FALSE(dc.connected(n, 0));
  EXPECT_FALSE(dc.connected(kNoVertex, kNoVertex));
  EXPECT_EQ(dc.component_size(n), 0u);
  EXPECT_EQ(dc.component_size(kNoVertex), 0u);
  std::vector<std::pair<vertex_id, vertex_id>> qs = {
      {0, 1}, {0, n}, {n, n}, {kNoVertex, 3}, {3, 4}, {70000, 2}};
  auto ans = dc.batch_connected(qs);
  EXPECT_EQ(ans,
            (std::vector<bool>{true, false, false, false, true, false}));

  // Single-edge conveniences route through the same validation.
  dc.insert({n + 3, n + 4});
  dc.erase({n + 3, n + 4});
  EXPECT_EQ(dc.num_edges(), 3u);
  expect_healthy(dc, "hostile-singles");
}

TEST_P(Connectivity, ZeroVertexStructure) {
  // n == 0: EVERY id is out of range, including the {0,0} probe the
  // batch query path remaps hostile queries onto (regression: this used
  // to index an empty per-vertex array).
  batch_dynamic_connectivity dc(0, opts());
  EXPECT_EQ(dc.num_vertices(), 0u);
  EXPECT_FALSE(dc.connected(0, 0));
  EXPECT_EQ(dc.component_size(0), 0u);
  std::vector<std::pair<vertex_id, vertex_id>> qs = {{0, 0}, {1, 2}};
  EXPECT_EQ(dc.batch_connected(qs), (std::vector<bool>{false, false}));
  dc.insert({0, 1});
  dc.erase({0, 1});
  EXPECT_EQ(dc.num_edges(), 0u);
  EXPECT_TRUE(dc.components().empty());
  expect_healthy(dc, "n=0");
}

INSTANTIATE_TEST_SUITE_P(Substrates, Connectivity,
                         ::testing::ValuesIn(kSubConfigs), config_name);

// ---------------------------------------------------------------------
// Configuration-label normalization (ISSUE 5 satellite): a policy whose
// low substrate equals the primary one is uniform, and neither the
// structure nor any label derived from it may claim otherwise.
// ---------------------------------------------------------------------

TEST(ConfigLabel, UniformPolicyIsNormalized) {
  options o;
  o.substrate = substrate::blocked;
  o.policy = level_policy{8, substrate::blocked};  // nominally "mixed"
  EXPECT_EQ(config_label(o), "blocked");
  batch_dynamic_connectivity dc(64, o);
  EXPECT_FALSE(dc.levels().policy().mixed());
  EXPECT_EQ(dc.levels().substrate_at(0), substrate::blocked);
}

TEST(ConfigLabel, GenuinelyMixedPolicyKeepsSuffix) {
  options o;
  o.substrate = substrate::skiplist;
  o.policy = level_policy{3, substrate::blocked};
  EXPECT_EQ(config_label(o), "skiplist+blocked<3");
  batch_dynamic_connectivity dc(64, o);
  EXPECT_TRUE(dc.levels().policy().mixed());
  EXPECT_EQ(dc.levels().substrate_at(0), substrate::blocked);
  EXPECT_EQ(dc.levels().substrate_at(dc.levels().top()),
            substrate::skiplist);
}

TEST(ConfigLabel, VirtualBridgeSuffixAndThresholdZero) {
  options o;
  o.substrate = substrate::treap;
  o.dispatch = dispatch::virtual_bridge;
  EXPECT_EQ(config_label(o), "treap!virtual");
  o.policy = level_policy{0, substrate::blocked};  // threshold 0 = uniform
  EXPECT_EQ(config_label(o), "treap!virtual");
}

class EngineSweep
    : public ::testing::TestWithParam<
          std::tuple<level_search_kind, sub_config>> {};

TEST_P(EngineSweep, DenseThenFullDeletion) {
  auto [engine, cfg] = GetParam();
  options o;
  o.search = engine;
  o = cfg.apply(o);
  const vertex_id n = 48;
  batch_dynamic_connectivity dc(n, o);
  auto es = gen_erdos_renyi(n, 400, 123);
  dc.batch_insert(es);
  EXPECT_TRUE(dc.connected(0, n - 1));
  expect_healthy(dc, "dense-build");
  // Delete everything in a few large batches.
  size_t third = es.size() / 3;
  dc.batch_delete(std::span<const edge>(es.data(), third));
  expect_healthy(dc, "dense-del-1");
  dc.batch_delete(std::span<const edge>(es.data() + third, third));
  expect_healthy(dc, "dense-del-2");
  dc.batch_delete(
      std::span<const edge>(es.data() + 2 * third, es.size() - 2 * third));
  expect_healthy(dc, "dense-del-3");
  EXPECT_EQ(dc.num_edges(), 0u);
  for (vertex_id v = 1; v < n; ++v) ASSERT_FALSE(dc.connected(0, v));
}

std::string engine_name(
    const ::testing::TestParamInfo<
        std::tuple<level_search_kind, sub_config>>& info) {
  level_search_kind engine = std::get<0>(info.param);
  const char* e = engine == level_search_kind::interleaved ? "interleaved"
                  : engine == level_search_kind::simple    ? "simple"
                                                           : "scanall";
  return std::string(e) + "_" + std::get<1>(info.param).name;
}

INSTANTIATE_TEST_SUITE_P(
    Engines, EngineSweep,
    ::testing::Combine(::testing::Values(level_search_kind::interleaved,
                                         level_search_kind::simple,
                                         level_search_kind::scan_all),
                       ::testing::ValuesIn(kSubConfigs)),
    engine_name);

}  // namespace
}  // namespace bdc
