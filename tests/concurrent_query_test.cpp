// Concurrent query serving, differential-checked (the TSan-targeted
// suite; ISSUE 6).
//
// Two layers are hammered with reader threads WHILE update batches run:
//
//   * blocked_ett directly — a test-owned seqlock version brackets each
//     batch_link/batch_cut exactly the way batch_dynamic_connectivity's
//     update_scope does, and readers probe connected_relaxed() and keep
//     only version-validated answers. Every kept answer must match the
//     union-find oracle of the exact committed batch count it claims.
//   * batch_dynamic_connectivity with options::concurrent_reads — readers
//     use the public snapshot_query() view (live + pinned paths) across
//     batch_insert/batch_delete, same oracle-agreement check, across
//     substrates (skiplist exercises the snapshot path, blocked the live
//     seqlock probe) and worker-pool sizes (a forced multi-worker pool
//     plus the hardware default).
//
// Iteration counts widen via BDC_CONC_ROUNDS / BDC_CONC_READERS (the TSan
// CI job raises them); defaults keep the suite quick for local runs.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/batch_connectivity.hpp"
#include "ett/blocked_ett.hpp"
#include "spanning/union_find.hpp"
#include "test_workers.hpp"
#include "util/epoch.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace bdc {
namespace {

size_t env_size(const char* name, size_t fallback) {
  if (const char* v = std::getenv(name)) {
    char* end = nullptr;
    unsigned long parsed = std::strtoul(v, &end, 10);
    if (end != v && *end == '\0' && parsed > 0) return parsed;
  }
  return fallback;
}

size_t conc_rounds() { return env_size("BDC_CONC_ROUNDS", 30); }
size_t conc_readers() { return env_size("BDC_CONC_READERS", 4); }

/// Min-vertex component labels of an edge-key set (the oracle).
std::vector<vertex_id> oracle_labels(
    vertex_id n, const std::unordered_set<uint64_t>& edges) {
  union_find uf(n);
  for (uint64_t key : edges) {
    edge e = edge_from_key(key);
    uf.unite(e.u, e.v);
  }
  std::vector<vertex_id> mins(n, kNoVertex);
  std::vector<vertex_id> labels(n);
  for (vertex_id v = 0; v < n; ++v) {
    uint32_t r = uf.find(v);
    if (mins[r] == kNoVertex) mins[r] = v;
  }
  for (vertex_id v = 0; v < n; ++v) labels[v] = mins[uf.find(v)];
  return labels;
}

struct served_record {
  vertex_id u, v;
  uint64_t state;
  bool ans;
};

void verify_records(const std::vector<std::vector<served_record>>& recs,
                    const std::vector<std::vector<vertex_id>>& states,
                    const char* what) {
  size_t checked = 0, bad = 0;
  for (const auto& buf : recs) {
    for (const served_record& r : buf) {
      ++checked;
      ASSERT_LT(r.state, states.size()) << what << ": state out of range";
      const auto& labels = states[r.state];
      bool expect = labels[r.u] == labels[r.v];
      if (expect != r.ans && bad++ < 5) {
        ADD_FAILURE() << what << ": (" << r.u << "," << r.v << ") at state "
                      << r.state << " answered " << r.ans << ", oracle says "
                      << expect;
      }
    }
  }
  EXPECT_EQ(bad, 0u) << what << ": " << bad << " of " << checked
                     << " concurrent answers disagreed with their oracle";
  EXPECT_GT(checked, 0u) << what << ": readers never ran";
}

// ---------------------------------------------------------------------
// Substrate level: blocked_ett's connected_relaxed under a seqlock
// ---------------------------------------------------------------------

class BlockedRelaxedReads : public ::testing::TestWithParam<unsigned> {};

TEST_P(BlockedRelaxedReads, SeqlockValidatedProbesMatchSomeBoundary) {
  testing::worker_pool_guard pool(GetParam());
  const vertex_id n = 256;
  const size_t rounds = conc_rounds();
  const size_t readers = conc_readers();

  epoch_manager em;
  blocked_ett ett(n, /*seed=*/0xc0ffee);
  ASSERT_TRUE(ett.supports_relaxed_reads());
  ett.bind_read_epochs(&em);

  // The seqlock the serving layer maintains, reproduced here so the raw
  // substrate can be driven without batch_dynamic_connectivity on top.
  std::atomic<uint64_t> version{0};  // odd while a batch is in flight
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> recorded{0};

  std::vector<std::vector<served_record>> recs(readers);
  std::vector<std::thread> pool_threads;
  pool_threads.reserve(readers);
  for (size_t t = 0; t < readers; ++t) {
    pool_threads.emplace_back([&, t] {
      random_stream rng(hash_combine(0xbead, t));
      auto& buf = recs[t];
      while (!stop.load(std::memory_order_acquire)) {
        auto guard = em.pin();
        uint64_t v1 = version.load(std::memory_order_acquire);
        if (v1 & 1) continue;  // batch in flight: no committed boundary
        auto u = static_cast<vertex_id>(rng.next(n));
        auto v = static_cast<vertex_id>(rng.next(n));
        std::optional<bool> ans = ett.connected_relaxed(u, v);
        ASSERT_TRUE(ans.has_value());
        if (version.load(std::memory_order_acquire) != v1)
          continue;  // overlapped a batch: discard, like the serving layer
        buf.push_back({u, v, v1 >> 1, *ans});
        recorded.fetch_add(1, std::memory_order_release);
      }
    });
  }

  // Writer: alternate acyclic link batches and cut batches, bracketing
  // each exactly like update_scope (odd version during the batch, epoch
  // advance + limbo drains after).
  std::unordered_set<uint64_t> edges;
  std::vector<std::vector<vertex_id>> states;
  states.push_back(oracle_labels(n, edges));
  random_stream rng(0x5e9);
  for (size_t r = 0; r < rounds; ++r) {
    std::vector<edge> batch;
    bool linking = (r % 2) == 0;
    if (linking) {
      // Acyclic batch of fresh cross-tree links (the batch_link contract).
      union_find uf(n);
      for (uint64_t key : edges) {
        edge e = edge_from_key(key);
        uf.unite(e.u, e.v);
      }
      for (int tries = 0; tries < 64; ++tries) {
        auto u = static_cast<vertex_id>(rng.next(n));
        auto v = static_cast<vertex_id>(rng.next(n));
        if (u == v || uf.connected(u, v)) continue;
        uf.unite(u, v);
        batch.push_back(edge{u, v}.canonical());
      }
    } else {
      // Cut a random subset of the present tree edges.
      for (uint64_t key : edges)
        if (rng.next(3) == 0) batch.push_back(edge_from_key(key));
      if (batch.empty() && !edges.empty())
        batch.push_back(edge_from_key(*edges.begin()));
    }

    em.begin_write();
    version.fetch_add(1, std::memory_order_acq_rel);  // -> odd
    if (!batch.empty()) {
      if (linking)
        ett.batch_link(batch);
      else
        ett.batch_cut(batch);
    }
    version.fetch_add(1, std::memory_order_release);  // -> even
    em.advance();
    em.end_write();
    ett.drain_limbo();

    for (const edge& e : batch) {
      if (linking)
        edges.insert(edge_key(e));
      else
        edges.erase(edge_key(e));
    }
    states.push_back(oracle_labels(n, edges));
  }
  // Batches done, version even and stable: every reader iteration now
  // validates. Don't stop them until each has recorded something, so the
  // check below cannot starve on a loaded machine.
  while (recorded.load(std::memory_order_acquire) < readers)
    std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (auto& th : pool_threads) th.join();

  verify_records(recs, states, "blocked_ett relaxed");
  EXPECT_TRUE(ett.check_consistency().empty());
  ett.drain_limbo();
  ett.bind_read_epochs(nullptr);
}

// Sparse-directory growth regression: every round links a path through a
// FRESH id region — installing new vertex-directory chunks under the
// readers' feet — and cuts the path two regions back, draining emptied
// chunks through the epoch limbo. Readers probe connected_relaxed across
// the WHOLE id space the entire time, so most probes hit inactive ids:
// the relaxed probe's slot lookup must miss cleanly (and validated
// answers must stay oracle-exact) no matter how the chunk table is
// growing or shrinking. Dense per-vertex arrays made this trivially
// race-free; this pins the property for the chunked directory under TSan.
TEST_P(BlockedRelaxedReads, ProbesStayValidAcrossDirectoryGrowth) {
  testing::worker_pool_guard pool(GetParam());
  const size_t rounds = conc_rounds();
  const size_t readers = conc_readers();
  // A region spans several 32-slot chunks of blocked_ett's directory.
  constexpr vertex_id kRegion = 96;
  const auto n = static_cast<vertex_id>((rounds + 1) * kRegion);

  epoch_manager em;
  blocked_ett ett(n, /*seed=*/0xd1e);
  ASSERT_TRUE(ett.supports_relaxed_reads());
  ett.bind_read_epochs(&em);

  std::atomic<uint64_t> version{0};  // odd while a batch is in flight
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> recorded{0};

  std::vector<std::vector<served_record>> recs(readers);
  std::vector<std::thread> pool_threads;
  pool_threads.reserve(readers);
  for (size_t t = 0; t < readers; ++t) {
    pool_threads.emplace_back([&, t] {
      random_stream rng(hash_combine(0x96e4, t));
      auto& buf = recs[t];
      while (!stop.load(std::memory_order_acquire)) {
        auto guard = em.pin();
        uint64_t v1 = version.load(std::memory_order_acquire);
        if (v1 & 1) continue;
        auto u = static_cast<vertex_id>(rng.next(n));
        auto v = static_cast<vertex_id>(rng.next(n));
        std::optional<bool> ans = ett.connected_relaxed(u, v);
        ASSERT_TRUE(ans.has_value());
        if (version.load(std::memory_order_acquire) != v1) continue;
        buf.push_back({u, v, v1 >> 1, *ans});
        recorded.fetch_add(1, std::memory_order_release);
      }
    });
  }

  std::unordered_set<uint64_t> edges;
  std::vector<std::vector<vertex_id>> states;
  states.push_back(oracle_labels(n, edges));
  for (size_t r = 0; r < rounds; ++r) {
    std::vector<edge> links;
    const auto base = static_cast<vertex_id>(r * kRegion);
    for (vertex_id i = 0; i + 1 < kRegion; ++i)
      links.push_back(edge{base + i, base + i + 1}.canonical());
    std::vector<edge> cuts;
    if (r >= 2) {
      const auto old = static_cast<vertex_id>((r - 2) * kRegion);
      for (vertex_id i = 0; i + 1 < kRegion; ++i)
        cuts.push_back(edge{old + i, old + i + 1}.canonical());
    }

    em.begin_write();
    version.fetch_add(1, std::memory_order_acq_rel);  // -> odd
    ett.batch_link(links);
    if (!cuts.empty()) ett.batch_cut(cuts);
    version.fetch_add(1, std::memory_order_release);  // -> even
    em.advance();
    em.end_write();
    ett.drain_limbo();

    for (const edge& e : links) edges.insert(edge_key(e));
    for (const edge& e : cuts) edges.erase(edge_key(e));
    states.push_back(oracle_labels(n, edges));
  }
  while (recorded.load(std::memory_order_acquire) < readers)
    std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (auto& th : pool_threads) th.join();

  verify_records(recs, states, "blocked_ett directory growth");
  EXPECT_TRUE(ett.check_consistency().empty());
  // Only the two newest regions are still linked; everything older was
  // deactivated and its chunks reclaimed.
  EXPECT_LE(ett.active_vertices(), 2u * kRegion);
  ett.drain_limbo();
  ett.bind_read_epochs(nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    Workers, BlockedRelaxedReads, ::testing::Values(2u, 0u),
    [](const ::testing::TestParamInfo<unsigned>& info) {
      return testing::workers_name(info.param);
    });

// ---------------------------------------------------------------------
// Structure level: snapshot_query() across update batches
// ---------------------------------------------------------------------

using ServeParam = std::tuple<substrate, unsigned>;

class ConcurrentServe : public ::testing::TestWithParam<ServeParam> {};

TEST_P(ConcurrentServe, ViewsAgreeWithTheirCommittedOracle) {
  auto [sub, workers] = GetParam();
  testing::worker_pool_guard pool(workers);
  const vertex_id n = 256;
  const size_t rounds = conc_rounds();
  const size_t readers = conc_readers();

  options o;
  o.substrate = sub;
  o.concurrent_reads = true;
  batch_dynamic_connectivity s(n, o);
  ASSERT_TRUE(s.serving());
  ASSERT_NE(s.read_epochs(), nullptr);
  EXPECT_EQ(s.committed_version(), 0u);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> recorded{0};
  std::vector<std::vector<served_record>> recs(readers);
  std::vector<std::thread> pool_threads;
  pool_threads.reserve(readers);
  for (size_t t = 0; t < readers; ++t) {
    pool_threads.emplace_back([&, t] {
      random_stream rng(hash_combine(0xfeed, t));
      auto& buf = recs[t];
      uint64_t count = 0;
      while (!stop.load(std::memory_order_acquire)) {
        auto view = s.snapshot_query();
        auto u = static_cast<vertex_id>(rng.next(n));
        auto v = static_cast<vertex_id>(rng.next(n));
        served_record r{u, v, 0, false};
        if ((count++ & 7) == 0) {
          r.state = view.version();
          r.ans = view.connected_pinned(u, v);
          // Frozen accessors must agree with each other.
          if (r.ans) {
            ASSERT_EQ(view.component_size(u), view.component_size(v));
          }
        } else {
          r.ans = view.connected(u, v, &r.state);
        }
        buf.push_back(r);
        recorded.fetch_add(1, std::memory_order_release);
      }
    });
  }

  std::unordered_set<uint64_t> edges;
  std::vector<std::vector<vertex_id>> states;
  states.push_back(oracle_labels(n, edges));
  random_stream rng(0xd1ce);
  for (size_t r = 0; r < rounds; ++r) {
    std::vector<edge> batch;
    bool inserting = rng.next(3) != 0;  // 2:1 insert:delete mix
    if (inserting) {
      for (int i = 0; i < 48; ++i) {
        auto u = static_cast<vertex_id>(rng.next(n));
        auto v = static_cast<vertex_id>(rng.next(n));
        batch.push_back({u, v});  // self-loops/dupes exercise sanitize
      }
      s.batch_insert(batch);
    } else {
      for (uint64_t key : edges)
        if (rng.next(2) == 0) batch.push_back(edge_from_key(key));
      s.batch_delete(batch);
    }
    for (const edge& raw : batch) {
      edge c = raw.canonical();
      if (c.is_self_loop() || c.v >= n) continue;
      if (inserting)
        edges.insert(edge_key(c));
      else
        edges.erase(edge_key(c));
    }
    states.push_back(oracle_labels(n, edges));
    ASSERT_EQ(s.committed_version(), states.size() - 1);
  }
  // Keep serving until every reader recorded at least one answer (the
  // structure is static now, so each iteration records).
  while (recorded.load(std::memory_order_acquire) < readers)
    std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (auto& th : pool_threads) th.join();

  verify_records(recs, states, "snapshot_query");
  auto rep = s.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.message;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConcurrentServe,
    ::testing::Combine(::testing::Values(substrate::skiplist,
                                         substrate::blocked),
                       ::testing::Values(2u, 0u)),
    [](const ::testing::TestParamInfo<ServeParam>& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             testing::workers_name(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Pinned views stay frozen; epochs gate node recycling
// ---------------------------------------------------------------------

TEST(SnapshotView, PinnedViewIsStableAcrossLaterBatches) {
  const vertex_id n = 64;
  options o;
  o.substrate = substrate::blocked;
  o.concurrent_reads = true;
  batch_dynamic_connectivity s(n, o);
  std::vector<edge> chain;
  for (vertex_id v = 0; v + 1 < n / 2; ++v) chain.push_back({v, v + 1});
  s.batch_insert(chain);

  auto view = s.snapshot_query();
  const uint64_t pinned_version = view.version();
  EXPECT_EQ(pinned_version, 1u);
  std::vector<vertex_id> labels_before = view.components();
  EXPECT_TRUE(view.connected_pinned(0, n / 2 - 1));
  EXPECT_FALSE(view.connected_pinned(0, n - 1));
  EXPECT_EQ(view.component_size(0), n / 2);

  // Mutate heavily: cut the chain apart and build a different graph.
  s.batch_delete(chain);
  std::vector<edge> star;
  for (vertex_id v = 1; v < n; ++v) star.push_back({0, v});
  s.batch_insert(star);

  // The frozen surface answers exactly as before...
  EXPECT_EQ(view.version(), pinned_version);
  EXPECT_TRUE(view.connected_pinned(0, n / 2 - 1));
  EXPECT_FALSE(view.connected_pinned(0, n - 1));
  EXPECT_EQ(view.component_size(0), n / 2);
  EXPECT_EQ(labels_before, view.components());
  // ...while the freshest-committed surface has moved on.
  uint64_t state = 0;
  EXPECT_TRUE(view.connected(0, n - 1, &state));
  EXPECT_EQ(state, 3u);
  EXPECT_EQ(s.committed_version(), 3u);
}

// TSan-targeted (ISSUE 7): reader threads pin views and repeatedly
// re-materialize components() WHILE the writer churns batches. Each
// publish clones the label-table chunks the batch touched out from under
// the pinned views; a clone that mutated a still-shared chunk — or any
// unsynchronized access in the copy-on-write path — shows up either as a
// label mismatch here or as a TSan race in the CI sanitizer job.
TEST(SnapshotView, PinnedViewsStayFrozenUnderConcurrentChurn) {
  const vertex_id n = 512;
  const size_t rounds = conc_rounds();
  const size_t readers = conc_readers();
  options o;
  o.substrate = substrate::blocked;
  o.concurrent_reads = true;
  batch_dynamic_connectivity s(n, o);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> verified{0};
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> pool_threads;
  pool_threads.reserve(readers);
  for (size_t t = 0; t < readers; ++t) {
    pool_threads.emplace_back([&, t] {
      random_stream rng(hash_combine(0x9137, t));
      while (!stop.load(std::memory_order_acquire)) {
        auto view = s.snapshot_query();
        const uint64_t version = view.version();
        const std::vector<vertex_id> pinned = view.components();
        // Hold the pin across several writer commits and re-read: the
        // frozen surface must reproduce the exact same labels.
        for (int probe = 0; probe < 4; ++probe) {
          auto v = static_cast<vertex_id>(rng.next(n));
          if (view.components() != pinned ||
              view.version() != version ||
              view.connected_pinned(v, v) != (v < n)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          verified.fetch_add(1, std::memory_order_release);
          std::this_thread::yield();
        }
      }
    });
  }

  // Writer: churn edges concentrated in a narrow vertex range so every
  // publish rewrites labels inside chunks the pinned views reference.
  random_stream rng(0xc10e);
  std::vector<edge> present;
  for (size_t r = 0; r < rounds; ++r) {
    if (r % 2 == 0) {
      std::vector<edge> batch;
      for (int i = 0; i < 32; ++i) {
        auto u = static_cast<vertex_id>(rng.next(n));
        auto v = static_cast<vertex_id>(rng.next(n));
        batch.push_back({u, v});
      }
      s.batch_insert(batch);
      for (const edge& raw : batch) {
        edge c = raw.canonical();
        if (!c.is_self_loop() && c.v < n && s.has_edge(c))
          present.push_back(c);
      }
    } else {
      std::vector<edge> batch;
      for (int i = 0; i < 24 && !present.empty(); ++i) {
        size_t j = rng.next(present.size());
        batch.push_back(present[j]);
        present[j] = present.back();
        present.pop_back();
      }
      s.batch_delete(batch);
    }
  }
  while (verified.load(std::memory_order_acquire) < readers)
    std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (auto& th : pool_threads) th.join();

  EXPECT_EQ(mismatches.load(), 0u)
      << "a pinned snapshot view changed under concurrent publishes";
  EXPECT_GT(verified.load(), 0u);
  auto rep = s.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.message;
}

TEST(SnapshotView, EpochLimboDefersNodeRecycling) {
  const vertex_id n = 128;
  options o;
  o.substrate = substrate::blocked;
  o.concurrent_reads = true;
  batch_dynamic_connectivity s(n, o);
  std::vector<edge> chain;
  for (vertex_id v = 0; v + 1 < n; ++v) chain.push_back({v, v + 1});
  s.batch_insert(chain);

  {
    auto view = s.snapshot_query();
    // Deleting the chain frees tour memory the pinned view might still
    // probe: it must park in limbo, not recycle.
    s.batch_delete(chain);
    EXPECT_GT(s.pool_stats().limbo, 0u);
    EXPECT_TRUE(view.connected_pinned(0, n - 1));  // frozen answer
  }
  // View gone: the next batch boundary drains the limbo.
  s.batch_insert({});
  EXPECT_EQ(s.pool_stats().limbo, 0u);
}

TEST(SnapshotView, ServingDisabledByDefault) {
  batch_dynamic_connectivity s(16);
  EXPECT_FALSE(s.serving());
  EXPECT_EQ(s.read_epochs(), nullptr);
  EXPECT_EQ(config_label({}), "skiplist");
  options o;
  o.concurrent_reads = true;
  EXPECT_EQ(config_label(o), "skiplist+serve");
}

}  // namespace
}  // namespace bdc
