// Incremental snapshot publishing (ISSUE 7): the read service's
// publish_snapshot() relabels only the components a batch touched,
// sharing untouched chunks of the copy-on-write label/size table between
// versions. These suites pin down the contract from the outside:
//
//   * Differential: after EVERY committed batch, the published snapshot's
//     labels must equal a from-scratch components() walk — across all
//     substrate/dispatch configs and both publish modes. This is the
//     direct check that the touched-seed collection (endpoints of every
//     top-forest link/cut) reaches every component whose membership
//     changed.
//   * Sizes are maintained incrementally (no O(n) counting pass); they
//     are asserted independently against a recount of the scratch walk.
//   * Chunk-boundary writes, pinned-view freezing under chunk cloning,
//     and the automatic full-walk fallback for shatter-everything batches
//     each get a dedicated case.
//
// substrate_fuzz_test's BdcDifferential repeats the per-batch label check
// inside the randomized oracle sweep; this suite is the deterministic,
// always-on half.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/batch_connectivity.hpp"
#include "test_substrates.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace bdc {
namespace {

using ::bdc::testing::kSubConfigs;
using ::bdc::testing::sub_config;

/// Asserts the published snapshot agrees with a from-scratch walk:
/// labels, per-vertex component sizes (recounted independently), and the
/// committed version.
void expect_snapshot_fresh(batch_dynamic_connectivity& dc,
                           uint64_t expected_version,
                           const std::string& what) {
  auto view = dc.snapshot_query();
  EXPECT_EQ(view.version(), expected_version) << what;
  std::vector<vertex_id> snap = view.components();
  std::vector<vertex_id> scratch = dc.components();
  ASSERT_EQ(snap, scratch) << what;
  std::unordered_map<vertex_id, uint32_t> counts;
  for (vertex_id l : scratch) counts[l]++;
  for (vertex_id v = 0; v < static_cast<vertex_id>(scratch.size()); ++v) {
    ASSERT_EQ(view.component_size(v), counts[scratch[v]])
        << what << " size of vertex " << v;
  }
}

class SnapshotPublish
    : public ::testing::TestWithParam<std::tuple<sub_config, publish_mode>> {
};

// The core differential: a randomized insert/delete stream; after every
// batch the incremental (or full) snapshot must match a from-scratch
// components() walk, labels and sizes both.
TEST_P(SnapshotPublish, MatchesFromScratchAfterEveryBatch) {
  const auto& [sc, pub] = GetParam();
  const vertex_id n = 600;
  options o = sc.apply({});
  o.concurrent_reads = true;
  o.publish = pub;
  batch_dynamic_connectivity dc(n, o);
  expect_snapshot_fresh(dc, 0, "construction");

  random_stream rng(hash_combine(0x5eed, std::hash<std::string>{}(sc.name)));
  std::vector<edge> pool;  // edges currently present
  uint64_t version = 0;
  for (int round = 0; round < 30; ++round) {
    if (round % 3 != 2) {
      std::vector<edge> batch;
      for (int i = 0; i < 40; ++i) {
        vertex_id u = static_cast<vertex_id>(rng.next(n));
        vertex_id v = static_cast<vertex_id>(rng.next(n));
        if (u != v) batch.push_back(edge{u, v}.canonical());
      }
      dc.batch_insert(batch);
      for (const edge& e : batch)
        if (dc.has_edge(e)) pool.push_back(e);
      std::sort(pool.begin(), pool.end());
      pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
    } else {
      std::vector<edge> batch;
      for (int i = 0; i < 30 && !pool.empty(); ++i) {
        size_t j = rng.next(pool.size());
        batch.push_back(pool[j]);
        pool[j] = pool.back();
        pool.pop_back();
      }
      dc.batch_delete(batch);
    }
    ++version;
    expect_snapshot_fresh(dc, version,
                          std::string(sc.name) + " round " +
                              std::to_string(round));
  }
  auto rep = dc.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.message;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SnapshotPublish,
    ::testing::Combine(::testing::ValuesIn(kSubConfigs),
                       ::testing::Values(publish_mode::incremental,
                                         publish_mode::full)),
    [](const ::testing::TestParamInfo<SnapshotPublish::ParamType>& info) {
      return std::string(std::get<0>(info.param).name) + "_" +
             to_string(std::get<1>(info.param));
    });

// Writes that straddle label-table chunk boundaries (4096 entries per
// chunk): components spanning two chunks must relabel on both sides, and
// the untouched tail chunk keeps its identity.
TEST(SnapshotPublishEdge, ChunkBoundaryWrites) {
  const vertex_id n = 2 * 4096 + 100;  // three chunks, last one partial
  options o;
  o.substrate = substrate::blocked;
  o.concurrent_reads = true;
  batch_dynamic_connectivity dc(n, o);

  // A path crossing the first chunk boundary: 4000 .. 4200.
  std::vector<edge> path;
  for (vertex_id v = 4000; v < 4200; ++v) path.push_back({v, v + 1});
  dc.batch_insert(path);
  expect_snapshot_fresh(dc, 1, "path across chunk 0/1 boundary");

  // Cut exactly at the boundary edge (4095, 4096): the two halves land in
  // different chunks.
  dc.batch_delete({{edge{4095, 4096}}});
  expect_snapshot_fresh(dc, 2, "cut at the chunk boundary");

  // A component wholly inside the last (partial) chunk.
  std::vector<edge> tail;
  for (vertex_id v = n - 50; v + 1 < n; ++v) tail.push_back({v, v + 1});
  dc.batch_insert(tail);
  expect_snapshot_fresh(dc, 3, "tail-chunk component");
}

// Pinned views must stay frozen while later batches clone chunks out
// from under them — the copy-on-write sharing is exactly what makes this
// free, and a clone that mutated a shared chunk would show up here.
TEST(SnapshotPublishEdge, PinnedViewsFrozenAcrossVersions) {
  const vertex_id n = 512;
  options o;
  o.substrate = substrate::blocked;
  o.concurrent_reads = true;
  batch_dynamic_connectivity dc(n, o);

  struct pinned {
    batch_dynamic_connectivity::snapshot_view view;
    std::vector<vertex_id> labels;
    uint64_t version;
  };
  std::vector<pinned> pins;
  auto pin = [&] {
    auto view = dc.snapshot_query();
    auto labels = view.components();
    uint64_t version = view.version();
    pins.push_back({std::move(view), std::move(labels), version});
  };

  std::vector<edge> chain;
  for (vertex_id v = 0; v + 1 < n; ++v) chain.push_back({v, v + 1});
  pin();
  dc.batch_insert(chain);
  pin();
  // Churn the same vertex range repeatedly: every batch rewrites labels
  // inside the chunk the pinned views still reference.
  for (int i = 0; i < 6; ++i) {
    dc.batch_delete({{chain[static_cast<size_t>(i) * 40]}});
    pin();
  }
  for (const auto& p : pins) {
    EXPECT_EQ(p.view.version(), p.version);
    EXPECT_EQ(p.view.components(), p.labels)
        << "pinned version " << p.version << " moved";
  }
}

// The incremental path must hand large-touch batches to the full walk
// (touched-component size estimate > n/4) and keep small-component
// churn incremental. The cost unit is the touched COMPONENT, not the
// edge: cutting one edge of a giant path relabels both halves, so the
// graph here is a sea of 16-vertex path clusters — the shape the
// incremental publisher is built for.
TEST(SnapshotPublishEdge, ShatterFallsBackToFullWalk) {
  const vertex_id n = 1024;
  constexpr vertex_id kCluster = 16;
  options o;
  o.substrate = substrate::blocked;
  o.concurrent_reads = true;
  batch_dynamic_connectivity dc(n, o);
  EXPECT_EQ(dc.stats().publishes_full, 1u);  // construction (forced)

  // Build every cluster in one batch: all n vertices touched -> full.
  std::vector<edge> sea;
  for (vertex_id v = 0; v + 1 < n; ++v)
    if ((v + 1) % kCluster != 0) sea.push_back({v, v + 1});
  dc.batch_insert(sea);
  EXPECT_EQ(dc.stats().publishes_full, 2u);

  // Nick two edges inside ONE cluster: touched components total at most
  // 16 vertices -> incremental, and exactly those vertices relabel.
  const uint64_t relabeled_before = dc.stats().publish_relabeled;
  dc.batch_delete({{edge{100, 101}, edge{101, 102}}});
  EXPECT_EQ(dc.stats().publishes_full, 2u);
  EXPECT_EQ(dc.stats().publish_relabeled, relabeled_before + kCluster);
  expect_snapshot_fresh(dc, 2, "incremental nick");

  // Shatter: delete every remaining edge in one batch -> every cluster
  // touched -> fallback.
  std::vector<edge> rest;
  for (const edge& e : sea)
    if (dc.has_edge(e)) rest.push_back(e);
  dc.batch_delete(rest);
  EXPECT_EQ(dc.stats().publishes_full, 3u);
  expect_snapshot_fresh(dc, 3, "shatter");
}

// An update batch that commits nothing still publishes a fresh version —
// but relabels nothing and clones nothing (all chunk pointers shared).
TEST(SnapshotPublishEdge, NoopBatchPublishesCheaply) {
  const vertex_id n = 256;
  options o;
  o.substrate = substrate::treap;
  o.concurrent_reads = true;
  batch_dynamic_connectivity dc(n, o);
  dc.batch_insert({{edge{1, 2}, edge{2, 3}}});

  const uint64_t relabeled = dc.stats().publish_relabeled;
  const uint64_t fulls = dc.stats().publishes_full;
  dc.batch_insert({{edge{1, 2}}});  // duplicate: no top-forest mutation
  dc.batch_delete({{edge{7, 8}}});  // absent: no mutation at all
  EXPECT_EQ(dc.committed_version(), 3u);
  EXPECT_EQ(dc.stats().publish_relabeled, relabeled);
  EXPECT_EQ(dc.stats().publishes_full, fulls);
  expect_snapshot_fresh(dc, 3, "noop commits");
}

// Non-tree churn must not relabel: inserting an edge inside an existing
// component mutates no top-forest tour, so the incremental publish
// shares every chunk untouched.
TEST(SnapshotPublishEdge, NontreeInsertRelabelsNothing) {
  const vertex_id n = 128;
  options o;
  o.substrate = substrate::skiplist;
  o.concurrent_reads = true;
  batch_dynamic_connectivity dc(n, o);
  dc.batch_insert({{edge{0, 1}, edge{1, 2}, edge{2, 3}}});

  const uint64_t relabeled = dc.stats().publish_relabeled;
  dc.batch_insert({{edge{0, 3}}});  // closes a cycle: non-tree
  EXPECT_EQ(dc.stats().publish_relabeled, relabeled);
  expect_snapshot_fresh(dc, 2, "cycle-closing insert");

  // Deleting the non-tree edge is equally free.
  dc.batch_delete({{edge{0, 3}}});
  EXPECT_EQ(dc.stats().publish_relabeled, relabeled);
  expect_snapshot_fresh(dc, 3, "non-tree delete");
}

TEST(SnapshotPublishEdge, ConfigLabelMarksFullPublish) {
  options o;
  o.concurrent_reads = true;
  EXPECT_EQ(config_label(o), "skiplist+serve");
  o.publish = publish_mode::full;
  EXPECT_EQ(config_label(o), "skiplist+serve!fullpub");
  o.concurrent_reads = false;  // publish mode is moot without serving
  EXPECT_EQ(config_label(o), "skiplist");
}

TEST(SnapshotPublishEdge, TinyAndEmptyStructures) {
  for (vertex_id n : {vertex_id{0}, vertex_id{1}, vertex_id{2}}) {
    options o;
    o.concurrent_reads = true;
    batch_dynamic_connectivity dc(n, o);
    auto view = dc.snapshot_query();
    EXPECT_FALSE(view.connected_pinned(0, 1));
    EXPECT_EQ(view.component_size(5), 0u);
    dc.batch_insert({{edge{0, 1}}});  // dropped unless n >= 2
    expect_snapshot_fresh(dc, 1, "tiny n=" + std::to_string(n));
  }
}

}  // namespace
}  // namespace bdc
