// engine_router (the workload-adaptive front end) test suite.
//
// Three groups:
//   * RouterDifferential — phase-skewed mixed traces replayed in lockstep
//     through the router AND every fixed engine (HDT batch structure,
//     sequential HDT, static recompute), all checked against a union-find
//     oracle rebuilt from scratch at every query batch. The router must be
//     indistinguishable from the fixed engines on every answer, edge
//     count, and components() labelling.
//   * Promotion boundaries — deletion in batch 0, deletions of
//     never-inserted edges (which must NOT promote), and promotion with
//     self-loops / duplicates / out-of-range ids pending in the
//     accumulated edge set.
//   * Cache invalidation — a query batch populates the per-epoch rep
//     memo; a subsequent update that changes connectivity must be visible
//     to the very next query (regression for the epoch-bump contract),
//     both before and after promotion.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "baselines/static_connectivity.hpp"
#include "core/batch_connectivity.hpp"
#include "core/engine_router.hpp"
#include "gen/graph_gen.hpp"
#include "gen/update_stream.hpp"
#include "hdt/hdt_connectivity.hpp"
#include "spanning/union_find.hpp"
#include "test_workers.hpp"
#include "util/random.hpp"

namespace bdc {
namespace {

using ::bdc::testing::worker_pool_guard;
using ::bdc::testing::workers_name;

using query_list = std::vector<std::pair<vertex_id, vertex_id>>;

// ---------------------------------------------------------------------
// Differential replay: router vs fixed engines vs union-find oracle on
// the same phase-skewed trace the router is built for.
// ---------------------------------------------------------------------

struct diff_params {
  vertex_id n;
  size_t m;
  size_t batch;
  unsigned workers;  // 0 = hardware pool
  uint64_t seed;
  bool cache;  // router memo on/off (both must be indistinguishable)
};

class RouterDifferential : public ::testing::TestWithParam<diff_params> {};

TEST_P(RouterDifferential, PhaseSkewedTraceLockstep) {
  const diff_params p = GetParam();
  worker_pool_guard pool(p.workers);
  SCOPED_TRACE("repro: n=" + std::to_string(p.n) + " m=" +
               std::to_string(p.m) + " batch=" + std::to_string(p.batch) +
               " workers=" + workers_name(p.workers) + " seed=" +
               std::to_string(p.seed) + " cache=" +
               (p.cache ? "on" : "off"));
  auto graph = gen_erdos_renyi(p.n, p.m, p.seed);
  auto stream = make_phase_skewed_stream(graph, p.n, p.batch,
                                         /*flood_batches=*/4,
                                         /*flood_queries=*/2 * p.batch,
                                         p.seed + 1);
  // Hostile garbage the trace generator never emits: the router and every
  // fixed engine must shrug these off identically.
  if (!stream.empty() && stream[0].op == update_batch::kind::insert) {
    stream[0].edges.push_back({3, 3});                    // self loop
    stream[0].edges.push_back({1, p.n + 5});              // out of range
    stream[0].edges.push_back({p.n, p.n});                // OOR self loop
    if (stream[0].edges.size() > 2)
      stream[0].edges.push_back(stream[0].edges[0]);      // duplicate
  }

  router_options ro;
  ro.cache_queries = p.cache;
  engine_router router(p.n, ro);
  batch_dynamic_connectivity dynamic(p.n, ro.dynamic_opts);
  hdt_connectivity hdt(p.n);
  static_recompute_connectivity stat(p.n);

  std::set<std::pair<vertex_id, vertex_id>> present;
  size_t batch_index = 0;
  for (const auto& b : stream) {
    SCOPED_TRACE("batch " + std::to_string(batch_index++));
    switch (b.op) {
      case update_batch::kind::insert:
        router.batch_insert(b.edges);
        dynamic.batch_insert(b.edges);
        hdt.batch_insert(b.edges);
        stat.batch_insert(b.edges);
        for (edge e : b.edges) {
          edge c = e.canonical();
          if (!c.is_self_loop() && c.v < p.n) present.insert({c.u, c.v});
        }
        break;
      case update_batch::kind::erase:
        router.batch_delete(b.edges);
        dynamic.batch_delete(b.edges);
        hdt.batch_delete(b.edges);
        stat.batch_delete(b.edges);
        for (edge e : b.edges) {
          edge c = e.canonical();
          present.erase({c.u, c.v});
        }
        break;
      case update_batch::kind::query: {
        union_find oracle(p.n);
        for (auto& pe : present) oracle.unite(pe.first, pe.second);
        auto got_r = router.batch_connected(b.queries);
        auto got_d = dynamic.batch_connected(b.queries);
        auto got_h = hdt.batch_connected(b.queries);
        auto got_s = stat.batch_connected(b.queries);
        for (size_t q = 0; q < b.queries.size(); ++q) {
          auto [u, v] = b.queries[q];
          bool want = oracle.connected(u, v);
          ASSERT_EQ(got_r[q], want) << "router, query " << u << "," << v;
          ASSERT_EQ(got_d[q], want) << "dynamic, query " << u << "," << v;
          ASSERT_EQ(got_h[q], want) << "hdt, query " << u << "," << v;
          ASSERT_EQ(got_s[q], want) << "static, query " << u << "," << v;
        }
        break;
      }
    }
    ASSERT_EQ(router.num_edges(), present.size());
  }

  // The trace ends with a deletion burst, so the router must have
  // promoted exactly once and stayed promoted.
  const auto& st = router.stats();
  EXPECT_TRUE(router.promoted());
  EXPECT_EQ(st.promotions, 1u);
  EXPECT_GT(st.promotion_edges, 0u);
  EXPECT_GT(st.phase_switches, 0u);
  EXPECT_GT(st.batches_on_unionfind, 0u);
  EXPECT_GT(st.batches_on_dynamic, 0u);
  EXPECT_LE(st.cache_hits, st.cache_lookups);
  if (!p.cache) {
    EXPECT_EQ(st.cache_lookups, 0u);
  }

  // components() labelling agrees with a from-scratch oracle walk.
  union_find oracle(p.n);
  for (auto& pe : present) oracle.unite(pe.first, pe.second);
  std::vector<vertex_id> want(p.n);
  std::vector<vertex_id> min_at(p.n, p.n);
  for (vertex_id v = 0; v < p.n; ++v) {
    vertex_id r = static_cast<vertex_id>(oracle.find(v));
    if (min_at[r] == p.n) min_at[r] = v;
  }
  for (vertex_id v = 0; v < p.n; ++v)
    want[v] = min_at[static_cast<vertex_id>(oracle.find(v))];
  EXPECT_EQ(router.components(), want);
  EXPECT_EQ(dynamic.components(), want);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RouterDifferential,
    ::testing::Values(diff_params{256, 512, 16, 1, 11, true},
                      diff_params{256, 512, 16, 1, 12, false},
                      diff_params{512, 1536, 64, 2, 13, true},
                      diff_params{1024, 4096, 96, 0, 14, true},
                      diff_params{1024, 4096, 96, 0, 15, false},
                      diff_params{2048, 8192, 128, 0, 16, true}),
    [](const ::testing::TestParamInfo<diff_params>& info) {
      return "n" + std::to_string(info.param.n) + "_b" +
             std::to_string(info.param.batch) + "_w" +
             workers_name(info.param.workers) + "_s" +
             std::to_string(info.param.seed) +
             (info.param.cache ? "_cache" : "_nocache");
    });

// An insert-only trace must never promote: the router stays on the
// union-find engine the whole way and still answers like the oracle.
TEST(RouterDifferential, InsertOnlyTraceNeverPromotes) {
  const vertex_id n = 512;
  auto graph = gen_erdos_renyi(n, 2048, 21);
  auto stream = make_insertion_stream(graph, 64, 22);
  engine_router router(n);
  union_find oracle(n);
  for (const auto& b : stream) {
    router.batch_insert(b.edges);
    for (edge e : b.edges)
      if (!e.is_self_loop()) oracle.unite(e.u, e.v);
    auto qs = make_query_batch(n, 64, b.edges.empty() ? 1 : b.edges[0].u);
    auto got = router.batch_connected(qs);
    for (size_t q = 0; q < qs.size(); ++q)
      ASSERT_EQ(got[q], oracle.connected(qs[q].first, qs[q].second));
  }
  EXPECT_FALSE(router.promoted());
  EXPECT_EQ(router.stats().promotions, 0u);
  EXPECT_EQ(router.stats().batches_on_dynamic, 0u);
  EXPECT_EQ(router.dynamic_engine(), nullptr);
}

// ---------------------------------------------------------------------
// Promotion boundaries.
// ---------------------------------------------------------------------

TEST(RouterPromotion, DeletionInBatchZeroIsDroppedNotPromoted) {
  engine_router r(16);
  // Very first batch the router ever sees is a deletion. Nothing is
  // present, so it cannot touch anything: dropped, no promotion.
  r.batch_delete(std::vector<edge>{{1, 2}, {3, 3}, {100, 200}});
  EXPECT_FALSE(r.promoted());
  EXPECT_EQ(r.stats().dropped_delete_batches, 1u);
  EXPECT_EQ(r.stats().promotions, 0u);
  EXPECT_EQ(r.num_edges(), 0u);
  EXPECT_FALSE(r.connected(1, 2));
}

TEST(RouterPromotion, AbsentEdgeDeletionsNeverPromote) {
  engine_router r(32);
  r.batch_insert(std::vector<edge>{{0, 1}, {1, 2}, {4, 5}});
  // None of these are present: (2,3) was never inserted, (7,7) is a self
  // loop, (0,2) is connected but not an edge, (40,41) is out of range.
  r.batch_delete(std::vector<edge>{{2, 3}, {7, 7}, {0, 2}, {40, 41}});
  EXPECT_FALSE(r.promoted());
  EXPECT_EQ(r.stats().dropped_delete_batches, 1u);
  EXPECT_EQ(r.num_edges(), 3u);
  EXPECT_TRUE(r.connected(0, 2));
  EXPECT_TRUE(r.connected(4, 5));
  // The first deletion that does touch a present edge promotes — once.
  r.batch_delete(std::vector<edge>{{1, 2}});
  EXPECT_TRUE(r.promoted());
  EXPECT_EQ(r.stats().promotions, 1u);
  EXPECT_EQ(r.stats().promotion_edges, 3u);
  EXPECT_EQ(r.num_edges(), 2u);
  EXPECT_TRUE(r.connected(0, 1));
  EXPECT_FALSE(r.connected(0, 2));
  // Post-promotion absent-edge deletions go to the HDT engine (no more
  // drop counting) and stay correct.
  r.batch_delete(std::vector<edge>{{2, 3}, {40, 41}});
  EXPECT_EQ(r.stats().promotions, 1u);
  EXPECT_EQ(r.num_edges(), 2u);
}

TEST(RouterPromotion, PromotesWithGarbagePendingInAccumulatedSet) {
  const vertex_id n = 64;
  engine_router r(n);
  // Accumulate a set laced with self-loops, duplicates (both
  // orientations), and out-of-range ids, across several batches.
  r.batch_insert(std::vector<edge>{{0, 1}, {1, 0}, {5, 5}, {2, 3}});
  r.batch_insert(std::vector<edge>{{2, 3}, {3, 2}, {63, 64}, {70, 9}});
  r.batch_insert(std::vector<edge>{{10, 11}, {11, 12}, {10, 11}});
  ASSERT_EQ(r.num_edges(), 4u);  // {0,1},{2,3},{10,11},{11,12}
  ASSERT_FALSE(r.promoted());
  // Promote by deleting a present edge; the bulk load must carry exactly
  // the distinct real edges.
  r.batch_delete(std::vector<edge>{{11, 12}});
  EXPECT_TRUE(r.promoted());
  EXPECT_EQ(r.stats().promotion_edges, 4u);
  EXPECT_EQ(r.num_edges(), 3u);
  EXPECT_TRUE(r.connected(0, 1));
  EXPECT_TRUE(r.connected(2, 3));
  EXPECT_TRUE(r.connected(10, 11));
  EXPECT_FALSE(r.connected(11, 12));
  EXPECT_FALSE(r.connected(5, 6));
  // The promoted engine agrees on the edge count (set semantics).
  ASSERT_NE(r.dynamic_engine(), nullptr);
  EXPECT_EQ(r.dynamic_engine()->num_edges(), 3u);
}

TEST(RouterPromotion, PromotionPreservesComponentStructure) {
  // A graph with several nontrivial components; promotion must not merge
  // or split anything.
  const vertex_id n = 1024;
  auto graph = gen_erdos_renyi(n, 1200, 31);
  engine_router r(n);
  r.batch_insert(graph);
  auto before = r.components();
  ASSERT_FALSE(r.promoted());
  // Delete one present edge to force promotion, then re-insert it: the
  // labelling must round-trip.
  edge victim = graph[17].canonical();
  r.batch_delete(std::vector<edge>{victim});
  ASSERT_TRUE(r.promoted());
  r.batch_insert(std::vector<edge>{victim});
  EXPECT_EQ(r.components(), before);
}

// ---------------------------------------------------------------------
// Cache invalidation.
// ---------------------------------------------------------------------

TEST(RouterCache, UpdateAfterQueryInvalidatesPrePromotion) {
  engine_router r(8);
  r.batch_insert(std::vector<edge>{{0, 1}});
  // Populate the memo for 0, 1, 2, 3.
  query_list qs = {{0, 1}, {2, 3}};
  auto a = r.batch_connected(qs);
  EXPECT_TRUE(a[0]);
  EXPECT_FALSE(a[1]);
  // Still pre-promotion: an insert-only update must invalidate.
  r.batch_insert(std::vector<edge>{{1, 2}, {2, 3}});
  ASSERT_FALSE(r.promoted());
  auto b = r.batch_connected(qs);
  EXPECT_TRUE(b[0]);
  EXPECT_TRUE(b[1]) << "stale memo served a pre-update representative";
  EXPECT_GE(r.stats().cache_invalidations, 1u);
}

TEST(RouterCache, UpdateAfterQueryInvalidatesPostPromotion) {
  engine_router r(8);
  r.batch_insert(std::vector<edge>{{0, 1}, {1, 2}, {4, 5}});
  r.batch_delete(std::vector<edge>{{1, 2}});  // promotes
  ASSERT_TRUE(r.promoted());
  query_list qs = {{0, 2}, {4, 5}, {0, 5}};
  auto a = r.batch_connected(qs);
  EXPECT_FALSE(a[0]);
  EXPECT_TRUE(a[1]);
  EXPECT_FALSE(a[2]);
  // Reconnect through the dynamic engine; the memoized reps for 0/2/4/5
  // are all stale now.
  r.batch_insert(std::vector<edge>{{2, 4}, {1, 2}});
  auto b = r.batch_connected(qs);
  EXPECT_TRUE(b[0]);
  EXPECT_TRUE(b[1]);
  EXPECT_TRUE(b[2]) << "stale memo survived a post-promotion update";
  // And a deletion invalidates too.
  r.batch_delete(std::vector<edge>{{2, 4}});
  auto c = r.batch_connected(qs);
  EXPECT_TRUE(c[0]);   // 0-1-2 still a path
  EXPECT_TRUE(c[1]);
  EXPECT_FALSE(c[2]);
}

TEST(RouterCache, RepeatedFloodBatchesHitTheMemo) {
  const vertex_id n = 512;
  engine_router r(n);
  r.batch_insert(gen_erdos_renyi(n, 1024, 41));
  auto qs = make_query_batch(n, 256, 42);
  auto first = r.batch_connected(qs);
  uint64_t lookups_after_first = r.stats().cache_lookups;
  uint64_t hits_after_first = r.stats().cache_hits;
  // Identical flood batch, no update in between: every endpoint resolved
  // by the first batch must now be a memo hit.
  auto second = r.batch_connected(qs);
  EXPECT_EQ(first, second);
  EXPECT_EQ(r.stats().cache_hits - hits_after_first,
            r.stats().cache_lookups - lookups_after_first)
      << "second flood batch missed the memo despite no updates";
  EXPECT_GT(r.stats().cache_hits, 0u);
  // Disabled cache: no lookups counted at all.
  router_options off;
  off.cache_queries = false;
  engine_router r2(n, off);
  r2.batch_insert(std::vector<edge>{{0, 1}});
  (void)r2.batch_connected(qs);
  EXPECT_EQ(r2.stats().cache_lookups, 0u);
}

// ---------------------------------------------------------------------
// Statistics sanity.
// ---------------------------------------------------------------------

TEST(RouterStats, CountersAccountForEveryBatch) {
  engine_router r(64);
  r.batch_insert(std::vector<edge>{{0, 1}, {1, 2}});   // uf
  r.batch_insert(std::vector<edge>{{2, 3}});           // uf
  (void)r.batch_connected(query_list{{0, 3}});
  r.batch_delete(std::vector<edge>{{9, 10}});          // dropped, uf
  r.batch_delete(std::vector<edge>{{1, 2}});           // promotes, dynamic
  r.batch_insert(std::vector<edge>{{5, 6}});           // dynamic
  (void)r.batch_connected(query_list{{5, 6}});
  const auto& st = r.stats();
  EXPECT_EQ(st.insert_batches, 3u);
  EXPECT_EQ(st.delete_batches, 2u);
  EXPECT_EQ(st.query_batches, 2u);
  // Update batches are attributed to exactly one engine.
  EXPECT_EQ(st.batches_on_unionfind + st.batches_on_dynamic,
            st.insert_batches + st.delete_batches);
  EXPECT_EQ(st.batches_on_unionfind, 3u);  // 2 inserts + dropped delete
  EXPECT_EQ(st.batches_on_dynamic, 2u);    // promoting delete + insert
  EXPECT_EQ(st.dropped_delete_batches, 1u);
  EXPECT_EQ(st.promotions, 1u);
  EXPECT_GT(st.phase_switches, 0u);
  // connected() routes through batch_connected: one more query batch.
  EXPECT_TRUE(r.connected(5, 6));
  EXPECT_EQ(r.stats().query_batches, 3u);
}

}  // namespace
}  // namespace bdc
