// Incremental MSF tests against a Kruskal oracle: forest weight, forest
// structure (component partition), exchange behaviour, and the reference
// deletion path.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "gen/graph_gen.hpp"
#include "msf/incremental_msf.hpp"
#include "spanning/union_find.hpp"
#include "util/random.hpp"

namespace bdc {
namespace {

/// Kruskal reference: total MSF weight over the given edges.
uint64_t kruskal_weight(vertex_id n, std::vector<weighted_edge> es) {
  std::sort(es.begin(), es.end(),
            [](const weighted_edge& a, const weighted_edge& b) {
              return a.weight < b.weight;
            });
  union_find uf(n);
  uint64_t total = 0;
  for (auto& we : es) {
    if (we.e.is_self_loop()) continue;
    if (uf.unite(we.e.u, we.e.v)) total += we.weight;
  }
  return total;
}

TEST(Msf, BasicExchange) {
  incremental_msf msf(3);
  msf.insert({{0, 1}, 10});
  msf.insert({{1, 2}, 20});
  EXPECT_EQ(msf.msf_weight(), 30u);
  EXPECT_EQ(msf.num_forest_edges(), 2u);
  // A lighter edge closing the triangle evicts the heaviest path edge.
  msf.insert({{0, 2}, 5});
  EXPECT_EQ(msf.msf_weight(), 15u);
  EXPECT_TRUE(msf.is_forest_edge({0, 2}));
  EXPECT_FALSE(msf.is_forest_edge({1, 2}));
  EXPECT_TRUE(msf.has_edge({1, 2}));  // demoted, not dropped
  // A heavier edge changes nothing.
  msf.insert({{1, 2}, 50});  // already present -> ignored
  EXPECT_EQ(msf.num_edges(), 3u);
}

TEST(Msf, DuplicatesAndSelfLoopsIgnored) {
  incremental_msf msf(4);
  std::vector<weighted_edge> batch = {
      {{0, 1}, 3}, {{1, 0}, 7}, {{2, 2}, 1}, {{1, 2}, 4}};
  msf.batch_insert(batch);
  EXPECT_EQ(msf.num_edges(), 2u);
  EXPECT_EQ(msf.msf_weight(), 7u);  // 3 + 4
}

class MsfRandomSweep
    : public ::testing::TestWithParam<std::pair<int, size_t>> {};

TEST_P(MsfRandomSweep, WeightMatchesKruskal) {
  auto [trial, batch_size] = GetParam();
  random_stream rs(trial * 31 + 7);
  const vertex_id n = 150;
  incremental_msf msf(n);
  std::vector<weighted_edge> all;
  std::set<std::pair<vertex_id, vertex_id>> seen;
  for (int round = 0; round < 12; ++round) {
    std::vector<weighted_edge> batch;
    for (size_t t = 0; t < batch_size; ++t) {
      vertex_id u = static_cast<vertex_id>(rs.next(n));
      vertex_id v = static_cast<vertex_id>(rs.next(n));
      if (u == v) continue;
      edge c = edge{u, v}.canonical();
      if (!seen.insert({c.u, c.v}).second) continue;
      weighted_edge we{c, 1 + rs.next(10000)};
      batch.push_back(we);
      all.push_back(we);
    }
    msf.batch_insert(batch);
    ASSERT_EQ(msf.msf_weight(), kruskal_weight(n, all))
        << "round " << round;
    ASSERT_EQ(msf.num_edges(), all.size());
    // The forest spans the same components as the full graph.
    union_find uf_all(n), uf_forest(n);
    for (auto& we : all) uf_all.unite(we.e.u, we.e.v);
    for (auto& we : msf.forest_edges()) uf_forest.unite(we.e.u, we.e.v);
    for (vertex_id v = 0; v < n; ++v)
      ASSERT_EQ(uf_all.connected(0, v), uf_forest.connected(0, v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Trials, MsfRandomSweep,
    ::testing::Values(std::pair<int, size_t>{0, 1},
                      std::pair<int, size_t>{1, 10},
                      std::pair<int, size_t>{2, 100},
                      std::pair<int, size_t>{3, 500},
                      std::pair<int, size_t>{4, 100}));

TEST(Msf, EraseNonForestIsCheapAndSafe) {
  incremental_msf msf(4);
  msf.batch_insert(std::vector<weighted_edge>{
      {{0, 1}, 1}, {{1, 2}, 2}, {{0, 2}, 9}});
  EXPECT_TRUE(msf.erase_nonforest({0, 2}));
  EXPECT_FALSE(msf.erase_nonforest({0, 1}));  // forest edge: refused
  EXPECT_EQ(msf.msf_weight(), 3u);
  EXPECT_EQ(msf.num_edges(), 2u);
}

TEST(Msf, EraseForestEdgeFindsLightestReplacement) {
  incremental_msf msf(4);
  // Square with one diagonal: forest = three lightest.
  msf.batch_insert(std::vector<weighted_edge>{{{0, 1}, 1},
                                              {{1, 2}, 2},
                                              {{2, 3}, 3},
                                              {{3, 0}, 10},
                                              {{1, 3}, 7}});
  EXPECT_EQ(msf.msf_weight(), 1u + 2 + 3);
  // Deleting (2,3) must pull in (1,3) (weight 7), not (3,0) (weight 10).
  EXPECT_TRUE(msf.erase({2, 3}));
  EXPECT_EQ(msf.msf_weight(), 1u + 2 + 7);
  EXPECT_TRUE(msf.is_forest_edge({1, 3}));
  EXPECT_TRUE(msf.connected(0, 3));
}

TEST(Msf, EraseAgainstKruskalOracle) {
  random_stream rs(99);
  const vertex_id n = 60;
  incremental_msf msf(n);
  std::vector<weighted_edge> live;
  // Build a dense graph.
  for (vertex_id u = 0; u < n; ++u) {
    for (vertex_id v = u + 1; v < n; v += 1 + u % 3) {
      weighted_edge we{{u, v}, 1 + rs.next(1000)};
      live.push_back(we);
    }
  }
  msf.batch_insert(live);
  ASSERT_EQ(msf.msf_weight(), kruskal_weight(n, live));
  // Delete random edges one at a time; weight must track Kruskal.
  for (int step = 0; step < 80 && !live.empty(); ++step) {
    size_t idx = rs.next(live.size());
    weighted_edge victim = live[idx];
    live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
    ASSERT_TRUE(msf.erase(victim.e));
    ASSERT_EQ(msf.msf_weight(), kruskal_weight(n, live)) << "step " << step;
  }
}

}  // namespace
}  // namespace bdc
