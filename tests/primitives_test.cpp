// Sequence-primitive tests: reduce, scan, pack, filter, flatten, histogram
// against straightforward sequential references.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "parallel/primitives.hpp"
#include "util/random.hpp"

namespace bdc {
namespace {

std::vector<long> random_vec(size_t n, uint64_t seed, long mod = 1000) {
  random r(seed);
  std::vector<long> v(n);
  for (size_t i = 0; i < n; ++i)
    v[i] = static_cast<long>(r.ith_rand(i, static_cast<uint64_t>(mod)));
  return v;
}

class PrimitiveSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(PrimitiveSweep, TabulateAndMap) {
  size_t n = GetParam();
  auto v = tabulate(n, [](size_t i) { return static_cast<long>(i * 3); });
  ASSERT_EQ(v.size(), n);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(v[i], static_cast<long>(3 * i));
  auto w = map(v, [](long x) { return x + 1; });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(w[i], v[i] + 1);
}

TEST_P(PrimitiveSweep, ReduceMatchesAccumulate) {
  size_t n = GetParam();
  auto v = random_vec(n, 42 + n);
  long expect = std::accumulate(v.begin(), v.end(), 0L);
  EXPECT_EQ(sum(v), expect);
  EXPECT_EQ(reduce_sum(n, [&](size_t i) { return v[i]; }), expect);
}

TEST_P(PrimitiveSweep, ScanMatchesPartialSums) {
  size_t n = GetParam();
  auto v = random_vec(n, 43 + n);
  auto expect = v;
  long total = 0;
  for (size_t i = 0; i < n; ++i) {
    long next = total + expect[i];
    expect[i] = total;
    total = next;
  }
  auto got = v;
  long got_total = exclusive_scan(got);
  EXPECT_EQ(got_total, total);
  EXPECT_EQ(got, expect);
}

TEST_P(PrimitiveSweep, PackAndFilter) {
  size_t n = GetParam();
  auto v = random_vec(n, 44 + n);
  auto evens = filter(v, [](long x) { return x % 2 == 0; });
  std::vector<long> expect;
  for (long x : v)
    if (x % 2 == 0) expect.push_back(x);
  EXPECT_EQ(evens, expect);

  auto idx = pack_index(n, [&](size_t i) { return v[i] % 2 == 0; });
  ASSERT_EQ(idx.size(), expect.size());
  for (size_t i = 0; i < idx.size(); ++i) ASSERT_EQ(v[idx[i]], expect[i]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrimitiveSweep,
                         ::testing::Values(0, 1, 2, 5, 100, 1023, 4096,
                                           100003));

TEST(Primitives, FlattenPreservesOrder) {
  std::vector<std::vector<long>> parts = {{1, 2}, {}, {3}, {4, 5, 6}, {}};
  EXPECT_EQ(flatten(parts), (std::vector<long>{1, 2, 3, 4, 5, 6}));
  std::vector<std::vector<long>> empty;
  EXPECT_TRUE(flatten(empty).empty());
}

TEST(Primitives, HistogramMatchesCounts) {
  random r(7);
  size_t n = 50000, buckets = 37;
  std::vector<uint32_t> keys(n);
  std::vector<size_t> expect(buckets, 0);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = static_cast<uint32_t>(r.ith_rand(i, buckets));
    expect[keys[i]]++;
  }
  EXPECT_EQ(histogram(keys, buckets), expect);
}

TEST(Primitives, ReduceCustomMonoid) {
  auto v = random_vec(9999, 5);
  long mx = *std::max_element(v.begin(), v.end());
  long got = reduce_index<long>(
      v.size(), [&](size_t i) { return v[i]; }, LONG_MIN,
      [](long a, long b) { return std::max(a, b); });
  EXPECT_EQ(got, mx);
}

}  // namespace
}  // namespace bdc
