// Phase-concurrent dictionary tests: sequential semantics against
// std::unordered_map, phase-concurrent batch operations, growth and
// tombstone compaction.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "hashtable/phase_concurrent_map.hpp"
#include "parallel/scheduler.hpp"
#include "util/random.hpp"

namespace bdc {
namespace {

TEST(PhaseMap, SequentialInsertFindErase) {
  phase_concurrent_map<int> m(4);
  EXPECT_TRUE(m.insert(1, 10));
  EXPECT_TRUE(m.insert(2, 20));
  EXPECT_FALSE(m.insert(1, 11));  // overwrite
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(*m.find(1), 11);
  EXPECT_EQ(*m.find(2), 20);
  EXPECT_EQ(m.find(3), nullptr);
  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.erase(1));
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(PhaseMap, GrowthUnderSequentialLoad) {
  phase_concurrent_map<uint64_t> m(4);
  const uint64_t n = 100000;
  for (uint64_t k = 0; k < n; ++k) {
    m.reserve_for(1);
    m.insert(k * 2 + 1, k);
  }
  EXPECT_EQ(m.size(), n);
  for (uint64_t k = 0; k < n; ++k) {
    auto* p = m.find(k * 2 + 1);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, k);
  }
}

TEST(PhaseMap, ModelCheckAgainstUnorderedMap) {
  random_stream rs(11);
  phase_concurrent_map<uint64_t> m(8);
  std::unordered_map<uint64_t, uint64_t> ref;
  for (int step = 0; step < 200000; ++step) {
    uint64_t key = rs.next(5000) + 1;
    switch (rs.next(3)) {
      case 0: {
        uint64_t val = rs.next();
        m.reserve_for(1);
        bool was_new = m.insert(key, val);
        EXPECT_EQ(was_new, ref.count(key) == 0);
        ref[key] = val;
        break;
      }
      case 1: {
        bool had = m.erase(key);
        EXPECT_EQ(had, ref.erase(key) == 1);
        break;
      }
      default: {
        auto* p = m.find(key);
        auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(p, nullptr);
        } else {
          ASSERT_NE(p, nullptr);
          EXPECT_EQ(*p, it->second);
        }
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
}

class PhaseMapBatchSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(PhaseMapBatchSweep, ConcurrentDistinctInserts) {
  size_t k = GetParam();
  phase_concurrent_map<uint64_t> m(4);
  std::vector<std::pair<uint64_t, uint64_t>> kvs(k);
  for (size_t i = 0; i < k; ++i) kvs[i] = {i + 1, i * 7};
  m.insert_batch(kvs);
  EXPECT_EQ(m.size(), k);
  // Parallel lookups.
  std::atomic<size_t> bad{0};
  parallel_for(0, k, [&](size_t i) {
    auto* p = m.find(i + 1);
    if (p == nullptr || *p != i * 7) bad++;
  });
  EXPECT_EQ(bad.load(), 0u);
}

TEST_P(PhaseMapBatchSweep, ConcurrentErases) {
  size_t k = GetParam();
  phase_concurrent_map<uint64_t> m(4);
  std::vector<std::pair<uint64_t, uint64_t>> kvs(k);
  for (size_t i = 0; i < k; ++i) kvs[i] = {i + 1, i};
  m.insert_batch(kvs);
  // Erase the odd keys in parallel.
  std::vector<uint64_t> to_erase;
  for (size_t i = 0; i < k; ++i)
    if (i % 2 == 1) to_erase.push_back(i + 1);
  m.erase_batch(to_erase);
  EXPECT_EQ(m.size(), k - to_erase.size());
  for (size_t i = 0; i < k; ++i) {
    EXPECT_EQ(m.contains(i + 1), i % 2 == 0) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PhaseMapBatchSweep,
                         ::testing::Values(1, 2, 100, 10000, 200000));

TEST(PhaseMap, SequentialInsertIfAbsentNeverOverwrites) {
  phase_concurrent_map<int> m(4);
  EXPECT_TRUE(m.insert_if_absent(1, 10));
  EXPECT_FALSE(m.insert_if_absent(1, 11));
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(*m.find(1), 10);  // first value sticks
  EXPECT_EQ(m.size(), 1u);
}

// Regression (TSan): duplicate-key concurrent inserts. The baselines feed
// raw edge batches — repeats and both orientations of the same edge — to
// the map in one parallel phase. insert() would race on the value slot
// (and is kept distinct-keys-only); insert_if_absent must give exactly one
// winner per key with no duplicate entries or size over-count.
TEST(PhaseMap, ConcurrentDuplicateKeyInsertIfAbsent) {
  const size_t distinct = 512;
  const size_t copies = 64;
  phase_concurrent_map<uint64_t> m(4);
  m.reserve_for(distinct);
  std::vector<std::atomic<size_t>> wins(distinct);
  for (auto& w : wins) w.store(0, std::memory_order_relaxed);
  parallel_for(0, distinct * copies, [&](size_t i) {
    uint64_t key = i % distinct + 1;
    if (m.insert_if_absent(key, key * 3)) {
      wins[key - 1].fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(m.size(), distinct);
  EXPECT_EQ(m.entries().size(), distinct);  // no duplicate slots
  for (size_t k = 0; k < distinct; ++k) {
    EXPECT_EQ(wins[k].load(std::memory_order_relaxed), 1u) << k;
    auto* p = m.find(k + 1);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, (k + 1) * 3);
  }
}

TEST(PhaseMap, EntriesEnumeratesAll) {
  phase_concurrent_map<int> m(4);
  m.reserve_for(100);
  for (uint64_t k = 1; k <= 100; ++k) m.insert(k, static_cast<int>(k));
  auto entries = m.entries();
  ASSERT_EQ(entries.size(), 100u);
  uint64_t key_sum = 0;
  for (auto& [k, v] : entries) key_sum += k;
  EXPECT_EQ(key_sum, 100u * 101 / 2);
}

TEST(PhaseMap, TombstoneCompactionKeepsLookupsCorrect) {
  phase_concurrent_map<int> m(8);
  // Repeated churn on the same key range forces tombstone recycling.
  for (int round = 0; round < 50; ++round) {
    for (uint64_t k = 1; k <= 64; ++k) {
      m.reserve_for(1);
      m.insert(k, round);
    }
    std::vector<uint64_t> all;
    for (uint64_t k = 1; k <= 64; ++k) all.push_back(k);
    m.erase_batch(all);
    EXPECT_EQ(m.size(), 0u);
  }
  m.reserve_for(1);
  m.insert(7, 42);
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 42);
}

}  // namespace
}  // namespace bdc
