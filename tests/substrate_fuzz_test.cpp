// Differential fuzz suite for the Euler-tour substrates.
//
// Long randomized mixed link/cut/count/query streams are driven directly
// against the ett_substrate surface and checked two independent ways:
//
//   * OracleLockstep — every round's query batch is verified against a
//     union-find oracle REBUILT from scratch from the current tree-edge
//     set, so an oracle bug cannot track a substrate bug.
//   * CrossSubstrate — the skip-list, treap, and blocked forests (which
//     share no code) replay identical batch streams and must agree on
//     every query, edge count, and component size.
//   * BdcDifferential — batch_dynamic_connectivity end-to-end (inserts
//     and deletes with non-tree edges, replacement searches, level
//     pushes) under every uniform substrate plus the mixed per-level
//     policy, in lockstep with a from-scratch union-find oracle.
//
// The grid is {substrate} x {workers: 1, 2, hardware} x {batch size}, and
// every stream seed is a deterministic function of those parameters, so a
// failure's SCOPED_TRACE line is a one-line repro: rerun that exact test
// name. The sweep is widened in CI (and locally) through two environment
// knobs:
//
//   BDC_FUZZ_ROUNDS  rounds per stream        (default 25)
//   BDC_FUZZ_SEEDS   streams per parameter set (default 2)
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/batch_connectivity.hpp"
#include "ett/ett_substrate.hpp"
#include "spanning/union_find.hpp"
#include "test_substrates.hpp"
#include "test_workers.hpp"
#include "util/random.hpp"

namespace bdc {
namespace {

using ::bdc::testing::kSubConfigs;
using ::bdc::testing::worker_pool_guard;
using ::bdc::testing::workers_name;

int env_knob(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  int parsed = std::atoi(v);
  return parsed > 0 ? parsed : fallback;
}

int fuzz_rounds() { return env_knob("BDC_FUZZ_ROUNDS", 25); }
int fuzz_seeds() { return env_knob("BDC_FUZZ_SEEDS", 2); }

struct fuzz_params {
  substrate sub;      // OracleLockstep only; CrossSubstrate drives both
  unsigned workers;   // 0 = the default (hardware) pool
  size_t batch;
};

// One mutation/query round state: the present tree edges plus generators.
struct stream_state {
  vertex_id n;
  random_stream rs;
  std::set<std::pair<vertex_id, vertex_id>> present;

  explicit stream_state(vertex_id n_, uint64_t seed) : n(n_), rs(seed) {}

  // A batch of links that is acyclic against the current forest AND within
  // itself, never already present, no self loops — the batch_link
  // preconditions the level structure guarantees in production.
  std::vector<edge> next_links(size_t want) {
    union_find acyclic(n);
    for (const auto& pe : present) acyclic.unite(pe.first, pe.second);
    std::vector<edge> links;
    for (size_t t = 0; t < 20 * want && links.size() < want; ++t) {
      vertex_id u = static_cast<vertex_id>(rs.next(n));
      vertex_id v = static_cast<vertex_id>(rs.next(n));
      if (u == v || !acyclic.unite(u, v)) continue;
      links.push_back({u, v});
      present.insert({edge{u, v}.canonical().u, edge{u, v}.canonical().v});
    }
    return links;
  }

  // A batch of distinct present tree edges (partial Fisher–Yates sample).
  std::vector<edge> next_cuts(size_t want) {
    std::vector<std::pair<vertex_id, vertex_id>> pool(present.begin(),
                                                      present.end());
    size_t take = std::min(want, pool.size());
    std::vector<edge> cuts;
    for (size_t i = 0; i < take; ++i) {
      size_t j = i + static_cast<size_t>(rs.next(pool.size() - i));
      std::swap(pool[i], pool[j]);
      cuts.push_back({pool[i].first, pool[i].second});
      present.erase(pool[i]);
    }
    return cuts;
  }

  std::vector<std::pair<vertex_id, vertex_id>> next_queries(size_t count) {
    std::vector<std::pair<vertex_id, vertex_id>> qs(count);
    for (auto& q : qs)
      q = {static_cast<vertex_id>(rs.next(n)),
           static_cast<vertex_id>(rs.next(n))};
    return qs;
  }
};

vertex_id n_for_batch(size_t batch) {
  size_t n = 8 * batch;
  return static_cast<vertex_id>(std::min<size_t>(std::max<size_t>(n, 128),
                                                 4096));
}

// ---------------------------------------------------------------------
// Union-find rebuild oracle.
// ---------------------------------------------------------------------

class OracleLockstep : public ::testing::TestWithParam<fuzz_params> {};

TEST_P(OracleLockstep, MixedStream) {
  const fuzz_params p = GetParam();
  worker_pool_guard pool(p.workers);
  const vertex_id n = n_for_batch(p.batch);
  const int rounds = fuzz_rounds();
  for (int s = 0; s < fuzz_seeds(); ++s) {
    uint64_t seed = hash_combine(
        hash_combine(static_cast<uint64_t>(p.sub) + 1, p.workers * 131 + 7),
        p.batch * 1009 + static_cast<uint64_t>(s));
    SCOPED_TRACE("repro: substrate=" + std::string(to_string(p.sub)) +
                 " workers=" + workers_name(p.workers) +
                 " batch=" + std::to_string(p.batch) +
                 " seed_index=" + std::to_string(s) + " stream_seed=" +
                 std::to_string(seed) +
                 " (widen with BDC_FUZZ_SEEDS / BDC_FUZZ_ROUNDS)");
    auto f = make_ett(p.sub, n, seed ^ 0x5eed);
    stream_state st(n, seed);
    for (int round = 0; round < rounds; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      // Mutate: a link batch, then (on alternating rounds, so the forest
      // grows as well as churns) a cut batch.
      auto links = st.next_links(1 + st.rs.next(p.batch));
      f->batch_link(links);
      ASSERT_EQ(f->check_consistency(), "") << "after batch_link";
      if (round % 2 == 1) {
        auto cuts = st.next_cuts(1 + st.rs.next(p.batch));
        f->batch_cut(cuts);
        ASSERT_EQ(f->check_consistency(), "") << "after batch_cut";
      }
      ASSERT_EQ(f->num_edges(), st.present.size());

      // Counter churn: push per-vertex non-tree counts up, verify the
      // component sums and the fetch contract, then restore to zero.
      std::vector<ett_substrate::count_delta> up;
      for (vertex_id v = 0; v < n; v += 1 + n / 64) up.push_back({v, 0, 3});
      f->batch_add_counts(up);
      ASSERT_EQ(f->check_consistency(), "") << "after batch_add_counts";

      // Oracle rebuilt from scratch: query agreement + component sizes.
      union_find oracle(n);
      for (const auto& pe : st.present) oracle.unite(pe.first, pe.second);
      auto qs = st.next_queries(2 * p.batch + 16);
      auto got = f->batch_connected(qs);
      for (size_t q = 0; q < qs.size(); ++q) {
        ASSERT_EQ(got[q], oracle.connected(qs[q].first, qs[q].second))
            << "query " << qs[q].first << "," << qs[q].second;
      }
      std::vector<uint32_t> comp_size(n, 0);
      for (vertex_id v = 0; v < n; ++v) ++comp_size[oracle.find(v)];
      for (int probe = 0; probe < 8; ++probe) {
        vertex_id v = static_cast<vertex_id>(st.rs.next(n));
        auto cc = f->component_counts(v);
        ASSERT_EQ(cc.vertices, comp_size[oracle.find(v)]) << "vertex " << v;
        // Every sampled vertex in this component contributes 3 non-tree
        // slots; fetch must surface exactly min(want, total).
        auto fetched = f->fetch_nontree(v, cc.nontree_edges + 10);
        uint64_t sum = 0;
        for (const auto& [x, take] : fetched) {
          ASSERT_TRUE(oracle.connected(v, x));
          sum += take;
        }
        ASSERT_EQ(sum, cc.nontree_edges);
      }
      for (auto& d : up) d.nontree_delta = -d.nontree_delta;
      f->batch_add_counts(up);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OracleLockstep,
    ::testing::Values(
        fuzz_params{substrate::skiplist, 1, 4},
        fuzz_params{substrate::skiplist, 1, 64},
        fuzz_params{substrate::skiplist, 2, 32},
        fuzz_params{substrate::skiplist, 2, 256},
        fuzz_params{substrate::skiplist, 0, 64},
        fuzz_params{substrate::skiplist, 0, 256},
        fuzz_params{substrate::treap, 1, 4},
        fuzz_params{substrate::treap, 1, 64},
        fuzz_params{substrate::treap, 2, 32},
        fuzz_params{substrate::treap, 2, 256},
        fuzz_params{substrate::treap, 0, 64},
        fuzz_params{substrate::treap, 0, 256},
        fuzz_params{substrate::blocked, 1, 4},
        fuzz_params{substrate::blocked, 1, 64},
        fuzz_params{substrate::blocked, 2, 32},
        fuzz_params{substrate::blocked, 2, 256},
        fuzz_params{substrate::blocked, 0, 64},
        fuzz_params{substrate::blocked, 0, 256}),
    [](const ::testing::TestParamInfo<fuzz_params>& info) {
      return std::string(to_string(info.param.sub)) + "_w" +
             workers_name(info.param.workers) + "_b" +
             std::to_string(info.param.batch);
    });

// ---------------------------------------------------------------------
// Cross-substrate differential: skiplist vs treap vs blocked on
// identical streams. The three forests share no code, so any divergence
// pins a bug on one of them.
// ---------------------------------------------------------------------

class CrossSubstrate
    : public ::testing::TestWithParam<std::pair<unsigned, size_t>> {};

TEST_P(CrossSubstrate, IdenticalStreams) {
  const auto [workers, batch] = GetParam();
  worker_pool_guard pool(workers);
  const vertex_id n = n_for_batch(batch);
  const int rounds = fuzz_rounds();
  constexpr substrate kSubs[] = {substrate::skiplist, substrate::treap,
                                 substrate::blocked};
  for (int s = 0; s < fuzz_seeds(); ++s) {
    uint64_t seed = hash_combine(workers * 977 + 3, batch * 31 + 11) +
                    static_cast<uint64_t>(s);
    SCOPED_TRACE("repro: cross workers=" + workers_name(workers) +
                 " batch=" + std::to_string(batch) + " seed_index=" +
                 std::to_string(s) + " stream_seed=" + std::to_string(seed));
    std::vector<std::unique_ptr<ett_substrate>> fs;
    for (size_t i = 0; i < std::size(kSubs); ++i)
      fs.push_back(make_ett(kSubs[i], n, seed ^ (0xa + i)));
    stream_state st(n, seed);
    for (int round = 0; round < rounds; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      auto links = st.next_links(1 + st.rs.next(batch));
      for (auto& f : fs) f->batch_link(links);
      if (round % 2 == 1) {
        auto cuts = st.next_cuts(1 + st.rs.next(batch));
        for (auto& f : fs) f->batch_cut(cuts);
      }
      for (auto& f : fs) ASSERT_EQ(f->num_edges(), fs[0]->num_edges());
      auto qs = st.next_queries(2 * batch + 16);
      auto got_a = fs[0]->batch_connected(qs);
      for (size_t fi = 1; fi < fs.size(); ++fi) {
        SCOPED_TRACE(std::string("vs ") + to_string(kSubs[fi]));
        auto got_b = fs[fi]->batch_connected(qs);
        for (size_t q = 0; q < qs.size(); ++q) {
          ASSERT_EQ(got_a[q], got_b[q])
              << "query " << qs[q].first << "," << qs[q].second;
        }
        for (int probe = 0; probe < 8; ++probe) {
          vertex_id v = static_cast<vertex_id>(st.rs.next(n));
          ASSERT_EQ(fs[0]->component_counts(v).vertices,
                    fs[fi]->component_counts(v).vertices)
              << "vertex " << v;
        }
      }
      if (round % 5 == 4) {
        for (size_t fi = 0; fi < fs.size(); ++fi)
          ASSERT_EQ(fs[fi]->check_consistency(), "")
              << to_string(kSubs[fi]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CrossSubstrate,
    ::testing::Values(std::pair<unsigned, size_t>{1, 32},
                      std::pair<unsigned, size_t>{1, 256},
                      std::pair<unsigned, size_t>{2, 64},
                      std::pair<unsigned, size_t>{2, 256},
                      std::pair<unsigned, size_t>{0, 32},
                      std::pair<unsigned, size_t>{0, 64},
                      std::pair<unsigned, size_t>{0, 256}),
    [](const ::testing::TestParamInfo<std::pair<unsigned, size_t>>& info) {
      return "w" + workers_name(info.param.first) + "_b" +
             std::to_string(info.param.second);
    });

// ---------------------------------------------------------------------
// End-to-end differential: batch_dynamic_connectivity under every
// uniform substrate plus the mixed per-level policy, on one identical
// insert/delete/query stream WITH non-tree edges — so replacement
// searches, level pushes, and promotions all hit every backend. The
// oracle is a union-find rebuilt from scratch each round.
// ---------------------------------------------------------------------

class BdcDifferential
    : public ::testing::TestWithParam<std::pair<unsigned, size_t>> {};

TEST_P(BdcDifferential, EndToEndMixedStream) {
  const auto [workers, batch] = GetParam();
  worker_pool_guard pool(workers);
  const vertex_id n = n_for_batch(batch) / 2;
  const int rounds = fuzz_rounds();
  for (int s = 0; s < fuzz_seeds(); ++s) {
    uint64_t seed = hash_combine(workers * 613 + 5, batch * 89 + 17) +
                    static_cast<uint64_t>(s);
    SCOPED_TRACE("repro: bdc workers=" + workers_name(workers) +
                 " batch=" + std::to_string(batch) + " seed_index=" +
                 std::to_string(s) + " stream_seed=" + std::to_string(seed) +
                 " (widen with BDC_FUZZ_SEEDS / BDC_FUZZ_ROUNDS)");
    std::vector<std::unique_ptr<batch_dynamic_connectivity>> dcs;
    for (size_t ci = 0; ci < std::size(kSubConfigs); ++ci) {
      options o;
      o.seed = seed ^ (0x100 + ci);
      o = kSubConfigs[ci].apply(o);
      dcs.push_back(std::make_unique<batch_dynamic_connectivity>(n, o));
    }
    random_stream rs(seed);
    std::set<std::pair<vertex_id, vertex_id>> present;
    for (int round = 0; round < rounds; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      // Insertion batch: arbitrary edges (non-tree edges arise freely),
      // plus deliberate garbage (duplicates, self loops).
      std::vector<edge> ins;
      size_t ni = 1 + static_cast<size_t>(rs.next(batch));
      for (size_t t = 0; t < ni; ++t) {
        vertex_id u = static_cast<vertex_id>(rs.next(n));
        vertex_id v = static_cast<vertex_id>(rs.next(n));
        ins.push_back({u, v});
        if (rs.next(8) == 0) ins.push_back({v, u});
      }
      for (auto& dc : dcs) dc->batch_insert(ins);
      for (auto e : ins)
        if (!e.is_self_loop())
          present.insert({e.canonical().u, e.canonical().v});

      // Deletion batch: a random subset of present edges (tree and
      // non-tree alike) plus a mostly-absent probe.
      if (round % 2 == 1) {
        std::vector<edge> del;
        for (auto& pe : present)
          if (rs.next(100) < 35) del.push_back({pe.first, pe.second});
        del.push_back({static_cast<vertex_id>(rs.next(n)),
                       static_cast<vertex_id>(rs.next(n))});
        for (auto& dc : dcs) dc->batch_delete(del);
        for (auto& e : del) present.erase({e.canonical().u, e.canonical().v});
      }

      // Oracle + cross-config agreement.
      union_find oracle(n);
      for (auto& pe : present) oracle.unite(pe.first, pe.second);
      std::vector<std::pair<vertex_id, vertex_id>> qs(2 * batch + 16);
      for (auto& q : qs)
        q = {static_cast<vertex_id>(rs.next(n)),
             static_cast<vertex_id>(rs.next(n))};
      for (size_t ci = 0; ci < dcs.size(); ++ci) {
        SCOPED_TRACE(kSubConfigs[ci].name);
        ASSERT_EQ(dcs[ci]->num_edges(), present.size());
        auto got = dcs[ci]->batch_connected(qs);
        for (size_t q = 0; q < qs.size(); ++q) {
          ASSERT_EQ(got[q], oracle.connected(qs[q].first, qs[q].second))
              << "query " << qs[q].first << "," << qs[q].second;
        }
      }
      if (round % 5 == 4 || round == rounds - 1) {
        for (size_t ci = 0; ci < dcs.size(); ++ci) {
          SCOPED_TRACE(kSubConfigs[ci].name);
          auto rep = dcs[ci]->check_invariants();
          ASSERT_TRUE(rep.ok) << rep.message;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BdcDifferential,
    ::testing::Values(std::pair<unsigned, size_t>{1, 16},
                      std::pair<unsigned, size_t>{1, 96},
                      std::pair<unsigned, size_t>{2, 48},
                      std::pair<unsigned, size_t>{0, 16},
                      std::pair<unsigned, size_t>{0, 96}),
    [](const ::testing::TestParamInfo<std::pair<unsigned, size_t>>& info) {
      return "w" + workers_name(info.param.first) + "_b" +
             std::to_string(info.param.second);
    });

}  // namespace
}  // namespace bdc
