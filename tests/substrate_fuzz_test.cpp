// Differential fuzz suite for the Euler-tour substrates.
//
// Long randomized mixed link/cut/count/query streams are driven directly
// against the ett_substrate surface and checked two independent ways:
//
//   * OracleLockstep — every round's query batch is verified against a
//     union-find oracle REBUILT from scratch from the current tree-edge
//     set, so an oracle bug cannot track a substrate bug.
//   * CrossSubstrate — the skip-list, treap, and blocked forests (which
//     share no code) replay identical batch streams and must agree on
//     every query, edge count, and component size.
//   * BdcDifferential — batch_dynamic_connectivity end-to-end (inserts
//     and deletes with non-tree edges, replacement searches, level
//     pushes) under every uniform substrate plus the mixed per-level
//     policy, in lockstep with a from-scratch union-find oracle. Every
//     config runs with the read service on, and after every committed
//     batch the incrementally published snapshot is compared against a
//     from-scratch components() walk. The adaptive engine_router rides
//     along as one more lockstep structure (with and without its query
//     memo), so its union-find epoch, one-shot promotion, and per-epoch
//     cache face the same adversarial streams as the fixed engines.
//
// The grid is {substrate} x {workers: 1, 2, hardware} x {batch size}, and
// every stream seed is a deterministic function of those parameters, so a
// failure's SCOPED_TRACE line is a one-line repro: rerun that exact test
// name. The sweep is widened in CI (and locally) through two environment
// knobs:
//
//   BDC_FUZZ_ROUNDS  rounds per stream        (default 25)
//   BDC_FUZZ_SEEDS   streams per parameter set (default 2)
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/batch_connectivity.hpp"
#include "core/engine_router.hpp"
#include "ett/ett_substrate.hpp"
#include "spanning/union_find.hpp"
#include "test_substrates.hpp"
#include "test_workers.hpp"
#include "util/random.hpp"

namespace bdc {
namespace {

using ::bdc::testing::kSubConfigs;
using ::bdc::testing::worker_pool_guard;
using ::bdc::testing::workers_name;

int env_knob(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  int parsed = std::atoi(v);
  return parsed > 0 ? parsed : fallback;
}

int fuzz_rounds() { return env_knob("BDC_FUZZ_ROUNDS", 25); }
int fuzz_seeds() { return env_knob("BDC_FUZZ_SEEDS", 2); }

struct fuzz_params {
  substrate sub;      // OracleLockstep only; CrossSubstrate drives both
  unsigned workers;   // 0 = the default (hardware) pool
  size_t batch;
};

// One mutation/query round state: the present tree edges plus generators.
struct stream_state {
  vertex_id n;
  random_stream rs;
  std::set<std::pair<vertex_id, vertex_id>> present;

  explicit stream_state(vertex_id n_, uint64_t seed) : n(n_), rs(seed) {}

  // A batch of links that is acyclic against the current forest AND within
  // itself, never already present, no self loops — the batch_link
  // preconditions the level structure guarantees in production.
  std::vector<edge> next_links(size_t want) {
    union_find acyclic(n);
    for (const auto& pe : present) acyclic.unite(pe.first, pe.second);
    std::vector<edge> links;
    for (size_t t = 0; t < 20 * want && links.size() < want; ++t) {
      vertex_id u = static_cast<vertex_id>(rs.next(n));
      vertex_id v = static_cast<vertex_id>(rs.next(n));
      if (u == v || !acyclic.unite(u, v)) continue;
      links.push_back({u, v});
      present.insert({edge{u, v}.canonical().u, edge{u, v}.canonical().v});
    }
    return links;
  }

  // A batch of distinct present tree edges (partial Fisher–Yates sample).
  std::vector<edge> next_cuts(size_t want) {
    std::vector<std::pair<vertex_id, vertex_id>> pool(present.begin(),
                                                      present.end());
    size_t take = std::min(want, pool.size());
    std::vector<edge> cuts;
    for (size_t i = 0; i < take; ++i) {
      size_t j = i + static_cast<size_t>(rs.next(pool.size() - i));
      std::swap(pool[i], pool[j]);
      cuts.push_back({pool[i].first, pool[i].second});
      present.erase(pool[i]);
    }
    return cuts;
  }

  std::vector<std::pair<vertex_id, vertex_id>> next_queries(size_t count) {
    std::vector<std::pair<vertex_id, vertex_id>> qs(count);
    for (auto& q : qs)
      q = {static_cast<vertex_id>(rs.next(n)),
           static_cast<vertex_id>(rs.next(n))};
    return qs;
  }
};

vertex_id n_for_batch(size_t batch) {
  size_t n = 8 * batch;
  return static_cast<vertex_id>(std::min<size_t>(std::max<size_t>(n, 128),
                                                 4096));
}

// ---------------------------------------------------------------------
// Union-find rebuild oracle.
// ---------------------------------------------------------------------

class OracleLockstep : public ::testing::TestWithParam<fuzz_params> {};

TEST_P(OracleLockstep, MixedStream) {
  const fuzz_params p = GetParam();
  worker_pool_guard pool(p.workers);
  const vertex_id n = n_for_batch(p.batch);
  const int rounds = fuzz_rounds();
  for (int s = 0; s < fuzz_seeds(); ++s) {
    uint64_t seed = hash_combine(
        hash_combine(static_cast<uint64_t>(p.sub) + 1, p.workers * 131 + 7),
        p.batch * 1009 + static_cast<uint64_t>(s));
    SCOPED_TRACE("repro: substrate=" + std::string(to_string(p.sub)) +
                 " workers=" + workers_name(p.workers) +
                 " batch=" + std::to_string(p.batch) +
                 " seed_index=" + std::to_string(s) + " stream_seed=" +
                 std::to_string(seed) +
                 " (widen with BDC_FUZZ_SEEDS / BDC_FUZZ_ROUNDS)");
    auto f = make_ett(p.sub, n, seed ^ 0x5eed);
    stream_state st(n, seed);
    for (int round = 0; round < rounds; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      // Mutate: a link batch, then (on alternating rounds, so the forest
      // grows as well as churns) a cut batch.
      auto links = st.next_links(1 + st.rs.next(p.batch));
      f->batch_link(links);
      ASSERT_EQ(f->check_consistency(), "") << "after batch_link";
      if (round % 2 == 1) {
        auto cuts = st.next_cuts(1 + st.rs.next(p.batch));
        f->batch_cut(cuts);
        ASSERT_EQ(f->check_consistency(), "") << "after batch_cut";
      }
      ASSERT_EQ(f->num_edges(), st.present.size());

      // Counter churn: push per-vertex non-tree counts up, verify the
      // component sums and the fetch contract, then restore to zero.
      std::vector<ett_substrate::count_delta> up;
      for (vertex_id v = 0; v < n; v += 1 + n / 64) up.push_back({v, 0, 3});
      f->batch_add_counts(up);
      ASSERT_EQ(f->check_consistency(), "") << "after batch_add_counts";

      // Oracle rebuilt from scratch: query agreement + component sizes.
      union_find oracle(n);
      for (const auto& pe : st.present) oracle.unite(pe.first, pe.second);
      auto qs = st.next_queries(2 * p.batch + 16);
      auto got = f->batch_connected(qs);
      for (size_t q = 0; q < qs.size(); ++q) {
        ASSERT_EQ(got[q], oracle.connected(qs[q].first, qs[q].second))
            << "query " << qs[q].first << "," << qs[q].second;
      }
      std::vector<uint32_t> comp_size(n, 0);
      for (vertex_id v = 0; v < n; ++v) ++comp_size[oracle.find(v)];
      for (int probe = 0; probe < 8; ++probe) {
        vertex_id v = static_cast<vertex_id>(st.rs.next(n));
        auto cc = f->component_counts(v);
        ASSERT_EQ(cc.vertices, comp_size[oracle.find(v)]) << "vertex " << v;
        // Every sampled vertex in this component contributes 3 non-tree
        // slots; fetch must surface exactly min(want, total).
        auto fetched = f->fetch_nontree(v, cc.nontree_edges + 10);
        uint64_t sum = 0;
        for (const auto& [x, take] : fetched) {
          ASSERT_TRUE(oracle.connected(v, x));
          sum += take;
        }
        ASSERT_EQ(sum, cc.nontree_edges);
      }
      for (auto& d : up) d.nontree_delta = -d.nontree_delta;
      f->batch_add_counts(up);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OracleLockstep,
    ::testing::Values(
        fuzz_params{substrate::skiplist, 1, 4},
        fuzz_params{substrate::skiplist, 1, 64},
        fuzz_params{substrate::skiplist, 2, 32},
        fuzz_params{substrate::skiplist, 2, 256},
        fuzz_params{substrate::skiplist, 0, 64},
        fuzz_params{substrate::skiplist, 0, 256},
        fuzz_params{substrate::treap, 1, 4},
        fuzz_params{substrate::treap, 1, 64},
        fuzz_params{substrate::treap, 2, 32},
        fuzz_params{substrate::treap, 2, 256},
        fuzz_params{substrate::treap, 0, 64},
        fuzz_params{substrate::treap, 0, 256},
        fuzz_params{substrate::blocked, 1, 4},
        fuzz_params{substrate::blocked, 1, 64},
        fuzz_params{substrate::blocked, 2, 32},
        fuzz_params{substrate::blocked, 2, 256},
        fuzz_params{substrate::blocked, 0, 64},
        fuzz_params{substrate::blocked, 0, 256}),
    [](const ::testing::TestParamInfo<fuzz_params>& info) {
      return std::string(to_string(info.param.sub)) + "_w" +
             workers_name(info.param.workers) + "_b" +
             std::to_string(info.param.batch);
    });

// ---------------------------------------------------------------------
// Cross-substrate differential: skiplist vs treap vs blocked on
// identical streams. The three forests share no code, so any divergence
// pins a bug on one of them.
// ---------------------------------------------------------------------

class CrossSubstrate
    : public ::testing::TestWithParam<std::pair<unsigned, size_t>> {};

TEST_P(CrossSubstrate, IdenticalStreams) {
  const auto [workers, batch] = GetParam();
  worker_pool_guard pool(workers);
  const vertex_id n = n_for_batch(batch);
  const int rounds = fuzz_rounds();
  constexpr substrate kSubs[] = {substrate::skiplist, substrate::treap,
                                 substrate::blocked};
  for (int s = 0; s < fuzz_seeds(); ++s) {
    uint64_t seed = hash_combine(workers * 977 + 3, batch * 31 + 11) +
                    static_cast<uint64_t>(s);
    SCOPED_TRACE("repro: cross workers=" + workers_name(workers) +
                 " batch=" + std::to_string(batch) + " seed_index=" +
                 std::to_string(s) + " stream_seed=" + std::to_string(seed));
    std::vector<std::unique_ptr<ett_substrate>> fs;
    for (size_t i = 0; i < std::size(kSubs); ++i)
      fs.push_back(make_ett(kSubs[i], n, seed ^ (0xa + i)));
    stream_state st(n, seed);
    for (int round = 0; round < rounds; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      auto links = st.next_links(1 + st.rs.next(batch));
      for (auto& f : fs) f->batch_link(links);
      if (round % 2 == 1) {
        auto cuts = st.next_cuts(1 + st.rs.next(batch));
        for (auto& f : fs) f->batch_cut(cuts);
      }
      for (auto& f : fs) ASSERT_EQ(f->num_edges(), fs[0]->num_edges());
      auto qs = st.next_queries(2 * batch + 16);
      auto got_a = fs[0]->batch_connected(qs);
      for (size_t fi = 1; fi < fs.size(); ++fi) {
        SCOPED_TRACE(std::string("vs ") + to_string(kSubs[fi]));
        auto got_b = fs[fi]->batch_connected(qs);
        for (size_t q = 0; q < qs.size(); ++q) {
          ASSERT_EQ(got_a[q], got_b[q])
              << "query " << qs[q].first << "," << qs[q].second;
        }
        for (int probe = 0; probe < 8; ++probe) {
          vertex_id v = static_cast<vertex_id>(st.rs.next(n));
          ASSERT_EQ(fs[0]->component_counts(v).vertices,
                    fs[fi]->component_counts(v).vertices)
              << "vertex " << v;
        }
      }
      if (round % 5 == 4) {
        for (size_t fi = 0; fi < fs.size(); ++fi)
          ASSERT_EQ(fs[fi]->check_consistency(), "")
              << to_string(kSubs[fi]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CrossSubstrate,
    ::testing::Values(std::pair<unsigned, size_t>{1, 32},
                      std::pair<unsigned, size_t>{1, 256},
                      std::pair<unsigned, size_t>{2, 64},
                      std::pair<unsigned, size_t>{2, 256},
                      std::pair<unsigned, size_t>{0, 32},
                      std::pair<unsigned, size_t>{0, 64},
                      std::pair<unsigned, size_t>{0, 256}),
    [](const ::testing::TestParamInfo<std::pair<unsigned, size_t>>& info) {
      return "w" + workers_name(info.param.first) + "_b" +
             std::to_string(info.param.second);
    });

// ---------------------------------------------------------------------
// End-to-end differential: batch_dynamic_connectivity under every
// uniform substrate plus the mixed per-level policy (each in both
// dispatch modes), on one identical insert/delete/query stream WITH
// non-tree edges — so replacement searches, level pushes, and promotions
// all hit every backend. The oracle is a union-find rebuilt from scratch
// each round.
//
// The stream is materialized up front (its generation never depends on
// structure responses), so when a run trips, the failing batch list is
// DELTA-DEBUGGED to a minimal repro — first bisecting away whole
// batches, then ops within the surviving batches — and printed in the
// stream-file format stream_runner replays (the repro recipe format the
// README documents).
// ---------------------------------------------------------------------

struct bdc_batch {
  enum class kind : uint8_t { insert, erase, query };
  kind op;
  std::vector<edge> edges;                                // insert/erase
  std::vector<std::pair<vertex_id, vertex_id>> queries;   // query
};
using bdc_stream = std::vector<bdc_batch>;

bdc_stream make_bdc_stream(vertex_id n, uint64_t seed, size_t batch,
                           int rounds) {
  random_stream rs(seed);
  std::set<std::pair<vertex_id, vertex_id>> present;
  bdc_stream stream;
  for (int round = 0; round < rounds; ++round) {
    // Insertion batch: arbitrary edges (non-tree edges arise freely),
    // plus deliberate garbage (duplicates, self loops).
    bdc_batch ins{bdc_batch::kind::insert, {}, {}};
    size_t ni = 1 + static_cast<size_t>(rs.next(batch));
    for (size_t t = 0; t < ni; ++t) {
      vertex_id u = static_cast<vertex_id>(rs.next(n));
      vertex_id v = static_cast<vertex_id>(rs.next(n));
      ins.edges.push_back({u, v});
      if (rs.next(8) == 0) ins.edges.push_back({v, u});
    }
    for (auto e : ins.edges)
      if (!e.is_self_loop())
        present.insert({e.canonical().u, e.canonical().v});
    stream.push_back(std::move(ins));

    // Deletion batch: a random subset of present edges (tree and
    // non-tree alike) plus a mostly-absent probe.
    if (round % 2 == 1) {
      bdc_batch del{bdc_batch::kind::erase, {}, {}};
      for (auto& pe : present)
        if (rs.next(100) < 35) del.edges.push_back({pe.first, pe.second});
      del.edges.push_back({static_cast<vertex_id>(rs.next(n)),
                           static_cast<vertex_id>(rs.next(n))});
      for (auto& e : del.edges)
        present.erase({e.canonical().u, e.canonical().v});
      stream.push_back(std::move(del));
    }

    bdc_batch qry{bdc_batch::kind::query, {}, {}};
    qry.queries.resize(2 * batch + 16);
    for (auto& q : qry.queries)
      q = {static_cast<vertex_id>(rs.next(n)),
           static_cast<vertex_id>(rs.next(n))};
    stream.push_back(std::move(qry));
  }
  return stream;
}

/// Replays `stream` under every kSubConfigs configuration in lockstep
/// with a from-scratch union-find oracle. Returns "" when clean, else a
/// description of the first divergence. `thorough` validates invariants
/// after every batch (used while minimizing, so the repro shrinks to the
/// earliest corrupting batch rather than the query that noticed it);
/// the wide sweep checks every 5th round like before.
std::string replay_bdc(vertex_id n, uint64_t seed, const bdc_stream& stream,
                       bool thorough) {
  std::vector<std::unique_ptr<batch_dynamic_connectivity>> dcs;
  for (size_t ci = 0; ci < std::size(kSubConfigs); ++ci) {
    options o;
    o.seed = seed ^ (0x100 + ci);
    o = kSubConfigs[ci].apply(o);
    // Every config also runs the read service, so each committed batch
    // exercises the incremental snapshot publisher.
    o.concurrent_reads = true;
    dcs.push_back(std::make_unique<batch_dynamic_connectivity>(n, o));
  }
  // The adaptive router replays the same stream, once per memo setting.
  // Its promoted engine uses the first kSubConfigs entry's options so a
  // divergence still pins a config.
  std::vector<std::unique_ptr<engine_router>> routers;
  for (bool cache : {true, false}) {
    router_options ro;
    ro.dynamic_opts.seed = seed ^ (cache ? 0x200 : 0x201);
    ro.dynamic_opts = kSubConfigs[0].apply(ro.dynamic_opts);
    ro.cache_queries = cache;
    routers.push_back(std::make_unique<engine_router>(n, ro));
  }
  auto router_name = [](size_t ri) {
    return std::string(ri == 0 ? "router(cache)" : "router(nocache)");
  };
  std::set<std::pair<vertex_id, vertex_id>> present;
  auto check_all = [&](size_t bi) -> std::string {
    for (size_t ci = 0; ci < dcs.size(); ++ci) {
      if (dcs[ci]->num_edges() != present.size())
        return std::string(kSubConfigs[ci].name) + ": edge count " +
               std::to_string(dcs[ci]->num_edges()) + " != oracle " +
               std::to_string(present.size()) + " after batch " +
               std::to_string(bi);
      auto rep = dcs[ci]->check_invariants();
      if (!rep.ok)
        return std::string(kSubConfigs[ci].name) + ": " + rep.message +
               " after batch " + std::to_string(bi);
    }
    for (size_t ri = 0; ri < routers.size(); ++ri) {
      if (routers[ri]->num_edges() != present.size())
        return router_name(ri) + ": edge count " +
               std::to_string(routers[ri]->num_edges()) + " != oracle " +
               std::to_string(present.size()) + " after batch " +
               std::to_string(bi);
      const auto& rs = routers[ri]->stats();
      if (rs.promotions > 1)
        return router_name(ri) + ": promoted " +
               std::to_string(rs.promotions) + " times (must be one-shot)";
    }
    return "";
  };
  // The incremental publisher's differential: after EVERY committed
  // batch, the published snapshot's labels must equal a from-scratch
  // components() walk. A divergence here means the touched-seed
  // collection missed a component whose membership changed.
  auto check_snapshots = [&](size_t bi) -> std::string {
    for (size_t ci = 0; ci < dcs.size(); ++ci) {
      auto view = dcs[ci]->snapshot_query();
      if (view.components() != dcs[ci]->components())
        return std::string(kSubConfigs[ci].name) +
               ": published snapshot labels diverge from a from-scratch "
               "components() walk after batch " +
               std::to_string(bi);
    }
    return "";
  };
  for (size_t bi = 0; bi < stream.size(); ++bi) {
    const bdc_batch& b = stream[bi];
    switch (b.op) {
      case bdc_batch::kind::insert:
        for (auto& dc : dcs) dc->batch_insert(b.edges);
        for (auto& r : routers) r->batch_insert(b.edges);
        for (auto e : b.edges)
          if (!e.is_self_loop() && e.u < n && e.v < n)
            present.insert({e.canonical().u, e.canonical().v});
        if (auto err = check_snapshots(bi); !err.empty()) return err;
        break;
      case bdc_batch::kind::erase:
        for (auto& dc : dcs) dc->batch_delete(b.edges);
        for (auto& r : routers) r->batch_delete(b.edges);
        for (auto& e : b.edges)
          present.erase({e.canonical().u, e.canonical().v});
        if (auto err = check_snapshots(bi); !err.empty()) return err;
        break;
      case bdc_batch::kind::query: {
        union_find oracle(n);
        for (auto& pe : present) oracle.unite(pe.first, pe.second);
        auto check_queries =
            [&](const std::vector<bool>& got,
                const std::string& who) -> std::string {
          for (size_t q = 0; q < b.queries.size(); ++q) {
            bool want =
                oracle.connected(b.queries[q].first, b.queries[q].second);
            if (got[q] != want)
              return who + ": query (" +
                     std::to_string(b.queries[q].first) + "," +
                     std::to_string(b.queries[q].second) + ") -> " +
                     (got[q] ? "true" : "false") + ", oracle says " +
                     (want ? "true" : "false") + " at batch " +
                     std::to_string(bi);
          }
          return "";
        };
        for (size_t ci = 0; ci < dcs.size(); ++ci) {
          auto err = check_queries(dcs[ci]->batch_connected(b.queries),
                                   kSubConfigs[ci].name);
          if (!err.empty()) return err;
        }
        for (size_t ri = 0; ri < routers.size(); ++ri) {
          auto err = check_queries(routers[ri]->batch_connected(b.queries),
                                   router_name(ri));
          if (!err.empty()) return err;
        }
        break;
      }
    }
    if (thorough || (bi % 10 == 9) || bi == stream.size() - 1) {
      if (auto err = check_all(bi); !err.empty()) return err;
    }
  }
  return "";
}

// ---------------------------------------------------------------------
// Delta debugging (ddmin-style): repeatedly try dropping chunks of the
// item list, halving the chunk size, until no single item can go.
// `fails(candidate)` must be deterministic.
// ---------------------------------------------------------------------

template <typename T, typename Fails>
std::vector<T> ddmin(std::vector<T> items, const Fails& fails) {
  size_t chunk = std::max<size_t>(1, items.size() / 2);
  while (true) {
    bool removed = false;
    for (size_t start = 0; start < items.size() && items.size() > 1;) {
      size_t end = std::min(items.size(), start + chunk);
      std::vector<T> cand;
      cand.reserve(items.size() - (end - start));
      cand.insert(cand.end(), items.begin(),
                  items.begin() + static_cast<ptrdiff_t>(start));
      cand.insert(cand.end(), items.begin() + static_cast<ptrdiff_t>(end),
                  items.end());
      if (!cand.empty() && fails(cand)) {
        items = std::move(cand);
        removed = true;  // the next chunk slid into `start`
      } else {
        start = end;
      }
    }
    if (chunk > 1) {
      chunk /= 2;
    } else if (!removed) {
      break;  // fixpoint at single-item granularity
    }
  }
  return items;
}

/// Shrinks a failing stream: bisect the batch list first, then the ops
/// inside each surviving batch.
bdc_stream minimize_bdc_stream(
    bdc_stream stream,
    const std::function<bool(const bdc_stream&)>& fails) {
  stream = ddmin(std::move(stream), fails);
  for (size_t bi = 0; bi < stream.size(); ++bi) {
    if (stream[bi].op == bdc_batch::kind::query) {
      stream[bi].queries = ddmin(
          stream[bi].queries,
          [&](const std::vector<std::pair<vertex_id, vertex_id>>& qs) {
            bdc_stream cand = stream;
            cand[bi].queries = qs;
            return fails(cand);
          });
    } else {
      stream[bi].edges =
          ddmin(stream[bi].edges, [&](const std::vector<edge>& es) {
            bdc_stream cand = stream;
            cand[bi].edges = es;
            return fails(cand);
          });
    }
  }
  // One more batch-level pass: op-level shrinking often makes whole
  // batches droppable.
  return ddmin(std::move(stream), fails);
}

/// Prints a minimized stream in the stream_runner file format, ready to
/// save and replay: `stream_runner run --engine=dynamic repro.stream`.
void print_bdc_repro(vertex_id n, const bdc_stream& stream) {
  std::printf(
      "=== minimized repro (save as repro.stream; replay with\n"
      "    stream_runner run --engine=dynamic repro.stream) ===\n");
  std::printf("n %u\n", n);
  for (const bdc_batch& b : stream) {
    switch (b.op) {
      case bdc_batch::kind::insert:
      case bdc_batch::kind::erase:
        std::printf("%c", b.op == bdc_batch::kind::insert ? 'I' : 'D');
        for (const edge& e : b.edges) std::printf(" %u %u", e.u, e.v);
        break;
      case bdc_batch::kind::query:
        std::printf("Q");
        for (auto& [u, v] : b.queries) std::printf(" %u %u", u, v);
        break;
    }
    std::printf("\n");
  }
  std::printf("=== end minimized repro ===\n");
}

// ---------------------------------------------------------------------
// The minimizer machinery itself is unit-tested with synthetic failure
// predicates (a real structure divergence would need a planted bug).
// ---------------------------------------------------------------------

TEST(DeltaDebug, DdminShrinksToCore) {
  // "Fails" iff the list still holds both 3 and 7: the 1-minimal result
  // is exactly {3, 7}, order preserved.
  std::vector<int> items = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto fails = [](const std::vector<int>& v) {
    bool a = false, b = false;
    for (int x : v) {
      a |= (x == 3);
      b |= (x == 7);
    }
    return a && b;
  };
  EXPECT_EQ(ddmin(items, fails), (std::vector<int>{3, 7}));
  // A single-item core shrinks to one element.
  auto has5 = [](const std::vector<int>& v) {
    for (int x : v)
      if (x == 5) return true;
    return false;
  };
  EXPECT_EQ(ddmin(items, has5), (std::vector<int>{5}));
}

TEST(DeltaDebug, MinimizerShrinksStreamsBatchAndOpLevel) {
  // Synthetic trigger: the stream fails iff some insert batch still
  // carries edge (1,2) AND some query batch still carries query (1,2).
  // Minimal: two batches of one op each, order preserved.
  bdc_stream stream = make_bdc_stream(64, 0x5eed, 8, 6);
  stream[1].op = bdc_batch::kind::insert;
  stream[1].queries.clear();
  stream[1].edges = {{9, 10}, {1, 2}, {11, 12}};
  bool planted_query = false;
  for (auto& b : stream) {
    if (b.op == bdc_batch::kind::query && !planted_query) {
      b.queries.push_back({1, 2});
      planted_query = true;
    }
  }
  ASSERT_TRUE(planted_query);
  auto fails = [](const bdc_stream& s) {
    bool ins = false, qry = false;
    for (const bdc_batch& b : s) {
      if (b.op == bdc_batch::kind::insert) {
        for (const edge& e : b.edges) ins |= (e == edge{1, 2});
      } else if (b.op == bdc_batch::kind::query) {
        for (auto& q : b.queries)
          qry |= (q == std::pair<vertex_id, vertex_id>{1, 2});
      }
    }
    return ins && qry;
  };
  ASSERT_TRUE(fails(stream));
  bdc_stream minimal = minimize_bdc_stream(stream, fails);
  ASSERT_EQ(minimal.size(), 2u);
  EXPECT_EQ(minimal[0].op, bdc_batch::kind::insert);
  EXPECT_EQ(minimal[0].edges, (std::vector<edge>{{1, 2}}));
  EXPECT_EQ(minimal[1].op, bdc_batch::kind::query);
  ASSERT_EQ(minimal[1].queries.size(), 1u);
  EXPECT_EQ(minimal[1].queries[0],
            (std::pair<vertex_id, vertex_id>{1, 2}));
}

class BdcDifferential
    : public ::testing::TestWithParam<std::pair<unsigned, size_t>> {};

TEST_P(BdcDifferential, EndToEndMixedStream) {
  const auto [workers, batch] = GetParam();
  worker_pool_guard pool(workers);
  const vertex_id n = n_for_batch(batch) / 2;
  const int rounds = fuzz_rounds();
  for (int s = 0; s < fuzz_seeds(); ++s) {
    uint64_t seed = hash_combine(workers * 613 + 5, batch * 89 + 17) +
                    static_cast<uint64_t>(s);
    SCOPED_TRACE("repro: bdc workers=" + workers_name(workers) +
                 " batch=" + std::to_string(batch) + " seed_index=" +
                 std::to_string(s) + " stream_seed=" + std::to_string(seed) +
                 " (widen with BDC_FUZZ_SEEDS / BDC_FUZZ_ROUNDS)");
    bdc_stream stream = make_bdc_stream(n, seed, batch, rounds);
    std::string err = replay_bdc(n, seed, stream, /*thorough=*/false);
    if (err.empty()) continue;
    // Trip: shrink the batch list to a minimal repro before failing, so
    // the nightly log carries a ready-to-replay stream file instead of
    // only a seed.
    auto fails = [&](const bdc_stream& cand) {
      return !replay_bdc(n, seed, cand, /*thorough=*/true).empty();
    };
    bdc_stream minimal = minimize_bdc_stream(stream, fails);
    print_bdc_repro(n, minimal);
    std::string minimal_err = replay_bdc(n, seed, minimal, true);
    FAIL() << err << "\nminimized to " << minimal.size()
           << " batches (printed above), failing with: " << minimal_err;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BdcDifferential,
    ::testing::Values(std::pair<unsigned, size_t>{1, 16},
                      std::pair<unsigned, size_t>{1, 96},
                      std::pair<unsigned, size_t>{2, 48},
                      std::pair<unsigned, size_t>{2, 192},
                      std::pair<unsigned, size_t>{0, 16},
                      std::pair<unsigned, size_t>{0, 48},
                      std::pair<unsigned, size_t>{0, 96}),
    [](const ::testing::TestParamInfo<std::pair<unsigned, size_t>>& info) {
      return "w" + workers_name(info.param.first) + "_b" +
             std::to_string(info.param.second);
    });

}  // namespace
}  // namespace bdc
