// Unit suite for the epoch-based reclamation layer (util/epoch.hpp) and
// the node_pool limbo / partial-trim paths it unlocks
// (util/node_pool.hpp). The cross-structure concurrent serving tests live
// in concurrent_query_test.cpp; this file pins down the manager's small
// state machine: pin/advance/limbo-drain interleavings, nested guards,
// the >kMaxReaders overflow fallback, and the per-block live counts that
// let trim_partial() release fully-dead blocks.
#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "util/epoch.hpp"
#include "util/node_pool.hpp"

namespace bdc {
namespace {

// ---------------------------------------------------------------------
// epoch_manager
// ---------------------------------------------------------------------

TEST(Epoch, PinTracksCurrentEpoch) {
  epoch_manager em;
  EXPECT_EQ(em.current(), 1u);
  EXPECT_EQ(em.min_pinned(), epoch_manager::kNonePinned);
  {
    auto g = em.pin();
    EXPECT_TRUE(g.pinned());
    EXPECT_EQ(g.epoch(), 1u);
    EXPECT_EQ(em.min_pinned(), 1u);
  }
  EXPECT_EQ(em.min_pinned(), epoch_manager::kNonePinned);
}

TEST(Epoch, MinPinnedIsOldestLiveGuard) {
  epoch_manager em;
  auto g1 = em.pin();
  EXPECT_EQ(em.advance(), 2u);
  auto g2 = em.pin();
  EXPECT_EQ(g2.epoch(), 2u);
  EXPECT_EQ(em.min_pinned(), 1u);
  g1.release();
  EXPECT_EQ(em.min_pinned(), 2u);
  g1.release();  // idempotent
  EXPECT_EQ(em.min_pinned(), 2u);
  g2.release();
  EXPECT_EQ(em.min_pinned(), epoch_manager::kNonePinned);
}

TEST(Epoch, NestedGuardsProtectTheOldest) {
  epoch_manager em;
  auto outer = em.pin();
  em.advance();
  {
    auto inner = em.pin();
    EXPECT_EQ(inner.epoch(), 2u);
    // The inner guard must not weaken the outer pin.
    EXPECT_EQ(em.min_pinned(), 1u);
  }
  EXPECT_EQ(em.min_pinned(), 1u);
}

TEST(Epoch, DrainFreesOnlyWhatNoReaderCanObserve) {
  epoch_manager em;
  static std::atomic<int> freed{0};
  freed.store(0);
  auto del = [](void* p) {
    delete static_cast<int*>(p);
    freed.fetch_add(1);
  };
  auto reader = em.pin();  // epoch 1
  em.retire(new int(7), del);
  EXPECT_EQ(em.limbo_size(), 1u);
  // The entry is stamped with epoch 1; the reader pins 1, so 1 < 1 fails.
  EXPECT_EQ(em.drain(), 0u);
  em.advance();
  // Still pinned at 1 <= 1: not reclaimable even after the advance.
  EXPECT_EQ(em.drain(), 0u);
  reader.release();
  EXPECT_EQ(em.drain(), 1u);
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(em.limbo_size(), 0u);
}

TEST(Epoch, LaterReadersDoNotBlockOlderGarbage) {
  epoch_manager em;
  static std::atomic<int> freed{0};
  freed.store(0);
  auto del = [](void* p) {
    delete static_cast<int*>(p);
    freed.fetch_add(1);
  };
  em.retire(new int(1), del);  // stamped epoch 1
  em.advance();                // now 2
  auto late = em.pin();        // pins 2
  // 1 < 2: the late reader cannot have seen the epoch-1 pointer.
  EXPECT_EQ(em.drain(), 1u);
  EXPECT_EQ(freed.load(), 1);
}

TEST(Epoch, DestructorReclaimsRemainingLimbo) {
  static std::atomic<int> freed{0};
  freed.store(0);
  {
    epoch_manager em;
    em.retire(new int(1),
              [](void* p) { delete static_cast<int*>(p); freed.fetch_add(1); });
    em.retire(new int(2),
              [](void* p) { delete static_cast<int*>(p); freed.fetch_add(1); });
  }
  EXPECT_EQ(freed.load(), 2);
}

TEST(Epoch, OverflowBeyondSlotCountStaysCorrect) {
  epoch_manager em;
  std::vector<epoch_manager::reader_guard> guards;
  guards.reserve(epoch_manager::kMaxReaders + 8);
  for (unsigned i = 0; i < epoch_manager::kMaxReaders + 8; ++i)
    guards.push_back(em.pin());
  EXPECT_EQ(em.min_pinned(), 1u);
  em.advance();
  auto late = em.pin();  // also overflow; epoch 2
  EXPECT_EQ(late.epoch(), 2u);
  EXPECT_EQ(em.min_pinned(), 1u);
  // Release every epoch-1 guard; only the overflow epoch-2 pin remains.
  guards.clear();
  EXPECT_EQ(em.min_pinned(), 2u);
  late.release();
  EXPECT_EQ(em.min_pinned(), epoch_manager::kNonePinned);
  // Slots are reusable after the storm.
  auto again = em.pin();
  EXPECT_EQ(again.epoch(), 2u);
}

TEST(Epoch, WriterFlag) {
  epoch_manager em;
  EXPECT_FALSE(em.writers_active());
  em.begin_write();
  EXPECT_TRUE(em.writers_active());
  em.end_write();
  EXPECT_FALSE(em.writers_active());
}

TEST(Epoch, MoveTransfersThePin) {
  epoch_manager em;
  auto g1 = em.pin();
  auto g2 = std::move(g1);
  EXPECT_FALSE(g1.pinned());  // NOLINT(bugprone-use-after-move): asserting it
  EXPECT_TRUE(g2.pinned());
  EXPECT_EQ(em.min_pinned(), 1u);
  g2.release();
  EXPECT_EQ(em.min_pinned(), epoch_manager::kNonePinned);
}

// Readers pin/unpin from plain threads while a writer advances, retires,
// and drains. Run under TSan, this exercises the seq_cst announce/validate
// protocol; on any build it checks that nothing is freed early (each
// retired cell is poisoned by its deleter and readers assert they never
// observe poison through a pinned load).
TEST(Epoch, ConcurrentPinAdvanceDrainSmoke) {
  epoch_manager em;
  constexpr int kReaders = 4;
  constexpr int kRounds = 300;
  // One shared published cell, versioned like a tiny read path.
  struct cell {
    std::atomic<uint64_t> value;
  };
  std::atomic<cell*> published{new cell{{1}}};
  static std::atomic<int> freed{0};
  freed.store(0);
  auto del = [](void* p) {
    static_cast<cell*>(p)->value.store(0, std::memory_order_relaxed);
    delete static_cast<cell*>(p);
    freed.fetch_add(1);
  };
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto g = em.pin();
        cell* c = published.load(std::memory_order_acquire);
        // The pin must keep the cell alive: value stays nonzero.
        ASSERT_NE(c->value.load(std::memory_order_relaxed), 0u);
      }
    });
  }
  for (int r = 0; r < kRounds; ++r) {
    cell* fresh = new cell{{static_cast<uint64_t>(r + 2)}};
    cell* old = published.exchange(fresh, std::memory_order_acq_rel);
    em.retire(old, del);
    em.advance();
    em.drain();
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  em.drain();
  EXPECT_EQ(freed.load(), kRounds);
  delete published.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// node_pool: epoch-deferred reclaim and per-block live counts
// ---------------------------------------------------------------------

TEST(NodePoolEpoch, ReclaimWithoutEpochsFreesImmediately) {
  node_pool pool;
  void* p = pool.allocate(64);
  pool.reclaim(p, 64);
  auto s = pool.stats();
  EXPECT_EQ(s.limbo, 0u);
  EXPECT_EQ(s.freed, 1u);
  EXPECT_EQ(s.outstanding(), 0u);
}

TEST(NodePoolEpoch, ReclaimDefersUntilReadersPass) {
  epoch_manager em;
  node_pool pool;
  pool.bind_epochs(&em);
  EXPECT_TRUE(pool.deferred());

  void* p = pool.allocate(64);
  auto reader = em.pin();
  pool.reclaim(p, 64);
  auto s = pool.stats();
  EXPECT_EQ(s.limbo, 1u);
  EXPECT_EQ(s.freed, 0u);
  EXPECT_EQ(s.outstanding(), 1u);  // limbo counts as outstanding

  // Reader pinned at the retire epoch: nothing may drain.
  EXPECT_EQ(pool.drain_limbo(), 0u);
  em.advance();
  EXPECT_EQ(pool.drain_limbo(), 0u);

  reader.release();
  EXPECT_EQ(pool.drain_limbo(), 1u);
  s = pool.stats();
  EXPECT_EQ(s.limbo, 0u);
  EXPECT_EQ(s.freed, 1u);
  EXPECT_EQ(s.outstanding(), 0u);

  // The drained node went back onto a freelist: same-class allocation
  // recycles it.
  void* q = pool.allocate(64);
  EXPECT_EQ(q, p);
  EXPECT_EQ(pool.stats().recycled, 1u);
  pool.deallocate(q, 64);
  pool.drain_limbo();
  pool.bind_epochs(nullptr);  // limbo empty: unbinding is legal again
  EXPECT_FALSE(pool.deferred());
}

TEST(NodePoolEpoch, TrimPartialReleasesOnlyDeadBlocks) {
  node_pool pool;
  // ~1023 64-byte nodes fit one block; carve three blocks' worth.
  constexpr size_t kBytes = 64;
  const size_t per_block = (node_pool::kBlockBytes - 64) / kBytes;
  const size_t total = 3 * per_block;
  std::vector<void*> nodes(total);
  for (size_t i = 0; i < total; ++i) nodes[i] = pool.allocate(kBytes);
  auto before = pool.stats();
  EXPECT_GE(before.blocks, 3u);

  // Keep the very first node live; free everything else. The first block
  // then has live == 1, the middle block(s) live == 0, and the cursor
  // block is protected regardless.
  for (size_t i = 1; i < total; ++i) pool.deallocate(nodes[i], kBytes);
  size_t released = pool.trim_partial();
  EXPECT_GT(released, 0u);
  EXPECT_EQ(released % node_pool::kBlockBytes, 0u);
  auto after = pool.stats();
  EXPECT_GE(after.dead_block_trims, 1u);
  EXPECT_LT(after.blocks, before.blocks);
  EXPECT_EQ(after.outstanding(), 1u);

  // Freelists were purged of pointers into released blocks: allocating
  // again must hand out only safe memory (crash/ASan would catch a stale
  // entry) and the live node is untouched.
  std::vector<void*> again(per_block);
  for (size_t i = 0; i < per_block; ++i) again[i] = pool.allocate(kBytes);
  for (size_t i = 0; i < per_block; ++i) pool.deallocate(again[i], kBytes);
  pool.deallocate(nodes[0], kBytes);
  EXPECT_EQ(pool.stats().outstanding(), 0u);
}

TEST(NodePoolEpoch, LimboKeepsBlocksAliveUntilDrained) {
  epoch_manager em;
  node_pool pool;
  pool.bind_epochs(&em);
  constexpr size_t kBytes = 64;
  const size_t per_block = (node_pool::kBlockBytes - 64) / kBytes;
  const size_t total = 2 * per_block;
  std::vector<void*> nodes(total);
  for (size_t i = 0; i < total; ++i) nodes[i] = pool.allocate(kBytes);

  // A pinned reader parks every free in limbo: live counts stay positive,
  // so trim_partial must not release anything the reader could touch.
  auto reader = em.pin();
  for (void* p : nodes) pool.reclaim(p, kBytes);
  EXPECT_EQ(pool.stats().limbo, total);
  EXPECT_EQ(pool.trim_partial(), 0u);

  reader.release();
  em.advance();
  EXPECT_EQ(pool.drain_limbo(), total);
  // Now the non-cursor block really is dead.
  EXPECT_GT(pool.trim_partial(), 0u);
  EXPECT_EQ(pool.stats().limbo, 0u);
  pool.bind_epochs(nullptr);
}

TEST(NodePoolEpoch, TrimResetsSpareHeaderLiveCounts) {
  node_pool pool;
  constexpr size_t kBytes = 64;
  std::vector<void*> nodes(100);
  for (auto& p : nodes) p = pool.allocate(kBytes);
  for (void* p : nodes) pool.deallocate(p, kBytes);
  // Full trim keeping one block as a spare: its header live count must be
  // reset so a later carve/free cycle balances back to zero.
  pool.trim(node_pool::kBlockBytes);
  auto s = pool.stats();
  EXPECT_EQ(s.spare_blocks, s.blocks);
  for (auto& p : nodes) p = pool.allocate(kBytes);
  for (void* p : nodes) pool.deallocate(p, kBytes);
  EXPECT_GT(pool.trim_partial() + pool.trim(), 0u);
}

}  // namespace
}  // namespace bdc
