// Euler-tour substrate tests, value-parameterized over every backend
// (skip list, treap, blocked) crossed with both dispatch modes of the
// substrate layer (the devirtualized std::variant fast path and the
// ett_substrate virtual bridge): model-based randomized batches of
// links/cuts against a union-find oracle, augmentation counters, fetch
// primitives, and internal consistency after every batch. Every
// configuration must satisfy the identical forest contract — a dispatch
// mode is pure routing and must never change a single answer.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "ett/ett_forest.hpp"
#include "ett/ett_substrate.hpp"
#include "gen/graph_gen.hpp"
#include "spanning/union_find.hpp"
#include "test_substrates.hpp"
#include "util/random.hpp"

namespace bdc {
namespace {

using ::bdc::testing::ett_config;
using ::bdc::testing::kEttConfigs;

class EttSubstrate : public ::testing::TestWithParam<ett_config> {
 protected:
  [[nodiscard]] ett_forest make(vertex_id n,
                                uint64_t seed = 0xe77e77) const {
    return ett_forest(GetParam().sub, n, seed, GetParam().disp);
  }
};

std::string config_name(const ::testing::TestParamInfo<ett_config>& info) {
  return info.param.name;
}

TEST_P(EttSubstrate, EmptyForestBasics) {
  ett_forest f = make(10);
  EXPECT_EQ(f.num_vertices(), 10u);
  EXPECT_EQ(f.num_edges(), 0u);
  EXPECT_FALSE(f.connected(0, 1));
  EXPECT_TRUE(f.connected(3, 3));
  EXPECT_EQ(f.component_size(4), 1u);
  EXPECT_TRUE(f.check_consistency().empty());
}

TEST_P(EttSubstrate, DispatchModePinned) {
  ett_forest f = make(4);
  EXPECT_EQ(f.substrate_kind(), GetParam().sub);
  EXPECT_EQ(f.dispatch_kind(), GetParam().disp);
  // The bridge always exposes the same underlying forest.
  f.link({0, 1});
  EXPECT_TRUE(f.bridge().connected(0, 1));
  EXPECT_EQ(f.bridge().num_edges(), f.num_edges());
}

TEST_P(EttSubstrate, SingleLinkCut) {
  ett_forest f = make(4);
  f.link({0, 1});
  EXPECT_TRUE(f.connected(0, 1));
  EXPECT_TRUE(f.has_edge({1, 0}));
  EXPECT_EQ(f.component_size(0), 2u);
  EXPECT_TRUE(f.check_consistency().empty());
  f.cut({0, 1});
  EXPECT_FALSE(f.connected(0, 1));
  EXPECT_EQ(f.component_size(0), 1u);
  EXPECT_EQ(f.num_edges(), 0u);
  EXPECT_TRUE(f.check_consistency().empty());
}

TEST_P(EttSubstrate, LinkWholePathThenCutMiddle) {
  const vertex_id n = 64;
  ett_forest f = make(n);
  auto path = gen_path(n);
  f.batch_link(path);
  EXPECT_TRUE(f.connected(0, n - 1));
  EXPECT_EQ(f.component_size(17), n);
  f.cut({31, 32});
  EXPECT_FALSE(f.connected(0, n - 1));
  EXPECT_TRUE(f.connected(0, 31));
  EXPECT_TRUE(f.connected(32, n - 1));
  EXPECT_EQ(f.component_size(0), 32u);
  EXPECT_EQ(f.component_size(63), 32u);
  EXPECT_TRUE(f.check_consistency().empty());
}

TEST_P(EttSubstrate, StarBatchLink) {
  const vertex_id n = 100;
  ett_forest f = make(n);
  f.batch_link(gen_star(n));
  EXPECT_EQ(f.component_size(0), n);
  EXPECT_TRUE(f.check_consistency().empty());
  // Cut every other spoke in one batch.
  std::vector<edge> cuts;
  for (vertex_id i = 1; i < n; i += 2) cuts.push_back({0, i});
  f.batch_cut(cuts);
  for (vertex_id i = 1; i < n; ++i)
    EXPECT_EQ(f.connected(0, i), i % 2 == 0) << i;
  EXPECT_TRUE(f.check_consistency().empty());
}

TEST_P(EttSubstrate, CountsAndFetch) {
  ett_forest f = make(8);
  f.batch_link(gen_path(8));
  std::vector<ett_substrate::count_delta> deltas = {{2, 1, 3}, {5, 0, 2}};
  f.batch_add_counts(deltas);
  auto cc = f.component_counts(0);
  EXPECT_EQ(cc.vertices, 8u);
  EXPECT_EQ(cc.tree_edges, 1u);
  EXPECT_EQ(cc.nontree_edges, 5u);
  // Fetch should return slots summing to min(want, 5).
  for (uint64_t want : {1ul, 3ul, 5ul, 99ul}) {
    auto slots = f.fetch_nontree(4, want);
    uint64_t sum = 0;
    for (auto& [v, take] : slots) {
      EXPECT_TRUE(v == 2 || v == 5);
      sum += take;
    }
    EXPECT_EQ(sum, std::min<uint64_t>(want, 5));
  }
  auto tslots = f.fetch_tree(7, 10);
  ASSERT_EQ(tslots.size(), 1u);
  EXPECT_EQ(tslots[0].first, 2u);
  EXPECT_EQ(tslots[0].second, 1u);
  // Deltas can be negative.
  std::vector<ett_substrate::count_delta> down = {{2, -1, -3}, {5, 0, -2}};
  f.batch_add_counts(down);
  cc = f.component_counts(0);
  EXPECT_EQ(cc.tree_edges, 0u);
  EXPECT_EQ(cc.nontree_edges, 0u);
}

TEST_P(EttSubstrate, ComponentVerticesMatchesTour) {
  ett_forest f = make(10);
  f.batch_link(std::vector<edge>{{0, 1}, {1, 2}, {2, 3}});
  auto vs = f.component_vertices(2);
  std::set<vertex_id> got(vs.begin(), vs.end());
  EXPECT_EQ(got, (std::set<vertex_id>{0, 1, 2, 3}));
}

TEST_P(EttSubstrate, RelinkAfterCutSameBatchBoundary) {
  // Cut and relink the same edge repeatedly: exercises the pooled node
  // recycling paths (cut arcs must be reusable by the next link).
  ett_forest f = make(6);
  for (int i = 0; i < 50; ++i) {
    f.link({2, 4});
    ASSERT_TRUE(f.connected(2, 4));
    f.cut({2, 4});
    ASSERT_FALSE(f.connected(2, 4));
  }
  EXPECT_TRUE(f.check_consistency().empty());
}

TEST_P(EttSubstrate, HoistedVisitMatchesForwarders) {
  // The visit hook (one dispatch hoisted around a loop) must see exactly
  // the forest the per-call forwarders see.
  const vertex_id n = 32;
  ett_forest f = make(n);
  f.batch_link(gen_path(16));
  f.visit([&](auto& fc) {
    for (vertex_id v = 0; v + 1 < n; ++v) {
      ASSERT_EQ(fc.connected(v, v + 1), f.connected(v, v + 1)) << v;
      ASSERT_EQ(fc.find_rep(v), f.find_rep(v)) << v;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Substrates, EttSubstrate,
                         ::testing::ValuesIn(kEttConfigs), config_name);

class EttRandomSweep
    : public ::testing::TestWithParam<
          std::tuple<std::pair<int, int>, ett_config>> {};

TEST_P(EttRandomSweep, BatchesAgainstUnionFindOracle) {
  auto [trial_n, cfg] = GetParam();
  auto [trial, nn] = trial_n;
  const vertex_id n = static_cast<vertex_id>(nn);
  random_stream rs(trial * 131 + nn);
  ett_forest f(cfg.sub, n, 1000 + static_cast<uint64_t>(trial), cfg.disp);
  std::set<std::pair<vertex_id, vertex_id>> tree_edges;
  for (int round = 0; round < 25; ++round) {
    // Random batch of links among distinct components.
    union_find tmp(n);
    for (auto& te : tree_edges) tmp.unite(te.first, te.second);
    std::vector<edge> batch;
    int tries = 10 + static_cast<int>(rs.next(30));
    for (int t = 0; t < tries; ++t) {
      vertex_id u = static_cast<vertex_id>(rs.next(n));
      vertex_id v = static_cast<vertex_id>(rs.next(n));
      if (u == v) continue;
      if (tmp.unite(u, v)) batch.push_back({u, v});
    }
    f.batch_link(batch);
    for (auto e : batch)
      tree_edges.insert({e.canonical().u, e.canonical().v});
    ASSERT_TRUE(f.check_consistency().empty()) << "after link r" << round;

    // Random batch of cuts.
    std::vector<edge> cuts;
    for (auto& te : tree_edges)
      if (rs.next(3) == 0) cuts.push_back({te.first, te.second});
    f.batch_cut(cuts);
    for (auto& c : cuts)
      tree_edges.erase({c.canonical().u, c.canonical().v});
    ASSERT_TRUE(f.check_consistency().empty()) << "after cut r" << round;

    // Oracle comparison: connectivity, sizes, batch queries.
    union_find oracle(n);
    for (auto& te : tree_edges) oracle.unite(te.first, te.second);
    std::vector<std::pair<vertex_id, vertex_id>> qs;
    for (int q = 0; q < 60; ++q)
      qs.push_back({static_cast<vertex_id>(rs.next(n)),
                    static_cast<vertex_id>(rs.next(n))});
    auto got = f.batch_connected(qs);
    for (size_t q = 0; q < qs.size(); ++q)
      ASSERT_EQ(got[q], oracle.connected(qs[q].first, qs[q].second))
          << "round " << round;
    for (int q = 0; q < 8; ++q) {
      vertex_id u = static_cast<vertex_id>(rs.next(n));
      size_t sz = 0;
      for (vertex_id x = 0; x < n; ++x)
        if (oracle.connected(u, x)) sz++;
      ASSERT_EQ(f.component_size(u), sz) << "round " << round;
    }
    // Representative semantics.
    auto reps = f.batch_find_rep(std::vector<vertex_id>{0, n / 2, n - 1});
    EXPECT_EQ(reps[0] == reps[2], oracle.connected(0, n - 1));
  }
}

std::string sweep_name(
    const ::testing::TestParamInfo<
        std::tuple<std::pair<int, int>, ett_config>>& info) {
  const auto& trial_n = std::get<0>(info.param);
  return std::string(std::get<1>(info.param).name) + "_t" +
         std::to_string(trial_n.first) + "_n" +
         std::to_string(trial_n.second);
}

INSTANTIATE_TEST_SUITE_P(
    Trials, EttRandomSweep,
    ::testing::Combine(
        ::testing::Values(std::pair<int, int>{0, 2},
                          std::pair<int, int>{1, 3},
                          std::pair<int, int>{2, 16},
                          std::pair<int, int>{3, 100},
                          std::pair<int, int>{4, 100},
                          std::pair<int, int>{5, 400},
                          std::pair<int, int>{6, 1000}),
        ::testing::ValuesIn(kEttConfigs)),
    sweep_name);

}  // namespace
}  // namespace bdc
