// Augmented circular skip list tests: batch split/join against a circular
// sequence model, augmentation sums, representative stability, and the
// first-l collection primitive.
#include <gtest/gtest.h>

#include <list>
#include <numeric>
#include <vector>

#include "skiplist/augmented_skiplist.hpp"
#include "skiplist/skiplist_debug.hpp"
#include "util/random.hpp"

namespace bdc {
namespace {

using sl = augmented_skiplist<long>;
using node = sl::node;

struct fixture {
  sl list{123};
  std::vector<node*> nodes;

  ~fixture() {
    for (node* n : nodes) list.free_node(n);
  }
  node* add(long v) {
    nodes.push_back(list.create_node(nodes.size(), v));
    return nodes.back();
  }
};

std::vector<node*> circle_from(const sl& list, node* x) {
  return list.circle_of(x);
}

TEST(Skiplist, SingletonIsSelfCircle) {
  fixture f;
  node* a = f.add(5);
  EXPECT_EQ(a->next_at(0), a);
  EXPECT_EQ(a->prev_at(0), a);
  EXPECT_EQ(f.list.total(a), 5);
  EXPECT_EQ(f.list.representative(a), a);
}

TEST(Skiplist, JoinTwoSingletons) {
  fixture f;
  node* a = f.add(1);
  node* b = f.add(2);
  f.list.split_after(a);  // open a's self-circle
  f.list.split_after(b);
  std::vector<std::pair<node*, node*>> joins = {{a, b}, {b, a}};
  f.list.batch_join(joins);
  f.list.batch_repair({a, b});
  EXPECT_EQ(f.list.total(a), 3);
  EXPECT_EQ(circle_from(f.list, a).size(), 2u);
  EXPECT_EQ(f.list.representative(a), f.list.representative(b));
  EXPECT_TRUE(
      check_skiplist_circle<long>(a, std::equal_to<long>()).empty());
}

// Model-based randomized test: maintain a set of circular sequences as
// vectors; batch-split + batch-join random boundaries; compare sums and
// memberships.
class SkiplistRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(SkiplistRandomSweep, SplitJoinAgainstModel) {
  int trial = GetParam();
  random_stream rs(trial * 7919 + 13);
  fixture f;
  const size_t n = 80;
  for (size_t i = 0; i < n; ++i) f.add(static_cast<long>(rs.next(100)));

  // Model: ring as next-pointer map.
  std::vector<size_t> nxt(n), prv(n);
  std::iota(nxt.begin(), nxt.end(), 0);  // self circles
  std::iota(prv.begin(), prv.end(), 0);
  auto node_index = [&](node* x) { return static_cast<size_t>(x->tag); };

  for (int round = 0; round < 60; ++round) {
    // Pick random distinct cut points; sever after each; then re-join the
    // resulting open ends with a random matching that reconstitutes
    // circles (rotate the ends).
    size_t k = 1 + rs.next(8);
    std::vector<size_t> cuts;
    for (size_t i = 0; i < k; ++i) cuts.push_back(rs.next(n));
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

    std::vector<node*> cut_nodes;
    std::vector<size_t> heads;  // model successor of each cut point
    for (size_t c : cuts) {
      cut_nodes.push_back(f.nodes[c]);
      heads.push_back(nxt[c]);
    }
    f.list.batch_split_after(cut_nodes);

    // Re-join: tail i connects to head of a cyclic shift within the same
    // "piece group". Easiest valid re-closure: connect tail i to the head
    // that followed cut (i + shift) among cuts on the same original
    // circle. To keep the model simple we just re-join tail i -> heads[i]
    // (restoring) half the time, and otherwise rotate among all cuts that
    // belonged to the same circle.
    std::vector<std::pair<node*, node*>> joins;
    // Group cuts by the circle they belonged to (walk model).
    std::vector<int> group(cuts.size(), -1);
    int ng = 0;
    for (size_t i = 0; i < cuts.size(); ++i) {
      if (group[i] != -1) continue;
      // Walk the old circle from cuts[i] collecting members.
      group[i] = ng;
      size_t cur = nxt[cuts[i]];
      while (cur != cuts[i]) {
        for (size_t j = 0; j < cuts.size(); ++j)
          if (cuts[j] == cur) group[j] = ng;
        cur = nxt[cur];
      }
      ++ng;
    }
    bool rotate = rs.next(2) == 0;
    for (int g = 0; g < ng; ++g) {
      std::vector<size_t> members;
      for (size_t i = 0; i < cuts.size(); ++i)
        if (group[i] == g) members.push_back(i);
      for (size_t i = 0; i < members.size(); ++i) {
        size_t tail_i = members[i];
        size_t head_i = rotate ? members[(i + 1) % members.size()] : tail_i;
        joins.push_back({f.nodes[cuts[tail_i]],
                         f.nodes[heads[head_i]]});
        nxt[cuts[tail_i]] = heads[head_i];
        prv[heads[head_i]] = cuts[tail_i];
      }
    }
    f.list.batch_join(joins);
    std::vector<node*> dirty;
    for (auto& [t, h] : joins) {
      dirty.push_back(t);
      dirty.push_back(h);
    }
    // Random value updates too.
    size_t nv = rs.next(4);
    for (size_t i = 0; i < nv; ++i) {
      size_t v = rs.next(n);
      long val = static_cast<long>(rs.next(100));
      f.list.set_value(f.nodes[v], val);
      dirty.push_back(f.nodes[v]);
    }
    f.list.batch_repair(dirty);

    // Validate every circle against the model.
    std::vector<bool> seen(n, false);
    for (size_t s = 0; s < n; ++s) {
      if (seen[s]) continue;
      // Model circle from s.
      std::vector<size_t> model;
      size_t cur = s;
      do {
        model.push_back(cur);
        seen[cur] = true;
        cur = nxt[cur];
      } while (cur != s);
      auto circle = circle_from(f.list, f.nodes[s]);
      ASSERT_EQ(circle.size(), model.size()) << "round " << round;
      for (size_t i = 0; i < model.size(); ++i)
        ASSERT_EQ(node_index(circle[i]), model[i]) << "round " << round;
      long expect_sum = 0;
      for (size_t v : model) expect_sum += f.list.value(f.nodes[v]);
      ASSERT_EQ(f.list.total(f.nodes[s]), expect_sum) << "round " << round;
      ASSERT_TRUE(check_skiplist_circle<long>(f.nodes[s],
                                              std::equal_to<long>())
                      .empty())
          << "round " << round;
      // All members agree on the representative.
      node* rep = f.list.representative(f.nodes[s]);
      for (size_t v : model)
        ASSERT_EQ(f.list.representative(f.nodes[v]), rep);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Trials, SkiplistRandomSweep,
                         ::testing::Range(0, 8));

TEST(Skiplist, CollectFirstTakesInTourOrder) {
  fixture f;
  const size_t n = 50;
  std::vector<node*> ns;
  for (size_t i = 0; i < n; ++i) ns.push_back(f.add(i % 3 == 0 ? 2 : 0));
  // Chain into one circle.
  std::vector<node*> cuts(ns.begin(), ns.end());
  f.list.batch_split_after(cuts);
  std::vector<std::pair<node*, node*>> joins;
  for (size_t i = 0; i < n; ++i) joins.push_back({ns[i], ns[(i + 1) % n]});
  f.list.batch_join(joins);
  f.list.batch_repair(std::vector<node*>(ns.begin(), ns.end()));

  long total = f.list.total(ns[0]);
  for (uint64_t want : {1ul, 2ul, 5ul, 7ul, 1000ul}) {
    std::vector<std::pair<node*, uint64_t>> out;
    uint64_t got = f.list.collect_first(ns[0], want, [](long v) {
      return static_cast<uint64_t>(v);
    }, out);
    EXPECT_EQ(got, std::min<uint64_t>(want, static_cast<uint64_t>(total)));
    uint64_t sum = 0;
    for (auto& [nd, take] : out) {
      EXPECT_GT(take, 0u);
      EXPECT_LE(take, static_cast<uint64_t>(f.list.value(nd)));
      sum += take;
    }
    EXPECT_EQ(sum, got);
  }
}

TEST(Skiplist, LargeCircleStructure) {
  fixture f;
  const size_t n = 20000;
  std::vector<node*> ns;
  for (size_t i = 0; i < n; ++i) ns.push_back(f.add(1));
  f.list.batch_split_after(std::span<node* const>(ns.data(), ns.size()));
  std::vector<std::pair<node*, node*>> joins;
  for (size_t i = 0; i < n; ++i) joins.push_back({ns[i], ns[(i + 1) % n]});
  f.list.batch_join(joins);
  f.list.batch_repair(std::vector<node*>(ns.begin(), ns.end()));
  EXPECT_EQ(f.list.total(ns[123]), static_cast<long>(n));
  EXPECT_TRUE(
      check_skiplist_circle<long>(ns[0], std::equal_to<long>()).empty());
}

}  // namespace
}  // namespace bdc
