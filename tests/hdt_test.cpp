// Sequential HDT baseline tests: full invariant validation plus oracle
// comparison over long random update sequences and structured graphs.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "gen/graph_gen.hpp"
#include "hdt/hdt_connectivity.hpp"
#include "spanning/union_find.hpp"
#include "util/random.hpp"

namespace bdc {
namespace {

TEST(Hdt, Basics) {
  hdt_connectivity dc(8);
  EXPECT_FALSE(dc.connected(0, 1));
  dc.insert({0, 1});
  dc.insert({1, 2});
  EXPECT_TRUE(dc.connected(0, 2));
  EXPECT_EQ(dc.num_edges(), 2u);
  dc.insert({0, 1});  // duplicate ignored
  EXPECT_EQ(dc.num_edges(), 2u);
  dc.insert({3, 3});  // self-loop ignored
  EXPECT_EQ(dc.num_edges(), 2u);
  dc.erase({0, 1});
  EXPECT_FALSE(dc.connected(0, 1));
  EXPECT_TRUE(dc.connected(1, 2));
  dc.erase({5, 6});  // absent ignored
  EXPECT_TRUE(dc.check_invariants().empty());
}

TEST(Hdt, ReplacementFound) {
  // Triangle: deleting one tree edge must find the non-tree replacement.
  hdt_connectivity dc(3);
  dc.insert({0, 1});
  dc.insert({1, 2});
  dc.insert({0, 2});  // becomes a non-tree edge
  dc.erase({0, 1});
  EXPECT_TRUE(dc.connected(0, 1));  // still connected via 2
  EXPECT_TRUE(dc.check_invariants().empty());
  EXPECT_GE(dc.stats().replacements_promoted, 1u);
}

TEST(Hdt, CycleHeavyGraph) {
  const vertex_id n = 60;
  hdt_connectivity dc(n);
  auto grid = gen_grid(6, 10);
  for (auto e : grid) dc.insert(e);
  EXPECT_TRUE(dc.connected(0, n - 1));
  // Delete an entire row of horizontal edges; grid stays connected.
  for (vertex_id c = 0; c + 1 < 10; ++c) dc.erase({2 * 10 + c, 2 * 10 + c + 1});
  EXPECT_TRUE(dc.connected(0, n - 1));
  EXPECT_TRUE(dc.check_invariants().empty());
}

class HdtRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(HdtRandomSweep, AgainstRecomputeOracle) {
  int trial = GetParam();
  random_stream rs(trial * 613 + 29);
  const vertex_id n = 120;
  hdt_connectivity dc(n, 3000 + trial);
  std::set<std::pair<vertex_id, vertex_id>> present;
  for (int step = 0; step < 2500; ++step) {
    vertex_id u = static_cast<vertex_id>(rs.next(n));
    vertex_id v = static_cast<vertex_id>(rs.next(n));
    if (u == v) continue;
    edge c = edge{u, v}.canonical();
    if (rs.next(100) < 60) {
      dc.insert(c);
      present.insert({c.u, c.v});
    } else if (present.count({c.u, c.v})) {
      dc.erase(c);
      present.erase({c.u, c.v});
    } else if (!present.empty()) {
      auto it = present.begin();
      std::advance(it, rs.next(present.size()));
      dc.erase({it->first, it->second});
      present.erase(it);
    }
    if (step % 200 == 0) {
      ASSERT_TRUE(dc.check_invariants().empty()) << "step " << step;
      union_find oracle(n);
      for (auto& pe : present) oracle.unite(pe.first, pe.second);
      for (int q = 0; q < 150; ++q) {
        vertex_id a = static_cast<vertex_id>(rs.next(n));
        vertex_id b = static_cast<vertex_id>(rs.next(n));
        ASSERT_EQ(dc.connected(a, b), oracle.connected(a, b))
            << "step " << step;
      }
      ASSERT_EQ(dc.num_edges(), present.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Trials, HdtRandomSweep, ::testing::Range(0, 5));

TEST(Hdt, DeleteEntireDenseGraph) {
  const vertex_id n = 40;
  hdt_connectivity dc(n);
  auto es = gen_erdos_renyi(n, 300, 5);
  for (auto e : es) dc.insert(e);
  for (auto e : es) dc.erase(e);
  EXPECT_EQ(dc.num_edges(), 0u);
  for (vertex_id v = 1; v < n; ++v) EXPECT_FALSE(dc.connected(0, v));
  EXPECT_TRUE(dc.check_invariants().empty());
}

// Out-of-range ids are validated inside the structure itself (matching
// batch_dynamic_connectivity's drop/false semantics) — callers no longer
// pre-filter.
TEST(Hdt, HostileIdsDropAndAnswerFalse) {
  const vertex_id n = 16;
  hdt_connectivity dc(n);
  dc.insert({0, 1});
  dc.insert({1, n});       // dropped: endpoint out of range
  dc.insert({n + 7, 2});   // dropped
  EXPECT_EQ(dc.num_edges(), 1u);
  dc.erase({1, n});        // no-op, not corruption
  dc.erase({n, n});        // no-op
  EXPECT_EQ(dc.num_edges(), 1u);
  EXPECT_FALSE(dc.connected(1, n));
  EXPECT_FALSE(dc.connected(n, n + 1));
  EXPECT_TRUE(dc.connected(0, 1));
  std::vector<std::pair<vertex_id, vertex_id>> qs = {
      {0, 1}, {0, n}, {n + 3, n + 3}, {0, 2}};
  EXPECT_EQ(dc.batch_connected(qs),
            (std::vector<bool>{true, false, false, false}));
  // Batch updates share the single-op validation.
  dc.batch_insert(std::vector<edge>{{2, 3}, {3, n}, {n, n + 1}});
  EXPECT_EQ(dc.num_edges(), 2u);
  dc.batch_delete(std::vector<edge>{{3, n}, {n, n + 1}});
  EXPECT_EQ(dc.num_edges(), 2u);
  EXPECT_TRUE(dc.check_invariants().empty());
}

// An empty structure (n = 0) must answer every hostile query false.
TEST(Hdt, EmptyStructureHostileQueries) {
  hdt_connectivity dc(0);
  EXPECT_FALSE(dc.connected(0, 1));
  std::vector<std::pair<vertex_id, vertex_id>> qs = {{0, 0}, {5, 9}};
  EXPECT_EQ(dc.batch_connected(qs), (std::vector<bool>{false, false}));
}

TEST(Hdt, StatsAccumulate) {
  hdt_connectivity dc(32);
  auto es = gen_erdos_renyi(32, 100, 9);
  for (auto e : es) dc.insert(e);
  for (auto e : es) dc.erase(e);
  EXPECT_EQ(dc.stats().edges_inserted, 100u);
  EXPECT_EQ(dc.stats().edges_deleted, 100u);
  EXPECT_GT(dc.stats().tree_edges_deleted, 0u);
}

}  // namespace
}  // namespace bdc
