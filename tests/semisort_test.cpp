// Semisort / group-by and parallel-sort tests against sequential models.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "sequence/parallel_sort.hpp"
#include "sequence/semisort.hpp"
#include "util/random.hpp"

namespace bdc {
namespace {

class GroupBySweep
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(GroupBySweep, GroupsMatchSequentialMap) {
  auto [n, key_space] = GetParam();
  random r(n * 31 + key_space);
  std::vector<std::pair<uint32_t, uint64_t>> pairs(n);
  std::map<uint32_t, std::multiset<uint64_t>> expect;
  for (size_t i = 0; i < n; ++i) {
    uint32_t k = static_cast<uint32_t>(r.ith_rand(2 * i, key_space));
    uint64_t v = r.ith_rand(2 * i + 1);
    pairs[i] = {k, v};
    expect[k].insert(v);
  }
  auto grouped = group_by_key(pairs);
  EXPECT_EQ(grouped.records.size(), n);
  EXPECT_EQ(grouped.num_groups(), expect.size());
  std::map<uint32_t, std::multiset<uint64_t>> got;
  for (size_t g = 0; g < grouped.num_groups(); ++g) {
    uint32_t key = grouped.group_key(g);
    ASSERT_FALSE(got.count(key)) << "key split across groups";
    auto& bucket = got[key];
    for (uint32_t i = grouped.group_starts[g];
         i < grouped.group_starts[g + 1]; ++i) {
      ASSERT_EQ(grouped.records[i].first, key) << "foreign key in group";
      bucket.insert(grouped.records[i].second);
    }
  }
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GroupBySweep,
    ::testing::Values(std::pair<size_t, size_t>{0, 1},
                      std::pair<size_t, size_t>{1, 1},
                      std::pair<size_t, size_t>{100, 3},
                      std::pair<size_t, size_t>{1000, 1000},
                      std::pair<size_t, size_t>{5000, 2},
                      std::pair<size_t, size_t>{100000, 512},
                      std::pair<size_t, size_t>{100000, 100000}));

TEST(GroupBy, SingleKey) {
  std::vector<std::pair<uint32_t, uint64_t>> pairs(5000, {7u, 1u});
  auto grouped = group_by_key(pairs);
  ASSERT_EQ(grouped.num_groups(), 1u);
  EXPECT_EQ(grouped.group_key(0), 7u);
  EXPECT_EQ(grouped.group_size(0), 5000u);
}

class SortSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SortSweep, MatchesStdSort) {
  size_t n = GetParam();
  random r(n + 17);
  std::vector<uint64_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = r.ith_rand(i, 1000);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  parallel_sort(v);
  EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortSweep,
                         ::testing::Values(0, 1, 2, 100, 4096, 4097, 50000,
                                           250000));

TEST(Sort, SortUniqueRemovesDuplicates) {
  std::vector<int> v = {5, 3, 5, 1, 3, 3, 9};
  sort_unique(v);
  EXPECT_EQ(v, (std::vector<int>{1, 3, 5, 9}));
}

TEST(Sort, CustomComparator) {
  random r(3);
  std::vector<uint64_t> v(20000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = r.ith_rand(i);
  auto expect = v;
  std::sort(expect.begin(), expect.end(), std::greater<>());
  parallel_sort(v, std::greater<>());
  EXPECT_EQ(v, expect);
}

}  // namespace
}  // namespace bdc
