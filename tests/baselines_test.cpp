// Baseline comparators: static recompute and incremental union-find.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "baselines/incremental_connectivity.hpp"
#include "baselines/static_connectivity.hpp"
#include "gen/graph_gen.hpp"
#include "spanning/union_find.hpp"
#include "util/random.hpp"

namespace bdc {
namespace {

TEST(StaticRecompute, MatchesOracleUnderChurn) {
  random_stream rs(21);
  const vertex_id n = 100;
  static_recompute_connectivity sc(n);
  std::set<std::pair<vertex_id, vertex_id>> present;
  for (int round = 0; round < 30; ++round) {
    std::vector<edge> ins;
    for (int t = 0; t < 20; ++t) {
      vertex_id u = static_cast<vertex_id>(rs.next(n));
      vertex_id v = static_cast<vertex_id>(rs.next(n));
      ins.push_back({u, v});
      if (u != v) present.insert({edge{u, v}.canonical().u,
                                  edge{u, v}.canonical().v});
    }
    sc.batch_insert(ins);
    std::vector<edge> del;
    for (auto& pe : present)
      if (rs.next(3) == 0) del.push_back({pe.first, pe.second});
    sc.batch_delete(del);
    for (auto& e : del) present.erase({e.u, e.v});

    union_find oracle(n);
    for (auto& pe : present) oracle.unite(pe.first, pe.second);
    for (int q = 0; q < 100; ++q) {
      vertex_id a = static_cast<vertex_id>(rs.next(n));
      vertex_id b = static_cast<vertex_id>(rs.next(n));
      ASSERT_EQ(sc.connected(a, b), oracle.connected(a, b));
    }
    ASSERT_EQ(sc.num_edges(), present.size());
  }
}

TEST(StaticRecompute, RecomputesLazily) {
  static_recompute_connectivity sc(10);
  sc.batch_insert(gen_path(10));
  EXPECT_EQ(sc.recomputes(), 0u);  // nothing queried yet
  EXPECT_TRUE(sc.connected(0, 9));
  EXPECT_EQ(sc.recomputes(), 1u);
  EXPECT_TRUE(sc.connected(3, 4));  // cached
  EXPECT_EQ(sc.recomputes(), 1u);
  sc.batch_delete(std::vector<edge>{{4, 5}});
  EXPECT_FALSE(sc.connected(0, 9));
  EXPECT_EQ(sc.recomputes(), 2u);
}

TEST(Incremental, MatchesOracle) {
  random_stream rs(31);
  const vertex_id n = 500;
  incremental_connectivity inc(n);
  union_find oracle(n);
  for (int round = 0; round < 20; ++round) {
    std::vector<edge> ins;
    for (int t = 0; t < 100; ++t) {
      vertex_id u = static_cast<vertex_id>(rs.next(n));
      vertex_id v = static_cast<vertex_id>(rs.next(n));
      ins.push_back({u, v});
    }
    inc.batch_insert(ins);
    for (auto& e : ins)
      if (!e.is_self_loop()) oracle.unite(e.u, e.v);
    auto qs = std::vector<std::pair<vertex_id, vertex_id>>{};
    for (int q = 0; q < 200; ++q)
      qs.push_back({static_cast<vertex_id>(rs.next(n)),
                    static_cast<vertex_id>(rs.next(n))});
    auto got = inc.batch_connected(qs);
    for (size_t q = 0; q < qs.size(); ++q)
      ASSERT_EQ(got[q], oracle.connected(qs[q].first, qs[q].second));
  }
}

// Regression: batch_insert used to do num_edges_ += es.size(), counting
// self-loops, duplicates (within and across batches), both orientations,
// and out-of-range ids. num_edges() must count the distinct real edge
// set only.
TEST(Incremental, NumEdgesCountsDistinctRealEdges) {
  incremental_connectivity inc(10);
  inc.batch_insert(std::vector<edge>{{1, 2}, {2, 1}, {1, 2}, {3, 3}});
  EXPECT_EQ(inc.num_edges(), 1u);
  inc.batch_insert(std::vector<edge>{{1, 2}, {4, 5}, {9, 10}, {10, 11}});
  EXPECT_EQ(inc.num_edges(), 2u);  // {1,2} again + OOR pairs add nothing
  inc.batch_insert(std::vector<edge>{{5, 4}});
  EXPECT_EQ(inc.num_edges(), 2u);
  EXPECT_TRUE(inc.has_edge({2, 1}));
  EXPECT_FALSE(inc.has_edge({1, 3}));
  EXPECT_FALSE(inc.has_edge({9, 10}));
  auto es = inc.edge_list();
  std::sort(es.begin(), es.end(), [](edge a, edge b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  EXPECT_EQ(es, (std::vector<edge>{{1, 2}, {4, 5}}));
}

TEST(Incremental, HostileIdsDropAndAnswerFalse) {
  const vertex_id n = 8;
  incremental_connectivity inc(n);
  inc.batch_insert(std::vector<edge>{{0, 1}, {1, n}, {n, n + 3}, {2, 3}});
  EXPECT_EQ(inc.num_edges(), 2u);
  EXPECT_FALSE(inc.connected(1, n));
  EXPECT_FALSE(inc.connected(n, n));
  EXPECT_TRUE(inc.connected(0, 1));
  auto got = inc.batch_connected(std::vector<std::pair<vertex_id, vertex_id>>{
      {0, 1}, {0, n}, {n + 1, n + 1}, {2, 3}});
  EXPECT_EQ(got, (std::vector<bool>{true, false, false, true}));
}

TEST(Incremental, ComponentsAreMinVertexLabels) {
  incremental_connectivity inc(6);
  inc.batch_insert(std::vector<edge>{{4, 2}, {2, 5}, {0, 1}});
  EXPECT_EQ(inc.components(),
            (std::vector<vertex_id>{0, 0, 2, 3, 2, 2}));
}

TEST(StaticRecompute, HostileIdsDropAndAnswerFalse) {
  const vertex_id n = 8;
  static_recompute_connectivity sc(n);
  sc.batch_insert(std::vector<edge>{{0, 1}, {1, n}, {n + 4, 2}, {2, 3}});
  EXPECT_EQ(sc.num_edges(), 2u);
  EXPECT_FALSE(sc.connected(1, n));
  EXPECT_FALSE(sc.connected(n + 4, 2));
  EXPECT_TRUE(sc.connected(0, 1));
  auto got = sc.batch_connected(std::vector<std::pair<vertex_id, vertex_id>>{
      {0, 1}, {0, n}, {n, n}, {2, 3}});
  EXPECT_EQ(got, (std::vector<bool>{true, false, false, true}));
  // Deleting an out-of-range edge is a no-op, not corruption.
  sc.batch_delete(std::vector<edge>{{1, n}, {n, n + 1}});
  EXPECT_EQ(sc.num_edges(), 2u);
  EXPECT_TRUE(sc.connected(2, 3));
}

// Regression for the lazy-refresh race: connected()/batch_connected()
// used to mutate labels_/stale_/recomputes_ with no synchronization, so
// two concurrent first-queries after an update raced on the rebuild.
// refresh() is now double-checked under a mutex and batch_connected
// refreshes once up front; this hammers it from many threads (run under
// TSan in CI).
TEST(StaticRecompute, ConcurrentQueriesAfterUpdateAreSafe) {
  const vertex_id n = 2000;
  static_recompute_connectivity sc(n);
  std::vector<edge> path;
  for (vertex_id v = 0; v + 1 < n; ++v) path.push_back({v, v + 1});
  for (int round = 0; round < 4; ++round) {
    // Leave the structure dirty, then query it from many threads at once:
    // exactly one rebuild per dirty epoch may happen.
    if (round % 2 == 0) {
      sc.batch_insert(path);
    } else {
      sc.batch_delete(std::vector<edge>{{n / 2, n / 2 + 1}});
    }
    bool split = round % 2 == 1;
    uint64_t before = sc.recomputes();
    std::atomic<int> wrong{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        std::vector<std::pair<vertex_id, vertex_id>> qs;
        for (vertex_id q = 0; q < 64; ++q)
          qs.push_back({(q * 37 + static_cast<vertex_id>(t)) % n,
                        (q * 101 + 13) % n});
        auto got = sc.batch_connected(qs);
        for (size_t i = 0; i < qs.size(); ++i) {
          bool want = split ? (qs[i].first <= n / 2) == (qs[i].second <= n / 2)
                            : true;
          if (got[i] != want) wrong.fetch_add(1);
        }
        for (vertex_id q = 0; q < 32; ++q)
          if (sc.connected(q, q + 1) != (split ? q != n / 2 : true))
            wrong.fetch_add(1);
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(wrong.load(), 0);
    EXPECT_EQ(sc.recomputes(), before + 1)
        << "concurrent first-queries must share one rebuild";
  }
}

}  // namespace
}  // namespace bdc
