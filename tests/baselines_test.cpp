// Baseline comparators: static recompute and incremental union-find.
#include <gtest/gtest.h>

#include <set>

#include "baselines/incremental_connectivity.hpp"
#include "baselines/static_connectivity.hpp"
#include "gen/graph_gen.hpp"
#include "spanning/union_find.hpp"
#include "util/random.hpp"

namespace bdc {
namespace {

TEST(StaticRecompute, MatchesOracleUnderChurn) {
  random_stream rs(21);
  const vertex_id n = 100;
  static_recompute_connectivity sc(n);
  std::set<std::pair<vertex_id, vertex_id>> present;
  for (int round = 0; round < 30; ++round) {
    std::vector<edge> ins;
    for (int t = 0; t < 20; ++t) {
      vertex_id u = static_cast<vertex_id>(rs.next(n));
      vertex_id v = static_cast<vertex_id>(rs.next(n));
      ins.push_back({u, v});
      if (u != v) present.insert({edge{u, v}.canonical().u,
                                  edge{u, v}.canonical().v});
    }
    sc.batch_insert(ins);
    std::vector<edge> del;
    for (auto& pe : present)
      if (rs.next(3) == 0) del.push_back({pe.first, pe.second});
    sc.batch_delete(del);
    for (auto& e : del) present.erase({e.u, e.v});

    union_find oracle(n);
    for (auto& pe : present) oracle.unite(pe.first, pe.second);
    for (int q = 0; q < 100; ++q) {
      vertex_id a = static_cast<vertex_id>(rs.next(n));
      vertex_id b = static_cast<vertex_id>(rs.next(n));
      ASSERT_EQ(sc.connected(a, b), oracle.connected(a, b));
    }
    ASSERT_EQ(sc.num_edges(), present.size());
  }
}

TEST(StaticRecompute, RecomputesLazily) {
  static_recompute_connectivity sc(10);
  sc.batch_insert(gen_path(10));
  EXPECT_EQ(sc.recomputes(), 0u);  // nothing queried yet
  EXPECT_TRUE(sc.connected(0, 9));
  EXPECT_EQ(sc.recomputes(), 1u);
  EXPECT_TRUE(sc.connected(3, 4));  // cached
  EXPECT_EQ(sc.recomputes(), 1u);
  sc.batch_delete(std::vector<edge>{{4, 5}});
  EXPECT_FALSE(sc.connected(0, 9));
  EXPECT_EQ(sc.recomputes(), 2u);
}

TEST(Incremental, MatchesOracle) {
  random_stream rs(31);
  const vertex_id n = 500;
  incremental_connectivity inc(n);
  union_find oracle(n);
  for (int round = 0; round < 20; ++round) {
    std::vector<edge> ins;
    for (int t = 0; t < 100; ++t) {
      vertex_id u = static_cast<vertex_id>(rs.next(n));
      vertex_id v = static_cast<vertex_id>(rs.next(n));
      ins.push_back({u, v});
    }
    inc.batch_insert(ins);
    for (auto& e : ins)
      if (!e.is_self_loop()) oracle.unite(e.u, e.v);
    auto qs = std::vector<std::pair<vertex_id, vertex_id>>{};
    for (int q = 0; q < 200; ++q)
      qs.push_back({static_cast<vertex_id>(rs.next(n)),
                    static_cast<vertex_id>(rs.next(n))});
    auto got = inc.batch_connected(qs);
    for (size_t q = 0; q < qs.size(); ++q)
      ASSERT_EQ(got[q], oracle.connected(qs[q].first, qs[q].second));
  }
}

}  // namespace
}  // namespace bdc
