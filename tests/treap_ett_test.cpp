// Sequential treap ETT tests (the HDT substrate).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "ett/treap_ett.hpp"
#include "gen/graph_gen.hpp"
#include "spanning/union_find.hpp"
#include "util/random.hpp"

namespace bdc {
namespace {

TEST(TreapEtt, Basics) {
  treap_ett f(5);
  EXPECT_FALSE(f.connected(0, 1));
  f.link(0, 1);
  EXPECT_TRUE(f.connected(0, 1));
  EXPECT_TRUE(f.has_edge(1, 0));
  EXPECT_EQ(f.component_size(0), 2u);
  EXPECT_TRUE(f.check_consistency().empty());
  f.cut(0, 1);
  EXPECT_FALSE(f.connected(0, 1));
  EXPECT_EQ(f.component_size(1), 1u);
  EXPECT_TRUE(f.check_consistency().empty());
}

TEST(TreapEtt, PathCutMiddle) {
  const vertex_id n = 64;
  treap_ett f(n);
  for (auto e : gen_path(n)) f.link(e.u, e.v);
  EXPECT_TRUE(f.connected(0, n - 1));
  f.cut(20, 21);
  EXPECT_FALSE(f.connected(0, n - 1));
  EXPECT_EQ(f.component_size(0), 21u);
  EXPECT_EQ(f.component_size(n - 1), n - 21);
  EXPECT_TRUE(f.check_consistency().empty());
}

TEST(TreapEtt, CountersAndSlotSearch) {
  treap_ett f(10);
  for (auto e : gen_path(10)) f.link(e.u, e.v);
  EXPECT_EQ(f.find_nontree_slot(0), kNoVertex);
  f.add_counts(3, 0, 2);
  f.add_counts(7, 1, 0);
  EXPECT_EQ(f.find_nontree_slot(0), 3u);
  EXPECT_EQ(f.find_tree_slot(9), 7u);
  auto cc = f.component_counts(5);
  EXPECT_EQ(cc.vertices, 10u);
  EXPECT_EQ(cc.tree_edges, 1u);
  EXPECT_EQ(cc.nontree_edges, 2u);
  f.add_counts(3, 0, -2);
  EXPECT_EQ(f.find_nontree_slot(0), kNoVertex);
  EXPECT_TRUE(f.check_consistency().empty());
  // Counter localized to the component, not globally.
  EXPECT_EQ(f.component_counts(5).nontree_edges, 0u);
}

class TreapRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(TreapRandomSweep, LinkCutAgainstOracle) {
  int trial = GetParam();
  random_stream rs(trial * 37 + 2);
  const vertex_id n = 150;
  treap_ett f(n, 900 + trial);
  std::set<std::pair<vertex_id, vertex_id>> tree_edges;
  for (int step = 0; step < 3000; ++step) {
    vertex_id u = static_cast<vertex_id>(rs.next(n));
    vertex_id v = static_cast<vertex_id>(rs.next(n));
    if (u == v) continue;
    if (!f.connected(u, v)) {
      f.link(u, v);
      tree_edges.insert({edge{u, v}.canonical().u, edge{u, v}.canonical().v});
    } else if (!tree_edges.empty() && rs.next(2) == 0) {
      // Cut a random existing tree edge.
      auto it = tree_edges.begin();
      std::advance(it, rs.next(tree_edges.size()));
      f.cut(it->first, it->second);
      tree_edges.erase(it);
    }
    if (step % 250 == 0) {
      ASSERT_TRUE(f.check_consistency().empty()) << "step " << step;
      union_find oracle(n);
      for (auto& te : tree_edges) oracle.unite(te.first, te.second);
      for (int q = 0; q < 100; ++q) {
        vertex_id a = static_cast<vertex_id>(rs.next(n));
        vertex_id b = static_cast<vertex_id>(rs.next(n));
        ASSERT_EQ(f.connected(a, b), oracle.connected(a, b));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Trials, TreapRandomSweep, ::testing::Range(0, 6));

TEST(TreapEtt, ComponentVerticesTourOrder) {
  treap_ett f(6);
  f.link(0, 1);
  f.link(1, 2);
  f.link(2, 3);
  auto vs = f.component_vertices(1);
  std::set<vertex_id> got(vs.begin(), vs.end());
  EXPECT_EQ(got, (std::set<vertex_id>{0, 1, 2, 3}));
  EXPECT_EQ(vs.size(), 4u);
}

TEST(TreapEtt, BatchSurfaceMatchesSequential) {
  // Drive the ett_substrate batch API and cross-check the per-edge view.
  const vertex_id n = 32;
  treap_ett f(n);
  ett_substrate& s = f;
  auto path = gen_path(n);
  s.batch_link(path);
  EXPECT_EQ(s.num_edges(), path.size());
  EXPECT_TRUE(f.connected(0, n - 1));

  std::vector<ett_substrate::count_delta> deltas = {{3, 1, 2}, {9, 0, 1}};
  s.batch_add_counts(deltas);
  auto cc = s.component_counts(0);
  EXPECT_EQ(cc.tree_edges, 1u);
  EXPECT_EQ(cc.nontree_edges, 3u);
  auto slots = s.fetch_nontree(0, 99);
  uint64_t sum = 0;
  for (auto& [v, take] : slots) {
    EXPECT_TRUE(v == 3 || v == 9);
    sum += take;
  }
  EXPECT_EQ(sum, 3u);
  EXPECT_EQ(f.find_nontree_slot(n - 1), slots.front().first);

  std::vector<std::pair<vertex_id, vertex_id>> qs = {
      {0, n - 1}, {1, 2}, {5, 5}};
  EXPECT_EQ(s.batch_connected(qs), (std::vector<bool>{true, true, true}));
  auto reps = s.batch_find_rep(std::vector<vertex_id>{0, n / 2, n - 1});
  EXPECT_EQ(reps[0], reps[1]);
  EXPECT_EQ(reps[1], reps[2]);

  s.batch_add_counts(std::vector<ett_substrate::count_delta>{
      {3, -1, -2}, {9, 0, -1}});
  std::vector<edge> cuts(path.begin(), path.begin() + 8);
  s.batch_cut(cuts);
  EXPECT_FALSE(f.connected(0, 8));
  EXPECT_TRUE(f.connected(8, n - 1));
  EXPECT_TRUE(s.check_consistency().empty());
}

// ---------------------------------------------------------------------
// Parallel bulk-mutation phases. Every batch below is comfortably above
// the substrate's sequential-fallback cutoff, and check_consistency (heap
// order, aggregates, tour orientation, arc registration) runs after every
// bulk op — the join-based rebuild splices tours from many segments, and
// a misplaced segment must fail loudly here, not in a downstream suite.
// ---------------------------------------------------------------------

namespace {

void expect_consistent(const treap_ett& f, const char* where) {
  std::string rep = f.check_consistency();
  ASSERT_TRUE(rep.empty()) << where << ": " << rep;
}

// Forces a multi-worker pool so the join-based parallel mutation phases
// actually run (a 1-worker pool takes the sequential fallback), restoring
// the previous pool afterwards.
class TreapEttParallel : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_workers_ = num_workers();
    set_num_workers(4);
  }
  void TearDown() override { set_num_workers(saved_workers_); }

 private:
  unsigned saved_workers_ = 0;
};

}  // namespace

TEST_F(TreapEttParallel, BulkLinkCutAgainstOracle) {
  const vertex_id n = 2000;
  treap_ett f(n, 77);
  // One bulk link of a whole random forest: many independent groups plus
  // large merged components.
  auto forest = gen_random_forest(n, 40, 7);
  f.batch_link(forest);
  expect_consistent(f, "after bulk link");
  union_find oracle(n);
  for (auto& e : forest) oracle.unite(e.u, e.v);
  random_stream rs(21);
  for (int q = 0; q < 500; ++q) {
    vertex_id a = static_cast<vertex_id>(rs.next(n));
    vertex_id b = static_cast<vertex_id>(rs.next(n));
    ASSERT_EQ(f.connected(a, b), oracle.connected(a, b)) << a << "," << b;
  }
  // Bulk cut of a large random subset, including nested subtree cuts.
  std::vector<edge> cuts;
  for (size_t i = 0; i < forest.size(); i += 3) cuts.push_back(forest[i]);
  f.batch_cut(cuts);
  expect_consistent(f, "after bulk cut");
  union_find oracle2(n);
  std::set<std::pair<vertex_id, vertex_id>> cut_set;
  for (auto& e : cuts)
    cut_set.insert({e.canonical().u, e.canonical().v});
  for (auto& e : forest)
    if (!cut_set.count({e.canonical().u, e.canonical().v}))
      oracle2.unite(e.u, e.v);
  for (int q = 0; q < 500; ++q) {
    vertex_id a = static_cast<vertex_id>(rs.next(n));
    vertex_id b = static_cast<vertex_id>(rs.next(n));
    ASSERT_EQ(f.connected(a, b), oracle2.connected(a, b)) << a << "," << b;
  }
}

TEST_F(TreapEttParallel, SingleComponentBulkOps) {
  // The worst case for tour partitioning: every link lands in ONE merged
  // component (a path), then one bulk cut shatters it entirely.
  const vertex_id n = 1024;
  treap_ett f(n, 5);
  auto path = gen_path(n);
  f.batch_link(path);
  expect_consistent(f, "after path bulk link");
  EXPECT_TRUE(f.connected(0, n - 1));
  EXPECT_EQ(f.component_size(0), n);
  f.batch_cut(path);
  expect_consistent(f, "after full shatter");
  for (vertex_id v = 0; v < n; ++v) ASSERT_EQ(f.component_size(v), 1u);
}

TEST_F(TreapEttParallel, StarBulkOps) {
  // Star: one tree entered many times — every link attaches at vertex 0,
  // so the emission splits one tour at hundreds of sentinels.
  const vertex_id n = 600;
  treap_ett f(n, 3);
  auto star = gen_star(n);
  f.batch_link(star);
  expect_consistent(f, "after star bulk link");
  EXPECT_EQ(f.component_size(0), n);
  std::vector<edge> odd_cuts;
  for (vertex_id i = 1; i < n; i += 2) odd_cuts.push_back({0, i});
  f.batch_cut(odd_cuts);
  expect_consistent(f, "after star bulk cut");
  for (vertex_id i = 1; i < n; ++i)
    ASSERT_EQ(f.connected(0, i), i % 2 == 0);
}

TEST_F(TreapEttParallel, BulkAddCounts) {
  const vertex_id n = 800;
  treap_ett f(n, 9);
  f.batch_link(gen_random_forest(n, 8, 11));
  std::vector<ett_substrate::count_delta> up;
  for (vertex_id v = 0; v < n; v += 2) up.push_back({v, 1, 2});
  f.batch_add_counts(up);
  expect_consistent(f, "after bulk add_counts");
  auto cc = f.component_counts(0);
  EXPECT_GT(cc.tree_edges, 0u);
  EXPECT_EQ(cc.nontree_edges, 2 * cc.tree_edges);
  std::vector<ett_substrate::count_delta> down;
  for (vertex_id v = 0; v < n; v += 2) down.push_back({v, -1, -2});
  f.batch_add_counts(down);
  expect_consistent(f, "after bulk counter removal");
  EXPECT_EQ(f.component_counts(0).nontree_edges, 0u);
  EXPECT_EQ(f.find_nontree_slot(0), kNoVertex);
}

TEST_F(TreapEttParallel, InterleavedBulkRounds) {
  // Mixed regime: alternating bulk links and bulk cuts over many rounds,
  // consistency-checked after every phase, queries cross-checked against a
  // union-find rebuild.
  const vertex_id n = 500;
  treap_ett f(n, 13);
  random_stream rs(99);
  std::set<std::pair<vertex_id, vertex_id>> present;
  for (int round = 0; round < 12; ++round) {
    std::vector<edge> links;
    {
      union_find acyclic(n);
      for (auto& pe : present) acyclic.unite(pe.first, pe.second);
      for (int t = 0; t < 200 && links.size() < 64; ++t) {
        vertex_id u = static_cast<vertex_id>(rs.next(n));
        vertex_id v = static_cast<vertex_id>(rs.next(n));
        if (u == v || !acyclic.unite(u, v)) continue;
        links.push_back({u, v});
        present.insert({edge{u, v}.canonical().u, edge{u, v}.canonical().v});
      }
    }
    f.batch_link(links);
    expect_consistent(f, "after round link");
    std::vector<edge> cuts;
    for (auto& pe : present)
      if (rs.next(100) < 40) cuts.push_back({pe.first, pe.second});
    for (auto& e : cuts) present.erase({e.u, e.v});
    f.batch_cut(cuts);
    expect_consistent(f, "after round cut");
    union_find oracle(n);
    for (auto& pe : present) oracle.unite(pe.first, pe.second);
    for (int q = 0; q < 120; ++q) {
      vertex_id a = static_cast<vertex_id>(rs.next(n));
      vertex_id b = static_cast<vertex_id>(rs.next(n));
      ASSERT_EQ(f.connected(a, b), oracle.connected(a, b))
          << "round " << round;
    }
    ASSERT_EQ(f.num_edges(), present.size());
  }
}

TEST(TreapEtt, StarStress) {
  const vertex_id n = 300;
  treap_ett f(n);
  for (vertex_id i = 1; i < n; ++i) f.link(0, i);
  EXPECT_EQ(f.component_size(0), n);
  for (vertex_id i = 1; i < n; i += 2) f.cut(0, i);
  for (vertex_id i = 1; i < n; ++i)
    EXPECT_EQ(f.connected(0, i), i % 2 == 0);
  EXPECT_TRUE(f.check_consistency().empty());
}

}  // namespace
}  // namespace bdc
