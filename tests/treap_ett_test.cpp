// Sequential treap ETT tests (the HDT substrate).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "ett/treap_ett.hpp"
#include "gen/graph_gen.hpp"
#include "spanning/union_find.hpp"
#include "util/random.hpp"

namespace bdc {
namespace {

TEST(TreapEtt, Basics) {
  treap_ett f(5);
  EXPECT_FALSE(f.connected(0, 1));
  f.link(0, 1);
  EXPECT_TRUE(f.connected(0, 1));
  EXPECT_TRUE(f.has_edge(1, 0));
  EXPECT_EQ(f.component_size(0), 2u);
  EXPECT_TRUE(f.check_consistency().empty());
  f.cut(0, 1);
  EXPECT_FALSE(f.connected(0, 1));
  EXPECT_EQ(f.component_size(1), 1u);
  EXPECT_TRUE(f.check_consistency().empty());
}

TEST(TreapEtt, PathCutMiddle) {
  const vertex_id n = 64;
  treap_ett f(n);
  for (auto e : gen_path(n)) f.link(e.u, e.v);
  EXPECT_TRUE(f.connected(0, n - 1));
  f.cut(20, 21);
  EXPECT_FALSE(f.connected(0, n - 1));
  EXPECT_EQ(f.component_size(0), 21u);
  EXPECT_EQ(f.component_size(n - 1), n - 21);
  EXPECT_TRUE(f.check_consistency().empty());
}

TEST(TreapEtt, CountersAndSlotSearch) {
  treap_ett f(10);
  for (auto e : gen_path(10)) f.link(e.u, e.v);
  EXPECT_EQ(f.find_nontree_slot(0), kNoVertex);
  f.add_counts(3, 0, 2);
  f.add_counts(7, 1, 0);
  EXPECT_EQ(f.find_nontree_slot(0), 3u);
  EXPECT_EQ(f.find_tree_slot(9), 7u);
  auto cc = f.component_counts(5);
  EXPECT_EQ(cc.vertices, 10u);
  EXPECT_EQ(cc.tree_edges, 1u);
  EXPECT_EQ(cc.nontree_edges, 2u);
  f.add_counts(3, 0, -2);
  EXPECT_EQ(f.find_nontree_slot(0), kNoVertex);
  EXPECT_TRUE(f.check_consistency().empty());
  // Counter localized to the component, not globally.
  EXPECT_EQ(f.component_counts(5).nontree_edges, 0u);
}

class TreapRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(TreapRandomSweep, LinkCutAgainstOracle) {
  int trial = GetParam();
  random_stream rs(trial * 37 + 2);
  const vertex_id n = 150;
  treap_ett f(n, 900 + trial);
  std::set<std::pair<vertex_id, vertex_id>> tree_edges;
  for (int step = 0; step < 3000; ++step) {
    vertex_id u = static_cast<vertex_id>(rs.next(n));
    vertex_id v = static_cast<vertex_id>(rs.next(n));
    if (u == v) continue;
    if (!f.connected(u, v)) {
      f.link(u, v);
      tree_edges.insert({edge{u, v}.canonical().u, edge{u, v}.canonical().v});
    } else if (!tree_edges.empty() && rs.next(2) == 0) {
      // Cut a random existing tree edge.
      auto it = tree_edges.begin();
      std::advance(it, rs.next(tree_edges.size()));
      f.cut(it->first, it->second);
      tree_edges.erase(it);
    }
    if (step % 250 == 0) {
      ASSERT_TRUE(f.check_consistency().empty()) << "step " << step;
      union_find oracle(n);
      for (auto& te : tree_edges) oracle.unite(te.first, te.second);
      for (int q = 0; q < 100; ++q) {
        vertex_id a = static_cast<vertex_id>(rs.next(n));
        vertex_id b = static_cast<vertex_id>(rs.next(n));
        ASSERT_EQ(f.connected(a, b), oracle.connected(a, b));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Trials, TreapRandomSweep, ::testing::Range(0, 6));

TEST(TreapEtt, ComponentVerticesTourOrder) {
  treap_ett f(6);
  f.link(0, 1);
  f.link(1, 2);
  f.link(2, 3);
  auto vs = f.component_vertices(1);
  std::set<vertex_id> got(vs.begin(), vs.end());
  EXPECT_EQ(got, (std::set<vertex_id>{0, 1, 2, 3}));
  EXPECT_EQ(vs.size(), 4u);
}

TEST(TreapEtt, BatchSurfaceMatchesSequential) {
  // Drive the ett_substrate batch API and cross-check the per-edge view.
  const vertex_id n = 32;
  treap_ett f(n);
  ett_substrate& s = f;
  auto path = gen_path(n);
  s.batch_link(path);
  EXPECT_EQ(s.num_edges(), path.size());
  EXPECT_TRUE(f.connected(0, n - 1));

  std::vector<ett_substrate::count_delta> deltas = {{3, 1, 2}, {9, 0, 1}};
  s.batch_add_counts(deltas);
  auto cc = s.component_counts(0);
  EXPECT_EQ(cc.tree_edges, 1u);
  EXPECT_EQ(cc.nontree_edges, 3u);
  auto slots = s.fetch_nontree(0, 99);
  uint64_t sum = 0;
  for (auto& [v, take] : slots) {
    EXPECT_TRUE(v == 3 || v == 9);
    sum += take;
  }
  EXPECT_EQ(sum, 3u);
  EXPECT_EQ(f.find_nontree_slot(n - 1), slots.front().first);

  std::vector<std::pair<vertex_id, vertex_id>> qs = {
      {0, n - 1}, {1, 2}, {5, 5}};
  EXPECT_EQ(s.batch_connected(qs), (std::vector<bool>{true, true, true}));
  auto reps = s.batch_find_rep(std::vector<vertex_id>{0, n / 2, n - 1});
  EXPECT_EQ(reps[0], reps[1]);
  EXPECT_EQ(reps[1], reps[2]);

  s.batch_add_counts(std::vector<ett_substrate::count_delta>{
      {3, -1, -2}, {9, 0, -1}});
  std::vector<edge> cuts(path.begin(), path.begin() + 8);
  s.batch_cut(cuts);
  EXPECT_FALSE(f.connected(0, 8));
  EXPECT_TRUE(f.connected(8, n - 1));
  EXPECT_TRUE(s.check_consistency().empty());
}

TEST(TreapEtt, StarStress) {
  const vertex_id n = 300;
  treap_ett f(n);
  for (vertex_id i = 1; i < n; ++i) f.link(0, i);
  EXPECT_EQ(f.component_size(0), n);
  for (vertex_id i = 1; i < n; i += 2) f.cut(0, i);
  for (vertex_id i = 1; i < n; ++i)
    EXPECT_EQ(f.connected(0, i), i % 2 == 0);
  EXPECT_TRUE(f.check_consistency().empty());
}

}  // namespace
}  // namespace bdc
