// Scheduler and fork-join tests: correctness of parallel_invoke /
// parallel_for under nesting, worker-count changes, and load imbalance.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/scheduler.hpp"
#include "parallel/work_stealing_deque.hpp"

namespace bdc {
namespace {

TEST(Scheduler, ParallelForCoversRangeExactlyOnce) {
  const size_t n = 1 << 20;
  std::vector<std::atomic<uint8_t>> hits(n);
  parallel_for(0, n, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1u) << i;
}

TEST(Scheduler, ParallelForEmptyAndSingleton) {
  std::atomic<int> count{0};
  parallel_for(5, 5, [&](size_t) { count++; });
  EXPECT_EQ(count.load(), 0);
  parallel_for(7, 8, [&](size_t i) {
    EXPECT_EQ(i, 7u);
    count++;
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(Scheduler, ParallelForRespectsGrain) {
  std::atomic<long> sum{0};
  parallel_for(
      0, 100000, [&](size_t i) { sum.fetch_add(static_cast<long>(i)); }, 17);
  EXPECT_EQ(sum.load(), 100000L * 99999 / 2);
}

TEST(Scheduler, ParallelInvokeRunsBoth) {
  std::atomic<int> a{0}, b{0};
  parallel_invoke([&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a.load(), 1);
  EXPECT_EQ(b.load(), 2);
}

TEST(Scheduler, DeepNesting) {
  // A fork-join tree of depth ~16; validates helping joins don't deadlock.
  std::function<long(long, long)> sum_range = [&](long lo, long hi) -> long {
    if (hi - lo <= 4) {
      long s = 0;
      for (long i = lo; i < hi; ++i) s += i;
      return s;
    }
    long mid = lo + (hi - lo) / 2, left = 0, right = 0;
    parallel_invoke([&] { left = sum_range(lo, mid); },
                    [&] { right = sum_range(mid, hi); });
    return left + right;
  };
  EXPECT_EQ(sum_range(0, 100000), 100000L * 99999 / 2);
}

TEST(Scheduler, UnbalancedWork) {
  // One heavy iteration amid many light ones: stealing must pick it up.
  std::atomic<long> total{0};
  parallel_for(0, 1000, [&](size_t i) {
    long local = 0;
    size_t reps = (i == 0) ? 2000000 : 10;
    for (size_t j = 0; j < reps; ++j) local += static_cast<long>(j % 7);
    total.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_GT(total.load(), 0);
}

TEST(Scheduler, WorkerCountChange) {
  unsigned before = num_workers();
  set_num_workers(1);
  EXPECT_EQ(num_workers(), 1u);
  std::atomic<int> c{0};
  parallel_for(0, 1000, [&](size_t) { c++; });
  EXPECT_EQ(c.load(), 1000);
  set_num_workers(3);
  EXPECT_EQ(num_workers(), 3u);
  c = 0;
  parallel_for(0, 1000, [&](size_t) { c++; });
  EXPECT_EQ(c.load(), 1000);
  set_num_workers(before);
}

TEST(Deque, SequentialPushPopLifo) {
  internal::work_stealing_deque dq;
  internal::job* a = reinterpret_cast<internal::job*>(8);
  internal::job* b = reinterpret_cast<internal::job*>(16);
  dq.push(a);
  dq.push(b);
  EXPECT_EQ(dq.pop(), b);
  EXPECT_EQ(dq.pop(), a);
  EXPECT_EQ(dq.pop(), nullptr);
}

TEST(Deque, StealFifo) {
  internal::work_stealing_deque dq;
  internal::job* a = reinterpret_cast<internal::job*>(8);
  internal::job* b = reinterpret_cast<internal::job*>(16);
  dq.push(a);
  dq.push(b);
  EXPECT_EQ(dq.steal(), a);
  EXPECT_EQ(dq.pop(), b);
  EXPECT_EQ(dq.steal(), nullptr);
}

class ParallelForSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelForSweep, SumMatchesClosedForm) {
  size_t n = GetParam();
  std::atomic<long> sum{0};
  parallel_for(0, n, [&](size_t i) {
    sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(),
            static_cast<long>(n) * (static_cast<long>(n) - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParallelForSweep,
                         ::testing::Values(0, 1, 2, 3, 7, 64, 1000, 4097,
                                           100000));

}  // namespace
}  // namespace bdc
