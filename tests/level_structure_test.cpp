// Direct unit tests of the level hierarchy's compound operations:
// registration, kind flips, pushes between levels, detach/re-attach, and
// lazy materialization — independent of the search algorithms above them.
#include <gtest/gtest.h>

#include <vector>

#include "core/level_structure.hpp"

namespace bdc {
namespace {

std::vector<edge> canon(std::initializer_list<edge> es) {
  std::vector<edge> out;
  for (edge e : es) out.push_back(e.canonical());
  return out;
}

TEST(LevelStructure, Sizing) {
  level_structure tiny(2, 1);
  EXPECT_EQ(tiny.num_levels(), 1);
  EXPECT_EQ(tiny.capacity(0), 2u);

  level_structure ls(1000, 1);
  EXPECT_EQ(ls.num_levels(), 10);  // ceil(lg 1000)
  EXPECT_EQ(ls.capacity(ls.top()), 1024u);
  EXPECT_NE(ls.forest_if(ls.top()), nullptr);  // top always materialized
  EXPECT_EQ(ls.forest_if(0), nullptr);         // others lazy
}

TEST(LevelStructure, AddEdgesRegistersEverything) {
  level_structure ls(16, 2);
  int top = ls.top();
  auto es = canon({{0, 1}, {2, 3}, {1, 2}});
  std::vector<uint8_t> kinds = {1, 1, 0};
  ls.add_edges(top, es, kinds);
  ls.link_tree(top, canon({{0, 1}, {2, 3}}));

  EXPECT_EQ(ls.num_edges(), 3u);
  const edge_record* rec = ls.record_of({1, 2});
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->level, top);
  EXPECT_EQ(rec->is_tree, 0);
  EXPECT_EQ(ls.adj(top).nontree_degree(1), 1u);
  EXPECT_EQ(ls.adj(top).tree_degree(1), 1u);
  auto counts = ls.forest(top).vertex_counts(1);
  EXPECT_EQ(counts.tree_edges, 1u);
  EXPECT_EQ(counts.nontree_edges, 1u);
}

TEST(LevelStructure, PromoteFlipsKindEverywhere) {
  level_structure ls(16, 3);
  int top = ls.top();
  auto es = canon({{4, 5}});
  std::vector<uint8_t> kinds = {0};
  ls.add_edges(top, es, kinds);
  ls.promote_to_tree(top, es);
  EXPECT_EQ(ls.record_of({4, 5})->is_tree, 1);
  EXPECT_EQ(ls.adj(top).tree_degree(4), 1u);
  EXPECT_EQ(ls.adj(top).nontree_degree(4), 0u);
  EXPECT_EQ(ls.forest(top).vertex_counts(5).tree_edges, 1u);
}

TEST(LevelStructure, MoveDownMaterializesAndLinks) {
  level_structure ls(16, 4);
  int top = ls.top();
  auto es = canon({{0, 1}});
  std::vector<uint8_t> kinds = {1};
  ls.add_edges(top, es, kinds);
  ls.link_tree(top, es);
  EXPECT_EQ(ls.forest_if(top - 1), nullptr);

  ls.move_down(top, es);
  ASSERT_NE(ls.forest_if(top - 1), nullptr);
  EXPECT_EQ(ls.record_of({0, 1})->level, top - 1);
  EXPECT_TRUE(ls.forest(top - 1).has_edge({0, 1}));
  EXPECT_TRUE(ls.forest(top).has_edge({0, 1}));  // still in higher forest
  EXPECT_EQ(ls.adj(top).tree_degree(0), 0u);
  EXPECT_EQ(ls.adj(top - 1).tree_degree(0), 1u);
  EXPECT_EQ(ls.forest(top).vertex_counts(0).tree_edges, 0u);
  EXPECT_EQ(ls.forest(top - 1).vertex_counts(0).tree_edges, 1u);
}

TEST(LevelStructure, DetachAndReattach) {
  level_structure ls(16, 5);
  int top = ls.top();
  auto es = canon({{2, 6}, {2, 7}});
  std::vector<uint8_t> kinds = {0, 0};
  ls.add_edges(top, es, kinds);

  auto just_one = canon({{2, 6}});
  ls.detach_edges(top, just_one);
  EXPECT_EQ(ls.adj(top).nontree_degree(2), 1u);  // (2,7) remains
  EXPECT_EQ(ls.forest(top).vertex_counts(2).nontree_edges, 1u);
  ASSERT_NE(ls.record_of({2, 6}), nullptr);  // record survives detach

  ls.insert_detached(top - 1, just_one);
  EXPECT_EQ(ls.record_of({2, 6})->level, top - 1);
  EXPECT_EQ(ls.adj(top - 1).nontree_degree(6), 1u);
  EXPECT_EQ(ls.forest(top - 1).vertex_counts(6).nontree_edges, 1u);
}

TEST(LevelStructure, RemoveEdgesAcrossLevels) {
  level_structure ls(16, 6);
  int top = ls.top();
  auto tree_es = canon({{0, 1}});
  auto non_es = canon({{0, 2}});
  std::vector<uint8_t> t{1}, f{0};
  ls.add_edges(top, tree_es, t);
  ls.link_tree(top, tree_es);
  ls.add_edges(top, non_es, f);
  ls.move_down(top, tree_es);  // now at different levels

  std::vector<edge> both = {tree_es[0], non_es[0]};
  ls.remove_edges(both);
  EXPECT_EQ(ls.num_edges(), 0u);
  EXPECT_EQ(ls.adj(top).nontree_degree(0), 0u);
  EXPECT_EQ(ls.adj(top - 1).tree_degree(0), 0u);
  EXPECT_EQ(ls.forest(top - 1).vertex_counts(0).tree_edges, 0u);
  // Forest membership is managed by the caller (batch_delete cuts
  // separately); here the edge is still linked:
  EXPECT_TRUE(ls.forest(top).has_edge({0, 1}));
}

TEST(LevelStructure, ExpandFetchOrdersAndCounts) {
  level_structure ls(16, 7);
  int top = ls.top();
  auto es = canon({{3, 4}, {3, 5}, {3, 6}});
  std::vector<uint8_t> kinds = {0, 0, 0};
  ls.add_edges(top, es, kinds);
  std::vector<std::pair<vertex_id, uint32_t>> slots = {{3, 2}};
  std::vector<edge> out;
  ls.expand_fetch(top, /*nontree=*/true, slots, out);
  EXPECT_EQ(out.size(), 2u);
  for (const edge& e : out) EXPECT_EQ(e.u, 3u);
}

}  // namespace
}  // namespace bdc
