// Randomized property tests for the core structure: every engine, several
// graph shapes and batch regimes, driven in lock-step with a union-find
// recompute oracle AND the independent sequential HDT implementation.
// Invariants are re-validated after every batch.
//
// Every scenario runs at three worker-pool sizes — 1, 2, and the hardware
// default — because scheduler-dependent bugs (racy batch phases, grouping
// that silently assumes one worker) only surface when the pool actually
// forks, and CI machines default to whatever nproc happens to be. The
// grid is additionally crossed with the substrate configurations: each
// uniform backend (skiplist, treap, blocked) plus the mixed per-level
// policy (blocked below a threshold, skip list above), so the policy
// hook's cross-substrate handoffs get the same oracle scrutiny.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/batch_connectivity.hpp"
#include "gen/graph_gen.hpp"
#include "hdt/hdt_connectivity.hpp"
#include "spanning/union_find.hpp"
#include "test_substrates.hpp"
#include "test_workers.hpp"
#include "util/random.hpp"

namespace bdc {
namespace {

using ::bdc::testing::kSubConfigs;
using ::bdc::testing::kWorkerGrid;
using ::bdc::testing::sub_config;
using ::bdc::testing::worker_pool_guard;
using ::bdc::testing::workers_name;

struct scenario {
  level_search_kind engine;
  int n;
  int rounds;
  int insert_rate;  // percent of round budget that are insertions
  uint64_t seed;
};

class PropertySweep
    : public ::testing::TestWithParam<
          std::tuple<scenario, unsigned, sub_config>> {};

TEST_P(PropertySweep, OracleLockstep) {
  const scenario sc = std::get<0>(GetParam());
  worker_pool_guard pool(std::get<1>(GetParam()));
  const sub_config& cfg = std::get<2>(GetParam());
  const vertex_id n = static_cast<vertex_id>(sc.n);
  random_stream rs(sc.seed);
  options o;
  o.search = sc.engine;
  o.seed = sc.seed * 3 + 1;
  o = cfg.apply(o);
  batch_dynamic_connectivity dc(n, o);
  hdt_connectivity hdt(n, sc.seed * 5 + 2);
  std::set<std::pair<vertex_id, vertex_id>> present;

  for (int round = 0; round < sc.rounds; ++round) {
    // Insertion batch (with deliberate garbage: dups, self-loops).
    std::vector<edge> ins;
    int ni = 1 + static_cast<int>(rs.next(30));
    for (int t = 0; t < ni; ++t) {
      vertex_id u = static_cast<vertex_id>(rs.next(n));
      vertex_id v = static_cast<vertex_id>(rs.next(n));
      ins.push_back({u, v});
      if (rs.next(10) == 0) ins.push_back({v, u});
    }
    if (rs.next(100) < static_cast<uint64_t>(sc.insert_rate)) {
      dc.batch_insert(ins);
      hdt.batch_insert(ins);
      for (auto e : ins)
        if (!e.is_self_loop())
          present.insert({e.canonical().u, e.canonical().v});
      auto rep = dc.check_invariants();
      ASSERT_TRUE(rep.ok) << "insert r" << round << ": " << rep.message;
    }

    // Deletion batch.
    std::vector<edge> del;
    for (auto& pe : present)
      if (rs.next(100) < 30) del.push_back({pe.first, pe.second});
    del.push_back({static_cast<vertex_id>(rs.next(n)),
                   static_cast<vertex_id>(rs.next(n))});  // mostly absent
    dc.batch_delete(del);
    hdt.batch_delete(del);
    for (auto& e : del) present.erase({e.canonical().u, e.canonical().v});
    auto rep = dc.check_invariants();
    ASSERT_TRUE(rep.ok) << "delete r" << round << ": " << rep.message;
    ASSERT_TRUE(hdt.check_invariants().empty()) << "hdt r" << round;

    // Cross-validation: dc vs union-find vs HDT.
    union_find oracle(n);
    for (auto& pe : present) oracle.unite(pe.first, pe.second);
    std::vector<std::pair<vertex_id, vertex_id>> qs;
    for (int q = 0; q < 80; ++q)
      qs.push_back({static_cast<vertex_id>(rs.next(n)),
                    static_cast<vertex_id>(rs.next(n))});
    auto got = dc.batch_connected(qs);
    auto got_hdt = hdt.batch_connected(qs);
    for (size_t q = 0; q < qs.size(); ++q) {
      bool expect = oracle.connected(qs[q].first, qs[q].second);
      ASSERT_EQ(got[q], expect) << "r" << round << " q" << q;
      ASSERT_EQ(got_hdt[q], expect) << "r" << round << " q" << q;
    }
    ASSERT_EQ(dc.num_edges(), present.size());
    ASSERT_EQ(hdt.num_edges(), present.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, PropertySweep,
    ::testing::Combine(
        ::testing::Values(
            scenario{level_search_kind::interleaved, 60, 25, 80, 101},
            scenario{level_search_kind::interleaved, 200, 20, 70, 102},
            scenario{level_search_kind::interleaved, 500, 12, 60, 103},
            scenario{level_search_kind::simple, 60, 25, 80, 104},
            scenario{level_search_kind::simple, 200, 20, 70, 105},
            scenario{level_search_kind::simple, 500, 12, 60, 106},
            scenario{level_search_kind::scan_all, 60, 20, 80, 107},
            scenario{level_search_kind::scan_all, 200, 15, 70, 108},
            scenario{level_search_kind::interleaved, 17, 30, 75, 109},
            scenario{level_search_kind::simple, 17, 30, 75, 110}),
        ::testing::ValuesIn(kWorkerGrid), ::testing::ValuesIn(kSubConfigs)),
    [](const ::testing::TestParamInfo<std::tuple<scenario, unsigned,
                                                 sub_config>>& info) {
      const scenario& sc = std::get<0>(info.param);
      return "seed" + std::to_string(sc.seed) + "_w" +
             workers_name(std::get<1>(info.param)) + "_" +
             std::get<2>(info.param).name;
    });

// Structured stress: repeatedly shatter a dense random graph with very
// large deletion batches (the regime Theorem 9 targets).
class ShatterSweep
    : public ::testing::TestWithParam<
          std::tuple<level_search_kind, unsigned, sub_config>> {};

TEST_P(ShatterSweep, LargeBatchLifecycle) {
  options o;
  o.search = std::get<0>(GetParam());
  o = std::get<2>(GetParam()).apply(o);
  worker_pool_guard pool(std::get<1>(GetParam()));
  const vertex_id n = 256;
  batch_dynamic_connectivity dc(n, o);
  for (int cycle = 0; cycle < 3; ++cycle) {
    auto es = gen_erdos_renyi(n, 1200, 500 + cycle);
    dc.batch_insert(es);
    auto rep = dc.check_invariants();
    ASSERT_TRUE(rep.ok) << rep.message;
    ASSERT_TRUE(dc.connected(0, n - 1));
    // Delete in two giant batches.
    size_t half = es.size() / 2;
    dc.batch_delete(std::span<const edge>(es.data(), half));
    rep = dc.check_invariants();
    ASSERT_TRUE(rep.ok) << rep.message;
    dc.batch_delete(
        std::span<const edge>(es.data() + half, es.size() - half));
    rep = dc.check_invariants();
    ASSERT_TRUE(rep.ok) << rep.message;
    ASSERT_EQ(dc.num_edges(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, ShatterSweep,
    ::testing::Combine(::testing::Values(level_search_kind::interleaved,
                                         level_search_kind::simple,
                                         level_search_kind::scan_all),
                       ::testing::ValuesIn(kWorkerGrid),
                       ::testing::ValuesIn(kSubConfigs)),
    [](const ::testing::TestParamInfo<
        std::tuple<level_search_kind, unsigned, sub_config>>& info) {
      return "engine" +
             std::to_string(static_cast<int>(std::get<0>(info.param))) + "_w" +
             workers_name(std::get<1>(info.param)) + "_" +
             std::get<2>(info.param).name;
    });

}  // namespace
}  // namespace bdc
