// Utility-layer tests: hashing/RNG determinism and distribution sanity,
// bit tricks, and the edge type's canonical form.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/bits.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace bdc {
namespace {

TEST(Bits, Log2AndPow2) {
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(2), 1u);
  EXPECT_EQ(log2_ceil(1024), 10u);
  EXPECT_EQ(log2_ceil(1025), 11u);
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(1023), 9u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(1000), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
}

TEST(Random, DeterministicStreams) {
  random a(42), b(42), c(43);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.ith_rand(i), b.ith_rand(i));
  }
  size_t diff = 0;
  for (uint64_t i = 0; i < 100; ++i) diff += a.ith_rand(i) != c.ith_rand(i);
  EXPECT_GT(diff, 90u);
}

TEST(Random, ForkedStreamsAreIndependent) {
  random base(7);
  random f1 = base.fork(1), f2 = base.fork(2);
  size_t diff = 0;
  for (uint64_t i = 0; i < 100; ++i) diff += f1.ith_rand(i) != f2.ith_rand(i);
  EXPECT_GT(diff, 90u);
}

TEST(Random, BoundedDrawsAreUniformIsh) {
  random r(11);
  const uint64_t bound = 10, n = 100000;
  std::vector<size_t> counts(bound, 0);
  for (uint64_t i = 0; i < n; ++i) counts[r.ith_rand(i, bound)]++;
  for (uint64_t b = 0; b < bound; ++b) {
    EXPECT_GT(counts[b], n / bound * 8 / 10);
    EXPECT_LT(counts[b], n / bound * 12 / 10);
  }
}

TEST(Random, Hash64AvalanchesLowBits) {
  // Consecutive inputs must produce well-spread low bits (the skip list
  // derives node heights from them).
  std::set<uint64_t> low;
  for (uint64_t i = 0; i < 256; ++i) low.insert(hash64(i) & 0xff);
  EXPECT_GT(low.size(), 150u);
}

TEST(Edge, CanonicalForm) {
  edge e{7, 3};
  EXPECT_EQ(e.canonical(), (edge{3, 7}));
  EXPECT_EQ(e.canonical().canonical(), (edge{3, 7}));
  EXPECT_EQ(e.reversed(), (edge{3, 7}));
  EXPECT_TRUE((edge{5, 5}).is_self_loop());
  EXPECT_FALSE(e.is_self_loop());
}

TEST(Edge, KeyRoundTrip) {
  for (vertex_id u : {0u, 1u, 77u, (1u << 30)}) {
    for (vertex_id v : {0u, 2u, 1000000u}) {
      edge e{u, v};
      EXPECT_EQ(edge_from_key(edge_key(e)), e);
    }
  }
  EXPECT_NE(edge_key(edge{1, 2}), edge_key(edge{2, 1}));  // directional
}

TEST(Edge, HashSpreads) {
  std::set<size_t> hashes;
  std::hash<edge> h;
  for (vertex_id u = 0; u < 50; ++u)
    for (vertex_id v = 0; v < 50; ++v) hashes.insert(h(edge{u, v}));
  EXPECT_EQ(hashes.size(), 2500u);  // no collisions on this tiny set
}

TEST(RandomStream, SequentialConvenience) {
  random_stream rs(5);
  uint64_t a = rs.next(), b = rs.next();
  EXPECT_NE(a, b);
  double d = rs.next_double();
  EXPECT_GE(d, 0.0);
  EXPECT_LT(d, 1.0);
  uint64_t bounded = rs.next(17);
  EXPECT_LT(bounded, 17u);
}

}  // namespace
}  // namespace bdc
