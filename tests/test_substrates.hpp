// Shared test helper: the substrate configurations the differential
// suites sweep — every uniform backend plus the mixed per-level policy,
// each crossed with the two dispatch modes of the substrate layer (the
// devirtualized std::variant fast path and the ett_substrate virtual
// bridge; see src/ett/ett_forest.hpp). One table, included by ett_test,
// connectivity_test, connectivity_property_test, and substrate_fuzz_test,
// so the parameterized suites and the fuzz differential can never drift
// onto different grids when a substrate, policy shape, or dispatch mode
// is added.
#pragma once

#include "core/batch_connectivity.hpp"
#include "ett/ett_forest.hpp"
#include "ett/ett_substrate.hpp"

namespace bdc::testing {

// A substrate configuration: a uniform backend, or the mixed per-level
// policy (options::policy) handing the low levels to the blocked
// representation — plus the dispatch mode every materialized forest uses.
struct sub_config {
  const char* name;
  substrate sub;
  level_policy policy;
  dispatch disp = dispatch::static_variant;

  [[nodiscard]] options apply(options o) const {
    o.substrate = sub;
    o.policy = policy;
    o.dispatch = disp;
    return o;
  }
};

inline constexpr sub_config kSubConfigs[] = {
    {"skiplist", substrate::skiplist, {}},
    {"treap", substrate::treap, {}},
    {"blocked", substrate::blocked, {}},
    {"mixed", substrate::skiplist, {4, substrate::blocked}},
    {"skiplist_virtual", substrate::skiplist, {}, dispatch::virtual_bridge},
    {"treap_virtual", substrate::treap, {}, dispatch::virtual_bridge},
    {"blocked_virtual", substrate::blocked, {}, dispatch::virtual_bridge},
    {"mixed_virtual",
     substrate::skiplist,
     {4, substrate::blocked},
     dispatch::virtual_bridge},
};

// The substrate-surface grid for suites that drive an ett_forest
// directly (no level structure / policy): every backend crossed with
// both dispatch modes.
struct ett_config {
  const char* name;
  substrate sub;
  dispatch disp;
};

inline constexpr ett_config kEttConfigs[] = {
    {"skiplist", substrate::skiplist, dispatch::static_variant},
    {"treap", substrate::treap, dispatch::static_variant},
    {"blocked", substrate::blocked, dispatch::static_variant},
    {"skiplist_virtual", substrate::skiplist, dispatch::virtual_bridge},
    {"treap_virtual", substrate::treap, dispatch::virtual_bridge},
    {"blocked_virtual", substrate::blocked, dispatch::virtual_bridge},
};

}  // namespace bdc::testing
