// Shared test helper: the substrate configurations the differential
// suites sweep — every uniform backend plus the mixed per-level policy.
// One table, included by connectivity_property_test and
// substrate_fuzz_test, so the property sweep and the fuzz differential
// can never drift onto different grids when a substrate or policy shape
// is added.
#pragma once

#include "core/batch_connectivity.hpp"
#include "ett/ett_substrate.hpp"

namespace bdc::testing {

// A substrate configuration: a uniform backend, or the mixed per-level
// policy (options::policy) handing the low levels to the blocked
// representation.
struct sub_config {
  const char* name;
  substrate sub;
  level_policy policy;

  [[nodiscard]] options apply(options o) const {
    o.substrate = sub;
    o.policy = policy;
    return o;
  }
};

inline constexpr sub_config kSubConfigs[] = {
    {"skiplist", substrate::skiplist, {}},
    {"treap", substrate::treap, {}},
    {"blocked", substrate::blocked, {}},
    {"mixed", substrate::skiplist, {4, substrate::blocked}},
};

}  // namespace bdc::testing
