// Invariant and consistency-walk suite for the blocked (cache-packed
// block-linked) Euler-tour substrate: block occupancy bounds, per-block
// and per-tour aggregate sums, tour orientation through splice-heavy
// shapes, singleton collapse, and pool recycling/trimming. The generic
// contract is exercised by ett_test / substrate_fuzz_test; this suite
// pins the representation-specific guarantees those cannot see.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "ett/blocked_ett.hpp"
#include "gen/graph_gen.hpp"
#include "spanning/union_find.hpp"
#include "test_workers.hpp"
#include "util/random.hpp"

namespace bdc {
namespace {

using ::bdc::testing::worker_pool_guard;

void expect_healthy(const blocked_ett& f, const char* where) {
  ASSERT_EQ(f.check_consistency(), "") << where;
}

TEST(BlockedEtt, BlockGeometry) {
  // One block must be 512 bytes of pooled storage: 8 cache lines.
  EXPECT_EQ(blocked_ett::kBlockCap, 59u);
  EXPECT_EQ(blocked_ett::kMinFill, blocked_ett::kBlockCap / 4);
}

TEST(BlockedEtt, PathTourIsPacked) {
  const vertex_id n = 600;  // tour of 3n-2 entries, dozens of blocks
  blocked_ett f(n);
  f.batch_link(gen_path(n));
  expect_healthy(f, "after path link");
  auto s = f.debug_block_stats();
  EXPECT_EQ(s.tours, 1u);
  EXPECT_EQ(s.entries, 3u * n - 2);
  // Occupancy floor: no block of a multi-block tour below kMinFill.
  EXPECT_GE(s.min_fill, blocked_ett::kMinFill);
  // Packing: the tour must not fragment into near-empty blocks.
  EXPECT_LE(s.blocks, (s.entries + blocked_ett::kMinFill - 1) /
                          blocked_ett::kMinFill);
}

TEST(BlockedEtt, OccupancyFloorSurvivesChurn) {
  // Random link/cut churn is exactly what fragments a naive block list;
  // the local rebalance must hold the floor through every batch.
  const vertex_id n = 512;
  blocked_ett f(n);
  random_stream rs(77);
  std::set<std::pair<vertex_id, vertex_id>> present;
  for (int round = 0; round < 40; ++round) {
    union_find acyclic(n);
    for (auto& pe : present) acyclic.unite(pe.first, pe.second);
    std::vector<edge> links;
    for (int t = 0; t < 64 && links.size() < 48; ++t) {
      vertex_id u = static_cast<vertex_id>(rs.next(n));
      vertex_id v = static_cast<vertex_id>(rs.next(n));
      if (u == v || !acyclic.unite(u, v)) continue;
      links.push_back({u, v});
      present.insert({edge{u, v}.canonical().u, edge{u, v}.canonical().v});
    }
    f.batch_link(links);
    ASSERT_EQ(f.check_consistency(), "") << "link round " << round;
    std::vector<edge> cuts;
    for (auto& pe : present)
      if (rs.next(3) == 0) cuts.push_back({pe.first, pe.second});
    f.batch_cut(cuts);
    for (auto& c : cuts)
      present.erase({c.canonical().u, c.canonical().v});
    ASSERT_EQ(f.check_consistency(), "") << "cut round " << round;
    auto s = f.debug_block_stats();
    if (s.blocks > 0 && s.max_fill > 0) {
      ASSERT_GE(s.min_fill, blocked_ett::kMinFill) << "round " << round;
    }
  }
}

TEST(BlockedEtt, AggregatesTrackCountsAcrossSplices) {
  const vertex_id n = 200;
  blocked_ett f(n);
  // Give every vertex distinct counters BEFORE any structure exists, so
  // splices must carry them correctly through every block move.
  std::vector<ett_substrate::count_delta> deltas;
  for (vertex_id v = 0; v < n; ++v)
    deltas.push_back({v, static_cast<int32_t>(v % 3),
                      static_cast<int32_t>(v % 5)});
  f.batch_add_counts(deltas);
  f.batch_link(gen_star(n));
  expect_healthy(f, "after star link");
  ett_counts cc = f.component_counts(17);
  uint32_t tree = 0, nontree = 0;
  for (vertex_id v = 0; v < n; ++v) {
    tree += v % 3;
    nontree += v % 5;
  }
  EXPECT_EQ(cc.vertices, n);
  EXPECT_EQ(cc.tree_edges, tree);
  EXPECT_EQ(cc.nontree_edges, nontree);
  // Cut half the spokes; sums must split exactly.
  std::vector<edge> cuts;
  for (vertex_id v = 1; v < n; v += 2) cuts.push_back({0, v});
  f.batch_cut(cuts);
  expect_healthy(f, "after spoke cuts");
  for (vertex_id v = 1; v < n; v += 2) {
    auto one = f.component_counts(v);
    EXPECT_EQ(one.vertices, 1u);
    EXPECT_EQ(one.tree_edges, v % 3);
    EXPECT_EQ(one.nontree_edges, v % 5);
  }
}

TEST(BlockedEtt, FetchPrunesByBlockAggregates) {
  const vertex_id n = 400;
  blocked_ett f(n);
  f.batch_link(gen_path(n));
  // Slots on two distant vertices only; the pruned walk must surface
  // exactly them, in tour order, for any want.
  std::vector<ett_substrate::count_delta> up = {{50, 0, 4}, {333, 0, 6}};
  f.batch_add_counts(up);
  expect_healthy(f, "after counts");
  for (uint64_t want : {1ull, 4ull, 7ull, 10ull, 100ull}) {
    auto slots = f.fetch_nontree(200, want);
    uint64_t sum = 0;
    for (auto& [v, take] : slots) {
      EXPECT_TRUE(v == 50 || v == 333) << v;
      sum += take;
    }
    EXPECT_EQ(sum, std::min<uint64_t>(want, 10));
  }
}

TEST(BlockedEtt, TourOrientationThroughNestedSplices) {
  // A caterpillar linked inside-out then partially cut exercises every
  // splice seam: host/guest swaps, full-block arc placement, and the
  // cut's cycle re-closing. check_consistency walks the closed Euler
  // tour, so a single misplaced segment fails loudly.
  const vertex_id n = 257;
  blocked_ett f(n);
  std::vector<edge> spine;
  for (vertex_id v = 1; v + 2 < n; v += 2) spine.push_back({v, v + 2});
  f.batch_link(spine);
  expect_healthy(f, "spine");
  std::vector<edge> legs;
  for (vertex_id v = 1; v + 1 < n; v += 2) legs.push_back({v, v + 1});
  f.batch_link(legs);
  expect_healthy(f, "legs");
  // Cut every fourth spine edge, then relink in reverse orientation.
  std::vector<edge> cuts;
  for (size_t i = 0; i < spine.size(); i += 4) cuts.push_back(spine[i]);
  f.batch_cut(cuts);
  expect_healthy(f, "spine cuts");
  std::vector<edge> relink;
  for (const edge& e : cuts) relink.push_back({e.v, e.u});
  f.batch_link(relink);
  expect_healthy(f, "relink");
  EXPECT_EQ(f.component_counts(1).vertices, n - 1);
}

TEST(BlockedEtt, SingletonCollapseAndReps) {
  blocked_ett f(8);
  f.batch_link(std::vector<edge>{{0, 1}, {1, 2}});
  auto rep_linked = f.find_rep(2);
  EXPECT_EQ(f.find_rep(0), rep_linked);
  f.batch_cut(std::vector<edge>{{0, 1}, {1, 2}});
  expect_healthy(f, "after full cut");
  // All singletons again: reps distinct, counts unity, no blocks remain.
  std::set<ett_substrate::rep> reps;
  for (vertex_id v = 0; v < 8; ++v) {
    EXPECT_EQ(f.component_counts(v).vertices, 1u);
    reps.insert(f.find_rep(v));
  }
  EXPECT_EQ(reps.size(), 8u);
  EXPECT_EQ(f.debug_block_stats().blocks, 0u);
}

TEST(BlockedEtt, ComponentVerticesFollowTourOrder) {
  blocked_ett f(16);
  f.batch_link(std::vector<edge>{{3, 7}, {7, 11}, {11, 15}});
  auto vs = f.component_vertices(7);
  std::set<vertex_id> got(vs.begin(), vs.end());
  EXPECT_EQ(got, (std::set<vertex_id>{3, 7, 11, 15}));
  EXPECT_EQ(vs.size(), 4u);
}

TEST(BlockedEtt, PoolRecyclesAndTrims) {
  // Big enough that the tour spans several 64 KiB pool blocks (~1000
  // tour blocks of 512 B), so a partial trim has something to release.
  const vertex_id n = 20000;
  blocked_ett f(n);
  auto tree = gen_random_tree(n, 5);
  f.batch_link(tree);
  auto first = f.pool_stats();
  EXPECT_GT(first.fresh, 0u);
  EXPECT_GT(first.outstanding(), 0u);
  f.batch_cut(tree);
  expect_healthy(f, "after full teardown");
  auto emptied = f.pool_stats();
  // Every block and tour descriptor returned: outstanding hits zero,
  // which is exactly when high-watermark trimming may release memory.
  EXPECT_EQ(emptied.outstanding(), 0u);
  // Trim down to a two-block spare set first: the spares stay owned and
  // are re-carved by the next burst instead of hitting operator new.
  size_t released = f.trim_pool(2 * node_pool::kBlockBytes);
  EXPECT_GT(released, 0u);
  auto kept = f.pool_stats();
  EXPECT_EQ(kept.blocks, 2u);
  EXPECT_EQ(kept.spare_blocks, 2u);
  f.batch_link(tree);
  EXPECT_EQ(f.pool_stats().spare_blocks, 0u);  // spares carved again
  expect_healthy(f, "after relink on spares");
  f.batch_cut(tree);
  // A full trim releases everything.
  released = f.trim_pool();
  EXPECT_GT(released, 0u);
  EXPECT_EQ(f.pool_stats().retained_bytes(), 0u);
  // The forest stays fully usable after a trim.
  f.batch_link(tree);
  expect_healthy(f, "after relink post-trim");
  EXPECT_EQ(f.component_counts(0).vertices, n);
  // Churn a second time: the pool must serve from freelists, not fresh
  // carves, once warmed up.
  f.batch_cut(tree);
  f.batch_link(tree);
  auto warmed = f.pool_stats();
  EXPECT_GT(warmed.recycled, 0u);
}

TEST(BlockedEtt, TrimIsRefusedWhileNodesLive) {
  blocked_ett f(64);
  f.batch_link(gen_path(64));
  EXPECT_GT(f.pool_stats().outstanding(), 0u);
  EXPECT_EQ(f.trim_pool(), 0u);  // blocks hold live tour data
  expect_healthy(f, "after refused trim");
  EXPECT_EQ(f.component_counts(0).vertices, 64u);
}

// The representation-specific invariants must also hold under the
// parallel grouped mutation path (multi-worker pool, batches above the
// sequential cutoff).
TEST(BlockedEtt, ParallelBatchesKeepInvariants) {
  worker_pool_guard pool(4);
  const vertex_id n = 2048;
  blocked_ett f(n);
  random_stream rs(31);
  std::set<std::pair<vertex_id, vertex_id>> present;
  for (int round = 0; round < 10; ++round) {
    union_find acyclic(n);
    for (auto& pe : present) acyclic.unite(pe.first, pe.second);
    std::vector<edge> links;
    for (int t = 0; t < 2000 && links.size() < 300; ++t) {
      vertex_id u = static_cast<vertex_id>(rs.next(n));
      vertex_id v = static_cast<vertex_id>(rs.next(n));
      if (u == v || !acyclic.unite(u, v)) continue;
      links.push_back({u, v});
      present.insert({edge{u, v}.canonical().u, edge{u, v}.canonical().v});
    }
    f.batch_link(links);
    ASSERT_EQ(f.check_consistency(), "") << "parallel link r" << round;
    std::vector<edge> cuts;
    for (auto& pe : present)
      if (rs.next(4) == 0) cuts.push_back({pe.first, pe.second});
    f.batch_cut(cuts);
    for (auto& c : cuts) present.erase({c.canonical().u, c.canonical().v});
    ASSERT_EQ(f.check_consistency(), "") << "parallel cut r" << round;
    auto s = f.debug_block_stats();
    if (s.blocks > 0 && s.max_fill > 0) {
      ASSERT_GE(s.min_fill, blocked_ett::kMinFill);
    }
  }
}

}  // namespace
}  // namespace bdc
