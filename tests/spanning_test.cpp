// Static spanning forest / connectivity tests against BFS references.
#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "gen/graph_gen.hpp"
#include "parallel/scheduler.hpp"
#include "spanning/union_find.hpp"
#include "util/random.hpp"

namespace bdc {
namespace {

std::vector<uint32_t> bfs_labels(size_t n, const std::vector<edge>& es) {
  std::vector<std::vector<uint32_t>> adj(n);
  for (const edge& e : es) {
    if (e.is_self_loop()) continue;
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  std::vector<uint32_t> label(n, UINT32_MAX);
  for (size_t s = 0; s < n; ++s) {
    if (label[s] != UINT32_MAX) continue;
    label[s] = static_cast<uint32_t>(s);
    std::queue<uint32_t> q;
    q.push(static_cast<uint32_t>(s));
    while (!q.empty()) {
      uint32_t u = q.front();
      q.pop();
      for (uint32_t v : adj[u]) {
        if (label[v] == UINT32_MAX) {
          label[v] = static_cast<uint32_t>(s);
          q.push(v);
        }
      }
    }
  }
  return label;
}

bool same_partition(const std::vector<uint32_t>& a,
                    const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return false;
  std::unordered_map<uint32_t, uint32_t> fwd, bwd;
  for (size_t i = 0; i < a.size(); ++i) {
    auto [it1, new1] = fwd.emplace(a[i], b[i]);
    if (!new1 && it1->second != b[i]) return false;
    auto [it2, new2] = bwd.emplace(b[i], a[i]);
    if (!new2 && it2->second != a[i]) return false;
  }
  return true;
}

TEST(UnionFind, Sequential) {
  union_find uf(10);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_FALSE(uf.connected(0, 3));
}

class SpanningSweep
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(SpanningSweep, LabelsMatchBfs) {
  auto [n, m] = GetParam();
  auto es = gen_erdos_renyi(static_cast<vertex_id>(n), m, n * 1000 + m);
  auto got = connected_components(n, es);
  auto expect = bfs_labels(n, es);
  EXPECT_TRUE(same_partition(got, expect));
}

TEST_P(SpanningSweep, ForestPropertyAndCoverage) {
  auto [n, m] = GetParam();
  auto es = gen_erdos_renyi(static_cast<vertex_id>(n), m, n * 977 + m);
  auto sf = spanning_forest(n, es);
  // Chosen edges form a forest (checked via union-find: every chosen edge
  // merges two distinct components).
  union_find uf(n);
  for (uint32_t idx : sf.tree_edge_indices) {
    ASSERT_TRUE(uf.unite(es[idx].u, es[idx].v))
        << "cycle in spanning forest";
  }
  // The forest spans: its components equal the graph's components.
  auto expect = bfs_labels(n, es);
  std::vector<uint32_t> forest_labels(n);
  for (size_t v = 0; v < n; ++v)
    forest_labels[v] = uf.find(static_cast<uint32_t>(v));
  EXPECT_TRUE(same_partition(forest_labels, expect));
  // Returned labels agree too.
  EXPECT_TRUE(same_partition(sf.labels, expect));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SpanningSweep,
    ::testing::Values(std::pair<size_t, size_t>{2, 1},
                      std::pair<size_t, size_t>{10, 5},
                      std::pair<size_t, size_t>{100, 50},
                      std::pair<size_t, size_t>{100, 500},
                      std::pair<size_t, size_t>{1000, 200},
                      std::pair<size_t, size_t>{10000, 30000},
                      std::pair<size_t, size_t>{50000, 100000}));

TEST(Spanning, SelfLoopsNeverChosen) {
  std::vector<edge> es = {{1, 1}, {2, 2}, {1, 2}};
  auto sf = spanning_forest(5, es);
  ASSERT_EQ(sf.tree_edge_indices.size(), 1u);
  EXPECT_EQ(sf.tree_edge_indices[0], 2u);
}

TEST(Spanning, DuplicateEdgesChooseOne) {
  std::vector<edge> es(100, edge{0, 1});
  auto sf = spanning_forest(3, es);
  EXPECT_EQ(sf.tree_edge_indices.size(), 1u);
}

TEST(ConcurrentUnionFind, ParallelUnitesWinExactlyOnce) {
  // All threads try to unite the same pair; exactly one must win.
  for (int round = 0; round < 100; ++round) {
    concurrent_union_find uf(4);
    std::atomic<int> wins{0};
    parallel_for(0, 64, [&](size_t) {
      if (uf.unite(1, 2)) wins++;
    });
    EXPECT_EQ(wins.load(), 1);
  }
}

}  // namespace
}  // namespace bdc
