// Shared test helper: running a test body under a specific scheduler
// worker-pool size, restoring the previous pool afterwards. Used by the
// suites that value-parameterize over worker counts so scheduler-dependent
// races cannot hide behind whatever nproc the test machine happens to
// have.
#pragma once

#include <string>

#include "parallel/scheduler.hpp"

namespace bdc::testing {

// The "hardware" worker count of this run (BDC_NUM_WORKERS or hardware
// concurrency), captured before any test can resize the pool. Safe at
// static init: num_workers() bootstraps the scheduler singleton on first
// use.
inline const unsigned kDefaultWorkers = num_workers();

// Worker counts the parameterized suites cross with (0 = hardware
// default, resolved through kDefaultWorkers).
inline constexpr unsigned kWorkerGrid[] = {1, 2, 0};

inline std::string workers_name(unsigned w) {
  return w == 0 ? "hw" : std::to_string(w);
}

// RAII pool resize. set_num_workers may only run with no parallel work in
// flight, which holds between gtest cases.
class worker_pool_guard {
 public:
  explicit worker_pool_guard(unsigned workers) : saved_(num_workers()) {
    set_num_workers(workers == 0 ? kDefaultWorkers : workers);
  }
  ~worker_pool_guard() { set_num_workers(saved_); }

  worker_pool_guard(const worker_pool_guard&) = delete;
  worker_pool_guard& operator=(const worker_pool_guard&) = delete;

 private:
  unsigned saved_;
};

}  // namespace bdc::testing
