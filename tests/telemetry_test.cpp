// Tests for the telemetry subsystem (src/obs/): sharded metric storage,
// log2 histogram bucketing, concurrent increments (the TSan build runs
// this suite too — that run IS the data-race check), exporter
// round-trips, and the compile-gate no-op guarantees.
#include <atomic>
#include <cstring>
#include <sstream>
#include <thread>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "core/batch_connectivity.hpp"
#include "gen/graph_gen.hpp"
#include "gen/update_stream.hpp"
#include "obs/collectors.hpp"
#include "obs/exporters.hpp"
#include "obs/telemetry.hpp"
#include "parallel/scheduler.hpp"

namespace bdc::obs {
namespace {

// ---------------------------------------------------------------------
// Registry primitives
// ---------------------------------------------------------------------

TEST(TelemetryCounter, ShardMergeSumsAllShards) {
  counter c;
  // Increments land on the calling worker's shard; driving them through
  // a parallel_for spreads them across worker ids, and value() must sum
  // every shard regardless of where they landed.
  parallel_for(0, 1000, [&](size_t) { c.add(1); }, 1);
  EXPECT_EQ(c.value(), 1000u);
  c.add(5);
  EXPECT_EQ(c.value(), 1005u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(TelemetryCounter, ConcurrentIncrementsFromPlainThreads) {
  // External std::threads (worker_id() == 0 plus hashed ids) hammer one
  // counter; the total must be exact and, under TSan, race-free.
  counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) c.add(1);
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(TelemetryGauge, SetAndAdd) {
  gauge g;
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.add(-50);
  EXPECT_EQ(g.value(), -8);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(TelemetryHistogram, BucketBoundaries) {
  // bucket_of is bit_width: bucket 0 = {0}, bucket b>=1 = [2^(b-1),
  // 2^b - 1]. Check every boundary pair up to 2^20.
  EXPECT_EQ(histogram::bucket_of(0), 0u);
  EXPECT_EQ(histogram::bucket_of(1), 1u);
  for (size_t b = 1; b <= 20; ++b) {
    const uint64_t lo = uint64_t{1} << (b - 1);
    const uint64_t hi = (uint64_t{1} << b) - 1;
    EXPECT_EQ(histogram::bucket_of(lo), b) << "low edge of bucket " << b;
    EXPECT_EQ(histogram::bucket_of(hi), b) << "high edge of bucket " << b;
    EXPECT_EQ(histogram::bucket_upper(b), hi);
  }
  EXPECT_EQ(histogram::bucket_of(~uint64_t{0}), 64u);
}

TEST(TelemetryHistogram, RecordAggregatesCountSumBuckets) {
  histogram h;
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(1024);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030u);
  auto b = h.buckets();
  ASSERT_GT(b.size(), 11u);
  EXPECT_EQ(b[0], 1u);   // {0}
  EXPECT_EQ(b[1], 1u);   // {1}
  EXPECT_EQ(b[2], 2u);   // {2,3}
  EXPECT_EQ(b[11], 1u);  // [1024, 2047]
  // Trailing zero buckets are trimmed.
  EXPECT_EQ(b.size(), 12u);
}

TEST(TelemetryHistogram, ConcurrentRecordsMergeExactly) {
  histogram h;
  parallel_for(0, 5000, [&](size_t i) { h.record(i % 7); }, 1);
  EXPECT_EQ(h.count(), 5000u);
  uint64_t expect_sum = 0;
  for (size_t i = 0; i < 5000; ++i) expect_sum += i % 7;
  EXPECT_EQ(h.sum(), expect_sum);
}

TEST(TelemetryRegistry, NamesAreStableAndReferencesPersist) {
  metric_registry reg;
  counter& a = reg.get_counter("x.a");
  a.add(3);
  // Registering more metrics must not invalidate earlier references.
  for (int i = 0; i < 100; ++i)
    reg.get_counter("x.fill" + std::to_string(i)).add(0);
  counter& a2 = reg.get_counter("x.a");
  EXPECT_EQ(&a, &a2);
  EXPECT_EQ(a2.value(), 3u);

  reg.get_gauge("x.g").set(-7);
  reg.get_histogram("x.h").record(9);
  metrics_snapshot snap = reg.snapshot();
  ASSERT_NE(snap.find("x.a"), nullptr);
  EXPECT_EQ(snap.find("x.a")->value, 3);
  EXPECT_EQ(snap.find("x.g")->value, -7);
  EXPECT_EQ(snap.find("x.h")->count, 1u);
  // A counter and a gauge may NOT share a name within their own kind
  // map, but snapshot is sorted by name for deterministic export.
  for (size_t i = 1; i < snap.rows.size(); ++i)
    EXPECT_LE(snap.rows[i - 1].name, snap.rows[i].name);

  reg.reset();
  EXPECT_EQ(reg.get_counter("x.a").value(), 0u);
  EXPECT_EQ(reg.get_histogram("x.h").count(), 0u);
}

TEST(TelemetrySpan, RecordsIntoSpanHistogram) {
  metric_registry reg;
  histogram& h = reg.span_histogram("unit.test_phase");
  {
    phase_span sp("unit.test_phase", h);
  }
  EXPECT_EQ(h.count(), 1u);
  metrics_snapshot snap = reg.snapshot();
  ASSERT_NE(snap.find("span.unit.test_phase.us"), nullptr);
}

// ---------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------

TEST(TelemetryExport, JsonlRoundTrip) {
  metrics_snapshot snap;
  snap.add_counter("core.edges_inserted", 12345);
  snap.add_gauge("pool.limbo", -3);
  metric_row h;
  h.name = "span.batch.delete.us";
  h.kind = metric_kind::histogram;
  h.count = 4;
  h.sum = 100;
  h.value = 4;
  h.buckets = {0, 2, 1, 1};
  snap.rows.push_back(h);

  std::ostringstream out;
  export_jsonl(out, snap, "unit/\"quoted\"\nlabel");
  std::istringstream in(out.str());
  auto recs = parse_jsonl(in);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].label, "unit/\"quoted\"\nlabel");
  EXPECT_EQ(recs[0].row.name, "core.edges_inserted");
  EXPECT_EQ(recs[0].row.kind, metric_kind::counter);
  EXPECT_EQ(recs[0].row.value, 12345);
  EXPECT_EQ(recs[1].row.name, "pool.limbo");
  EXPECT_EQ(recs[1].row.kind, metric_kind::gauge);
  EXPECT_EQ(recs[1].row.value, -3);
  EXPECT_EQ(recs[2].row.name, "span.batch.delete.us");
  EXPECT_EQ(recs[2].row.kind, metric_kind::histogram);
  EXPECT_EQ(recs[2].row.count, 4u);
  EXPECT_EQ(recs[2].row.sum, 100u);
  EXPECT_EQ(recs[2].row.buckets, (std::vector<uint64_t>{0, 2, 1, 1}));
}

TEST(TelemetryExport, ParseJsonlSkipsForeignLines) {
  std::istringstream in(
      "not json at all\n"
      "{\"something\":\"else\"}\n"
      "{\"label\":\"l\",\"metric\":\"a.b\",\"kind\":\"counter\","
      "\"value\":7}\n");
  auto recs = parse_jsonl(in);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].row.name, "a.b");
  EXPECT_EQ(recs[0].row.value, 7);
}

TEST(TelemetryExport, ChromeTraceIsWellFormed) {
  std::vector<trace_event> evs;
  evs.push_back({"batch.delete", 1000, 500, 0, 'X'});
  evs.push_back({"router.promote", 1500, 0, 1, 'i'});
  std::ostringstream out;
  export_chrome_trace(out, evs, 2);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(s.find("\"batch.delete\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(s.find("\"dropped_events\":2"), std::string::npos);
  // Crude but effective balance check on the generated JSON.
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
            std::count(s.begin(), s.end(), '}'));
  EXPECT_EQ(std::count(s.begin(), s.end(), '['),
            std::count(s.begin(), s.end(), ']'));
}

TEST(TelemetryExport, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

TEST(TelemetryExport, TextReportContainsEveryMetric) {
  metrics_snapshot snap;
  snap.add_counter("core.edges_inserted", 10);
  snap.add_gauge("pool.limbo", 2);
  char buf[4096];
  std::FILE* mem = tmpfile();
  ASSERT_NE(mem, nullptr);
  export_text(mem, snap);
  std::rewind(mem);
  size_t got = std::fread(buf, 1, sizeof buf - 1, mem);
  std::fclose(mem);
  buf[got] = '\0';
  EXPECT_NE(std::strstr(buf, "core:"), nullptr);
  EXPECT_NE(std::strstr(buf, "edges_inserted 10"), nullptr);
  EXPECT_NE(std::strstr(buf, "pool:"), nullptr);
  EXPECT_NE(std::strstr(buf, "limbo 2"), nullptr);
}

// ---------------------------------------------------------------------
// Collectors
// ---------------------------------------------------------------------

TEST(TelemetryCollect, CoreStatisticsCatalog) {
  statistics st;
  st.batches_inserted = 3;
  st.edges_deleted = 17;
  st.snapshots_published = 2;
  st.publishes_full = 1;
  metrics_snapshot snap;
  collect(snap, st);
  ASSERT_NE(snap.find("core.batches_inserted"), nullptr);
  EXPECT_EQ(snap.find("core.batches_inserted")->value, 3);
  EXPECT_EQ(snap.find("core.edges_deleted")->value, 17);
  EXPECT_EQ(snap.find("publish.snapshots")->value, 2);
  EXPECT_EQ(snap.find("publish.full_walks")->value, 1);
}

TEST(TelemetryCollect, PublishRowsOmittedWhenServiceOff) {
  statistics st;  // snapshots_published == 0
  metrics_snapshot snap;
  collect(snap, st);
  EXPECT_EQ(snap.find("publish.snapshots"), nullptr);
}

TEST(TelemetryCollect, RouterDerivedHitRate) {
  router_statistics st;
  st.cache_lookups = 200;
  st.cache_hits = 150;
  metrics_snapshot snap;
  collect(snap, st);
  EXPECT_EQ(snap.find("router.cache_hit_pct")->value, 75);
  metrics_snapshot empty;
  collect(empty, router_statistics{});
  EXPECT_EQ(empty.find("router.cache_hit_pct")->value, -1);
}

// ---------------------------------------------------------------------
// Trace recorder
// ---------------------------------------------------------------------

TEST(TelemetryTrace, RecordsAndDrainsSortedEvents) {
  trace_recorder tr;
  EXPECT_FALSE(tr.active());
  tr.instant("ignored.before.enable");
  tr.enable(/*capacity_per_shard=*/16);
  EXPECT_TRUE(tr.active());
  tr.record({"b", 200, 10, 0, 'X'});
  tr.record({"a", 100, 10, 0, 'X'});
  tr.instant("c");  // stamped "now"; may land anywhere in the order
  auto evs = tr.drain();
  ASSERT_EQ(evs.size(), 3u);
  auto index_of = [&](const char* name) {
    for (size_t i = 0; i < evs.size(); ++i)
      if (std::strcmp(evs[i].name, name) == 0) return i;
    return evs.size();
  };
  ASSERT_LT(index_of("c"), evs.size());
  EXPECT_LT(index_of("a"), index_of("b"));  // drain sorts by timestamp
  for (size_t i = 1; i < evs.size(); ++i)
    EXPECT_LE(evs[i - 1].ts_ns, evs[i].ts_ns);
  EXPECT_EQ(tr.dropped(), 0u);
  tr.disable();
  tr.record({"after", 1, 1, 0, 'X'});
  EXPECT_TRUE(tr.drain().empty());
}

TEST(TelemetryTrace, OverflowDropsInsteadOfGrowing) {
  trace_recorder tr;
  tr.enable(/*capacity_per_shard=*/4);
  for (int i = 0; i < 64; ++i) tr.record({"e", 0, 0, 0, 'X'});
  EXPECT_GT(tr.dropped(), 0u);
  // Single-threaded: all 64 went to one shard, 4 were kept.
  EXPECT_EQ(tr.drain().size(), 4u);
  tr.disable();
}

// ---------------------------------------------------------------------
// Compile-gate no-op guarantees
// ---------------------------------------------------------------------

TEST(TelemetryNoop, TypesAreFreeOfStateAndCost) {
  // The OFF build swaps these in for the real types; they must carry no
  // state and impose no destruction cost anywhere they are embedded.
  static_assert(sizeof(noop::phase_span) == 1);
  static_assert(sizeof(noop::counter) == 1);
  static_assert(sizeof(noop::gauge) == 1);
  static_assert(sizeof(noop::histogram) == 1);
  static_assert(std::is_trivially_destructible_v<noop::phase_span>);
  static_assert(std::is_trivially_destructible_v<noop::counter>);
  static_assert(std::is_trivially_destructible_v<noop::histogram>);
  static_assert(std::is_empty_v<noop::phase_span>);
  static_assert(std::is_empty_v<noop::counter>);
  static_assert(std::is_empty_v<noop::gauge>);
  static_assert(std::is_empty_v<noop::histogram>);
  // And they accept the full recording surface as no-ops.
  noop::counter c;
  c.add(5);
  EXPECT_EQ(c.value(), 0u);
  noop::histogram h;
  h.record(123);
  EXPECT_EQ(h.count(), 0u);
  noop::phase_span sp;
  (void)sp;
}

#if !BDC_TELEMETRY_ENABLED
TEST(TelemetryNoop, SpanMacroCompilesOut) {
  // In the OFF build the macro must expand to the empty object only —
  // no registry registration, no clock reads.
  const size_t before =
      metric_registry::global().snapshot().rows.size();
  {
    BDC_PHASE_SPAN(sp, "off.build.phase");
  }
  EXPECT_EQ(metric_registry::global().snapshot().rows.size(), before);
}
#endif

// ---------------------------------------------------------------------
// End-to-end: spans land in the global registry during real batches
// ---------------------------------------------------------------------

TEST(TelemetryIntegration, DeletePipelineSpansRecorded) {
  metric_registry::global().reset();
  auto graph = gen_erdos_renyi(256, 512, 7);
  batch_dynamic_connectivity s(256, {});
  s.batch_insert(graph);
  s.batch_delete(std::span<const edge>(graph.data(), 64));
  metrics_snapshot snap = metric_registry::global().snapshot();
#if BDC_TELEMETRY_ENABLED
  const metric_row* ins = snap.find("span.batch.insert.us");
  const metric_row* del = snap.find("span.batch.delete.us");
  ASSERT_NE(ins, nullptr);
  ASSERT_NE(del, nullptr);
  EXPECT_GE(ins->count, 1u);
  EXPECT_GE(del->count, 1u);
  // The sanitize sub-span fires alongside every top-level batch span.
  ASSERT_NE(snap.find("span.delete.sanitize.us"), nullptr);
#else
  EXPECT_EQ(snap.find("span.batch.insert.us"), nullptr);
#endif
}

}  // namespace
}  // namespace bdc::obs
