// Leveled adjacency tests: grouped insert/erase/kind-flip against a
// multiset model, position back-pointer integrity, and fetch order.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "adjacency/leveled_adjacency.hpp"
#include "util/random.hpp"

namespace bdc {
namespace {

using incidence = leveled_adjacency::incidence;

leveled_adjacency::grouped group_incidences(
    std::vector<std::pair<vertex_id, incidence>> inc) {
  return group_by_key(std::move(inc));
}

/// Registers records for edges then inserts them under both endpoints.
void add_edges(leveled_adjacency& adj, edge_dict& dict,
               const std::vector<edge>& es,
               const std::vector<uint8_t>& is_tree, int level) {
  dict.reserve_for(es.size());
  for (size_t i = 0; i < es.size(); ++i) {
    edge_record rec;
    rec.level = static_cast<int16_t>(level);
    rec.is_tree = is_tree[i];
    dict.insert(edge_key(es[i]), rec);
  }
  std::vector<std::pair<vertex_id, incidence>> inc;
  for (size_t i = 0; i < es.size(); ++i) {
    inc.push_back({es[i].u, {es[i], is_tree[i]}});
    inc.push_back({es[i].v, {es[i], is_tree[i]}});
  }
  adj.insert_grouped(group_incidences(std::move(inc)), dict);
}

TEST(Adjacency, InsertFetchErase) {
  leveled_adjacency adj;
  edge_dict dict(16);
  std::vector<edge> es = {{0, 1}, {0, 2}, {1, 2}};
  add_edges(adj, dict, es, {1, 0, 0}, 3);
  EXPECT_EQ(adj.tree_degree(0), 1u);
  EXPECT_EQ(adj.nontree_degree(0), 1u);
  EXPECT_EQ(adj.nontree_degree(1), 1u);
  EXPECT_EQ(adj.nontree_degree(2), 2u);
  EXPECT_EQ(adj.total_incidences(), 6u);
  EXPECT_TRUE(adj.check_positions(dict, 3).empty());

  std::vector<edge> fetched;
  adj.fetch_nontree(2, 10, fetched);
  EXPECT_EQ(fetched.size(), 2u);

  // Erase (0,2) from both endpoints.
  std::vector<std::pair<vertex_id, incidence>> inc = {
      {0, {{0, 2}, 0}}, {2, {{0, 2}, 0}}};
  adj.erase_grouped(group_incidences(std::move(inc)), dict);
  EXPECT_EQ(adj.nontree_degree(0), 0u);
  EXPECT_EQ(adj.nontree_degree(2), 1u);
  EXPECT_TRUE(adj.check_positions(dict, 3).empty());
}

TEST(Adjacency, ChangeKindMovesBetweenLists) {
  leveled_adjacency adj;
  edge_dict dict(16);
  std::vector<edge> es = {{1, 5}};
  add_edges(adj, dict, es, {0}, 0);
  EXPECT_EQ(adj.nontree_degree(1), 1u);
  dict.find(edge_key(edge{1, 5}))->is_tree = 1;
  std::vector<std::pair<vertex_id, incidence>> inc = {
      {1, {{1, 5}, 1}}, {5, {{1, 5}, 1}}};
  adj.change_kind_grouped(group_incidences(std::move(inc)), dict);
  EXPECT_EQ(adj.nontree_degree(1), 0u);
  EXPECT_EQ(adj.tree_degree(1), 1u);
  EXPECT_EQ(adj.tree_degree(5), 1u);
  EXPECT_TRUE(adj.check_positions(dict, 0).empty());
}

class AdjacencyRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(AdjacencyRandomSweep, ModelCheck) {
  int trial = GetParam();
  random_stream rs(trial * 997 + 5);
  const vertex_id n = 40;
  leveled_adjacency adj;
  edge_dict dict(16);
  // Model: canonical edge -> is_tree.
  std::map<std::pair<vertex_id, vertex_id>, bool> model;

  for (int round = 0; round < 60; ++round) {
    // Insert a random batch of absent edges.
    std::set<std::pair<vertex_id, vertex_id>> batch;
    int tries = 1 + static_cast<int>(rs.next(20));
    for (int t = 0; t < tries; ++t) {
      vertex_id u = static_cast<vertex_id>(rs.next(n));
      vertex_id v = static_cast<vertex_id>(rs.next(n));
      if (u == v) continue;
      edge c = edge{u, v}.canonical();
      if (!model.count({c.u, c.v})) batch.insert({c.u, c.v});
    }
    std::vector<edge> es;
    std::vector<uint8_t> kinds;
    for (auto& [u, v] : batch) {
      es.push_back({u, v});
      kinds.push_back(static_cast<uint8_t>(rs.next(2)));
      model[{u, v}] = kinds.back() != 0;
    }
    add_edges(adj, dict, es, kinds, 0);
    ASSERT_TRUE(adj.check_positions(dict, 0).empty()) << "r" << round;

    // Erase a random subset.
    std::vector<std::pair<vertex_id, incidence>> einc;
    std::vector<std::pair<vertex_id, vertex_id>> erased;
    for (auto& [key, is_tree] : model) {
      if (rs.next(100) < 25) {
        edge c{key.first, key.second};
        einc.push_back({c.u, {c, static_cast<uint8_t>(is_tree)}});
        einc.push_back({c.v, {c, static_cast<uint8_t>(is_tree)}});
        erased.push_back(key);
      }
    }
    if (!einc.empty()) {
      adj.erase_grouped(group_incidences(std::move(einc)), dict);
      for (auto& key : erased) {
        dict.erase(edge_key(edge{key.first, key.second}));
        model.erase(key);
      }
    }
    ASSERT_TRUE(adj.check_positions(dict, 0).empty()) << "r" << round;

    // Degrees match the model.
    for (vertex_id v = 0; v < n; ++v) {
      uint32_t td = 0, nd = 0;
      for (auto& [key, is_tree] : model) {
        if (key.first == v || key.second == v) (is_tree ? td : nd)++;
      }
      ASSERT_EQ(adj.tree_degree(v), td) << "r" << round << " v" << v;
      ASSERT_EQ(adj.nontree_degree(v), nd) << "r" << round << " v" << v;
    }
    size_t incidences = 0;
    (void)incidences;
    ASSERT_EQ(adj.total_incidences(), model.size() * 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Trials, AdjacencyRandomSweep,
                         ::testing::Range(0, 6));

TEST(Adjacency, FetchReturnsPrefix) {
  leveled_adjacency adj;
  edge_dict dict(16);
  std::vector<edge> es;
  for (vertex_id i = 1; i <= 20; ++i) es.push_back({0, i});
  add_edges(adj, dict, es, std::vector<uint8_t>(20, 0), 1);
  for (uint32_t want : {0u, 1u, 7u, 20u, 50u}) {
    std::vector<edge> out;
    adj.fetch_nontree(0, want, out);
    EXPECT_EQ(out.size(), std::min<uint32_t>(want, 20));
    std::set<edge> uniq(out.begin(), out.end());
    EXPECT_EQ(uniq.size(), out.size());  // no duplicates within a prefix
  }
}

}  // namespace
}  // namespace bdc
