// Whole-stack integration: realistic multi-phase workloads driven through
// the public API, cross-checked against both baselines, across worker
// counts. These are the closest tests to production use.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/static_connectivity.hpp"
#include "core/batch_connectivity.hpp"
#include "gen/graph_gen.hpp"
#include "gen/update_stream.hpp"
#include "hdt/hdt_connectivity.hpp"
#include "parallel/scheduler.hpp"

namespace bdc {
namespace {

void drive_stream(const update_stream& stream, vertex_id n,
                  level_search_kind engine, bool check_invariants_often) {
  options o;
  o.search = engine;
  batch_dynamic_connectivity dc(n, o);
  hdt_connectivity hdt(n);
  static_recompute_connectivity sc(n);
  size_t batch_no = 0;
  for (const auto& b : stream) {
    switch (b.op) {
      case update_batch::kind::insert:
        dc.batch_insert(b.edges);
        hdt.batch_insert(b.edges);
        sc.batch_insert(b.edges);
        break;
      case update_batch::kind::erase:
        dc.batch_delete(b.edges);
        hdt.batch_delete(b.edges);
        sc.batch_delete(b.edges);
        break;
      case update_batch::kind::query: {
        auto a = dc.batch_connected(b.queries);
        auto h = hdt.batch_connected(b.queries);
        auto s = sc.batch_connected(b.queries);
        for (size_t i = 0; i < b.queries.size(); ++i) {
          ASSERT_EQ(a[i], s[i]) << "batch " << batch_no << " q" << i;
          ASSERT_EQ(h[i], s[i]) << "batch " << batch_no << " q" << i;
        }
        break;
      }
    }
    if (check_invariants_often && batch_no % 7 == 0) {
      auto rep = dc.check_invariants();
      ASSERT_TRUE(rep.ok) << "batch " << batch_no << ": " << rep.message;
    }
    ++batch_no;
  }
  ASSERT_EQ(dc.num_edges(), sc.num_edges());
  auto rep = dc.check_invariants();
  ASSERT_TRUE(rep.ok) << rep.message;
}

TEST(Integration, DeletionStreamErdosRenyi) {
  const vertex_id n = 200;
  auto graph = gen_erdos_renyi(n, 800, 42);
  auto stream = make_deletion_stream(graph, n, 100, 40, 16, 43);
  drive_stream(stream, n, level_search_kind::interleaved, true);
}

TEST(Integration, DeletionStreamSimpleEngine) {
  const vertex_id n = 200;
  auto graph = gen_erdos_renyi(n, 800, 44);
  auto stream = make_deletion_stream(graph, n, 100, 40, 16, 45);
  drive_stream(stream, n, level_search_kind::simple, true);
}

TEST(Integration, SlidingWindowRmat) {
  const vertex_id n = 256;
  auto graph = gen_rmat(n, 2000, 46);
  auto stream = make_sliding_window_stream(graph, 600, 150, 47);
  // Append a query wave at the end.
  update_batch q;
  q.op = update_batch::kind::query;
  q.queries = make_query_batch(n, 300, 48);
  stream.push_back(q);
  drive_stream(stream, n, level_search_kind::interleaved, false);
}

TEST(Integration, GridChurn) {
  const vertex_id rows = 12, cols = 12;
  auto graph = gen_grid(rows, cols);
  auto stream = make_deletion_stream(graph, rows * cols, 64, 24, 10, 49);
  drive_stream(stream, rows * cols, level_search_kind::interleaved, true);
}

TEST(Integration, WorkerCountsProduceIdenticalAnswers) {
  const vertex_id n = 160;
  auto graph = gen_erdos_renyi(n, 600, 50);
  auto stream = make_deletion_stream(graph, n, 80, 32, 0, 51);
  auto queries = make_query_batch(n, 500, 52);

  unsigned before = num_workers();
  std::vector<std::vector<bool>> answers;
  for (unsigned workers : {1u, 2u, 4u}) {
    set_num_workers(workers);
    options o;
    o.search = level_search_kind::interleaved;
    batch_dynamic_connectivity dc(n, o);
    for (const auto& b : stream) {
      if (b.op == update_batch::kind::insert) dc.batch_insert(b.edges);
      if (b.op == update_batch::kind::erase) dc.batch_delete(b.edges);
    }
    answers.push_back(dc.batch_connected(queries));
    auto rep = dc.check_invariants();
    ASSERT_TRUE(rep.ok) << "workers=" << workers << ": " << rep.message;
  }
  set_num_workers(before);
  EXPECT_EQ(answers[0], answers[1]);
  EXPECT_EQ(answers[0], answers[2]);
}

TEST(Integration, LargeSparseLifecycle) {
  // A bigger run to exercise multi-level pushes: n=2048, m=3n.
  const vertex_id n = 2048;
  auto graph = gen_erdos_renyi(n, 3 * n, 53);
  options o;
  batch_dynamic_connectivity dc(n, o);
  static_recompute_connectivity sc(n);
  auto stream = make_deletion_stream(graph, n, 1024, 512, 0, 54);
  for (const auto& b : stream) {
    if (b.op == update_batch::kind::insert) {
      dc.batch_insert(b.edges);
      sc.batch_insert(b.edges);
    } else if (b.op == update_batch::kind::erase) {
      dc.batch_delete(b.edges);
      sc.batch_delete(b.edges);
    }
    auto qs = make_query_batch(n, 64, 55);
    ASSERT_EQ(dc.batch_connected(qs), sc.batch_connected(qs));
  }
  EXPECT_EQ(dc.num_edges(), 0u);
}

}  // namespace
}  // namespace bdc
