// The sparse per-level vertex directory (src/ett/vertex_directory.hpp)
// and the O(active)-memory contract it gives every substrate:
//
//   * unit invariants of the directory itself (activation, publication,
//     chunk reclamation, parallel activation of chunk-sharing vertices);
//   * substrate-level activation hygiene on the full ett_forest grid —
//     active_vertices() tracks exactly the touched vertices and returns
//     to zero when the last edge leaves, including a mid-stream first
//     touch of the highest vertex ids (the regression that motivated the
//     directory: dense arrays made that O(n) up front, the directory
//     must make it O(1) at touch time);
//   * end-to-end memory-scales-with-activity at n = 2^20 through
//     batch_dynamic_connectivity::levels().footprint(), asserting the
//     sparse hierarchy beats the old dense n-slots-per-materialized-level
//     layout by at least 5x on a hub-churn-shaped workload.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/batch_connectivity.hpp"
#include "ett/ett_forest.hpp"
#include "ett/vertex_directory.hpp"
#include "gen/graph_gen.hpp"
#include "gen/update_stream.hpp"
#include "parallel/primitives.hpp"
#include "test_substrates.hpp"
#include "util/node_pool.hpp"

namespace bdc {
namespace {

using ::bdc::testing::kEttConfigs;

using dir8 = vertex_directory<uint64_t>;

TEST(VertexDirectory, ActivateFindDeactivate) {
  node_pool pool;
  dir8 dir(1000, pool);
  EXPECT_EQ(dir.active_count(), 0u);
  EXPECT_EQ(dir.find(17), nullptr);

  uint64_t& slot = dir.activate(17, [](uint64_t& s) { s = 42; });
  EXPECT_EQ(slot, 42u);
  ASSERT_NE(dir.find(17), nullptr);
  EXPECT_EQ(*dir.find(17), 42u);
  EXPECT_EQ(dir.active_count(), 1u);
  // Re-activation returns the same slot untouched.
  uint64_t& again = dir.activate(17, [](uint64_t& s) { s = 99; });
  EXPECT_EQ(&again, &slot);
  EXPECT_EQ(again, 42u);
  EXPECT_EQ(dir.active_count(), 1u);

  dir.deactivate(17);
  EXPECT_EQ(dir.find(17), nullptr);
  EXPECT_EQ(dir.active_count(), 0u);
  EXPECT_EQ(dir.check_consistency(), "");
}

TEST(VertexDirectory, ChunkReclamationAndReuse) {
  node_pool pool;
  dir8 dir(10 * dir8::kSpan, pool);
  // Fill one chunk, plus a lone slot in another.
  for (uint32_t i = 0; i < dir8::kSpan; ++i)
    dir.activate(i, [&](uint64_t& s) { s = i; });
  dir.activate(5 * dir8::kSpan + 3, [](uint64_t& s) { s = 7; });
  EXPECT_EQ(dir.chunk_count(), 2u);
  const size_t two_chunk_bytes = dir.resident_bytes();

  // Empty the full chunk; the storage is only queued, not freed inline.
  for (uint32_t i = 0; i < dir8::kSpan; ++i) dir.deactivate(i);
  EXPECT_EQ(dir.chunk_count(), 2u);
  dir.sweep_pending();
  EXPECT_EQ(dir.chunk_count(), 1u);
  EXPECT_LT(dir.resident_bytes(), two_chunk_bytes);
  EXPECT_EQ(dir.check_consistency(), "");

  // A deactivate/re-activate pair before the sweep keeps the chunk.
  dir.deactivate(5 * dir8::kSpan + 3);
  dir.activate(5 * dir8::kSpan + 4, [](uint64_t& s) { s = 8; });
  dir.sweep_pending();
  EXPECT_EQ(dir.chunk_count(), 1u);
  ASSERT_NE(dir.find(5 * dir8::kSpan + 4), nullptr);

  // Reclaimed ranges re-activate cleanly (a fresh chunk is installed).
  dir.activate(3, [](uint64_t& s) { s = 11; });
  EXPECT_EQ(dir.chunk_count(), 2u);
  EXPECT_EQ(*dir.find(3), 11u);
  EXPECT_EQ(dir.check_consistency(), "");
}

TEST(VertexDirectory, ParallelActivationSharingChunks) {
  node_pool pool;
  const vertex_id n = 1 << 14;
  dir8 dir(n, pool);
  // Every vertex activates concurrently; vertices share chunks, so this
  // exercises the CAS install race and the atomic occupancy updates.
  parallel_for(0, n, [&](size_t v) {
    dir.activate(static_cast<vertex_id>(v),
                 [&](uint64_t& s) { s = uint64_t{v} * 3; });
  });
  EXPECT_EQ(dir.active_count(), static_cast<uint64_t>(n));
  EXPECT_EQ(dir.chunk_count(), static_cast<uint64_t>(n / dir8::kSpan));
  EXPECT_EQ(dir.check_consistency(), "");
  parallel_for(0, n, [&](size_t v) {
    uint64_t* s = dir.find(static_cast<vertex_id>(v));
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(*s, uint64_t{v} * 3);
  });
  parallel_for(0, n, [&](size_t v) {
    dir.deactivate(static_cast<vertex_id>(v));
  });
  dir.sweep_pending();
  EXPECT_EQ(dir.active_count(), 0u);
  EXPECT_EQ(dir.chunk_count(), 0u);
  EXPECT_EQ(dir.check_consistency(), "");
}

// ---------------------------------------------------------------------
// Substrate-level activation hygiene, over the full substrate x dispatch
// grid.
// ---------------------------------------------------------------------

class SparseSubstrate : public ::testing::TestWithParam<testing::ett_config> {
};

TEST_P(SparseSubstrate, ActiveVerticesTrackTouchedSet) {
  const auto& cfg = GetParam();
  const vertex_id n = 1 << 20;
  ett_forest f(cfg.sub, n, /*seed=*/42, cfg.disp);
  EXPECT_EQ(f.active_vertices(), 0u);
  const size_t empty_bytes = f.directory_bytes();

  // A path over scattered ids, including the top of the id space.
  std::vector<vertex_id> vs = {3,      70000,  5,       999999, 131072,
                               n - 1,  17,     524288,  n - 2,  42};
  std::vector<edge> links;
  for (size_t i = 0; i + 1 < vs.size(); ++i)
    links.push_back({vs[i], vs[i + 1]});
  f.batch_link(links);
  EXPECT_EQ(f.active_vertices(), vs.size());
  EXPECT_TRUE(f.connected(3, n - 1));
  EXPECT_EQ(f.check_consistency(), "");

  // Cutting everything returns the forest to its empty footprint.
  f.batch_cut(links);
  EXPECT_EQ(f.active_vertices(), 0u);
  EXPECT_EQ(f.directory_bytes(), empty_bytes);
  EXPECT_FALSE(f.connected(3, n - 1));
  EXPECT_EQ(f.check_consistency(), "");
}

TEST_P(SparseSubstrate, HighVertexIdMidStreamFirstTouch) {
  const auto& cfg = GetParam();
  const vertex_id n = 1 << 20;
  ett_forest f(cfg.sub, n, /*seed=*/7, cfg.disp);

  // Run a few batches entirely among low ids first, so the directory has
  // settled into low chunks before the high range is ever touched.
  std::vector<edge> low = {{0, 1}, {1, 2}, {2, 3}};
  f.batch_link(low);
  std::vector<ett_forest::count_delta> low_counts = {{1, 0, 2}, {3, 0, 1}};
  f.batch_add_counts(low_counts);
  ASSERT_EQ(f.check_consistency(), "");

  // Mid-stream first touch of the very top of the id space: a tree edge
  // (activation without counters) and a counter-only vertex.
  std::vector<edge> high = {{n - 1, n - 2}};
  f.batch_link(high);
  std::vector<ett_forest::count_delta> high_counts = {{n - 3, 0, 1}};
  f.batch_add_counts(high_counts);
  EXPECT_TRUE(f.connected(n - 1, n - 2));
  EXPECT_FALSE(f.connected(n - 1, 0));
  EXPECT_EQ(f.vertex_counts(n - 3).nontree_edges, 1u);
  EXPECT_EQ(f.active_vertices(), 4u + 3u);
  EXPECT_EQ(f.check_consistency(), "");

  // And the high vertices deactivate independently of the low ones.
  std::vector<ett_forest::count_delta> undo = {{n - 3, 0, -1}};
  f.batch_add_counts(undo);
  f.batch_cut(high);
  // Only the low path remains: the low counter deltas landed on path
  // vertices (1 and 3), so they never added activations of their own.
  EXPECT_EQ(f.active_vertices(), 4u);
  EXPECT_EQ(f.check_consistency(), "");
}

INSTANTIATE_TEST_SUITE_P(Grid, SparseSubstrate,
                         ::testing::ValuesIn(kEttConfigs),
                         [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------
// End to end: memory scales with activity, not with n.
// ---------------------------------------------------------------------

TEST(SparseHierarchy, MemoryScalesWithActivityAtProductionN) {
  const vertex_id n = 1 << 20;
  // A hub-churn trace over a tiny RMAT base: ~2^11 edges touch a few
  // thousand distinct vertices out of the 2^20 id space, and the churn
  // rounds force deletions (level pushes) so lower levels materialize.
  std::vector<edge> graph = gen_rmat(n, 1 << 11, /*seed=*/5);
  update_stream stream =
      make_hub_churn_stream(graph, n, /*batch=*/256, /*rounds=*/2,
                            /*seed=*/6);

  options o;
  batch_dynamic_connectivity s(n, o);
  uint64_t max_active = 0;
  for (const update_batch& b : stream) {
    switch (b.op) {
      case update_batch::kind::insert:
        s.batch_insert(b.edges);
        break;
      case update_batch::kind::erase:
        s.batch_delete(b.edges);
        break;
      case update_batch::kind::query:
        (void)s.batch_connected(b.queries);
        break;
    }
    max_active =
        std::max(max_active, s.levels().footprint().active_vertices);
  }
  level_structure::hierarchy_stats hs = s.levels().footprint();
  ASSERT_GT(hs.materialized, 1u) << "churn never materialized a lower "
                                    "level; the test lost its point";

  // Activity (and therefore active slots) is bounded by the touched
  // vertex set per level, nowhere near n.
  EXPECT_LT(max_active, static_cast<uint64_t>(n) / 64);

  // The dense layout this PR removed kept >= n 8-byte slots per
  // materialized level; sparse must beat that floor by >= 5x.
  const uint64_t dense_floor = hs.materialized * uint64_t{n} * 8;
  EXPECT_LT(hs.bytes * 5, dense_floor)
      << "bytes=" << hs.bytes << " dense_floor=" << dense_floor;

  auto rep = s.check_invariants();
  EXPECT_TRUE(rep.ok) << rep.message;
}

}  // namespace
}  // namespace bdc
