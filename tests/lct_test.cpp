// Link-cut tree tests: path-maximum queries against a brute-force forest
// model under randomized link/cut churn.
#include <gtest/gtest.h>

#include <map>
#include <queue>
#include <set>
#include <vector>

#include "lct/link_cut_tree.hpp"
#include "util/random.hpp"

namespace bdc {
namespace {

/// Brute-force forest: adjacency with weights; path max by BFS.
struct forest_model {
  explicit forest_model(vertex_id n) : adj(n) {}
  std::vector<std::map<vertex_id, uint64_t>> adj;

  void link(vertex_id u, vertex_id v, uint64_t w) {
    adj[u][v] = w;
    adj[v][u] = w;
  }
  void cut(vertex_id u, vertex_id v) {
    adj[u].erase(v);
    adj[v].erase(u);
  }
  /// (reachable, max weight on path).
  std::pair<bool, uint64_t> path_max(vertex_id u, vertex_id v) const {
    std::vector<int64_t> best(adj.size(), -1);
    std::queue<vertex_id> q;
    best[u] = 0;
    q.push(u);
    while (!q.empty()) {
      vertex_id x = q.front();
      q.pop();
      for (auto& [y, w] : adj[x]) {
        if (best[y] >= 0) continue;
        best[y] = std::max<int64_t>(best[x], static_cast<int64_t>(w));
        q.push(y);
      }
    }
    if (best[v] < 0) return {false, 0};
    return {true, static_cast<uint64_t>(best[v])};
  }
};

TEST(Lct, Basics) {
  link_cut_tree t(5);
  EXPECT_FALSE(t.connected(0, 1));
  t.link(0, 1, 10);
  t.link(1, 2, 5);
  EXPECT_TRUE(t.connected(0, 2));
  auto pm = t.path_max(0, 2);
  ASSERT_TRUE(pm.connected);
  EXPECT_EQ(pm.weight, 10u);
  EXPECT_EQ(pm.max_edge, (edge{0, 1}));
  t.cut(0, 1);
  EXPECT_FALSE(t.connected(0, 2));
  EXPECT_TRUE(t.connected(1, 2));
  EXPECT_TRUE(t.check_consistency().empty());
}

TEST(Lct, PathMaxOnLongPath) {
  const vertex_id n = 200;
  link_cut_tree t(n);
  for (vertex_id i = 1; i < n; ++i) t.link(i - 1, i, i);  // weight = i
  for (vertex_id a = 0; a < n; a += 37) {
    for (vertex_id b = a + 1; b < n; b += 41) {
      auto pm = t.path_max(a, b);
      ASSERT_TRUE(pm.connected);
      EXPECT_EQ(pm.weight, b);  // heaviest edge on a..b is (b-1, b)
    }
  }
  EXPECT_TRUE(t.check_consistency().empty());
}

TEST(Lct, SelfAndDisconnectedQueries) {
  link_cut_tree t(4);
  EXPECT_TRUE(t.connected(2, 2));
  EXPECT_FALSE(t.path_max(2, 2).connected);
  EXPECT_FALSE(t.path_max(0, 3).connected);
}

class LctRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(LctRandomSweep, AgainstBruteForce) {
  int trial = GetParam();
  random_stream rs(trial * 1009 + 3);
  const vertex_id n = 80;
  link_cut_tree t(n);
  forest_model model(n);
  std::set<std::pair<vertex_id, vertex_id>> tree_edges;

  for (int step = 0; step < 2500; ++step) {
    vertex_id u = static_cast<vertex_id>(rs.next(n));
    vertex_id v = static_cast<vertex_id>(rs.next(n));
    if (u == v) continue;
    if (!t.connected(u, v)) {
      uint64_t w = 1 + rs.next(1000);
      t.link(u, v, w);
      model.link(u, v, w);
      tree_edges.insert({edge{u, v}.canonical().u,
                         edge{u, v}.canonical().v});
    } else if (!tree_edges.empty() && rs.next(2) == 0) {
      auto it = tree_edges.begin();
      std::advance(it, rs.next(tree_edges.size()));
      t.cut(it->first, it->second);
      model.cut(it->first, it->second);
      tree_edges.erase(it);
    }
    if (step % 50 == 0) {
      for (int q = 0; q < 20; ++q) {
        vertex_id a = static_cast<vertex_id>(rs.next(n));
        vertex_id b = static_cast<vertex_id>(rs.next(n));
        if (a == b) continue;
        auto [reach, w] = model.path_max(a, b);
        ASSERT_EQ(t.connected(a, b), reach) << "step " << step;
        if (reach) {
          auto pm = t.path_max(a, b);
          ASSERT_TRUE(pm.connected);
          ASSERT_EQ(pm.weight, w) << "step " << step;
        }
      }
    }
    if (step % 500 == 0) {
      ASSERT_TRUE(t.check_consistency().empty()) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Trials, LctRandomSweep, ::testing::Range(0, 6));

TEST(Lct, EdgeNodeRecycling) {
  link_cut_tree t(4);
  for (int i = 0; i < 100; ++i) {
    t.link(0, 1, static_cast<uint64_t>(i + 1));
    t.link(1, 2, static_cast<uint64_t>(2 * i + 1));
    auto pm = t.path_max(0, 2);
    ASSERT_TRUE(pm.connected);
    EXPECT_EQ(pm.weight, std::max<uint64_t>(i + 1, 2 * i + 1));
    t.cut(0, 1);
    t.cut(1, 2);
  }
  EXPECT_EQ(t.num_edges(), 0u);
  EXPECT_TRUE(t.check_consistency().empty());
}

}  // namespace
}  // namespace bdc
