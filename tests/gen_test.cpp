// Generator sanity: sizes, distinctness, determinism, stream structure.
#include <gtest/gtest.h>

#include <set>

#include "gen/graph_gen.hpp"
#include "gen/update_stream.hpp"
#include "spanning/union_find.hpp"

namespace bdc {
namespace {

void expect_distinct_canonical(const std::vector<edge>& es) {
  std::set<std::pair<vertex_id, vertex_id>> seen;
  for (const edge& e : es) {
    ASSERT_FALSE(e.is_self_loop());
    edge c = e.canonical();
    ASSERT_TRUE(seen.insert({c.u, c.v}).second) << "duplicate " << c;
  }
}

TEST(Gen, ErdosRenyi) {
  auto es = gen_erdos_renyi(1000, 5000, 7);
  EXPECT_EQ(es.size(), 5000u);
  expect_distinct_canonical(es);
  // Deterministic given the seed.
  EXPECT_EQ(gen_erdos_renyi(1000, 5000, 7), es);
  EXPECT_NE(gen_erdos_renyi(1000, 5000, 8), es);
}

TEST(Gen, RandomTreeIsSpanningTree) {
  auto es = gen_random_tree(500, 3);
  EXPECT_EQ(es.size(), 499u);
  union_find uf(500);
  for (auto& e : es) ASSERT_TRUE(uf.unite(e.u, e.v)) << "cycle";
  for (vertex_id v = 1; v < 500; ++v) ASSERT_TRUE(uf.connected(0, v));
}

TEST(Gen, RandomForestComponentCount) {
  auto es = gen_random_forest(1000, 10, 4);
  union_find uf(1000);
  for (auto& e : es) ASSERT_TRUE(uf.unite(e.u, e.v));
  std::set<uint32_t> roots;
  for (vertex_id v = 0; v < 1000; ++v) roots.insert(uf.find(v));
  EXPECT_EQ(roots.size(), 10u);
}

TEST(Gen, StructuredShapes) {
  EXPECT_EQ(gen_path(100).size(), 99u);
  EXPECT_EQ(gen_star(100).size(), 99u);
  auto grid = gen_grid(5, 7);
  EXPECT_EQ(grid.size(), 5u * 6 + 4u * 7);
  expect_distinct_canonical(grid);
}

TEST(Gen, RmatShape) {
  auto es = gen_rmat(1 << 10, 4000, 11);
  EXPECT_EQ(es.size(), 4000u);
  expect_distinct_canonical(es);
  // Power-law-ish: max degree well above average.
  std::vector<size_t> deg(1 << 10, 0);
  for (auto& e : es) {
    deg[e.u]++;
    deg[e.v]++;
  }
  size_t mx = *std::max_element(deg.begin(), deg.end());
  EXPECT_GT(mx, 8u * 2 * 4000 / (1 << 10));
}

TEST(Stream, InsertionStreamCoversGraph) {
  auto graph = gen_erdos_renyi(100, 300, 5);
  auto stream = make_insertion_stream(graph, 64, 9);
  size_t total = 0;
  for (auto& b : stream) {
    EXPECT_EQ(b.op, update_batch::kind::insert);
    EXPECT_LE(b.edges.size(), 64u);
    total += b.edges.size();
  }
  EXPECT_EQ(total, graph.size());
}

TEST(Stream, DeletionStreamDeletesEverythingOnce) {
  auto graph = gen_erdos_renyi(100, 300, 6);
  auto stream = make_deletion_stream(graph, 100, 50, 32, 8, 10);
  size_t inserted = 0, deleted = 0, queries = 0;
  for (auto& b : stream) {
    switch (b.op) {
      case update_batch::kind::insert:
        inserted += b.edges.size();
        break;
      case update_batch::kind::erase:
        EXPECT_LE(b.edges.size(), 32u);
        deleted += b.edges.size();
        break;
      case update_batch::kind::query:
        EXPECT_EQ(b.queries.size(), 8u);
        queries += b.queries.size();
        break;
    }
  }
  EXPECT_EQ(inserted, graph.size());
  EXPECT_EQ(deleted, graph.size());
  EXPECT_GT(queries, 0u);
}

TEST(Stream, SlidingWindowBoundsLiveEdges) {
  auto graph = gen_erdos_renyi(200, 2000, 8);
  auto stream = make_sliding_window_stream(graph, 500, 100, 12);
  size_t live = 0, max_live = 0;
  for (auto& b : stream) {
    if (b.op == update_batch::kind::insert) {
      live += b.edges.size();
    } else if (b.op == update_batch::kind::erase) {
      live -= b.edges.size();
    }
    max_live = std::max(max_live, live);
  }
  EXPECT_LE(max_live, 500u + 100u);
  EXPECT_GT(max_live, 400u);
}

TEST(Stream, ShuffleIsPermutation) {
  auto graph = gen_path(1000);
  auto shuffled = graph;
  shuffle_edges(shuffled, 42);
  EXPECT_NE(shuffled, graph);
  auto a = graph, b = shuffled;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace bdc
