// Network resilience analysis: a data-center-style topology (grid backbone
// plus random shortcut links) subjected to waves of correlated link
// failures and repairs. After each wave the operator checks whether
// critical endpoint pairs can still reach each other.
//
// Deletions dominate this workload — exactly the regime the paper's
// replacement-edge search (Algorithm 5) is built for: every failed bridge
// triggers a hunt for a backup path through lower levels.
#include <cstdio>

#include "core/batch_connectivity.hpp"
#include "gen/graph_gen.hpp"
#include "gen/update_stream.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

using namespace bdc;

int main() {
  const vertex_id rows = 64, cols = 64;
  const vertex_id n = rows * cols;
  std::printf("resilience analysis: %ux%u grid backbone + shortcuts\n",
              rows, cols);

  auto backbone = gen_grid(rows, cols);
  auto shortcuts = gen_erdos_renyi(n, n / 4, 99);

  batch_dynamic_connectivity net(n);
  net.batch_insert(backbone);
  net.batch_insert(shortcuts);

  // Critical pairs: the four corners and the center pairwise.
  std::vector<vertex_id> critical = {0, cols - 1, n - cols, n - 1,
                                     (rows / 2) * cols + cols / 2};
  std::vector<std::pair<vertex_id, vertex_id>> pairs;
  for (size_t i = 0; i < critical.size(); ++i)
    for (size_t j = i + 1; j < critical.size(); ++j)
      pairs.push_back({critical[i], critical[j]});

  random_stream rs(123);
  std::vector<edge> all_links = backbone;
  all_links.insert(all_links.end(), shortcuts.begin(), shortcuts.end());

  timer total;
  std::vector<edge> currently_failed;
  for (int wave = 1; wave <= 12; ++wave) {
    // Correlated failure: a random contiguous band of the grid plus
    // random shortcuts goes down.
    std::vector<edge> failures;
    vertex_id band = static_cast<vertex_id>(rs.next(rows - 4));
    for (const edge& e : backbone) {
      vertex_id r1 = e.u / cols, r2 = e.v / cols;
      if (r1 >= band && r1 < band + 3 && r2 >= band && r2 < band + 3)
        failures.push_back(e);
    }
    for (const edge& e : shortcuts)
      if (rs.next(100) < 20) failures.push_back(e);

    net.batch_delete(failures);
    currently_failed.insert(currently_failed.end(), failures.begin(),
                            failures.end());

    auto ok = net.batch_connected(pairs);
    size_t reachable = 0;
    for (bool b : ok) reachable += b;
    std::printf(
        "wave %2d | failed links %5zu (band rows %u-%u) | critical pairs "
        "reachable %zu/%zu | components of corner0: %zu vertices\n",
        wave, failures.size(), band, band + 2, reachable, pairs.size(),
        net.component_size(0));

    // Repair crews bring back ~60% of everything currently failed.
    std::vector<edge> repaired;
    std::vector<edge> still_failed;
    for (const edge& e : currently_failed) {
      if (rs.next(100) < 60) {
        repaired.push_back(e);
      } else {
        still_failed.push_back(e);
      }
    }
    net.batch_insert(repaired);
    currently_failed = std::move(still_failed);
  }
  std::printf("12 failure/repair waves in %.2fs; %zu links still down\n",
              total.elapsed(), currently_failed.size());
  return 0;
}
