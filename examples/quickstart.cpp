// Quickstart: the five-minute tour of the public API.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/batch_connectivity.hpp"

using namespace bdc;

int main() {
  // A dynamic graph over 8 vertices (ids 0..7).
  batch_dynamic_connectivity graph(8);

  // Insert a batch of edges. Duplicates, reversed copies, and self-loops
  // are tolerated and ignored.
  std::vector<edge> edges = {{0, 1}, {1, 2}, {2, 3}, {0, 3},
                             {4, 5}, {5, 6}, {1, 0}};
  graph.batch_insert(edges);
  std::printf("inserted; %zu edges live\n", graph.num_edges());

  // Queries: single or batched.
  std::printf("0 ~ 3?  %s\n", graph.connected(0, 3) ? "yes" : "no");
  std::printf("0 ~ 4?  %s\n", graph.connected(0, 4) ? "yes" : "no");
  std::vector<std::pair<vertex_id, vertex_id>> queries = {
      {0, 2}, {3, 1}, {4, 6}, {0, 7}};
  auto answers = graph.batch_connected(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    std::printf("%u ~ %u?  %s\n", queries[i].first, queries[i].second,
                answers[i] ? "yes" : "no");
  }

  // Delete a batch. (0,1) is covered by the cycle 0-3-2-1, so the
  // component survives; (5,6) is a bridge, so 6 splits off.
  graph.batch_delete(std::vector<edge>{{0, 1}, {5, 6}});
  std::printf("after deletion:\n");
  std::printf("0 ~ 1?  %s   (replacement found through 3-2)\n",
              graph.connected(0, 1) ? "yes" : "no");
  std::printf("5 ~ 6?  %s   (bridge removed)\n",
              graph.connected(5, 6) ? "yes" : "no");

  // Component labels: labels[v] is the smallest vertex in v's component.
  auto labels = graph.components();
  std::printf("component labels:");
  for (vertex_id v = 0; v < graph.num_vertices(); ++v)
    std::printf(" %u:%u", v, labels[v]);
  std::printf("\n");
  std::printf("size of 0's component: %zu\n", graph.component_size(0));

  // Instrumentation for the curious.
  const auto& s = graph.stats();
  std::printf("stats: %llu inserted, %llu deleted, %llu replacements\n",
              static_cast<unsigned long long>(s.edges_inserted),
              static_cast<unsigned long long>(s.edges_deleted),
              static_cast<unsigned long long>(s.replacements_promoted));
  return 0;
}
