// Batch-size explorer: a user-facing mini-study of the paper's headline
// claim (Theorem 9) — deleting the same edge set in bigger batches costs
// less per edge, because the amortized bound O(lg n lg(1 + n/Δ)) shrinks
// with the average batch size Δ. Run it to pick a batching granularity for
// your own ingest pipeline.
#include <cstdio>

#include "core/batch_connectivity.hpp"
#include "gen/graph_gen.hpp"
#include "gen/update_stream.hpp"
#include "util/timer.hpp"

using namespace bdc;

int main() {
  const vertex_id n = 1 << 12;
  const size_t m = 4 * static_cast<size_t>(n);
  std::printf("batch-size explorer: n=%u, m=%zu (Erdos-Renyi)\n", n, m);
  std::printf("%10s %14s %16s\n", "delta", "delete-time", "us-per-edge");

  auto graph = gen_erdos_renyi(n, m, 31337);
  for (size_t delta : {size_t{1}, size_t{16}, size_t{256}, size_t{4096},
                       m / 2}) {
    auto stream = make_deletion_stream(graph, n, 4096, delta, 0, 7);
    batch_dynamic_connectivity dc(n);
    double delete_time = 0;
    timer t;
    for (const auto& b : stream) {
      if (b.op == update_batch::kind::insert) {
        dc.batch_insert(b.edges);
      } else if (b.op == update_batch::kind::erase) {
        t.reset();
        dc.batch_delete(b.edges);
        delete_time += t.elapsed();
      }
    }
    std::printf("%10zu %12.3fs %14.2fus\n", delta, delete_time,
                delete_time / static_cast<double>(m) * 1e6);
  }
  std::printf(
      "\nbigger deletion batches amortize the level-search machinery over\n"
      "more edges (Theorem 9): prefer accumulating updates when you can.\n");
  return 0;
}
