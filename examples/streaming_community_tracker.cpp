// Streaming community tracker — the time-evolving-graph scenario from the
// paper's introduction (CellIQ / social streams [32, 33]): edges arrive
// continuously and expire after a sliding window; after every batch the
// application tracks the number of communities (connected components) and
// the largest community's size.
//
// A static algorithm would recompute components over ~window edges per
// batch; the batch-dynamic structure touches only the changed parts.
#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "core/batch_connectivity.hpp"
#include "gen/graph_gen.hpp"
#include "gen/update_stream.hpp"
#include "util/timer.hpp"

using namespace bdc;

int main() {
  const vertex_id n = 1 << 13;          // 8192 users
  const size_t total_edges = 6 * n;     // interactions over the day
  const size_t window = 2 * n;          // interactions stay "fresh"
  const size_t batch = n / 4;           // interactions per ingest tick

  std::printf("community tracker: %u users, %zu interactions, window %zu\n",
              n, total_edges, window);

  auto interactions = gen_rmat(n, total_edges, 2024);
  auto stream = make_sliding_window_stream(interactions, window, batch, 7);

  batch_dynamic_connectivity graph(n);
  timer total;
  size_t tick = 0;
  for (const auto& b : stream) {
    if (b.op == update_batch::kind::insert) {
      graph.batch_insert(b.edges);
    } else if (b.op == update_batch::kind::erase) {
      graph.batch_delete(b.edges);
      continue;  // report once per ingest tick
    }
    ++tick;
    if (tick % 8 != 0) continue;
    auto labels = graph.components();
    std::unordered_map<vertex_id, size_t> size_of;
    for (vertex_id v = 0; v < n; ++v) size_of[labels[v]]++;
    size_t communities = 0, largest = 0, singletons = 0;
    for (auto& [root, sz] : size_of) {
      if (sz == 1) {
        ++singletons;
        continue;
      }
      ++communities;
      largest = std::max(largest, sz);
    }
    std::printf(
        "tick %3zu | live edges %6zu | communities %5zu | largest %5zu | "
        "isolated %5zu\n",
        tick, graph.num_edges(), communities, largest, singletons);
  }
  std::printf("processed %zu batches in %.2fs (%.1f interactions/ms)\n",
              tick, total.elapsed(),
              static_cast<double>(total_edges) / total.elapsed() / 1e3);
  return 0;
}
