// Network upgrade planner — exercises the §6 MSF extension. A regional ISP
// keeps a live minimum-cost backbone (minimum spanning forest) while
// candidate fiber routes stream in from surveying crews in batches. Each
// accepted route either connects a new area or displaces the costliest
// route on the cycle it closes (the classic exchange argument, answered by
// a link-cut-tree path-maximum query).
#include <cstdio>

#include "gen/graph_gen.hpp"
#include "msf/incremental_msf.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

using namespace bdc;

int main() {
  const vertex_id n = 4000;  // towns
  std::printf("upgrade planner: %u towns, routes arrive in survey waves\n",
              n);

  // Candidate routes: geometric-ish — a grid backbone plus random links,
  // costs skewed so later surveys sometimes find cheaper corridors.
  auto topology = gen_grid(50, 80);
  auto extras = gen_erdos_renyi(n, 3 * n, 77);
  topology.insert(topology.end(), extras.begin(), extras.end());

  random_stream rs(7);
  std::vector<weighted_edge> routes;
  routes.reserve(topology.size());
  for (const edge& e : topology)
    routes.push_back({e, 100 + rs.next(10'000)});

  incremental_msf plan(n);
  timer total;
  const size_t wave = routes.size() / 10;
  for (size_t w = 0; w < 10; ++w) {
    size_t lo = w * wave;
    size_t hi = (w == 9) ? routes.size() : lo + wave;
    size_t forest_before = plan.num_forest_edges();
    uint64_t cost_before = plan.msf_weight();
    plan.batch_insert(std::span<const weighted_edge>(routes.data() + lo,
                                                     hi - lo));
    std::printf(
        "wave %2zu | %5zu candidates | backbone %5zu->%5zu links | "
        "cost %9llu -> %9llu%s\n",
        w + 1, hi - lo, forest_before, plan.num_forest_edges(),
        static_cast<unsigned long long>(cost_before),
        static_cast<unsigned long long>(plan.msf_weight()),
        plan.msf_weight() < cost_before ? "  (cheaper corridors found!)"
                                        : "");
  }
  std::printf(
      "final: %zu towns connected by %zu links, total cost %llu "
      "(%.2fs; %zu candidate routes considered)\n",
      static_cast<size_t>(n), plan.num_forest_edges(),
      static_cast<unsigned long long>(plan.msf_weight()), total.elapsed(),
      routes.size());

  // A decommissioning what-if: drop the single costliest backbone link and
  // see the repair the structure chooses.
  auto forest = plan.forest_edges();
  const weighted_edge* worst = &forest[0];
  for (const auto& we : forest)
    if (we.weight > worst->weight) worst = &we;
  std::printf("what-if: decommission costliest link (%u,%u) cost %llu\n",
              worst->e.u, worst->e.v,
              static_cast<unsigned long long>(worst->weight));
  uint64_t before = plan.msf_weight();
  plan.erase(worst->e);
  std::printf("  backbone cost now %llu (delta %+lld)\n",
              static_cast<unsigned long long>(plan.msf_weight()),
              static_cast<long long>(plan.msf_weight()) -
                  static_cast<long long>(before));
  return 0;
}
